#include "join/structural_join.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "encoding/containment.h"

namespace xee::join {
namespace {

using encoding::PidRef;
using xml::NodeId;
using xpath::Query;
using xpath::RootMode;
using xpath::StructAxis;

}  // namespace

StructuralJoinExecutor::StructuralJoinExecutor(const xml::Document& doc)
    : doc_(doc), labeling_(encoding::LabelDocument(doc)) {
  XEE_CHECK_MSG(doc.finalized(), "document must be finalized");
  by_tag_.resize(doc.TagCount());
  for (NodeId n = 0; n < doc.NodeCount(); ++n) {
    by_tag_[doc.Tag(n)].push_back(n);
  }
  auto by_preorder = [&doc](NodeId a, NodeId b) {
    return doc.PreorderIndex(a) < doc.PreorderIndex(b);
  };
  for (auto& list : by_tag_) {
    std::sort(list.begin(), list.end(), by_preorder);
  }
  all_nodes_.resize(doc.NodeCount());
  for (NodeId n = 0; n < doc.NodeCount(); ++n) all_nodes_[n] = n;
  std::sort(all_nodes_.begin(), all_nodes_.end(), by_preorder);
}

Result<std::vector<NodeId>> StructuralJoinExecutor::Execute(
    const Query& q, const ExecOptions& options, ExecStats* stats) const {
  Status st = q.Validate();
  if (!st.ok()) return st;
  if (!q.orders.empty()) {
    return Status(StatusCode::kUnsupported,
                  "structural join executor handles non-order queries; "
                  "use ExactEvaluator for order axes");
  }

  ExecStats local;
  ExecStats& s = stats != nullptr ? *stats : local;
  s = ExecStats{};

  // Resolve tags; unknown tag => empty result. kWildcardTag for "*".
  std::vector<xml::TagId> tags(q.size());
  for (size_t i = 0; i < q.size(); ++i) {
    if (q.nodes[i].tag == "*") {
      tags[i] = encoding::kWildcardTag;
      continue;
    }
    auto t = doc_.FindTag(q.nodes[i].tag);
    if (!t.has_value()) return std::vector<NodeId>{};
    tags[i] = *t;
  }

  // Initial candidate lists (pre-order sorted).
  std::vector<std::vector<NodeId>> lists(q.size());
  for (size_t i = 0; i < q.size(); ++i) {
    lists[i] = tags[i] == encoding::kWildcardTag ? all_nodes_
                                                 : by_tag_[tags[i]];
    if (q.nodes[i].value_filter.has_value()) {
      std::erase_if(lists[i], [&](NodeId n) {
        return doc_.Text(n) != *q.nodes[i].value_filter;
      });
    }
    if (i == 0 && q.root_mode == RootMode::kAbsolute) {
      std::erase_if(lists[0],
                    [this](NodeId n) { return n != doc_.root(); });
    }
    s.candidates_initial += lists[i].size();
  }

  // Optional path-id pruning ([8]): run the pid-level semi-join over the
  // distinct pids present in each candidate list, then drop elements
  // whose pid did not survive.
  if (options.use_pid_pruning) {
    std::vector<std::set<PidRef>> pids(q.size());
    for (size_t i = 0; i < q.size(); ++i) {
      for (NodeId n : lists[i]) pids[i].insert(labeling_.node_pid_refs[n]);
    }
    auto compatible = [&](xml::TagId tp, PidRef pp, xml::TagId tc, PidRef pc,
                          StructAxis axis) {
      return encoding::PidPairCompatible(
          labeling_.table, tp, labeling_.Pid(pp), tc, labeling_.Pid(pc),
          axis == StructAxis::kChild ? encoding::AxisKind::kChild
                                     : encoding::AxisKind::kDescendant);
    };
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 1; i < q.size(); ++i) {
        const int p = q.nodes[i].parent;
        const StructAxis axis = q.nodes[i].axis;
        for (auto it = pids[p].begin(); it != pids[p].end();) {
          bool any = false;
          for (PidRef pc : pids[i]) {
            if (compatible(tags[p], *it, tags[i], pc, axis)) {
              any = true;
              break;
            }
          }
          if (any) {
            ++it;
          } else {
            it = pids[p].erase(it);
            changed = true;
          }
        }
        for (auto it = pids[i].begin(); it != pids[i].end();) {
          bool any = false;
          for (PidRef pp : pids[p]) {
            if (compatible(tags[p], pp, tags[i], *it, axis)) {
              any = true;
              break;
            }
          }
          if (any) {
            ++it;
          } else {
            it = pids[i].erase(it);
            changed = true;
          }
        }
      }
    }
    for (size_t i = 0; i < q.size(); ++i) {
      std::erase_if(lists[i], [&](NodeId n) {
        return pids[i].find(labeling_.node_pid_refs[n]) == pids[i].end();
      });
      if (lists[i].empty()) return std::vector<NodeId>{};
    }
  }
  for (size_t i = 0; i < q.size(); ++i) {
    s.candidates_pruned += lists[i].size();
  }

  // Membership masks for O(1) parent checks.
  auto make_mask = [this](const std::vector<NodeId>& list) {
    std::vector<uint8_t> mask(doc_.NodeCount(), 0);
    for (NodeId n : list) mask[n] = 1;
    return mask;
  };

  // Does `list` (pre-order sorted) contain a strict descendant of p?
  auto has_descendant_in = [&](const std::vector<NodeId>& list, NodeId p) {
    const uint32_t begin = doc_.PreorderIndex(p);
    const uint32_t end = doc_.SubtreeEnd(p);
    ++s.join_checks;
    auto it = std::upper_bound(list.begin(), list.end(), begin,
                               [this](uint32_t pos, NodeId n) {
                                 return pos < doc_.PreorderIndex(n);
                               });
    return it != list.end() && doc_.PreorderIndex(*it) < end;
  };

  // Bottom-up semi-join: filter each parent list by its child lists.
  for (size_t i = q.size(); i-- > 1;) {
    const int p = q.nodes[i].parent;
    if (q.nodes[i].axis == StructAxis::kChild) {
      // Parents of surviving children.
      std::unordered_set<NodeId> parents;
      for (NodeId c : lists[i]) {
        if (doc_.Parent(c) != xml::kNullNode) parents.insert(doc_.Parent(c));
      }
      std::erase_if(lists[p], [&](NodeId n) {
        ++s.join_checks;
        return parents.find(n) == parents.end();
      });
    } else {
      std::erase_if(lists[p],
                    [&](NodeId n) { return !has_descendant_in(lists[i], n); });
    }
    if (lists[p].empty()) return std::vector<NodeId>{};
  }

  // Top-down semi-join: filter each child list by its (already reduced)
  // parent list.
  std::vector<std::vector<uint8_t>> masks(q.size());
  masks[0] = make_mask(lists[0]);
  for (size_t i = 1; i < q.size(); ++i) {
    const int p = q.nodes[i].parent;
    if (q.nodes[i].axis == StructAxis::kChild) {
      std::erase_if(lists[i], [&](NodeId n) {
        ++s.join_checks;
        NodeId parent = doc_.Parent(n);
        return parent == xml::kNullNode || !masks[p][parent];
      });
    } else {
      std::erase_if(lists[i], [&](NodeId n) {
        for (NodeId a = doc_.Parent(n); a != xml::kNullNode;
             a = doc_.Parent(a)) {
          ++s.join_checks;
          if (masks[p][a]) return false;
        }
        return true;
      });
    }
    if (lists[i].empty()) return std::vector<NodeId>{};
    masks[i] = make_mask(lists[i]);
  }

  return lists[q.target];
}

}  // namespace xee::join
