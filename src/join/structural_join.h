#ifndef XEE_JOIN_STRUCTURAL_JOIN_H_
#define XEE_JOIN_STRUCTURAL_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "encoding/labeling.h"
#include "xml/tree.h"
#include "xpath/query.h"

namespace xee::join {

/// Execution options.
struct ExecOptions {
  /// Run the path-id join first and drop candidate elements whose path
  /// id cannot contribute (the optimization of [8], "A Path-Based
  /// Labeling Scheme for Efficient Structural Join", on which the
  /// paper's estimator builds).
  bool use_pid_pruning = true;
};

/// Work counters for one execution, for the pruning ablation bench.
struct ExecStats {
  /// Sum of candidate-list sizes before/after path-id pruning.
  size_t candidates_initial = 0;
  size_t candidates_pruned = 0;
  /// Element-level membership/interval checks in the join passes.
  size_t join_checks = 0;
};

/// Twig-query executor over the interval labeling: per-step candidate
/// lists are reduced by a bottom-up then top-down structural semi-join
/// (a full reducer for tree queries), optionally after path-id pruning.
///
/// Supports the estimator's non-order fragment (child/descendant axes,
/// branches, wildcards, absolute/anywhere roots); queries with order
/// constraints return kUnsupported — use eval::ExactEvaluator for those.
/// For supported queries the result set equals ExactEvaluator::Matches
/// (the two are independent implementations and cross-checked in tests).
class StructuralJoinExecutor {
 public:
  /// Builds tag indexes and the path labeling; `doc` must be finalized
  /// and outlive the executor.
  explicit StructuralJoinExecutor(const xml::Document& doc);

  /// Distinct elements bound to `q.target`, in document order.
  Result<std::vector<xml::NodeId>> Execute(const xpath::Query& q,
                                           const ExecOptions& options = {},
                                           ExecStats* stats = nullptr) const;

 private:
  const xml::Document& doc_;
  encoding::Labeling labeling_;
  std::vector<std::vector<xml::NodeId>> by_tag_;  // sorted by pre-order
  std::vector<xml::NodeId> all_nodes_;            // for "*" steps
};

}  // namespace xee::join

#endif  // XEE_JOIN_STRUCTURAL_JOIN_H_
