#ifndef XEE_XEE_H_
#define XEE_XEE_H_

/// \file
/// Umbrella header for xee — the XPath Estimation Engine, a C++
/// implementation of "An Estimation System for XPath Expressions"
/// (Li, Lee, Hsu, Cong — ICDE 2006).
///
/// Typical use:
///
///   xee::xml::Document doc = xee::xml::ParseXml(xml_text).value();
///   xee::estimator::Synopsis synopsis =
///       xee::estimator::Synopsis::Build(doc, {});
///   xee::estimator::Estimator estimator(synopsis);
///   xee::xpath::Query q =
///       xee::xpath::ParseXPath("//PLAY[/TITLE/following-sibling::ACT]")
///           .value();
///   double selectivity = estimator.Estimate(q).value();
///
/// The synopsis is a compact summary (path encoding table, path-id
/// binary tree, p-/o-histograms); the source document is not needed at
/// estimation time.

#include "common/backoff.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/sharded_lru.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "datagen/datagen.h"
#include "delta/document_delta.h"
#include "delta/live_synopsis.h"
#include "encoding/containment.h"
#include "encoding/encoding_table.h"
#include "encoding/labeling.h"
#include "estimator/estimator.h"
#include "estimator/synopsis.h"
#include "eval/exact_evaluator.h"
#include "histogram/o_histogram.h"
#include "histogram/p_histogram.h"
#include "markov/markov_estimator.h"
#include "pidtree/collapsed_pid_tree.h"
#include "pidtree/pid_binary_tree.h"
#include "poshist/position_histogram.h"
#include "stats/path_order.h"
#include "stats/pathid_frequency.h"
#include "join/structural_join.h"
#include "service/maintenance.h"
#include "service/plan_cache.h"
#include "service/service.h"
#include "service/service_stats.h"
#include "service/synopsis_registry.h"
#include "workload/workload.h"
#include "xpath/canonical.h"
#include "xml/doc_stats.h"
#include "xml/parser.h"
#include "xml/tree.h"
#include "xml/writer.h"
#include "xpath/parser.h"
#include "xpath/query.h"
#include "xsketch/xsketch.h"

#endif  // XEE_XEE_H_
