#include "xpath/analyze.h"

#include <vector>

#include "xpath/canonical.h"

namespace xee::xpath {

namespace {

using encoding::kWildcardTag;

/// True when the baseline estimator is guaranteed to answer exactly 0.0
/// (never kUnsupported) for a structurally unsatisfiable `q`, assuming
/// the synopsis carries order statistics whenever `q` has constraints.
/// Mirrors the estimator's precedence: zero- and multi-constraint paths
/// reduce to EstimateNoOrder (multi-constraint returns 0.0 as soon as
/// the structural factor is 0, before any per-constraint recursion); the
/// single-constraint path hits kUnsupported first on wildcard endpoints,
/// a wildcard junction, or a document-order pair with both endpoints
/// descendant-attached.
bool EstimatorAnswersZero(const Query& q) {
  if (q.orders.size() != 1) return true;
  const OrderConstraint& oc = q.orders[0];
  const QueryNode& before = q.nodes[oc.before];
  const QueryNode& after = q.nodes[oc.after];
  if (before.tag == "*" || after.tag == "*") return false;
  if (oc.kind == OrderKind::kDocument) {
    if (q.nodes[before.parent].tag == "*") return false;
    if (before.axis == StructAxis::kDescendant &&
        after.axis == StructAxis::kDescendant) {
      return false;
    }
  }
  return true;
}

/// Resolves a name test for the reachability closure: wildcard passes
/// through, concrete names go through the view's tag lookup.
std::optional<xml::TagId> ResolveForReach(const AnalyzerView& view,
                                          const std::string& tag) {
  if (tag == "*") return kWildcardTag;
  if (!view.find_tag) return std::nullopt;
  return view.find_tag(tag);
}

/// Cycle detection over the strict-order digraph: every constraint —
/// sibling or document kind — places `before`'s binding strictly earlier
/// in document order, so a directed cycle is unsatisfiable.
bool HasOrderCycle(const Query& q) {
  const size_t n = q.nodes.size();
  std::vector<std::vector<int>> adj(n);
  for (const OrderConstraint& oc : q.orders) {
    adj[oc.before].push_back(oc.after);
  }
  // Iterative 3-color DFS; color: 0 white, 1 gray, 2 black.
  std::vector<uint8_t> color(n, 0);
  std::vector<std::pair<int, size_t>> stack;
  for (size_t s = 0; s < n; ++s) {
    if (color[s] != 0) continue;
    stack.emplace_back(static_cast<int>(s), 0);
    color[s] = 1;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < adj[u].size()) {
        const int v = adj[u][next++];
        if (color[v] == 1) return true;
        if (color[v] == 0) {
          color[v] = 1;
          stack.emplace_back(v, 0);
        }
      } else {
        color[u] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

bool IsOrderEndpoint(const Query& q, int node) {
  for (const OrderConstraint& oc : q.orders) {
    if (oc.before == node || oc.after == node) return true;
  }
  return false;
}

}  // namespace

Analysis AnalyzeSatisfiability(const Query& query, const AnalyzerView& view) {
  Analysis out;
  if (!query.Validate().ok()) return out;

  // P1: a concrete name test naming no tag of the document. The
  // estimator's tag resolution runs before everything else and maps this
  // to 0.0 unconditionally, so the verdict is always prune-safe.
  if (view.find_tag) {
    for (const QueryNode& node : query.nodes) {
      if (node.tag != "*" && !view.find_tag(node.tag)) {
        return {SatVerdict::kUnsat, "unknown-tag", /*prune_safe=*/true};
      }
    }
  }

  // P3: an absolute first step that is not the document root.
  if (query.root_mode == RootMode::kAbsolute && !view.root_name.empty() &&
      query.nodes[0].tag != "*" && query.nodes[0].tag != view.root_name) {
    return {SatVerdict::kUnsat, "root-mismatch", EstimatorAnswersZero(query)};
  }

  // P2: an edge whose tag pair occurs on no encoded root-to-leaf path
  // under the required axis. Sound because the closure over-approximates
  // the document's containment relation.
  if (view.reach != nullptr) {
    for (size_t i = 1; i < query.nodes.size(); ++i) {
      const QueryNode& node = query.nodes[i];
      const auto above = ResolveForReach(view, query.nodes[node.parent].tag);
      const auto below = ResolveForReach(view, node.tag);
      if (!above || !below) continue;  // unresolved and P1 silent: no claim
      if (!view.reach->Below(*above, *below,
                             node.axis == StructAxis::kChild)) {
        return {SatVerdict::kUnsat, "unreachable-pair",
                EstimatorAnswersZero(query)};
      }
    }
  }

  // P4: a cycle among the order constraints. Never prune-safe — the
  // estimator composes per-constraint order ratios independently and
  // does not notice the contradiction.
  if (query.orders.size() >= 2 && HasOrderCycle(query)) {
    return {SatVerdict::kUnsat, "order-cycle", /*prune_safe=*/false};
  }

  return out;
}

namespace {

/// R3: document-order -> sibling-order when both endpoints attach to the
/// junction by child axes and the junction is concrete. This is exactly
/// the estimator's own internal fallback (EstimateDocOrder re-dispatches
/// such constraints to the sibling path), so the rewrite is bitwise
/// equal by construction; doing it statically lets the canonical key
/// unify following:: spellings with following-sibling:: ones. The
/// wildcard-junction guard preserves the document path's kUnsupported
/// surface, which the sibling path does not share.
bool RewriteDocToSibling(Query* q) {
  bool changed = false;
  for (OrderConstraint& oc : q->orders) {
    if (oc.kind != OrderKind::kDocument) continue;
    const QueryNode& before = q->nodes[oc.before];
    const QueryNode& after = q->nodes[oc.after];
    if (before.axis != StructAxis::kChild ||
        after.axis != StructAxis::kChild) {
      continue;
    }
    if (q->nodes[before.parent].tag == "*") continue;
    oc.kind = OrderKind::kSibling;
    changed = true;
  }
  return changed;
}

/// R1: descendant -> child when the closure shows every co-occurrence of
/// the pair is a direct step (no occurrence at distance >= 2). The path
/// join then admits exactly the same survivors, so the estimate is
/// bitwise unchanged. Order endpoints are exempt: EstimateDocOrder
/// dispatches on endpoint axes, so tightening one would move the query
/// between formula paths.
bool RewriteDescToChild(Query* q, const AnalyzerView& view) {
  bool changed = false;
  for (size_t i = 1; i < q->nodes.size(); ++i) {
    QueryNode& node = q->nodes[i];
    if (node.axis != StructAxis::kDescendant) continue;
    if (IsOrderEndpoint(*q, static_cast<int>(i))) continue;
    const auto above = ResolveForReach(view, q->nodes[node.parent].tag);
    const auto below = ResolveForReach(view, node.tag);
    if (!above || !below) continue;
    if (!view.reach->BelowGap(*above, *below)) {
      node.axis = StructAxis::kChild;
      changed = true;
    }
  }
  return changed;
}

/// R2: '//root/...' -> '/root/...' when the first step names the root
/// tag and the closure proves the root tag non-recursive (it occurs at
/// depth >= 2 on no path): the anywhere-binding set of the first step is
/// then exactly {document root}, which is what the absolute join
/// computes, path id for path id.
bool RewriteAnchorRoot(Query* q, const AnalyzerView& view) {
  if (q->root_mode != RootMode::kAnywhere) return false;
  if (view.root_name.empty() || q->nodes[0].tag != view.root_name) {
    return false;
  }
  if (view.reach->HasProperAncestor(view.root_tag)) return false;
  q->root_mode = RootMode::kAbsolute;
  // Match the parser's convention for absolute first steps so the
  // serialized key unifies with natively absolute spellings.
  q->nodes[0].axis = StructAxis::kChild;
  return true;
}

/// R4: '/root//x/...' -> '//x/...' when the head step carries nothing of
/// its own: no value filter, not the target, exactly one child reached
/// by '//' with a concrete non-root tag, and no order constraint touches
/// the head or uses it as junction. Every binding of a concrete non-root
/// tag sits strictly below the document root, so dropping the vacuous
/// anchor leaves the join's survivor list — and the estimate's bits —
/// unchanged.
bool RewriteElideRootHead(Query* q, const AnalyzerView& view) {
  if (q->root_mode != RootMode::kAbsolute) return false;
  if (view.root_name.empty() || q->nodes[0].tag != view.root_name) {
    return false;
  }
  if (q->nodes[0].children.size() != 1 || q->target == 0) return false;
  if (q->nodes[0].value_filter.has_value()) return false;
  const int head = q->nodes[0].children[0];
  const QueryNode& head_node = q->nodes[head];
  if (head_node.axis != StructAxis::kDescendant) return false;
  if (head_node.tag == "*" || head_node.tag == view.root_name) return false;
  for (const OrderConstraint& oc : q->orders) {
    // Endpoints hanging off node 0 would lose their junction.
    if (oc.before == 0 || oc.after == 0) return false;
    if (q->nodes[oc.before].parent == 0) return false;
  }

  Query out;
  out.root_mode = RootMode::kAnywhere;
  out.target = q->target - 1;
  out.nodes.reserve(q->nodes.size() - 1);
  for (size_t i = 1; i < q->nodes.size(); ++i) {
    QueryNode node = q->nodes[i];
    node.parent = node.parent - 1;
    for (int& c : node.children) c -= 1;
    out.nodes.push_back(std::move(node));
  }
  // The head keeps its descendant axis, matching the parser's convention
  // for anywhere-rooted first steps.
  for (const OrderConstraint& oc : q->orders) {
    out.orders.push_back({oc.kind, oc.before - 1, oc.after - 1});
  }
  *q = std::move(out);
  return true;
}

}  // namespace

int AnalyzeRewrite(Query* query, const AnalyzerView& view) {
  if (query == nullptr || !query->Validate().ok()) return 0;
  // Rewriting mixes resolved and unresolved names poorly (a later rule
  // could act on a pair whose unknown member P1 would have zeroed), so
  // bail outright unless every concrete name resolves.
  if (!view.find_tag) return 0;
  for (const QueryNode& node : query->nodes) {
    if (node.tag != "*" && !view.find_tag(node.tag)) return 0;
  }

  int applied = 0;
  for (int round = 0; round < 8; ++round) {
    int this_round = 0;
    if (RewriteDocToSibling(query)) ++this_round;
    if (view.reach != nullptr) {
      if (RewriteDescToChild(query, view)) ++this_round;
      if (RewriteAnchorRoot(query, view)) ++this_round;
    }
    if (RewriteElideRootHead(query, view)) ++this_round;
    if (this_round == 0) break;
    applied += this_round;
    *query = Canonicalize(*query);
  }
  return applied;
}

namespace {

constexpr size_t kContainMaxNodes = 16;
constexpr int kContainBudget = 1 << 17;

struct ContainState {
  const Query& sup;
  const Query& sub;
  std::vector<int> h;  // sup node -> sub node, -1 unassigned
  int budget = kContainBudget;
};

bool IsStrictAncestorInSub(const Query& sub, int anc, int node) {
  for (int p = sub.nodes[node].parent; p != -1; p = sub.nodes[p].parent) {
    if (p == anc) return true;
  }
  return false;
}

bool OrdersCovered(const ContainState& st) {
  for (const OrderConstraint& want : st.sup.orders) {
    const int b = st.h[want.before];
    const int a = st.h[want.after];
    bool found = false;
    for (const OrderConstraint& have : st.sub.orders) {
      if (have.before != b || have.after != a) continue;
      // A sibling constraint implies the document-order relation (the
      // earlier sibling's whole subtree precedes the later sibling), so
      // it may discharge a document-kind requirement; not vice versa.
      if (have.kind == want.kind ||
          (want.kind == OrderKind::kDocument &&
           have.kind == OrderKind::kSibling)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool Extend(ContainState& st, size_t i) {
  if (i == st.sup.nodes.size()) return OrdersCovered(st);
  const QueryNode& node = st.sup.nodes[i];
  for (size_t j = 0; j < st.sub.nodes.size(); ++j) {
    if (--st.budget <= 0) return false;
    const QueryNode& cand = st.sub.nodes[j];
    if (node.tag != "*" && node.tag != cand.tag) continue;
    if (node.value_filter.has_value() &&
        node.value_filter != cand.value_filter) {
      continue;
    }
    if (i == 0) {
      // An absolute sup root must map onto sub's root bound absolutely.
      if (st.sup.root_mode == RootMode::kAbsolute &&
          (st.sub.root_mode != RootMode::kAbsolute || j != 0)) {
        continue;
      }
    } else {
      const int hp = st.h[node.parent];
      if (node.axis == StructAxis::kChild) {
        if (cand.parent != hp || cand.axis != StructAxis::kChild) continue;
      } else {
        if (!IsStrictAncestorInSub(st.sub, hp, static_cast<int>(j))) continue;
      }
    }
    if (static_cast<int>(i) == st.sup.target &&
        static_cast<int>(j) != st.sub.target) {
      continue;
    }
    st.h[i] = static_cast<int>(j);
    if (Extend(st, i + 1)) return true;
    st.h[i] = -1;
  }
  return false;
}

}  // namespace

bool QueryContains(const Query& sup, const Query& sub) {
  if (sup.nodes.size() > kContainMaxNodes ||
      sub.nodes.size() > kContainMaxNodes) {
    return false;
  }
  if (!sup.Validate().ok() || !sub.Validate().ok()) return false;
  ContainState st{sup, sub, std::vector<int>(sup.nodes.size(), -1)};
  return Extend(st, 0);
}

}  // namespace xee::xpath
