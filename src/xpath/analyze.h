#ifndef XEE_XPATH_ANALYZE_H_
#define XEE_XPATH_ANALYZE_H_

#include <functional>
#include <optional>
#include <string>

#include "encoding/reachability.h"
#include "xpath/query.h"

namespace xee::xpath {

/// Static query analysis over the encoding table's tag-pair containment
/// relation (DESIGN.md §15): satisfiability pruning, estimator-invariant
/// rewrites, and a sound (incomplete) containment test. Everything here
/// is O(plan) or close to it — the point is to answer or simplify before
/// the path join and the estimation formulas run.

/// Outcome of the satisfiability pass.
enum class SatVerdict {
  /// Nothing provable; estimate normally.
  kUnknown,
  /// Provably empty: no document whose path structure the view describes
  /// can match this query, so its exact count is 0.
  kUnsat,
};

struct Analysis {
  SatVerdict verdict = SatVerdict::kUnknown;
  /// Static string naming the rule that fired ("" when kUnknown).
  const char* reason = "";
  /// True when, additionally, the baseline estimator is guaranteed to
  /// answer exactly 0.0 — not kUnsupported — for this query against any
  /// synopsis carrying order statistics. The service prunes only such
  /// verdicts (and only when the snapshot has order statistics or the
  /// query none), keeping the analyzer invisible in outcome bits.
  bool prune_safe = false;
};

/// What the analyzer reads from a synopsis. `reach` may be null (the
/// structural pair rules simply stay silent); `find_tag` may be empty
/// (the unknown-tag rule stays silent).
struct AnalyzerView {
  const encoding::TagReachability* reach = nullptr;
  std::function<std::optional<xml::TagId>(const std::string&)> find_tag;
  xml::TagId root_tag = 0;
  std::string root_name;
};

/// Satisfiability rules, in order:
///   P1 a concrete name test that is not a tag of the document;
///   P2 an edge whose (parent tag, child tag, axis) pair occurs on no
///      encoded root-to-leaf path (wildcard-aware);
///   P3 an absolute first step whose tag is not the root tag;
///   P4 a cycle in the strict-order digraph of the order constraints
///      (both constraint kinds imply strict document order).
/// Soundness: the reachability closure over-approximates the document's
/// containment relation, so kUnsat implies an exact count of 0. P4
/// verdicts are never prune_safe: the estimator's independence-composed
/// ratio product does not detect cycles and may answer nonzero.
/// Invalid queries (Validate fails) analyze to kUnknown.
Analysis AnalyzeSatisfiability(const Query& query, const AnalyzerView& view);

/// Rewrites `query` in place to a cheaper / more canonical equivalent and
/// returns the number of rule applications (0 = untouched). Every rule
/// preserves the baseline estimator's result BITWISE (identical join
/// survivor lists or, for R3, the estimator's own internal rewrite), so
/// rewritten plans may share caches with unrewritten ones:
///   R1 descendant -> child when the closure shows every occurrence of
///      the pair is a direct step (never fires on order endpoints, whose
///      axis steers EstimateDocOrder's dispatch);
///   R2 anywhere -> absolute for a first step naming a non-recursive
///      root tag ('//root/...' == '/root/...');
///   R3 document-order -> sibling-order when both endpoints are
///      child-attached and the junction is concrete;
///   R4 absolute-root head elision: '/root//x/...' == '//x/...' when the
///      head carries nothing (no filter, not the target, no junction).
/// The query is re-canonicalized after each changed round, so alias
/// families meet at one canonical key. No-op on invalid queries or when
/// a concrete tag fails to resolve.
int AnalyzeRewrite(Query* query, const AnalyzerView& view);

/// Sound, incomplete containment test in the homomorphism style of
/// Miklau & Suciu: true means every document satisfies
/// count(sub) <= count(sup) — each target binding of `sub` is one of
/// `sup`. False means nothing. Intended for the test oracles and offline
/// tooling, not the serving path; cost is exponential in query size in
/// the worst case (inputs beyond a small size return false).
bool QueryContains(const Query& sup, const Query& sub);

}  // namespace xee::xpath

#endif  // XEE_XPATH_ANALYZE_H_
