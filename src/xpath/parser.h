#ifndef XEE_XPATH_PARSER_H_
#define XEE_XPATH_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xpath/query.h"

namespace xee::xpath {

/// Parses an XPath expression of the paper's fragment into a normalized
/// Query.
///
/// Grammar (whitespace-free):
///
///   query     := ('/' | '//') chain
///   chain     := step (('/' | '//') step)*
///   step      := [axis '::'] name ['{t}'] predicate*
///   axis      := 'child' | 'descendant' | 'following-sibling'
///              | 'preceding-sibling' | 'following' | 'preceding'
///   predicate := '[' ('/' | '//')? chain ']'
///              | '[' '.="' text '"' ']'        (value predicate)
///
/// Order axes are normalized into OrderConstraints: a step
/// `X/following-sibling::Y` makes Y another child of X's parent (the
/// junction) with a sibling constraint X-before-Y;
/// `X/following::Y` attaches Y to the junction via the descendant axis
/// with a document-order constraint (the paper's Section 5 scoped
/// semantics). Order-axis steps therefore require the context step to be
/// child-attached to an explicit parent step.
///
/// The target defaults to the last step of the outermost chain; a single
/// step may carry the marker `{t}` to designate a different target node
/// (the paper estimates targets in trunk and branch parts). A value
/// predicate constrains the step's text content (extension; the paper's
/// estimator is structure-only, value statistics follow [13]'s idea).
Result<Query> ParseXPath(std::string_view input);

}  // namespace xee::xpath

#endif  // XEE_XPATH_PARSER_H_
