#include "xpath/parser.h"

#include <cctype>
#include <string>

#include "common/strings.h"

namespace xee::xpath {
namespace {

enum class StepAxis {
  kChildDefault,
  kFollowingSibling,
  kPrecedingSibling,
  kFollowing,
  kPreceding,
};

class Parser {
 public:
  explicit Parser(std::string_view in) : in_(in) {}

  Result<Query> Parse() {
    Status s = ParseLeadingSlash(&root_descendant_);
    if (!s.ok()) return s;
    query_.root_mode =
        root_descendant_ ? RootMode::kAnywhere : RootMode::kAbsolute;
    int last = -1;
    s = ParseChain(/*context=*/-1, root_descendant_ ? StructAxis::kDescendant
                                                    : StructAxis::kChild,
                   &last);
    if (!s.ok()) return s;
    if (!AtEnd()) return Error("trailing characters");
    query_.target = explicit_target_ >= 0 ? explicit_target_ : last;
    s = query_.Validate();
    if (!s.ok()) return s;
    return std::move(query_);
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return AtEnd() ? '\0' : in_[pos_]; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  bool ConsumeSeq(std::string_view seq) {
    if (in_.substr(pos_, seq.size()) != seq) return false;
    pos_ += seq.size();
    return true;
  }

  Status Error(const std::string& msg) const {
    return Status(StatusCode::kParseError,
                  StrFormat("xpath at offset %zu: %s", pos_, msg.c_str()));
  }

  Status ParseLeadingSlash(bool* descendant) {
    if (ConsumeSeq("//")) {
      *descendant = true;
      return Status::Ok();
    }
    if (Consume('/')) {
      *descendant = false;
      return Status::Ok();
    }
    return Error("query must start with '/' or '//'");
  }

  Status ParseName(std::string* out) {
    if (Consume('*')) {
      *out = "*";
      return Status::Ok();
    }
    // Element names follow the XML convention: '-', '.' and digits may
    // continue a name but never start one.
    const char first = Peek();
    if (!std::isalpha(static_cast<unsigned char>(first)) && first != '_') {
      if (std::isdigit(static_cast<unsigned char>(first)) || first == '-' ||
          first == '.') {
        return Error("element names cannot start with '-', '.' or a digit");
      }
      return Error("expected an element name");
    }
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '-' || Peek() == '.')) {
      ++pos_;
    }
    *out = std::string(in_.substr(start, pos_ - start));
    return Status::Ok();
  }

  /// Parses a chain of steps. `context` is the query node the first step
  /// hangs off (-1 when this is the outermost chain's first step);
  /// `first_axis` is the structural axis for the first step. On success
  /// `*last` is the final step's node index.
  Status ParseChain(int context, StructAxis first_axis, int* last) {
    StructAxis axis = first_axis;
    while (true) {
      Status s = ParseStep(&context, axis);
      if (!s.ok()) return s;
      if (ConsumeSeq("//")) {
        axis = StructAxis::kDescendant;
      } else if (Consume('/')) {
        axis = StructAxis::kChild;
      } else {
        *last = context;
        return Status::Ok();
      }
    }
  }

  Status ParseStep(int* context, StructAxis axis) {
    // Optional explicit axis.
    StepAxis step_axis = StepAxis::kChildDefault;
    if (ConsumeSeq("following-sibling::")) {
      step_axis = StepAxis::kFollowingSibling;
    } else if (ConsumeSeq("preceding-sibling::")) {
      step_axis = StepAxis::kPrecedingSibling;
    } else if (ConsumeSeq("following::")) {
      step_axis = StepAxis::kFollowing;
    } else if (ConsumeSeq("preceding::")) {
      step_axis = StepAxis::kPreceding;
    } else if (ConsumeSeq("descendant::")) {
      axis = StructAxis::kDescendant;
      // On the very first step 'descendant::' binds against the virtual
      // document root: '/descendant::a' selects every a, i.e. '//a'.
      if (*context < 0) query_.root_mode = RootMode::kAnywhere;
    } else if (ConsumeSeq("child::")) {
      axis = StructAxis::kChild;
    }
    if (*context < 0 && step_axis == StepAxis::kChildDefault) {
      // The first node's axis field is semantically dead (root_mode
      // carries the document binding), but it participates in the
      // serialized key; pin it to the root_mode default so '//child::a'
      // and '//a' produce identical queries.
      axis = query_.root_mode == RootMode::kAnywhere ? StructAxis::kDescendant
                                                     : StructAxis::kChild;
    }

    std::string name;
    Status s = ParseName(&name);
    if (!s.ok()) return s;

    int node = -1;
    if (step_axis == StepAxis::kChildDefault) {
      node = query_.AddNode(name, axis, *context);
    } else {
      // Order axis: the context step becomes one endpoint; the new node
      // attaches to the junction (the context's parent).
      if (*context < 0) {
        return Error("order axis requires a context step");
      }
      int junction = query_.nodes[*context].parent;
      if (junction < 0) {
        return Error("order axis requires the context step to have a "
                     "parent step (the junction)");
      }
      const bool sibling = step_axis == StepAxis::kFollowingSibling ||
                           step_axis == StepAxis::kPrecedingSibling;
      if (sibling &&
          query_.nodes[*context].axis != StructAxis::kChild) {
        return Error(
            "sibling order axis requires a child-attached context step");
      }
      node = query_.AddNode(
          name, sibling ? StructAxis::kChild : StructAxis::kDescendant,
          junction);
      const bool forward = step_axis == StepAxis::kFollowingSibling ||
                           step_axis == StepAxis::kFollowing;
      OrderConstraint c;
      c.kind = sibling ? OrderKind::kSibling : OrderKind::kDocument;
      c.before = forward ? *context : node;
      c.after = forward ? node : *context;
      query_.orders.push_back(c);
    }

    if (ConsumeSeq("{t}")) {
      if (explicit_target_ >= 0) return Error("multiple {t} markers");
      explicit_target_ = node;
    }

    // Predicates.
    while (Consume('[')) {
      // Value predicate [.="..."]. The literal supports backslash
      // escapes for '"' and the backslash itself; a bare '"' always
      // terminates it, so an embedded quote that is not escaped fails at
      // the ']' check below instead of resynchronizing on a later quote.
      if (ConsumeSeq(".=\"")) {
        std::string value;
        while (!AtEnd() && Peek() != '"') {
          char ch = Peek();
          if (ch == '\\') {
            ++pos_;
            if (AtEnd()) return Error("unterminated value predicate");
            const char esc = Peek();
            if (esc != '"' && esc != '\\') {
              return Error(
                  "unsupported escape in value predicate (use \\\" or \\\\)");
            }
            ch = esc;
          }
          value += ch;
          ++pos_;
        }
        if (!Consume('"')) return Error("unterminated value predicate");
        if (!Consume(']')) {
          return Error("expected ']' after value predicate");
        }
        if (query_.nodes[node].value_filter.has_value()) {
          return Error("multiple value predicates on one step");
        }
        query_.nodes[node].value_filter = std::move(value);
        continue;
      }
      StructAxis pred_axis = StructAxis::kChild;
      if (ConsumeSeq("//")) {
        pred_axis = StructAxis::kDescendant;
      } else {
        Consume('/');  // optional leading '/'
      }
      int pred_last = -1;
      s = ParseChain(node, pred_axis, &pred_last);
      if (!s.ok()) return s;
      if (!Consume(']')) return Error("expected ']'");
    }

    *context = node;
    return Status::Ok();
  }

  std::string_view in_;
  size_t pos_ = 0;
  bool root_descendant_ = false;
  int explicit_target_ = -1;
  Query query_;
};

}  // namespace

Result<Query> ParseXPath(std::string_view input) {
  return Parser(input).Parse();
}

}  // namespace xee::xpath
