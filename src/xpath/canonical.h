#ifndef XEE_XPATH_CANONICAL_H_
#define XEE_XPATH_CANONICAL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "xpath/query.h"

namespace xee::xpath {

/// Removes whitespace outside double-quoted value strings, so
/// `" //a / b "` keys the same as `"//a/b"`. Understands the backslash
/// escapes of value literals, so an escaped quote does not end the
/// quoted region. The grammar of ParseXPath is whitespace-free outside
/// literals; callers strip before parsing.
std::string StripWhitespace(std::string_view xpath);

/// Escapes a value-predicate literal for embedding between double
/// quotes: '\' becomes "\\" and '"' becomes "\"". This is the inverse
/// of the unescaping done by ParseXPath's value lexer, and it makes
/// SerializeKey injective — without it, content could shift between two
/// adjacent quoted literals and distinct queries would share a key.
std::string EscapeValueFilter(std::string_view value);

/// Rewrites `q` into a canonical form preserving its semantics:
/// the children of every node are sorted by a structural subtree
/// signature (predicate order is semantically irrelevant in the tree
/// pattern — order between branches is expressed only by explicit
/// OrderConstraints, which are remapped), nodes are renumbered in
/// preorder of the sorted tree, and the constraint list is sorted.
/// Semantically identical queries — however they were entered
/// (redundant `child::`, permuted predicates, `{t}` on the default
/// target) — canonicalize to equal queries. Idempotent.
Query Canonicalize(const Query& q);

/// Serializes a query into an unambiguous key string. Equal queries
/// produce equal keys and distinct queries distinct keys; to make
/// semantically equal queries collide on purpose, canonicalize first
/// (CanonicalKey does both).
std::string SerializeKey(const Query& q);

/// SerializeKey(Canonicalize(q)): the cache key under which all
/// spellings of a query meet.
std::string CanonicalKey(const Query& q);

/// 64-bit FNV-1a — a stable, platform-independent hash for sharding
/// and fingerprinting canonical keys.
uint64_t StableHash64(std::string_view s);

/// StableHash64 over CanonicalKey(q).
uint64_t CanonicalHash(const Query& q);

}  // namespace xee::xpath

#endif  // XEE_XPATH_CANONICAL_H_
