#ifndef XEE_XPATH_QUERY_H_
#define XEE_XPATH_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace xee::xpath {

/// Structural axis attaching a query node to its parent query node.
enum class StructAxis {
  kChild,       ///< '/'
  kDescendant,  ///< '//'
};

/// How the first step of the query binds to the document.
enum class RootMode {
  kAbsolute,  ///< '/name'  — the first step must be the document root
  kAnywhere,  ///< '//name' — the first step matches any element
};

/// One node of a normalized query tree. The tree shape encodes '/'-'//'
/// structure; order axes are normalized into constraints between nodes
/// (see Query).
struct QueryNode {
  std::string tag;               ///< element name test; "*" matches any tag
  StructAxis axis = StructAxis::kChild;  ///< axis to parent (unused on node 0)
  int parent = -1;               ///< parent node index, -1 for node 0
  std::vector<int> children;     ///< child node indices, in creation order
  /// Value predicate `[.="..."]`: when set, the bound element's text
  /// content must equal this string (extension; see DESIGN.md §5b).
  std::optional<std::string> value_filter;
};

/// Kind of an order constraint between two query nodes.
enum class OrderKind {
  /// `before` and `after` bind sibling elements (same parent element,
  /// the junction's binding) with before's position smaller. Produced by
  /// following-sibling:: / preceding-sibling:: axes.
  kSibling,
  /// `after`'s binding starts after `before`'s subtree ends in document
  /// order (the XPath following/preceding relation), scoped to
  /// descendants of the junction binding as in the paper's Section 5.
  kDocument,
};

/// An order constraint: the element bound to node `before` must occur
/// before the element bound to node `after`, in the sense of `kind`.
/// Both nodes are children of the same query node (the junction).
struct OrderConstraint {
  OrderKind kind = OrderKind::kSibling;
  int before = -1;  ///< query node index
  int after = -1;   ///< query node index
};

/// A normalized XPath query of the paper's fragment.
///
/// The query is a tree of name-test steps joined by child/descendant
/// axes; order axes are represented as OrderConstraints between branches
/// of a junction node. `target` is the node whose selectivity is
/// estimated / whose bindings are counted (by default the "result" node:
/// the last main-path step).
struct Query {
  std::vector<QueryNode> nodes;  ///< nodes[0] is the query root step
  RootMode root_mode = RootMode::kAnywhere;
  std::vector<OrderConstraint> orders;
  int target = 0;

  size_t size() const { return nodes.size(); }

  /// Appends a node; returns its index. Pass parent = -1 only for the
  /// first node.
  int AddNode(std::string tag, StructAxis axis, int parent);

  /// Renders the query back to XPath-like syntax, marking the target
  /// with "{t}" when it is not the default result node.
  std::string ToString() const;

  /// The root-to-`node` chain of node indices (inclusive).
  std::vector<int> SpineOf(int node) const;

  /// Derives the sub-query induced by `keep` (which must contain node 0
  /// and be connected upwards), preserving constraints whose endpoints
  /// survive. `old_to_new`, if non-null, receives the index mapping
  /// (-1 for dropped nodes). The target is remapped if kept, else reset
  /// to node 0 — callers dropping the target must set their own.
  Query SubQuery(const std::vector<bool>& keep,
                 std::vector<int>* old_to_new = nullptr) const;

  /// Validates tree-structure invariants (parents before children,
  /// constraint endpoints sharing a junction, target in range).
  Status Validate() const;
};

}  // namespace xee::xpath

#endif  // XEE_XPATH_QUERY_H_
