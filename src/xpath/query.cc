#include "xpath/query.h"

#include <algorithm>

#include "xpath/canonical.h"

namespace xee::xpath {

int Query::AddNode(std::string tag, StructAxis axis, int parent) {
  XEE_CHECK(parent >= -1 && parent < static_cast<int>(nodes.size()));
  XEE_CHECK((parent == -1) == nodes.empty());
  QueryNode n;
  n.tag = std::move(tag);
  n.axis = axis;
  n.parent = parent;
  int idx = static_cast<int>(nodes.size());
  nodes.push_back(std::move(n));
  if (parent >= 0) nodes[parent].children.push_back(idx);
  return idx;
}

std::vector<int> Query::SpineOf(int node) const {
  XEE_CHECK(node >= 0 && node < static_cast<int>(nodes.size()));
  std::vector<int> spine;
  for (int n = node; n != -1; n = nodes[n].parent) spine.push_back(n);
  std::reverse(spine.begin(), spine.end());
  return spine;
}

Query Query::SubQuery(const std::vector<bool>& keep,
                      std::vector<int>* old_to_new) const {
  XEE_CHECK(keep.size() == nodes.size());
  XEE_CHECK(!nodes.empty() && keep[0]);
  Query out;
  out.root_mode = root_mode;
  std::vector<int> map(nodes.size(), -1);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!keep[i]) continue;
    int parent = nodes[i].parent;
    XEE_CHECK_MSG(parent == -1 || keep[parent],
                  "keep set must be upward-closed");
    map[i] = out.AddNode(nodes[i].tag, nodes[i].axis,
                         parent == -1 ? -1 : map[parent]);
    out.nodes[map[i]].value_filter = nodes[i].value_filter;
  }
  for (const OrderConstraint& c : orders) {
    if (keep[c.before] && keep[c.after]) {
      out.orders.push_back(
          OrderConstraint{c.kind, map[c.before], map[c.after]});
    }
  }
  out.target = map[target] >= 0 ? map[target] : 0;
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return out;
}

Status Query::Validate() const {
  if (nodes.empty()) {
    return Status(StatusCode::kInvalidArgument, "empty query");
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    const QueryNode& n = nodes[i];
    if (i == 0 && n.parent != -1) {
      return Status(StatusCode::kInvalidArgument, "node 0 must be the root");
    }
    if (i > 0 &&
        (n.parent < 0 || n.parent >= static_cast<int>(i))) {
      return Status(StatusCode::kInvalidArgument,
                    "parents must precede children");
    }
    if (n.tag.empty()) {
      return Status(StatusCode::kInvalidArgument, "empty name test");
    }
  }
  if (target < 0 || target >= static_cast<int>(nodes.size())) {
    return Status(StatusCode::kInvalidArgument, "target out of range");
  }
  for (const OrderConstraint& c : orders) {
    if (c.before < 0 || c.after < 0 ||
        c.before >= static_cast<int>(nodes.size()) ||
        c.after >= static_cast<int>(nodes.size()) ||
        c.before == c.after) {
      return Status(StatusCode::kInvalidArgument,
                    "order constraint endpoints out of range");
    }
    if (nodes[c.before].parent != nodes[c.after].parent ||
        nodes[c.before].parent == -1) {
      return Status(StatusCode::kInvalidArgument,
                    "order constraint endpoints must share a junction");
    }
    if (c.kind == OrderKind::kSibling &&
        (nodes[c.before].axis != StructAxis::kChild ||
         nodes[c.after].axis != StructAxis::kChild)) {
      return Status(StatusCode::kInvalidArgument,
                    "sibling constraint endpoints must use the child axis");
    }
  }
  return Status::Ok();
}

std::string Query::ToString() const {
  if (nodes.empty()) return "";
  // Order-linked junction children: the later-created node of a
  // constraint is rendered with the order axis right after its earlier
  // partner step.
  struct Link {
    int partner = -1;  // earlier node this one follows
    OrderKind kind = OrderKind::kSibling;
    bool later_is_after = true;
  };
  std::vector<Link> link(nodes.size());
  std::vector<std::vector<int>> followers(nodes.size());
  for (const OrderConstraint& c : orders) {
    int later = std::max(c.before, c.after);
    int earlier = std::min(c.before, c.after);
    link[later] = Link{earlier, c.kind, later == c.after};
    followers[earlier].push_back(later);
  }

  // Subtree membership of the target, to route the main path through it.
  std::vector<bool> has_target(nodes.size(), false);
  for (int n = target; n != -1; n = nodes[n].parent) has_target[n] = true;

  // Rendering produces a step chain: at each step, one child chain
  // continues the path (preferring the one leading to the target) and
  // the rest become predicates. A step with an order follower keeps all
  // children in predicates so the follower attaches at the right
  // junction. `default_result` tracks the node a fresh parse of the
  // output would pick as its default target.
  int default_result = -1;

  auto axis_str = [this](int child) {
    return nodes[child].axis == StructAxis::kChild ? "/" : "//";
  };
  auto order_axis_str = [](const Link& l) {
    if (l.kind == OrderKind::kSibling) {
      return l.later_is_after ? "/following-sibling::"
                              : "/preceding-sibling::";
    }
    return l.later_is_after ? "/following::" : "/preceding::";
  };

  // Renders the chain starting at node n (its step plus continuations);
  // `outermost` tracks the main path of the whole query.
  auto render_chain = [&](auto&& self, int start, bool outermost)
      -> std::string {
    std::string out;
    int cur = start;
    while (true) {
      out += nodes[cur].tag;
      if (cur == target) out += "{t}";
      if (nodes[cur].value_filter.has_value()) {
        out += "[.=\"" + EscapeValueFilter(*nodes[cur].value_filter) + "\"]";
      }
      if (outermost) default_result = cur;

      // Split children into chain starts (followers render after their
      // partner).
      std::vector<int> starts;
      for (int child : nodes[cur].children) {
        if (link[child].partner == -1) starts.push_back(child);
      }
      const bool has_follower = !followers[cur].empty();
      int main_child = -1;
      if (!has_follower && !starts.empty()) {
        main_child = starts.back();
        for (int s : starts) {
          if (has_target[s]) main_child = s;
        }
      }
      for (int s : starts) {
        if (s == main_child) continue;
        out += "[" + std::string(axis_str(s)) + self(self, s, false) + "]";
      }
      if (has_follower) {
        // Append the follower chain at this junction level.
        int prev = cur;
        while (!followers[prev].empty()) {
          int next = followers[prev].front();
          out += order_axis_str(link[next]);
          out += self(self, next, outermost);
          return out;  // the follower recursion finished the chain
        }
      }
      if (main_child == -1) return out;
      out += axis_str(main_child);
      cur = main_child;
    }
  };

  std::string body = render_chain(render_chain, 0, true);
  std::string out = root_mode == RootMode::kAbsolute ? "/" : "//";
  out += body;
  // Drop the redundant target marker when a reparse would pick the same
  // node by default.
  if (default_result == target) {
    size_t pos = out.find("{t}");
    if (pos != std::string::npos && out.find("{t}", pos + 1) == std::string::npos) {
      out.erase(pos, 3);
    }
  }
  return out;
}

}  // namespace xee::xpath
