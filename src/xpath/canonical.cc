#include "xpath/canonical.h"

#include <algorithm>
#include <cctype>
#include <vector>

namespace xee::xpath {
namespace {

/// Appends one node's header: axis marker ('/' child, '%' descendant),
/// tag, target marker, value predicate. Tags are [A-Za-z0-9_.*-]+, so
/// the markers and parentheses below cannot occur inside one.
void AppendHeader(const Query& q, int n, std::string* out) {
  out->push_back(q.nodes[n].axis == StructAxis::kChild ? '/' : '%');
  *out += q.nodes[n].tag;
  if (n == q.target) *out += "{t}";
  if (q.nodes[n].value_filter.has_value()) {
    out->push_back('=');
    out->push_back('"');
    *out += *q.nodes[n].value_filter;
    out->push_back('"');
  }
}

}  // namespace

std::string StripWhitespace(std::string_view xpath) {
  std::string out;
  out.reserve(xpath.size());
  bool in_quote = false;
  for (char c : xpath) {
    if (c == '"') in_quote = !in_quote;
    if (!in_quote && std::isspace(static_cast<unsigned char>(c))) continue;
    out.push_back(c);
  }
  return out;
}

Query Canonicalize(const Query& q) {
  if (q.nodes.empty()) return q;

  // Bottom-up structural signatures (parents precede children in index
  // order, so a reverse sweep sees every child signature before its
  // parent). A node's signature embeds its children's signatures in
  // sorted order — the order the rebuild below will use.
  const size_t n = q.nodes.size();
  std::vector<std::string> sig(n);
  std::vector<std::vector<int>> sorted_kids(n);
  for (size_t i = n; i-- > 0;) {
    sorted_kids[i] = q.nodes[i].children;
    // Stable: equal subtrees keep their original relative order, which
    // keeps order-constraint endpoints deterministic (see below).
    std::stable_sort(sorted_kids[i].begin(), sorted_kids[i].end(),
                     [&](int a, int b) { return sig[a] < sig[b]; });
    std::string s;
    AppendHeader(q, static_cast<int>(i), &s);
    s.push_back('(');
    for (int c : sorted_kids[i]) s += sig[c];
    s.push_back(')');
    sig[i] = std::move(s);
  }

  // Rebuild in preorder of the sorted tree.
  Query out;
  out.root_mode = q.root_mode;
  std::vector<int> map(n, -1);
  auto build = [&](auto&& self, int node, int parent) -> void {
    map[node] = out.AddNode(q.nodes[node].tag, q.nodes[node].axis, parent);
    out.nodes[map[node]].value_filter = q.nodes[node].value_filter;
    for (int c : sorted_kids[node]) self(self, c, map[node]);
  };
  build(build, 0, -1);
  out.target = map[q.target];

  for (const OrderConstraint& c : q.orders) {
    out.orders.push_back(OrderConstraint{c.kind, map[c.before], map[c.after]});
  }
  std::sort(out.orders.begin(), out.orders.end(),
            [](const OrderConstraint& a, const OrderConstraint& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.before != b.before) return a.before < b.before;
              return a.after < b.after;
            });
  return out;
}

std::string SerializeKey(const Query& q) {
  std::string out;
  if (q.nodes.empty()) return out;
  out.push_back(q.root_mode == RootMode::kAbsolute ? 'A' : 'W');
  auto render = [&](auto&& self, int node) -> void {
    AppendHeader(q, node, &out);
    out.push_back('(');
    for (int c : q.nodes[node].children) self(self, c);
    out.push_back(')');
  };
  render(render, 0);
  for (const OrderConstraint& c : q.orders) {
    out.push_back('|');
    out.push_back(c.kind == OrderKind::kSibling ? 's' : 'd');
    out += std::to_string(c.before);
    out.push_back(',');
    out += std::to_string(c.after);
  }
  return out;
}

std::string CanonicalKey(const Query& q) {
  return SerializeKey(Canonicalize(q));
}

uint64_t StableHash64(std::string_view s) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

uint64_t CanonicalHash(const Query& q) { return StableHash64(CanonicalKey(q)); }

}  // namespace xee::xpath
