#include "xpath/canonical.h"

#include <algorithm>
#include <cctype>
#include <vector>

namespace xee::xpath {
namespace {

/// Appends one node's header: axis marker ('/' child, '%' descendant),
/// tag, target marker, value predicate. Tags are [A-Za-z0-9_.*-]+, so
/// the markers and parentheses below cannot occur inside one; the value
/// literal is escaped so no unescaped '"' occurs inside it either,
/// keeping the whole serialization injective.
void AppendHeader(const Query& q, int n, std::string* out) {
  out->push_back(q.nodes[n].axis == StructAxis::kChild ? '/' : '%');
  *out += q.nodes[n].tag;
  if (n == q.target) *out += "{t}";
  if (q.nodes[n].value_filter.has_value()) {
    out->push_back('=');
    out->push_back('"');
    *out += EscapeValueFilter(*q.nodes[n].value_filter);
    out->push_back('"');
  }
}

}  // namespace

std::string StripWhitespace(std::string_view xpath) {
  std::string out;
  out.reserve(xpath.size());
  bool in_quote = false;
  for (size_t i = 0; i < xpath.size(); ++i) {
    const char c = xpath[i];
    if (in_quote && c == '\\' && i + 1 < xpath.size()) {
      // Escaped character inside a literal: copy both bytes verbatim so
      // \" neither ends the quoted region nor loses inner whitespace.
      out.push_back(c);
      out.push_back(xpath[i + 1]);
      ++i;
      continue;
    }
    if (c == '"') in_quote = !in_quote;
    if (!in_quote && std::isspace(static_cast<unsigned char>(c))) continue;
    out.push_back(c);
  }
  return out;
}

std::string EscapeValueFilter(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

Query Canonicalize(const Query& q) {
  if (q.nodes.empty()) return q;

  // Bottom-up structural signatures (parents precede children in index
  // order, so a reverse sweep sees every child signature before its
  // parent). A node's signature embeds its children's signatures in
  // sorted order — the order the rebuild below will use.
  const size_t n = q.nodes.size();
  std::vector<std::string> sig(n);
  std::vector<std::vector<int>> sorted_kids(n);
  auto sweep = [&](const std::vector<std::string>* profile) {
    std::vector<std::string> next(n);
    for (size_t i = n; i-- > 0;) {
      sorted_kids[i] = q.nodes[i].children;
      // Stable: subtrees the signature cannot distinguish keep their
      // original relative order.
      std::stable_sort(sorted_kids[i].begin(), sorted_kids[i].end(),
                       [&](int a, int b) { return next[a] < next[b]; });
      std::string s;
      AppendHeader(q, static_cast<int>(i), &s);
      if (profile != nullptr && !(*profile)[i].empty()) {
        s.push_back('<');
        s += (*profile)[i];
        s.push_back('>');
      }
      s.push_back('(');
      for (int c : sorted_kids[i]) s += next[c];
      s.push_back(')');
      next[i] = std::move(s);
    }
    sig = std::move(next);
  };
  sweep(nullptr);

  // Refinement sweep: structure alone cannot order identical twin
  // subtrees whose roles differ only through order constraints (e.g.
  // title[X/following::p][p/preceding::Y] has two structurally equal p
  // descendants). Fold each node's constraint participation — kind,
  // side, and the other endpoint's structural signature — into the sort
  // key so isomorphic spellings agree on which twin comes first. (Ties
  // surviving this round are constraint-symmetric, where either order
  // yields the same serialized key.)
  if (!q.orders.empty()) {
    std::vector<std::vector<std::string>> entries(n);
    for (const OrderConstraint& c : q.orders) {
      const char kind = c.kind == OrderKind::kSibling ? 's' : 'd';
      entries[c.before].push_back(std::string(1, kind) + 'B' + sig[c.after]);
      entries[c.after].push_back(std::string(1, kind) + 'A' + sig[c.before]);
    }
    std::vector<std::string> profile(n);
    for (size_t i = 0; i < n; ++i) {
      std::sort(entries[i].begin(), entries[i].end());
      for (const std::string& e : entries[i]) {
        profile[i].push_back('|');
        profile[i] += e;
      }
    }
    sweep(&profile);
  }

  // Rebuild in preorder of the sorted tree.
  Query out;
  out.root_mode = q.root_mode;
  std::vector<int> map(n, -1);
  auto build = [&](auto&& self, int node, int parent) -> void {
    map[node] = out.AddNode(q.nodes[node].tag, q.nodes[node].axis, parent);
    out.nodes[map[node]].value_filter = q.nodes[node].value_filter;
    for (int c : sorted_kids[node]) self(self, c, map[node]);
  };
  build(build, 0, -1);
  out.target = map[q.target];

  for (const OrderConstraint& c : q.orders) {
    out.orders.push_back(OrderConstraint{c.kind, map[c.before], map[c.after]});
  }
  std::sort(out.orders.begin(), out.orders.end(),
            [](const OrderConstraint& a, const OrderConstraint& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.before != b.before) return a.before < b.before;
              return a.after < b.after;
            });
  return out;
}

std::string SerializeKey(const Query& q) {
  std::string out;
  if (q.nodes.empty()) return out;
  out.push_back(q.root_mode == RootMode::kAbsolute ? 'A' : 'W');
  auto render = [&](auto&& self, int node) -> void {
    AppendHeader(q, node, &out);
    out.push_back('(');
    for (int c : q.nodes[node].children) self(self, c);
    out.push_back(')');
  };
  render(render, 0);
  for (const OrderConstraint& c : q.orders) {
    out.push_back('|');
    out.push_back(c.kind == OrderKind::kSibling ? 's' : 'd');
    out += std::to_string(c.before);
    out.push_back(',');
    out += std::to_string(c.after);
  }
  return out;
}

std::string CanonicalKey(const Query& q) {
  return SerializeKey(Canonicalize(q));
}

uint64_t StableHash64(std::string_view s) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

uint64_t CanonicalHash(const Query& q) { return StableHash64(CanonicalKey(q)); }

}  // namespace xee::xpath
