#ifndef XEE_BENCH_UTIL_RUNNER_H_
#define XEE_BENCH_UTIL_RUNNER_H_

#include <string>
#include <vector>
#include <functional>

#include "datagen/datagen.h"
#include "workload/workload.h"
#include "xml/tree.h"

namespace xee::bench_util {

/// Command-line configuration shared by the experiment binaries.
///
/// Flags (all optional):
///   --scale=<f>    dataset size multiplier (default 1.0; the paper's
///                  originals are roughly scale 4-16)
///   --queries=<n>  queries generated per class before filtering
///                  (default 800; the paper uses 4000)
///   --seed=<n>     RNG seed for data and workload (default 42)
///   --dataset=<s>  restrict to one dataset (ssplays | dblp | xmark)
struct BenchConfig {
  double scale = 1.0;
  size_t queries = 800;
  uint64_t seed = 42;
  std::vector<std::string> datasets = {"ssplays", "dblp", "xmark"};

  static BenchConfig FromArgs(int argc, char** argv);
};

/// One dataset instance with its generated workload (lazily built).
struct DatasetRun {
  std::string name;
  xml::Document doc;
};

/// Generates the configured datasets.
std::vector<DatasetRun> MakeDatasets(const BenchConfig& config);

/// Generates the Section 7 workload for one dataset under `config`.
workload::Workload MakeWorkload(const xml::Document& doc,
                                const BenchConfig& config);

/// Prints a line of '-' of the given width.
void PrintRule(int width = 78);

/// Prints a section header for a table/figure reproduction.
void PrintHeader(const std::string& title);

/// Wall-clock helper: seconds elapsed running `fn`.
double TimeSeconds(const std::function<void()>& fn);

}  // namespace xee::bench_util

#endif  // XEE_BENCH_UTIL_RUNNER_H_
