#ifndef XEE_BENCH_UTIL_METRICS_H_
#define XEE_BENCH_UTIL_METRICS_H_

#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace xee::bench_util {

/// Relative estimation error |est - act| / act (act > 0; negative
/// queries are removed from workloads).
inline double RelativeError(double estimate, uint64_t actual) {
  XEE_CHECK(actual > 0);
  return std::abs(estimate - static_cast<double>(actual)) /
         static_cast<double>(actual);
}

/// Streaming mean of relative errors.
class ErrorAccumulator {
 public:
  void Add(double estimate, uint64_t actual) {
    sum_ += RelativeError(estimate, actual);
    ++n_;
  }
  void Merge(const ErrorAccumulator& o) {
    sum_ += o.sum_;
    n_ += o.n_;
  }
  size_t count() const { return n_; }
  double Mean() const { return n_ == 0 ? 0 : sum_ / static_cast<double>(n_); }

 private:
  double sum_ = 0;
  size_t n_ = 0;
};

}  // namespace xee::bench_util

#endif  // XEE_BENCH_UTIL_METRICS_H_
