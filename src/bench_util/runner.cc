#include "bench_util/runner.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>

namespace xee::bench_util {

BenchConfig BenchConfig::FromArgs(int argc, char** argv) {
  BenchConfig c;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      c.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      c.queries = static_cast<size_t>(std::atoll(arg + 10));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      c.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--dataset=", 10) == 0) {
      c.datasets = {std::string(arg + 10)};
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (known: --scale= --queries= --seed= "
                   "--dataset=)\n",
                   arg);
      std::exit(2);
    }
  }
  return c;
}

std::vector<DatasetRun> MakeDatasets(const BenchConfig& config) {
  std::vector<DatasetRun> out;
  for (const std::string& name : config.datasets) {
    datagen::GenOptions opt;
    opt.scale = config.scale;
    opt.seed = config.seed;
    auto doc = datagen::GenerateByName(name, opt);
    if (!doc.ok()) {
      std::fprintf(stderr, "dataset %s: %s\n", name.c_str(),
                   doc.status().ToString().c_str());
      std::exit(2);
    }
    out.push_back(DatasetRun{name, std::move(doc).value()});
  }
  return out;
}

workload::Workload MakeWorkload(const xml::Document& doc,
                                const BenchConfig& config) {
  workload::WorkloadOptions opt;
  opt.seed = config.seed;
  opt.simple_count = config.queries;
  opt.branch_count = config.queries;
  return workload::GenerateWorkload(doc, opt);
}

void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

void PrintHeader(const std::string& title) {
  std::printf("\n");
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

double TimeSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace xee::bench_util
