#ifndef XEE_FUZZ_FUZZ_H_
#define XEE_FUZZ_FUZZ_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "estimator/synopsis.h"
#include "eval/exact_evaluator.h"
#include "xml/tree.h"

namespace xee::fuzz {

/// Deterministic, dependency-free fuzzing and differential-oracle
/// subsystem (no libFuzzer; every run is a pure function of the seed).
///
/// Three generators feed three oracle families:
///
///   generators                      oracles
///   ----------                      -------
///   (a) grammar-based XPath         crash/Status cleanliness: every
///       strings over a synopsis's       input returns Result, never UB
///       tag alphabet                    (run under XEE_SANITIZE builds)
///   (b) byte/structure mutants of   metamorphic equivalence, bitwise:
///       serialized synopses             Estimate(q) == Estimate(canon(q)),
///   (c) malformed-XML mutants of        Compile+EstimateCompiled ==
///       datagen output                  Estimate, Deserialize/Serialize
///                                       byte-identity, Write/Parse
///                                       idempotence
///                                   paper-semantics monotonicity vs
///                                       eval/ExactEvaluator on small
///                                       documents (predicates shrink,
///                                       '//' covers '/', order
///                                       constraints shrink)
///
/// The service layer rides along: EstimateBatch is fuzzed through the
/// plan cache and must match the bare estimator bit-for-bit, cold and
/// warm. Every find becomes a corpus entry under tests/corpus/, replayed
/// as a regression test by fuzz_test.

/// One oracle violation. The harness never aborts on a violation; it
/// records a finding with a printable reproducer and keeps going.
struct Finding {
  std::string generator;  ///< "query", "synopsis", "xml", "service"
  std::string oracle;     ///< violated invariant, e.g. "canonical-bitwise"
  std::string detail;     ///< human-readable mismatch description
  std::string input;      ///< reproducer (hex-encoded for binary inputs)
};

/// Aggregate outcome of a fuzz run.
struct Report {
  size_t iterations = 0;
  size_t parse_ok = 0;            ///< inputs the front door accepted
  size_t parse_rejected = 0;      ///< inputs cleanly rejected with a Status
  size_t estimates_checked = 0;   ///< estimator calls cross-checked
  size_t monotonic_checked = 0;   ///< exact-evaluator monotonicity probes
  size_t roundtrips_checked = 0;  ///< serialize/deserialize + render cycles
  std::vector<Finding> findings;

  bool ok() const { return findings.empty(); }
  void Merge(const Report& other);
  /// One-line counters plus one line per finding.
  std::string Summary() const;
};

/// Knobs for a fuzz run. Equal options produce identical reports.
struct FuzzOptions {
  uint64_t seed = 1;
  size_t iterations = 1000;
  /// Fraction of grammar-generated query strings additionally run
  /// through the byte mutator before parsing (error-path coverage).
  double mutate_query_prob = 0.25;
  /// Fraction of query inputs that are raw random bytes instead of
  /// grammar output.
  double random_query_prob = 0.1;
  /// Byte edits applied per synopsis/XML mutant (1..max).
  size_t max_edits = 6;
};

/// Grammar-based XPath query string over `tags` (must be non-empty):
/// chains, branch predicates, value predicates (with escapes), explicit
/// and order axes, '{t}' target markers, wildcards, and occasional
/// unknown tags. Mostly parseable on purpose; the parser is the judge.
std::string GenerateQueryString(Rng& rng, const std::vector<std::string>& tags);

/// A checked-in fuzz input. File format (see tests/corpus/):
///
///   # comment lines
///   kind: query | xml | synopsis
///   expect: accept | reject        (optional; default: any)
///   ---
///   <payload: raw text for query/xml, hex bytes for synopsis>
///
/// One trailing newline of a raw payload is stripped; hex payloads may
/// contain arbitrary whitespace.
struct CorpusEntry {
  enum class Kind { kQuery, kXml, kSynopsis };
  enum class Expect { kAny, kAccept, kReject };
  std::string name;  ///< file name, for finding reports
  Kind kind = Kind::kQuery;
  Expect expect = Expect::kAny;
  std::string data;  ///< decoded payload bytes
};

/// Parses one corpus file's contents. kParseError on a malformed header
/// or bad hex.
Result<CorpusEntry> ParseCorpusEntry(const std::string& name,
                                     std::string_view contents);

/// Lowercase hex codec used for binary corpus payloads.
std::string HexEncode(std::string_view bytes);
Result<std::string> HexDecode(std::string_view hex);

/// The fuzz harness: a fixed set of small documents (the paper's Figure
/// 1 example plus scaled-down datagen datasets) with prebuilt synopses
/// (exact, coarse-bucketed, order-free), exact evaluators, and
/// serialized blobs. Construction is deterministic; all Run* entry
/// points are const and independent.
class Harness {
 public:
  Harness();
  ~Harness();

  /// Generator (a): grammar/mutated/random query strings through parse,
  /// canonicalize, compile and estimate, with the metamorphic and
  /// monotonicity oracle batteries.
  Report RunQueryFuzz(const FuzzOptions& options) const;
  /// Generator (b): mutated synopsis blobs through Deserialize, with
  /// byte-identity re-serialization and probe estimates on survivors.
  Report RunSynopsisFuzz(const FuzzOptions& options) const;
  /// Generator (c): mutated XML through ParseXml, with Write/Parse
  /// idempotence and synopsis construction + estimates on survivors.
  Report RunXmlFuzz(const FuzzOptions& options) const;
  /// Service battery: EstimateBatch through the plan cache (cold, warm,
  /// after invalidation) against the bare estimator, bit-for-bit.
  Report RunServiceFuzz(const FuzzOptions& options) const;
  /// Static-analyzer battery (xpath/analyze.h): grammar queries plus
  /// programmatic unsat mutations (unknown tags, absolute-root
  /// mismatches, order-constraint cycles) against the exact evaluator.
  /// Oracles: every kUnsat verdict exact-counts to 0 on the bed's
  /// document (prune soundness); every prune_safe verdict estimates to
  /// bitwise 0.0; AnalyzeRewrite preserves the estimate bitwise and the
  /// exact count, reaches a fixpoint, and leaves the query canonical;
  /// QueryContains(sup, sub) == true implies count(sup) >= count(sub).
  Report RunAnalyzeFuzz(const FuzzOptions& options) const;
  /// Delta battery: randomized mutation streams (sibling clones,
  /// novel-tag inserts, subtree deletes) through LiveSynopsis against a
  /// scratch rebuild of the materialized document. Oracles: zero
  /// charged patch error implies a bit-identical synopsis; charged
  /// error bounds the probe-estimate gap; ResetToBase restores
  /// exactness; a delta.corrupt-torn batch is rejected without moving
  /// the document. Resets the global FaultInjector on entry and exit.
  Report RunDeltaFuzz(const FuzzOptions& options) const;
  /// Chaos battery: the service under deterministic fault injection
  /// (forced deadline expiry, allocation failures, blob bit-rot),
  /// expired/tight/infinite deadline mixes and admission pressure.
  /// Oracles are the serving invariants — the status surface stays
  /// closed, shed <=> kOverloaded with a retry hint, expired requests
  /// never serve values, degradation respects allow_degraded, full
  /// fidelity returns bit-for-bit once faults clear, trace stage spans
  /// sum within wall time on both the head-sampled and tail-retained
  /// rings, and no trace seq is retained on both rings. Any finding is
  /// accompanied by a flight-recorder dump that must itself re-parse as
  /// strict JSON. Resets the global FaultInjector on entry and exit.
  Report RunChaosFuzz(const FuzzOptions& options) const;
  /// Export battery: adversarial query strings and registry names
  /// (quoting characters, control bytes, invalid UTF-8) driven through
  /// a fully-sampled service — trace rings, per-tenant rows, the
  /// time-series store, the SLO engine, the flight recorder, and the
  /// shadow accuracy pipeline all capture the hostile strings — then
  /// every JSON surface (STATSZ, TRACEZ, ACCZ, healthz, TSZ, ALERTZ,
  /// FLIGHTZ) is re-parsed by the strict common/json parser. Oracle:
  /// the exporters always emit valid JSON, whatever bytes they were
  /// fed.
  Report RunExportFuzz(const FuzzOptions& options) const;
  /// All of the above except chaos, splitting options.iterations
  /// roughly 8:4:6:4:2:2:1 across query/analyze/synopsis/xml/service/
  /// delta/export (chaos mutates the global fault injector, so it runs
  /// only when asked for).
  Report RunAll(const FuzzOptions& options) const;

  /// Replays one corpus entry through the matching oracle battery and
  /// checks its accept/reject expectation.
  Report ReplayEntry(const CorpusEntry& entry) const;
  /// Replays every "*.corpus" file under `dir` (kNotFound if the
  /// directory cannot be read; files that fail to parse become
  /// findings).
  Result<Report> ReplayCorpusDir(const std::string& dir) const;

 private:
  struct TestBed;

  void CheckQueryString(const TestBed& bed, Rng& rng, const std::string& raw,
                        Report* rep) const;
  void CheckSynopsisBlob(const TestBed& bed, const std::string& blob,
                         Report* rep) const;
  void CheckXmlString(const std::string& xml_text, Report* rep) const;
  /// Derives monotonic variants of `q` and compares exact counts.
  void CheckMonotonicity(const TestBed& bed, Rng& rng, const xpath::Query& q,
                         Report* rep) const;
  /// Runs the analyzer-oracle battery on one (valid) query.
  void CheckAnalyze(const TestBed& bed, Rng& rng, const xpath::Query& q,
                    Report* rep) const;

  std::vector<std::unique_ptr<TestBed>> beds_;
};

}  // namespace xee::fuzz

#endif  // XEE_FUZZ_FUZZ_H_
