// Deterministic fuzz driver: same seed, same report, every run.
//
//   fuzz_driver [--iters N] [--seed S] [--generator all|query|analyze|
//                synopsis|xml|service|delta|chaos|export] [--corpus DIR]
//                [--chaos]
//
// Replays the corpus (when given), then runs N generated iterations.
// --chaos is shorthand for --generator chaos: the service under
// deterministic fault injection (see Harness::RunChaosFuzz).
// Exit status: 0 clean, 1 findings, 2 usage/setup error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz/fuzz.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--iters N] [--seed S] [--generator "
               "all|query|analyze|synopsis|xml|service|delta|chaos|export] "
               "[--corpus DIR] [--chaos]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  size_t iters = 10000;
  uint64_t seed = 1;
  std::string generator = "all";
  std::string corpus_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--iters") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      iters = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--generator") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      generator = v;
    } else if (arg == "--corpus") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      corpus_dir = v;
    } else if (arg == "--chaos") {
      generator = "chaos";
    } else {
      return Usage(argv[0]);
    }
  }

  xee::fuzz::Harness harness;
  xee::fuzz::Report report;

  if (!corpus_dir.empty()) {
    auto replayed = harness.ReplayCorpusDir(corpus_dir);
    if (!replayed.ok()) {
      std::fprintf(stderr, "%s\n", replayed.status().ToString().c_str());
      return 2;
    }
    std::printf("corpus: %s\n", replayed.value().Summary().c_str());
    report.Merge(replayed.value());
  }

  xee::fuzz::FuzzOptions options;
  options.seed = seed;
  options.iterations = iters;
  if (iters > 0) {
    xee::fuzz::Report generated;
    if (generator == "all") {
      generated = harness.RunAll(options);
    } else if (generator == "query") {
      generated = harness.RunQueryFuzz(options);
    } else if (generator == "synopsis") {
      generated = harness.RunSynopsisFuzz(options);
    } else if (generator == "xml") {
      generated = harness.RunXmlFuzz(options);
    } else if (generator == "service") {
      generated = harness.RunServiceFuzz(options);
    } else if (generator == "analyze") {
      generated = harness.RunAnalyzeFuzz(options);
    } else if (generator == "delta") {
      generated = harness.RunDeltaFuzz(options);
    } else if (generator == "chaos") {
      generated = harness.RunChaosFuzz(options);
    } else if (generator == "export") {
      generated = harness.RunExportFuzz(options);
    } else {
      return Usage(argv[0]);
    }
    std::printf("fuzz(%s, seed=%llu): %s\n", generator.c_str(),
                static_cast<unsigned long long>(seed),
                generated.Summary().c_str());
    report.Merge(generated);
  }

  return report.ok() ? 0 : 1;
}
