#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/strings.h"
#include "delta/document_delta.h"
#include "delta/live_synopsis.h"
#include "estimator/estimator.h"
#include "estimator/synopsis.h"
#include "fuzz/fuzz.h"
#include "xml/tree.h"
#include "xpath/parser.h"
#include "xpath/query.h"

namespace xee::fuzz {
namespace {

Finding DeltaFinding(const char* oracle, std::string detail,
                     std::string input) {
  Finding f;
  f.generator = "delta";
  f.oracle = oracle;
  f.detail = std::move(detail);
  f.input = std::move(input);
  return f;
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

/// A small random document whose tag alphabet is partitioned by depth
/// (level-1 tags never appear at level 2, and so on), so every document
/// — and every document reachable from it by clone inserts, novel-tag
/// inserts and deletes — is recursion-free. That keeps the exact
/// synopsis exact (Theorem 4.1), which the differential oracles lean
/// on: with zero charged patch error the incremental synopsis must be
/// bit-identical to a scratch rebuild, with charged error the estimate
/// gap must stay inside the accounted bound.
xml::Document RandomDocument(Rng& rng) {
  static const char* const kL1[] = {"A", "G"};
  static const char* const kL2[] = {"B", "C"};
  static const char* const kL3[] = {"D", "E", "F"};
  static const char* const kText[] = {"x", "y", "z", "w"};
  xml::Document doc;
  const xml::NodeId root = doc.CreateRoot("Root");
  const size_t n1 = rng.UniformInt(2, 4);
  for (size_t i = 0; i < n1; ++i) {
    const xml::NodeId a = doc.AppendChild(root, kL1[rng.Index(2)]);
    const size_t n2 = rng.UniformInt(1, 3);
    for (size_t j = 0; j < n2; ++j) {
      const xml::NodeId b = doc.AppendChild(a, kL2[rng.Index(2)]);
      const size_t n3 = rng.UniformInt(0, 3);
      for (size_t k = 0; k < n3; ++k) {
        const xml::NodeId leaf = doc.AppendChild(b, kL3[rng.Index(3)]);
        if (rng.Bernoulli(0.6)) doc.AppendText(leaf, kText[rng.Index(4)]);
      }
    }
  }
  doc.Finalize();
  return doc;
}

/// The canonical exactly-patchable op: clone the subtree at live
/// preorder rank `rank` under its own parent (mirrors
/// MaintenanceManager::CloneOp, but straight off the LiveDocument).
delta::DeltaOp MakeCloneOp(const delta::LiveDocument& live, uint32_t rank) {
  const std::vector<xml::NodeId> by_rank = live.PreorderNodes();
  XEE_CHECK(rank > 0 && rank < by_rank.size());
  const xml::NodeId node = by_rank[rank];
  const xml::NodeId parent = live.doc().Parent(node);
  delta::DeltaOp op;
  op.kind = delta::DeltaOp::Kind::kInsert;
  for (size_t i = 0; i < by_rank.size(); ++i) {
    if (by_rank[i] == parent) {
      op.target = static_cast<uint32_t>(i);
      break;
    }
  }
  op.subtree = delta::SpecFromSubtree(live, node);
  return op;
}

/// A chain of 1..3 never-seen tags under a random live node — the
/// not-exactly-patchable case that must charge the error budget.
delta::DeltaOp MakeNovelOp(Rng& rng, size_t live_nodes,
                           uint64_t* novel_counter) {
  delta::DeltaOp op;
  op.kind = delta::DeltaOp::Kind::kInsert;
  op.target = static_cast<uint32_t>(rng.UniformInt(0, live_nodes - 1));
  const size_t len = rng.UniformInt(1, 3);
  for (size_t k = 0; k < len; ++k) {
    op.subtree.tags.push_back(
        StrFormat("N%llu", static_cast<unsigned long long>((*novel_counter)++)));
    op.subtree.parent.push_back(static_cast<int32_t>(k) - 1);
  }
  return op;
}

delta::DeltaOp MakeDeleteOp(Rng& rng, size_t live_nodes) {
  delta::DeltaOp op;
  op.kind = delta::DeltaOp::Kind::kDelete;
  op.target = static_cast<uint32_t>(rng.UniformInt(1, live_nodes - 1));
  return op;
}

std::string OpLogEntry(const delta::DeltaOp& op) {
  if (op.kind == delta::DeltaOp::Kind::kDelete) {
    return StrFormat("del@%u", op.target);
  }
  return StrFormat("%s@%u", op.subtree.tags.empty() ? "ins"
                            : op.subtree.tags[0][0] == 'N' ? "novel"
                                                           : "clone",
                   op.target);
}

/// Probe queries over the level-tag alphabet, covering plain chains,
/// '//', branch predicates and an order axis. Unknown-in-this-document
/// tags estimate 0 on both sides, which is itself part of the oracle.
const std::vector<xpath::Query>& ProbeQueries() {
  static const std::vector<xpath::Query>* probes = [] {
    static const char* const kProbes[] = {
        "//A",      "//A/B",    "//B/D", "//C//E",
        "/Root/A",  "//A[B]",   "//A[//D]",
        "//A/B/following-sibling::C"};
    auto* v = new std::vector<xpath::Query>;
    for (const char* p : kProbes) {
      auto q = xpath::ParseXPath(p);
      XEE_CHECK(q.ok());
      v->push_back(std::move(q).value());
    }
    return v;
  }();
  return *probes;
}

/// One incremental/scratch state pair under test.
struct LiveBed {
  std::unique_ptr<delta::LiveDocument> live;
  std::unique_ptr<delta::LiveSynopsis> syn;
  estimator::SynopsisOptions build;
  std::shared_ptr<const estimator::Synopsis> latest;  // last published clone
  double cumulative_charge = 0;  // node units since the last (re)base
  std::string op_log;            // reproducer trail

  LiveBed(xml::Document doc, const delta::PatchOptions& patch) {
    build = patch.build;
    live = std::make_unique<delta::LiveDocument>(std::move(doc));
    latest = std::make_shared<const estimator::Synopsis>(
        estimator::Synopsis::Build(live->doc(), build));
    syn = std::make_unique<delta::LiveSynopsis>(latest, live.get(), patch);
  }
};

}  // namespace

Report Harness::RunDeltaFuzz(const FuzzOptions& options) const {
  Report rep;
  FaultInjector& faults = FaultInjector::Global();
  faults.Reset();

  Rng master(options.seed);
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng it = master.Split();
    uint64_t novel_counter = 0;

    // Compares the incremental synopsis against a scratch rebuild of
    // the current materialized shape: bitwise when nothing has been
    // charged, estimate-gap-within-accounted-error otherwise.
    auto check_against_scratch = [&](LiveBed& bed, const char* battery) {
      const xml::Document mat = bed.live->Materialize();
      const estimator::Synopsis scratch =
          estimator::Synopsis::Build(mat, bed.build);
      const std::string input =
          StrFormat("seed=%llu iter=%zu battery=%s ops=[%s]",
                    static_cast<unsigned long long>(options.seed), i, battery,
                    bed.op_log.c_str());
      if (bed.cumulative_charge == 0) {
        ++rep.roundtrips_checked;
        const std::string bp = bed.latest->Serialize();
        const std::string bs = scratch.Serialize();
        if (bp != bs) {
          size_t off = 0;
          while (off < bp.size() && off < bs.size() && bp[off] == bs[off]) {
            ++off;
          }
          std::string tags;
          for (xml::TagId t = 0; t < bed.latest->TagCount(); ++t) {
            const size_t pp = bed.latest->PHisto(t).buckets().size();
            const size_t ps = scratch.PHisto(t).buckets().size();
            const size_t op2 = bed.latest->OHisto(t).buckets().size();
            const size_t os = scratch.OHisto(t).buckets().size();
            if (pp != ps || op2 != os) {
              tags += StrFormat(" %s:p%zu/%zu,o%zu/%zu",
                                bed.latest->TagName(t).c_str(), pp, ps, op2,
                                os);
            }
          }
          rep.findings.push_back(DeltaFinding(
              "exact-bitwise",
              StrFormat("zero charged error but patched synopsis differs "
                        "from scratch rebuild (%zu live nodes; blobs %zu vs "
                        "%zu bytes, first diff at %zu; buckets%s)",
                        bed.live->live_nodes(), bp.size(), bs.size(), off,
                        tags.c_str()),
              input));
          return;
        }
      }
      estimator::Estimator inc(*bed.latest);
      estimator::Estimator scr(scratch);
      for (const xpath::Query& q : ProbeQueries()) {
        auto ei = inc.Estimate(q);
        auto es = scr.Estimate(q);
        ++rep.estimates_checked;
        if (ei.ok() != es.ok()) {
          rep.findings.push_back(DeltaFinding(
              "probe-status",
              StrFormat("incremental=%s scratch=%s",
                        ei.status().ToString().c_str(),
                        es.status().ToString().c_str()),
              input));
          continue;
        }
        if (!ei.ok()) continue;
        const double vi = ei.value();
        const double vs = es.value();
        if (!(vi >= 0) || !(vs >= 0) || vi != vi || vs != vs) {
          rep.findings.push_back(DeltaFinding(
              "probe-finite",
              StrFormat("incremental=%.17g scratch=%.17g", vi, vs), input));
          continue;
        }
        if (bed.cumulative_charge == 0) {
          if (!SameBits(vi, vs)) {
            rep.findings.push_back(DeltaFinding(
                "probe-bitwise",
                StrFormat("zero charged error but incremental=%.17g "
                          "scratch=%.17g",
                          vi, vs),
                input));
          }
        } else if (vi > vs + 2 * bed.cumulative_charge + 1e-6 ||
                   vs > vi + 2 * bed.cumulative_charge + 1e-6) {
          rep.findings.push_back(DeltaFinding(
              "probe-bound",
              StrFormat("incremental=%.17g scratch=%.17g exceeds accounted "
                        "charge %.17g",
                        vi, vs, bed.cumulative_charge),
              input));
        }
      }
    };

    auto apply = [&](LiveBed& bed, delta::DocumentDelta batch,
                     const char* battery,
                     delta::ApplyResult* out = nullptr) -> bool {
      for (const delta::DeltaOp& op : batch.ops) {
        if (!bed.op_log.empty()) bed.op_log += ',';
        bed.op_log += OpLogEntry(op);
      }
      auto res = bed.syn->Apply(batch);
      const std::string input =
          StrFormat("seed=%llu iter=%zu battery=%s ops=[%s]",
                    static_cast<unsigned long long>(options.seed), i, battery,
                    bed.op_log.c_str());
      if (!res.ok()) {
        ++rep.parse_rejected;
        rep.findings.push_back(DeltaFinding(
            "apply-status",
            StrFormat("valid batch rejected: %s",
                      res.status().ToString().c_str()),
            input));
        return false;
      }
      ++rep.parse_ok;
      delta::ApplyResult last = std::move(res).value();
      if (last.ops_applied + last.ops_skipped != batch.ops.size()) {
        rep.findings.push_back(DeltaFinding(
            "op-conservation",
            StrFormat("applied %llu + skipped %llu != batch size %zu",
                      static_cast<unsigned long long>(last.ops_applied),
                      static_cast<unsigned long long>(last.ops_skipped),
                      batch.ops.size()),
            input));
      }
      if (last.patch_error + 1e-12 < bed.syn->patch_error() ||
          bed.syn->patch_error() + 1e-12 < last.patch_error) {
        rep.findings.push_back(DeltaFinding(
            "error-accounting",
            StrFormat("result patch_error %.17g != synopsis patch_error %.17g",
                      last.patch_error, bed.syn->patch_error()),
            input));
      }
      bed.cumulative_charge += last.charged_nodes;
      bed.latest = last.synopsis;
      if (out != nullptr) *out = std::move(last);
      return true;
    };

    // Battery A (strict): clone-only streams are exactly patchable —
    // zero charge and a bit-identical synopsis after every batch.
    {
      delta::PatchOptions patch;
      patch.error_budget = 1e9;  // exactness must not depend on the budget
      LiveBed bed(RandomDocument(it), patch);
      const size_t batches = it.UniformInt(1, 3);
      for (size_t b = 0; b < batches; ++b) {
        delta::DocumentDelta batch;
        const size_t n = it.UniformInt(1, 2);
        for (size_t o = 0; o < n; ++o) {
          batch.ops.push_back(MakeCloneOp(
              *bed.live,
              static_cast<uint32_t>(it.UniformInt(1, bed.live->live_nodes() - 1))));
        }
        delta::ApplyResult res;
        if (!apply(bed, std::move(batch), "A", &res)) break;
        if (res.charged_nodes != 0) {
          rep.findings.push_back(DeltaFinding(
              "clone-charged",
              StrFormat("sibling clone charged %.17g nodes",
                        res.charged_nodes),
              StrFormat("seed=%llu iter=%zu battery=A ops=[%s]",
                        static_cast<unsigned long long>(options.seed), i,
                        bed.op_log.c_str())));
        }
        check_against_scratch(bed, "A");
      }
    }

    // Battery B (tolerant): mixed clone/novel/delete streams; charged
    // error stays accounted and bounds the estimate gap. Battery C
    // rides on the end state: rebuild from scratch, compact, re-base,
    // and the next clone must be exact again. Battery D closes with the
    // armed delta.corrupt fault: the batch is rejected cleanly.
    {
      delta::PatchOptions patch;
      patch.error_budget = 0.5;
      patch.histo_patch_tolerance = it.Bernoulli(0.5) ? 0.0 : 0.25;
      patch.build.build_values = !it.Bernoulli(0.25);
      LiveBed bed(RandomDocument(it), patch);
      const size_t batches = it.UniformInt(2, 3);
      bool live_ok = true;
      for (size_t b = 0; b < batches && live_ok; ++b) {
        delta::DocumentDelta batch;
        const size_t n = it.UniformInt(1, 3);
        for (size_t o = 0; o < n; ++o) {
          const double r = it.UniformDouble();
          const size_t nodes = bed.live->live_nodes();
          if (r < 0.5 && nodes >= 2) {
            batch.ops.push_back(MakeCloneOp(
                *bed.live, static_cast<uint32_t>(it.UniformInt(1, nodes - 1))));
          } else if (r < 0.8 || nodes < 4) {
            batch.ops.push_back(MakeNovelOp(it, nodes, &novel_counter));
          } else {
            batch.ops.push_back(MakeDeleteOp(it, nodes));
          }
        }
        live_ok = apply(bed, std::move(batch), "B");
        if (live_ok) check_against_scratch(bed, "B");
      }

      // A delete-heavy stream can shrink the document to its root, in
      // which case there is nothing left to clone in C/D.
      if (live_ok && bed.live->live_nodes() >= 2) {
        // Battery C: the rebuild path. Materialize, build from scratch,
        // compact the arena and re-base — the budget resets and clone
        // exactness must hold again on the rebuilt base.
        xml::Document mat = bed.live->Materialize();
        auto rebuilt = std::make_shared<const estimator::Synopsis>(
            estimator::Synopsis::Build(mat, bed.build));
        bed.live->Compact(std::move(mat));
        bed.syn->ResetToBase(rebuilt);
        bed.latest = std::move(rebuilt);
        bed.cumulative_charge = 0;
        bed.op_log += ",rebase";
        if (bed.syn->patch_error() != 0 || bed.syn->budget_exhausted()) {
          rep.findings.push_back(DeltaFinding(
              "rebase-reset",
              StrFormat("after ResetToBase patch_error=%.17g exhausted=%d",
                        bed.syn->patch_error(),
                        bed.syn->budget_exhausted() ? 1 : 0),
              StrFormat("seed=%llu iter=%zu battery=C ops=[%s]",
                        static_cast<unsigned long long>(options.seed), i,
                        bed.op_log.c_str())));
        }
        delta::DocumentDelta batch;
        batch.ops.push_back(MakeCloneOp(
            *bed.live,
            static_cast<uint32_t>(it.UniformInt(1, bed.live->live_nodes() - 1))));
        if (apply(bed, std::move(batch), "C")) {
          check_against_scratch(bed, "C");
        }

        // Battery D: a torn batch (corrupted target rank) must be
        // rejected without touching document or synopsis, and the next
        // clean batch must apply as if nothing happened.
        const uint64_t seq_before = bed.live->seq();
        const size_t nodes_before = bed.live->live_nodes();
        delta::DocumentDelta torn;
        torn.ops.push_back(MakeCloneOp(
            *bed.live,
            static_cast<uint32_t>(it.UniformInt(1, bed.live->live_nodes() - 1))));
        {
          FaultConfig corrupt;
          corrupt.max_fires = 1;
          ScopedFault fault(delta::LiveDocument::kCorruptFaultSite, corrupt);
          auto res = bed.syn->Apply(torn);
          const std::string input =
              StrFormat("seed=%llu iter=%zu battery=D ops=[%s]",
                        static_cast<unsigned long long>(options.seed), i,
                        bed.op_log.c_str());
          if (res.ok()) {
            rep.findings.push_back(DeltaFinding(
                "corrupt-accepted", "fault-corrupted batch was applied",
                input));
          } else {
            ++rep.parse_rejected;
            if (res.status().code() != StatusCode::kInvalidArgument) {
              rep.findings.push_back(DeltaFinding(
                  "corrupt-status",
                  StrFormat("expected kInvalidArgument, got %s",
                            res.status().ToString().c_str()),
                  input));
            }
          }
          if (bed.live->seq() != seq_before ||
              bed.live->live_nodes() != nodes_before) {
            rep.findings.push_back(DeltaFinding(
                "corrupt-mutated",
                StrFormat("rejected batch moved the document: seq %llu->%llu "
                          "nodes %zu->%zu",
                          static_cast<unsigned long long>(seq_before),
                          static_cast<unsigned long long>(bed.live->seq()),
                          nodes_before, bed.live->live_nodes()),
                input));
          }
          // The fault budget is spent; the same batch now goes through.
          if (apply(bed, std::move(torn), "D")) {
            check_against_scratch(bed, "D");
          }
        }
      }
    }

    ++rep.iterations;
  }
  faults.Reset();
  return rep;
}

}  // namespace xee::fuzz
