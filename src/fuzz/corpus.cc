#include <cctype>
#include <sstream>
#include <string_view>

#include "common/strings.h"
#include "fuzz/fuzz.h"

namespace xee::fuzz {
namespace {

Status ParseError(const std::string& name, const std::string& what) {
  return Status(StatusCode::kParseError,
                StrFormat("corpus entry %s: %s", name.c_str(), what.c_str()));
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// The value of a "key:" header line, or false when `line` has a
/// different key.
bool HeaderValue(std::string_view line, std::string_view key,
                 std::string_view* value) {
  if (line.substr(0, key.size()) != key) return false;
  std::string_view rest = line.substr(key.size());
  if (rest.empty() || rest.front() != ':') return false;
  *value = Trim(rest.substr(1));
  return true;
}

}  // namespace

void Report::Merge(const Report& other) {
  iterations += other.iterations;
  parse_ok += other.parse_ok;
  parse_rejected += other.parse_rejected;
  estimates_checked += other.estimates_checked;
  monotonic_checked += other.monotonic_checked;
  roundtrips_checked += other.roundtrips_checked;
  findings.insert(findings.end(), other.findings.begin(),
                  other.findings.end());
}

std::string Report::Summary() const {
  std::ostringstream os;
  os << "iterations=" << iterations << " parse_ok=" << parse_ok
     << " parse_rejected=" << parse_rejected
     << " estimates=" << estimates_checked
     << " monotonic=" << monotonic_checked
     << " roundtrips=" << roundtrips_checked
     << " findings=" << findings.size();
  for (const Finding& f : findings) {
    os << "\n[" << f.generator << "/" << f.oracle << "] " << f.detail;
    // Reproducers are printed whole — a truncated input cannot replay.
    os << "\n  input: " << f.input;
  }
  return os.str();
}

std::string HexEncode(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

Result<std::string> HexDecode(std::string_view hex) {
  std::string out;
  out.reserve(hex.size() / 2);
  int hi = -1;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    int nibble;
    if (c >= '0' && c <= '9') {
      nibble = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nibble = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = c - 'A' + 10;
    } else {
      return Status(StatusCode::kParseError,
                    StrFormat("bad hex digit '%c'", c));
    }
    if (hi < 0) {
      hi = nibble;
    } else {
      out.push_back(static_cast<char>((hi << 4) | nibble));
      hi = -1;
    }
  }
  if (hi >= 0) {
    return Status(StatusCode::kParseError, "odd number of hex digits");
  }
  return out;
}

Result<CorpusEntry> ParseCorpusEntry(const std::string& name,
                                     std::string_view contents) {
  CorpusEntry entry;
  entry.name = name;
  bool saw_kind = false;
  bool saw_separator = false;
  size_t pos = 0;
  while (pos <= contents.size()) {
    const size_t eol = contents.find('\n', pos);
    std::string_view line = contents.substr(
        pos, (eol == std::string_view::npos ? contents.size() : eol) - pos);
    pos = eol == std::string_view::npos ? contents.size() + 1 : eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line == "---") {
      saw_separator = true;
      break;
    }
    if (Trim(line).empty() || line.front() == '#') continue;
    std::string_view value;
    if (HeaderValue(line, "kind", &value)) {
      saw_kind = true;
      if (value == "query") {
        entry.kind = CorpusEntry::Kind::kQuery;
      } else if (value == "xml") {
        entry.kind = CorpusEntry::Kind::kXml;
      } else if (value == "synopsis") {
        entry.kind = CorpusEntry::Kind::kSynopsis;
      } else {
        return ParseError(name, "unknown kind");
      }
    } else if (HeaderValue(line, "expect", &value)) {
      if (value == "accept") {
        entry.expect = CorpusEntry::Expect::kAccept;
      } else if (value == "reject") {
        entry.expect = CorpusEntry::Expect::kReject;
      } else {
        return ParseError(name, "unknown expect");
      }
    } else {
      return ParseError(name, "unrecognized header line");
    }
  }
  if (!saw_separator) return ParseError(name, "missing '---' separator");
  if (!saw_kind) return ParseError(name, "missing 'kind:' header");

  std::string_view payload =
      pos <= contents.size() ? contents.substr(pos) : std::string_view();
  if (entry.kind == CorpusEntry::Kind::kSynopsis) {
    auto decoded = HexDecode(payload);
    if (!decoded.ok()) return ParseError(name, decoded.status().message());
    entry.data = std::move(decoded).value();
  } else {
    entry.data = std::string(payload);
    // Text editors append a final newline; it is not part of the input.
    if (!entry.data.empty() && entry.data.back() == '\n') entry.data.pop_back();
  }
  return entry;
}

}  // namespace xee::fuzz
