#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/fault.h"
#include "common/json.h"
#include "common/mutate.h"
#include "common/strings.h"
#include "datagen/datagen.h"
#include "delta/document_delta.h"
#include "estimator/estimator.h"
#include "fuzz/fuzz.h"
#include "service/service.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpath/analyze.h"
#include "xpath/canonical.h"
#include "xpath/parser.h"

namespace xee::fuzz {
namespace {

/// The paper's Figure 1 running example (same shape as the test
/// fixture's MakePaperDocument, which lives under tests/ and is not
/// linkable from the library). Tiny, recursion-free, and rich in order
/// structure — the ideal bed for exactness oracles.
xml::Document MakeFigure1Document() {
  xml::Document doc;
  auto root = doc.CreateRoot("Root");

  auto a1 = doc.AppendChild(root, "A");
  auto b1 = doc.AppendChild(a1, "B");
  doc.AppendChild(b1, "D");
  doc.AppendChild(b1, "E");

  auto a2 = doc.AppendChild(root, "A");
  auto b2 = doc.AppendChild(a2, "B");
  doc.AppendChild(b2, "D");
  auto c2 = doc.AppendChild(a2, "C");
  doc.AppendChild(c2, "E");
  doc.AppendChild(c2, "F");
  auto b3 = doc.AppendChild(a2, "B");
  doc.AppendChild(b3, "D");

  auto a3 = doc.AppendChild(root, "A");
  auto c3 = doc.AppendChild(a3, "C");
  doc.AppendChild(c3, "E");
  auto b4 = doc.AppendChild(a3, "B");
  doc.AppendChild(b4, "D");

  doc.Finalize();
  return doc;
}

/// True when no element has a proper ancestor of the same tag —
/// the premise of Theorem 4.1's exactness.
bool IsRecursionFree(const xml::Document& doc) {
  for (xml::NodeId n = 0; n < doc.NodeCount(); ++n) {
    for (xml::NodeId a = doc.Parent(n); a != xml::kNullNode;
         a = doc.Parent(a)) {
      if (doc.Tag(a) == doc.Tag(n)) return false;
    }
  }
  return true;
}

/// Bitwise comparison: the metamorphic oracles demand identical bits,
/// not approximate equality — 1-ulp drift means some code path depends
/// on query spelling.
bool BitwiseEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::string Printable(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (std::isprint(static_cast<unsigned char>(c))) {
      out.push_back(c);
    } else {
      out += StrFormat("\\x%02x", static_cast<unsigned char>(c));
    }
  }
  return out;
}

Finding MakeFinding(const char* generator, const char* oracle,
                    std::string detail, std::string_view input,
                    bool hex_input = false) {
  Finding f;
  f.generator = generator;
  f.oracle = oracle;
  f.detail = std::move(detail);
  f.input = hex_input ? HexEncode(input) : Printable(input);
  return f;
}

/// Applies key-neutral whitespace decoration: StripWhitespace removes
/// whitespace outside quoted literals, so padding at the front/back and
/// after the leading '/' never changes the parsed query.
std::string Whitespaced(Rng& rng, const std::string& query) {
  std::string out = query;
  if (rng.Bernoulli(0.5)) out.insert(0, " ");
  if (rng.Bernoulli(0.3) && out.size() > 1) out.insert(1, "\t");
  if (rng.Bernoulli(0.5)) out += "\n";
  return out;
}

}  // namespace

struct Harness::TestBed {
  std::string name;
  bool recursion_free = false;
  xml::Document doc;
  std::unique_ptr<eval::ExactEvaluator> exact_eval;
  std::vector<std::string> tags;
  /// v=0 with order and value statistics: exact per Theorem 4.1.
  std::shared_ptr<const estimator::Synopsis> exact;
  /// Coarse buckets (v=2): the lossy configuration of paper Section 6.
  std::shared_ptr<const estimator::Synopsis> coarse;
  /// build_order=false: exercises the order-unsupported paths.
  std::shared_ptr<const estimator::Synopsis> no_order;
  std::string exact_blob;  ///< exact->Serialize(), the mutation base
  std::string xml_text;    ///< WriteXml(doc), the XML mutation base
};

Harness::Harness() {
  auto add_bed = [this](std::string name, xml::Document doc) {
    auto bed = std::make_unique<TestBed>();
    bed->name = std::move(name);
    bed->doc = std::move(doc);
    bed->recursion_free = IsRecursionFree(bed->doc);
    bed->exact_eval = std::make_unique<eval::ExactEvaluator>(bed->doc);
    for (size_t t = 0; t < bed->doc.TagCount(); ++t) {
      bed->tags.push_back(bed->doc.TagNameOf(static_cast<xml::TagId>(t)));
    }
    estimator::SynopsisOptions exact_opt;  // v=0, order + values
    bed->exact = std::make_shared<estimator::Synopsis>(
        estimator::Synopsis::Build(bed->doc, exact_opt));
    estimator::SynopsisOptions coarse_opt;
    coarse_opt.p_variance = 2;
    coarse_opt.o_variance = 2;
    bed->coarse = std::make_shared<estimator::Synopsis>(
        estimator::Synopsis::Build(bed->doc, coarse_opt));
    estimator::SynopsisOptions no_order_opt;
    no_order_opt.build_order = false;
    bed->no_order = std::make_shared<estimator::Synopsis>(
        estimator::Synopsis::Build(bed->doc, no_order_opt));
    bed->exact_blob = bed->exact->Serialize();
    bed->xml_text = xml::WriteXml(bed->doc);
    beds_.push_back(std::move(bed));
  };

  add_bed("paper", MakeFigure1Document());
  datagen::GenOptions ssplays_opt;
  ssplays_opt.seed = 7;
  ssplays_opt.scale = 0.02;
  add_bed("ssplays", datagen::GenerateSsPlays(ssplays_opt));
  datagen::GenOptions dblp_opt;
  dblp_opt.seed = 11;
  dblp_opt.scale = 0.01;
  add_bed("dblp", datagen::GenerateDblp(dblp_opt));
  // Appended last so the historical bed indices (and with them the
  // replay corpus and seed streams of the older batteries) stay put.
  // XMark's deep recursive parlist/listitem structure gives the
  // analyzer battery reachable-pair and non-trivial-gap coverage the
  // flatter beds cannot.
  datagen::GenOptions xmark_opt;
  xmark_opt.seed = 13;
  xmark_opt.scale = 0.01;
  add_bed("xmark", datagen::GenerateXMark(xmark_opt));
}

Harness::~Harness() = default;

void Harness::CheckMonotonicity(const TestBed& bed, Rng& rng,
                                const xpath::Query& q, Report* rep) const {
  auto base = bed.exact_eval->Count(q);
  if (!base.ok()) return;  // outside the evaluator's fragment
  const double base_count = static_cast<double>(base.value());

  auto expect_at_least = [&](const xpath::Query& relaxed, const char* oracle,
                             const char* how) {
    auto relaxed_count = bed.exact_eval->Count(relaxed);
    ++rep->monotonic_checked;
    if (!relaxed_count.ok()) {
      // A relaxation may cross the evaluator's fragment boundary (e.g.
      // an unknown-tag query returns 0 before the mixed-constraint-kind
      // check that the relaxed form then trips). kUnsupported is a
      // documented answer, not a monotonicity violation.
      if (relaxed_count.status().code() == StatusCode::kUnsupported) return;
      rep->findings.push_back(MakeFinding(
          "query", oracle,
          StrFormat("relaxation (%s) of evaluable query failed: %s [bed %s]",
                    how, relaxed_count.status().ToString().c_str(),
                    bed.name.c_str()),
          q.ToString()));
      return;
    }
    if (static_cast<double>(relaxed_count.value()) < base_count) {
      rep->findings.push_back(MakeFinding(
          "query", oracle,
          StrFormat("%s shrank the result: %llu < %llu on '%s' [bed %s]", how,
                    static_cast<unsigned long long>(relaxed_count.value()),
                    static_cast<unsigned long long>(base.value()),
                    relaxed.ToString().c_str(), bed.name.c_str()),
          q.ToString()));
    }
  };

  // '//' accepts every match of '/': widen one random child axis.
  // Sibling-constraint endpoints are pinned to the child axis by
  // validation, so they are not legal relaxation sites.
  std::vector<int> child_axes;
  for (int i = 1; i < static_cast<int>(q.size()); ++i) {
    if (q.nodes[i].axis != xpath::StructAxis::kChild) continue;
    bool sibling_endpoint = false;
    for (const auto& c : q.orders) {
      sibling_endpoint |= c.kind == xpath::OrderKind::kSibling &&
                          (c.before == i || c.after == i);
    }
    if (!sibling_endpoint) child_axes.push_back(i);
  }
  if (!child_axes.empty()) {
    xpath::Query relaxed = q;
    relaxed.nodes[child_axes[rng.Index(child_axes.size())]].axis =
        xpath::StructAxis::kDescendant;
    expect_at_least(relaxed, "mono-axis", "child -> descendant");
  }

  // '//a...' accepts every match of '/a...'.
  if (q.root_mode == xpath::RootMode::kAbsolute) {
    xpath::Query relaxed = q;
    relaxed.root_mode = xpath::RootMode::kAnywhere;
    expect_at_least(relaxed, "mono-root", "absolute -> anywhere root");
  }

  // Dropping a predicate leaf (and any order constraint on it) can only
  // grow the result.
  std::vector<int> droppable;
  for (int i = 1; i < static_cast<int>(q.size()); ++i) {
    if (q.nodes[i].children.empty() && i != q.target) droppable.push_back(i);
  }
  if (!droppable.empty()) {
    const int victim = droppable[rng.Index(droppable.size())];
    std::vector<bool> keep(q.size(), true);
    keep[victim] = false;
    expect_at_least(q.SubQuery(keep), "mono-predicate", "dropped a leaf");
  }

  // Dropping a value predicate can only grow the result.
  std::vector<int> valued;
  for (int i = 0; i < static_cast<int>(q.size()); ++i) {
    if (q.nodes[i].value_filter.has_value()) valued.push_back(i);
  }
  if (!valued.empty()) {
    xpath::Query relaxed = q;
    relaxed.nodes[valued[rng.Index(valued.size())]].value_filter.reset();
    expect_at_least(relaxed, "mono-value", "dropped a value predicate");
  }

  // The order-unconstrained query covers the order-constrained one.
  if (!q.orders.empty()) {
    xpath::Query relaxed = q;
    relaxed.orders.clear();
    expect_at_least(relaxed, "mono-order", "dropped order constraints");
  }
}

void Harness::CheckQueryString(const TestBed& bed, Rng& rng,
                               const std::string& raw, Report* rep) const {
  const std::string stripped = xpath::StripWhitespace(raw);
  auto parsed = xpath::ParseXPath(stripped);
  if (!parsed.ok()) {
    ++rep->parse_rejected;
    return;
  }
  ++rep->parse_ok;
  const xpath::Query& q = parsed.value();
  if (Status v = q.Validate(); !v.ok()) {
    rep->findings.push_back(MakeFinding(
        "query", "parse-validate",
        "ParseXPath returned a query failing Validate: " + v.ToString(), raw));
    return;
  }

  const xpath::Query canon = xpath::Canonicalize(q);
  const std::string key = xpath::SerializeKey(canon);
  if (xpath::SerializeKey(xpath::Canonicalize(canon)) != key) {
    rep->findings.push_back(MakeFinding(
        "query", "canonical-idempotent",
        "Canonicalize(Canonicalize(q)) differs from Canonicalize(q)", raw));
  }

  // ToString must render a query that parses back to the same canonical
  // key (the escape-aware renderer is what makes this hold for value
  // predicates containing quotes and backslashes).
  auto reparsed = xpath::ParseXPath(q.ToString());
  if (!reparsed.ok()) {
    rep->findings.push_back(
        MakeFinding("query", "tostring-roundtrip",
                    "ToString output failed to parse: '" + q.ToString() +
                        "': " + reparsed.status().ToString(),
                    raw));
  } else if (xpath::CanonicalKey(reparsed.value()) != key) {
    rep->findings.push_back(MakeFinding(
        "query", "tostring-roundtrip",
        "ToString output parsed to a different query: '" + q.ToString() + "'",
        raw));
  }

  struct Variant {
    const char* label;
    const estimator::Synopsis* syn;
  };
  const Variant variants[] = {{"exact", bed.exact.get()},
                              {"coarse", bed.coarse.get()},
                              {"no-order", bed.no_order.get()}};
  for (const Variant& var : variants) {
    estimator::Estimator est(*var.syn);
    auto e1 = est.Estimate(q);
    auto e2 = est.Estimate(canon);
    ++rep->estimates_checked;
    if (e1.ok() != e2.ok() ||
        (!e1.ok() && e1.status().code() != e2.status().code())) {
      rep->findings.push_back(MakeFinding(
          "query", "canonical-status",
          StrFormat("Estimate(q)=%s but Estimate(canon)=%s [%s/%s]",
                    e1.status().ToString().c_str(),
                    e2.status().ToString().c_str(), bed.name.c_str(),
                    var.label),
          raw));
      continue;
    }
    if (e1.ok() && !BitwiseEq(e1.value(), e2.value())) {
      rep->findings.push_back(MakeFinding(
          "query", "canonical-bitwise",
          StrFormat("Estimate(q)=%.17g but Estimate(canon)=%.17g [%s/%s]",
                    e1.value(), e2.value(), bed.name.c_str(), var.label),
          raw));
    }
    if (e1.ok() && (!std::isfinite(e1.value()) || e1.value() < 0)) {
      rep->findings.push_back(MakeFinding(
          "query", "estimate-range",
          StrFormat("estimate %.17g not finite/non-negative [%s/%s]",
                    e1.value(), bed.name.c_str(), var.label),
          raw));
    }
    auto compiled = est.Compile(q);
    if (compiled.ok()) {
      auto ec = est.EstimateCompiled(compiled.value());
      if (ec.ok() != e1.ok() ||
          (!ec.ok() && ec.status().code() != e1.status().code())) {
        rep->findings.push_back(MakeFinding(
            "query", "compile-status",
            StrFormat("EstimateCompiled=%s but Estimate=%s [%s/%s]",
                      ec.status().ToString().c_str(),
                      e1.status().ToString().c_str(), bed.name.c_str(),
                      var.label),
            raw));
      } else if (ec.ok() && !BitwiseEq(ec.value(), e1.value())) {
        rep->findings.push_back(MakeFinding(
            "query", "compile-bitwise",
            StrFormat("EstimateCompiled=%.17g but Estimate=%.17g [%s/%s]",
                      ec.value(), e1.value(), bed.name.c_str(), var.label),
            raw));
      }
    } else if (e1.ok()) {
      rep->findings.push_back(MakeFinding(
          "query", "compile-status",
          StrFormat("Compile failed (%s) on a query Estimate accepts [%s/%s]",
                    compiled.status().ToString().c_str(), bed.name.c_str(),
                    var.label),
          raw));
    }
  }

  // Theorem 4.1: on a recursion-free document with v=0 histograms, the
  // estimate of a plain chain (no branches, orders, wildcards or value
  // predicates; target = the leaf) equals the exact count.
  if (bed.recursion_free && q.orders.empty()) {
    bool plain_chain = q.nodes[q.target].children.empty();
    for (const auto& n : q.nodes) {
      plain_chain &= n.children.size() <= 1 && n.tag != "*" &&
                     !n.value_filter.has_value();
    }
    if (plain_chain) {
      estimator::Estimator est(*bed.exact);
      auto e = est.Estimate(q);
      auto c = bed.exact_eval->Count(q);
      if (e.ok() && c.ok()) {
        const double exact = static_cast<double>(c.value());
        if (std::abs(e.value() - exact) > 1e-6 * std::max(1.0, exact)) {
          rep->findings.push_back(MakeFinding(
              "query", "theorem-4.1",
              StrFormat("estimate %.17g != exact count %.0f on '%s' [bed %s]",
                        e.value(), exact, q.ToString().c_str(),
                        bed.name.c_str()),
              raw));
        }
      }
    }
  }

  CheckMonotonicity(bed, rng, q, rep);
}

void Harness::CheckAnalyze(const TestBed& bed, Rng& rng, const xpath::Query& q,
                           Report* rep) const {
  const estimator::Synopsis& syn = *bed.exact;
  xpath::AnalyzerView view;
  view.reach = &syn.reach();
  view.find_tag = [&syn](const std::string& name) { return syn.FindTag(name); };
  view.root_tag = syn.root_tag();
  view.root_name = syn.TagName(syn.root_tag());

  const xpath::Query canon = xpath::Canonicalize(q);
  const std::string rendered = q.ToString();

  // Oracle: prune soundness. A kUnsat verdict claims the exact count is
  // 0 on the very document the synopsis summarizes — the one claim the
  // whole pruning fast path rests on. The exact evaluator is the judge;
  // one nonzero count is a finding.
  const xpath::Analysis analysis = xpath::AnalyzeSatisfiability(canon, view);
  if (analysis.verdict == xpath::SatVerdict::kUnsat) {
    auto count = bed.exact_eval->Count(canon);
    ++rep->monotonic_checked;
    if (count.ok() && count.value() != 0) {
      rep->findings.push_back(MakeFinding(
          "analyze", "prune-unsound",
          StrFormat("analyzer ruled '%s' unsat (%s) but exact count is %llu "
                    "[bed %s]",
                    canon.ToString().c_str(), analysis.reason,
                    static_cast<unsigned long long>(count.value()),
                    bed.name.c_str()),
          rendered));
    }
  }

  // Oracle: the prune_safe claim — the baseline estimator itself
  // answers bitwise 0.0 — against every synopsis variant whose order
  // support satisfies the service's prune gate. This is what makes the
  // pruned outcome invisible in served bits.
  struct Variant {
    const char* label;
    const estimator::Synopsis* syn;
  };
  const Variant variants[] = {{"exact", bed.exact.get()},
                              {"coarse", bed.coarse.get()},
                              {"no-order", bed.no_order.get()}};
  if (analysis.verdict == xpath::SatVerdict::kUnsat && analysis.prune_safe) {
    for (const Variant& var : variants) {
      if (!canon.orders.empty() && !var.syn->has_order()) continue;
      estimator::Estimator est(*var.syn);
      auto e = est.Estimate(canon);
      ++rep->estimates_checked;
      if (!e.ok() || !BitwiseEq(e.value(), 0.0)) {
        rep->findings.push_back(MakeFinding(
            "analyze", "prune-bitwise",
            StrFormat("prune_safe verdict (%s) but Estimate='%s'/%.17g on "
                      "'%s' [%s/%s]",
                      analysis.reason, e.status().ToString().c_str(),
                      e.ok() ? e.value() : -1.0, canon.ToString().c_str(),
                      bed.name.c_str(), var.label),
            rendered));
      }
    }
  }

  // Oracle: rewrite invariance. Whatever AnalyzeRewrite did, the
  // estimator must not be able to tell — same status, same bits — on
  // every synopsis variant, and the exact evaluator must count the same
  // documents. Then the driver must have reached a fixpoint and left
  // the query canonical (its output is a cache key).
  xpath::Query rewritten = canon;
  const int applied = xpath::AnalyzeRewrite(&rewritten, view);
  if (applied > 0) {
    for (const Variant& var : variants) {
      estimator::Estimator est(*var.syn);
      auto e1 = est.Estimate(canon);
      auto e2 = est.Estimate(rewritten);
      ++rep->estimates_checked;
      if (e1.ok() != e2.ok() ||
          (!e1.ok() && e1.status().code() != e2.status().code())) {
        rep->findings.push_back(MakeFinding(
            "analyze", "rewrite-status",
            StrFormat("'%s' -> '%s': Estimate %s vs %s [%s/%s]",
                      canon.ToString().c_str(), rewritten.ToString().c_str(),
                      e1.status().ToString().c_str(),
                      e2.status().ToString().c_str(), bed.name.c_str(),
                      var.label),
            rendered));
      } else if (e1.ok() && !BitwiseEq(e1.value(), e2.value())) {
        rep->findings.push_back(MakeFinding(
            "analyze", "rewrite-bitwise",
            StrFormat("'%s' -> '%s': %.17g vs %.17g [%s/%s]",
                      canon.ToString().c_str(), rewritten.ToString().c_str(),
                      e1.value(), e2.value(), bed.name.c_str(), var.label),
            rendered));
      }
    }
    auto c1 = bed.exact_eval->Count(canon);
    auto c2 = bed.exact_eval->Count(rewritten);
    ++rep->monotonic_checked;
    if (c1.ok() && c2.ok() && c1.value() != c2.value()) {
      rep->findings.push_back(MakeFinding(
          "analyze", "rewrite-exact",
          StrFormat("'%s' -> '%s': exact count %llu vs %llu [bed %s]",
                    canon.ToString().c_str(), rewritten.ToString().c_str(),
                    static_cast<unsigned long long>(c1.value()),
                    static_cast<unsigned long long>(c2.value()),
                    bed.name.c_str()),
          rendered));
    }
    xpath::Query again = rewritten;
    if (xpath::AnalyzeRewrite(&again, view) != 0) {
      rep->findings.push_back(MakeFinding(
          "analyze", "rewrite-fixpoint",
          "AnalyzeRewrite applied more rules on its own output: '" +
              rewritten.ToString() + "' -> '" + again.ToString() + "'",
          rendered));
    }
    if (xpath::SerializeKey(xpath::Canonicalize(rewritten)) !=
        xpath::SerializeKey(rewritten)) {
      rep->findings.push_back(
          MakeFinding("analyze", "rewrite-canonical",
                      "AnalyzeRewrite output is not canonical: '" +
                          rewritten.ToString() + "'",
                      rendered));
    }
  }

  // Oracle: containment claims imply ordered counts. Self-containment
  // must hold outright (the identity is a homomorphism); for a random
  // monotone relaxation, a positive QueryContains answer must agree
  // with the exact evaluator (a negative one claims nothing).
  if (canon.size() <= 12 && !xpath::QueryContains(canon, canon)) {
    rep->findings.push_back(MakeFinding(
        "analyze", "contain-self",
        "QueryContains(q, q) is false for '" + canon.ToString() + "'",
        rendered));
  }
  xpath::Query relaxed = canon;
  switch (rng.Index(3)) {
    case 0: {  // widen one non-sibling-endpoint child axis
      std::vector<int> sites;
      for (int i = 1; i < static_cast<int>(relaxed.size()); ++i) {
        bool endpoint = false;
        for (const auto& c : relaxed.orders) {
          endpoint |= c.kind == xpath::OrderKind::kSibling &&
                      (c.before == i || c.after == i);
        }
        if (!endpoint && relaxed.nodes[i].axis == xpath::StructAxis::kChild) {
          sites.push_back(i);
        }
      }
      if (!sites.empty()) {
        relaxed.nodes[sites[rng.Index(sites.size())]].axis =
            xpath::StructAxis::kDescendant;
      }
      break;
    }
    case 1:
      relaxed.root_mode = xpath::RootMode::kAnywhere;
      break;
    case 2: {  // drop a predicate leaf
      std::vector<int> droppable;
      for (int i = 1; i < static_cast<int>(relaxed.size()); ++i) {
        if (relaxed.nodes[i].children.empty() && i != relaxed.target) {
          droppable.push_back(i);
        }
      }
      if (!droppable.empty()) {
        std::vector<bool> keep(relaxed.size(), true);
        keep[droppable[rng.Index(droppable.size())]] = false;
        relaxed = relaxed.SubQuery(keep);
      }
      break;
    }
  }
  if (xpath::QueryContains(relaxed, canon)) {
    auto sup = bed.exact_eval->Count(relaxed);
    auto sub = bed.exact_eval->Count(canon);
    ++rep->monotonic_checked;
    if (sup.ok() && sub.ok() && sup.value() < sub.value()) {
      rep->findings.push_back(MakeFinding(
          "analyze", "contain-count",
          StrFormat("QueryContains('%s' contains '%s') but counts %llu < %llu "
                    "[bed %s]",
                    relaxed.ToString().c_str(), canon.ToString().c_str(),
                    static_cast<unsigned long long>(sup.value()),
                    static_cast<unsigned long long>(sub.value()),
                    bed.name.c_str()),
          rendered));
    }
  }
}

Report Harness::RunAnalyzeFuzz(const FuzzOptions& options) const {
  Report rep;
  Rng master(options.seed);
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng it = master.Split();
    const TestBed& bed = *beds_[it.Index(beds_.size())];
    const std::string s = GenerateQueryString(it, bed.tags);
    auto parsed = xpath::ParseXPath(xpath::StripWhitespace(s));
    ++rep.iterations;
    if (!parsed.ok()) {
      ++rep.parse_rejected;
      continue;
    }
    ++rep.parse_ok;
    xpath::Query q = std::move(parsed).value();
    // Programmatic unsat mutations reach verdicts the string grammar
    // cannot produce (order cycles) or produces only rarely (absolute
    // roots off the document root, unknown tags at chosen positions).
    if (it.Bernoulli(0.3)) {
      switch (it.Index(3)) {
        case 0:
          q.nodes[it.Index(q.size())].tag = "zz-no-such-tag";
          break;
        case 1:
          q.root_mode = xpath::RootMode::kAbsolute;
          q.nodes[0].axis = xpath::StructAxis::kChild;
          q.nodes[0].tag = bed.tags[it.Index(bed.tags.size())];
          break;
        case 2:
          if (!q.orders.empty()) {
            const xpath::OrderConstraint oc =
                q.orders[it.Index(q.orders.size())];
            q.orders.push_back({oc.kind, oc.after, oc.before});
          }
          break;
      }
      if (!q.Validate().ok()) continue;  // mutation broke an invariant
    }
    CheckAnalyze(bed, it, q, &rep);
  }
  return rep;
}

void Harness::CheckSynopsisBlob(const TestBed& bed, const std::string& blob,
                                Report* rep) const {
  auto r = estimator::Synopsis::Deserialize(blob);
  if (!r.ok()) {
    ++rep->parse_rejected;
    return;
  }
  ++rep->parse_ok;
  const estimator::Synopsis& syn = r.value();

  // An accepted blob is canonical: re-serializing the loaded synopsis
  // reproduces it byte for byte.
  const std::string again = syn.Serialize();
  ++rep->roundtrips_checked;
  if (again != blob) {
    rep->findings.push_back(MakeFinding(
        "synopsis", "reserialize-identity",
        StrFormat("accepted blob (%zu bytes) re-serialized to different "
                  "bytes (%zu) [bed %s]",
                  blob.size(), again.size(), bed.name.c_str()),
        blob, /*hex_input=*/true));
  }

  // Probe estimates over the mutant's own alphabet: accepted data may
  // be semantically absurd (NaN frequencies are representable), but
  // estimation must stay a clean Result, never UB.
  estimator::Estimator est(syn);
  const std::string& t0 = syn.TagName(0);
  const std::string& root = syn.TagName(syn.root_tag());
  const std::string& last =
      syn.TagName(static_cast<xml::TagId>(syn.TagCount() - 1));
  const std::string probes[] = {
      "//" + t0, "/" + root + "//" + last, "/" + root + "[" + t0 + "]//" + last,
      "//" + root + "/" + t0 + "/following-sibling::" + last};
  for (const std::string& probe : probes) {
    auto parsed = xpath::ParseXPath(probe);
    if (!parsed.ok()) continue;  // mutated tag names may be unparseable
    (void)est.Estimate(parsed.value());
    ++rep->estimates_checked;
  }
}

void Harness::CheckXmlString(const std::string& xml_text, Report* rep) const {
  auto p1 = xml::ParseXml(xml_text);
  if (!p1.ok()) {
    ++rep->parse_rejected;
    return;
  }
  ++rep->parse_ok;

  // Write/Parse idempotence: the writer's output is a fixed point.
  const std::string w1 = xml::WriteXml(p1.value());
  auto p2 = xml::ParseXml(w1);
  ++rep->roundtrips_checked;
  if (!p2.ok()) {
    rep->findings.push_back(
        MakeFinding("xml", "write-reparse",
                    "WriteXml output failed to parse: " + p2.status().ToString(),
                    xml_text));
    return;
  }
  const std::string w2 = xml::WriteXml(p2.value());
  if (w2 != w1) {
    rep->findings.push_back(MakeFinding(
        "xml", "write-idempotent",
        StrFormat("Write(Parse(Write(doc))) diverged (%zu vs %zu bytes)",
                  w2.size(), w1.size()),
        xml_text));
  }

  // Survivors feed synopsis construction and estimation. Build is the
  // expensive step, so big documents are subsampled — deterministically,
  // keyed off the payload, since this path has no Rng.
  const xml::Document& doc = p2.value();
  const bool build_synopsis =
      doc.NodeCount() <= 64 ||
      (doc.NodeCount() <= 2000 && xpath::StableHash64(xml_text) % 4 == 0);
  if (build_synopsis) {
    estimator::Synopsis syn =
        estimator::Synopsis::Build(doc, estimator::SynopsisOptions{});
    estimator::Estimator est(syn);
    const std::string probes[] = {"//" + syn.TagName(0),
                                  "/" + syn.TagName(syn.root_tag())};
    for (const std::string& probe : probes) {
      auto parsed = xpath::ParseXPath(probe);
      if (!parsed.ok()) continue;
      auto e = est.Estimate(parsed.value());
      ++rep->estimates_checked;
      if (e.ok() && (!std::isfinite(e.value()) || e.value() < 0)) {
        rep->findings.push_back(MakeFinding(
            "xml", "estimate-range",
            StrFormat("estimate %.17g from a real document synopsis on '%s'",
                      e.value(), probe.c_str()),
            xml_text));
      }
    }
  }
}

Report Harness::RunQueryFuzz(const FuzzOptions& options) const {
  Report rep;
  Rng master(options.seed);
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng it = master.Split();
    const TestBed& bed = *beds_[it.Index(beds_.size())];
    std::string s;
    if (it.Bernoulli(options.random_query_prob)) {
      const size_t len = it.UniformInt(0, 40);
      for (size_t j = 0; j < len; ++j) {
        s.push_back(static_cast<char>(it.UniformInt(0, 255)));
      }
    } else {
      s = GenerateQueryString(it, bed.tags);
      if (it.Bernoulli(options.mutate_query_prob)) {
        Mutate(it, &s, 1 + it.Index(3));
      }
    }
    CheckQueryString(bed, it, s, &rep);
    ++rep.iterations;
  }
  return rep;
}

Report Harness::RunSynopsisFuzz(const FuzzOptions& options) const {
  Report rep;
  Rng master(options.seed);
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng it = master.Split();
    const TestBed& bed = *beds_[it.Index(beds_.size())];
    std::string blob = bed.exact_blob;
    // One input in ten is the pristine blob — the guaranteed-accept path
    // that keeps the roundtrip oracle honest even if mutants all die in
    // the header.
    if (!it.Bernoulli(0.1)) {
      Mutate(it, &blob, 1 + it.Index(std::max<size_t>(options.max_edits, 1)));
    }
    CheckSynopsisBlob(bed, blob, &rep);
    ++rep.iterations;
  }
  return rep;
}

Report Harness::RunXmlFuzz(const FuzzOptions& options) const {
  Report rep;
  Rng master(options.seed);
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng it = master.Split();
    const TestBed& bed = *beds_[it.Index(beds_.size())];
    std::string text = bed.xml_text;
    if (!it.Bernoulli(0.1)) {
      Mutate(it, &text, 1 + it.Index(std::max<size_t>(options.max_edits, 1)));
    }
    CheckXmlString(text, &rep);
    ++rep.iterations;
  }
  return rep;
}

Report Harness::RunServiceFuzz(const FuzzOptions& options) const {
  Report rep;
  Rng master(options.seed);
  service::ServiceOptions service_opt;
  service_opt.plan_cache_bytes = 1 << 16;  // tiny: force evictions
  service_opt.cache_shards = 2;
  service_opt.threads = 2;
  service::EstimationService svc(service_opt);
  for (const auto& bed : beds_) {
    svc.registry().Register(bed->name, bed->exact);
  }

  for (size_t i = 0; i < options.iterations; ++i) {
    Rng it = master.Split();
    const size_t n = 1 + it.Index(8);
    std::vector<service::QueryRequest> batch;
    std::vector<Result<double>> want;
    batch.reserve(n);
    want.reserve(n);
    for (size_t j = 0; j < n; ++j) {
      const TestBed& bed = *beds_[it.Index(beds_.size())];
      const bool bogus = it.Bernoulli(0.05);
      const std::string qs = GenerateQueryString(it, bed.tags);
      batch.push_back(service::QueryRequest{
          bogus ? "no-such-synopsis" : bed.name, Whitespaced(it, qs)});
      // Reference result computed outside the service: the cache and the
      // pool must be invisible in the bits.
      if (bogus) {
        want.push_back(Status(StatusCode::kNotFound, "unregistered"));
      } else {
        auto parsed = xpath::ParseXPath(xpath::StripWhitespace(qs));
        if (!parsed.ok()) {
          want.push_back(parsed.status());
        } else {
          estimator::Estimator est(*bed.exact);
          want.push_back(est.Estimate(xpath::Canonicalize(parsed.value())));
        }
      }
    }

    auto check = [&](const std::vector<service::EstimateOutcome>& got,
                     const char* pass) {
      for (size_t j = 0; j < n; ++j) {
        const Result<double>& w = want[j];
        const service::EstimateOutcome& g = got[j];
        ++rep.estimates_checked;
        // No admission cap, no faults, full-fidelity synopses with
        // infinite deadlines: nothing here may shed or degrade.
        if (g.shed || g.degraded) {
          rep.findings.push_back(MakeFinding(
              "service", "batch-metadata",
              StrFormat("%s pass: unexpected %s outcome [synopsis %s]", pass,
                        g.shed ? "shed" : "degraded",
                        batch[j].synopsis.c_str()),
              batch[j].xpath));
          continue;
        }
        if (g.ok() != w.ok() ||
            (!g.ok() && g.status().code() != w.status().code())) {
          rep.findings.push_back(MakeFinding(
              "service", "batch-status",
              StrFormat("%s pass: service=%s reference=%s [synopsis %s]", pass,
                        g.status().ToString().c_str(),
                        w.status().ToString().c_str(),
                        batch[j].synopsis.c_str()),
              batch[j].xpath));
        } else if (g.ok() && !BitwiseEq(g.value(), w.value())) {
          rep.findings.push_back(MakeFinding(
              "service", "batch-bitwise",
              StrFormat("%s pass: service=%.17g reference=%.17g [synopsis %s]",
                        pass, g.value(), w.value(), batch[j].synopsis.c_str()),
              batch[j].xpath));
        }
      }
    };

    auto cold = svc.EstimateBatch(batch);
    check(cold, "cold");
    auto warm = svc.EstimateBatch(batch);  // now served from the plan cache
    check(warm, "warm");

    if (it.Bernoulli(0.2)) svc.ClearPlanCache();
    if (it.Bernoulli(0.1)) {
      // Re-register the same synopsis: the epoch bump invalidates every
      // cached plan, but not the answers.
      const TestBed& bed = *beds_[it.Index(beds_.size())];
      svc.registry().Register(bed.name, bed.exact);
    }
    ++rep.iterations;
  }
  return rep;
}

Report Harness::RunChaosFuzz(const FuzzOptions& options) const {
  Report rep;
  FaultInjector& faults = FaultInjector::Global();
  faults.Reset();

  service::ServiceOptions service_opt;
  service_opt.plan_cache_bytes = 1 << 16;  // tiny: force evictions
  service_opt.cache_shards = 2;
  service_opt.threads = 1;  // inline batches: deterministic fault order
  service_opt.max_inflight = 3;
  service_opt.retry_after_ms = 2;
  service_opt.trace_sample = 1;  // trace every request: span oracles below
  service_opt.trace_capacity = 64;
  service_opt.slow_trace_ns = 2'000'000;
  service::EstimationService svc(service_opt);
  for (const auto& bed : beds_) {
    svc.registry().Register(bed->name, bed->exact);
  }

  // Metric invariant: a fault site never fires past its armed budget.
  // Budgets are remembered at Arm time and checked before every Reset
  // (which clears the injector's own per-site fire counts).
  std::vector<std::pair<std::string, uint64_t>> armed_budgets;
  auto check_fault_budgets = [&] {
    for (const auto& [site, max_fires] : armed_budgets) {
      const uint64_t fires = faults.FireCount(site);
      if (fires > max_fires) {
        rep.findings.push_back(MakeFinding(
            "chaos", "fault-budget",
            StrFormat("site %s fired %llu times with max_fires=%llu",
                      site.c_str(), static_cast<unsigned long long>(fires),
                      static_cast<unsigned long long>(max_fires)),
            site));
      }
    }
    armed_budgets.clear();
  };

  Rng master(options.seed);
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng it = master.Split();

    // Rotate the armed fault set: forced deadline expiry and injected
    // allocation failures come and go with seeded budgets.
    if (it.Bernoulli(0.3)) {
      check_fault_budgets();
      faults.Reset();
      if (it.Bernoulli(0.5)) {
        FaultConfig cfg;
        cfg.probability = 0.5;
        cfg.skip = it.Index(4);
        cfg.max_fires = 1 + it.Index(3);
        cfg.seed = it.Next();
        faults.Arm(std::string(Deadline::kFaultSite), cfg);
        armed_budgets.emplace_back(std::string(Deadline::kFaultSite),
                                   cfg.max_fires);
      }
      if (it.Bernoulli(0.3)) {
        FaultConfig cfg;
        cfg.probability = 0.5;
        cfg.max_fires = 1 + it.Index(2);
        cfg.seed = it.Next();
        faults.Arm(std::string(estimator::Estimator::kAllocFaultSite), cfg);
        armed_budgets.emplace_back(
            std::string(estimator::Estimator::kAllocFaultSite),
            cfg.max_fires);
      }
    }

    // Chaos reload: push a serialized synopsis through the registry,
    // sometimes with one bit of injected rot.
    if (it.Bernoulli(0.15)) {
      const TestBed& bed = *beds_[it.Index(beds_.size())];
      const bool rot = it.Bernoulli(0.5);
      if (rot) {
        FaultConfig cfg;
        cfg.payload = it.Next();
        cfg.max_fires = 1;
        cfg.seed = it.Next();
        faults.Arm(std::string(service::SynopsisRegistry::kBitrotFaultSite),
                   cfg);
      }
      const service::LoadOutcome lo =
          svc.registry().RegisterSerialized(bed.name, bed.exact_blob);
      faults.Disarm(std::string(service::SynopsisRegistry::kBitrotFaultSite));
      ++rep.roundtrips_checked;
      if (!rot && (!lo.ok() || lo.order_dropped)) {
        rep.findings.push_back(MakeFinding(
            "chaos", "clean-load",
            StrFormat("pristine blob failed to register at full fidelity: "
                      "%s [bed %s]",
                      lo.status.ToString().c_str(), bed.name.c_str()),
            bed.name));
      }
      if (!lo.ok() && !svc.registry().Quarantined(bed.name).has_value()) {
        rep.findings.push_back(MakeFinding(
            "chaos", "quarantine",
            StrFormat("rejected load left '%s' unquarantined",
                      bed.name.c_str()),
            bed.name));
      }
    }

    // A batch under chaotic deadlines and admission pressure.
    const size_t n = 1 + it.Index(6);
    std::vector<service::QueryRequest> batch;
    std::vector<bool> born_expired;
    batch.reserve(n);
    born_expired.reserve(n);
    for (size_t j = 0; j < n; ++j) {
      const TestBed& bed = *beds_[it.Index(beds_.size())];
      service::QueryRequest req;
      req.synopsis = it.Bernoulli(0.05) ? "no-such-synopsis" : bed.name;
      req.xpath = Whitespaced(it, GenerateQueryString(it, bed.tags));
      req.allow_degraded = it.Bernoulli(0.8);
      const double roll = it.UniformDouble();
      bool expired = false;
      if (roll < 0.2) {
        req.deadline = Deadline::AlreadyExpired();
        expired = true;
      } else if (roll < 0.4) {
        req.deadline = Deadline::AfterMicros(
            static_cast<int64_t>(1 + it.Index(200)));
      }  // else: infinite
      born_expired.push_back(expired);
      batch.push_back(std::move(req));
    }

#ifndef XEE_OBS_OFF
    const uint64_t req_before = svc.obs().CounterValue("service.requests");
    const uint64_t shed_before =
        svc.obs().CounterValue("service.outcome", "reason=shed");
#endif
    const auto got = svc.EstimateBatch(batch);
#ifndef XEE_OBS_OFF
    // Metric conservation: every batch member is counted exactly once,
    // shed counter matches the shed outcomes, and with the batch done
    // (single service, no concurrent callers) nothing is left in flight.
    const uint64_t req_delta =
        svc.obs().CounterValue("service.requests") - req_before;
    uint64_t shed_got = 0;
    for (const auto& g : got) shed_got += g.shed ? 1 : 0;
    const uint64_t shed_delta =
        svc.obs().CounterValue("service.outcome", "reason=shed") - shed_before;
    if (req_delta != n || shed_delta != shed_got) {
      rep.findings.push_back(MakeFinding(
          "chaos", "metric-conservation",
          StrFormat("batch of %zu: requests+=%llu, shed counter +=%llu vs "
                    "%llu shed outcomes",
                    n, static_cast<unsigned long long>(req_delta),
                    static_cast<unsigned long long>(shed_delta),
                    static_cast<unsigned long long>(shed_got)),
          batch[0].xpath));
    }
    if (svc.obs().GaugeValue("service.inflight") != 0) {
      rep.findings.push_back(MakeFinding(
          "chaos", "inflight-gauge",
          StrFormat("inflight gauge reads %lld after the batch returned",
                    static_cast<long long>(
                        svc.obs().GaugeValue("service.inflight"))),
          batch[0].xpath));
    }
    // Trace oracle: stages are disjoint sub-intervals of the request,
    // so their sum can never exceed the recorded wall time — on the
    // head-sampled ring and the tail-retained ring alike (chaos drives
    // plenty of traffic into both: every fault outcome is tail-kept).
    const std::vector<obs::TraceRecord> recent_traces =
        svc.traces().Recent();
    const std::vector<obs::TraceRecord> tail_traces = svc.traces().Tail();
    auto check_trace_spans = [&](const obs::TraceRecord& t,
                                 const char* ring) {
      if (t.spans.SumNs() > t.total_ns) {
        rep.findings.push_back(MakeFinding(
            "chaos", "trace-spans",
            StrFormat("%s trace seq %llu: stage sum %llu ns > total %llu ns",
                      ring, static_cast<unsigned long long>(t.seq),
                      static_cast<unsigned long long>(t.spans.SumNs()),
                      static_cast<unsigned long long>(t.total_ns)),
            t.query));
      }
    };
    for (const obs::TraceRecord& t : recent_traces) {
      check_trace_spans(t, "recent");
    }
    for (const obs::TraceRecord& t : tail_traces) {
      check_trace_spans(t, "tail");
    }
    // Exactly-one-ring routing: a completed request lands on the tail
    // ring or the recent ring, never both — the same seq on both would
    // double-count it in the span oracles and the tracez export.
    for (const obs::TraceRecord& t : tail_traces) {
      for (const obs::TraceRecord& r : recent_traces) {
        if (t.seq == r.seq) {
          rep.findings.push_back(MakeFinding(
              "chaos", "trace-double-retained",
              StrFormat("trace seq %llu retained on both rings",
                        static_cast<unsigned long long>(t.seq)),
              t.query));
        }
      }
    }
#endif
    for (size_t j = 0; j < n; ++j) {
      const service::EstimateOutcome& g = got[j];
      ++rep.estimates_checked;
      const StatusCode code = g.status().code();
      const bool legal =
          code == StatusCode::kOk || code == StatusCode::kDeadlineExceeded ||
          code == StatusCode::kOverloaded || code == StatusCode::kNotFound ||
          code == StatusCode::kUnavailable ||
          code == StatusCode::kUnsupported ||
          code == StatusCode::kParseError ||
          code == StatusCode::kInvalidArgument ||
          code == StatusCode::kInternal;
      if (!legal) {
        rep.findings.push_back(MakeFinding(
            "chaos", "status-surface",
            "status outside the serving contract: " + g.status().ToString(),
            batch[j].xpath));
      }
      if (g.ok() && (!std::isfinite(g.value()) || g.value() < 0)) {
        rep.findings.push_back(MakeFinding(
            "chaos", "estimate-range",
            StrFormat("estimate %.17g not finite/non-negative under chaos",
                      g.value()),
            batch[j].xpath));
      }
      if (g.shed != (code == StatusCode::kOverloaded)) {
        rep.findings.push_back(MakeFinding(
            "chaos", "shed-status",
            StrFormat("shed=%d but status=%s", g.shed ? 1 : 0,
                      g.status().ToString().c_str()),
            batch[j].xpath));
      }
      if (g.shed && g.retry_after_ms == 0) {
        rep.findings.push_back(MakeFinding(
            "chaos", "retry-hint", "shed outcome carries no retry hint",
            batch[j].xpath));
      }
      if (born_expired[j] && g.ok()) {
        rep.findings.push_back(MakeFinding(
            "chaos", "expired-deadline",
            "request that arrived expired was served a value",
            batch[j].xpath));
      }
      if (!batch[j].allow_degraded && g.degraded) {
        rep.findings.push_back(MakeFinding(
            "chaos", "degraded-opt-out",
            "degraded answer served to a full-fidelity request",
            batch[j].xpath));
      }
    }

    // Recovery oracle: with the faults gone and a clean version
    // registered, full fidelity comes back, bit for bit.
    if (it.Bernoulli(0.25)) {
      check_fault_budgets();
      faults.Reset();
      const TestBed& bed = *beds_[it.Index(beds_.size())];
      svc.registry().Register(bed.name, bed.exact);
      const std::string qs = GenerateQueryString(it, bed.tags);
      service::QueryRequest req;
      req.synopsis = bed.name;
      req.xpath = qs;
      req.allow_degraded = false;
      const service::EstimateOutcome g = svc.Estimate(req);
      ++rep.estimates_checked;
      Result<double> w{0.0};
      auto parsed = xpath::ParseXPath(xpath::StripWhitespace(qs));
      if (!parsed.ok()) {
        w = parsed.status();
      } else {
        estimator::Estimator est(*bed.exact);
        w = est.Estimate(xpath::Canonicalize(parsed.value()));
      }
      if (g.shed || g.degraded) {
        rep.findings.push_back(MakeFinding(
            "chaos", "recovery",
            StrFormat("post-recovery request was %s",
                      g.shed ? "shed" : "degraded"),
            qs));
      } else if (g.ok() != w.ok() ||
                 (!g.ok() && g.status().code() != w.status().code())) {
        rep.findings.push_back(MakeFinding(
            "chaos", "recovery",
            StrFormat("post-recovery: service=%s reference=%s [bed %s]",
                      g.status().ToString().c_str(),
                      w.status().ToString().c_str(), bed.name.c_str()),
            qs));
      } else if (g.ok() && !BitwiseEq(g.value(), w.value())) {
        rep.findings.push_back(MakeFinding(
            "chaos", "recovery",
            StrFormat("post-recovery: service=%.17g reference=%.17g [bed %s]",
                      g.value(), w.value(), bed.name.c_str()),
            qs));
      }
    }
    ++rep.iterations;
  }
  check_fault_budgets();
  faults.Reset();

  // Live-churn interleavings: a second service with a live-registered
  // document takes concurrent ApplyDelta / Estimate / ScheduleRebuild
  // traffic while rebuild.alloc and rebuild.slow are armed. Thread
  // scheduling is nondeterministic, so the oracles here are the
  // schedule-independent serving invariants: every delta attempt is
  // either applied or cleanly rejected, the rebuild ledger balances
  // after a drain (scheduled = completed + abandoned), the drained
  // state machine is out of `rebuilding`, and once the faults clear a
  // final rebuild completes, bumps the epoch, and lands the version in
  // `healthy`. Run under TSan this block is first of all a data-race
  // net over the maintenance paths.
  const TestBed& churn_bed = *beds_.front();  // paper bed's tag alphabet
  const size_t churn_rounds = options.iterations / 64 + 1;
  for (size_t round = 0; round < churn_rounds; ++round) {
    Rng it = master.Split();
    service::ServiceOptions churn_opt;
    churn_opt.threads = 2;
    churn_opt.auto_rebuild = true;
    churn_opt.patch_error_budget = 0.02;  // tiny: novel churn trips it
    service::EstimationService svc(churn_opt);
    svc.RegisterLive("live", MakeFigure1Document());

    FaultConfig alloc;
    alloc.probability = 0.5;
    alloc.max_fires = 2;
    alloc.seed = it.Next();
    faults.Arm(service::MaintenanceManager::kAllocFaultSite, alloc);
    armed_budgets.emplace_back(service::MaintenanceManager::kAllocFaultSite,
                               alloc.max_fires);
    FaultConfig slow;
    slow.probability = 0.5;
    slow.payload = 1;  // ms: widens the estimate-during-rebuild window
    slow.max_fires = 2;
    slow.seed = it.Next();
    faults.Arm(service::MaintenanceManager::kSlowFaultSite, slow);
    armed_budgets.emplace_back(service::MaintenanceManager::kSlowFaultSite,
                               slow.max_fires);

    constexpr size_t kDeltas = 8;
    constexpr size_t kEstimates = 24;
    constexpr size_t kSchedules = 3;
    size_t delta_attempts = 0;
    std::vector<Finding> mutator_findings, estimator_findings;

    std::thread mutator([&, seed = it.Next()]() {
      Rng rng(seed);
      uint64_t novel = 0;
      for (size_t k = 0; k < kDeltas; ++k) {
        delta::DocumentDelta dd;
        // Only this thread mutates, and compaction preserves both the
        // live node count and preorder ranks, so counts and ranks read
        // here stay valid through the concurrent rebuilds.
        const size_t nodes = svc.maintenance().LiveNodeCount("live");
        const double r = rng.UniformDouble();
        if (r < 0.5 && nodes >= 2) {
          auto op = svc.maintenance().CloneOp(
              "live", static_cast<uint32_t>(rng.UniformInt(1, nodes - 1)));
          if (!op.ok()) {
            mutator_findings.push_back(
                MakeFinding("chaos", "churn-delta",
                            "in-range clone op rejected: " +
                                op.status().ToString(),
                            "live"));
            continue;
          }
          dd.ops.push_back(std::move(op).value());
        } else if (r < 0.85 || nodes < 4) {
          delta::DeltaOp op;
          op.kind = delta::DeltaOp::Kind::kInsert;
          op.target = static_cast<uint32_t>(rng.UniformInt(0, nodes - 1));
          op.subtree.tags.push_back(StrFormat(
              "churn%llu", static_cast<unsigned long long>(novel++)));
          op.subtree.parent.push_back(-1);
          dd.ops.push_back(std::move(op));
        } else {
          delta::DeltaOp op;
          op.kind = delta::DeltaOp::Kind::kDelete;
          op.target = static_cast<uint32_t>(rng.UniformInt(1, nodes - 1));
          dd.ops.push_back(std::move(op));
        }
        ++delta_attempts;
        auto out = svc.ApplyDelta("live", dd);
        if (!out.ok() &&
            out.status().code() != StatusCode::kInvalidArgument) {
          mutator_findings.push_back(MakeFinding(
              "chaos", "churn-delta",
              "delta rejected outside the contract: " +
                  out.status().ToString(),
              "live"));
        }
      }
    });
    std::thread estimator([&, seed = it.Next()]() {
      Rng rng(seed);
      for (size_t k = 0; k < kEstimates; ++k) {
        const std::string qs = GenerateQueryString(rng, churn_bed.tags);
        const service::EstimateOutcome g = svc.Estimate("live", qs);
        const StatusCode code = g.status().code();
        const bool legal =
            code == StatusCode::kOk || code == StatusCode::kDeadlineExceeded ||
            code == StatusCode::kOverloaded || code == StatusCode::kNotFound ||
            code == StatusCode::kUnavailable ||
            code == StatusCode::kUnsupported ||
            code == StatusCode::kParseError ||
            code == StatusCode::kInvalidArgument ||
            code == StatusCode::kInternal;
        if (!legal) {
          estimator_findings.push_back(MakeFinding(
              "chaos", "status-surface",
              "status outside the serving contract under churn: " +
                  g.status().ToString(),
              qs));
        }
        if (g.ok() && (!std::isfinite(g.value()) || g.value() < 0)) {
          estimator_findings.push_back(MakeFinding(
              "chaos", "estimate-range",
              StrFormat("estimate %.17g not finite/non-negative under churn",
                        g.value()),
              qs));
        }
      }
    });
    std::thread scheduler([&]() {
      for (size_t k = 0; k < kSchedules; ++k) {
        svc.ScheduleRebuild("live", "manual");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    mutator.join();
    estimator.join();
    scheduler.join();
    rep.estimates_checked += kEstimates;
    for (Finding& f : mutator_findings) rep.findings.push_back(std::move(f));
    for (Finding& f : estimator_findings) rep.findings.push_back(std::move(f));

    if (!svc.DrainMaintenance(10'000)) {
      rep.findings.push_back(MakeFinding(
          "chaos", "churn-drain", "maintenance did not drain within 10s",
          "live"));
    }
    check_fault_budgets();
    faults.Reset();

    auto live_row = [&]() -> service::MaintenanceRow {
      for (service::MaintenanceRow& r : svc.maintenance().Rows()) {
        if (r.name == "live") return std::move(r);
      }
      return {};
    };
    const service::MaintenanceRow drained = live_row();
    if (drained.state == service::MaintenanceState::kRebuilding) {
      rep.findings.push_back(MakeFinding(
          "chaos", "churn-ledger", "drained but still `rebuilding`", "live"));
    }
    if (drained.rebuilds_scheduled !=
        drained.rebuilds_completed + drained.rebuilds_abandoned) {
      rep.findings.push_back(MakeFinding(
          "chaos", "churn-ledger",
          StrFormat("rebuild ledger unbalanced after drain: scheduled=%llu "
                    "completed=%llu abandoned=%llu",
                    static_cast<unsigned long long>(
                        drained.rebuilds_scheduled),
                    static_cast<unsigned long long>(
                        drained.rebuilds_completed),
                    static_cast<unsigned long long>(
                        drained.rebuilds_abandoned)),
          "live"));
    }
    if (drained.deltas_applied + drained.deltas_rejected != delta_attempts) {
      rep.findings.push_back(MakeFinding(
          "chaos", "churn-ledger",
          StrFormat("delta ledger unbalanced: applied=%llu rejected=%llu "
                    "attempts=%zu",
                    static_cast<unsigned long long>(drained.deltas_applied),
                    static_cast<unsigned long long>(drained.deltas_rejected),
                    delta_attempts),
          "live"));
    }

    // Faults are clear and the mutator is quiet: one more scheduled
    // rebuild must complete, bump the epoch, and land in `healthy`.
    svc.ScheduleRebuild("live", "manual");
    if (!svc.DrainMaintenance(10'000)) {
      rep.findings.push_back(MakeFinding(
          "chaos", "churn-recovery",
          "fault-free rebuild did not drain within 10s", "live"));
    }
    const service::MaintenanceRow healed = live_row();
    if (healed.state != service::MaintenanceState::kHealthy ||
        healed.rebuilds_completed != drained.rebuilds_completed + 1 ||
        healed.epoch <= drained.epoch) {
      rep.findings.push_back(MakeFinding(
          "chaos", "churn-recovery",
          StrFormat("fault-free rebuild: state=%s completed %llu -> %llu "
                    "epoch %llu -> %llu",
                    MaintenanceStateName(healed.state),
                    static_cast<unsigned long long>(
                        drained.rebuilds_completed),
                    static_cast<unsigned long long>(
                        healed.rebuilds_completed),
                    static_cast<unsigned long long>(drained.epoch),
                    static_cast<unsigned long long>(healed.epoch)),
          "live"));
    }
  }

  // Black-box rule: every chaos finding ships with a flight-recorder
  // dump, and the dump itself must survive a strict JSON re-parse — an
  // unparseable recorder after a real incident is worth nothing.
  if (!rep.findings.empty()) {
    const std::string dump = svc.FlightzJson();
    if (!json::Parse(dump).ok()) {
      rep.findings.push_back(MakeFinding(
          "chaos", "flight-dump",
          "flight-recorder dump is not valid JSON after chaos findings",
          dump.substr(0, 128)));
    } else {
      std::fprintf(stderr, "chaos flight-recorder dump (%zu findings): %s\n",
                   rep.findings.size(), dump.c_str());
    }
  }
  faults.Reset();
  return rep;
}

Report Harness::RunExportFuzz(const FuzzOptions& options) const {
  Report rep;
  Rng master(options.seed);

  // Bytes that attack the JSON exporters specifically: the quoting
  // characters, C0 controls, DEL, and every class of invalid UTF-8
  // (lone continuation, overlong lead, truncated multi-byte leads).
  static constexpr char kHostile[] = {
      '"', '\\', '\x00', '\x07', '\n', '\r', '\t', '\x1b', '\x7f',
      '\x80', '\xbf', '\xc0', '\xc1', '\xe2', '\xed', '\xf0', '\xf5',
      '\xff'};
  auto hostilize = [&](Rng& rng, std::string s) {
    const size_t edits = 1 + rng.Index(4);
    for (size_t e = 0; e < edits; ++e) {
      const char b = kHostile[rng.Index(sizeof(kHostile))];
      s.insert(rng.Index(s.size() + 1), 1, b);
    }
    return s;
  };

  service::ServiceOptions service_opt;
  service_opt.threads = 2;
  service_opt.trace_sample = 1;  // every request reaches the trace ring
  service_opt.slow_trace_ns = 1;  // ...and the slow ring
  service_opt.accuracy_sample = 1;  // ...and the shadow pipeline
  service_opt.accuracy_max_pending = 1 << 16;
  service_opt.drift_min_samples = 4;
  // The flight-data surfaces ride along: declarative SLOs over the
  // scraped time-series (evaluated by the ObsTick calls below), per-
  // tenant rows keyed by the hostile registry names, and the flight
  // recorder — all three exporters face the same attack bytes.
  service_opt.slos = service::DefaultSloSpecs(0.999, 5'000'000'000, 4.0);
  service::EstimationService svc(service_opt);

  // Registry names are operator-chosen free text; exporters must quote
  // them, so register under names that embed the attack bytes directly.
  std::vector<std::string> names;
  for (const auto& bed : beds_) {
    std::string name = bed->name + "\"\\\x07\xc3\x28";  // \xc3( = bad UTF-8
    // Non-owning aliasing pointer: the bed outlives the service, and
    // attaching ground truth routes the hostile query strings through
    // the shadow pipeline into the ACCZ offender ring as well.
    std::shared_ptr<const xml::Document> doc(
        std::shared_ptr<const xml::Document>(), &bed->doc);
    svc.registry().Register(name, bed->exact, doc);
    names.push_back(std::move(name));
  }

  auto check_surface = [&](const char* surface, const std::string& payload,
                           const std::string& last_input) {
    auto parsed = json::Parse(payload);
    ++rep.roundtrips_checked;
    if (!parsed.ok()) {
      rep.findings.push_back(MakeFinding(
          "export", surface,
          StrFormat("%s is not valid JSON: %s", surface,
                    parsed.status().ToString().c_str()),
          last_input));
    }
  };

  std::string last_input;
  uint64_t vnow_us = 0;  // virtual scrape clock for ObsTick
  for (size_t i = 0; i < options.iterations; ++i) {
    Rng it = master.Split();
    const size_t b = it.Index(beds_.size());
    std::string qs = GenerateQueryString(it, beds_[b]->tags);
    if (it.Bernoulli(0.7)) qs = hostilize(it, std::move(qs));
    last_input = qs;
    // Parse failures and unknown names are fine — the point is that the
    // strings land in the trace ring / offender ring either way.
    (void)svc.Estimate(names[b], qs);
    if (it.Bernoulli(0.1)) {
      (void)svc.Estimate(hostilize(it, "no-such"), qs);
    }

    // Render + strict-parse every surface periodically and at the end
    // (parsing every iteration would dominate the run). The scrape
    // clock advances past one interval first so the time-series store
    // holds fresh points and the SLO engine has evaluated — the alertz
    // and tsz payloads are populated, not trivially empty.
    if (i % 64 == 63 || i + 1 == options.iterations) {
      svc.DrainShadow();
      vnow_us += service_opt.ts_interval_us + 1;
      svc.ObsTick(vnow_us);
      check_surface("statsz", svc.StatszJson(), last_input);
      check_surface("tracez", svc.traces().ToJson(), last_input);
      check_surface("accz", svc.AccuracyJson(), last_input);
      check_surface("healthz", svc.HealthzJson(), last_input);
      check_surface("tsz", svc.TszJson(), last_input);
      check_surface("alertz", svc.AlertzJson(), last_input);
      check_surface("flightz", svc.FlightzJson(), last_input);
    }
    ++rep.iterations;
  }
  return rep;
}

Report Harness::RunAll(const FuzzOptions& options) const {
  // 8:4:6:4:2:2:1 across query/analyze/synopsis/xml/service/delta/
  // export, distinct seed streams (the historical 8:6:4:2:2:1 split
  // with the analyzer battery carved in after the query share).
  FuzzOptions part = options;
  Report rep;
  part.iterations = options.iterations * 8 / 27;
  part.seed = options.seed;
  rep.Merge(RunQueryFuzz(part));
  part.iterations = options.iterations * 4 / 27;
  part.seed = options.seed ^ 0xa0761d6478bd642full;
  rep.Merge(RunAnalyzeFuzz(part));
  part.iterations = options.iterations * 6 / 27;
  part.seed = options.seed ^ 0x9e3779b97f4a7c15ull;
  rep.Merge(RunSynopsisFuzz(part));
  part.iterations = options.iterations * 4 / 27;
  part.seed = options.seed ^ 0xbf58476d1ce4e5b9ull;
  rep.Merge(RunXmlFuzz(part));
  part.iterations = options.iterations * 2 / 27;
  part.seed = options.seed ^ 0x94d049bb133111ebull;
  rep.Merge(RunServiceFuzz(part));
  part.iterations = options.iterations * 2 / 27;
  part.seed = options.seed ^ 0x2545f4914f6cdd1dull;
  rep.Merge(RunDeltaFuzz(part));
  part.iterations = options.iterations - options.iterations * 8 / 27 -
                    options.iterations * 6 / 27 -
                    2 * (options.iterations * 4 / 27) -
                    2 * (options.iterations * 2 / 27);
  part.seed = options.seed ^ 0xd6e8feb86659fd93ull;
  rep.Merge(RunExportFuzz(part));
  return rep;
}

Report Harness::ReplayEntry(const CorpusEntry& entry) const {
  Report rep;
  rep.iterations = 1;
  // Replay is deterministic too: the monotonicity sampling inside the
  // battery keys off the payload, not off wall-clock entropy.
  Rng rng(xpath::StableHash64(entry.data) ^ entry.data.size());

  bool accepted = false;
  switch (entry.kind) {
    case CorpusEntry::Kind::kQuery: {
      accepted = xpath::ParseXPath(xpath::StripWhitespace(entry.data)).ok();
      for (const auto& bed : beds_) {
        CheckQueryString(*bed, rng, entry.data, &rep);
      }
      break;
    }
    case CorpusEntry::Kind::kXml: {
      accepted = xml::ParseXml(entry.data).ok();
      CheckXmlString(entry.data, &rep);
      break;
    }
    case CorpusEntry::Kind::kSynopsis: {
      accepted = estimator::Synopsis::Deserialize(entry.data).ok();
      CheckSynopsisBlob(*beds_[0], entry.data, &rep);
      break;
    }
  }

  if ((entry.expect == CorpusEntry::Expect::kAccept && !accepted) ||
      (entry.expect == CorpusEntry::Expect::kReject && accepted)) {
    rep.findings.push_back(MakeFinding(
        "corpus", "expectation",
        StrFormat("%s: expected %s but input was %s", entry.name.c_str(),
                  entry.expect == CorpusEntry::Expect::kAccept ? "accept"
                                                               : "reject",
                  accepted ? "accepted" : "rejected"),
        entry.data, entry.kind == CorpusEntry::Kind::kSynopsis));
  }
  return rep;
}

Result<Report> Harness::ReplayCorpusDir(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status(StatusCode::kNotFound,
                  "cannot read corpus directory " + dir + ": " + ec.message());
  }
  std::vector<std::filesystem::path> files;
  for (const auto& e : it) {
    if (e.is_regular_file() && e.path().extension() == ".corpus") {
      files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());

  Report rep;
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    if (!in) {
      rep.findings.push_back(MakeFinding("corpus", "io",
                                         "failed to read " + path.string(),
                                         path.filename().string()));
      continue;
    }
    auto entry = ParseCorpusEntry(path.filename().string(), contents.str());
    if (!entry.ok()) {
      rep.findings.push_back(MakeFinding("corpus", "format",
                                         entry.status().ToString(),
                                         path.filename().string()));
      continue;
    }
    rep.Merge(ReplayEntry(entry.value()));
  }
  return rep;
}

}  // namespace xee::fuzz
