#include <string>
#include <vector>

#include "common/check.h"
#include "fuzz/fuzz.h"
#include "xpath/canonical.h"

namespace xee::fuzz {
namespace {

/// Names the generator mixes in that do NOT occur in the bed's tag
/// alphabet, to exercise the unknown-tag → estimate-0 path and the
/// parser's name lexer (dash/dot continuations).
constexpr const char* kForeignNames[] = {"zz", "nosuch", "_x9", "b-2", "q.q"};

/// Value-predicate literals, covering quotes, backslashes, whitespace
/// (which must survive StripWhitespace), the empty string, and markup
/// characters.
constexpr const char* kValues[] = {"x",  "10", "hello world", "x\"y",
                                   "a\\b", "",  "<v>"};

/// Recursive grammar walker. Emits mostly-parseable syntax on purpose —
/// the parser is the judge of validity; a share of outputs hitting each
/// of its error paths is part of the coverage.
struct Gen {
  Rng& rng;
  const std::vector<std::string>& tags;
  std::string out;
  int nodes = 0;

  void Name() {
    const size_t r = rng.Index(100);
    if (r < 78) {
      out += tags[rng.Index(tags.size())];
    } else if (r < 88) {
      out += '*';
    } else {
      out += kForeignNames[rng.Index(std::size(kForeignNames))];
    }
  }

  void Step(int depth, bool allow_order) {
    if (allow_order && rng.Index(8) == 0) {
      static constexpr const char* kOrderAxes[] = {
          "following-sibling::", "preceding-sibling::", "following::",
          "preceding::"};
      out += kOrderAxes[rng.Index(std::size(kOrderAxes))];
    } else if (rng.Index(16) == 0) {
      out += rng.Index(2) == 0 ? "child::" : "descendant::";
    }
    Name();
    ++nodes;
    if (rng.Index(25) == 0) out += "{t}";
    while (depth < 3 && nodes < 10 && rng.Index(4) == 0) {
      if (rng.Index(3) == 0) {
        out += "[.=\"";
        out += xpath::EscapeValueFilter(kValues[rng.Index(std::size(kValues))]);
        out += "\"]";
      } else {
        out += '[';
        if (rng.Index(3) == 0) out += rng.Index(2) == 0 ? "//" : "/";
        Chain(depth + 1);
        out += ']';
      }
    }
  }

  void Chain(int depth) {
    const size_t steps = 1 + rng.Index(3);
    for (size_t s = 0; s < steps && nodes < 10; ++s) {
      if (s > 0) out += rng.Index(3) == 0 ? "//" : "/";
      // Order axes need a junction; on the first step of a chain they
      // are guaranteed parse errors, so bias them to later steps.
      Step(depth, /*allow_order=*/s > 0);
    }
  }
};

}  // namespace

std::string GenerateQueryString(Rng& rng, const std::vector<std::string>& tags) {
  XEE_CHECK(!tags.empty());
  Gen g{rng, tags, {}, 0};
  g.out = rng.Index(2) == 0 ? "//" : "/";
  g.Chain(0);
  return std::move(g.out);
}

}  // namespace xee::fuzz
