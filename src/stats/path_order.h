#ifndef XEE_STATS_PATH_ORDER_H_
#define XEE_STATS_PATH_ORDER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "encoding/labeling.h"
#include "xml/tree.h"

namespace xee::stats {

/// Region of a path-order table (paper Section 3).
/// kBefore is the "+element" region: cell (pid, tag) counts the elements
/// X with `pid` that occur *before* some sibling tagged `tag`.
/// kAfter is the "element+" region: elements X occurring *after* some
/// sibling tagged `tag`. An X with `tag` siblings on both sides is
/// counted in both regions.
enum class OrderRegion : uint8_t { kBefore = 0, kAfter = 1 };

/// Row identity inside a path-order table: (region, other tag).
struct OrderRowKey {
  OrderRegion region;
  xml::TagId other_tag;

  friend bool operator==(const OrderRowKey&, const OrderRowKey&) = default;
  friend auto operator<=>(const OrderRowKey& a, const OrderRowKey& b) {
    if (a.region != b.region) return a.region <=> b.region;
    return a.other_tag <=> b.other_tag;
  }
};

/// The path-order table for one element tag (paper Section 3, Figure
/// 2(b)): sparse (region, other-tag) x (path id) grid of sibling-order
/// frequencies. Raw statistic summarized by the o-histogram.
class PathOrderTable {
 public:
  /// Cell value, 0 when absent.
  uint64_t Get(OrderRegion region, xml::TagId other, encoding::PidRef pid) const;

  /// Non-empty rows in sorted key order (region-major, tag minor); each
  /// row maps pid -> count, ordered by pid.
  const std::map<OrderRowKey, std::map<encoding::PidRef, uint64_t>>& rows()
      const {
    return rows_;
  }

  /// Number of non-empty cells.
  size_t CellCount() const;

  /// Adds `delta` to a cell.
  void Add(OrderRegion region, xml::TagId other, encoding::PidRef pid,
           uint64_t delta);

  /// Subtracts `delta` from a cell; the cell must hold at least `delta`
  /// (XEE_CHECK otherwise — a retraction of counts never added is a
  /// maintenance bug, not data). Cells and rows reaching zero are
  /// erased, keeping the sparse representation canonical: a table
  /// maintained by Add/Sub compares equal to one rebuilt from scratch.
  void Sub(OrderRegion region, xml::TagId other, encoding::PidRef pid,
           uint64_t delta);

  friend bool operator==(const PathOrderTable&,
                         const PathOrderTable&) = default;

 private:
  std::map<OrderRowKey, std::map<encoding::PidRef, uint64_t>> rows_;
};

/// Path-order tables for every tag of a document.
class OrderStats {
 public:
  /// Collects sibling-order statistics in one pass over the document.
  /// Cost is O(sum over parents of children * distinct sibling tags).
  static OrderStats Build(const xml::Document& doc,
                          const encoding::Labeling& labeling);

  const PathOrderTable& ForTag(xml::TagId tag) const {
    XEE_CHECK(tag < tables_.size());
    return tables_[tag];
  }

  size_t TagCount() const { return tables_.size(); }

  /// Total non-empty cells over all tags (drives o-histogram cost).
  size_t TotalCells() const;

  /// Applies (`add` = true) or retracts (`add` = false) the sibling-order
  /// contributions of one parent's child list — the incremental-
  /// maintenance counterpart of one Build group. `node_refs` maps NodeId
  /// -> PidRef; a child with ref 0 (unrepresented in the base synopsis)
  /// is emitted into no cell but still counts as a sibling of the
  /// represented children, matching what a scratch rebuild would see.
  /// Children whose tag is outside the maintained tag range are
  /// invisible entirely — the delta layer charges such subtrees to the
  /// patch-error budget instead of patching them. Groups of fewer than
  /// two children contribute nothing. Retraction with the same
  /// (children, refs) exactly undoes the matching application.
  void ApplyGroup(const xml::Document& doc,
                  const std::vector<xml::NodeId>& children,
                  const std::vector<encoding::PidRef>& node_refs, bool add);

  friend bool operator==(const OrderStats&, const OrderStats&) = default;

 private:
  std::vector<PathOrderTable> tables_;  // indexed by TagId
};

}  // namespace xee::stats

#endif  // XEE_STATS_PATH_ORDER_H_
