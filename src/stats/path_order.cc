#include "stats/path_order.h"

namespace xee::stats {

uint64_t PathOrderTable::Get(OrderRegion region, xml::TagId other,
                             encoding::PidRef pid) const {
  auto row = rows_.find(OrderRowKey{region, other});
  if (row == rows_.end()) return 0;
  auto cell = row->second.find(pid);
  return cell == row->second.end() ? 0 : cell->second;
}

void PathOrderTable::Add(OrderRegion region, xml::TagId other,
                         encoding::PidRef pid, uint64_t delta) {
  rows_[OrderRowKey{region, other}][pid] += delta;
}

void PathOrderTable::Sub(OrderRegion region, xml::TagId other,
                         encoding::PidRef pid, uint64_t delta) {
  auto row = rows_.find(OrderRowKey{region, other});
  XEE_CHECK(row != rows_.end());
  auto cell = row->second.find(pid);
  XEE_CHECK(cell != row->second.end() && cell->second >= delta);
  cell->second -= delta;
  if (cell->second == 0) {
    row->second.erase(cell);
    if (row->second.empty()) rows_.erase(row);
  }
}

size_t PathOrderTable::CellCount() const {
  size_t n = 0;
  for (const auto& [key, cells] : rows_) n += cells.size();
  return n;
}

OrderStats OrderStats::Build(const xml::Document& doc,
                             const encoding::Labeling& labeling) {
  OrderStats stats;
  stats.tables_.resize(doc.TagCount());

  // Scratch: per-tag counts of siblings in the currently-swept region,
  // plus the compact list of tags present (count > 0).
  std::vector<uint32_t> tag_count(doc.TagCount(), 0);
  std::vector<xml::TagId> present;

  auto sweep = [&](const std::vector<xml::NodeId>& children,
                   OrderRegion region) {
    // kBefore: for child i, distinct tags among siblings AFTER i.
    // kAfter:  for child i, distinct tags among siblings BEFORE i.
    // Sweep from the far end towards the near end, growing the multiset.
    present.clear();
    auto emit = [&](xml::NodeId child) {
      xml::TagId x = doc.Tag(child);
      encoding::PidRef pid = labeling.node_pid_refs[child];
      for (xml::TagId y : present) {
        stats.tables_[x].Add(region, y, pid, 1);
      }
    };
    auto add = [&](xml::NodeId child) {
      xml::TagId t = doc.Tag(child);
      if (tag_count[t]++ == 0) present.push_back(t);
    };
    if (region == OrderRegion::kBefore) {
      for (size_t i = children.size(); i-- > 0;) {
        emit(children[i]);
        add(children[i]);
      }
    } else {
      for (size_t i = 0; i < children.size(); ++i) {
        emit(children[i]);
        add(children[i]);
      }
    }
    for (xml::TagId t : present) tag_count[t] = 0;
  };

  for (xml::NodeId n = 0; n < doc.NodeCount(); ++n) {
    const auto& children = doc.Children(n);
    if (children.size() < 2) continue;
    sweep(children, OrderRegion::kBefore);
    sweep(children, OrderRegion::kAfter);
  }
  return stats;
}

void OrderStats::ApplyGroup(const xml::Document& doc,
                            const std::vector<xml::NodeId>& children,
                            const std::vector<encoding::PidRef>& node_refs,
                            bool add) {
  if (children.size() < 2) return;
  const xml::TagId tag_limit = static_cast<xml::TagId>(tables_.size());
  std::vector<uint32_t> tag_count(tag_limit, 0);
  std::vector<xml::TagId> present;

  auto sweep = [&](OrderRegion region) {
    present.clear();
    auto emit = [&](xml::NodeId child) {
      xml::TagId x = doc.Tag(child);
      if (x >= tag_limit) return;
      encoding::PidRef pid = node_refs[child];
      if (pid == 0) return;
      for (xml::TagId y : present) {
        if (add) {
          tables_[x].Add(region, y, pid, 1);
        } else {
          tables_[x].Sub(region, y, pid, 1);
        }
      }
    };
    auto grow = [&](xml::NodeId child) {
      xml::TagId t = doc.Tag(child);
      if (t >= tag_limit) return;
      if (tag_count[t]++ == 0) present.push_back(t);
    };
    if (region == OrderRegion::kBefore) {
      for (size_t i = children.size(); i-- > 0;) {
        emit(children[i]);
        grow(children[i]);
      }
    } else {
      for (size_t i = 0; i < children.size(); ++i) {
        emit(children[i]);
        grow(children[i]);
      }
    }
    for (xml::TagId t : present) tag_count[t] = 0;
  };
  sweep(OrderRegion::kBefore);
  sweep(OrderRegion::kAfter);
}

size_t OrderStats::TotalCells() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t.CellCount();
  return n;
}

}  // namespace xee::stats
