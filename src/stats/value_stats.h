#ifndef XEE_STATS_VALUE_STATS_H_
#define XEE_STATS_VALUE_STATS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "xml/tree.h"

namespace xee::stats {

/// Per-tag text-value statistics supporting value predicates `[.="v"]`
/// (extension; the paper's synopsis is structure-only and cites [13] for
/// the value direction). For each tag, the `top_k` most frequent text
/// values keep exact counts; the remaining values are summarized by
/// their total count and distinct count (estimated uniformly).
class ValueStats {
 public:
  struct TagValues {
    /// Most frequent (value, count) pairs, descending by count.
    std::vector<std::pair<std::string, uint64_t>> top;
    uint64_t other_count = 0;     ///< elements with a non-top value
    uint64_t other_distinct = 0;  ///< distinct non-top values
    uint64_t total_elements = 0;  ///< all elements of the tag
  };

  /// Collects text values (whole-element text, as stored by the parser)
  /// in one pass. Elements with empty text contribute to total_elements
  /// only.
  static ValueStats Build(const xml::Document& doc, size_t top_k);

  /// Builds from already-summarized per-tag data (deserialization).
  static ValueStats FromTagValues(std::vector<TagValues> tags);

  /// P(an element of `tag` has text exactly `value`): exact for top
  /// values; the uniform average over the summarized remainder
  /// otherwise; 0 when the tag has no non-top values at all.
  double Selectivity(xml::TagId tag, const std::string& value) const;

  /// Probability aggregated over every tag, weighted by element counts
  /// (used for value predicates on "*" steps).
  double GlobalSelectivity(const std::string& value) const;

  const TagValues& ForTag(xml::TagId tag) const {
    XEE_CHECK(tag < tags_.size());
    return tags_[tag];
  }
  size_t TagCount() const { return tags_.size(); }

  /// Modeled footprint: stored value bytes + 8-byte counts, plus 24
  /// bytes of aggregates per tag.
  size_t SizeBytes() const;

 private:
  std::vector<TagValues> tags_;  // indexed by TagId
};

}  // namespace xee::stats

#endif  // XEE_STATS_VALUE_STATS_H_
