#include "stats/pathid_frequency.h"

#include <algorithm>
#include <map>

namespace xee::stats {

PathIdFrequencyTable PathIdFrequencyTable::Build(
    const xml::Document& doc, const encoding::Labeling& labeling) {
  PathIdFrequencyTable t;
  t.rows_.resize(doc.TagCount());
  // Count per (tag, pid) with a per-tag ordered map, then flatten.
  std::vector<std::map<encoding::PidRef, uint64_t>> counts(doc.TagCount());
  for (xml::NodeId n = 0; n < doc.NodeCount(); ++n) {
    counts[doc.Tag(n)][labeling.node_pid_refs[n]]++;
  }
  for (size_t tag = 0; tag < counts.size(); ++tag) {
    t.rows_[tag].reserve(counts[tag].size());
    for (const auto& [pid, freq] : counts[tag]) {
      t.rows_[tag].push_back(PidFreq{pid, freq});
    }
  }
  return t;
}

size_t PathIdFrequencyTable::EntryCount() const {
  size_t n = 0;
  for (const auto& row : rows_) n += row.size();
  return n;
}

}  // namespace xee::stats
