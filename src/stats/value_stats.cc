#include "stats/value_stats.h"

#include <algorithm>
#include <unordered_map>

namespace xee::stats {

ValueStats ValueStats::Build(const xml::Document& doc, size_t top_k) {
  ValueStats out;
  out.tags_.resize(doc.TagCount());
  std::vector<std::unordered_map<std::string, uint64_t>> counts(
      doc.TagCount());
  for (xml::NodeId n = 0; n < doc.NodeCount(); ++n) {
    out.tags_[doc.Tag(n)].total_elements++;
    const std::string& text = doc.Text(n);
    if (!text.empty()) counts[doc.Tag(n)][text]++;
  }
  for (size_t t = 0; t < counts.size(); ++t) {
    std::vector<std::pair<std::string, uint64_t>> all(counts[t].begin(),
                                                      counts[t].end());
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    TagValues& tv = out.tags_[t];
    for (size_t i = 0; i < all.size(); ++i) {
      if (i < top_k) {
        tv.top.push_back(std::move(all[i]));
      } else {
        tv.other_count += all[i].second;
        tv.other_distinct++;
      }
    }
  }
  return out;
}

ValueStats ValueStats::FromTagValues(std::vector<TagValues> tags) {
  ValueStats out;
  out.tags_ = std::move(tags);
  return out;
}

double ValueStats::Selectivity(xml::TagId tag, const std::string& value) const {
  XEE_CHECK(tag < tags_.size());
  const TagValues& tv = tags_[tag];
  if (tv.total_elements == 0) return 0;
  for (const auto& [v, count] : tv.top) {
    if (v == value) {
      return static_cast<double>(count) /
             static_cast<double>(tv.total_elements);
    }
  }
  if (tv.other_distinct == 0) return 0;
  // Uniformity over the summarized tail.
  return static_cast<double>(tv.other_count) /
         static_cast<double>(tv.other_distinct) /
         static_cast<double>(tv.total_elements);
}

double ValueStats::GlobalSelectivity(const std::string& value) const {
  double matching = 0, total = 0;
  for (size_t t = 0; t < tags_.size(); ++t) {
    const TagValues& tv = tags_[t];
    total += static_cast<double>(tv.total_elements);
    matching += Selectivity(static_cast<xml::TagId>(t), value) *
                static_cast<double>(tv.total_elements);
  }
  return total == 0 ? 0 : matching / total;
}

size_t ValueStats::SizeBytes() const {
  size_t bytes = 0;
  for (const TagValues& tv : tags_) {
    bytes += 24;
    for (const auto& [v, count] : tv.top) {
      (void)count;
      bytes += v.size() + 8;
    }
  }
  return bytes;
}

}  // namespace xee::stats
