#ifndef XEE_STATS_PATHID_FREQUENCY_H_
#define XEE_STATS_PATHID_FREQUENCY_H_

#include <cstdint>
#include <vector>

#include "encoding/labeling.h"
#include "xml/tree.h"

namespace xee::stats {

/// One (path id, frequency) entry of the pathId-frequency table.
struct PidFreq {
  encoding::PidRef pid = 0;
  uint64_t freq = 0;

  friend bool operator==(const PidFreq&, const PidFreq&) = default;
};

/// The pathId-frequency table of paper Section 3: for each distinct
/// element tag, the set of path ids its elements carry together with the
/// number of elements per (tag, path id) pair. This is the raw statistic
/// the p-histogram summarizes.
class PathIdFrequencyTable {
 public:
  /// Builds the table in one pass over the labeled document.
  static PathIdFrequencyTable Build(const xml::Document& doc,
                                    const encoding::Labeling& labeling);

  /// (pid, freq) entries of `tag`, sorted by pid ref; empty for tags
  /// without elements (never the case for interned tags).
  const std::vector<PidFreq>& ForTag(xml::TagId tag) const {
    XEE_CHECK(tag < rows_.size());
    return rows_[tag];
  }

  /// Number of tags (= Document::TagCount()).
  size_t TagCount() const { return rows_.size(); }

  /// Total number of (tag, pid) entries across all tags.
  size_t EntryCount() const;

 private:
  std::vector<std::vector<PidFreq>> rows_;  // indexed by TagId
};

}  // namespace xee::stats

#endif  // XEE_STATS_PATHID_FREQUENCY_H_
