#ifndef XEE_DELTA_DOCUMENT_DELTA_H_
#define XEE_DELTA_DOCUMENT_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/tree.h"

namespace xee::delta {

/// A subtree to insert, flattened in preorder: node `i`'s parent is
/// `parent[i]`, the index of an earlier spec node, or -1 for the spec
/// root (which attaches under the op's target). Tags are names; they are
/// interned into the live document on application, so a spec may carry
/// tags the document has never seen.
struct SubtreeSpec {
  std::vector<std::string> tags;
  std::vector<int32_t> parent;

  size_t size() const { return tags.size(); }
};

/// One mutation against a live document.
struct DeltaOp {
  enum class Kind : uint8_t { kInsert = 0, kDelete = 1 };

  Kind kind = Kind::kInsert;

  /// Preorder rank of the target in the *live* tree as of the start of
  /// the batch (root = rank 0). For kInsert the target is the parent
  /// under which the subtree is appended as a new last child; for
  /// kDelete it is the subtree root to remove — never rank 0, the
  /// document root cannot go. Rank addressing survives compaction,
  /// which renumbers NodeIds but preserves preorder.
  uint32_t target = 0;

  SubtreeSpec subtree;  // kInsert only
};

/// A batched mutation: ops apply in order, all targets addressed
/// against the pre-batch shape. An op whose target was removed by an
/// earlier op of the same batch is skipped (and counted), not an error.
struct DocumentDelta {
  std::vector<DeltaOp> ops;
};

/// A mutable document plus the bookkeeping that keeps NodeIds stable
/// under deletion: detached subtrees stay in the arena (marked dead and
/// unreachable from the root) until a rebuild compacts the tree.
///
/// The live tree must never be labeled or exact-evaluated directly —
/// those passes walk the whole arena and would trip over detached
/// slots. Materialize() produces the pristine compact copy every
/// downstream consumer (Synopsis::Build, ground-truth evaluation) uses.
class LiveDocument {
 public:
  /// Fault site: corrupts the first op's target rank before validation,
  /// modeling a torn delta from upstream. ResolveTargets must reject the
  /// batch cleanly, leaving document and synopsis untouched.
  static constexpr const char* kCorruptFaultSite = "delta.corrupt";

  explicit LiveDocument(xml::Document doc);

  const xml::Document& doc() const { return doc_; }
  size_t live_nodes() const { return live_count_; }
  /// Bumped by every successful mutation and by Compact; lets a
  /// background rebuild detect that its materialized source went stale.
  uint64_t seq() const { return seq_; }
  bool detached(xml::NodeId n) const { return detached_[n] != 0; }

  /// The live nodes in preorder; index = preorder rank.
  std::vector<xml::NodeId> PreorderNodes() const;

  /// Resolves every op's rank target to a NodeId against the current
  /// live shape in one O(live) walk, validating ranks and insert specs.
  /// Fails with kInvalidArgument — without touching the document — on
  /// an out-of-range rank, a delete of the root, or a malformed spec.
  Result<std::vector<xml::NodeId>> ResolveTargets(const DocumentDelta& delta);

  /// Appends `spec` under `parent`; returns the new NodeIds in spec
  /// (preorder) order — they are contiguous, ids[k] = ids[0] + k.
  std::vector<xml::NodeId> InsertSubtree(xml::NodeId parent,
                                         const SubtreeSpec& spec);

  /// The live nodes of `root`'s subtree in preorder (root first).
  std::vector<xml::NodeId> CollectSubtree(xml::NodeId root) const;

  /// Detaches `root`'s subtree and marks every node in it dead.
  /// `root` must not be the document root.
  void DeleteSubtree(xml::NodeId root);

  /// A compact, finalized copy of the live tree: nodes in preorder,
  /// every interned tag preserved with its id (including tags whose
  /// last element was deleted, so TagIds stay stable across
  /// compactions), text and attributes copied. The copy is pristine —
  /// LabelDocument and the exact evaluator accept it.
  xml::Document Materialize() const;

  /// Replaces the live tree with `compacted` (a Materialize() result
  /// for the current shape) — the rebuild-publish path.
  void Compact(xml::Document compacted);

 private:
  xml::Document doc_;
  std::vector<char> detached_;  // by NodeId; 1 = unreachable from root
  size_t live_count_ = 0;
  uint64_t seq_ = 0;
};

/// Builds the spec that clones `root`'s live subtree (tags only — no
/// text, no attributes). The workhorse of clone-insert generators in
/// fuzz/sim/bench: a clone appended under `root`'s own parent is exactly
/// patchable, since every path and pid combination it introduces already
/// occurs earlier in document order.
SubtreeSpec SpecFromSubtree(const LiveDocument& live, xml::NodeId root);

}  // namespace xee::delta

#endif  // XEE_DELTA_DOCUMENT_DELTA_H_
