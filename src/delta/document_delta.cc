#include "delta/document_delta.h"

#include <utility>

#include "common/check.h"
#include "common/fault.h"

namespace xee::delta {
namespace {

Status Invalid(const char* what) {
  return Status(StatusCode::kInvalidArgument,
                std::string("invalid delta: ") + what);
}

}  // namespace

LiveDocument::LiveDocument(xml::Document doc) : doc_(std::move(doc)) {
  XEE_CHECK(!doc_.empty());
  live_count_ = doc_.NodeCount();
  detached_.assign(live_count_, 0);
}

std::vector<xml::NodeId> LiveDocument::PreorderNodes() const {
  std::vector<xml::NodeId> out;
  out.reserve(live_count_);
  std::vector<xml::NodeId> stack{doc_.root()};
  while (!stack.empty()) {
    xml::NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    const std::vector<xml::NodeId>& kids = doc_.Children(n);
    for (size_t i = kids.size(); i-- > 0;) stack.push_back(kids[i]);
  }
  XEE_CHECK(out.size() == live_count_);
  return out;
}

Result<std::vector<xml::NodeId>> LiveDocument::ResolveTargets(
    const DocumentDelta& delta) {
  if (delta.ops.empty()) return Invalid("empty batch");
  uint64_t corrupt_payload = 0;
  const bool corrupted = FaultFires(kCorruptFaultSite, &corrupt_payload);
  const std::vector<xml::NodeId> by_rank = PreorderNodes();
  std::vector<xml::NodeId> resolved;
  resolved.reserve(delta.ops.size());
  for (size_t i = 0; i < delta.ops.size(); ++i) {
    const DeltaOp& op = delta.ops[i];
    uint64_t rank = op.target;
    if (corrupted && i == 0) rank += live_count_ + corrupt_payload + 1;
    if (rank >= by_rank.size()) return Invalid("target rank out of range");
    if (op.kind == DeltaOp::Kind::kDelete) {
      if (rank == 0) return Invalid("cannot delete the document root");
    } else {
      const SubtreeSpec& spec = op.subtree;
      if (spec.size() == 0) return Invalid("empty insert spec");
      if (spec.tags.size() != spec.parent.size()) {
        return Invalid("spec tag/parent size mismatch");
      }
      for (size_t k = 0; k < spec.size(); ++k) {
        if (spec.tags[k].empty()) return Invalid("empty spec tag");
        const int32_t p = spec.parent[k];
        if (k == 0 ? p != -1 : (p < 0 || static_cast<size_t>(p) >= k)) {
          return Invalid("spec parent out of preorder");
        }
      }
    }
    resolved.push_back(by_rank[rank]);
  }
  return resolved;
}

std::vector<xml::NodeId> LiveDocument::InsertSubtree(xml::NodeId parent,
                                                     const SubtreeSpec& spec) {
  XEE_CHECK(!detached(parent));
  std::vector<xml::NodeId> ids;
  ids.reserve(spec.size());
  for (size_t k = 0; k < spec.size(); ++k) {
    const xml::NodeId at =
        spec.parent[k] < 0 ? parent : ids[static_cast<size_t>(spec.parent[k])];
    ids.push_back(doc_.AppendChild(at, spec.tags[k]));
    detached_.push_back(0);
  }
  live_count_ += spec.size();
  ++seq_;
  return ids;
}

std::vector<xml::NodeId> LiveDocument::CollectSubtree(xml::NodeId root) const {
  XEE_CHECK(!detached(root));
  std::vector<xml::NodeId> out;
  std::vector<xml::NodeId> stack{root};
  while (!stack.empty()) {
    xml::NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    const std::vector<xml::NodeId>& kids = doc_.Children(n);
    for (size_t i = kids.size(); i-- > 0;) stack.push_back(kids[i]);
  }
  return out;
}

void LiveDocument::DeleteSubtree(xml::NodeId root) {
  const std::vector<xml::NodeId> sub = CollectSubtree(root);
  XEE_CHECK(doc_.DetachSubtree(root));
  for (xml::NodeId n : sub) detached_[n] = 1;
  XEE_CHECK(live_count_ >= sub.size());
  live_count_ -= sub.size();
  ++seq_;
}

xml::Document LiveDocument::Materialize() const {
  xml::Document out;
  // Pre-intern every tag so the copy reproduces the live tag-id
  // assignment even for tags whose last element was deleted.
  for (size_t t = 0; t < doc_.TagCount(); ++t) {
    out.EnsureTag(doc_.TagNameOf(static_cast<xml::TagId>(t)));
  }
  const std::vector<xml::NodeId> order = PreorderNodes();
  std::vector<xml::NodeId> mapped(doc_.NodeCount(), xml::kNullNode);
  for (xml::NodeId old : order) {
    xml::NodeId copy;
    if (old == doc_.root()) {
      copy = out.CreateRoot(doc_.TagName(old));
    } else {
      copy = out.AppendChild(mapped[doc_.Parent(old)], doc_.TagName(old));
    }
    mapped[old] = copy;
    if (!doc_.Text(old).empty()) out.AppendText(copy, doc_.Text(old));
    for (const xml::Attribute& a : doc_.Attributes(old)) {
      out.AddAttribute(copy, a.name, a.value);
    }
  }
  out.Finalize();
  return out;
}

void LiveDocument::Compact(xml::Document compacted) {
  XEE_CHECK(compacted.NodeCount() == live_count_);
  XEE_CHECK(compacted.TagCount() == doc_.TagCount());
  doc_ = std::move(compacted);
  detached_.assign(live_count_, 0);
  ++seq_;
}

SubtreeSpec SpecFromSubtree(const LiveDocument& live, xml::NodeId root) {
  const std::vector<xml::NodeId> sub = live.CollectSubtree(root);
  std::vector<int32_t> spec_index(live.doc().NodeCount(), -1);
  SubtreeSpec spec;
  spec.tags.reserve(sub.size());
  spec.parent.reserve(sub.size());
  for (size_t k = 0; k < sub.size(); ++k) {
    spec_index[sub[k]] = static_cast<int32_t>(k);
    spec.tags.push_back(live.doc().TagName(sub[k]));
    spec.parent.push_back(k == 0 ? -1
                                 : spec_index[live.doc().Parent(sub[k])]);
  }
  return spec;
}

}  // namespace xee::delta
