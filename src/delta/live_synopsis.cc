#include "delta/live_synopsis.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "stats/pathid_frequency.h"

namespace xee::delta {

LiveSynopsis::LiveSynopsis(std::shared_ptr<const estimator::Synopsis> base,
                           LiveDocument* doc, PatchOptions options)
    : doc_(doc), options_(options) {
  XEE_CHECK(doc_ != nullptr);
  ResetToBase(std::move(base));
}

void LiveSynopsis::ResetToBase(
    std::shared_ptr<const estimator::Synopsis> base) {
  base_ = std::move(base);
  const xml::Document& d = doc_->doc();
  XEE_CHECK(doc_->live_nodes() == d.NodeCount());  // pristine document
  XEE_CHECK(base_->TagCount() == d.TagCount());
  maintain_order_ = base_->has_order();
  maintain_values_ = base_->value_stats() != nullptr;

  // Relabeling the pristine document reproduces the base's encoding and
  // ref assignment exactly (labeling is deterministic in the document).
  encoding::Labeling lab = encoding::LabelDocument(d);
  XEE_CHECK(lab.table.PathCount() == base_->table().PathCount());
  order_ = maintain_order_ ? stats::OrderStats::Build(d, lab)
                           : stats::OrderStats();
  node_refs_ = std::move(lab.node_pid_refs);

  const std::vector<PathIdBits>& pids = base_->AllPidBits();
  ref_of_.clear();
  ref_of_.reserve(pids.size());
  for (size_t i = 0; i < pids.size(); ++i) {
    ref_of_.emplace(pids[i], static_cast<encoding::PidRef>(i + 1));
  }

  const size_t tags = base_->TagCount();
  rows_.assign(tags, {});
  for (xml::NodeId n = 0; n < d.NodeCount(); ++n) {
    rows_[d.Tag(n)][node_refs_[n]] += 1;
  }
  std::vector<std::string> names;
  names.reserve(tags);
  for (size_t t = 0; t < tags; ++t) {
    names.push_back(base_->TagName(static_cast<xml::TagId>(t)));
  }
  ranks_ = estimator::Synopsis::AlphabeticRanks(names);

  p_work_.clear();
  o_work_.clear();
  value_work_.clear();
  for (size_t t = 0; t < tags; ++t) {
    p_work_.push_back(base_->PHisto(static_cast<xml::TagId>(t)));
  }
  if (maintain_order_) {
    for (size_t t = 0; t < tags; ++t) {
      o_work_.push_back(base_->OHisto(static_cast<xml::TagId>(t)));
    }
  }
  if (maintain_values_) {
    for (size_t t = 0; t < tags; ++t) {
      value_work_.push_back(
          base_->value_stats()->ForTag(static_cast<xml::TagId>(t)));
    }
  }

  stale_units_.assign(tags, 0);
  charged_units_.assign(tags, 0);
  dirty_.assign(tags, 0);
  order_dirty_.assign(tags, 0);
  dirty_tags_.clear();
  charged_nodes_ = 0;
  baseline_nodes_ = std::max<double>(1.0, static_cast<double>(d.NodeCount()));
}

double LiveSynopsis::patch_error() const {
  return charged_nodes_ / baseline_nodes_;
}

void LiveSynopsis::MarkDirty(xml::TagId tag) {
  if (dirty_[tag] == 0 && order_dirty_[tag] == 0) dirty_tags_.push_back(tag);
  dirty_[tag] = 1;
}

void LiveSynopsis::MarkGroupOrderDirty(
    const std::vector<xml::NodeId>& group) {
  if (!maintain_order_ || group.size() < 2) return;
  const xml::Document& d = doc_->doc();
  for (xml::NodeId n : group) {
    const xml::TagId t = d.Tag(n);
    if (t >= order_dirty_.size()) continue;
    if (dirty_[t] == 0 && order_dirty_[t] == 0) dirty_tags_.push_back(t);
    order_dirty_[t] = 1;
  }
}

Result<ApplyResult> LiveSynopsis::Apply(const DocumentDelta& delta) {
  Result<std::vector<xml::NodeId>> resolved = doc_->ResolveTargets(delta);
  if (!resolved.ok()) return resolved.status();

  ApplyResult res;
  double charged = 0;
  for (size_t i = 0; i < delta.ops.size(); ++i) {
    const DeltaOp& op = delta.ops[i];
    const xml::NodeId target = resolved.value()[i];
    if (doc_->detached(target)) {
      ++res.ops_skipped;
      continue;
    }
    if (op.kind == DeltaOp::Kind::kInsert) {
      ApplyInsert(target, op.subtree, &res, &charged);
    } else {
      ApplyDelete(target, &res, &charged);
    }
    ++res.ops_applied;
  }
  FoldHistograms(&res, &charged);
  charged_nodes_ += charged;
  res.charged_nodes = charged;
  res.patch_error = patch_error();
  res.budget_exhausted = budget_exhausted();
  res.synopsis = BuildClone();
  return res;
}

void LiveSynopsis::ApplyInsert(xml::NodeId parent, const SubtreeSpec& spec,
                               ApplyResult* res, double* charged) {
  const std::vector<xml::NodeId> before = doc_->doc().Children(parent);
  const std::vector<xml::NodeId> ids = doc_->InsertSubtree(parent, spec);
  const xml::Document& d = doc_->doc();
  node_refs_.resize(d.NodeCount(), 0);
  res->nodes_inserted += ids.size();

  const size_t tag_limit = rows_.size();
  const encoding::EncodingTable& table = base_->table();
  const size_t width = table.PathCount();

  // A subtree is exactly patchable when every leaf path is already
  // encoded and the subtree's combined pid is covered by the parent's —
  // then no ancestor pid changes and the encoding table stays valid.
  // Pids are computed bottom-up: spec order is preorder, so children
  // follow their parent in `ids` and a reverse sweep sees them first.
  bool structure_ok = node_refs_[parent] != 0;
  std::vector<PathIdBits> bits;
  if (structure_ok) {
    bits.assign(ids.size(), PathIdBits(width));
    for (size_t k = ids.size(); k-- > 0;) {
      const xml::NodeId id = ids[k];
      const std::vector<xml::NodeId>& kids = d.Children(id);
      if (kids.empty()) {
        encoding::TagPath path;
        for (xml::NodeId p = id; p != xml::kNullNode; p = d.Parent(p)) {
          path.push_back(d.Tag(p));
        }
        std::reverse(path.begin(), path.end());
        const uint32_t enc = table.Find(path);
        if (enc == 0) {
          structure_ok = false;
          break;
        }
        bits[k].Set(enc);
      } else {
        for (xml::NodeId c : kids) bits[k].OrWith(bits[c - ids[0]]);
      }
    }
    if (structure_ok &&
        !base_->PidBits(node_refs_[parent]).Covers(bits[0])) {
      structure_ok = false;
    }
  }

  if (!structure_ok) {
    // The whole subtree goes unrepresented, and a scratch rebuild would
    // relabel the ancestor chain (its pids gain the new paths): charge
    // the inserted nodes plus that chain, in node units.
    *charged += static_cast<double>(ids.size()) +
                static_cast<double>(d.Depth(parent) + 1);
  } else {
    for (size_t k = 0; k < ids.size(); ++k) {
      auto it = ref_of_.find(bits[k]);
      if (it == ref_of_.end()) {
        // Known paths but a pid combination the base never saw — a
        // rebuild would mint a new distinct pid. One node's worth of
        // estimate drift; the node stays unrepresented.
        *charged += 1;
        continue;
      }
      node_refs_[ids[k]] = it->second;
      const xml::TagId t = d.Tag(ids[k]);
      XEE_CHECK(t < tag_limit);  // known paths imply known tags
      rows_[t][it->second] += 1;
      MarkDirty(t);
      stale_units_[t] += 1;
    }
  }

  // Element totals count every known-tag insert, represented or not —
  // mirroring what a scratch ValueStats::Build of the mutated document
  // would see (inserted nodes carry no text).
  if (maintain_values_) {
    for (xml::NodeId id : ids) {
      if (d.Tag(id) < tag_limit) value_work_[d.Tag(id)].total_elements += 1;
    }
  }

  if (maintain_order_) {
    order_.ApplyGroup(d, before, node_refs_, false);
    order_.ApplyGroup(d, d.Children(parent), node_refs_, true);
    MarkGroupOrderDirty(d.Children(parent));
    for (xml::NodeId id : ids) {
      if (d.Children(id).size() >= 2) {
        order_.ApplyGroup(d, d.Children(id), node_refs_, true);
        MarkGroupOrderDirty(d.Children(id));
      }
    }
  }
}

void LiveSynopsis::ApplyDelete(xml::NodeId target, ApplyResult* res,
                               double* charged) {
  const xml::Document& d = doc_->doc();
  const std::vector<xml::NodeId> sub = doc_->CollectSubtree(target);
  const xml::NodeId parent = d.Parent(target);
  const std::vector<xml::NodeId> before = d.Children(parent);
  const size_t tag_limit = rows_.size();

  if (maintain_order_) {
    for (xml::NodeId n : sub) {
      if (d.Children(n).size() >= 2) {
        order_.ApplyGroup(d, d.Children(n), node_refs_, false);
        MarkGroupOrderDirty(d.Children(n));
      }
    }
    order_.ApplyGroup(d, before, node_refs_, false);
    MarkGroupOrderDirty(before);
  }

  for (xml::NodeId n : sub) {
    const xml::TagId t = d.Tag(n);
    const encoding::PidRef ref = node_refs_[n];
    if (ref != 0) {
      auto it = rows_[t].find(ref);
      XEE_CHECK(it != rows_[t].end() && it->second > 0);
      if (--it->second == 0) rows_[t].erase(it);
      MarkDirty(t);
      stale_units_[t] += 1;
    }
    if (t < tag_limit && maintain_values_) {
      XEE_CHECK(value_work_[t].total_elements > 0);
      value_work_[t].total_elements -= 1;
      // The tag's top-value rows may now overcount: charge the node.
      if (!d.Text(n).empty()) *charged += 1;
    }
    node_refs_[n] = 0;
  }
  // A scratch rebuild may prune paths and pid combinations that just
  // went extinct, shifting the pid table we keep serving: one flat
  // conservative unit per delete op.
  *charged += 1;
  res->nodes_deleted += sub.size();

  doc_->DeleteSubtree(target);
  if (maintain_order_) {
    order_.ApplyGroup(d, d.Children(parent), node_refs_, true);
  }
}

void LiveSynopsis::FoldHistograms(ApplyResult* res, double* charged) {
  for (xml::TagId t : dirty_tags_) {
    const bool freq_dirty = dirty_[t] != 0;
    dirty_[t] = 0;
    order_dirty_[t] = 0;

    uint64_t total = 0;
    for (const auto& [pid, f] : rows_[t]) total += f;
    const double rel =
        stale_units_[t] / std::max<double>(1.0, static_cast<double>(total));
    // Tolerance 0 is strict mode: every dirty histogram is rebuilt from
    // the exact rows. Above 0, small frequency churn is absorbed — the
    // published histograms stay stale and the pending units are charged
    // once. Order-only dirt (a sibling appeared or vanished without
    // this tag's frequencies moving) always rebuilds: the o-histogram
    // rebuild is exact from the maintained order tables and O(tag), so
    // skipping it would leave a stale histogram with nothing charged —
    // the tolerance knob absorbs frequency churn, never accuracy.
    const bool rebuild = !freq_dirty ||
                         options_.histo_patch_tolerance == 0.0 ||
                         rel > options_.histo_patch_tolerance;
    if (!rebuild) {
      *charged += stale_units_[t] - charged_units_[t];
      charged_units_[t] = stale_units_[t];
      ++res->histos_patched;
      continue;
    }
    // Pending units from an earlier absorbed batch mean the published
    // p-histogram is stale even when this batch left the frequencies
    // alone; the exact rows make the rebuild correct either way.
    if (freq_dirty || stale_units_[t] > 0) {
      p_work_[t] = histogram::PHistogram::FromExactRows(
          rows_[t], options_.build.p_variance,
          options_.build.equi_count_p_buckets);
    }
    if (maintain_order_) {
      o_work_[t] = histogram::OHistogram::Build(
          order_.ForTag(t), ranks_, p_work_[t].PidsInOrder(),
          options_.build.o_variance);
    }
    stale_units_[t] = 0;
    charged_units_[t] = 0;
    ++res->histos_rebuilt;
  }
  dirty_tags_.clear();
}

std::shared_ptr<const estimator::Synopsis> LiveSynopsis::BuildClone() const {
  std::optional<stats::ValueStats> values;
  if (maintain_values_) {
    values = stats::ValueStats::FromTagValues(value_work_);
  }
  return std::make_shared<const estimator::Synopsis>(
      estimator::Synopsis::PatchedClone(*base_, p_work_, o_work_,
                                        std::move(values)));
}

}  // namespace xee::delta
