#ifndef XEE_DELTA_LIVE_SYNOPSIS_H_
#define XEE_DELTA_LIVE_SYNOPSIS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "common/status.h"
#include "delta/document_delta.h"
#include "encoding/labeling.h"
#include "estimator/synopsis.h"
#include "stats/path_order.h"
#include "stats/value_stats.h"

namespace xee::delta {

/// Knobs for incremental synopsis maintenance.
struct PatchOptions {
  /// Fraction of the document (in node units) the patched synopsis may
  /// drift from a scratch rebuild before the budget is exhausted and a
  /// rebuild must be scheduled.
  double error_budget = 0.05;

  /// Per-tag relative staleness below which a dirty p-/o-histogram pair
  /// is left un-rebuilt ("patched": the stale histogram keeps serving
  /// and its staleness is charged to the budget). 0 rebuilds every
  /// dirty histogram from the exact maintained rows — still O(tag),
  /// never a document scan — making patched output bit-identical to a
  /// scratch build whenever the structural state is exact.
  double histo_patch_tolerance = 0.0;

  /// Construction knobs for histogram rebuilds (and the background full
  /// rebuild); must match the options the base synopsis was built with
  /// for patched and rebuilt output to agree.
  estimator::SynopsisOptions build;
};

/// What one applied batch did.
struct ApplyResult {
  uint64_t ops_applied = 0;
  /// Ops whose target was removed by an earlier op of the same batch.
  uint64_t ops_skipped = 0;
  uint64_t nodes_inserted = 0;
  uint64_t nodes_deleted = 0;
  uint64_t histos_patched = 0;
  uint64_t histos_rebuilt = 0;
  /// Patch error charged by this batch, in node units.
  double charged_nodes = 0;
  /// Cumulative patch error after this batch, as a document fraction.
  double patch_error = 0;
  bool budget_exhausted = false;
  /// The patched clone to publish (shares the base's path structures).
  std::shared_ptr<const estimator::Synopsis> synopsis;
};

/// Incrementally-maintained synopsis state over one LiveDocument: the
/// exact PathId-Frequency rows, path-order tables, per-node pid refs,
/// and working histogram copies, plus the patch-error accounting
/// (DESIGN.md §14).
///
/// Exactness contract: an insert is exactly patchable when its subtree
/// introduces no new root-to-leaf path, no new pid combination, and no
/// bit outside its parent's pid (so no ancestor pid changes) — e.g. any
/// clone of an earlier sibling subtree. Everything else still applies
/// but charges the error budget: novel-path subtrees go unrepresented
/// (ref 0, invisible to the maintained stats), and deletes charge for
/// the pid-structure staleness a scratch rebuild would resolve.
class LiveSynopsis {
 public:
  /// `doc` must be pristine (no detached nodes) and be the document the
  /// base synopsis was built from; it is borrowed, not owned.
  LiveSynopsis(std::shared_ptr<const estimator::Synopsis> base,
               LiveDocument* doc, PatchOptions options);

  /// Applies one batch: mutates the document, maintains the exact rows
  /// and order tables, makes the per-tag patch-or-rebuild decision, and
  /// returns the patched clone to publish. A rejected batch (invalid or
  /// fault-corrupted target) fails with kInvalidArgument and leaves the
  /// document and every maintained structure untouched.
  Result<ApplyResult> Apply(const DocumentDelta& delta);

  /// Re-bases on a freshly rebuilt synopsis after the document was
  /// compacted to match: recomputes attach state and resets the error
  /// budget. O(document), runs on the rebuild path only.
  void ResetToBase(std::shared_ptr<const estimator::Synopsis> base);

  const estimator::Synopsis& base() const { return *base_; }
  /// Cumulative charged patch error as a fraction of the document.
  double patch_error() const;
  bool budget_exhausted() const {
    return patch_error() > options_.error_budget;
  }

 private:
  void ApplyInsert(xml::NodeId parent, const SubtreeSpec& spec,
                   ApplyResult* res, double* charged);
  void ApplyDelete(xml::NodeId target, ApplyResult* res, double* charged);
  void FoldHistograms(ApplyResult* res, double* charged);
  void MarkDirty(xml::TagId tag);
  /// Marks every maintained tag of `group` as order-dirty: their
  /// o-histograms must be reconsidered even when their frequency rows
  /// did not change (a new or removed sibling shifts their order cells).
  void MarkGroupOrderDirty(const std::vector<xml::NodeId>& group);
  std::shared_ptr<const estimator::Synopsis> BuildClone() const;

  std::shared_ptr<const estimator::Synopsis> base_;
  LiveDocument* doc_;
  PatchOptions options_;
  bool maintain_order_ = false;
  bool maintain_values_ = false;

  /// PidRef of every node (by NodeId); 0 = unrepresented.
  std::vector<encoding::PidRef> node_refs_;
  /// Decoded pid -> ref, over the base's distinct-pid table.
  std::unordered_map<PathIdBits, encoding::PidRef, PathIdBits::Hash> ref_of_;
  /// Exact per-tag (pid, freq) rows; the map order is pid order, so a
  /// flattened row vector feeds PHistogram::Build directly.
  std::vector<std::map<encoding::PidRef, uint64_t>> rows_;
  stats::OrderStats order_;
  std::vector<uint32_t> ranks_;  // alphabetic tag ranks (o-histograms)

  /// Working copies of the published histograms / value stats.
  std::vector<histogram::PHistogram> p_work_;
  std::vector<histogram::OHistogram> o_work_;
  std::vector<stats::ValueStats::TagValues> value_work_;

  /// Per-tag staleness (node units) pending in the working histograms,
  /// and the portion of it already charged to the budget by earlier
  /// patch decisions.
  std::vector<double> stale_units_;
  std::vector<double> charged_units_;
  /// Tags whose frequency rows changed (stale_units accrue), and tags
  /// whose order cells changed (dirty even at zero frequency units).
  std::vector<xml::TagId> dirty_tags_;
  std::vector<char> dirty_;
  std::vector<char> order_dirty_;

  double charged_nodes_ = 0;
  double baseline_nodes_ = 1;
};

}  // namespace xee::delta

#endif  // XEE_DELTA_LIVE_SYNOPSIS_H_
