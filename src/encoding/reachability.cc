#include "encoding/reachability.h"

namespace xee::encoding {

TagReachability TagReachability::Build(const EncodingTable& table,
                                       size_t tag_count) {
  TagReachability r;
  r.tag_count_ = tag_count;
  r.desc_.assign(tag_count, PathIdBits(tag_count));
  r.child_.assign(tag_count, PathIdBits(tag_count));
  r.gap_.assign(tag_count, PathIdBits(tag_count));
  r.depth2_.assign(tag_count, 0);
  r.depth3_.assign(tag_count, 0);
  r.nonleaf_.assign(tag_count, 0);
  r.deep_above_.assign(tag_count, 0);

  for (uint32_t enc = 1; enc <= table.PathCount(); ++enc) {
    const TagPath& path = table.Path(enc);
    const size_t len = path.size();
    if (len >= 2) r.any_depth2_ = true;
    if (len >= 3) r.any_depth3_ = true;
    for (size_t i = 0; i < len; ++i) {
      const xml::TagId a = path[i];
      if (!r.InRange(a)) continue;
      if (i >= 1) r.depth2_[a] = 1;
      if (i >= 2) r.depth3_[a] = 1;
      if (i + 1 < len) r.nonleaf_[a] = 1;
      if (i + 2 < len) r.deep_above_[a] = 1;
      for (size_t j = i + 1; j < len; ++j) {
        const xml::TagId b = path[j];
        if (!r.InRange(b)) continue;
        r.desc_[a].Set(b + 1);
        if (j == i + 1) r.child_[a].Set(b + 1);
        if (j >= i + 2) r.gap_[a].Set(b + 1);
      }
    }
  }
  return r;
}

bool TagReachability::Below(xml::TagId above, xml::TagId below,
                            bool immediate) const {
  // On a root-to-leaf path, "has any strict descendant" and "has a child"
  // coincide (as do "has a proper ancestor" and "has a parent"), so the
  // wildcard answers are immediate-agnostic.
  if (above == kWildcardTag && below == kWildcardTag) return any_depth2_;
  if (above == kWildcardTag) return InRange(below) && depth2_[below] != 0;
  if (below == kWildcardTag) return InRange(above) && nonleaf_[above] != 0;
  if (!InRange(above) || !InRange(below)) return false;
  return (immediate ? child_ : desc_)[above].Test(below + 1);
}

bool TagReachability::BelowGap(xml::TagId above, xml::TagId below) const {
  if (above == kWildcardTag && below == kWildcardTag) return any_depth3_;
  if (above == kWildcardTag) return InRange(below) && depth3_[below] != 0;
  if (below == kWildcardTag) return InRange(above) && deep_above_[above] != 0;
  if (!InRange(above) || !InRange(below)) return false;
  return gap_[above].Test(below + 1);
}

bool TagReachability::HasProperAncestor(xml::TagId t) const {
  return InRange(t) && depth2_[t] != 0;
}

size_t TagReachability::SizeBytes() const {
  size_t b = sizeof(TagReachability);
  for (const PathIdBits& row : desc_) b += row.words().size() * 8;
  for (const PathIdBits& row : child_) b += row.words().size() * 8;
  for (const PathIdBits& row : gap_) b += row.words().size() * 8;
  b += depth2_.size() + depth3_.size() + nonleaf_.size() + deep_above_.size();
  return b;
}

}  // namespace xee::encoding
