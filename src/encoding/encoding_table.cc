#include "encoding/encoding_table.h"

namespace xee::encoding {

uint32_t EncodingTable::GetOrAssign(const TagPath& path) {
  XEE_CHECK(!path.empty());
  auto [it, inserted] =
      by_path_.emplace(path, static_cast<uint32_t>(paths_.size() + 1));
  if (inserted) paths_.push_back(path);
  return it->second;
}

uint32_t EncodingTable::Find(const TagPath& path) const {
  auto it = by_path_.find(path);
  return it == by_path_.end() ? 0 : it->second;
}

std::string EncodingTable::PathString(uint32_t enc,
                                      const xml::Document& doc) const {
  const TagPath& p = Path(enc);
  std::string out;
  for (size_t i = 0; i < p.size(); ++i) {
    if (i > 0) out += '/';
    out += doc.TagNameOf(p[i]);
  }
  return out;
}

bool EncodingTable::PathHasTag(uint32_t enc, xml::TagId t) const {
  if (t == kWildcardTag) return true;
  for (xml::TagId x : Path(enc)) {
    if (x == t) return true;
  }
  return false;
}

bool EncodingTable::TagBelowOnPath(uint32_t enc, xml::TagId above,
                                   xml::TagId below, bool immediate) const {
  const TagPath& p = Path(enc);
  if (above == kWildcardTag && below == kWildcardTag) return p.size() >= 2;
  if (above == kWildcardTag) {
    // Any occurrence of `below` strictly below the root position works.
    for (size_t i = 1; i < p.size(); ++i) {
      if (p[i] == below) return true;
    }
    return false;
  }
  if (below == kWildcardTag) {
    // Any occurrence of `above` with something beneath it.
    for (size_t i = 0; i + 1 < p.size(); ++i) {
      if (p[i] == above) return true;
    }
    return false;
  }
  if (immediate) {
    for (size_t i = 0; i + 1 < p.size(); ++i) {
      if (p[i] == above && p[i + 1] == below) return true;
    }
    return false;
  }
  // Any occurrence of `above` strictly above any occurrence of `below`.
  bool seen_above = false;
  for (size_t i = 0; i < p.size(); ++i) {
    if (seen_above && p[i] == below) return true;
    if (p[i] == above) seen_above = true;
  }
  return false;
}

std::vector<TagPath> EncodingTable::ChainsBelow(uint32_t enc,
                                                xml::TagId above,
                                                xml::TagId target) const {
  const TagPath& p = Path(enc);
  std::vector<TagPath> chains;
  for (size_t i = 0; i + 1 < p.size(); ++i) {
    if (p[i] != above) continue;
    // Chains start at position i+1 and end at any later occurrence of
    // `target`.
    for (size_t j = i + 1; j < p.size(); ++j) {
      if (p[j] != target) continue;
      TagPath chain(p.begin() + static_cast<ptrdiff_t>(i + 1),
                    p.begin() + static_cast<ptrdiff_t>(j + 1));
      bool dup = false;
      for (const TagPath& c : chains) {
        if (c == chain) {
          dup = true;
          break;
        }
      }
      if (!dup) chains.push_back(std::move(chain));
    }
  }
  return chains;
}

size_t EncodingTable::SizeBytes() const {
  size_t bytes = 0;
  for (const TagPath& p : paths_) bytes += p.size() * 1 + 2;
  return bytes;
}

}  // namespace xee::encoding
