#ifndef XEE_ENCODING_CONTAINMENT_H_
#define XEE_ENCODING_CONTAINMENT_H_

#include "common/bitset.h"
#include "encoding/encoding_table.h"

namespace xee::encoding {

/// Structural axis between two adjacent query nodes.
enum class AxisKind {
  kChild,       ///< '/'  — parent-child
  kDescendant,  ///< '//' — ancestor-descendant
};

/// Path-id containment test used by the path-id join (paper Section 2).
///
/// Returns true iff nodes labeled (`tag_above`, `pid_above`) can have a
/// (`tag_below`, `pid_below`) node below them via `axis`:
///   1. pid_above covers pid_below — every path through the lower node
///      also passes through the upper one (Cases 1 and 2 of Section 2);
///   2. on at least one common root-to-leaf path (= set bits of
///      pid_below), tag_below occurs below tag_above (immediately below
///      for the child axis), verified against the encoding table.
bool PidPairCompatible(const EncodingTable& table, xml::TagId tag_above,
                       const PathIdBits& pid_above, xml::TagId tag_below,
                       const PathIdBits& pid_below, AxisKind axis);

}  // namespace xee::encoding

#endif  // XEE_ENCODING_CONTAINMENT_H_
