#include "encoding/containment.h"

namespace xee::encoding {

bool PidPairCompatible(const EncodingTable& table, xml::TagId tag_above,
                       const PathIdBits& pid_above, xml::TagId tag_below,
                       const PathIdBits& pid_below, AxisKind axis) {
  if (!pid_above.Covers(pid_below)) return false;
  const bool immediate = axis == AxisKind::kChild;
  // Common paths of the two ids are exactly the set bits of pid_below.
  bool found = false;
  pid_below.ForEachSetBit([&](size_t enc) {
    if (found) return;
    if (table.TagBelowOnPath(static_cast<uint32_t>(enc), tag_above, tag_below,
                             immediate)) {
      found = true;
    }
  });
  return found;
}

}  // namespace xee::encoding
