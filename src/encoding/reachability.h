#ifndef XEE_ENCODING_REACHABILITY_H_
#define XEE_ENCODING_REACHABILITY_H_

#include <cstddef>
#include <vector>

#include "common/bitset.h"
#include "encoding/encoding_table.h"

namespace xee::encoding {

/// Tag-pair reachability closure over an encoding table (DESIGN.md §15).
///
/// Every element pair related by ancestor/descendant in the document lies
/// on a common root-to-leaf tag path, and every such path is a row of the
/// encoding table. The closure therefore over-approximates the document's
/// tag-pair containment relation: `Below(a, b, ...)` false is a proof that
/// no element tagged `b` sits below an element tagged `a` anywhere, which
/// is what makes the static analyzer's satisfiability prunes sound. The
/// converse direction is not claimed (a tag pair can co-occur on a path
/// without any instance pair being related), so `true` only means "cannot
/// rule it out".
///
/// Built once per synopsis in O(sum of path-length²) and shared immutably
/// with patched clones: incremental maintenance never extends the path
/// set (a delta introducing a new root-to-leaf path forces a rebuild), so
/// a closure over the table stays an over-approximation for the lifetime
/// of the path structures it was derived from.
class TagReachability {
 public:
  TagReachability() = default;

  /// Builds the closure over every path of `table`. Tag ids in paths must
  /// be < `tag_count`; out-of-range ids (impossible for tables built by
  /// LabelDocument or accepted by Synopsis::Deserialize) are ignored.
  static TagReachability Build(const EncodingTable& table, size_t tag_count);

  size_t tag_count() const { return tag_count_; }

  /// True iff some encoded path has an occurrence of `below` strictly
  /// below (with `immediate`: directly below) an occurrence of `above`.
  /// Either side may be kWildcardTag, quantifying over all tags.
  bool Below(xml::TagId above, xml::TagId below, bool immediate) const;

  /// True iff some encoded path has `below` at distance >= 2 under
  /// `above`. When false, every below-relationship between the pair is a
  /// direct parent/child step on every path — the licence for the
  /// analyzer's descendant->child axis tightening. Wildcards quantify.
  bool BelowGap(xml::TagId above, xml::TagId below) const;

  /// True iff `t` occurs at depth >= 2 on some path, i.e. some occurrence
  /// has a proper ancestor. False for a non-recursive root tag: the
  /// licence for anchoring `//root` to `/root`.
  bool HasProperAncestor(xml::TagId t) const;

  /// Modeled memory footprint (three T-bit rows per tag plus flags).
  size_t SizeBytes() const;

 private:
  bool InRange(xml::TagId t) const { return t < tag_count_; }

  size_t tag_count_ = 0;
  // Row per tag `a`; bit t+1 of a row marks tag t (PathIdBits is 1-based).
  std::vector<PathIdBits> desc_;   // t strictly below a on some path
  std::vector<PathIdBits> child_;  // t directly below a on some path
  std::vector<PathIdBits> gap_;    // t at distance >= 2 below a
  // Per-tag occurrence-depth facts.
  std::vector<uint8_t> depth2_;      // occurs at depth >= 2
  std::vector<uint8_t> depth3_;      // occurs at depth >= 3
  std::vector<uint8_t> nonleaf_;     // occurs with >= 1 step below it
  std::vector<uint8_t> deep_above_;  // occurs with >= 2 steps below it
  bool any_depth2_ = false;  // some path has length >= 2
  bool any_depth3_ = false;  // some path has length >= 3
};

}  // namespace xee::encoding

#endif  // XEE_ENCODING_REACHABILITY_H_
