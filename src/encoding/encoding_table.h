#ifndef XEE_ENCODING_ENCODING_TABLE_H_
#define XEE_ENCODING_ENCODING_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "xml/tree.h"

namespace xee::encoding {

/// A root-to-leaf path: the sequence of element tags from the document
/// root (inclusive) down to a leaf element (inclusive).
using TagPath = std::vector<xml::TagId>;

/// Sentinel tag matching any element tag ("*" name tests). Accepted by
/// the tag-relationship tests below; never stored in paths.
inline constexpr xml::TagId kWildcardTag = UINT32_MAX;

/// The encoding table of the path encoding scheme (paper Section 2,
/// following [8]): assigns each distinct root-to-leaf tag path an integer
/// encoding 1..N in order of first appearance in document order. Path ids
/// are N-bit sequences whose bit `i` corresponds to the path encoded `i`.
///
/// Besides the path <-> integer mapping, this table answers the
/// tag-relationship questions the estimator asks during the path-id join
/// ("on path e, does tag Y occur (immediately) below tag X?") and the
/// chain-decoding question used to rewrite `following`/`preceding` axes
/// into sibling axes (Example 5.3).
class EncodingTable {
 public:
  EncodingTable() = default;

  /// Returns the encoding of `path`, assigning the next integer if unseen.
  uint32_t GetOrAssign(const TagPath& path);

  /// Returns the encoding of `path`, or 0 if the path was never assigned.
  uint32_t Find(const TagPath& path) const;

  /// Number of distinct root-to-leaf paths (= path-id width in bits).
  size_t PathCount() const { return paths_.size(); }

  /// The path with encoding `enc` (1-based).
  const TagPath& Path(uint32_t enc) const {
    XEE_CHECK(enc >= 1 && enc <= paths_.size());
    return paths_[enc - 1];
  }

  /// Renders path `enc` as "Root/A/B/D" using `doc` for tag names.
  std::string PathString(uint32_t enc, const xml::Document& doc) const;

  // --- Tag relationship tests (used by the path-id join) ---------------

  /// True iff tag `t` occurs anywhere on path `enc`.
  bool PathHasTag(uint32_t enc, xml::TagId t) const;

  /// True iff on path `enc` some occurrence of `below` lies strictly below
  /// some occurrence of `above`. With `immediate`, `below` must be the
  /// direct child (adjacent position) of `above`.
  bool TagBelowOnPath(uint32_t enc, xml::TagId above, xml::TagId below,
                      bool immediate) const;

  /// All distinct tag chains `(c1, ..., ck)` on path `enc` such that some
  /// occurrence of `above` is immediately followed by c1, and ck == target
  /// occurs at the end of the chain (chains from a child of `above` down
  /// to an occurrence of `target`). Used to rewrite `following::target`
  /// under junction `above` into following-sibling::c1/c2/.../target.
  std::vector<TagPath> ChainsBelow(uint32_t enc, xml::TagId above,
                                   xml::TagId target) const;

  /// Modeled storage footprint: per path, one tag reference per step plus
  /// a 2-byte encoding integer (paper Table 3 "EncTab").
  size_t SizeBytes() const;

 private:
  std::vector<TagPath> paths_;          // index = encoding - 1
  std::map<TagPath, uint32_t> by_path_;  // path -> encoding
};

}  // namespace xee::encoding

#endif  // XEE_ENCODING_ENCODING_TABLE_H_
