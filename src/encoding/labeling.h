#ifndef XEE_ENCODING_LABELING_H_
#define XEE_ENCODING_LABELING_H_

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "encoding/encoding_table.h"
#include "xml/tree.h"

namespace xee::encoding {

/// A 1-based index into the document's table of distinct path ids; the
/// integers attached to the path-id binary tree's leaves. Pid refs are
/// assigned in bit-string lexicographic order of the id (so ref order is
/// trie-leaf order), and 0 is reserved as "none".
using PidRef = uint32_t;

/// The complete path labeling of one document (paper Section 2):
/// encoding table, per-node path ids, and the distinct path-id table.
struct Labeling {
  EncodingTable table;

  /// Path id of every node, indexed by NodeId.
  std::vector<PathIdBits> node_pids;

  /// PidRef of every node, indexed by NodeId (1-based into distinct_pids).
  std::vector<PidRef> node_pid_refs;

  /// The distinct path ids, sorted by PathIdBits::LexLess;
  /// `distinct_pids[ref - 1]` is the id for PidRef `ref`.
  std::vector<PathIdBits> distinct_pids;

  /// Width of every path id in bits (= number of distinct paths).
  size_t PidBits() const { return table.PathCount(); }
  /// Bytes per stored path id (paper Table 3 "Pid Size").
  size_t PidSizeBytes() const { return (PidBits() + 7) / 8; }
  /// Bytes of the raw path-id table (paper Table 3 "PidTab").
  size_t PidTableSizeBytes() const {
    return distinct_pids.size() * PidSizeBytes();
  }

  /// The path id for `ref` (1-based).
  const PathIdBits& Pid(PidRef ref) const {
    XEE_CHECK(ref >= 1 && ref <= distinct_pids.size());
    return distinct_pids[ref - 1];
  }
};

/// Labels every element of `doc`: enumerates distinct root-to-leaf paths
/// in document order, assigns each leaf the single-bit id of its path, and
/// each interior node the bit-or of its children's ids (Section 2).
Labeling LabelDocument(const xml::Document& doc);

}  // namespace xee::encoding

#endif  // XEE_ENCODING_LABELING_H_
