#include "encoding/labeling.h"

#include <algorithm>
#include <unordered_map>

namespace xee::encoding {

Labeling LabelDocument(const xml::Document& doc) {
  Labeling out;
  if (doc.empty()) return out;

  const size_t n = doc.NodeCount();

  // Phase 1: enumerate leaves in document order, assigning encodings to
  // distinct root-to-leaf tag paths. Iterative DFS keeping the tag path.
  std::vector<uint32_t> leaf_encoding(n, 0);
  {
    TagPath path;
    // Stack of (node, next-child-index).
    std::vector<std::pair<xml::NodeId, size_t>> stack;
    stack.emplace_back(doc.root(), 0);
    path.push_back(doc.Tag(doc.root()));
    while (!stack.empty()) {
      auto& [node, child_idx] = stack.back();
      const auto& children = doc.Children(node);
      if (children.empty()) {
        leaf_encoding[node] = out.table.GetOrAssign(path);
      }
      if (child_idx < children.size()) {
        xml::NodeId child = children[child_idx++];
        stack.emplace_back(child, 0);
        path.push_back(doc.Tag(child));
      } else {
        stack.pop_back();
        path.pop_back();
      }
    }
  }

  const size_t width = out.table.PathCount();

  // Phase 2: post-order bit-or. NodeIds are created parent-before-child,
  // so a reverse index sweep visits children before parents.
  out.node_pids.assign(n, PathIdBits(width));
  for (size_t i = n; i-- > 0;) {
    xml::NodeId node = static_cast<xml::NodeId>(i);
    if (doc.Children(node).empty()) {
      out.node_pids[i].Set(leaf_encoding[node]);
    }
    xml::NodeId parent = doc.Parent(node);
    if (parent != xml::kNullNode) {
      out.node_pids[parent].OrWith(out.node_pids[i]);
    }
  }

  // Phase 3: distinct pid table sorted in bit-string lexicographic order
  // (trie-leaf order), then per-node refs.
  out.distinct_pids = out.node_pids;
  std::sort(out.distinct_pids.begin(), out.distinct_pids.end(),
            PathIdBits::LexLess);
  out.distinct_pids.erase(
      std::unique(out.distinct_pids.begin(), out.distinct_pids.end()),
      out.distinct_pids.end());

  std::unordered_map<PathIdBits, PidRef, PathIdBits::Hash> ref_of;
  ref_of.reserve(out.distinct_pids.size());
  for (size_t i = 0; i < out.distinct_pids.size(); ++i) {
    ref_of.emplace(out.distinct_pids[i], static_cast<PidRef>(i + 1));
  }
  out.node_pid_refs.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out.node_pid_refs[i] = ref_of.at(out.node_pids[i]);
  }
  return out;
}

}  // namespace xee::encoding
