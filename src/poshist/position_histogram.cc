#include "poshist/position_histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace xee::poshist {
namespace {

using xpath::Query;
using xpath::RootMode;

constexpr int kUnknownTag = -1;
constexpr int kAnyTag = -2;

}  // namespace

PositionHistogramEstimator PositionHistogramEstimator::Build(
    const xml::Document& doc, const PositionHistogramOptions& options) {
  XEE_CHECK(doc.finalized());
  XEE_CHECK(options.grid >= 1);
  PositionHistogramEstimator e;
  e.grid_ = options.grid;
  e.root_tag_ = static_cast<int>(doc.Tag(doc.root()));
  for (size_t t = 0; t < doc.TagCount(); ++t) {
    e.tag_names_.push_back(doc.TagNameOf(static_cast<xml::TagId>(t)));
  }
  e.tags_.resize(doc.TagCount());

  // Classic 2n start/end numbering from one counter (as in [16] and the
  // interval labeling literature): every start and end value is
  // distinct, so ancestor containment is strict in both coordinates.
  std::vector<uint32_t> start(doc.NodeCount()), end(doc.NodeCount());
  {
    uint32_t counter = 0;
    std::vector<std::pair<xml::NodeId, size_t>> stack;
    start[doc.root()] = counter++;
    stack.emplace_back(doc.root(), 0);
    while (!stack.empty()) {
      auto& [node, child_idx] = stack.back();
      const auto& children = doc.Children(node);
      if (child_idx < children.size()) {
        xml::NodeId child = children[child_idx++];
        start[child] = counter++;
        stack.emplace_back(child, 0);
      } else {
        end[node] = counter++;
        stack.pop_back();
      }
    }
  }

  const double width = static_cast<double>(2 * doc.NodeCount()) /
                       static_cast<double>(e.grid_);
  std::vector<std::map<std::pair<uint32_t, uint32_t>, uint64_t>> sparse(
      doc.TagCount());
  for (xml::NodeId n = 0; n < doc.NodeCount(); ++n) {
    const auto i = static_cast<uint32_t>(start[n] / width);
    const auto j = static_cast<uint32_t>(end[n] / width);
    sparse[doc.Tag(n)][{i, j}]++;
  }
  for (size_t t = 0; t < doc.TagCount(); ++t) {
    for (const auto& [ij, count] : sparse[t]) {
      e.tags_[t].cells.push_back(Cell{ij.first, ij.second, count});
      e.tags_[t].total += count;
    }
  }
  return e;
}

void PositionHistogramEstimator::Rebuild(const xml::Document& doc) {
  PositionHistogramOptions options;
  options.grid = grid_;
  *this = Build(doc, options);
}

int PositionHistogramEstimator::FindTag(const std::string& name) const {
  if (name == "*") return kAnyTag;
  for (size_t t = 0; t < tag_names_.size(); ++t) {
    if (tag_names_[t] == name) return static_cast<int>(t);
  }
  return kUnknownTag;
}

double PositionHistogramEstimator::Pairs(int anc_tag, int desc_tag) const {
  if (anc_tag == kAnyTag || desc_tag == kAnyTag) {
    // Sum over concrete tags (distinct elements, so no double counting).
    double total = 0;
    if (anc_tag == kAnyTag) {
      for (size_t t = 0; t < tags_.size(); ++t) {
        total += Pairs(static_cast<int>(t), desc_tag);
      }
    } else {
      for (size_t t = 0; t < tags_.size(); ++t) {
        total += Pairs(anc_tag, static_cast<int>(t));
      }
    }
    return total;
  }
  const TagHistogram& a = tags_[anc_tag];
  const TagHistogram& d = tags_[desc_tag];
  double pairs = 0;
  for (const Cell& ca : a.cells) {
    for (const Cell& cd : d.cells) {
      // P(a.start < d.start): 1 if ca.i < cd.i, 0 if >, 1/2 within the
      // same cell band (positions uniform within a band).
      double p_start = ca.i < cd.i ? 1.0 : (ca.i == cd.i ? 0.5 : 0.0);
      double p_end = cd.j < ca.j ? 1.0 : (cd.j == ca.j ? 0.5 : 0.0);
      pairs += static_cast<double>(ca.count) *
               static_cast<double>(cd.count) * p_start * p_end;
    }
  }
  return pairs;
}

double PositionHistogramEstimator::PairCount(
    const std::string& ancestor_tag, const std::string& descendant_tag) const {
  int a = FindTag(ancestor_tag);
  int d = FindTag(descendant_tag);
  if (a == kUnknownTag || d == kUnknownTag) return 0;
  return Pairs(a, d);
}

Result<double> PositionHistogramEstimator::Estimate(const Query& q) const {
  Status s = q.Validate();
  if (!s.ok()) return s;
  if (!q.orders.empty()) {
    return Status(StatusCode::kUnsupported,
                  "position histograms capture containment only");
  }
  for (const auto& n : q.nodes) {
    if (n.value_filter.has_value()) {
      return Status(StatusCode::kUnsupported,
                    "position histograms are structure-only");
    }
  }
  std::vector<int> tags(q.size());
  std::vector<double> counts(q.size());
  for (size_t i = 0; i < q.size(); ++i) {
    tags[i] = FindTag(q.nodes[i].tag);
    if (tags[i] == kUnknownTag) return 0.0;
    if (tags[i] == kAnyTag) {
      double total = 0;
      for (const auto& t : tags_) total += static_cast<double>(t.total);
      counts[i] = total;
    } else {
      counts[i] = static_cast<double>(tags_[tags[i]].total);
    }
    if (counts[i] == 0) return 0.0;
  }

  // Downward satisfaction probability of the subquery below node qi,
  // composed from pairwise containment fractions under independence.
  // The child axis deliberately uses the same containment fraction
  // (the baseline's documented limitation).
  std::vector<double> down(q.size(), -1);
  auto down_of = [&](auto&& self, int qi) -> double {
    if (down[qi] >= 0) return down[qi];
    double p = 1;
    for (int c : q.nodes[qi].children) {
      const double expected =
          Pairs(tags[qi], tags[c]) / counts[qi] * self(self, c);
      p *= std::min(1.0, expected);
    }
    down[qi] = p;
    return p;
  };

  // Upward probability: the chain above qi exists, with the other
  // branches of each ancestor satisfied.
  std::vector<double> up(q.size(), -1);
  auto up_of = [&](auto&& self, int qi) -> double {
    if (up[qi] >= 0) return up[qi];
    double p;
    if (qi == 0) {
      if (q.root_mode == RootMode::kAbsolute) {
        p = (tags[0] == root_tag_ || tags[0] == kAnyTag)
                ? 1.0 / counts[0]  // exactly one root among count elements
                : 0.0;
      } else {
        p = 1.0;
      }
    } else {
      const int parent = q.nodes[qi].parent;
      double context = self(self, parent);
      for (int sibling : q.nodes[parent].children) {
        if (sibling == qi) continue;
        const double expected = Pairs(tags[parent], tags[sibling]) /
                                counts[parent] * down_of(down_of, sibling);
        context *= std::min(1.0, expected);
      }
      const double expected_anc =
          Pairs(tags[parent], tags[qi]) / counts[qi] * context;
      p = std::min(1.0, expected_anc);
    }
    up[qi] = p;
    return p;
  };

  return counts[q.target] * up_of(up_of, q.target) *
         down_of(down_of, q.target);
}

size_t PositionHistogramEstimator::SizeBytes() const {
  size_t cells = 0;
  for (const auto& t : tags_) cells += t.cells.size();
  return cells * 6;
}

}  // namespace xee::poshist
