#ifndef XEE_POSHIST_POSITION_HISTOGRAM_H_
#define XEE_POSHIST_POSITION_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/tree.h"
#include "xpath/query.h"

namespace xee::poshist {

/// Construction knobs.
struct PositionHistogramOptions {
  /// Grid resolution: the (start, end) plane is cut into grid x grid
  /// buckets. Memory grows with the number of non-empty cells.
  size_t grid = 16;
};

/// Second related-work baseline (paper Section 8, [16] Wu, Patel,
/// Jagadish, EDBT'02): a two-dimensional *position histogram* per
/// element tag over the interval-labeling plane (start = pre-order
/// position, end = subtree end). Ancestor-descendant pair counts between
/// two tags are estimated from cell-pair geometry ("position histogram
/// join"); query selectivities compose the pairwise factors under
/// independence, exactly in the spirit of the original.
///
/// Faithful to the original's documented weakness: only *containment* is
/// captured, so the child axis is treated like the descendant axis
/// ("this approach cannot distinguish between parent-child and
/// ancestor-descendant relationships", paper Section 8). Order axes are
/// unsupported.
class PositionHistogramEstimator {
 public:
  static PositionHistogramEstimator Build(
      const xml::Document& doc, const PositionHistogramOptions& options = {});

  /// Refreshes this estimator against a mutated document, keeping its
  /// grid resolution. This baseline has no incremental maintenance
  /// story: the start/end numbering of *every* node shifts under a
  /// single insert, so any mutation invalidates the whole grid and a
  /// refresh is a full O(document) pass — the cost the
  /// update-throughput bench holds against incremental patching.
  void Rebuild(const xml::Document& doc);

  /// Estimated selectivity of `q.target`; kUnsupported for order
  /// constraints.
  Result<double> Estimate(const xpath::Query& q) const;

  /// Expected number of (ancestor, descendant) pairs between two tags —
  /// the primitive the original system exposes.
  double PairCount(const std::string& ancestor_tag,
                   const std::string& descendant_tag) const;

  /// Modeled footprint: 6 bytes per non-empty cell (two 1-byte cell
  /// coordinates + 4-byte count).
  size_t SizeBytes() const;

 private:
  struct Cell {
    uint32_t i;  // start / cell_width
    uint32_t j;  // end / cell_width
    uint64_t count;
  };
  struct TagHistogram {
    std::vector<Cell> cells;
    uint64_t total = 0;
  };

  int FindTag(const std::string& name) const;
  /// Expected pairs via the cell-domination geometry.
  double Pairs(int anc_tag, int desc_tag) const;

  size_t grid_ = 16;
  std::vector<std::string> tag_names_;
  std::vector<TagHistogram> tags_;
  int root_tag_ = 0;
};

}  // namespace xee::poshist

#endif  // XEE_POSHIST_POSITION_HISTOGRAM_H_
