#ifndef XEE_DATAGEN_TEXT_POOL_H_
#define XEE_DATAGEN_TEXT_POOL_H_

#include <string>

#include "common/rng.h"

namespace xee::datagen {

/// Produces short deterministic filler text for leaf elements: `words`
/// words drawn from a fixed lexicon.
std::string RandomWords(Rng& rng, int words);

/// A deterministic pseudo-name like "Corin Blake".
std::string RandomName(Rng& rng);

/// A deterministic 4-digit year in [1950, 2005].
std::string RandomYear(Rng& rng);

/// A deterministic small integer rendered as text.
std::string RandomNumber(Rng& rng, int lo, int hi);

}  // namespace xee::datagen

#endif  // XEE_DATAGEN_TEXT_POOL_H_
