#include <algorithm>

#include "common/rng.h"
#include "datagen/datagen.h"
#include "datagen/text_pool.h"

namespace xee::datagen {
namespace {

using xml::Document;
using xml::NodeId;

/// Attaches `text` to `node` only when `with_text`. The text argument is
/// always evaluated, so the caller's RNG stream — and thus the generated
/// tree shape — does not depend on the flag.
void MaybeText(xml::Document& doc, xml::NodeId node, bool with_text,
               const std::string& text) {
  if (with_text) doc.AppendText(node, text);
}

void AddLeaf(Document& doc, NodeId parent, const char* tag, Rng& rng,
             bool with_text, int words = 3) {
  NodeId n = doc.AppendChild(parent, tag);
  MaybeText(doc, n, with_text, RandomWords(rng, words));
}

void AddAuthors(Document& doc, NodeId rec, Rng& rng, bool with_text,
                uint64_t lo, uint64_t hi) {
  uint64_t n = rng.UniformInt(lo, hi);
  for (uint64_t i = 0; i < n; ++i) {
    NodeId a = doc.AppendChild(rec, "author");
    MaybeText(doc, a, with_text, RandomName(rng));
  }
}

void AddCommonTail(Document& doc, NodeId rec, Rng& rng, bool with_text) {
  if (rng.Bernoulli(0.7)) AddLeaf(doc, rec, "pages", rng, with_text, 1);
  if (rng.Bernoulli(0.6)) AddLeaf(doc, rec, "ee", rng, with_text, 1);
  if (rng.Bernoulli(0.5)) AddLeaf(doc, rec, "url", rng, with_text, 1);
  uint64_t cites = rng.Bernoulli(0.15) ? rng.UniformInt(1, 5) : 0;
  for (uint64_t i = 0; i < cites; ++i) {
    AddLeaf(doc, rec, "cite", rng, with_text, 1);
  }
  if (rng.Bernoulli(0.05)) AddLeaf(doc, rec, "note", rng, with_text, 4);
}

void GenArticle(Document& doc, NodeId root, Rng& rng, bool with_text) {
  NodeId rec = doc.AppendChild(root, "article");
  AddAuthors(doc, rec, rng, with_text, 1, 5);
  AddLeaf(doc, rec, "title", rng, with_text, 6);
  AddLeaf(doc, rec, "journal", rng, with_text, 3);
  if (rng.Bernoulli(0.8)) AddLeaf(doc, rec, "volume", rng, with_text, 1);
  if (rng.Bernoulli(0.6)) AddLeaf(doc, rec, "number", rng, with_text, 1);
  if (rng.Bernoulli(0.2)) AddLeaf(doc, rec, "month", rng, with_text, 1);
  NodeId y = doc.AppendChild(rec, "year");
  MaybeText(doc, y, with_text, RandomYear(rng));
  AddCommonTail(doc, rec, rng, with_text);
}

void GenInproceedings(Document& doc, NodeId root, Rng& rng, bool with_text) {
  NodeId rec = doc.AppendChild(root, "inproceedings");
  AddAuthors(doc, rec, rng, with_text, 1, 4);
  AddLeaf(doc, rec, "title", rng, with_text, 6);
  AddLeaf(doc, rec, "booktitle", rng, with_text, 3);
  NodeId y = doc.AppendChild(rec, "year");
  MaybeText(doc, y, with_text, RandomYear(rng));
  if (rng.Bernoulli(0.5)) AddLeaf(doc, rec, "crossref", rng, with_text, 1);
  AddCommonTail(doc, rec, rng, with_text);
}

void GenProceedings(Document& doc, NodeId root, Rng& rng, bool with_text) {
  NodeId rec = doc.AppendChild(root, "proceedings");
  uint64_t editors = rng.UniformInt(1, 3);
  for (uint64_t i = 0; i < editors; ++i) {
    NodeId e = doc.AppendChild(rec, "editor");
    MaybeText(doc, e, with_text, RandomName(rng));
  }
  AddLeaf(doc, rec, "title", rng, with_text, 6);
  AddLeaf(doc, rec, "booktitle", rng, with_text, 3);
  if (rng.Bernoulli(0.7)) AddLeaf(doc, rec, "series", rng, with_text, 2);
  if (rng.Bernoulli(0.7)) AddLeaf(doc, rec, "volume", rng, with_text, 1);
  AddLeaf(doc, rec, "publisher", rng, with_text, 2);
  if (rng.Bernoulli(0.8)) AddLeaf(doc, rec, "isbn", rng, with_text, 1);
  NodeId y = doc.AppendChild(rec, "year");
  MaybeText(doc, y, with_text, RandomYear(rng));
  AddCommonTail(doc, rec, rng, with_text);
}

void GenBook(Document& doc, NodeId root, Rng& rng, bool with_text) {
  NodeId rec = doc.AppendChild(root, "book");
  AddAuthors(doc, rec, rng, with_text, 1, 3);
  AddLeaf(doc, rec, "title", rng, with_text, 5);
  AddLeaf(doc, rec, "publisher", rng, with_text, 2);
  if (rng.Bernoulli(0.8)) AddLeaf(doc, rec, "isbn", rng, with_text, 1);
  NodeId y = doc.AppendChild(rec, "year");
  MaybeText(doc, y, with_text, RandomYear(rng));
  AddCommonTail(doc, rec, rng, with_text);
}

void GenIncollection(Document& doc, NodeId root, Rng& rng, bool with_text) {
  NodeId rec = doc.AppendChild(root, "incollection");
  AddAuthors(doc, rec, rng, with_text, 1, 4);
  AddLeaf(doc, rec, "title", rng, with_text, 6);
  AddLeaf(doc, rec, "booktitle", rng, with_text, 3);
  if (rng.Bernoulli(0.6)) AddLeaf(doc, rec, "chapter", rng, with_text, 1);
  NodeId y = doc.AppendChild(rec, "year");
  MaybeText(doc, y, with_text, RandomYear(rng));
  AddCommonTail(doc, rec, rng, with_text);
}

void GenThesis(Document& doc, NodeId root, Rng& rng, bool with_text,
               bool phd) {
  NodeId rec = doc.AppendChild(root, phd ? "phdthesis" : "mastersthesis");
  AddAuthors(doc, rec, rng, with_text, 1, 1);
  AddLeaf(doc, rec, "title", rng, with_text, 7);
  AddLeaf(doc, rec, "school", rng, with_text, 3);
  NodeId y = doc.AppendChild(rec, "year");
  MaybeText(doc, y, with_text, RandomYear(rng));
  if (rng.Bernoulli(0.3)) AddLeaf(doc, rec, "month", rng, with_text, 1);
}

void GenWww(Document& doc, NodeId root, Rng& rng, bool with_text) {
  NodeId rec = doc.AppendChild(root, "www");
  AddAuthors(doc, rec, rng, with_text, 1, 2);
  AddLeaf(doc, rec, "title", rng, with_text, 4);
  AddLeaf(doc, rec, "url", rng, with_text, 1);
}

}  // namespace

xml::Document GenerateDblp(const GenOptions& options) {
  Rng rng(options.seed ^ 0xD13A5EED);
  Document doc;
  NodeId root = doc.CreateRoot("dblp");
  int records = std::max(1, static_cast<int>(11000 * options.scale));
  // Record-type mix loosely follows real DBLP proportions.
  const std::vector<double> mix = {0.38, 0.42, 0.04, 0.02, 0.04,
                                   0.03, 0.02, 0.05};
  for (int i = 0; i < records; ++i) {
    switch (rng.WeightedIndex(mix)) {
      case 0:
        GenArticle(doc, root, rng, options.with_text);
        break;
      case 1:
        GenInproceedings(doc, root, rng, options.with_text);
        break;
      case 2:
        GenProceedings(doc, root, rng, options.with_text);
        break;
      case 3:
        GenBook(doc, root, rng, options.with_text);
        break;
      case 4:
        GenIncollection(doc, root, rng, options.with_text);
        break;
      case 5:
        GenThesis(doc, root, rng, options.with_text, /*phd=*/true);
        break;
      case 6:
        GenThesis(doc, root, rng, options.with_text, /*phd=*/false);
        break;
      default:
        GenWww(doc, root, rng, options.with_text);
        break;
    }
  }
  doc.Finalize();
  return doc;
}

}  // namespace xee::datagen
