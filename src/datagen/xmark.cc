#include <algorithm>

#include "common/rng.h"
#include "datagen/datagen.h"
#include "datagen/text_pool.h"

namespace xee::datagen {
namespace {

using xml::Document;
using xml::NodeId;

/// Attaches `text` to `node` only when `with_text`. The text argument is
/// always evaluated, so the caller's RNG stream — and thus the generated
/// tree shape — does not depend on the flag.
void MaybeText(xml::Document& doc, xml::NodeId node, bool with_text,
               const std::string& text) {
  if (with_text) doc.AppendText(node, text);
}

void AddLeaf(Document& doc, NodeId parent, const char* tag, Rng& rng,
             bool with_text, int words = 2) {
  NodeId n = doc.AppendChild(parent, tag);
  MaybeText(doc, n, with_text, RandomWords(rng, words));
}

/// description := text | parlist; parlist := listitem+ where each
/// listitem recurses. This is XMark's recursive structure; depth is
/// bounded like xmlgen's output.
void GenDescriptionContent(Document& doc, NodeId parent, Rng& rng,
                           bool with_text, int depth) {
  // xmlgen emits text ~70% of the time and rarely nests parlists more
  // than two levels deep.
  if (depth >= 2 || rng.Bernoulli(0.7)) {
    AddLeaf(doc, parent, "text", rng, with_text, 8);
    return;
  }
  NodeId parlist = doc.AppendChild(parent, "parlist");
  uint64_t items = rng.UniformInt(1, 3);
  for (uint64_t i = 0; i < items; ++i) {
    NodeId listitem = doc.AppendChild(parlist, "listitem");
    GenDescriptionContent(doc, listitem, rng, with_text, depth + 1);
  }
}

void GenDescription(Document& doc, NodeId parent, Rng& rng, bool with_text) {
  NodeId desc = doc.AppendChild(parent, "description");
  GenDescriptionContent(doc, desc, rng, with_text, 0);
}

void GenItem(Document& doc, NodeId region, Rng& rng, bool with_text) {
  NodeId item = doc.AppendChild(region, "item");
  AddLeaf(doc, item, "location", rng, with_text, 1);
  AddLeaf(doc, item, "quantity", rng, with_text, 1);
  AddLeaf(doc, item, "name", rng, with_text, 2);
  NodeId payment = doc.AppendChild(item, "payment");
  MaybeText(doc, payment, with_text, "Creditcard");
  GenDescription(doc, item, rng, with_text);
  if (rng.Bernoulli(0.8)) AddLeaf(doc, item, "shipping", rng, with_text, 3);
  uint64_t cats = rng.UniformInt(1, 3);
  for (uint64_t i = 0; i < cats; ++i) {
    doc.AppendChild(item, "incategory");
  }
  if (rng.Bernoulli(0.4)) {
    NodeId mailbox = doc.AppendChild(item, "mailbox");
    uint64_t mails = rng.UniformInt(1, 3);
    for (uint64_t i = 0; i < mails; ++i) {
      NodeId mail = doc.AppendChild(mailbox, "mail");
      AddLeaf(doc, mail, "from", rng, with_text, 2);
      AddLeaf(doc, mail, "to", rng, with_text, 2);
      AddLeaf(doc, mail, "date", rng, with_text, 1);
      AddLeaf(doc, mail, "text", rng, with_text, 8);
    }
  }
}

void GenPerson(Document& doc, NodeId people, Rng& rng, bool with_text) {
  NodeId person = doc.AppendChild(people, "person");
  NodeId name = doc.AppendChild(person, "name");
  MaybeText(doc, name, with_text, RandomName(rng));
  AddLeaf(doc, person, "emailaddress", rng, with_text, 1);
  if (rng.Bernoulli(0.4)) AddLeaf(doc, person, "phone", rng, with_text, 1);
  if (rng.Bernoulli(0.5)) {
    NodeId address = doc.AppendChild(person, "address");
    AddLeaf(doc, address, "street", rng, with_text, 2);
    AddLeaf(doc, address, "city", rng, with_text, 1);
    AddLeaf(doc, address, "country", rng, with_text, 1);
    AddLeaf(doc, address, "zipcode", rng, with_text, 1);
  }
  if (rng.Bernoulli(0.3)) AddLeaf(doc, person, "homepage", rng, with_text, 1);
  if (rng.Bernoulli(0.5)) {
    AddLeaf(doc, person, "creditcard", rng, with_text, 1);
  }
  if (rng.Bernoulli(0.7)) {
    NodeId profile = doc.AppendChild(person, "profile");
    uint64_t interests = rng.UniformInt(0, 3);
    for (uint64_t i = 0; i < interests; ++i) {
      doc.AppendChild(profile, "interest");
    }
    if (rng.Bernoulli(0.6)) {
      AddLeaf(doc, profile, "education", rng, with_text, 1);
    }
    if (rng.Bernoulli(0.5)) AddLeaf(doc, profile, "gender", rng, with_text, 1);
    AddLeaf(doc, profile, "business", rng, with_text, 1);
    if (rng.Bernoulli(0.6)) AddLeaf(doc, profile, "age", rng, with_text, 1);
  }
  if (rng.Bernoulli(0.4)) {
    NodeId watches = doc.AppendChild(person, "watches");
    uint64_t n = rng.UniformInt(1, 3);
    for (uint64_t i = 0; i < n; ++i) doc.AppendChild(watches, "watch");
  }
}

void GenOpenAuction(Document& doc, NodeId parent, Rng& rng, bool with_text) {
  NodeId auction = doc.AppendChild(parent, "open_auction");
  AddLeaf(doc, auction, "initial", rng, with_text, 1);
  if (rng.Bernoulli(0.4)) AddLeaf(doc, auction, "reserve", rng, with_text, 1);
  uint64_t bidders = rng.UniformInt(0, 4);
  for (uint64_t i = 0; i < bidders; ++i) {
    NodeId bidder = doc.AppendChild(auction, "bidder");
    AddLeaf(doc, bidder, "date", rng, with_text, 1);
    AddLeaf(doc, bidder, "time", rng, with_text, 1);
    doc.AppendChild(bidder, "personref");
    AddLeaf(doc, bidder, "increase", rng, with_text, 1);
  }
  AddLeaf(doc, auction, "current", rng, with_text, 1);
  if (rng.Bernoulli(0.3)) doc.AppendChild(auction, "privacy");
  doc.AppendChild(auction, "itemref");
  doc.AppendChild(auction, "seller");
  NodeId annotation = doc.AppendChild(auction, "annotation");
  AddLeaf(doc, annotation, "author", rng, with_text, 2);
  GenDescription(doc, annotation, rng, with_text);
  AddLeaf(doc, annotation, "happiness", rng, with_text, 1);
  AddLeaf(doc, auction, "quantity", rng, with_text, 1);
  AddLeaf(doc, auction, "type", rng, with_text, 1);
  NodeId interval = doc.AppendChild(auction, "interval");
  AddLeaf(doc, interval, "start", rng, with_text, 1);
  AddLeaf(doc, interval, "end", rng, with_text, 1);
}

void GenClosedAuction(Document& doc, NodeId parent, Rng& rng,
                      bool with_text) {
  NodeId auction = doc.AppendChild(parent, "closed_auction");
  doc.AppendChild(auction, "seller");
  doc.AppendChild(auction, "buyer");
  doc.AppendChild(auction, "itemref");
  AddLeaf(doc, auction, "price", rng, with_text, 1);
  AddLeaf(doc, auction, "date", rng, with_text, 1);
  AddLeaf(doc, auction, "quantity", rng, with_text, 1);
  AddLeaf(doc, auction, "type", rng, with_text, 1);
  if (rng.Bernoulli(0.6)) {
    NodeId annotation = doc.AppendChild(auction, "annotation");
    AddLeaf(doc, annotation, "author", rng, with_text, 2);
    GenDescription(doc, annotation, rng, with_text);
    AddLeaf(doc, annotation, "happiness", rng, with_text, 1);
  }
}

}  // namespace

xml::Document GenerateXMark(const GenOptions& options) {
  Rng rng(options.seed ^ 0x3A11C7E5);
  Document doc;
  NodeId site = doc.CreateRoot("site");

  const double s = options.scale;
  const int items_per_region = std::max(1, static_cast<int>(160 * s));
  const int categories = std::max(1, static_cast<int>(60 * s));
  const int persons = std::max(1, static_cast<int>(640 * s));
  const int open_auctions = std::max(1, static_cast<int>(300 * s));
  const int closed_auctions = std::max(1, static_cast<int>(240 * s));

  NodeId regions = doc.AppendChild(site, "regions");
  for (const char* region_name :
       {"africa", "asia", "australia", "europe", "namerica", "samerica"}) {
    NodeId region = doc.AppendChild(regions, region_name);
    // Regions are intentionally uneven (as in xmlgen): skew the count.
    int count = std::max(
        1, static_cast<int>(items_per_region *
                            (0.3 + 1.4 * rng.UniformDouble())));
    for (int i = 0; i < count; ++i) {
      GenItem(doc, region, rng, options.with_text);
    }
  }

  NodeId cats = doc.AppendChild(site, "categories");
  for (int i = 0; i < categories; ++i) {
    NodeId category = doc.AppendChild(cats, "category");
    AddLeaf(doc, category, "name", rng, options.with_text, 2);
    GenDescription(doc, category, rng, options.with_text);
  }

  NodeId catgraph = doc.AppendChild(site, "catgraph");
  for (int i = 0; i < categories; ++i) {
    doc.AppendChild(catgraph, "edge");
  }

  NodeId people = doc.AppendChild(site, "people");
  for (int i = 0; i < persons; ++i) {
    GenPerson(doc, people, rng, options.with_text);
  }

  NodeId open = doc.AppendChild(site, "open_auctions");
  for (int i = 0; i < open_auctions; ++i) {
    GenOpenAuction(doc, open, rng, options.with_text);
  }

  NodeId closed = doc.AppendChild(site, "closed_auctions");
  for (int i = 0; i < closed_auctions; ++i) {
    GenClosedAuction(doc, closed, rng, options.with_text);
  }

  doc.Finalize();
  return doc;
}

}  // namespace xee::datagen
