#ifndef XEE_DATAGEN_DATAGEN_H_
#define XEE_DATAGEN_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/tree.h"

namespace xee::datagen {

/// Options shared by all dataset generators.
struct GenOptions {
  /// PRNG seed; identical seeds produce identical documents.
  uint64_t seed = 42;

  /// Size multiplier. scale=1.0 targets the library's default document
  /// sizes (tens of thousands of elements, so the full experiment suite
  /// runs in minutes); the paper's originals correspond to roughly
  /// scale 4 (SSPlays), 16 (DBLP) and 6 (XMark).
  double scale = 1.0;

  /// Attach short text snippets to leaf elements (affects serialized
  /// size only; the estimator ignores text).
  bool with_text = true;
};

/// Generates a Shakespeare-plays-shaped document (substitute for the
/// paper's SSPlays dataset [1]): a PLAYS collection of PLAY elements with
/// the classic ACT/SCENE/SPEECH/SPEAKER/LINE structure. Regular and deep;
/// ~21 distinct tags and ~40 distinct root-to-leaf paths, matching the
/// characteristics in the paper's Tables 1 and 3. Returned finalized.
xml::Document GenerateSsPlays(const GenOptions& options);

/// Generates a DBLP-shaped bibliography (substitute for [2]): a flat and
/// very wide tree of publication records. ~31 distinct tags, ~87 distinct
/// root-to-leaf paths, extreme sibling fan-out under the root — the
/// property the paper uses to explain DBLP's order-information blow-up.
xml::Document GenerateDblp(const GenOptions& options);

/// Generates an XMark-shaped auction site document (substitute for [3]):
/// regions/items, people, open and closed auctions, with recursive
/// parlist/listitem description trees. ~74 distinct tags and several
/// hundred distinct root-to-leaf paths, yielding long path ids.
xml::Document GenerateXMark(const GenOptions& options);

/// Names of the built-in datasets: {"ssplays", "dblp", "xmark"}.
std::vector<std::string> DatasetNames();

/// Generates a dataset by name (case-sensitive); kNotFound for unknown
/// names.
Result<xml::Document> GenerateByName(const std::string& name,
                                     const GenOptions& options);

}  // namespace xee::datagen

#endif  // XEE_DATAGEN_DATAGEN_H_
