#include "datagen/text_pool.h"

#include "common/strings.h"

namespace xee::datagen {
namespace {

constexpr const char* kWords[] = {
    "the",    "quality", "of",      "mercy",  "is",      "not",
    "strained", "it",    "droppeth", "as",    "gentle",  "rain",
    "from",   "heaven",  "upon",    "place",  "beneath", "twice",
    "blest",  "him",     "that",    "gives",  "and",     "takes",
    "mightiest", "in",   "throned", "monarch", "better", "than",
    "crown",  "sceptre", "shows",   "force",  "temporal", "power",
};

constexpr const char* kFirstNames[] = {
    "Corin",  "Amira", "Jun",    "Lena",  "Tomas", "Priya",
    "Evander", "Sofia", "Niklas", "Wei",  "Aldo",  "Marta",
};

constexpr const char* kLastNames[] = {
    "Blake", "Okafor", "Tanaka", "Silva",  "Novak",  "Iyer",
    "Keller", "Moreau", "Lindh", "Zhang",  "Rossi",  "Haugen",
};

}  // namespace

std::string RandomWords(Rng& rng, int words) {
  std::string out;
  constexpr size_t kN = sizeof(kWords) / sizeof(kWords[0]);
  for (int i = 0; i < words; ++i) {
    if (i > 0) out += ' ';
    out += kWords[rng.Index(kN)];
  }
  return out;
}

std::string RandomName(Rng& rng) {
  constexpr size_t kF = sizeof(kFirstNames) / sizeof(kFirstNames[0]);
  constexpr size_t kL = sizeof(kLastNames) / sizeof(kLastNames[0]);
  std::string out = kFirstNames[rng.Index(kF)];
  out += ' ';
  out += kLastNames[rng.Index(kL)];
  return out;
}

std::string RandomYear(Rng& rng) {
  return StrFormat("%llu", (unsigned long long)rng.UniformInt(1950, 2005));
}

std::string RandomNumber(Rng& rng, int lo, int hi) {
  return StrFormat("%llu", (unsigned long long)rng.UniformInt(
                               static_cast<uint64_t>(lo),
                               static_cast<uint64_t>(hi)));
}

}  // namespace xee::datagen
