#include "datagen/datagen.h"

namespace xee::datagen {

std::vector<std::string> DatasetNames() { return {"ssplays", "dblp", "xmark"}; }

Result<xml::Document> GenerateByName(const std::string& name,
                                     const GenOptions& options) {
  if (name == "ssplays") return GenerateSsPlays(options);
  if (name == "dblp") return GenerateDblp(options);
  if (name == "xmark") return GenerateXMark(options);
  return Status(StatusCode::kNotFound, "unknown dataset: " + name);
}

}  // namespace xee::datagen
