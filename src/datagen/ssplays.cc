#include <algorithm>

#include "common/rng.h"
#include "datagen/datagen.h"
#include "datagen/text_pool.h"

namespace xee::datagen {
namespace {

using xml::Document;
using xml::NodeId;

/// Attaches `text` to `node` only when `with_text`. The text argument is
/// always evaluated, so the caller's RNG stream — and thus the generated
/// tree shape — does not depend on the flag.
void MaybeText(xml::Document& doc, xml::NodeId node, bool with_text,
               const std::string& text) {
  if (with_text) doc.AppendText(node, text);
}

/// One SPEECH: SPEAKER (occasionally two), LINEs, sometimes a STAGEDIR
/// interleaved at the end.
void GenSpeech(Document& doc, NodeId scene, Rng& rng, bool with_text) {
  NodeId speech = doc.AppendChild(scene, "SPEECH");
  NodeId speaker = doc.AppendChild(speech, "SPEAKER");
  MaybeText(doc, speaker, with_text, RandomName(rng));
  if (rng.Bernoulli(0.05)) {
    NodeId speaker2 = doc.AppendChild(speech, "SPEAKER");
    MaybeText(doc, speaker2, with_text, RandomName(rng));
  }
  uint64_t lines = rng.UniformInt(1, 8);
  for (uint64_t i = 0; i < lines; ++i) {
    NodeId line = doc.AppendChild(speech, "LINE");
    MaybeText(doc, line, with_text, RandomWords(rng, 6));
  }
  if (rng.Bernoulli(0.1)) {
    NodeId dir = doc.AppendChild(speech, "STAGEDIR");
    MaybeText(doc, dir, with_text, RandomWords(rng, 3));
  }
}

void GenScene(Document& doc, NodeId act, Rng& rng, bool with_text) {
  NodeId scene = doc.AppendChild(act, "SCENE");
  NodeId title = doc.AppendChild(scene, "TITLE");
  MaybeText(doc, title, with_text, RandomWords(rng, 4));
  if (rng.Bernoulli(0.8)) {
    NodeId dir = doc.AppendChild(scene, "STAGEDIR");
    MaybeText(doc, dir, with_text, RandomWords(rng, 5));
  }
  uint64_t speeches = rng.UniformInt(15, 35);
  for (uint64_t i = 0; i < speeches; ++i) {
    GenSpeech(doc, scene, rng, with_text);
    // Occasional stage direction between speeches: exercises sibling
    // order between SPEECH and STAGEDIR.
    if (rng.Bernoulli(0.08)) {
      NodeId dir = doc.AppendChild(scene, "STAGEDIR");
      MaybeText(doc, dir, with_text, RandomWords(rng, 4));
    }
  }
}

void GenPlay(Document& doc, NodeId root, Rng& rng, bool with_text) {
  NodeId play = doc.AppendChild(root, "PLAY");
  NodeId title = doc.AppendChild(play, "TITLE");
  MaybeText(doc, title, with_text, RandomWords(rng, 3));

  // Front matter.
  NodeId fm = doc.AppendChild(play, "FM");
  uint64_t ps = rng.UniformInt(2, 4);
  for (uint64_t i = 0; i < ps; ++i) {
    NodeId p = doc.AppendChild(fm, "P");
    MaybeText(doc, p, with_text, RandomWords(rng, 8));
  }

  // Dramatis personae.
  NodeId personae = doc.AppendChild(play, "PERSONAE");
  NodeId ptitle = doc.AppendChild(personae, "TITLE");
  MaybeText(doc, ptitle, with_text, "Dramatis Personae");
  uint64_t personas = rng.UniformInt(8, 20);
  for (uint64_t i = 0; i < personas; ++i) {
    NodeId persona = doc.AppendChild(personae, "PERSONA");
    MaybeText(doc, persona, with_text, RandomName(rng));
  }
  uint64_t groups = rng.UniformInt(0, 3);
  for (uint64_t g = 0; g < groups; ++g) {
    NodeId group = doc.AppendChild(personae, "PGROUP");
    uint64_t members = rng.UniformInt(2, 4);
    for (uint64_t m = 0; m < members; ++m) {
      NodeId persona = doc.AppendChild(group, "PERSONA");
      MaybeText(doc, persona, with_text, RandomName(rng));
    }
    NodeId desc = doc.AppendChild(group, "GRPDESCR");
    MaybeText(doc, desc, with_text, RandomWords(rng, 4));
  }

  NodeId scndescr = doc.AppendChild(play, "SCNDESCR");
  MaybeText(doc, scndescr, with_text, RandomWords(rng, 6));
  NodeId subt = doc.AppendChild(play, "PLAYSUBT");
  MaybeText(doc, subt, with_text, RandomWords(rng, 3));

  // Optional induction (gives a distinct path family).
  if (rng.Bernoulli(0.15)) {
    NodeId induct = doc.AppendChild(play, "INDUCT");
    NodeId ititle = doc.AppendChild(induct, "TITLE");
    MaybeText(doc, ititle, with_text, "Induction");
    GenSpeech(doc, induct, rng, with_text);
    GenSpeech(doc, induct, rng, with_text);
  }

  for (int a = 0; a < 5; ++a) {
    NodeId act = doc.AppendChild(play, "ACT");
    NodeId atitle = doc.AppendChild(act, "TITLE");
    MaybeText(doc, atitle, with_text, RandomWords(rng, 2));
    if (a == 0 && rng.Bernoulli(0.2)) {
      NodeId prologue = doc.AppendChild(act, "PROLOGUE");
      NodeId prtitle = doc.AppendChild(prologue, "TITLE");
      MaybeText(doc, prtitle, with_text, "Prologue");
      GenSpeech(doc, prologue, rng, with_text);
    }
    uint64_t scenes = rng.UniformInt(3, 7);
    for (uint64_t s = 0; s < scenes; ++s) GenScene(doc, act, rng, with_text);
    if (a == 4 && rng.Bernoulli(0.2)) {
      NodeId epilogue = doc.AppendChild(act, "EPILOGUE");
      NodeId eptitle = doc.AppendChild(epilogue, "TITLE");
      MaybeText(doc, eptitle, with_text, "Epilogue");
      GenSpeech(doc, epilogue, rng, with_text);
    }
  }
}

}  // namespace

xml::Document GenerateSsPlays(const GenOptions& options) {
  Rng rng(options.seed ^ 0x55AA55AA);
  Document doc;
  NodeId root = doc.CreateRoot("PLAYS");
  int plays = std::max(1, static_cast<int>(13 * options.scale));
  for (int i = 0; i < plays; ++i) {
    GenPlay(doc, root, rng, options.with_text);
  }
  doc.Finalize();
  return doc;
}

}  // namespace xee::datagen
