#ifndef XEE_ESTIMATOR_SYNOPSIS_H_
#define XEE_ESTIMATOR_SYNOPSIS_H_

#include <memory>
#include <string_view>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "encoding/encoding_table.h"
#include "encoding/labeling.h"
#include "encoding/reachability.h"
#include "histogram/o_histogram.h"
#include "histogram/p_histogram.h"
#include "pidtree/collapsed_pid_tree.h"
#include "stats/value_stats.h"
#include "xml/tree.h"

namespace xee::estimator {

/// Knobs for synopsis construction.
struct SynopsisOptions {
  /// Intra-bucket variance threshold of the p-histograms; 0 stores exact
  /// frequencies (paper Section 6).
  double p_variance = 0;
  /// Intra-bucket variance threshold of the o-histograms; 0 is exact.
  double o_variance = 0;
  /// Collect order statistics and build o-histograms. Turn off when only
  /// non-order queries will be estimated (halves construction cost).
  bool build_order = true;

  /// Collect per-tag text-value statistics enabling value predicates
  /// `[.="v"]` (extension, DESIGN.md §5b). Costs one extra document scan
  /// and a small top-k table per tag.
  bool build_values = true;
  /// Exact counts are kept for this many most-frequent values per tag.
  size_t value_top_k = 32;

  /// Ablation A1 (DESIGN.md): replace the variance-controlled buckets of
  /// each p-histogram with frequency-sorted equi-count buckets of the
  /// SAME bucket count (hence the same memory), to isolate the value of
  /// the paper's variance control.
  bool equi_count_p_buckets = false;
};

/// Knobs for Synopsis::Deserialize.
struct DeserializeOptions {
  /// When true, a corrupt or truncated o-histogram section degrades the
  /// blob to an order-free synopsis (has_order() == false) instead of
  /// failing the whole load; the loss is reported via DeserializeReport.
  /// Sections before the o-histograms (tags, encoding table, pids,
  /// p-histograms) are still load-bearing and never salvaged.
  bool salvage_order_corruption = false;
};

/// What Deserialize had to do to accept a blob.
struct DeserializeReport {
  /// The o-histogram section was corrupt and dropped under
  /// DeserializeOptions::salvage_order_corruption.
  bool order_dropped = false;
  /// The parse error that triggered the drop (empty otherwise).
  std::string order_error;
};

/// Wall-clock seconds spent in each construction phase, for the paper's
/// Tables 4 and 5.
struct BuildProfile {
  double collect_path_s = 0;   ///< labeling + pathId-frequency collection
  double p_histogram_s = 0;    ///< p-histogram construction
  double collect_order_s = 0;  ///< path-order table collection
  double o_histogram_s = 0;    ///< o-histogram construction
};

/// Everything the estimator needs at query time, built once per document:
/// encoding table, path-id binary tree, and per-tag p-/o-histograms. The
/// source document is not referenced after construction.
class Synopsis {
 public:
  /// Builds the synopsis over `doc` (must be finalized). `profile`, when
  /// non-null, receives per-phase timings.
  static Synopsis Build(const xml::Document& doc,
                        const SynopsisOptions& options,
                        BuildProfile* profile = nullptr);

  /// Serializes the synopsis to a self-contained binary blob that
  /// Deserialize() reconstructs without the source document — the
  /// "build once at load time, ship to the optimizer" workflow.
  std::string Serialize() const;

  /// Reconstructs a synopsis from Serialize() output. Fails with
  /// kParseError on truncated/corrupted data and kUnsupported on a
  /// format-version mismatch. With salvage_order_corruption set, a blob
  /// whose damage is confined to the o-histogram section loads as an
  /// order-free synopsis; `report` (optional) records the downgrade.
  static Result<Synopsis> Deserialize(std::string_view data,
                                      const DeserializeOptions& options = {},
                                      DeserializeReport* report = nullptr);

  /// Clones `base` sharing its immutable path structures (encoding
  /// table, pid tree, decoded pid cache) and replacing the per-tag
  /// histograms and value statistics — the shape of an incremental
  /// maintenance publish (delta/). Cost is O(histograms), never
  /// O(document). `o_histos` may be empty for an order-free clone;
  /// otherwise both histogram vectors must cover every tag of `base`.
  static Synopsis PatchedClone(const Synopsis& base,
                               std::vector<histogram::PHistogram> p_histos,
                               std::vector<histogram::OHistogram> o_histos,
                               std::optional<stats::ValueStats> value_stats);

  /// Alphabetic rank of every tag among `names` — the o-histogram row
  /// order of Algorithm 2. Shared by Build, Deserialize, and the
  /// incremental o-histogram rebuilds in delta/.
  static std::vector<uint32_t> AlphabeticRanks(
      const std::vector<std::string>& names);

  // --- Tag metadata ----------------------------------------------------

  size_t TagCount() const { return tag_names_.size(); }
  const std::string& TagName(xml::TagId t) const {
    XEE_CHECK(t < tag_names_.size());
    return tag_names_[t];
  }
  std::optional<xml::TagId> FindTag(const std::string& name) const;
  xml::TagId root_tag() const { return root_tag_; }
  encoding::PidRef root_pid() const { return root_pid_; }

  // --- Path structures --------------------------------------------------

  const encoding::EncodingTable& table() const { return *table_; }
  /// The stored pid-integer -> bit-sequence index. The synopsis uses the
  /// path-compressed CollapsedPidTree (DESIGN.md extension); the paper's
  /// per-bit structure lives in pidtree::PathIdBinaryTree and is compared
  /// in bench_table3.
  const pidtree::CollapsedPidTree& pid_tree() const { return *pid_tree_; }
  /// Decoded bit sequence of a pid ref (cached; identical to
  /// pid_tree().Lookup(ref)).
  const PathIdBits& PidBits(encoding::PidRef ref) const {
    XEE_CHECK(ref >= 1 && ref <= pid_bits_->size());
    return (*pid_bits_)[ref - 1];
  }
  size_t DistinctPidCount() const { return pid_bits_->size(); }
  /// The full lex-sorted decoded pid table (1-based refs index it at
  /// ref - 1). Shared with patched clones.
  const std::vector<PathIdBits>& AllPidBits() const { return *pid_bits_; }
  /// Tag-pair reachability closure over the encoding table, for the
  /// static analyzer (DESIGN.md §15). Derived from table_ at Build /
  /// Deserialize time and shared into patched clones like the other
  /// path structures (deltas never extend the path set).
  const encoding::TagReachability& reach() const { return *reach_; }

  // --- Histograms -------------------------------------------------------

  const histogram::PHistogram& PHisto(xml::TagId t) const {
    XEE_CHECK(t < p_histos_.size());
    return p_histos_[t];
  }
  const histogram::OHistogram& OHisto(xml::TagId t) const {
    XEE_CHECK(t < o_histos_.size());
    return o_histos_[t];
  }
  bool has_order() const { return !o_histos_.empty(); }

  /// Value statistics; nullptr when built with build_values = false.
  const stats::ValueStats* value_stats() const {
    return value_stats_.has_value() ? &*value_stats_ : nullptr;
  }

  // --- Size accounting (paper Tables 3-5, Figures 9-13 x-axes) ----------

  size_t EncodingTableBytes() const { return table_->SizeBytes(); }
  size_t PidTreeBytes() const { return pid_tree_->SizeBytes(); }
  size_t PHistogramBytes() const;
  size_t OHistogramBytes() const;
  /// Total memory of the non-order path summary: encoding table +
  /// path-id binary tree + p-histograms (the x-axis of Figure 11).
  size_t PathSummaryBytes() const {
    return EncodingTableBytes() + PidTreeBytes() + PHistogramBytes();
  }

 private:
  Synopsis() = default;

  std::vector<std::string> tag_names_;
  std::unordered_map<std::string, xml::TagId> tag_ids_;
  xml::TagId root_tag_ = 0;
  encoding::PidRef root_pid_ = 0;

  // The path structures are immutable after construction and shared
  // (not copied) into PatchedClone results, so an incremental publish
  // costs O(histograms) while concurrent readers of the previous epoch
  // keep their references alive.
  std::shared_ptr<const encoding::EncodingTable> table_;
  std::shared_ptr<const pidtree::CollapsedPidTree> pid_tree_;
  std::shared_ptr<const std::vector<PathIdBits>> pid_bits_;
  std::shared_ptr<const encoding::TagReachability> reach_;

  /// Derives reach_ from table_ and tag_names_; call after both are set.
  void BuildReach();

  std::vector<histogram::PHistogram> p_histos_;  // by TagId
  std::vector<histogram::OHistogram> o_histos_;  // by TagId; empty if no order
  std::optional<stats::ValueStats> value_stats_;
};

}  // namespace xee::estimator

#endif  // XEE_ESTIMATOR_SYNOPSIS_H_
