#include "estimator/synopsis.h"

#include <algorithm>
#include <chrono>

#include "stats/path_order.h"
#include "stats/pathid_frequency.h"

namespace xee::estimator {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

std::vector<uint32_t> Synopsis::AlphabeticRanks(
    const std::vector<std::string>& names) {
  std::vector<uint32_t> order(names.size());
  for (uint32_t i = 0; i < names.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&names](uint32_t a, uint32_t b) {
    return names[a] < names[b];
  });
  std::vector<uint32_t> rank(names.size());
  for (uint32_t r = 0; r < order.size(); ++r) rank[order[r]] = r;
  return rank;
}

Synopsis Synopsis::Build(const xml::Document& doc,
                         const SynopsisOptions& options,
                         BuildProfile* profile) {
  XEE_CHECK(!doc.empty());
  Synopsis s;

  for (size_t t = 0; t < doc.TagCount(); ++t) {
    s.tag_names_.push_back(doc.TagNameOf(static_cast<xml::TagId>(t)));
    s.tag_ids_.emplace(s.tag_names_.back(), static_cast<xml::TagId>(t));
  }
  s.root_tag_ = doc.Tag(doc.root());

  // Phase 1: path collection (labeling + pathId-frequency table).
  auto t0 = std::chrono::steady_clock::now();
  encoding::Labeling labeling = encoding::LabelDocument(doc);
  stats::PathIdFrequencyTable pf = stats::PathIdFrequencyTable::Build(
      doc, labeling);
  s.root_pid_ = labeling.node_pid_refs[doc.root()];
  if (profile != nullptr) profile->collect_path_s = SecondsSince(t0);

  // Phase 2: p-histograms.
  t0 = std::chrono::steady_clock::now();
  s.p_histos_.reserve(doc.TagCount());
  for (size_t t = 0; t < doc.TagCount(); ++t) {
    histogram::PHistogram h = histogram::PHistogram::Build(
        pf.ForTag(static_cast<xml::TagId>(t)), options.p_variance);
    if (options.equi_count_p_buckets) {
      // Memory-matched ablation: same bucket count, equi-count split.
      h = histogram::PHistogram::BuildEquiCount(
          pf.ForTag(static_cast<xml::TagId>(t)), h.BucketCount());
    }
    s.p_histos_.push_back(std::move(h));
  }
  if (profile != nullptr) profile->p_histogram_s = SecondsSince(t0);

  if (options.build_order) {
    // Phase 3: path-order tables.
    t0 = std::chrono::steady_clock::now();
    stats::OrderStats order = stats::OrderStats::Build(doc, labeling);
    if (profile != nullptr) profile->collect_order_s = SecondsSince(t0);

    // Phase 4: o-histograms.
    t0 = std::chrono::steady_clock::now();
    std::vector<uint32_t> ranks = AlphabeticRanks(s.tag_names_);
    s.o_histos_.reserve(doc.TagCount());
    for (size_t t = 0; t < doc.TagCount(); ++t) {
      s.o_histos_.push_back(histogram::OHistogram::Build(
          order.ForTag(static_cast<xml::TagId>(t)), ranks,
          s.p_histos_[t].PidsInOrder(), options.o_variance));
    }
    if (profile != nullptr) profile->o_histogram_s = SecondsSince(t0);
  }

  if (options.build_values) {
    s.value_stats_ = stats::ValueStats::Build(doc, options.value_top_k);
  }

  // Path-id binary tree plus the decoded cache the join works from.
  s.pid_tree_ = std::make_shared<const pidtree::CollapsedPidTree>(labeling);
  s.pid_bits_ = std::make_shared<const std::vector<PathIdBits>>(
      std::move(labeling.distinct_pids));
  s.table_ = std::make_shared<const encoding::EncodingTable>(
      std::move(labeling.table));
  s.BuildReach();
  return s;
}

Synopsis Synopsis::PatchedClone(const Synopsis& base,
                                std::vector<histogram::PHistogram> p_histos,
                                std::vector<histogram::OHistogram> o_histos,
                                std::optional<stats::ValueStats> value_stats) {
  XEE_CHECK(p_histos.size() == base.tag_names_.size());
  XEE_CHECK(o_histos.empty() || o_histos.size() == base.tag_names_.size());
  Synopsis s;
  s.tag_names_ = base.tag_names_;
  s.tag_ids_ = base.tag_ids_;
  s.root_tag_ = base.root_tag_;
  s.root_pid_ = base.root_pid_;
  s.table_ = base.table_;
  s.pid_tree_ = base.pid_tree_;
  s.pid_bits_ = base.pid_bits_;
  s.reach_ = base.reach_;
  s.p_histos_ = std::move(p_histos);
  s.o_histos_ = std::move(o_histos);
  s.value_stats_ = std::move(value_stats);
  return s;
}

void Synopsis::BuildReach() {
  reach_ = std::make_shared<const encoding::TagReachability>(
      encoding::TagReachability::Build(*table_, tag_names_.size()));
}

std::optional<xml::TagId> Synopsis::FindTag(const std::string& name) const {
  auto it = tag_ids_.find(name);
  if (it == tag_ids_.end()) return std::nullopt;
  return it->second;
}

size_t Synopsis::PHistogramBytes() const {
  size_t n = 0;
  for (const auto& h : p_histos_) n += h.SizeBytes();
  return n;
}

size_t Synopsis::OHistogramBytes() const {
  size_t n = 0;
  for (const auto& h : o_histos_) n += h.SizeBytes();
  return n;
}

}  // namespace xee::estimator
