#include <algorithm>
#include <string_view>

#include "common/serialize.h"
#include "estimator/synopsis.h"

namespace xee::estimator {
namespace {

constexpr uint32_t kMagic = 0x58454531;  // "XEE1"
constexpr uint32_t kVersion = 1;

Status Corrupt(const char* what) {
  return Status(StatusCode::kParseError,
                std::string("corrupt synopsis: ") + what);
}

}  // namespace

std::string Synopsis::Serialize() const {
  BinaryWriter w;
  w.PutU32(kMagic);
  w.PutU32(kVersion);

  // Tags.
  w.PutU32(static_cast<uint32_t>(tag_names_.size()));
  for (const std::string& name : tag_names_) w.PutString(name);
  w.PutU32(root_tag_);
  w.PutU32(root_pid_);

  // Encoding table: paths in encoding order.
  w.PutU32(static_cast<uint32_t>(table_->PathCount()));
  for (uint32_t enc = 1; enc <= table_->PathCount(); ++enc) {
    const encoding::TagPath& p = table_->Path(enc);
    w.PutU32(static_cast<uint32_t>(p.size()));
    for (xml::TagId t : p) w.PutU32(t);
  }

  // Distinct pids as set-bit lists (sparse; already lex-sorted).
  w.PutU32(static_cast<uint32_t>(pid_bits_->size()));
  for (const PathIdBits& bits : *pid_bits_) {
    std::vector<uint32_t> set = bits.SetBits();
    w.PutU32(static_cast<uint32_t>(set.size()));
    for (uint32_t b : set) w.PutU32(b);
  }

  // P-histograms per tag.
  for (const auto& h : p_histos_) {
    w.PutU32(static_cast<uint32_t>(h.buckets().size()));
    for (const auto& b : h.buckets()) {
      w.PutDouble(b.avg_freq);
      w.PutU32(static_cast<uint32_t>(b.pids.size()));
      for (encoding::PidRef pid : b.pids) w.PutU32(pid);
    }
  }

  // O-histograms (optional).
  w.PutU8(o_histos_.empty() ? 0 : 1);
  if (!o_histos_.empty()) {
    for (const auto& h : o_histos_) {
      w.PutU32(static_cast<uint32_t>(h.buckets().size()));
      for (const auto& b : h.buckets()) {
        w.PutU32(b.x1);
        w.PutU32(b.y1);
        w.PutU32(b.x2);
        w.PutU32(b.y2);
        w.PutDouble(b.avg_freq);
      }
    }
  }
  // Value statistics (optional section).
  w.PutU8(value_stats_.has_value() ? 1 : 0);
  if (value_stats_.has_value()) {
    for (size_t t = 0; t < tag_names_.size(); ++t) {
      const auto& tv = value_stats_->ForTag(static_cast<xml::TagId>(t));
      w.PutU32(static_cast<uint32_t>(tv.top.size()));
      for (const auto& [value, count] : tv.top) {
        w.PutString(value);
        w.PutU64(count);
      }
      w.PutU64(tv.other_count);
      w.PutU64(tv.other_distinct);
      w.PutU64(tv.total_elements);
    }
  }
  return std::move(w).data();
}

Result<Synopsis> Synopsis::Deserialize(std::string_view data,
                                       const DeserializeOptions& options,
                                       DeserializeReport* report) {
  if (report != nullptr) *report = DeserializeReport{};
  BinaryReader r(data);
  uint32_t magic = 0, version = 0;
  Status s = r.GetU32(&magic);
  if (!s.ok()) return s;
  if (magic != kMagic) return Corrupt("bad magic");
  s = r.GetU32(&version);
  if (!s.ok()) return s;
  if (version != kVersion) {
    return Status(StatusCode::kUnsupported, "unknown synopsis version");
  }

  Synopsis out;
  // The shared immutable path structures are assembled in locals and
  // wrapped on every successful exit path.
  encoding::EncodingTable table;
  std::vector<PathIdBits> pid_bits;

  uint32_t tag_count = 0;
  s = r.GetU32(&tag_count);
  if (!s.ok()) return s;
  if (tag_count == 0 || tag_count > 1u << 20) return Corrupt("tag count");
  for (uint32_t t = 0; t < tag_count; ++t) {
    std::string name;
    s = r.GetString(&name);
    if (!s.ok()) return s;
    out.tag_names_.push_back(name);
    if (!out.tag_ids_.emplace(std::move(name), t).second) {
      // Two tag ids sharing a name would make FindTag ambiguous.
      return Corrupt("duplicate tag name");
    }
  }
  s = r.GetU32(&out.root_tag_);
  if (!s.ok()) return s;
  s = r.GetU32(&out.root_pid_);
  if (!s.ok()) return s;
  if (out.root_tag_ >= tag_count) return Corrupt("root tag");

  uint32_t path_count = 0;
  s = r.GetU32(&path_count);
  if (!s.ok()) return s;
  if (path_count == 0 || path_count > 1u << 24) return Corrupt("path count");
  for (uint32_t i = 0; i < path_count; ++i) {
    uint32_t len = 0;
    s = r.GetU32(&len);
    if (!s.ok()) return s;
    if (len == 0 || len > 1u << 16) return Corrupt("path length");
    encoding::TagPath p;
    for (uint32_t j = 0; j < len; ++j) {
      uint32_t tag = 0;
      s = r.GetU32(&tag);
      if (!s.ok()) return s;
      if (tag >= tag_count) return Corrupt("path tag");
      p.push_back(tag);
    }
    if (table.GetOrAssign(p) != i + 1) return Corrupt("duplicate path");
  }

  uint32_t pid_count = 0;
  s = r.GetU32(&pid_count);
  if (!s.ok()) return s;
  if (pid_count == 0 || pid_count > 1u << 26) return Corrupt("pid count");
  for (uint32_t i = 0; i < pid_count; ++i) {
    uint32_t bits = 0;
    s = r.GetU32(&bits);
    if (!s.ok()) return s;
    if (bits == 0 || bits > path_count) return Corrupt("pid popcount");
    PathIdBits pid(path_count);
    // Serialize() emits SetBits() in increasing order; insisting on that
    // canonical encoding here keeps Serialize(Deserialize(blob)) == blob
    // for every accepted blob (a duplicate position would also silently
    // shrink the popcount).
    uint32_t prev_pos = 0;
    for (uint32_t j = 0; j < bits; ++j) {
      uint32_t pos = 0;
      s = r.GetU32(&pos);
      if (!s.ok()) return s;
      if (pos < 1 || pos > path_count) return Corrupt("pid bit");
      if (pos <= prev_pos) return Corrupt("pid bits out of order");
      prev_pos = pos;
      pid.Set(pos);
    }
    if (i > 0 && !PathIdBits::LexLess(pid_bits.back(), pid)) {
      return Corrupt("pid order");
    }
    pid_bits.push_back(std::move(pid));
  }
  if (out.root_pid_ < 1 || out.root_pid_ > pid_count) {
    return Corrupt("root pid");
  }

  for (uint32_t t = 0; t < tag_count; ++t) {
    uint32_t buckets = 0;
    s = r.GetU32(&buckets);
    if (!s.ok()) return s;
    if (buckets > pid_count) return Corrupt("p-histogram bucket count");
    std::vector<histogram::PHistogram::Bucket> bs;
    // The buckets of one tag must partition the tag's pids: a pid listed
    // twice (in one bucket or across two) would be double-counted in the
    // pid column order and shadowed in PHistogram::Frequency.
    std::vector<bool> seen_pid(pid_count + 1, false);
    for (uint32_t b = 0; b < buckets; ++b) {
      histogram::PHistogram::Bucket bucket;
      s = r.GetDouble(&bucket.avg_freq);
      if (!s.ok()) return s;
      uint32_t pids = 0;
      s = r.GetU32(&pids);
      if (!s.ok()) return s;
      if (pids == 0 || pids > pid_count) return Corrupt("bucket pid count");
      for (uint32_t p = 0; p < pids; ++p) {
        uint32_t pid = 0;
        s = r.GetU32(&pid);
        if (!s.ok()) return s;
        if (pid < 1 || pid > pid_count) return Corrupt("bucket pid");
        if (seen_pid[pid]) return Corrupt("pid in more than one bucket");
        seen_pid[pid] = true;
        bucket.pids.push_back(pid);
      }
      bs.push_back(std::move(bucket));
    }
    out.p_histos_.push_back(histogram::PHistogram::FromBuckets(std::move(bs)));
  }

  // O-histogram section. Everything before this point is load-bearing
  // (an estimator cannot run without the encoding table, pids and
  // p-histograms), but order statistics only sharpen order-axis queries
  // — so damage confined to this section can, on request, degrade the
  // synopsis to order-free instead of failing the load.
  auto parse_order_section = [&]() -> Status {
    uint8_t has_order = 0;
    Status os = r.GetU8(&has_order);
    if (!os.ok()) return os;
    // Section flags re-serialize as exactly 0 or 1; other values would
    // round-trip to a different byte.
    if (has_order > 1) return Corrupt("order flag");
    if (has_order == 0) return Status::Ok();
    // Alphabetic tag ranks are derivable from the tag names.
    std::vector<uint32_t> ranks = AlphabeticRanks(out.tag_names_);

    for (uint32_t t = 0; t < tag_count; ++t) {
      uint32_t buckets = 0;
      os = r.GetU32(&buckets);
      if (!os.ok()) return os;
      if (buckets > 1u << 26) return Corrupt("o-histogram bucket count");
      std::vector<histogram::OHistogram::Bucket> bs;
      for (uint32_t b = 0; b < buckets; ++b) {
        histogram::OHistogram::Bucket bucket;
        os = r.GetU32(&bucket.x1);
        if (!os.ok()) return os;
        os = r.GetU32(&bucket.y1);
        if (!os.ok()) return os;
        os = r.GetU32(&bucket.x2);
        if (!os.ok()) return os;
        os = r.GetU32(&bucket.y2);
        if (!os.ok()) return os;
        os = r.GetDouble(&bucket.avg_freq);
        if (!os.ok()) return os;
        if (bucket.x1 > bucket.x2 || bucket.y1 > bucket.y2 ||
            bucket.y2 >= 2 * tag_count) {
          return Corrupt("o-histogram bucket bounds");
        }
        bs.push_back(bucket);
      }
      out.o_histos_.push_back(histogram::OHistogram::FromBuckets(
          std::move(bs), ranks, out.p_histos_[t].PidsInOrder()));
    }
    return Status::Ok();
  };
  s = parse_order_section();
  if (!s.ok()) {
    if (!options.salvage_order_corruption) return s;
    // Degrade: drop whatever order state was built. The stream offset is
    // unreliable past the damage, so the values section (which follows)
    // is forfeit too, as is the trailing-bytes check.
    out.o_histos_.clear();
    if (report != nullptr) {
      report->order_dropped = true;
      report->order_error = s.message();
    }
    out.table_ = std::make_shared<const encoding::EncodingTable>(
        std::move(table));
    out.pid_bits_ = std::make_shared<const std::vector<PathIdBits>>(
        std::move(pid_bits));
    out.pid_tree_ =
        std::make_shared<const pidtree::CollapsedPidTree>(*out.pid_bits_);
    out.BuildReach();
    return out;
  }
  uint8_t has_values = 0;
  s = r.GetU8(&has_values);
  if (!s.ok()) return s;
  if (has_values > 1) return Corrupt("values flag");
  if (has_values != 0) {
    std::vector<stats::ValueStats::TagValues> tag_values(tag_count);
    for (uint32_t t = 0; t < tag_count; ++t) {
      uint32_t top = 0;
      s = r.GetU32(&top);
      if (!s.ok()) return s;
      if (top > 1u << 20) return Corrupt("value top count");
      for (uint32_t i = 0; i < top; ++i) {
        std::string value;
        s = r.GetString(&value);
        if (!s.ok()) return s;
        uint64_t count = 0;
        s = r.GetU64(&count);
        if (!s.ok()) return s;
        tag_values[t].top.emplace_back(std::move(value), count);
      }
      s = r.GetU64(&tag_values[t].other_count);
      if (!s.ok()) return s;
      s = r.GetU64(&tag_values[t].other_distinct);
      if (!s.ok()) return s;
      s = r.GetU64(&tag_values[t].total_elements);
      if (!s.ok()) return s;
    }
    out.value_stats_ = stats::ValueStats::FromTagValues(std::move(tag_values));
  }
  if (!r.AtEnd()) return Corrupt("trailing bytes");

  // Rebuild the (deterministic) path-id binary tree from the pids.
  out.table_ = std::make_shared<const encoding::EncodingTable>(
      std::move(table));
  out.pid_bits_ = std::make_shared<const std::vector<PathIdBits>>(
      std::move(pid_bits));
  out.pid_tree_ =
      std::make_shared<const pidtree::CollapsedPidTree>(*out.pid_bits_);
  out.BuildReach();
  return out;
}

}  // namespace xee::estimator
