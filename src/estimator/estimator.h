#ifndef XEE_ESTIMATOR_ESTIMATOR_H_
#define XEE_ESTIMATOR_ESTIMATOR_H_

#include <atomic>
#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "estimator/synopsis.h"
#include "obs/trace.h"
#include "xpath/query.h"

namespace xee::estimator {

/// Per-call resource limits for estimation entry points. Default is
/// unlimited — the historical behavior.
struct EstimateLimits {
  /// Checked cooperatively at step and join boundaries; once passed,
  /// the call abandons its work and returns kDeadlineExceeded. An
  /// already-expired deadline is rejected before any join work runs.
  Deadline deadline;
  /// Optional trace sink: when set, the call's containment tests, join
  /// probes, and fixpoint rounds are added to it on return (the service
  /// layer threads its per-request span here).
  obs::TraceSpans* trace = nullptr;
};

/// Selectivity estimator for XPath expressions with and without order
/// axes (paper Sections 4 and 5), driven entirely by a Synopsis.
///
/// Supported queries: trees of child/descendant name-test steps (with
/// "*" wildcards) and branches, plus order constraints (sibling or
/// scoped document order). One order constraint is the paper's query
/// class (Eqs. 3-5); several constraints compose their correction
/// ratios under an independence assumption (extension, DESIGN.md §5b).
/// Queries mentioning tags absent from the document estimate to 0;
/// wildcards on order-constraint endpoints return kUnsupported.
///
/// Thread-safety: all estimation entry points (Estimate, Compile,
/// EstimateCompiled) are const and reentrant — one Estimator over an
/// immutable Synopsis may be shared by any number of threads. The only
/// mutated member is the relaxed-atomic containment-test counter.
/// set_join_to_fixpoint() is configuration and must happen-before
/// concurrent estimation.
class Estimator {
 public:
  /// One surviving candidate: the element tag it stands for (equal to
  /// the query node's tag except under "*" name tests, where one list
  /// mixes tags), its path id, and its summarized frequency.
  struct Cand {
    xml::TagId tag;
    encoding::PidRef pid;
    double freq;
  };
  using CandList = std::vector<Cand>;

  /// Formula constants pre-resolved at Compile time. Everything in the
  /// paper's Eqs. 2-5 depends only on the plan and the synopsis, both
  /// frozen for the life of a compiled plan (plans are cached under
  /// epoch-scoped keys, so a synopsis swap retires them wholesale) — so
  /// the whole formula walk is evaluated once at compile time and
  /// EstimateCompiled degenerates to returning a constant.
  struct FormulaConsts {
    /// The estimate (or its deterministic error, e.g. kUnsupported),
    /// bit-identical to what the legacy per-request recomputation
    /// produces. Deadline errors are never stored: if the compile-time
    /// walk is cut short by the caller's deadline, the plan simply
    /// carries no constants and requests fall back to the legacy path.
    Result<double> estimate = 0.0;
    /// Flat per-node arena: the Eq. 2 / Theorem 4.1 selectivity of every
    /// query node under the top-level join, indexed by node id. Filled
    /// for order-free predicate-free plans (where `estimate` equals
    /// `node_selectivity[query.target]`); introspection + test surface.
    std::vector<double> node_selectivity;
  };

  /// A compiled query plan: the validated AST, its resolved tag ids and
  /// the survivor sets of the top-level path-id join of Section 4 —
  /// everything per-query preparation produces, reusable across
  /// estimate calls and cacheable by the service layer.
  struct Compiled {
    xpath::Query query;
    std::vector<xml::TagId> tags;  ///< empty when `zero` via unknown tag
    std::vector<CandList> join;    ///< per-node join survivors
    /// The estimate is already known to be 0 (a tag absent from the
    /// document, or the join pruned some candidate list to empty).
    bool zero = false;
    /// Pre-evaluated formula constants; absent when the compile deadline
    /// expired mid-walk (or a test reset it to exercise the legacy
    /// path). EstimateCompiled answers from here when present.
    std::optional<FormulaConsts> consts;

    /// Approximate heap footprint, for cache byte budgets.
    size_t ApproxBytes() const;
  };

  /// The synopsis must outlive the estimator.
  explicit Estimator(const Synopsis& synopsis) : syn_(synopsis) {}
  /// Binding a temporary synopsis would dangle.
  explicit Estimator(Synopsis&&) = delete;

  /// Estimates the selectivity (result cardinality) of `query.target`.
  /// With a finite `limits.deadline`, returns kDeadlineExceeded instead
  /// of an estimate once the deadline passes mid-computation.
  Result<double> Estimate(const xpath::Query& query,
                          const EstimateLimits& limits = {}) const;

  /// Validates `query` and runs the top-level path join into a
  /// reusable plan (kInvalidArgument for malformed queries,
  /// kDeadlineExceeded when `limits.deadline` expires mid-join).
  Result<Compiled> Compile(const xpath::Query& query,
                           const EstimateLimits& limits = {}) const;

  /// Estimates from a compiled plan, with a result bit-identical to
  /// Estimate(plan.query). Plans carrying precomputed formula constants
  /// (the normal case) answer with a single load. Without constants,
  /// order-free queries without value predicates skip validation, tag
  /// resolution and the top-level path join; other query classes fall
  /// back to the stored AST (still skipping the string parse that
  /// produced it). An already-expired deadline returns
  /// kDeadlineExceeded before any join work.
  Result<double> EstimateCompiled(const Compiled& plan,
                                  const EstimateLimits& limits = {}) const;

  /// Fault site (common/fault.h) fired at Compile entry: when armed,
  /// compilation fails with kInternal as an injected allocation
  /// failure, for chaos-testing callers' partial-failure handling.
  static constexpr std::string_view kAllocFaultSite = "estimator.alloc";

  /// Number of (pid x pid) containment tests performed by path joins
  /// since construction; exposed for the join ablation bench.
  size_t containment_tests() const {
    return containment_tests_.load(std::memory_order_relaxed);
  }

  /// When false (default is true), the path join runs a single
  /// leaf-to-root then root-to-leaf pass instead of iterating to a
  /// fixpoint. Ablation A2 in DESIGN.md. Not thread-safe; configure
  /// before sharing the estimator.
  void set_join_to_fixpoint(bool v) { join_to_fixpoint_ = v; }

 private:
  /// Compile-scoped memo of PathJoin results keyed by subquery
  /// structure; defined in the .cc. The formula walk for branch and
  /// order queries re-joins overlapping truncated subqueries (Q', Q_x,
  /// Q_t share most of their edges); within one precompute call those
  /// joins are pure functions of (structure, synopsis), so the memo
  /// collapses the duplicates.
  struct JoinMemo;

  /// Per-call deadline state threaded through the recursive estimation
  /// helpers. Once `expired` latches, joins collapse to empty and the
  /// public entry point replaces whatever partial value bubbled up with
  /// kDeadlineExceeded — intermediate zeros are never observable.
  struct RunCtx {
    Deadline deadline;
    uint32_t ticks = 0;
    bool expired = false;
    /// When set (Compile-time precompute only), PathJoin consults and
    /// fills it. Never set on the per-request paths, whose work counters
    /// must reflect real work.
    JoinMemo* join_memo = nullptr;
    /// Work counters, accumulated as plain integers on the hot path and
    /// flushed once per public entry point (to the estimator's member
    /// atomic, the global obs registry, and limits.trace when set).
    uint64_t containment_tests = 0;
    uint64_t join_probes = 0;
    uint64_t fixpoint_rounds = 0;

    /// Step/join-boundary check: reads the clock (cheap, but not free)
    /// unless the deadline is infinite or expiry already latched.
    bool CheckCoarse();
    /// Inner-loop check for the containment-test hot path: consults the
    /// clock only every 256th call.
    bool CheckFine();
  };

  /// Estimate body shared by the public entry points; `ctx` carries the
  /// deadline (never null).
  Result<double> EstimateImpl(const xpath::Query& query, RunCtx* ctx) const;

  /// Runs the formula walk once at Compile time and stores the result in
  /// `plan->consts` — unless the deadline expires mid-walk, in which
  /// case the plan is left without constants (legacy path at request
  /// time). Counter flushing stays with the caller's ctx convention.
  void PrecomputeConsts(Compiled* plan, RunCtx* ctx) const;

  /// Drains ctx's work counters into the member atomic, the global obs
  /// registry, and `limits.trace` (when set). Called exactly once per
  /// public entry point, on every exit path.
  void FlushCounters(const RunCtx& ctx, const EstimateLimits& limits) const;

  /// Per-query resolved tag ids; nullopt when some tag is unknown.
  bool ResolveTags(const xpath::Query& q, std::vector<xml::TagId>* tags) const;

  /// Runs the path-id join of Section 4. Returns false when some node's
  /// candidate list becomes empty (estimate 0) or the deadline expires.
  /// Consults/fills ctx->join_memo when set.
  bool PathJoin(const xpath::Query& q, const std::vector<xml::TagId>& tags,
                std::vector<CandList>* cands, RunCtx* ctx) const;

  /// The uncached join body behind PathJoin's memo check.
  bool PathJoinImpl(const xpath::Query& q, const std::vector<xml::TagId>& tags,
                    std::vector<CandList>* cands, RunCtx* ctx) const;

  static double FreqSum(const CandList& l);

  /// Selectivity of `q.target` ignoring order constraints (Theorem 4.1 +
  /// Eq. 2 generalized to arbitrary branch trees, see DESIGN.md §2).
  double EstimateNoOrder(const xpath::Query& q, RunCtx* ctx) const;

  /// Recursive branch-part estimation given a completed join on `q`.
  double NodeSelectivity(const xpath::Query& q,
                         const std::vector<xml::TagId>& tags,
                         const std::vector<CandList>& join, int node,
                         RunCtx* ctx) const;

  /// Queries with exactly one sibling-order constraint (Eqs. 3-5).
  double EstimateSiblingOrder(const xpath::Query& q, RunCtx* ctx) const;

  /// Queries with one document-order constraint: rewrite into
  /// sibling-order queries via the encoding table (Section 5,
  /// Example 5.3) and combine.
  Result<double> EstimateDocOrder(const xpath::Query& q, RunCtx* ctx) const;

  /// The o-histogram-backed selectivity S_arrowQ'(x) of a sibling
  /// endpoint x: sum of order cells over x's pids surviving the join on
  /// q_prime (x's branch kept whole, the other branch truncated).
  double OrderCellSum(const xpath::Query& q_prime, int x_in_prime,
                      const std::string& other_tag_name, bool x_is_after,
                      RunCtx* ctx) const;

  const Synopsis& syn_;
  bool join_to_fixpoint_ = true;
  /// Instrumentation only; relaxed increments keep const estimation
  /// calls safe to run concurrently.
  mutable std::atomic<size_t> containment_tests_ = 0;
};

}  // namespace xee::estimator

#endif  // XEE_ESTIMATOR_ESTIMATOR_H_
