#include "estimator/estimator.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/fault.h"
#include "encoding/containment.h"
#include "obs/metrics.h"
#include "stats/path_order.h"

namespace xee::estimator {
namespace {

using xpath::OrderConstraint;
using xpath::OrderKind;
using xpath::Query;
using xpath::RootMode;
using xpath::StructAxis;

encoding::AxisKind ToAxisKind(StructAxis axis) {
  return axis == StructAxis::kChild ? encoding::AxisKind::kChild
                                    : encoding::AxisKind::kDescendant;
}

/// True iff `node` is a strict descendant of `anc` in the query tree.
bool IsQueryDescendant(const Query& q, int anc, int node) {
  for (int n = q.nodes[node].parent; n != -1; n = q.nodes[n].parent) {
    if (n == anc) return true;
  }
  return false;
}

/// Propagates a node mask downwards: any descendant of a marked node
/// becomes marked. Parents precede children in index order.
void PropagateDown(const Query& q, std::vector<bool>* mask) {
  for (size_t i = 0; i < q.nodes.size(); ++i) {
    int p = q.nodes[i].parent;
    if (p >= 0 && (*mask)[p]) (*mask)[i] = true;
  }
}

Status DeadlineError(const char* when) {
  return Status(StatusCode::kDeadlineExceeded,
                std::string("deadline expired ") + when);
}

/// True iff the plan needs the general path (order constraints or value
/// predicates restructure the computation before the top-level join
/// matters).
bool NeedsGeneralPath(const Query& q) {
  bool general = !q.orders.empty();
  for (const auto& n : q.nodes) general |= n.value_filter.has_value();
  return general;
}

/// Injective serialization of everything PathJoin reads from a query:
/// the node structure (tag, axis, parent) and the root mode. Orders,
/// target, and value filters do not influence the join, so subqueries
/// differing only there share a memo slot.
std::string JoinStructureKey(const Query& q) {
  std::string key;
  key.reserve(q.nodes.size() * 12);
  key.push_back(q.root_mode == RootMode::kAbsolute ? 'A' : 'R');
  for (const auto& n : q.nodes) {
    key.push_back(n.axis == StructAxis::kChild ? 'c' : 'd');
    key += std::to_string(n.parent);
    key.push_back(':');
    key += std::to_string(n.tag.size());
    key.push_back(':');
    key += n.tag;
  }
  return key;
}

}  // namespace

struct Estimator::JoinMemo {
  struct Entry {
    bool ok;
    std::vector<CandList> cands;
  };
  std::map<std::string, Entry> by_structure;
};

bool Estimator::RunCtx::CheckCoarse() {
  if (expired) return true;
  if (deadline.infinite()) return false;
  expired = deadline.HasExpired();
  return expired;
}

bool Estimator::RunCtx::CheckFine() {
  if (expired) return true;
  if (deadline.infinite()) return false;
  if ((++ticks & 0xFF) != 0) return false;
  expired = deadline.HasExpired();
  return expired;
}

Result<double> Estimator::Estimate(const Query& query,
                                   const EstimateLimits& limits) const {
  RunCtx ctx{limits.deadline};
  if (ctx.CheckCoarse()) return DeadlineError("before estimation began");
  Result<double> r = EstimateImpl(query, &ctx);
  FlushCounters(ctx, limits);
  // Partial values computed under an expired deadline are garbage; the
  // latched flag wins over whatever bubbled up.
  if (ctx.expired) return DeadlineError("during estimation");
  return r;
}

void Estimator::FlushCounters(const RunCtx& ctx,
                              const EstimateLimits& limits) const {
  if (ctx.containment_tests == 0 && ctx.join_probes == 0 &&
      ctx.fixpoint_rounds == 0) {
    return;
  }
  containment_tests_.fetch_add(ctx.containment_tests,
                               std::memory_order_relaxed);
  // Handles resolved once per process; the registry guarantees the
  // references stay valid forever.
  static obs::Counter& tests =
      obs::Registry::Global().GetCounter("estimator.containment_tests");
  static obs::Counter& probes =
      obs::Registry::Global().GetCounter("estimator.join_probes");
  static obs::Counter& rounds =
      obs::Registry::Global().GetCounter("estimator.fixpoint_rounds");
  tests.Add(ctx.containment_tests);
  probes.Add(ctx.join_probes);
  rounds.Add(ctx.fixpoint_rounds);
  if (limits.trace != nullptr) {
    limits.trace->containment_tests += ctx.containment_tests;
    limits.trace->join_probes += ctx.join_probes;
    limits.trace->fixpoint_rounds += ctx.fixpoint_rounds;
  }
}

Result<double> Estimator::EstimateImpl(const Query& query, RunCtx* ctx) const {
  Status s = query.Validate();
  if (!s.ok()) return s;
  std::vector<xml::TagId> tags;
  if (!ResolveTags(query, &tags)) return 0.0;

  // Value predicates (extension): estimate the structure-only query and
  // scale by the per-node text selectivities under independence. Built
  // without value statistics, filters are ignored (factor 1).
  {
    bool any_filter = false;
    for (const auto& n : query.nodes) any_filter |= n.value_filter.has_value();
    if (any_filter) {
      double factor = 1;
      if (const stats::ValueStats* vs = syn_.value_stats()) {
        // Multiply the per-node selectivities in sorted order, not node
        // order: canonicalization renumbers nodes, and a fixed
        // multiplication order keeps Estimate(q) bit-identical across
        // query-tree isomorphisms (the fuzz harness asserts this).
        std::vector<double> sels;
        for (size_t i = 0; i < query.nodes.size(); ++i) {
          if (!query.nodes[i].value_filter.has_value()) continue;
          sels.push_back(
              tags[i] == encoding::kWildcardTag
                  ? vs->GlobalSelectivity(*query.nodes[i].value_filter)
                  : vs->Selectivity(tags[i], *query.nodes[i].value_filter));
        }
        std::sort(sels.begin(), sels.end());
        for (double s : sels) factor *= s;
      }
      if (factor <= 0) return 0.0;
      Query structural = query;
      for (auto& n : structural.nodes) n.value_filter.reset();
      Result<double> base = EstimateImpl(structural, ctx);
      if (!base.ok()) return base;
      return base.value() * factor;
    }
  }

  if (query.orders.empty()) return EstimateNoOrder(query, ctx);
  if (query.orders.size() > 1) {
    // Extension beyond the paper (which evaluates one order axis per
    // query): assume constraints filter independently and compose the
    // per-constraint ratios S_arrow(Q | c_i) / S(Q).
    Query base = query;
    base.orders.clear();
    const double s_q = EstimateNoOrder(base, ctx);
    if (s_q <= 0) return 0.0;
    // Sorted multiplication: canonicalization reorders the constraint
    // list, and the ratio product must not depend on that order (see the
    // value-predicate path above).
    std::vector<double> ratios;
    ratios.reserve(query.orders.size());
    for (const OrderConstraint& c : query.orders) {
      Query one = query;
      one.orders = {c};
      Result<double> r = EstimateImpl(one, ctx);
      if (!r.ok()) return r;
      ratios.push_back(r.value() / s_q);
    }
    std::sort(ratios.begin(), ratios.end());
    double result = s_q;
    for (double ratio : ratios) result *= ratio;
    return std::max(0.0, result);
  }
  // Order estimation needs concrete tags for the path-order tables (the
  // constraint endpoints) and, for the following/preceding chain
  // rewrite, the junction.
  {
    const OrderConstraint& oc = query.orders[0];
    for (int n : {oc.before, oc.after}) {
      if (query.nodes[n].tag == "*") {
        return Status(StatusCode::kUnsupported,
                      "wildcard steps cannot carry order constraints");
      }
    }
    const int junction = query.nodes[oc.before].parent;
    if (oc.kind == OrderKind::kDocument &&
        query.nodes[junction].tag == "*") {
      return Status(StatusCode::kUnsupported,
                    "following/preceding under a wildcard junction is not "
                    "supported");
    }
  }
  if (!syn_.has_order()) {
    return Status(StatusCode::kUnsupported,
                  "synopsis was built without order statistics");
  }
  const OrderConstraint& c = query.orders[0];
  if (c.kind == OrderKind::kSibling) {
    return EstimateSiblingOrder(query, ctx);
  }
  return EstimateDocOrder(query, ctx);
}

size_t Estimator::Compiled::ApproxBytes() const {
  size_t b = sizeof(Compiled);
  for (const auto& n : query.nodes) {
    b += n.tag.capacity() + n.children.capacity() * sizeof(int) +
         sizeof(xpath::QueryNode);
    if (n.value_filter.has_value()) b += n.value_filter->capacity();
  }
  b += query.orders.capacity() * sizeof(xpath::OrderConstraint);
  b += tags.capacity() * sizeof(xml::TagId);
  for (const CandList& l : join) {
    b += sizeof(CandList) + l.capacity() * sizeof(Cand);
  }
  if (consts.has_value()) {
    b += sizeof(FormulaConsts) +
         consts->node_selectivity.capacity() * sizeof(double);
  }
  return b;
}

Result<Estimator::Compiled> Estimator::Compile(
    const Query& query, const EstimateLimits& limits) const {
  if (FaultFires(kAllocFaultSite)) {
    return Status(StatusCode::kInternal, "injected allocation failure");
  }
  Status s = query.Validate();
  if (!s.ok()) return s;
  RunCtx ctx{limits.deadline};
  if (ctx.CheckCoarse()) return DeadlineError("before compilation began");
  Compiled plan;
  plan.query = query;
  if (!ResolveTags(plan.query, &plan.tags)) {
    plan.tags.clear();
    plan.zero = true;
    return plan;
  }
  if (!PathJoin(plan.query, plan.tags, &plan.join, &ctx)) plan.zero = true;
  if (!ctx.expired) PrecomputeConsts(&plan, &ctx);
  FlushCounters(ctx, limits);
  if (ctx.expired) return DeadlineError("during the path join");
  return plan;
}

void Estimator::PrecomputeConsts(Compiled* plan, RunCtx* ctx) const {
  const Query& q = plan->query;
  JoinMemo memo;
  // Seed the memo with the top-level join Compile already ran (general
  // queries re-join the full structure inside EstimateImpl; this makes
  // that a lookup). An unknown-tag zero never ran the join, so only seed
  // when tags resolved.
  if (!plan->tags.empty()) {
    memo.by_structure.emplace(JoinStructureKey(q),
                              JoinMemo::Entry{!plan->zero, plan->join});
  }

  // A fresh ctx, same deadline: an expiry mid-walk must not convert the
  // already-successful compile into a deadline error — the plan simply
  // ships without constants and requests take the legacy path.
  RunCtx pctx{ctx->deadline};
  pctx.join_memo = &memo;
  FormulaConsts fc;
  bool store = true;
  if (NeedsGeneralPath(q)) {
    Result<double> r = EstimateImpl(q, &pctx);
    fc.estimate = std::move(r);
  } else if (plan->zero) {
    fc.estimate = 0.0;
  } else {
    // Flat per-node arena; the request-time answer is the target's cell.
    fc.node_selectivity.resize(q.nodes.size(), 0.0);
    for (size_t i = 0; i < q.nodes.size(); ++i) {
      fc.node_selectivity[i] = NodeSelectivity(q, plan->tags, plan->join,
                                               static_cast<int>(i), &pctx);
    }
    fc.estimate = fc.node_selectivity[q.target];
  }
  if (pctx.expired) store = false;
  ctx->containment_tests += pctx.containment_tests;
  ctx->join_probes += pctx.join_probes;
  ctx->fixpoint_rounds += pctx.fixpoint_rounds;
  if (store) plan->consts = std::move(fc);
}

Result<double> Estimator::EstimateCompiled(const Compiled& plan,
                                           const EstimateLimits& limits) const {
  const Query& q = plan.query;
  // The fast-path promise of a deadline: an expired request costs one
  // clock read here, never a join.
  RunCtx ctx{limits.deadline};
  if (ctx.CheckCoarse()) return DeadlineError("before estimation began");
  // Constants present: the whole formula walk already ran at compile
  // time against the same frozen synopsis; the answer is a load.
  if (plan.consts.has_value()) return plan.consts->estimate;
  // Order constraints and value predicates restructure the computation
  // (truncated subqueries, rewrites, scaling) before the top-level join
  // matters; route them through the general path. Estimate() revalidates
  // the stored AST, which is cheap next to the joins it runs.
  if (NeedsGeneralPath(q)) {
    Result<double> r = EstimateImpl(q, &ctx);
    FlushCounters(ctx, limits);
    if (ctx.expired) return DeadlineError("during estimation");
    return r;
  }
  if (plan.zero) return 0.0;
  const double sel = NodeSelectivity(q, plan.tags, plan.join, q.target, &ctx);
  FlushCounters(ctx, limits);
  if (ctx.expired) return DeadlineError("during estimation");
  return sel;
}

bool Estimator::ResolveTags(const Query& q,
                            std::vector<xml::TagId>* tags) const {
  tags->clear();
  tags->reserve(q.nodes.size());
  for (const auto& n : q.nodes) {
    if (n.tag == "*") {
      tags->push_back(encoding::kWildcardTag);
      continue;
    }
    auto id = syn_.FindTag(n.tag);
    if (!id.has_value()) return false;
    tags->push_back(*id);
  }
  return true;
}

bool Estimator::PathJoin(const Query& q, const std::vector<xml::TagId>& tags,
                         std::vector<CandList>* cands, RunCtx* ctx) const {
  if (ctx->join_memo == nullptr) return PathJoinImpl(q, tags, cands, ctx);
  // The join is a pure function of (node structure, synopsis); orders,
  // target, and value filters play no part. Never cache a join cut short
  // by an expired deadline — its survivor lists are partial.
  const std::string key = JoinStructureKey(q);
  auto it = ctx->join_memo->by_structure.find(key);
  if (it != ctx->join_memo->by_structure.end()) {
    *cands = it->second.cands;
    return it->second.ok;
  }
  const bool ok = PathJoinImpl(q, tags, cands, ctx);
  if (!ctx->expired) {
    ctx->join_memo->by_structure.emplace(key, JoinMemo::Entry{ok, *cands});
  }
  return ok;
}

bool Estimator::PathJoinImpl(const Query& q,
                             const std::vector<xml::TagId>& tags,
                             std::vector<CandList>* cands, RunCtx* ctx) const {
  cands->assign(q.nodes.size(), CandList{});
  for (size_t i = 0; i < q.nodes.size(); ++i) {
    if (ctx->CheckCoarse()) return false;
    CandList& list = (*cands)[i];
    if (tags[i] == encoding::kWildcardTag) {
      // "*" candidates: one entry per (tag, pid) pair, keeping the tag
      // so the join can test relationships per concrete tag.
      for (size_t t = 0; t < syn_.TagCount(); ++t) {
        const xml::TagId tag = static_cast<xml::TagId>(t);
        const histogram::PHistogram& h = syn_.PHisto(tag);
        for (encoding::PidRef pid : h.PidsInOrder()) {
          list.push_back(Cand{tag, pid, h.Frequency(pid)});
        }
      }
      continue;
    }
    const histogram::PHistogram& h = syn_.PHisto(tags[i]);
    list.reserve(h.PidsInOrder().size());
    for (encoding::PidRef pid : h.PidsInOrder()) {
      list.push_back(Cand{tags[i], pid, h.Frequency(pid)});
    }
  }

  // An absolute first step must be the document root: same tag, and the
  // root's path id (the id covering every path).
  if (q.root_mode == RootMode::kAbsolute) {
    if (tags[0] != syn_.root_tag() && tags[0] != encoding::kWildcardTag) {
      return false;
    }
    CandList& list = (*cands)[0];
    std::erase_if(list,
                  [this](const Cand& c) { return c.pid != syn_.root_pid(); });
  }

  auto compatible = [this, ctx](const Cand& parent, const Cand& child,
                                StructAxis axis) {
    // On expiry, report incompatible: lists collapse, the sweeps finish
    // quickly, and the caller discards the result via ctx->expired.
    if (ctx->CheckFine()) return false;
    ++ctx->containment_tests;
    return encoding::PidPairCompatible(
        syn_.table(), parent.tag, syn_.PidBits(parent.pid), child.tag,
        syn_.PidBits(child.pid), ToAxisKind(axis));
  };

  // Semi-join reduction over every query edge; a sweep filters both
  // endpoint lists. Returns true if something was removed.
  auto sweep_edge = [&](size_t i) {
    if (ctx->expired) return false;
    ++ctx->join_probes;
    const int p = q.nodes[i].parent;
    const StructAxis axis = q.nodes[i].axis;
    CandList& pl = (*cands)[p];
    CandList& cl = (*cands)[i];
    const size_t before = pl.size() + cl.size();
    std::erase_if(pl, [&](const Cand& pc) {
      return std::none_of(cl.begin(), cl.end(), [&](const Cand& cc) {
        return compatible(pc, cc, axis);
      });
    });
    std::erase_if(cl, [&](const Cand& cc) {
      return std::none_of(pl.begin(), pl.end(), [&](const Cand& pc) {
        return compatible(pc, cc, axis);
      });
    });
    return pl.size() + cl.size() != before;
  };

  if (join_to_fixpoint_) {
    bool changed = true;
    while (changed && !ctx->CheckCoarse()) {
      ++ctx->fixpoint_rounds;
      changed = false;
      for (size_t i = 1; i < q.nodes.size(); ++i) {
        changed |= sweep_edge(i);
      }
    }
  } else {
    // Single bottom-up then top-down pass (ablation A2): the classic
    // two-pass semi-join reducer.
    ctx->fixpoint_rounds += 2;
    for (size_t i = q.nodes.size(); i-- > 1;) sweep_edge(i);
    for (size_t i = 1; i < q.nodes.size(); ++i) sweep_edge(i);
  }

  if (ctx->expired) return false;
  for (const CandList& l : *cands) {
    if (l.empty()) return false;
  }
  return true;
}

double Estimator::FreqSum(const CandList& l) {
  double s = 0;
  for (const Cand& c : l) s += c.freq;
  return s;
}

double Estimator::EstimateNoOrder(const Query& q, RunCtx* ctx) const {
  std::vector<xml::TagId> tags;
  if (!ResolveTags(q, &tags)) return 0;
  std::vector<CandList> join;
  if (!PathJoin(q, tags, &join, ctx)) return 0;
  return NodeSelectivity(q, tags, join, q.target, ctx);
}

double Estimator::NodeSelectivity(const Query& q,
                                  const std::vector<xml::TagId>& tags,
                                  const std::vector<CandList>& join, int node,
                                  RunCtx* ctx) const {
  if (ctx->CheckCoarse()) return 0;
  const std::vector<int> spine = q.SpineOf(node);

  // Deepest spine node strictly above `node` with off-spine branches.
  int ni = -1;
  int ni_spine_child = -1;
  for (size_t i = 0; i + 1 < spine.size(); ++i) {
    const int sn = spine[i];
    const int next = spine[i + 1];
    if (q.nodes[sn].children.size() > 1) {
      ni = sn;
      ni_spine_child = next;
    }
  }
  // Trunk target (no branching strictly above): Theorem 4.1 — the joined
  // frequency sum is the selectivity.
  if (ni == -1) return FreqSum(join[node]);

  // Branch target: Eq. 2. Q' drops the off-spine branches at ni; the
  // selectivity of ni itself is computed recursively (it is strictly
  // higher up, so this terminates).
  std::vector<bool> keep(q.nodes.size(), true);
  {
    std::vector<bool> off(q.nodes.size(), false);
    for (int child : q.nodes[ni].children) {
      if (child != ni_spine_child) off[child] = true;
    }
    PropagateDown(q, &off);
    for (size_t i = 0; i < q.nodes.size(); ++i) keep[i] = !off[i];
  }

  std::vector<int> map;
  Query qp = q.SubQuery(keep, &map);
  qp.orders.clear();
  qp.target = map[node];
  XEE_CHECK(map[node] >= 0 && map[ni] >= 0);

  std::vector<xml::TagId> tags_p;
  if (!ResolveTags(qp, &tags_p)) return 0;
  std::vector<CandList> join_p;
  if (!PathJoin(qp, tags_p, &join_p, ctx)) return 0;

  const double s_q_ni = NodeSelectivity(q, tags, join, ni, ctx);
  const double s_qp_ni = NodeSelectivity(qp, tags_p, join_p, map[ni], ctx);
  const double s_qp_n = NodeSelectivity(qp, tags_p, join_p, map[node], ctx);
  if (s_qp_ni <= 0) return 0;
  return s_qp_n * s_q_ni / s_qp_ni;
}

double Estimator::OrderCellSum(const Query& q_prime, int x_in_prime,
                               const std::string& other_tag_name,
                               bool x_is_after, RunCtx* ctx) const {
  if (ctx->CheckCoarse()) return 0;
  std::vector<xml::TagId> tags;
  if (!ResolveTags(q_prime, &tags)) return 0;
  auto other = syn_.FindTag(other_tag_name);
  if (!other.has_value()) return 0;
  std::vector<CandList> join;
  if (!PathJoin(q_prime, tags, &join, ctx)) return 0;

  const histogram::OHistogram& oh = syn_.OHisto(tags[x_in_prime]);
  const stats::OrderRegion region =
      x_is_after ? stats::OrderRegion::kAfter : stats::OrderRegion::kBefore;
  double sum = 0;
  for (const Cand& c : join[x_in_prime]) {
    sum += oh.Get(region, *other, c.pid);
  }
  return sum;
}

double Estimator::EstimateSiblingOrder(const Query& q, RunCtx* ctx) const {
  const OrderConstraint& c = q.orders[0];
  const int a = c.before;
  const int b = c.after;

  Query no_order = q;
  no_order.orders.clear();

  // Evaluates one sibling endpoint x (the other endpoint's branch is
  // truncated to its head to form Q'). Returns the three quantities of
  // Eq. 3: the o-histogram sum S_arrowQ'(x), the plain estimates
  // S_Q'(x) and S_arrowQ(x).
  struct Side {
    double s_oh = 0;     // S_arrowQ'(x), exact w.r.t. the order tables
    double s_qp = 0;     // S_Q'(x)
    double s_arrow = 0;  // Eq. 3 estimate of S_arrowQ(x)
  };
  auto eval_side = [&](int x, int other, bool x_is_after) {
    Side side;
    if (ctx->CheckCoarse()) return side;
    // Q': truncate the other endpoint's branch to its head node.
    std::vector<bool> keep(q.nodes.size(), true);
    {
      std::vector<bool> off(q.nodes.size(), false);
      for (int child : q.nodes[other].children) off[child] = true;
      PropagateDown(q, &off);
      for (size_t i = 0; i < q.nodes.size(); ++i) keep[i] = !off[i];
    }
    std::vector<int> map;
    Query qp = no_order.SubQuery(keep, &map);
    XEE_CHECK(map[x] >= 0);
    qp.target = map[x];
    side.s_oh = OrderCellSum(qp, map[x], q.nodes[other].tag, x_is_after, ctx);
    side.s_qp = EstimateNoOrder(qp, ctx);

    Query qx = no_order;
    qx.target = x;
    const double s_q_x = EstimateNoOrder(qx, ctx);
    side.s_arrow = side.s_qp > 0 ? side.s_oh * s_q_x / side.s_qp : 0;
    return side;
  };

  const int t = q.target;
  if (t == b) return eval_side(b, a, /*x_is_after=*/true).s_arrow;
  if (t == a) return eval_side(a, b, /*x_is_after=*/false).s_arrow;

  if (IsQueryDescendant(q, b, t)) {
    // Eq. 4: scale the no-order estimate by the order ratio of b.
    const Side side = eval_side(b, a, /*x_is_after=*/true);
    Query qt = no_order;
    qt.target = t;
    const double s_q_t = EstimateNoOrder(qt, ctx);
    return side.s_qp > 0 ? s_q_t * side.s_oh / side.s_qp : 0;
  }
  if (IsQueryDescendant(q, a, t)) {
    const Side side = eval_side(a, b, /*x_is_after=*/false);
    Query qt = no_order;
    qt.target = t;
    const double s_q_t = EstimateNoOrder(qt, ctx);
    return side.s_qp > 0 ? s_q_t * side.s_oh / side.s_qp : 0;
  }

  // Trunk target: Eq. 5.
  const Side sa = eval_side(a, b, /*x_is_after=*/false);
  const Side sb = eval_side(b, a, /*x_is_after=*/true);
  Query qt = no_order;
  qt.target = t;
  const double s_q_t = EstimateNoOrder(qt, ctx);
  return std::min(s_q_t, std::min(sa.s_arrow, sb.s_arrow));
}

Result<double> Estimator::EstimateDocOrder(const Query& q, RunCtx* ctx) const {
  const OrderConstraint& c = q.orders[0];
  // The rewrite targets the endpoint attached via the descendant axis
  // (created by a following::/preceding:: step). If both endpoints are
  // child-attached, the document-order constraint between siblings is
  // the sibling constraint.
  int d;
  if (q.nodes[c.after].axis == StructAxis::kDescendant) {
    d = c.after;
  } else if (q.nodes[c.before].axis == StructAxis::kDescendant) {
    d = c.before;
  } else {
    Query sib = q;
    sib.orders[0].kind = OrderKind::kSibling;
    return EstimateSiblingOrder(sib, ctx);
  }
  const int ctx_node = d == c.after ? c.before : c.after;
  const int junction = q.nodes[d].parent;
  XEE_CHECK(junction >= 0);
  if (q.nodes[ctx_node].axis != StructAxis::kChild) {
    return Status(StatusCode::kUnsupported,
                  "document-order context step must be child-attached");
  }

  std::vector<xml::TagId> tags;
  if (!ResolveTags(q, &tags)) return 0.0;
  std::vector<CandList> join;
  if (!PathJoin(q, tags, &join, ctx)) return 0.0;

  // Decode the surviving pids of d into tag chains below the junction
  // (Example 5.3).
  std::set<encoding::TagPath> chains;
  for (const Cand& cand : join[d]) {
    syn_.PidBits(cand.pid).ForEachSetBit([&](size_t enc) {
      for (encoding::TagPath& chain : syn_.table().ChainsBelow(
               static_cast<uint32_t>(enc), tags[junction], tags[d])) {
        chains.insert(std::move(chain));
      }
    });
  }
  if (chains.empty()) return 0.0;

  const bool target_in_d = q.target == d || IsQueryDescendant(q, d, q.target);
  double total = 0;
  for (const encoding::TagPath& chain : chains) {
    if (ctx->CheckCoarse()) break;
    // Rebuild the query with d replaced by an explicit child chain and a
    // sibling constraint between the context step and the chain head.
    Query rw;
    rw.root_mode = q.root_mode;
    std::vector<int> map(q.nodes.size(), -1);
    int head = -1;
    for (size_t i = 0; i < q.nodes.size(); ++i) {
      if (static_cast<int>(i) == d) {
        int cur = map[junction];
        for (size_t s = 0; s < chain.size(); ++s) {
          cur = rw.AddNode(syn_.TagName(chain[s]), StructAxis::kChild, cur);
          if (s == 0) head = cur;
        }
        map[i] = cur;
      } else {
        const auto& n = q.nodes[i];
        map[i] = rw.AddNode(n.tag, n.axis,
                            n.parent == -1 ? -1 : map[n.parent]);
      }
    }
    OrderConstraint sc;
    sc.kind = OrderKind::kSibling;
    sc.before = d == c.after ? map[ctx_node] : head;
    sc.after = d == c.after ? head : map[ctx_node];
    rw.orders.push_back(sc);
    rw.target = map[q.target];
    XEE_CHECK(rw.target >= 0);
    total += EstimateSiblingOrder(rw, ctx);
  }

  if (target_in_d) return total;
  // Target elsewhere: the chains partition d's possibilities, so the sum
  // bounds the union; clamp by the no-order estimate.
  Query qt = q;
  qt.orders.clear();
  return std::min(EstimateNoOrder(qt, ctx), total);
}

}  // namespace xee::estimator
