#include "xsketch/xsketch.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>

#include "common/check.h"

namespace xee::xsketch {
namespace {

using xml::Document;
using xml::NodeId;
using xpath::Query;
using xpath::RootMode;
using xpath::StructAxis;

constexpr xml::TagId kAnyTag = UINT32_MAX;

bool TagMatches(xml::TagId node_tag, xml::TagId query_tag) {
  return query_tag == kAnyTag || node_tag == query_tag;
}

}  // namespace

/// Builds the synopsis: label-split graph + greedy backward splits.
class Builder {
 public:
  Builder(const Document& doc, const XSketchOptions& options)
      : doc_(doc), options_(options) {}

  XSketch Run() {
    // Label-split start: one group per tag.
    group_of_.assign(doc_.NodeCount(), 0);
    members_.assign(doc_.TagCount(), {});
    group_tag_.assign(doc_.TagCount(), 0);
    for (NodeId n = 0; n < doc_.NodeCount(); ++n) {
      const uint32_t g = doc_.Tag(n);
      group_of_[n] = g;
      members_[g].push_back(n);
      group_tag_[g] = doc_.Tag(n);
    }

    XSketch out;
    size_t steps = 0;
    while (true) {
      // Modeled size if we stopped now.
      if (CurrentSizeBytes() >= options_.budget_bytes) break;
      // Greedy refinement, rescanning all candidates every step (the
      // superlinear cost the paper reports for XSketch construction).
      // Two kinds of split, as in the original system:
      //  - backward (B-stabilization): split a group by parent group;
      //  - forward (F-stabilization): split a group by the presence of a
      //    child in a specific group, sharpening branch-predicate
      //    fractions.
      int best_backward = -1;
      uint64_t best_backward_score = 0;
      for (size_t g = 0; g < members_.size(); ++g) {
        uint64_t score = ParentDiversity(static_cast<uint32_t>(g));
        if (score > best_backward_score) {
          best_backward_score = score;
          best_backward = static_cast<int>(g);
        }
      }
      auto [fwd_group, fwd_child, fwd_score] = BestForwardSplit();
      if (best_backward_score == 0 && fwd_score == 0) break;  // stable
      // Backward stability is the primary objective (it fixes chain
      // estimates); prefer it when available, as the original greedy
      // does in its early phase.
      if (best_backward_score >= fwd_score) {
        SplitByParentGroup(static_cast<uint32_t>(best_backward));
      } else {
        SplitByChildPresence(fwd_group, fwd_child);
      }
      ++steps;
    }

    out.refinement_steps_ = steps;
    Materialize(&out);
    return out;
  }

 private:
  /// Number of distinct parent groups minus one, weighted by count —
  /// zero when the group is backward-stable.
  uint64_t ParentDiversity(uint32_t g) const {
    std::map<uint32_t, uint64_t> by_parent;
    for (NodeId n : members_[g]) {
      NodeId p = doc_.Parent(n);
      if (p == xml::kNullNode) continue;
      by_parent[group_of_[p]]++;
    }
    if (by_parent.size() <= 1) return 0;
    return (by_parent.size() - 1) * members_[g].size();
  }

  void SplitByParentGroup(uint32_t g) {
    std::map<uint32_t, std::vector<NodeId>> by_parent;
    for (NodeId n : members_[g]) {
      NodeId p = doc_.Parent(n);
      uint32_t key = p == xml::kNullNode ? UINT32_MAX : group_of_[p];
      by_parent[key].push_back(n);
    }
    XEE_CHECK(by_parent.size() > 1);
    bool first = true;
    for (auto& [key, nodes] : by_parent) {
      uint32_t target_group;
      if (first) {
        target_group = g;
        first = false;
      } else {
        target_group = static_cast<uint32_t>(members_.size());
        members_.emplace_back();
        group_tag_.push_back(group_tag_[g]);
      }
      if (target_group != g) {
        for (NodeId n : nodes) group_of_[n] = target_group;
        members_[target_group] = std::move(nodes);
      }
    }
    // Rebuild g's member list (it kept only its first partition).
    std::vector<NodeId> remaining;
    for (NodeId n : members_[g]) {
      if (group_of_[n] == g) remaining.push_back(n);
    }
    members_[g] = std::move(remaining);
  }

  /// Best (group, child-group) forward split: maximizes the balance of
  /// members with vs without a child in the child-group (0 when every
  /// group is forward-stable w.r.t. every child group).
  std::tuple<uint32_t, uint32_t, uint64_t> BestForwardSplit() const {
    uint32_t best_g = 0, best_c = 0;
    uint64_t best_score = 0;
    // Count, per (group, child group), how many members have >= 1 child
    // there.
    std::map<std::pair<uint32_t, uint32_t>, uint64_t> with;
    for (size_t g = 0; g < members_.size(); ++g) {
      for (NodeId n : members_[g]) {
        std::set<uint32_t> child_groups;
        for (NodeId c : doc_.Children(n)) {
          child_groups.insert(group_of_[c]);
        }
        for (uint32_t cg : child_groups) {
          with[{static_cast<uint32_t>(g), cg}]++;
        }
      }
    }
    for (const auto& [key, n_with] : with) {
      const uint64_t total = members_[key.first].size();
      if (n_with == 0 || n_with == total) continue;  // forward-stable
      const uint64_t score = std::min(n_with, total - n_with);
      if (score > best_score) {
        best_score = score;
        best_g = key.first;
        best_c = key.second;
      }
    }
    return {best_g, best_c, best_score};
  }

  void SplitByChildPresence(uint32_t g, uint32_t child_group) {
    std::vector<NodeId> with, without;
    for (NodeId n : members_[g]) {
      bool has = false;
      for (NodeId c : doc_.Children(n)) {
        if (group_of_[c] == child_group) {
          has = true;
          break;
        }
      }
      (has ? with : without).push_back(n);
    }
    XEE_CHECK(!with.empty() && !without.empty());
    const uint32_t new_group = static_cast<uint32_t>(members_.size());
    members_.emplace_back();
    group_tag_.push_back(group_tag_[g]);
    for (NodeId n : without) group_of_[n] = new_group;
    members_[new_group] = std::move(without);
    members_[g] = std::move(with);
  }

  size_t CurrentSizeBytes() const {
    // Nodes cost 5 bytes; edges 8. Count distinct (parent-group,
    // child-group) pairs.
    size_t edges = 0;
    std::unordered_map<uint64_t, bool> seen;
    for (NodeId n = 0; n < doc_.NodeCount(); ++n) {
      NodeId p = doc_.Parent(n);
      if (p == xml::kNullNode) continue;
      uint64_t key = (static_cast<uint64_t>(group_of_[p]) << 32) |
                     group_of_[n];
      if (seen.emplace(key, true).second) ++edges;
    }
    return members_.size() * 5 + edges * 8;
  }

  void Materialize(XSketch* out) const {
    out->nodes_.resize(members_.size());
    for (size_t g = 0; g < members_.size(); ++g) {
      out->nodes_[g].tag = group_tag_[g];
      out->nodes_[g].count = members_[g].size();
    }
    std::map<std::pair<uint32_t, uint32_t>, uint64_t> edge_counts;
    for (NodeId n = 0; n < doc_.NodeCount(); ++n) {
      NodeId p = doc_.Parent(n);
      if (p == xml::kNullNode) {
        out->nodes_[group_of_[n]].is_root = true;
        continue;
      }
      edge_counts[{group_of_[p], group_of_[n]}]++;
    }
    for (const auto& [pc, count] : edge_counts) {
      out->nodes_[pc.first].children.push_back(
          XSketch::Edge{pc.second, count});
      out->nodes_[pc.second].parents.push_back(
          XSketch::Edge{pc.first, count});
    }
    out->tag_names_.resize(doc_.TagCount());
    for (size_t t = 0; t < doc_.TagCount(); ++t) {
      out->tag_names_[t] = doc_.TagNameOf(static_cast<xml::TagId>(t));
    }
  }

  const Document& doc_;
  XSketchOptions options_;
  std::vector<uint32_t> group_of_;           // element -> group
  std::vector<std::vector<NodeId>> members_;  // group -> elements
  std::vector<xml::TagId> group_tag_;
};

/// Independence-based estimation over the summary graph.
class Estimation {
 public:
  Estimation(const XSketch& sk, const Query& q) : sk_(sk), q_(q) {}

  Result<double> Run() {
    if (!q_.orders.empty()) {
      return Status(StatusCode::kUnsupported,
                    "XSketch does not support order axes");
    }
    for (const auto& n : q_.nodes) {
      if (n.value_filter.has_value()) {
        return Status(StatusCode::kUnsupported,
                      "XSketch is structure-only (no value predicates)");
      }
    }
    // Resolve tags ("*" matches every synopsis node).
    tags_.resize(q_.size());
    for (size_t i = 0; i < q_.size(); ++i) {
      if (q_.nodes[i].tag == "*") {
        tags_[i] = kAnyTag;
        continue;
      }
      int tag = -1;
      for (size_t t = 0; t < sk_.tag_names_.size(); ++t) {
        if (sk_.tag_names_[t] == q_.nodes[i].tag) {
          tag = static_cast<int>(t);
          break;
        }
      }
      if (tag < 0) return 0.0;
      tags_[i] = static_cast<xml::TagId>(tag);
    }
    const size_t s = sk_.nodes_.size();
    down_.assign(q_.size(), std::vector<double>(s, -1));
    up_.assign(q_.size(), std::vector<double>(s, -1));

    double total = 0;
    for (size_t v = 0; v < s; ++v) {
      if (!TagMatches(sk_.nodes_[v].tag, tags_[q_.target])) continue;
      total += static_cast<double>(sk_.nodes_[v].count) *
               Up(q_.target, v) * Down(q_.target, v);
    }
    return total;
  }

 private:
  /// P(an element of snode v satisfies the subquery below query node q),
  /// under independence across branches.
  double Down(int q, size_t v) {
    double& memo = down_[q][v];
    if (memo >= 0) return memo;
    memo = 0;  // cycle cut while computing
    double p = 1;
    for (int qc : q_.nodes[q].children) {
      p *= BranchSat(qc, v);
    }
    memo = p;
    return p;
  }

  /// P(an element of snode v has a matching child/descendant for branch
  /// qc) ~= min(1, expected count of matches below v).
  double BranchSat(int qc, size_t v) {
    return std::min(1.0, ExpectedBelow(qc, v, /*depth=*/0));
  }

  /// Expected number of elements matching branch qc among children
  /// (child axis) or all descendants (descendant axis) of an element of
  /// snode v. Depth-capped for recursive summary graphs.
  double ExpectedBelow(int qc, size_t v, int depth) {
    if (depth > 64) return 0;
    const bool descendant = q_.nodes[qc].axis == StructAxis::kDescendant;
    const double vc = static_cast<double>(sk_.nodes_[v].count);
    double expected = 0;
    for (const auto& e : sk_.nodes_[v].children) {
      const double frac = static_cast<double>(e.count) / vc;
      if (TagMatches(sk_.nodes_[e.peer].tag, tags_[qc])) {
        expected += frac * Down(qc, e.peer);
      }
      if (descendant) {
        expected += frac * ExpectedBelow(qc, e.peer, depth + 1);
      }
    }
    return expected;
  }

  /// P(an element of snode v extends upwards through query node q's
  /// ancestor chain, with all sibling branches satisfied).
  double Up(int q, size_t v) {
    double& memo = up_[q][v];
    if (memo >= 0) return memo;
    memo = 0;  // cycle cut
    double result;
    if (q == 0) {
      result = q_.root_mode == RootMode::kAnywhere
                   ? 1.0
                   : (sk_.nodes_[v].is_root ? 1.0 : 0.0);
    } else {
      const int parent = q_.nodes[q].parent;
      result = std::min(1.0, ExpectedAbove(q, parent, v, 0));
    }
    memo = result;
    return result;
  }

  /// Expected number of parents (child axis) or ancestors (descendant
  /// axis) of an element of snode v matching query node `parent` in its
  /// full context (upward chain plus the other branches of `parent`).
  double ExpectedAbove(int q, int parent, size_t v, int depth) {
    if (depth > 64) return 0;
    const bool descendant = q_.nodes[q].axis == StructAxis::kDescendant;
    const double vc = static_cast<double>(sk_.nodes_[v].count);
    double expected = 0;
    for (const auto& e : sk_.nodes_[v].parents) {
      const double frac = static_cast<double>(e.count) / vc;
      if (TagMatches(sk_.nodes_[e.peer].tag, tags_[parent])) {
        expected += frac * ParentContext(q, parent, e.peer);
      }
      if (descendant) {
        expected += frac * ExpectedAbove(q, parent, e.peer, depth + 1);
      }
    }
    return expected;
  }

  /// P(an element of snode s works as `parent` when reached from child
  /// branch q): upward chain of s times s's other branches.
  double ParentContext(int q, int parent, size_t s) {
    double p = Up(parent, s);
    for (int sibling : q_.nodes[parent].children) {
      if (sibling == q) continue;
      p *= BranchSat(sibling, s);
    }
    return p;
  }

  const XSketch& sk_;
  const Query& q_;
  std::vector<xml::TagId> tags_;
  std::vector<std::vector<double>> down_, up_;
};

XSketch XSketch::Build(const xml::Document& doc,
                       const XSketchOptions& options) {
  return Builder(doc, options).Run();
}

Result<double> XSketch::Estimate(const xpath::Query& q) const {
  Status s = q.Validate();
  if (!s.ok()) return s;
  Estimation e(*this, q);
  return e.Run();
}

size_t XSketch::EdgeCount() const {
  size_t n = 0;
  for (const auto& node : nodes_) n += node.children.size();
  return n;
}

size_t XSketch::SizeBytes() const {
  return nodes_.size() * 5 + EdgeCount() * 8;
}

}  // namespace xee::xsketch
