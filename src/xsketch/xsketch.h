#ifndef XEE_XSKETCH_XSKETCH_H_
#define XEE_XSKETCH_XSKETCH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "xml/tree.h"
#include "xpath/query.h"

namespace xee::xsketch {

/// Construction knobs for the XSketch-style synopsis.
struct XSketchOptions {
  /// Target summary size; greedy refinement stops when the modeled size
  /// would exceed it.
  size_t budget_bytes = 4 * 1024;
};

/// Reimplementation of the XSketch graph synopsis (Polyzotis &
/// Garofalakis, SIGMOD'02) — the baseline the paper compares against for
/// queries without order axes (its Table 4 and Figure 11).
///
/// The synopsis is a summary graph: each node ("snode") represents a set
/// of same-tag elements and stores their count; edges carry parent-child
/// pair counts. Construction starts from the label-split graph (one
/// snode per tag) and greedily refines it by splitting the snode whose
/// elements have the most heterogeneous parent-snode distribution
/// (backward-stabilization), until the byte budget is reached — each
/// step rescans all candidates, giving the superlinear build cost the
/// paper observes for XSketch.
///
/// Estimation multiplies per-edge traversal fractions along the query
/// tree under the standard independence and uniformity assumptions;
/// descendant axes use expected-count closure over the summary graph
/// (cycle-safe for recursive data). Order axes are not supported,
/// matching the scope of the paper's comparison.
class XSketch {
 public:
  static XSketch Build(const xml::Document& doc,
                       const XSketchOptions& options);

  /// Estimated selectivity of `q.target`; kUnsupported for queries with
  /// order constraints.
  Result<double> Estimate(const xpath::Query& q) const;

  size_t NodeCount() const { return nodes_.size(); }
  size_t EdgeCount() const;
  /// Modeled footprint: 5 bytes per snode (tag + count) and 8 bytes per
  /// edge (two refs + count).
  size_t SizeBytes() const;
  /// Number of greedy refinement steps performed.
  size_t refinement_steps() const { return refinement_steps_; }

 private:
  struct Edge {
    uint32_t peer;   // snode index
    uint64_t count;  // number of parent-child element pairs
  };
  struct SNode {
    xml::TagId tag = 0;
    uint64_t count = 0;
    bool is_root = false;  // contains the document root
    std::vector<Edge> parents;
    std::vector<Edge> children;
  };

  std::vector<SNode> nodes_;
  std::vector<std::string> tag_names_;
  size_t refinement_steps_ = 0;

  friend class Builder;
  friend class Estimation;
};

}  // namespace xee::xsketch

#endif  // XEE_XSKETCH_XSKETCH_H_
