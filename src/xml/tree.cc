#include "xml/tree.h"

namespace xee::xml {

NodeId Document::CreateRoot(std::string_view tag) {
  XEE_CHECK_MSG(nodes_.empty(), "root must be the first node");
  Node n;
  n.tag = InternTag(tag);
  nodes_.push_back(std::move(n));
  finalized_ = false;
  return 0;
}

NodeId Document::AppendChild(NodeId parent, std::string_view tag) {
  XEE_CHECK(parent < nodes_.size());
  Node n;
  n.tag = InternTag(tag);
  n.parent = parent;
  n.sibling_index = static_cast<uint32_t>(nodes_[parent].children.size());
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  nodes_[parent].children.push_back(id);
  finalized_ = false;
  return id;
}

void Document::AppendText(NodeId node, std::string_view text) {
  At(node).text.append(text);
}

void Document::AddAttribute(NodeId node, std::string_view name,
                            std::string_view value) {
  At(node).attributes.push_back(
      Attribute{std::string(name), std::string(value)});
}

bool Document::DetachSubtree(NodeId n) {
  Node& node = At(n);
  if (node.parent == kNullNode) return false;
  std::vector<NodeId>& kids = nodes_[node.parent].children;
  const size_t at = node.sibling_index;
  XEE_CHECK(at < kids.size() && kids[at] == n);
  kids.erase(kids.begin() + static_cast<ptrdiff_t>(at));
  for (size_t i = at; i < kids.size(); ++i) {
    nodes_[kids[i]].sibling_index = static_cast<uint32_t>(i);
  }
  node.parent = kNullNode;
  node.sibling_index = 0;
  finalized_ = false;
  return true;
}

void Document::Finalize() {
  if (finalized_) return;
  XEE_CHECK(!nodes_.empty());
  // Iterative pre-order walk assigning [order_begin, order_end) intervals.
  uint32_t counter = 0;
  // Stack entries: (node, next child index to visit).
  std::vector<std::pair<NodeId, size_t>> stack;
  nodes_[0].order_begin = counter++;
  stack.emplace_back(0, 0);
  while (!stack.empty()) {
    auto& [node, child_idx] = stack.back();
    if (child_idx < nodes_[node].children.size()) {
      NodeId child = nodes_[node].children[child_idx++];
      nodes_[child].order_begin = counter++;
      stack.emplace_back(child, 0);
    } else {
      nodes_[node].order_end = counter;
      stack.pop_back();
    }
  }
  finalized_ = true;
}

std::optional<TagId> Document::FindTag(std::string_view name) const {
  auto it = tag_ids_.find(std::string(name));
  if (it == tag_ids_.end()) return std::nullopt;
  return it->second;
}

size_t Document::Depth(NodeId n) const {
  size_t d = 0;
  for (NodeId p = At(n).parent; p != kNullNode; p = At(p).parent) ++d;
  return d;
}

TagId Document::InternTag(std::string_view name) {
  auto it = tag_ids_.find(std::string(name));
  if (it != tag_ids_.end()) return it->second;
  TagId id = static_cast<TagId>(tag_names_.size());
  tag_names_.emplace_back(name);
  tag_ids_.emplace(std::string(name), id);
  return id;
}

}  // namespace xee::xml
