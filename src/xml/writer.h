#ifndef XEE_XML_WRITER_H_
#define XEE_XML_WRITER_H_

#include <string>

#include "xml/tree.h"

namespace xee::xml {

/// Serialization options.
struct WriteOptions {
  /// Indent nested elements by two spaces per depth; text-bearing
  /// elements are kept on one line.
  bool pretty = false;
  /// Emit an XML declaration header.
  bool declaration = true;
};

/// Serializes `doc` (rooted at its root) back to XML text. Text and
/// attribute values are entity-escaped, so Parse(Write(doc)) round-trips
/// structure, tags, attributes and non-whitespace text.
std::string WriteXml(const Document& doc, const WriteOptions& options = {});

/// Returns the serialized byte size without materializing the string
/// content beyond a running counter (used for Table 1 "size" numbers).
size_t SerializedSize(const Document& doc, const WriteOptions& options = {});

}  // namespace xee::xml

#endif  // XEE_XML_WRITER_H_
