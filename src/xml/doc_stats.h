#ifndef XEE_XML_DOC_STATS_H_
#define XEE_XML_DOC_STATS_H_

#include <cstddef>
#include <string>

#include "xml/tree.h"

namespace xee::xml {

/// Summary characteristics of a document (the columns of the paper's
/// Table 1, plus depth information used in discussion).
struct DocStats {
  size_t serialized_bytes = 0;   ///< size of the XML serialization
  size_t distinct_elements = 0;  ///< number of distinct element tags
  size_t element_count = 0;      ///< total number of element nodes
  size_t max_depth = 0;          ///< deepest element (root = depth 0)
  double avg_fanout = 0;         ///< mean children per non-leaf element

  /// One-line rendering for reports.
  std::string ToString() const;
};

/// Computes DocStats over `doc` (serializes once to measure bytes).
DocStats ComputeDocStats(const Document& doc);

}  // namespace xee::xml

#endif  // XEE_XML_DOC_STATS_H_
