#ifndef XEE_XML_TREE_H_
#define XEE_XML_TREE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace xee::xml {

/// Index of a node inside its Document's arena.
using NodeId = uint32_t;
/// Interned element-tag identifier, dense in [0, Document::TagCount()).
using TagId = uint32_t;

/// Sentinel for "no node" (e.g. the root's parent).
inline constexpr NodeId kNullNode = UINT32_MAX;

/// One attribute of an element node.
struct Attribute {
  std::string name;
  std::string value;
};

/// An ordered, in-memory XML tree.
///
/// Nodes live in an arena owned by the Document and are addressed by
/// NodeId. The tree is *ordered*: the order of a node's `children` vector
/// is sibling (document) order, which is what the paper's order axes are
/// defined over. Tags are interned to dense TagIds.
///
/// Construction contract: create the root first, then grow with
/// AppendChild. Call Finalize() once the shape is complete; it computes
/// pre/post-order intervals enabling O(1) document-order and ancestorship
/// tests. Structural mutation after Finalize() clears the finalized
/// state (order predicates then XEE_CHECK until Finalize() runs again).
class Document {
 public:
  Document() = default;

  // Arena-owning; copying would be an accident at our sizes.
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  /// Creates the root element. Must be the first node created.
  NodeId CreateRoot(std::string_view tag);

  /// Appends a new last child with tag `tag` under `parent`.
  NodeId AppendChild(NodeId parent, std::string_view tag);

  /// Appends text content to a node (concatenated across calls).
  void AppendText(NodeId node, std::string_view text);

  /// Adds an attribute to a node.
  void AddAttribute(NodeId node, std::string_view name,
                    std::string_view value);

  /// Interns `name` without creating a node; returns its TagId. Lets a
  /// compaction copy reproduce a source document's tag-id assignment
  /// before any nodes are appended (delta/ materialization).
  TagId EnsureTag(std::string_view name) { return InternTag(name); }

  /// Unlinks the subtree rooted at `n` from its parent. The arena slots
  /// stay allocated — NodeIds of the remaining tree are stable — but the
  /// subtree is no longer reachable from the root. Clears the finalized
  /// state. Returns false for the root, which cannot be detached.
  bool DetachSubtree(NodeId n);

  /// Computes pre-order intervals; idempotent. Must be called before
  /// IsBefore / IsAncestorOf / PreorderIndex.
  void Finalize();

  /// True once Finalize() has run on the current shape.
  bool finalized() const { return finalized_; }

  // --- Shape accessors -----------------------------------------------

  /// Root node; requires a non-empty document.
  NodeId root() const {
    XEE_CHECK(!nodes_.empty());
    return 0;
  }
  bool empty() const { return nodes_.empty(); }
  size_t NodeCount() const { return nodes_.size(); }

  NodeId Parent(NodeId n) const { return At(n).parent; }
  const std::vector<NodeId>& Children(NodeId n) const {
    return At(n).children;
  }
  TagId Tag(NodeId n) const { return At(n).tag; }
  const std::string& TagName(NodeId n) const { return tag_names_[At(n).tag]; }
  const std::string& Text(NodeId n) const { return At(n).text; }
  const std::vector<Attribute>& Attributes(NodeId n) const {
    return At(n).attributes;
  }
  /// 0-based position of `n` among its parent's children (0 for the root).
  size_t SiblingIndex(NodeId n) const { return At(n).sibling_index; }

  // --- Tag interning --------------------------------------------------

  /// Number of distinct element tags seen so far.
  size_t TagCount() const { return tag_names_.size(); }
  /// Name of an interned tag.
  const std::string& TagNameOf(TagId t) const {
    XEE_CHECK(t < tag_names_.size());
    return tag_names_[t];
  }
  /// Id of `name`, or nullopt if the tag never occurs in the document.
  std::optional<TagId> FindTag(std::string_view name) const;

  // --- Order / structure predicates (require Finalize()) --------------

  /// Position of `n` in a pre-order walk (root = 0).
  uint32_t PreorderIndex(NodeId n) const {
    XEE_CHECK(finalized_);
    return At(n).order_begin;
  }
  /// One past the pre-order position of `n`'s last descendant; the
  /// subtree of `n` spans [PreorderIndex(n), SubtreeEnd(n)).
  uint32_t SubtreeEnd(NodeId n) const {
    XEE_CHECK(finalized_);
    return At(n).order_end;
  }
  /// True iff `a` starts before `b` in document order (a != b allowed).
  bool IsBefore(NodeId a, NodeId b) const {
    XEE_CHECK(finalized_);
    return At(a).order_begin < At(b).order_begin;
  }
  /// True iff `a` is a proper ancestor of `b`.
  bool IsAncestorOf(NodeId a, NodeId b) const {
    XEE_CHECK(finalized_);
    return At(a).order_begin < At(b).order_begin &&
           At(b).order_end <= At(a).order_end;
  }

  /// Depth of `n` (root = 0).
  size_t Depth(NodeId n) const;

 private:
  struct Node {
    TagId tag = 0;
    NodeId parent = kNullNode;
    uint32_t sibling_index = 0;
    uint32_t order_begin = 0;  // pre-order index
    uint32_t order_end = 0;    // 1 + pre-order index of last descendant
    std::vector<NodeId> children;
    std::string text;
    std::vector<Attribute> attributes;
  };

  const Node& At(NodeId n) const {
    XEE_CHECK(n < nodes_.size());
    return nodes_[n];
  }
  Node& At(NodeId n) {
    XEE_CHECK(n < nodes_.size());
    return nodes_[n];
  }

  TagId InternTag(std::string_view name);

  std::vector<Node> nodes_;
  std::vector<std::string> tag_names_;
  std::unordered_map<std::string, TagId> tag_ids_;
  bool finalized_ = false;
};

}  // namespace xee::xml

#endif  // XEE_XML_TREE_H_
