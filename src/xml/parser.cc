#include "xml/parser.h"

#include <cctype>
#include <string>

#include "common/strings.h"

namespace xee::xml {
namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

/// Recursive-descent XML parser over a string_view. Tracks line numbers
/// for error messages; builds directly into a Document.
class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : in_(input), options_(options) {}

  Result<Document> Parse() {
    SkipProlog();
    if (AtEnd()) return Error("no root element");
    if (Peek() != '<') return Error("content before root element");
    Status s = ParseElement(kNullNode);
    if (!s.ok()) return s;
    SkipMisc();
    if (!AtEnd()) return Error("trailing content after root element");
    doc_.Finalize();
    return std::move(doc_);
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < in_.size() ? in_[pos_ + off] : '\0';
  }
  void Advance() {
    if (in_[pos_] == '\n') ++line_;
    ++pos_;
  }
  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    Advance();
    return true;
  }
  bool ConsumeSeq(std::string_view seq) {
    if (in_.substr(pos_).substr(0, seq.size()) != seq) return false;
    for (size_t i = 0; i < seq.size(); ++i) Advance();
    return true;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(const std::string& msg) const {
    return Status(StatusCode::kParseError,
                  StrFormat("line %zu: %s", line_, msg.c_str()));
  }

  /// Skips the XML declaration, DOCTYPE, comments, PIs and whitespace
  /// before the root element.
  void SkipProlog() {
    while (true) {
      SkipWhitespace();
      if (ConsumeSeq("<?")) {
        SkipUntil("?>");
      } else if (ConsumeSeq("<!--")) {
        SkipUntil("-->");
      } else if (ConsumeSeq("<!DOCTYPE")) {
        SkipDoctype();
      } else {
        return;
      }
    }
  }

  /// Skips comments, PIs and whitespace after the root element.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (ConsumeSeq("<?")) {
        SkipUntil("?>");
      } else if (ConsumeSeq("<!--")) {
        SkipUntil("-->");
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view terminator) {
    while (!AtEnd() && !ConsumeSeq(terminator)) Advance();
  }

  void SkipDoctype() {
    // Already consumed "<!DOCTYPE". Skip to the matching '>', honoring an
    // optional internal subset in [...].
    int bracket_depth = 0;
    while (!AtEnd()) {
      char c = Peek();
      Advance();
      if (c == '[') {
        ++bracket_depth;
      } else if (c == ']') {
        --bracket_depth;
      } else if (c == '>' && bracket_depth <= 0) {
        return;
      }
    }
  }

  Status ParseName(std::string* out) {
    if (AtEnd() || !IsNameStartChar(Peek())) return Error("expected a name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    *out = std::string(in_.substr(start, pos_ - start));
    return Status::Ok();
  }

  /// Decodes an entity reference starting after '&'. Appends to `out`.
  Status ParseEntity(std::string* out) {
    size_t amp_line = line_;
    size_t start = pos_;
    while (!AtEnd() && Peek() != ';' && pos_ - start < 12) Advance();
    if (AtEnd() || Peek() != ';') {
      return Status(StatusCode::kParseError,
                    StrFormat("line %zu: unterminated entity", amp_line));
    }
    std::string name(in_.substr(start, pos_ - start));
    Advance();  // ';'
    if (name == "lt") {
      *out += '<';
    } else if (name == "gt") {
      *out += '>';
    } else if (name == "amp") {
      *out += '&';
    } else if (name == "quot") {
      *out += '"';
    } else if (name == "apos") {
      *out += '\'';
    } else if (!name.empty() && name[0] == '#') {
      int base = 10;
      size_t digits_at = 1;
      if (name.size() > 1 && (name[1] == 'x' || name[1] == 'X')) {
        base = 16;
        digits_at = 2;
      }
      char* end = nullptr;
      long code = std::strtol(name.c_str() + digits_at, &end, base);
      if (end == name.c_str() + digits_at || *end != '\0' || code <= 0) {
        return Error("bad character reference &" + name + ";");
      }
      AppendUtf8(static_cast<uint32_t>(code), out);
    } else {
      // Unknown general entity (e.g. from a DTD we did not read): keep
      // the reference literally rather than failing the whole parse.
      *out += '&';
      *out += name;
      *out += ';';
    }
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Status ParseAttributeValue(std::string* out) {
    char quote = Peek();
    if (quote != '"' && quote != '\'') return Error("expected quoted value");
    Advance();
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        Advance();
        Status s = ParseEntity(out);
        if (!s.ok()) return s;
      } else {
        *out += Peek();
        Advance();
      }
    }
    if (!Consume(quote)) return Error("unterminated attribute value");
    return Status::Ok();
  }

  /// Parses one element (assumes Peek() == '<' at a start tag).
  Status ParseElement(NodeId parent) {
    Advance();  // '<'
    std::string tag;
    Status s = ParseName(&tag);
    if (!s.ok()) return s;

    NodeId node = parent == kNullNode ? doc_.CreateRoot(tag)
                                      : doc_.AppendChild(parent, tag);

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag <" + tag);
      if (Peek() == '>' || Peek() == '/') break;
      std::string attr_name;
      s = ParseName(&attr_name);
      if (!s.ok()) return s;
      SkipWhitespace();
      if (!Consume('=')) return Error("expected '=' after attribute name");
      SkipWhitespace();
      std::string attr_value;
      s = ParseAttributeValue(&attr_value);
      if (!s.ok()) return s;
      if (options_.keep_attributes) {
        doc_.AddAttribute(node, attr_name, attr_value);
      }
    }

    if (ConsumeSeq("/>")) return Status::Ok();
    if (!Consume('>')) return Error("expected '>' in start tag <" + tag);

    // Content.
    std::string text;
    while (true) {
      if (AtEnd()) return Error("missing end tag </" + tag + ">");
      char c = Peek();
      if (c == '<') {
        if (ConsumeSeq("</")) {
          std::string end_tag;
          s = ParseName(&end_tag);
          if (!s.ok()) return s;
          SkipWhitespace();
          if (!Consume('>')) return Error("malformed end tag </" + end_tag);
          if (end_tag != tag) {
            return Error("mismatched end tag </" + end_tag + ">, expected </" +
                         tag + ">");
          }
          break;
        } else if (ConsumeSeq("<!--")) {
          SkipUntil("-->");
        } else if (ConsumeSeq("<![CDATA[")) {
          size_t start = pos_;
          while (!AtEnd() && in_.substr(pos_, 3) != "]]>") Advance();
          if (AtEnd()) return Error("unterminated CDATA section");
          text.append(in_.substr(start, pos_ - start));
          ConsumeSeq("]]>");
        } else if (ConsumeSeq("<?")) {
          SkipUntil("?>");
        } else {
          s = ParseElement(node);
          if (!s.ok()) return s;
        }
      } else if (c == '&') {
        Advance();
        s = ParseEntity(&text);
        if (!s.ok()) return s;
      } else {
        text += c;
        Advance();
      }
    }
    if (options_.keep_text) {
      // Trim pure-indentation whitespace; keep mixed content verbatim.
      bool all_space = true;
      for (char c : text) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          all_space = false;
          break;
        }
      }
      if (!all_space) doc_.AppendText(node, text);
    }
    return Status::Ok();
  }

  std::string_view in_;
  ParseOptions options_;
  size_t pos_ = 0;
  size_t line_ = 1;
  Document doc_;
};

}  // namespace

Result<Document> ParseXml(std::string_view input, const ParseOptions& options) {
  return Parser(input, options).Parse();
}

}  // namespace xee::xml
