#include "xml/writer.h"

namespace xee::xml {
namespace {

void EscapeInto(std::string_view raw, std::string* out) {
  for (char c : raw) {
    switch (c) {
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '&':
        *out += "&amp;";
        break;
      case '"':
        *out += "&quot;";
        break;
      default:
        *out += c;
    }
  }
}

void WriteNode(const Document& doc, NodeId n, const WriteOptions& options,
               size_t depth, std::string* out) {
  auto indent = [&] {
    if (options.pretty) out->append(2 * depth, ' ');
  };
  indent();
  *out += '<';
  *out += doc.TagName(n);
  for (const Attribute& a : doc.Attributes(n)) {
    *out += ' ';
    *out += a.name;
    *out += "=\"";
    EscapeInto(a.value, out);
    *out += '"';
  }
  const auto& children = doc.Children(n);
  const std::string& text = doc.Text(n);
  if (children.empty() && text.empty()) {
    *out += "/>";
    if (options.pretty) *out += '\n';
    return;
  }
  *out += '>';
  EscapeInto(text, out);
  if (!children.empty()) {
    if (options.pretty) *out += '\n';
    for (NodeId c : children) WriteNode(doc, c, options, depth + 1, out);
    indent();
  }
  *out += "</";
  *out += doc.TagName(n);
  *out += '>';
  if (options.pretty) *out += '\n';
}

}  // namespace

std::string WriteXml(const Document& doc, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    out += options.pretty ? "\n" : "";
  }
  if (!doc.empty()) WriteNode(doc, doc.root(), options, 0, &out);
  return out;
}

size_t SerializedSize(const Document& doc, const WriteOptions& options) {
  // Straightforward: serialize and measure. Documents in this project are
  // at most tens of MB, so the temporary is acceptable.
  return WriteXml(doc, options).size();
}

}  // namespace xee::xml
