#ifndef XEE_XML_PARSER_H_
#define XEE_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/tree.h"

namespace xee::xml {

/// Options controlling what the parser materializes.
struct ParseOptions {
  /// Keep character data on nodes. Estimation ignores text, so turning
  /// this off saves memory on large inputs.
  bool keep_text = true;
  /// Keep attributes on nodes.
  bool keep_attributes = true;
};

/// Parses an XML document from `input` into an ordered tree.
///
/// Non-validating: accepts well-formed element structure with attributes,
/// character data, CDATA sections, comments, processing instructions, an
/// optional XML declaration and DOCTYPE (the internal subset is skipped),
/// and the five predefined entities plus numeric character references.
/// Returns a parse error (with line number) on mismatched tags, stray
/// markup, or trailing content. The returned document is Finalize()d.
Result<Document> ParseXml(std::string_view input,
                          const ParseOptions& options = {});

}  // namespace xee::xml

#endif  // XEE_XML_PARSER_H_
