#include "xml/doc_stats.h"

#include "common/strings.h"
#include "xml/writer.h"

namespace xee::xml {

std::string DocStats::ToString() const {
  return StrFormat(
      "size=%s distinct_tags=%zu elements=%zu max_depth=%zu avg_fanout=%.2f",
      HumanBytes(serialized_bytes).c_str(), distinct_elements, element_count,
      max_depth, avg_fanout);
}

DocStats ComputeDocStats(const Document& doc) {
  DocStats s;
  if (doc.empty()) return s;
  s.serialized_bytes = SerializedSize(doc);
  s.distinct_elements = doc.TagCount();
  s.element_count = doc.NodeCount();
  size_t non_leaf = 0, total_children = 0;
  for (NodeId n = 0; n < doc.NodeCount(); ++n) {
    size_t fanout = doc.Children(n).size();
    if (fanout > 0) {
      ++non_leaf;
      total_children += fanout;
    }
    size_t d = doc.Depth(n);
    if (d > s.max_depth) s.max_depth = d;
  }
  s.avg_fanout = non_leaf == 0 ? 0
                               : static_cast<double>(total_children) /
                                     static_cast<double>(non_leaf);
  return s;
}

}  // namespace xee::xml
