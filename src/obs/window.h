#ifndef XEE_OBS_WINDOW_H_
#define XEE_OBS_WINDOW_H_

#include <cstdint>

#include "obs/metrics.h"

/// Windowed scraping over the cumulative metrics in obs/metrics.h.
/// Counters and histograms only ever accumulate; a time-series consumer
/// (the traffic simulator's trajectory rows, a metrics poller) wants
/// per-window deltas — "what happened since I last looked" — with real
/// quantiles for the histogram windows, not quantiles-of-everything-
/// so-far. Each *Window object remembers the previous scrape and
/// returns the difference; the metrics themselves are never touched, so
/// any number of independent scrapers can watch one registry.
///
/// Not thread-safe: one scraper is one reader's cursor. Under
/// XEE_OBS_OFF the histograms are no-ops, so windows degrade to empty
/// snapshots exactly like Snap() does.
namespace xee::obs {

/// Delta cursor over any monotonically increasing counter value.
/// Feed it Counter::value() (or Registry::CounterValue) each window.
class CounterWindow {
 public:
  /// The increase since the previous Advance (the full value on first
  /// call). A cumulative value that went backwards — a reset metric —
  /// re-bases and reports 0 rather than underflowing.
  uint64_t Advance(uint64_t cumulative) {
    const uint64_t delta = cumulative >= prev_ ? cumulative - prev_ : 0;
    prev_ = cumulative;
    return delta;
  }

 private:
  uint64_t prev_ = 0;
};

#ifndef XEE_OBS_OFF

/// Delta cursor over one Histogram: Advance returns a snapshot —
/// count, mean, quantiles — of only the values recorded since the
/// previous Advance. Costs one shard merge (~4 × 496 relaxed loads)
/// plus the quantile scan per call; sized for once-per-window scraping,
/// not per-request paths.
class HistogramWindow {
 public:
  HistogramSnapshot Advance(const Histogram& h) {
    uint64_t cur[HistogramBuckets::kBuckets];
    const uint64_t sum = h.SnapBuckets(cur);
    uint64_t delta[HistogramBuckets::kBuckets];
    for (int b = 0; b < HistogramBuckets::kBuckets; ++b) {
      // Per-bucket clamp: shard merges under concurrent writes can
      // transiently read a bucket lower than a previous merge did.
      delta[b] = cur[b] >= prev_[b] ? cur[b] - prev_[b] : 0;
      prev_[b] = cur[b];
    }
    const uint64_t dsum = sum >= prev_sum_ ? sum - prev_sum_ : 0;
    prev_sum_ = sum;
    return SnapshotFromBuckets(delta, dsum);
  }

 private:
  uint64_t prev_[HistogramBuckets::kBuckets] = {};
  uint64_t prev_sum_ = 0;
};

#else  // XEE_OBS_OFF

class HistogramWindow {
 public:
  HistogramSnapshot Advance(const Histogram&) { return {}; }
};

#endif  // XEE_OBS_OFF

}  // namespace xee::obs

#endif  // XEE_OBS_WINDOW_H_
