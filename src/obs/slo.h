#ifndef XEE_OBS_SLO_H_
#define XEE_OBS_SLO_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"

/// Declarative SLO engine with multi-window burn-rate alerting
/// (DESIGN.md §16). Each SloSpec names the time-series it reads and an
/// objective; Evaluate() computes a fast-window and a slow-window burn
/// rate and drives a deterministic per-SLO alert state machine:
///
///   inactive -> firing -> active -> resolved -> inactive
///
/// The burn rate is error_rate / error_budget for availability-style
/// SLOs (budget = 1 - objective) and worst_value / objective for
/// threshold-style SLOs (latency p99, q-error gauges), so "burn 1.0"
/// always means "exactly consuming the objective". An alert needs the
/// fast AND the slow window over their thresholds to fire — the classic
/// multi-window guard: the fast window gives low detection latency, the
/// slow window keeps one bad scrape from paging — and it resolves as
/// soon as either window recovers. Transitions conserve: over any run,
/// fired == resolved + currently-burning, which the simulator checks as
/// a drain invariant.
///
/// Everything is driver-clocked through the TimeSeriesStore, so a
/// virtual-time trajectory produces bit-identical alert transitions.
/// Under XEE_OBS_OFF the engine compiles to inline no-ops.
namespace xee::obs {

enum class SloKind : uint8_t {
  /// 1 - bad/total over the window must stay >= objective.
  /// Reads total_series and bad_series (delta series, summed).
  kAvailability = 0,
  /// The worst value_series point in the window must stay <= objective
  /// (per-interval p99 sub-series, units of the series).
  kLatency = 1,
  /// Like kLatency for an arbitrary level series (q-error gauges).
  kThreshold = 2,
};

inline std::string_view SloKindName(SloKind k) {
  switch (k) {
    case SloKind::kAvailability: return "availability";
    case SloKind::kLatency: return "latency";
    case SloKind::kThreshold: return "threshold";
  }
  return "unknown";
}

struct SloSpec {
  std::string name;  ///< alert identity, e.g. "availability"
  SloKind kind = SloKind::kAvailability;
  /// Availability target in [0,1) for kAvailability; the value ceiling
  /// (series units) for kLatency/kThreshold.
  double objective = 0.999;
  /// kAvailability inputs: total events and bad events per interval.
  std::string total_series;
  std::vector<std::string> bad_series;
  /// kLatency/kThreshold input.
  std::string value_series;
  /// The two windows and their burn thresholds. Threshold-style SLOs
  /// express "value over objective" as a burn ratio too, so 1.0 means
  /// "at the objective"; availability defaults follow the standard
  /// fast-page/slow-page split.
  uint64_t fast_window_us = 5'000'000;
  uint64_t slow_window_us = 30'000'000;
  double fast_burn = 14.0;
  double slow_burn = 6.0;
};

enum class AlertState : uint8_t {
  kInactive = 0,
  kFiring = 1,    ///< burn condition just became true
  kActive = 2,    ///< still true on a later evaluation
  kResolved = 3,  ///< condition cleared; decays to inactive next eval
};

inline std::string_view AlertStateName(AlertState s) {
  switch (s) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kFiring: return "firing";
    case AlertState::kActive: return "active";
    case AlertState::kResolved: return "resolved";
  }
  return "unknown";
}

/// Point-in-time view of one SLO's alert.
struct AlertStatus {
  std::string slo;
  SloKind kind = SloKind::kAvailability;
  AlertState state = AlertState::kInactive;
  double objective = 0;
  double fast_burn = 0;  ///< last evaluated burn rates
  double slow_burn = 0;
  uint64_t fired = 0;    ///< cumulative inactive/resolved -> firing
  uint64_t resolved = 0; ///< cumulative firing/active -> resolved
  uint64_t since_us = 0; ///< evaluation time of the last state change
};

#ifndef XEE_OBS_OFF

/// Thread-safety: Evaluate and the read-side methods may be called from
/// any thread; one mutex guards the alert table.
class SloEngine {
 public:
  /// `ts` and `registry` must outlive the engine. Transition counters
  /// register as "slo.alert{slo=NAME,transition=fired|resolved}".
  SloEngine(const TimeSeriesStore* ts, Registry* registry,
            std::vector<SloSpec> specs);

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Observes every state transition (flight-recorder wiring). Called
  /// under the engine mutex — keep it cheap and non-reentrant.
  using TransitionHook = std::function<void(
      const SloSpec&, AlertState from, AlertState to, uint64_t now_us)>;
  void SetTransitionHook(TransitionHook hook);

  /// Re-evaluates every SLO against the time-series at `now_us`.
  /// Deterministic: equal series content and equal evaluation times
  /// produce equal transitions.
  void Evaluate(uint64_t now_us);

  uint64_t evaluations() const;
  std::vector<AlertStatus> Alerts() const;
  /// Sum over SLOs, for conservation checks: fired == resolved + the
  /// number of alerts currently firing or active.
  uint64_t TotalFired() const;
  uint64_t TotalResolved() const;
  uint64_t BurningCount() const;

  /// The .alertz rendering: evaluations plus one object per SLO with
  /// spec, live burn rates, state, and transition counters.
  std::string ToJson() const;

 private:
  struct AlertSlot {
    SloSpec spec;
    AlertState state = AlertState::kInactive;
    double fast_burn = 0;
    double slow_burn = 0;
    uint64_t fired = 0;
    uint64_t resolved = 0;
    uint64_t since_us = 0;
    Counter* fired_counter = nullptr;
    Counter* resolved_counter = nullptr;
  };

  double BurnOver(const SloSpec& spec, uint64_t window_us,
                  uint64_t now_us) const;
  void Transition(AlertSlot* slot, AlertState to, uint64_t now_us);

  const TimeSeriesStore* ts_;

  mutable std::mutex mu_;
  std::vector<AlertSlot> alerts_;  // guarded by mu_
  uint64_t evaluations_ = 0;       // guarded by mu_
  TransitionHook hook_;            // guarded by mu_
};

#else  // XEE_OBS_OFF: the engine compiles out entirely.

class SloEngine {
 public:
  SloEngine(const TimeSeriesStore*, Registry*, std::vector<SloSpec>) {}
  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;
  using TransitionHook = std::function<void(
      const SloSpec&, AlertState from, AlertState to, uint64_t now_us)>;
  void SetTransitionHook(TransitionHook) {}
  void Evaluate(uint64_t) {}
  uint64_t evaluations() const { return 0; }
  std::vector<AlertStatus> Alerts() const { return {}; }
  uint64_t TotalFired() const { return 0; }
  uint64_t TotalResolved() const { return 0; }
  uint64_t BurningCount() const { return 0; }
  std::string ToJson() const {
    return "{\"enabled\":false,\"evaluations\":0,\"alerts\":[]}";
  }
};

#endif  // XEE_OBS_OFF

}  // namespace xee::obs

#endif  // XEE_OBS_SLO_H_
