#ifndef XEE_OBS_OFF

#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace xee::obs {

TraceRing::TraceRing(size_t capacity, uint64_t slow_threshold_ns)
    : capacity_(capacity < 1 ? 1 : capacity),
      tail_capacity_(std::max<size_t>(16, capacity_ / 2)),
      slow_threshold_ns_(slow_threshold_ns) {}

void TraceRing::Push(std::vector<TraceRecord>* ring, size_t* pos, size_t cap,
                     TraceRecord rec) {
  if (ring->size() < cap) {
    ring->push_back(std::move(rec));
    *pos = ring->size() % cap;
    return;
  }
  (*ring)[*pos] = std::move(rec);
  *pos = (*pos + 1) % cap;
}

void TraceRing::Record(TraceRecord rec) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  const bool tail = !rec.tail_class.empty();
  if (tail) tail_recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  rec.seq = ++seq_;
  if (rec.total_ns > 0) {
    const int bucket = HistogramBuckets::BucketOf(rec.total_ns);
    TraceExemplar& ex = exemplars_[bucket / HistogramBuckets::kSub];
    ex.seq = rec.seq;
    ex.total_ns = rec.total_ns;
    ex.bucket = bucket;
    ex.outcome = rec.outcome;
  }
  // Exactly one ring per record: the completion-time classification
  // decides which, so a request can never be double-retained.
  if (tail) {
    Push(&tail_ring_, &tail_pos_, tail_capacity_, std::move(rec));
  } else {
    Push(&ring_, &pos_, capacity_, std::move(rec));
  }
}

std::vector<TraceRecord> TraceRing::Ordered(
    const std::vector<TraceRecord>& ring, size_t pos, size_t max) const {
  // ring[pos..) then ring[0..pos) is oldest-to-newest once the ring has
  // wrapped; before wrapping pos == size, so the rotation is the
  // identity and insertion order (already oldest-first) is preserved.
  std::vector<TraceRecord> out;
  out.reserve(ring.size());
  for (size_t i = 0; i < ring.size(); ++i) {
    out.push_back(ring[(pos + i) % ring.size()]);
  }
  if (out.size() > max) {
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(max));
  }
  return out;
}

std::vector<TraceRecord> TraceRing::Recent(size_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  return Ordered(ring_, pos_, max);
}

std::vector<TraceRecord> TraceRing::Tail(size_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  return Ordered(tail_ring_, tail_pos_, max);
}

std::vector<TraceExemplar> TraceRing::Exemplars() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceExemplar> out;
  for (const TraceExemplar& ex : exemplars_) {
    if (ex.seq != 0) out.push_back(ex);
  }
  return out;
}

namespace {

void AppendTraceJson(const TraceRecord& t, std::string* out) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"seq\":%llu,\"total_ns\":%llu,\"synopsis\":\"",
                static_cast<unsigned long long>(t.seq),
                static_cast<unsigned long long>(t.total_ns));
  *out += buf;
  *out += JsonEscape(t.synopsis);
  *out += "\",\"query\":\"";
  *out += JsonEscape(t.query);
  *out += "\",\"outcome\":\"";
  *out += JsonEscape(t.outcome);
  *out += "\",\"tail\":\"";
  *out += JsonEscape(t.tail_class);
  *out += "\",\"degraded\":";
  *out += t.degraded ? "true" : "false";
  *out += ",\"stages_ns\":{";
  bool first = true;
  for (size_t i = 0; i < kStageCount; ++i) {
    if (t.spans.stage_ns[i] == 0) continue;
    if (!first) out->push_back(',');
    first = false;
    std::snprintf(buf, sizeof(buf), "\"%s\":%llu",
                  std::string(StageName(static_cast<Stage>(i))).c_str(),
                  static_cast<unsigned long long>(t.spans.stage_ns[i]));
    *out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "},\"containment_tests\":%llu,\"join_probes\":%llu,"
                "\"fixpoint_rounds\":%llu}",
                static_cast<unsigned long long>(t.spans.containment_tests),
                static_cast<unsigned long long>(t.spans.join_probes),
                static_cast<unsigned long long>(t.spans.fixpoint_rounds));
  *out += buf;
}

}  // namespace

std::string TraceRing::ToJson(size_t max) const {
  std::string out = "{\"recent\":[";
  bool first = true;
  for (const TraceRecord& t : Recent(max)) {
    if (!first) out.push_back(',');
    first = false;
    AppendTraceJson(t, &out);
  }
  out += "],\"tail\":[";
  first = true;
  for (const TraceRecord& t : Tail(max)) {
    if (!first) out.push_back(',');
    first = false;
    AppendTraceJson(t, &out);
  }
  out += "],\"exemplars\":[";
  first = true;
  char buf[160];
  for (const TraceExemplar& ex : Exemplars()) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"bucket_ns\":%llu,\"seq\":%llu,\"total_ns\":%llu,"
                  "\"outcome\":\"",
                  static_cast<unsigned long long>(
                      HistogramBuckets::BucketBound(ex.bucket)),
                  static_cast<unsigned long long>(ex.seq),
                  static_cast<unsigned long long>(ex.total_ns));
    out += buf;
    out += JsonEscape(ex.outcome);
    out += "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace xee::obs

#endif  // XEE_OBS_OFF
