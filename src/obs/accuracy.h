#ifndef XEE_OBS_ACCURACY_H_
#define XEE_OBS_ACCURACY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

/// Accuracy observability (DESIGN.md §11): the estimate -> ground-truth
/// feedback loop. The serving layer samples 1-in-N successful requests
/// and re-runs them through the exact evaluator *off the hot path*; the
/// AccuracyTracker below turns those shadow results into
///
///   - per-query-class error statistics: exact accumulators (signed
///     relative error, |relative error|, q-error) plus log-bucketed
///     obs::Histograms for quantiles, labeled by QueryClass;
///   - per-synopsis drift state: an EWMA of q-error that, past a
///     sample-count gate, flips the synopsis to a `stale` health
///     verdict (the caller carries it into the SynopsisRegistry).
///     Verdict transitions are counted as `accuracy.drift`
///     {transition=stale|recovered}: a conviction, and its clearing by
///     a new epoch (a rebuild publish or re-registration) — the pair
///     that makes a self-healing round trip auditable after the fact;
///   - a bounded worst-offenders ring (top-K sampled queries by
///     q-error) for error attribution, same spirit as the slow-trace
///     ring;
///   - conservation counters: every sampled request ends in exactly one
///     of recorded / skipped_no_document / deadline_suppressed /
///     backlog_suppressed / eval_error.
///
/// Under XEE_OBS_OFF the whole tracker compiles to inline no-ops whose
/// ShouldSample() is always false, so the serving layer's shadow branch
/// is dead code and no shadow evaluation ever runs.
namespace xee::obs {

/// The query-class label dimensions the accuracy histograms are keyed
/// by. Plain data in both build modes (like TraceSpans): the serving
/// layer classifies the canonical query, the tracker only renders the
/// label. `axis` folds the order dimension in because an order
/// constraint changes which estimation formulas run — the paper's
/// figures split exactly along this line.
struct QueryClass {
  bool order = false;       ///< any order constraint (Figs. 12/13 regime)
  bool descendant = false;  ///< any '//' axis among the steps
  bool branched = false;    ///< some node has >= 2 children (twig, not chain)
  bool predicate = false;   ///< any value predicate `[.="..."]`
  int depth = 0;            ///< query node count

  std::string_view AxisName() const {
    return order ? "order" : descendant ? "desc" : "child";
  }
  std::string_view DepthBucket() const {
    return depth <= 4 ? "1-4" : depth <= 8 ? "5-8" : "9+";
  }
  /// The histogram label, e.g. "axis=desc,shape=chain,pred=0,depth=5-8".
  std::string Label() const {
    std::string out = "axis=";
    out += AxisName();
    out += branched ? ",shape=branch" : ",shape=chain";
    out += predicate ? ",pred=1" : ",pred=0";
    out += ",depth=";
    out += DepthBucket();
    return out;
  }
};

/// Tracker knobs. The serving layer maps its ServiceOptions onto this.
struct AccuracyOptions {
  /// Shadow-sample 1-in-N eligible requests (1 = every one, 0 = off).
  size_t sample = 256;
  /// Seed of the sampling decision: equal seeds over equal request
  /// sequences sample the same positions (tests pin this).
  uint64_t seed = 0xacc5eed;
  /// EWMA q-error above which a synopsis turns stale...
  double drift_qerror_limit = 2.0;
  /// ...once it has at least this many shadow samples in its current
  /// epoch (prevents one unlucky early sample from tripping the alarm).
  uint64_t drift_min_samples = 32;
  /// EWMA smoothing factor (weight of the newest sample).
  double drift_alpha = 0.05;
  /// Bound on in-flight + queued shadow evaluations; excess samples are
  /// dropped as backlog_suppressed rather than queueing without limit.
  size_t max_pending = 64;
  /// Worst-offenders ring capacity (top-K by q-error).
  size_t offender_capacity = 16;
};

/// Point-in-time view of one query class's error statistics. Means are
/// exact (double accumulators), not histogram-bucket approximations —
/// the golden shadow test reproduces the accuracy-regression means from
/// these to 1e-9.
struct ClassAccuracy {
  std::string label;
  uint64_t count = 0;
  double mean_signed_error = 0;  ///< mean of (est - truth) / max(truth, 1)
  double mean_abs_error = 0;     ///< mean of |est - truth| / max(truth, 1)
  double mean_qerror = 0;        ///< mean of max(e,t)/min(e,t), floored at 1
  double max_qerror = 0;
};

/// Point-in-time drift state of one synopsis.
struct SynopsisAccuracy {
  std::string name;
  uint64_t epoch = 0;    ///< registry epoch the samples belong to
  uint64_t samples = 0;  ///< shadow samples recorded in this epoch
  double ewma_qerror = 0;
  bool stale = false;
};

/// One entry of the worst-offenders ring.
struct AccuracyOffender {
  std::string synopsis;
  std::string query;
  std::string label;  ///< QueryClass::Label() of the query
  double estimate = 0;
  double truth = 0;
  double qerror = 0;
  uint64_t seq = 0;  ///< recording order, for stable display
};

/// Shared error math (live in both build modes, like HistogramBuckets).
/// Both floor the operands at 1: workloads prune negative queries, but
/// live traffic can ask queries with zero truth or get sub-1 estimates,
/// and monitoring must not divide by zero for them.
struct AccuracyMath {
  static double QError(double estimate, double truth) {
    const double e = estimate < 1.0 ? 1.0 : estimate;
    const double t = truth < 1.0 ? 1.0 : truth;
    return e > t ? e / t : t / e;
  }
  static double SignedRelError(double estimate, double truth) {
    const double t = truth < 1.0 ? 1.0 : truth;
    return (estimate - truth) / t;
  }
};

#ifndef XEE_OBS_OFF

/// The live tracker. Thread-safety: every method may be called
/// concurrently; the sampling decision is one relaxed atomic, the
/// recording path takes a mutex (it runs at 1-in-sample of traffic, off
/// the caller's critical path, so contention is structural noise).
class AccuracyTracker {
 public:
  /// Metrics register into `registry` (the owning service's): counters
  /// "accuracy.samples{phase=...}" and per-class histograms
  /// "accuracy.qerror_milli{...}" / "accuracy.error_ppm{dir=...,...}".
  /// `registry` must outlive the tracker.
  AccuracyTracker(Registry* registry, AccuracyOptions options);

  AccuracyTracker(const AccuracyTracker&) = delete;
  AccuracyTracker& operator=(const AccuracyTracker&) = delete;

  bool enabled() const { return options_.sample != 0; }
  const AccuracyOptions& options() const { return options_; }

  /// The seeded per-request sampling decision; counts `started` when
  /// true. Deterministic: the k-th call returns the same answer for
  /// equal (seed, sample) regardless of wall clock or thread timing
  /// (under concurrency, *which* request gets the k-th tick may vary,
  /// but the set of sampled ticks does not).
  bool ShouldSample();

  /// Admission of one sampled request into the bounded shadow backlog;
  /// false (counting backlog_suppressed) when max_pending are already
  /// pending. Every true must be balanced by exactly one EndShadow.
  bool TryBeginShadow();
  void EndShadow();
  uint64_t pending() const {
    return pending_.load(std::memory_order_relaxed);
  }

  // Terminal accounting for a sampled request that never produced a
  // shadow result (each closes one `started`).
  void SkipNoDocument();       ///< synopsis has no registered Document
  void SuppressDeadline();     ///< request deadline expired before shadow ran
  void SkipEvalError();        ///< exact evaluator / re-parse refused the query

  /// Folds one shadow result in: exact class accumulators, class
  /// histograms, the synopsis's drift EWMA, and the offender ring.
  /// Samples carrying an epoch other than the synopsis's current drift
  /// epoch reset its state first (a re-registered synopsis starts
  /// clean). Returns the synopsis's drift state after this sample — the
  /// caller turns it into a health verdict once `samples` clears the
  /// drift_min_samples gate.
  SynopsisAccuracy Record(const std::string& synopsis, uint64_t epoch,
                          const QueryClass& cls, std::string_view query,
                          double estimate, double truth);

  /// Snapshots, each sorted for stable rendering.
  std::vector<ClassAccuracy> Classes() const;
  std::vector<SynopsisAccuracy> Synopses() const;
  std::optional<SynopsisAccuracy> SynopsisState(std::string_view name) const;
  /// Worst offenders, highest q-error first.
  std::vector<AccuracyOffender> Offenders() const;

  /// The "accuracy" section of STATSZ / the ACCZ payload: options,
  /// conservation counters, per-class stats, per-synopsis drift, and
  /// the offender ring (queries JSON-escaped).
  std::string ToJson() const;

 private:
  struct ClassState {
    uint64_t count = 0;
    double sum_signed = 0;
    double sum_abs = 0;
    double sum_qerror = 0;
    double max_qerror = 0;
    Histogram* qerror_milli = nullptr;
    Histogram* over_ppm = nullptr;
    Histogram* under_ppm = nullptr;
  };
  struct DriftState {
    uint64_t epoch = 0;
    uint64_t samples = 0;
    double ewma = 0;
    bool stale = false;
  };

  AccuracyOptions options_;
  Registry* registry_;

  Counter& started_;
  Counter& recorded_;
  Counter& skipped_no_document_;
  Counter& deadline_suppressed_;
  Counter& backlog_suppressed_;
  Counter& eval_error_;

  std::atomic<uint64_t> tick_{0};
  std::atomic<uint64_t> pending_{0};

  mutable std::mutex mu_;
  std::map<std::string, ClassState> classes_;       // guarded by mu_
  std::map<std::string, DriftState> drift_;         // guarded by mu_
  std::vector<AccuracyOffender> offenders_;         // guarded by mu_
  uint64_t offender_seq_ = 0;                       // guarded by mu_
};

#else  // XEE_OBS_OFF: shadow evaluation compiles out entirely.

class AccuracyTracker {
 public:
  AccuracyTracker(Registry*, AccuracyOptions options)
      : options_(options) {}
  AccuracyTracker(const AccuracyTracker&) = delete;
  AccuracyTracker& operator=(const AccuracyTracker&) = delete;

  bool enabled() const { return false; }
  const AccuracyOptions& options() const { return options_; }
  bool ShouldSample() { return false; }
  bool TryBeginShadow() { return false; }
  void EndShadow() {}
  uint64_t pending() const { return 0; }
  void SkipNoDocument() {}
  void SuppressDeadline() {}
  void SkipEvalError() {}
  SynopsisAccuracy Record(const std::string&, uint64_t, const QueryClass&,
                          std::string_view, double, double) {
    return {};
  }
  std::vector<ClassAccuracy> Classes() const { return {}; }
  std::vector<SynopsisAccuracy> Synopses() const { return {}; }
  std::optional<SynopsisAccuracy> SynopsisState(std::string_view) const {
    return std::nullopt;
  }
  std::vector<AccuracyOffender> Offenders() const { return {}; }
  std::string ToJson() const { return "{\"enabled\":false}"; }

 private:
  AccuracyOptions options_;
};

#endif  // XEE_OBS_OFF

}  // namespace xee::obs

#endif  // XEE_OBS_ACCURACY_H_
