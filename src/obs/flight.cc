#ifndef XEE_OBS_OFF

#include "obs/flight.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace xee::obs {

namespace {

void AppendUint(uint64_t v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

}  // namespace

FlightRecorder::FlightRecorder(size_t bytes, size_t max_strings)
    : max_strings_(max_strings) {
  static_assert(sizeof(Slot) == kSlotBytes,
                "kSlotBytes documents the real in-ring slot footprint");
  // Budget the requested bytes across the shards. A non-zero budget
  // always yields at least one slot per shard so "enabled with a tiny
  // budget" still records; the count is rounded down to a power of two
  // so the hot path can mask instead of divide.
  if (bytes > 0) {
    slots_per_shard_ = bytes / (kShards * kSlotBytes);
    if (slots_per_shard_ == 0) slots_per_shard_ = 1;
    while (slots_per_shard_ & (slots_per_shard_ - 1)) {
      slots_per_shard_ &= slots_per_shard_ - 1;  // round down to pow2
    }
    slot_mask_ = slots_per_shard_ - 1;
    for (Shard& sh : shards_) {
      sh.slots = std::vector<Slot>(slots_per_shard_);
    }
  }
  strings_.push_back("__overflow__");  // id 0
}

uint32_t FlightRecorder::Intern(std::string_view s) {
  if (slots_per_shard_ == 0) return kOverflowId;
  std::lock_guard<std::mutex> lock(strings_mu_);
  auto it = string_ids_.find(std::string(s));
  if (it != string_ids_.end()) return it->second;
  if (strings_.size() >= max_strings_) return kOverflowId;
  const uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  string_ids_.emplace(std::string(s), id);
  return id;
}

std::vector<FlightEventView> FlightRecorder::Dump(size_t max_events) const {
  std::vector<FlightEventView> out;
  if (slots_per_shard_ == 0) return out;
  out.reserve(slots_per_shard_ * kShards);
  for (const Shard& sh : shards_) {
    for (const Slot& s : sh.slots) {
      const uint64_t seq = s.seq.load(std::memory_order_acquire);
      if (seq == 0) continue;
      FlightEventView v;
      v.seq = seq;
      v.t_us = s.t_us.load(std::memory_order_relaxed);
      const uint64_t type_a = s.type_a.load(std::memory_order_relaxed);
      v.type = static_cast<FlightEventType>(type_a >> 32);
      v.a = static_cast<uint32_t>(type_a);
      v.b = s.b.load(std::memory_order_relaxed);
      v.c = s.c.load(std::memory_order_relaxed);
      out.push_back(std::move(v));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEventView& x, const FlightEventView& y) {
              return x.seq < y.seq;
            });
  if (max_events != 0 && out.size() > max_events) {
    out.erase(out.begin(),
              out.begin() + static_cast<ptrdiff_t>(out.size() - max_events));
  }
  // Resolve intern ids for the types that carry one in `a`.
  std::lock_guard<std::mutex> lock(strings_mu_);
  for (FlightEventView& v : out) {
    switch (v.type) {
      case FlightEventType::kRequest:
      case FlightEventType::kShed:
      case FlightEventType::kEpochBump:
      case FlightEventType::kRebuild:
      case FlightEventType::kFaultFire:
      case FlightEventType::kAlert:
      case FlightEventType::kMark:
        if (v.a < strings_.size()) v.name = strings_[v.a];
        break;
      case FlightEventType::kNone:
        break;
    }
  }
  return out;
}

std::string FlightRecorder::ToJson(size_t max_events) const {
  std::string j = "{\"enabled\":";
  j += enabled() ? "true" : "false";
  j += ",\"recorded\":";
  AppendUint(recorded(), &j);
  j += ",\"capacity\":";
  AppendUint(capacity(), &j);
  j += ",\"events\":[";
  const std::vector<FlightEventView> events = Dump(max_events);
  bool first = true;
  for (const FlightEventView& v : events) {
    if (!first) j += ',';
    first = false;
    j += "{\"seq\":";
    AppendUint(v.seq, &j);
    j += ",\"t_us\":";
    AppendUint(v.t_us, &j);
    j += ",\"type\":\"";
    j += FlightEventTypeName(v.type);
    j += "\",\"a\":";
    AppendUint(v.a, &j);
    j += ",\"name\":\"";
    j += JsonEscape(v.name);
    j += "\",\"b\":";
    AppendUint(v.b, &j);
    j += ",\"c\":";
    AppendUint(v.c, &j);
    j += '}';
  }
  j += "]}";
  return j;
}

}  // namespace xee::obs

#endif  // XEE_OBS_OFF
