#ifndef XEE_OBS_TRACE_H_
#define XEE_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

/// Per-request tracing (DESIGN.md §10): each estimation request carries
/// a TraceSpans on its stack; the serving pipeline's stages accumulate
/// wall time into it via ScopedStageTimer, the estimator folds its work
/// counters in through EstimateLimits, and the finished trace lands in
/// the service's bounded TraceRing — with slow requests additionally
/// captured in a separate ring that the fast ring cannot wash out.
namespace xee::obs {

/// The serving pipeline's stages, in request order. A stage a request
/// skips (an exact-string cache hit never parses) records nothing.
enum class Stage : uint8_t {
  kParse = 0,       ///< XPath string -> AST
  kCanonicalize,    ///< AST -> canonical form + cache key
  kCacheLookup,     ///< plan-cache probes (exact + canonical + degraded)
  kSnapshot,        ///< synopsis registry snapshot acquire
  kJoin,            ///< path join (Estimator::Compile)
  kFormula,         ///< estimation formulas (EstimateCompiled)
};
inline constexpr size_t kStageCount = 6;

constexpr std::string_view StageName(Stage s) {
  switch (s) {
    case Stage::kParse:
      return "parse";
    case Stage::kCanonicalize:
      return "canonicalize";
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kSnapshot:
      return "snapshot";
    case Stage::kJoin:
      return "join";
    case Stage::kFormula:
      return "formula";
  }
  return "?";
}

/// One request's per-stage time and estimator work counters. A plain
/// stack struct — single-threaded within its request, no atomics.
/// Stages are disjoint sub-intervals of the request, so the invariant
/// sum(stage_ns) <= total wall time holds by construction (the chaos
/// harness asserts it).
struct TraceSpans {
  uint64_t stage_ns[kStageCount] = {};
  uint64_t containment_tests = 0;
  uint64_t join_probes = 0;
  uint64_t fixpoint_rounds = 0;

  uint64_t StageNs(Stage s) const {
    return stage_ns[static_cast<size_t>(s)];
  }
  uint64_t SumNs() const {
    uint64_t t = 0;
    for (uint64_t v : stage_ns) t += v;
    return t;
  }
};

/// A completed request trace as stored in the ring.
struct TraceRecord {
  uint64_t seq = 0;       ///< monotonically increasing per ring
  uint64_t total_ns = 0;  ///< end-to-end request wall time
  TraceSpans spans;
  std::string synopsis;
  std::string query;
  std::string outcome;  ///< "exact-hit", "miss", "deadline", ...
  bool degraded = false;
};

#ifndef XEE_OBS_OFF

/// RAII stage timer: on destruction adds the elapsed nanoseconds to the
/// span's stage slot and (when given) a stage histogram. Re-entering a
/// stage accumulates — the cache-lookup stage times all probes of one
/// request together. Constructing with `enabled = false` makes the
/// timer inert without touching the clock: the service decides once per
/// request whether it is timed (ServiceOptions::trace_sample) and
/// threads that decision through every stage, keeping the unsampled
/// hot path free of clock reads.
class ScopedStageTimer {
 public:
  ScopedStageTimer(TraceSpans* spans, Stage stage, Histogram* hist,
                   bool enabled = true)
      : spans_(enabled ? spans : nullptr),
        hist_(enabled ? hist : nullptr),
        stage_(stage) {
    if (spans_ != nullptr || hist_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~ScopedStageTimer() {
    if (spans_ == nullptr && hist_ == nullptr) return;
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    if (spans_ != nullptr) {
      spans_->stage_ns[static_cast<size_t>(stage_)] += ns;
    }
    if (hist_ != nullptr) hist_->Record(ns);
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  TraceSpans* spans_;
  Histogram* hist_;
  Stage stage_;
  std::chrono::steady_clock::time_point start_;
};

/// Bounded buffer of recent traces plus a separate slow-trace buffer
/// for requests at or above a configurable threshold (so one burst of
/// fast requests cannot evict the interesting outliers). Record takes a
/// mutex — callers sample (ServiceOptions::trace_sample) to keep it off
/// the per-request critical path.
class TraceRing {
 public:
  /// `capacity` bounds the recent ring (clamped to >= 1); the slow ring
  /// holds max(16, capacity/4). `slow_threshold_ns` of 0 disables slow
  /// capture.
  explicit TraceRing(size_t capacity, uint64_t slow_threshold_ns = 0);

  /// True when this record would be kept even if unsampled (slow-query
  /// capture); cheap, lock-free.
  bool IsSlow(uint64_t total_ns) const {
    const uint64_t t = slow_threshold_ns_.load(std::memory_order_relaxed);
    return t != 0 && total_ns >= t;
  }

  void Record(TraceRecord rec);

  /// The most recent `max` traces, oldest first.
  std::vector<TraceRecord> Recent(size_t max = SIZE_MAX) const;
  /// The most recent `max` slow traces, oldest first.
  std::vector<TraceRecord> Slow(size_t max = SIZE_MAX) const;

  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }
  void set_slow_threshold_ns(uint64_t ns) {
    slow_threshold_ns_.store(ns, std::memory_order_relaxed);
  }

  /// The tracez rendering: {"recent":[...],"slow":[...]} with at most
  /// `max` entries per list, each entry carrying total/stage times and
  /// estimator counters.
  std::string ToJson(size_t max = 32) const;

 private:
  void Push(std::vector<TraceRecord>* ring, size_t* pos, size_t cap,
            TraceRecord rec);
  std::vector<TraceRecord> Ordered(const std::vector<TraceRecord>& ring,
                                   size_t pos, size_t max) const;

  const size_t capacity_;
  const size_t slow_capacity_;
  std::atomic<uint64_t> slow_threshold_ns_;
  std::atomic<uint64_t> recorded_{0};

  mutable std::mutex mu_;
  std::vector<TraceRecord> ring_;       // guarded by mu_
  std::vector<TraceRecord> slow_ring_;  // guarded by mu_
  size_t pos_ = 0;                      // next write slot in ring_
  size_t slow_pos_ = 0;
  uint64_t seq_ = 0;
};

#else  // XEE_OBS_OFF

class ScopedStageTimer {
 public:
  ScopedStageTimer(TraceSpans*, Stage, Histogram*, bool = true) {}
  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;
};

class TraceRing {
 public:
  explicit TraceRing(size_t, uint64_t = 0) {}
  bool IsSlow(uint64_t) const { return false; }
  void Record(TraceRecord) {}
  std::vector<TraceRecord> Recent(size_t = SIZE_MAX) const { return {}; }
  std::vector<TraceRecord> Slow(size_t = SIZE_MAX) const { return {}; }
  uint64_t recorded() const { return 0; }
  uint64_t slow_threshold_ns() const { return 0; }
  void set_slow_threshold_ns(uint64_t) {}
  std::string ToJson(size_t = 32) const {
    return "{\"recent\":[],\"slow\":[]}";
  }
};

#endif  // XEE_OBS_OFF

}  // namespace xee::obs

#endif  // XEE_OBS_TRACE_H_
