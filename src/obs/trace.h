#ifndef XEE_OBS_TRACE_H_
#define XEE_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

/// Per-request tracing (DESIGN.md §10/§16): each estimation request
/// carries a TraceSpans on its stack; the serving pipeline's stages
/// accumulate wall time into it via ScopedStageTimer, the estimator
/// folds its work counters in through EstimateLimits, and the finished
/// trace lands in the service's bounded TraceRing.
///
/// Retention is tail-based: the keep/drop decision happens at
/// *completion* time, when the outcome is known. Routine requests are
/// head-sampled into the recent ring (1-in-N); requests with an
/// interesting outcome — shed, deadline, error, pruned, degraded, slow
/// — carry a tail class and always land in the separate tail ring,
/// regardless of the head sample, where a burst of fast requests cannot
/// wash them out. Each record lives in exactly one ring, so span-sum
/// oracles that walk both rings never double-count a request.
namespace xee::obs {

/// The serving pipeline's stages, in request order. A stage a request
/// skips (an exact-string cache hit never parses) records nothing.
enum class Stage : uint8_t {
  kParse = 0,       ///< XPath string -> AST
  kCanonicalize,    ///< AST -> canonical form + cache key
  kCacheLookup,     ///< plan-cache probes (exact + canonical + degraded)
  kSnapshot,        ///< synopsis registry snapshot acquire
  kJoin,            ///< path join (Estimator::Compile)
  kFormula,         ///< estimation formulas (EstimateCompiled)
};
inline constexpr size_t kStageCount = 6;

constexpr std::string_view StageName(Stage s) {
  switch (s) {
    case Stage::kParse:
      return "parse";
    case Stage::kCanonicalize:
      return "canonicalize";
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kSnapshot:
      return "snapshot";
    case Stage::kJoin:
      return "join";
    case Stage::kFormula:
      return "formula";
  }
  return "?";
}

/// One request's per-stage time and estimator work counters. A plain
/// stack struct — single-threaded within its request, no atomics.
/// Stages are disjoint sub-intervals of the request, so the invariant
/// sum(stage_ns) <= total wall time holds by construction (the chaos
/// harness asserts it).
struct TraceSpans {
  uint64_t stage_ns[kStageCount] = {};
  uint64_t containment_tests = 0;
  uint64_t join_probes = 0;
  uint64_t fixpoint_rounds = 0;

  uint64_t StageNs(Stage s) const {
    return stage_ns[static_cast<size_t>(s)];
  }
  uint64_t SumNs() const {
    uint64_t t = 0;
    for (uint64_t v : stage_ns) t += v;
    return t;
  }
};

/// A completed request trace as stored in the ring.
struct TraceRecord {
  uint64_t seq = 0;       ///< monotonically increasing per ring
  uint64_t total_ns = 0;  ///< end-to-end request wall time
  TraceSpans spans;
  std::string synopsis;
  std::string query;
  std::string outcome;  ///< "exact-hit", "miss", "deadline", ...
  bool degraded = false;
  /// Why completion-time classification retained this record ("shed",
  /// "deadline", "error", "pruned", "degraded", "slow"); empty for a
  /// head-sampled routine request. Routes the record: non-empty goes to
  /// the tail ring, empty to the recent ring — never both.
  std::string tail_class;
};

/// One histogram exemplar: the most recent retained trace whose total
/// latency fell into a given log-bucket octave, so a p99 spike in the
/// request_ns histogram links to an actual trace in the rings.
struct TraceExemplar {
  uint64_t seq = 0;
  uint64_t total_ns = 0;
  int bucket = 0;  ///< HistogramBuckets index of total_ns
  std::string outcome;
};

#ifndef XEE_OBS_OFF

/// RAII stage timer: on destruction adds the elapsed nanoseconds to the
/// span's stage slot and (when given) a stage histogram. Re-entering a
/// stage accumulates — the cache-lookup stage times all probes of one
/// request together. Constructing with `enabled = false` makes the
/// timer inert without touching the clock: the service decides once per
/// request whether it is timed (ServiceOptions::trace_sample) and
/// threads that decision through every stage, keeping the unsampled
/// hot path free of clock reads.
class ScopedStageTimer {
 public:
  ScopedStageTimer(TraceSpans* spans, Stage stage, Histogram* hist,
                   bool enabled = true)
      : spans_(enabled ? spans : nullptr),
        hist_(enabled ? hist : nullptr),
        stage_(stage) {
    if (spans_ != nullptr || hist_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~ScopedStageTimer() {
    if (spans_ == nullptr && hist_ == nullptr) return;
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    if (spans_ != nullptr) {
      spans_->stage_ns[static_cast<size_t>(stage_)] += ns;
    }
    if (hist_ != nullptr) hist_->Record(ns);
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  TraceSpans* spans_;
  Histogram* hist_;
  Stage stage_;
  std::chrono::steady_clock::time_point start_;
};

/// Bounded buffer of head-sampled recent traces plus a separate
/// tail-retention buffer for interesting-outcome requests (so one burst
/// of fast requests cannot evict the records worth debugging). Record
/// takes a mutex — routine callers sample (ServiceOptions::trace_sample)
/// and tail-retained outcomes are rare, keeping it off the per-request
/// critical path.
class TraceRing {
 public:
  /// Exemplar storage: one slot per histogram octave band.
  static constexpr int kExemplarBands =
      HistogramBuckets::kBuckets / HistogramBuckets::kSub + 1;

  /// `capacity` bounds the recent ring (clamped to >= 1); the tail ring
  /// holds max(16, capacity/2). `slow_threshold_ns` of 0 disables the
  /// slow tail class.
  explicit TraceRing(size_t capacity, uint64_t slow_threshold_ns = 0);

  /// True when a timed record of this latency classifies as "slow"
  /// (one of the tail-retention classes); cheap, lock-free.
  bool IsSlow(uint64_t total_ns) const {
    const uint64_t t = slow_threshold_ns_.load(std::memory_order_relaxed);
    return t != 0 && total_ns >= t;
  }

  /// Stores `rec` in exactly one ring: the tail ring when
  /// rec.tail_class is non-empty, the recent ring otherwise. Timed
  /// records (total_ns > 0) also refresh their octave's exemplar slot.
  void Record(TraceRecord rec);

  /// The most recent `max` head-sampled traces, oldest first.
  std::vector<TraceRecord> Recent(size_t max = SIZE_MAX) const;
  /// The most recent `max` tail-retained traces, oldest first.
  std::vector<TraceRecord> Tail(size_t max = SIZE_MAX) const;
  /// The live exemplars, lowest bucket first.
  std::vector<TraceExemplar> Exemplars() const;

  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  /// Records that went to the tail ring (subset of recorded()).
  uint64_t tail_recorded() const {
    return tail_recorded_.load(std::memory_order_relaxed);
  }
  uint64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }
  void set_slow_threshold_ns(uint64_t ns) {
    slow_threshold_ns_.store(ns, std::memory_order_relaxed);
  }

  /// The tracez rendering:
  /// {"recent":[...],"tail":[...],"exemplars":[...]} with at most `max`
  /// entries per trace list, each entry carrying total/stage times and
  /// estimator counters; exemplars link latency buckets to trace seqs.
  std::string ToJson(size_t max = 32) const;

 private:
  void Push(std::vector<TraceRecord>* ring, size_t* pos, size_t cap,
            TraceRecord rec);
  std::vector<TraceRecord> Ordered(const std::vector<TraceRecord>& ring,
                                   size_t pos, size_t max) const;

  const size_t capacity_;
  const size_t tail_capacity_;
  std::atomic<uint64_t> slow_threshold_ns_;
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> tail_recorded_{0};

  mutable std::mutex mu_;
  std::vector<TraceRecord> ring_;       // guarded by mu_
  std::vector<TraceRecord> tail_ring_;  // guarded by mu_
  size_t pos_ = 0;                      // next write slot in ring_
  size_t tail_pos_ = 0;
  uint64_t seq_ = 0;
  TraceExemplar exemplars_[kExemplarBands];  // guarded by mu_
};

#else  // XEE_OBS_OFF

class ScopedStageTimer {
 public:
  ScopedStageTimer(TraceSpans*, Stage, Histogram*, bool = true) {}
  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;
};

class TraceRing {
 public:
  static constexpr int kExemplarBands =
      HistogramBuckets::kBuckets / HistogramBuckets::kSub + 1;
  explicit TraceRing(size_t, uint64_t = 0) {}
  bool IsSlow(uint64_t) const { return false; }
  void Record(TraceRecord) {}
  std::vector<TraceRecord> Recent(size_t = SIZE_MAX) const { return {}; }
  std::vector<TraceRecord> Tail(size_t = SIZE_MAX) const { return {}; }
  std::vector<TraceExemplar> Exemplars() const { return {}; }
  uint64_t recorded() const { return 0; }
  uint64_t tail_recorded() const { return 0; }
  uint64_t slow_threshold_ns() const { return 0; }
  void set_slow_threshold_ns(uint64_t) {}
  std::string ToJson(size_t = 32) const {
    return "{\"recent\":[],\"tail\":[],\"exemplars\":[]}";
  }
};

#endif  // XEE_OBS_OFF

}  // namespace xee::obs

#endif  // XEE_OBS_TRACE_H_
