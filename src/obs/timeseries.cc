#ifndef XEE_OBS_OFF

#include "obs/timeseries.h"

#include <algorithm>
#include <cstdio>

namespace xee::obs {

namespace {

void AppendDouble(double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

void AppendUint(uint64_t v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(Registry* registry, TimeSeriesOptions options)
    : options_(options), registry_(registry) {
  if (options_.interval_us == 0) options_.interval_us = 1;
  if (options_.retention == 0) options_.retention = 1;
  if (options_.max_series == 0) options_.max_series = 1;
}

void TimeSeriesStore::WatchCounter(std::string key) {
  std::lock_guard<std::mutex> lock(mu_);
  counter_keys_.push_back(std::move(key));
}

void TimeSeriesStore::WatchCounterPrefix(std::string prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  counter_prefixes_.push_back(std::move(prefix));
}

void TimeSeriesStore::WatchGauge(std::string key) {
  std::lock_guard<std::mutex> lock(mu_);
  gauge_keys_.push_back(std::move(key));
}

void TimeSeriesStore::WatchGaugePrefix(std::string prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  gauge_prefixes_.push_back(std::move(prefix));
}

void TimeSeriesStore::WatchHistogram(std::string key, Histogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  hist_watches_.push_back(HistWatch{std::move(key), h, HistogramWindow{}});
}

TimeSeriesStore::Series* TimeSeriesStore::FindOrCreate(
    const std::string& key) {
  auto it = series_.find(key);
  if (it != series_.end()) return &it->second;
  if (series_.size() >= options_.max_series) {
    ++dropped_;
    return nullptr;
  }
  Series s;
  s.ring.resize(options_.retention);
  return &series_.emplace(key, std::move(s)).first->second;
}

void TimeSeriesStore::Append(Series* s, uint64_t t_us, double value) {
  s->ring[s->pos] = TsPoint{t_us, value};
  s->pos = (s->pos + 1) % s->ring.size();
  ++s->count;
}

bool TimeSeriesStore::Matches(
    const std::string& key, const std::vector<std::string>& exact,
    const std::vector<std::string>& prefixes) const {
  for (const std::string& k : exact) {
    if (key == k) return true;
  }
  for (const std::string& p : prefixes) {
    if (key.size() >= p.size() && key.compare(0, p.size(), p) == 0) {
      return true;
    }
  }
  return false;
}

bool TimeSeriesStore::Sample(uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_ != 0 && now_us < last_sample_us_ + options_.interval_us) {
    return false;
  }
  // One Rows() pass covers every watched counter and gauge, including
  // labeled rows that appeared since the previous sample (per-tenant
  // rows register lazily as traffic arrives).
  for (const MetricRow& row : registry_->Rows()) {
    const std::string key =
        row.label.empty() ? row.name : row.name + "{" + row.label + "}";
    if (row.kind == MetricRow::Kind::kCounter) {
      if (!Matches(key, counter_keys_, counter_prefixes_)) continue;
      Series* s = FindOrCreate(key);
      if (s == nullptr) continue;
      const uint64_t delta = row.counter >= s->prev ? row.counter - s->prev : 0;
      s->prev = row.counter;
      Append(s, now_us, static_cast<double>(delta));
    } else if (row.kind == MetricRow::Kind::kGauge) {
      if (!Matches(key, gauge_keys_, gauge_prefixes_)) continue;
      Series* s = FindOrCreate(key);
      if (s == nullptr) continue;
      Append(s, now_us, static_cast<double>(row.gauge));
    }
  }
  for (HistWatch& w : hist_watches_) {
    const HistogramSnapshot snap = w.cursor.Advance(*w.hist);
    struct Sub {
      const char* suffix;
      double value;
    };
    const Sub subs[] = {
        {".count", static_cast<double>(snap.count)},
        {".p50", static_cast<double>(snap.p50)},
        {".p99", static_cast<double>(snap.p99)},
        {".mean", snap.mean},
    };
    for (const Sub& sub : subs) {
      Series* s = FindOrCreate(w.key + sub.suffix);
      if (s == nullptr) continue;
      Append(s, now_us, sub.value);
    }
  }
  ++samples_;
  last_sample_us_ = now_us;
  return true;
}

uint64_t TimeSeriesStore::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

uint64_t TimeSeriesStore::last_sample_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_sample_us_;
}

size_t TimeSeriesStore::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

uint64_t TimeSeriesStore::dropped_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<std::string> TimeSeriesStore::SeriesNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [key, s] : series_) out.push_back(key);
  return out;
}

const TimeSeriesStore::Series* TimeSeriesStore::Find(
    std::string_view key) const {
  auto it = series_.find(std::string(key));
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<TsPoint> TimeSeriesStore::Points(std::string_view series) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TsPoint> out;
  const Series* s = Find(series);
  if (s == nullptr) return out;
  const size_t n = std::min<uint64_t>(s->count, s->ring.size());
  out.reserve(n);
  // Oldest first: the ring's write cursor points at the oldest retained
  // slot once the ring has wrapped.
  const size_t start = s->count >= s->ring.size() ? s->pos : 0;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(s->ring[(start + i) % s->ring.size()]);
  }
  return out;
}

double TimeSeriesStore::SumOver(std::string_view series, uint64_t window_us,
                                uint64_t now_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* s = Find(series);
  if (s == nullptr) return 0;
  const uint64_t from = now_us >= window_us ? now_us - window_us : 0;
  double sum = 0;
  const size_t n = std::min<uint64_t>(s->count, s->ring.size());
  for (size_t i = 0; i < n; ++i) {
    const TsPoint& p = s->ring[i];
    if (p.t_us > from && p.t_us <= now_us) sum += p.value;
  }
  return sum;
}

double TimeSeriesStore::MaxOver(std::string_view series, uint64_t window_us,
                                uint64_t now_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* s = Find(series);
  if (s == nullptr) return 0;
  const uint64_t from = now_us >= window_us ? now_us - window_us : 0;
  double best = 0;
  const size_t n = std::min<uint64_t>(s->count, s->ring.size());
  for (size_t i = 0; i < n; ++i) {
    const TsPoint& p = s->ring[i];
    if (p.t_us > from && p.t_us <= now_us && p.value > best) best = p.value;
  }
  return best;
}

double TimeSeriesStore::RatePerSec(std::string_view series, uint64_t window_us,
                                   uint64_t now_us) const {
  if (window_us == 0) return 0;
  return SumOver(series, window_us, now_us) /
         (static_cast<double>(window_us) / 1e6);
}

std::string TimeSeriesStore::ToJson(size_t max_points) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string j = "{\"enabled\":true,\"interval_us\":";
  AppendUint(options_.interval_us, &j);
  j += ",\"retention\":";
  AppendUint(options_.retention, &j);
  j += ",\"samples\":";
  AppendUint(samples_, &j);
  j += ",\"dropped_series\":";
  AppendUint(dropped_, &j);
  j += ",\"series\":{";
  bool first_series = true;
  for (const auto& [key, s] : series_) {
    if (!first_series) j += ',';
    first_series = false;
    j += '"';
    j += JsonEscape(key);
    j += "\":[";
    const size_t n = std::min<uint64_t>(s.count, s.ring.size());
    const size_t keep = max_points == 0 ? n : std::min(n, max_points);
    const size_t start_i = s.count >= s.ring.size() ? s.pos : 0;
    bool first_point = true;
    // Newest `keep` points, oldest of those first.
    for (size_t i = n - keep; i < n; ++i) {
      const TsPoint& p = s.ring[(start_i + i) % s.ring.size()];
      if (!first_point) j += ',';
      first_point = false;
      j += '[';
      AppendUint(p.t_us, &j);
      j += ',';
      AppendDouble(p.value, &j);
      j += ']';
    }
    j += ']';
  }
  j += "}}";
  return j;
}

}  // namespace xee::obs

#endif  // XEE_OBS_OFF
