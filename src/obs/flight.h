#ifndef XEE_OBS_FLIGHT_H_
#define XEE_OBS_FLIGHT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// Black-box flight recorder (DESIGN.md §16): an always-on, lock-light
/// binary event ring that answers "what was the service doing just
/// before X?" after the fact — the aviation-recorder counterpart to the
/// sampled trace ring. Writers append fixed-size packed events to one
/// of a few cache-line-aligned shards selected by a thread-local index;
/// each shard is single-writer in the common case, so the hot path is a
/// plain relaxed load/store pair plus a handful of relaxed stores — no
/// atomic RMW, no clock read, no mutex, no allocation. Readers
/// (Dump / ToJson) merge the shards sorted by a derived sequence number
/// that is unique globally and ordered within each shard.
///
/// Because slots are claimed without coordination and written with
/// relaxed atomics, a reader racing a writer — or two writers a full
/// ring lap apart — can observe a mixed-field event. That is the
/// accepted price of a zero-coordination hot path in a diagnostic
/// surface: dumps are for post-mortems, not accounting, and every
/// field is individually well-defined (no torn word reads).
///
/// Variable-length data (tenant names, fault sites, SLO names) never
/// enters the ring; events carry 32-bit ids from a bounded intern
/// table, so cardinality attacks degrade to the overflow id instead of
/// growing memory.
///
/// Under XEE_OBS_OFF the recorder compiles to inline no-ops.
namespace xee::obs {

/// What one flight event describes. The a/b/c payload fields are
/// per-type (documented on each enumerator); `a` is an intern-table id
/// for every type that names something.
enum class FlightEventType : uint32_t {
  kNone = 0,
  /// One finished request. a = tenant id, b = outcome code
  /// (service-defined small enum), c = total latency ns (0 when the
  /// request was untimed — the recorder never forces a clock read).
  kRequest = 1,
  /// One shed admission decision. a = tenant id, b = reason code,
  /// c = retry-after hint ms.
  kShed = 2,
  /// A synopsis version swap. a = tenant id, b = new epoch.
  kEpochBump = 3,
  /// A rebuild-pipeline transition. a = tenant id, b = transition code
  /// (service-defined), c = epoch when known.
  kRebuild = 4,
  /// A fault site fired. a = site id, b = injector schedule clock.
  kFaultFire = 5,
  /// An SLO alert transition. a = SLO name id, b = new state code,
  /// c = previous state code.
  kAlert = 6,
  /// Free-form marker from tests / tooling. a = text id.
  kMark = 7,
};

inline std::string_view FlightEventTypeName(FlightEventType t) {
  switch (t) {
    case FlightEventType::kRequest: return "request";
    case FlightEventType::kShed: return "shed";
    case FlightEventType::kEpochBump: return "epoch";
    case FlightEventType::kRebuild: return "rebuild";
    case FlightEventType::kFaultFire: return "fault";
    case FlightEventType::kAlert: return "alert";
    case FlightEventType::kMark: return "mark";
    case FlightEventType::kNone: break;
  }
  return "none";
}

/// One decoded event, as Dump() returns it (oldest first).
struct FlightEventView {
  uint64_t seq = 0;
  uint64_t t_us = 0;  ///< coarse timestamp; 0 for clock-free hot events
  FlightEventType type = FlightEventType::kNone;
  uint32_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  std::string name;  ///< intern-table resolution of `a` ("" when none)
};

#ifndef XEE_OBS_OFF

/// The live recorder. Thread-safety: Record/Intern from any thread;
/// Dump/ToJson from any thread, concurrently with writers.
class FlightRecorder {
 public:
  static constexpr size_t kShards = 8;
  /// In-ring footprint of one event slot (cache-line aligned, so the
  /// five 8-byte fields pad out to a full line). Exposed so callers and
  /// tests can size ring budgets: a budget of `bytes` yields
  /// floor(bytes / (kShards * kSlotBytes)) slots per shard, rounded
  /// down to a power of two (minimum 1 when bytes > 0).
  static constexpr size_t kSlotBytes = 64;

  /// `bytes` is the total ring budget across all shards; 0 disables the
  /// recorder (Record becomes an early-out branch). `max_strings`
  /// bounds the intern table; Intern past the bound returns kOverflowId.
  explicit FlightRecorder(size_t bytes, size_t max_strings = 512);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return slots_per_shard_ != 0; }
  size_t capacity() const { return slots_per_shard_ * kShards; }

  /// Id 0 renders as "__overflow__": returned once the table is full,
  /// so hostile cardinality costs nothing past the bound. Takes a
  /// mutex — intern once and cache the id, not per event.
  static constexpr uint32_t kOverflowId = 0;
  uint32_t Intern(std::string_view s);

  /// Appends one event. The hot path is single-writer per shard: a
  /// plain relaxed load + store advances the shard's claim counter (no
  /// atomic RMW, no lock prefix), then five relaxed stores fill the
  /// slot — ~3ns measured, versus ~23ns for the fetch_add version this
  /// replaced (bench "service_obs2" is what forced the change). No
  /// clock read — pass t_us when the caller already has a timestamp
  /// (alert/rebuild/epoch events), 0 otherwise.
  ///
  /// The sequence number is derived, not allocated: seq = claim *
  /// kShards + shard + 1, globally unique and strictly increasing
  /// within a shard. Cross-shard order in a dump is per-shard progress
  /// order, not true arrival order — for a post-mortem surface whose
  /// writers already use relaxed atomics, that trade buys the RMW-free
  /// hot path. When more threads than kShards record, shard-sharing
  /// threads can race the unsynchronized claim and merge (lose) an
  /// occasional event — same spirit as the documented mixed-field
  /// caveat above: bounded, diagnostic-only damage.
  void Record(FlightEventType type, uint32_t a, uint64_t b, uint64_t c,
              uint64_t t_us = 0) {
    if (slots_per_shard_ == 0) return;
    const size_t shard = ShardIndex();
    Shard& sh = shards_[shard];
    const uint64_t n = sh.pos.load(std::memory_order_relaxed);
    sh.pos.store(n + 1, std::memory_order_relaxed);
    const uint64_t seq = n * kShards + shard + 1;
    Slot& s = sh.slots[static_cast<size_t>(n) & slot_mask_];
    s.t_us.store(t_us, std::memory_order_relaxed);
    s.type_a.store((static_cast<uint64_t>(type) << 32) | a,
                   std::memory_order_relaxed);
    s.b.store(b, std::memory_order_relaxed);
    s.c.store(c, std::memory_order_relaxed);
    s.seq.store(seq, std::memory_order_release);
#if defined(__GNUC__) || defined(__clang__)
    // Between two Records the ring line gets evicted by request work,
    // so the next append would stall on a read-for-ownership miss.
    // Warming the next slot now hides that latency where it is free.
    __builtin_prefetch(&sh.slots[static_cast<size_t>(n + 1) & slot_mask_],
                       /*rw=*/1, /*locality=*/1);
#endif
  }

  /// Total events claimed across all shards (retained or overwritten).
  uint64_t recorded() const {
    uint64_t n = 0;
    for (const Shard& sh : shards_) {
      n += sh.pos.load(std::memory_order_relaxed);
    }
    return n;
  }

  /// Every retained event, oldest first (seq ascending), truncated to
  /// the newest `max_events` when non-zero.
  std::vector<FlightEventView> Dump(size_t max_events = 0) const;

  /// The .flightz rendering:
  ///   {"enabled":true,"recorded":n,"capacity":n,
  ///    "events":[{"seq":n,"t_us":n,"type":"request","a":n,
  ///               "name":"...","b":n,"c":n},...]}
  std::string ToJson(size_t max_events = 256) const;

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> seq{0};  ///< 0 = never written
    std::atomic<uint64_t> t_us{0};
    std::atomic<uint64_t> type_a{0};  ///< type in the high word, a low
    std::atomic<uint64_t> b{0};
    std::atomic<uint64_t> c{0};
  };
  struct alignas(64) Shard {
    std::atomic<uint64_t> pos{0};
    std::vector<Slot> slots;
  };

  static size_t ShardIndex() {
    static std::atomic<size_t> next{0};
    thread_local const size_t idx =
        next.fetch_add(1, std::memory_order_relaxed);
    return idx % kShards;
  }

  size_t slots_per_shard_ = 0;
  size_t slot_mask_ = 0;  ///< slots_per_shard_ - 1 (power of two)
  size_t max_strings_;
  Shard shards_[kShards];

  mutable std::mutex strings_mu_;
  std::unordered_map<std::string, uint32_t> string_ids_;  // guarded
  std::vector<std::string> strings_;                      // guarded
};

#else  // XEE_OBS_OFF: the recorder compiles out entirely.

class FlightRecorder {
 public:
  static constexpr size_t kShards = 8;
  static constexpr size_t kSlotBytes = 64;
  static constexpr uint32_t kOverflowId = 0;
  explicit FlightRecorder(size_t, size_t = 512) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  bool enabled() const { return false; }
  size_t capacity() const { return 0; }
  uint32_t Intern(std::string_view) { return kOverflowId; }
  void Record(FlightEventType, uint32_t, uint64_t, uint64_t,
              uint64_t = 0) {}
  uint64_t recorded() const { return 0; }
  std::vector<FlightEventView> Dump(size_t = 0) const { return {}; }
  std::string ToJson(size_t = 256) const {
    return "{\"enabled\":false,\"recorded\":0,\"capacity\":0,"
           "\"events\":[]}";
  }
};

#endif  // XEE_OBS_OFF

}  // namespace xee::obs

#endif  // XEE_OBS_FLIGHT_H_
