#ifndef XEE_OBS_OFF

#include "obs/slo.h"

#include <cstdio>
#include <utility>

namespace xee::obs {

namespace {

void AppendDouble(double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

void AppendUint(uint64_t v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

}  // namespace

SloEngine::SloEngine(const TimeSeriesStore* ts, Registry* registry,
                     std::vector<SloSpec> specs)
    : ts_(ts) {
  alerts_.reserve(specs.size());
  for (SloSpec& spec : specs) {
    AlertSlot slot;
    const std::string label = "slo=" + spec.name;
    slot.fired_counter =
        &registry->GetCounter("slo.alert", label + ",transition=fired");
    slot.resolved_counter =
        &registry->GetCounter("slo.alert", label + ",transition=resolved");
    slot.spec = std::move(spec);
    alerts_.push_back(std::move(slot));
  }
}

void SloEngine::SetTransitionHook(TransitionHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  hook_ = std::move(hook);
}

double SloEngine::BurnOver(const SloSpec& spec, uint64_t window_us,
                           uint64_t now_us) const {
  switch (spec.kind) {
    case SloKind::kAvailability: {
      const double total = ts_->SumOver(spec.total_series, window_us, now_us);
      if (total <= 0) return 0;
      double bad = 0;
      for (const std::string& series : spec.bad_series) {
        bad += ts_->SumOver(series, window_us, now_us);
      }
      const double budget =
          spec.objective < 1.0 ? 1.0 - spec.objective : 1e-9;
      return (bad / total) / budget;
    }
    case SloKind::kLatency:
    case SloKind::kThreshold: {
      if (spec.objective <= 0) return 0;
      return ts_->MaxOver(spec.value_series, window_us, now_us) /
             spec.objective;
    }
  }
  return 0;
}

void SloEngine::Transition(AlertSlot* slot, AlertState to, uint64_t now_us) {
  const AlertState from = slot->state;
  if (from == to) return;
  slot->state = to;
  slot->since_us = now_us;
  if (to == AlertState::kFiring) {
    ++slot->fired;
    slot->fired_counter->Inc();
  } else if (to == AlertState::kResolved) {
    ++slot->resolved;
    slot->resolved_counter->Inc();
  }
  if (hook_) hook_(slot->spec, from, to, now_us);
}

void SloEngine::Evaluate(uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++evaluations_;
  for (AlertSlot& slot : alerts_) {
    slot.fast_burn = BurnOver(slot.spec, slot.spec.fast_window_us, now_us);
    slot.slow_burn = BurnOver(slot.spec, slot.spec.slow_window_us, now_us);
    const bool burning = slot.fast_burn >= slot.spec.fast_burn &&
                         slot.slow_burn >= slot.spec.slow_burn;
    switch (slot.state) {
      case AlertState::kInactive:
        if (burning) Transition(&slot, AlertState::kFiring, now_us);
        break;
      case AlertState::kFiring:
        Transition(&slot,
                   burning ? AlertState::kActive : AlertState::kResolved,
                   now_us);
        break;
      case AlertState::kActive:
        if (!burning) Transition(&slot, AlertState::kResolved, now_us);
        break;
      case AlertState::kResolved:
        Transition(&slot,
                   burning ? AlertState::kFiring : AlertState::kInactive,
                   now_us);
        break;
    }
  }
}

uint64_t SloEngine::evaluations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluations_;
}

std::vector<AlertStatus> SloEngine::Alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AlertStatus> out;
  out.reserve(alerts_.size());
  for (const AlertSlot& slot : alerts_) {
    AlertStatus st;
    st.slo = slot.spec.name;
    st.kind = slot.spec.kind;
    st.state = slot.state;
    st.objective = slot.spec.objective;
    st.fast_burn = slot.fast_burn;
    st.slow_burn = slot.slow_burn;
    st.fired = slot.fired;
    st.resolved = slot.resolved;
    st.since_us = slot.since_us;
    out.push_back(std::move(st));
  }
  return out;
}

uint64_t SloEngine::TotalFired() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const AlertSlot& slot : alerts_) n += slot.fired;
  return n;
}

uint64_t SloEngine::TotalResolved() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const AlertSlot& slot : alerts_) n += slot.resolved;
  return n;
}

uint64_t SloEngine::BurningCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const AlertSlot& slot : alerts_) {
    if (slot.state == AlertState::kFiring ||
        slot.state == AlertState::kActive) {
      ++n;
    }
  }
  return n;
}

std::string SloEngine::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string j = "{\"enabled\":true,\"evaluations\":";
  AppendUint(evaluations_, &j);
  j += ",\"alerts\":[";
  bool first = true;
  for (const AlertSlot& slot : alerts_) {
    if (!first) j += ',';
    first = false;
    j += "{\"slo\":\"";
    j += JsonEscape(slot.spec.name);
    j += "\",\"kind\":\"";
    j += SloKindName(slot.spec.kind);
    j += "\",\"state\":\"";
    j += AlertStateName(slot.state);
    j += "\",\"objective\":";
    AppendDouble(slot.spec.objective, &j);
    j += ",\"fast_window_us\":";
    AppendUint(slot.spec.fast_window_us, &j);
    j += ",\"slow_window_us\":";
    AppendUint(slot.spec.slow_window_us, &j);
    j += ",\"fast_burn_limit\":";
    AppendDouble(slot.spec.fast_burn, &j);
    j += ",\"slow_burn_limit\":";
    AppendDouble(slot.spec.slow_burn, &j);
    j += ",\"fast_burn\":";
    AppendDouble(slot.fast_burn, &j);
    j += ",\"slow_burn\":";
    AppendDouble(slot.slow_burn, &j);
    j += ",\"fired\":";
    AppendUint(slot.fired, &j);
    j += ",\"resolved\":";
    AppendUint(slot.resolved, &j);
    j += ",\"since_us\":";
    AppendUint(slot.since_us, &j);
    j += '}';
  }
  j += "]}";
  return j;
}

}  // namespace xee::obs

#endif  // XEE_OBS_OFF
