#ifndef XEE_OBS_OFF

#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

namespace xee::obs {

uint64_t Histogram::SnapBuckets(
    uint64_t out[HistogramBuckets::kBuckets]) const {
  uint64_t sum = 0;
  for (int b = 0; b < HistogramBuckets::kBuckets; ++b) out[b] = 0;
  for (const Shard& shard : shards_) {
    for (int b = 0; b < HistogramBuckets::kBuckets; ++b) {
      out[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    sum += shard.sum.load(std::memory_order_relaxed);
  }
  return sum;
}

HistogramSnapshot Histogram::Snap() const {
  uint64_t counts[HistogramBuckets::kBuckets];
  const uint64_t sum = SnapBuckets(counts);
  return SnapshotFromBuckets(counts, sum);
}

HistogramSnapshot SnapshotFromBuckets(
    const uint64_t counts[HistogramBuckets::kBuckets], uint64_t sum) {
  HistogramSnapshot s;
  s.sum = sum;
  for (int b = 0; b < HistogramBuckets::kBuckets; ++b) s.count += counts[b];
  if (s.count == 0) return s;
  s.mean = static_cast<double>(s.sum) / static_cast<double>(s.count);

  // rank(q) = ceil(q * count) clamped to [1, count]; the quantile is
  // the upper bound of the bucket holding that rank.
  auto quantile = [&](double q) {
    uint64_t rank =
        static_cast<uint64_t>(std::ceil(q * static_cast<double>(s.count)));
    if (rank < 1) rank = 1;
    if (rank > s.count) rank = s.count;
    uint64_t seen = 0;
    for (int b = 0; b < HistogramBuckets::kBuckets; ++b) {
      seen += counts[b];
      if (seen >= rank) return HistogramBuckets::BucketBound(b);
    }
    return HistogramBuckets::BucketBound(HistogramBuckets::kBuckets - 1);
  };
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  for (int b = HistogramBuckets::kBuckets; b-- > 0;) {
    if (counts[b] != 0) {
      s.max = HistogramBuckets::BucketBound(b);
      break;
    }
  }
  return s;
}

Registry& Registry::Global() {
  static Registry* r = new Registry();  // never destroyed: metrics may
  return *r;                            // be bumped during static exit
}

std::string Registry::Key(std::string_view name, std::string_view label) {
  if (label.empty()) return std::string(name);
  std::string key;
  key.reserve(name.size() + label.size() + 2);
  key.append(name);
  key.push_back('{');
  key.append(label);
  key.push_back('}');
  return key;
}

Counter& Registry::GetCounter(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[Key(name, label)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[Key(name, label)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[Key(name, label)];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::RegisterDerivedCounter(std::string_view name,
                                      std::string_view label,
                                      std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  derived_counters_[Key(name, label)] = std::move(fn);
}

uint64_t Registry::CounterValue(std::string_view name,
                                std::string_view label) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = Key(name, label);
  auto it = counters_.find(key);
  if (it != counters_.end()) return it->second->value();
  auto dit = derived_counters_.find(key);
  return dit == derived_counters_.end() ? 0 : dit->second();
}

int64_t Registry::GaugeValue(std::string_view name,
                             std::string_view label) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(Key(name, label));
  return it == gauges_.end() ? 0 : it->second->value();
}

HistogramSnapshot Registry::HistogramSnap(std::string_view name,
                                          std::string_view label) const {
  const Histogram* h = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(Key(name, label));
    if (it != histograms_.end()) h = it->second.get();
  }
  return h == nullptr ? HistogramSnapshot{} : h->Snap();
}

std::vector<MetricRow> Registry::Rows() const {
  // Split the composite key back into (name, label) — labels are always
  // rendered as a trailing "{...}".
  auto split = [](const std::string& key, MetricRow* row) {
    const size_t brace = key.find('{');
    if (brace == std::string::npos || key.back() != '}') {
      row->name = key;
      return;
    }
    row->name = key.substr(0, brace);
    row->label = key.substr(brace + 1, key.size() - brace - 2);
  };

  std::vector<MetricRow> rows;
  std::lock_guard<std::mutex> lock(mu_);
  rows.reserve(counters_.size() + derived_counters_.size() + gauges_.size() +
               histograms_.size());
  // Counter rows are the key-ordered merge of the physical and derived
  // maps; a physical row shadows a derived row with the same identity.
  auto cit = counters_.begin();
  auto dit = derived_counters_.begin();
  while (cit != counters_.end() || dit != derived_counters_.end()) {
    MetricRow row;
    row.kind = MetricRow::Kind::kCounter;
    const bool take_physical =
        dit == derived_counters_.end() ||
        (cit != counters_.end() && cit->first <= dit->first);
    if (take_physical) {
      split(cit->first, &row);
      row.counter = cit->second->value();
      if (dit != derived_counters_.end() && dit->first == cit->first) ++dit;
      ++cit;
    } else {
      split(dit->first, &row);
      row.counter = dit->second();
      ++dit;
    }
    rows.push_back(std::move(row));
  }
  for (const auto& [key, g] : gauges_) {
    MetricRow row;
    split(key, &row);
    row.kind = MetricRow::Kind::kGauge;
    row.gauge = g->value();
    rows.push_back(std::move(row));
  }
  for (const auto& [key, h] : histograms_) {
    MetricRow row;
    split(key, &row);
    row.kind = MetricRow::Kind::kHistogram;
    row.hist = h->Snap();
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string Registry::ToJson() const {
  const std::vector<MetricRow> rows = Rows();
  std::string out = "{\"counters\":{";
  auto emit_group = [&](MetricRow::Kind kind) {
    bool first = true;
    for (const MetricRow& row : rows) {
      if (row.kind != kind) continue;
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      out += JsonEscape(row.name);
      if (!row.label.empty()) {
        out.push_back('{');
        out += JsonEscape(row.label);
        out.push_back('}');
      }
      out += "\":";
      char buf[256];
      switch (kind) {
        case MetricRow::Kind::kCounter:
          std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(row.counter));
          out += buf;
          break;
        case MetricRow::Kind::kGauge:
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(row.gauge));
          out += buf;
          break;
        case MetricRow::Kind::kHistogram:
          std::snprintf(
              buf, sizeof(buf),
              "{\"count\":%llu,\"sum\":%llu,\"mean\":%.1f,\"p50\":%llu,"
              "\"p90\":%llu,\"p95\":%llu,\"p99\":%llu,\"max\":%llu}",
              static_cast<unsigned long long>(row.hist.count),
              static_cast<unsigned long long>(row.hist.sum), row.hist.mean,
              static_cast<unsigned long long>(row.hist.p50),
              static_cast<unsigned long long>(row.hist.p90),
              static_cast<unsigned long long>(row.hist.p95),
              static_cast<unsigned long long>(row.hist.p99),
              static_cast<unsigned long long>(row.hist.max));
          out += buf;
          break;
      }
    }
  };
  emit_group(MetricRow::Kind::kCounter);
  out += "},\"gauges\":{";
  emit_group(MetricRow::Kind::kGauge);
  out += "},\"histograms\":{";
  emit_group(MetricRow::Kind::kHistogram);
  out += "}}";
  return out;
}

}  // namespace xee::obs

#endif  // XEE_OBS_OFF
