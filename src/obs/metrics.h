#ifndef XEE_OBS_METRICS_H_
#define XEE_OBS_METRICS_H_

#include <atomic>
#include <cstdio>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// xee_obs: the observability subsystem (DESIGN.md §10). Labeled
/// counters, gauges and log-bucketed latency histograms behind a
/// registry, cheap enough to leave in release hot paths:
///
///   - Counter::Inc / Histogram::Record are relaxed atomic adds on
///     cache-line-aligned, thread-sharded slots; no locks, no clock
///     reads, no allocation.
///   - Registry::Get* takes a mutex only on first use of a (name,
///     label) pair; callers cache the returned reference (it is stable
///     for the registry's lifetime).
///   - Compiling with -DXEE_OBS_OFF turns the whole API into inline
///     no-ops (header-only; binaries need no xee_obs symbols), for
///     measuring the instrumentation overhead itself.
///
/// Registries are instantiable — the service layer owns one per
/// EstimationService instance so concurrent services (and tests) do not
/// bleed counters into each other — and Registry::Global() serves the
/// process-wide singletons (estimator, thread pool, fault injector).
namespace xee::obs {

/// Point-in-time view of one histogram. Quantiles are bucket upper
/// bounds (inclusive), so conservative by at most one sub-bucket —
/// 12.5% relative at the default 8 sub-buckets per octave. Unit-
/// agnostic: the recorder picks the unit (latency metrics record
/// nanoseconds and carry a `_ns` name suffix by convention).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  double mean = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;  ///< upper bound of the highest non-empty bucket
};

/// Log-bucketed histogram math, shared by the live and no-op builds
/// (and unit-tested against exact reference values in obs_test.cc).
///
/// Values 0..7 get exact buckets; past that, each power-of-two octave
/// [2^k, 2^(k+1)) splits into 8 linear sub-buckets of width 2^(k-3).
/// Any uint64 value maps to one of 496 buckets with relative bucket
/// width <= 1/8.
struct HistogramBuckets {
  static constexpr int kSubBits = 3;
  static constexpr int kSub = 1 << kSubBits;  // sub-buckets per octave
  static constexpr int kBuckets = kSub + (64 - kSubBits) * kSub;  // 496

  static constexpr int BucketOf(uint64_t v) {
    if (v < static_cast<uint64_t>(kSub)) return static_cast<int>(v);
    const int k = 63 - std::countl_zero(v);  // floor(log2 v), >= kSubBits
    const int sub =
        static_cast<int>((v >> (k - kSubBits)) & (kSub - 1));
    return kSub + (k - kSubBits) * kSub + sub;
  }

  /// Largest value mapping to bucket `b` (the value quantiles report).
  static constexpr uint64_t BucketBound(int b) {
    if (b < kSub) return static_cast<uint64_t>(b);
    const int k = kSubBits + (b - kSub) / kSub;
    const int sub = (b - kSub) % kSub;
    // 2^k + (sub+1) * 2^(k-kSubBits) - 1; the top bucket (k=63, sub=7)
    // wraps to exactly UINT64_MAX under unsigned arithmetic.
    return (1ull << k) +
           ((static_cast<uint64_t>(sub) + 1) << (k - kSubBits)) - 1;
  }
};

#ifndef XEE_OBS_OFF

/// Monotonic event counter. Inc/Add are wait-free relaxed adds.
class Counter {
 public:
  void Inc() { v_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<uint64_t> v_{0};
};

/// Instantaneous signed level (queue depth, in-flight requests).
class Gauge {
 public:
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  void Set(int64_t n) { v_.store(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<int64_t> v_{0};
};

/// Concurrent log-bucketed histogram (see HistogramBuckets for the
/// bucket math). Recording threads spread over kShards cache-line-
/// aligned shards by a thread-local index, so concurrent recorders do
/// not ping-pong one cache line; Snap() merges the shards (approximate
/// under concurrent writes, which is fine for monitoring).
class Histogram {
 public:
  static constexpr int kShards = 4;  // power of two

  void Record(uint64_t v) {
    Shard& s = shards_[ShardIndex()];
    s.buckets[HistogramBuckets::BucketOf(v)].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot Snap() const;

  /// Merges the shards' per-bucket counts into `out` and returns the
  /// merged value sum — the raw material for windowed (delta) scraping
  /// (obs/window.h). Approximate under concurrent writes, like Snap().
  uint64_t SnapBuckets(uint64_t out[HistogramBuckets::kBuckets]) const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[HistogramBuckets::kBuckets] = {};
    std::atomic<uint64_t> sum{0};
  };

  static size_t ShardIndex() {
    static std::atomic<size_t> next{0};
    thread_local const size_t idx =
        next.fetch_add(1, std::memory_order_relaxed);
    return idx & (kShards - 1);
  }

  Shard shards_[kShards];
};

/// Quantile/mean math over one merged bucket array (`sum` is the sum of
/// the recorded values, `counts` their bucket tallies). Shared by
/// Histogram::Snap and the windowed scraper (obs/window.h), which feeds
/// it bucket *deltas* to get per-window quantiles out of cumulative
/// histograms.
HistogramSnapshot SnapshotFromBuckets(
    const uint64_t counts[HistogramBuckets::kBuckets], uint64_t sum);

/// One row of Registry::Rows(): a metric's identity plus its current
/// value (kind selects which payload field is meaningful).
struct MetricRow {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;   ///< e.g. "service.outcome"
  std::string label;  ///< e.g. "reason=shed"; empty when unlabeled
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;
  int64_t gauge = 0;
  HistogramSnapshot hist;
};

/// Named metrics with an optional label dimension. (name, label) pairs
/// identify metrics: two Get* calls with equal identity return the same
/// object; distinct labels on one name are distinct metrics. Returned
/// references stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry for cross-cutting subsystems (estimator,
  /// thread pool, fault injection). Never destroyed.
  static Registry& Global();

  Counter& GetCounter(std::string_view name, std::string_view label = {});
  Gauge& GetGauge(std::string_view name, std::string_view label = {});
  Histogram& GetHistogram(std::string_view name, std::string_view label = {});

  /// Registers a counter row whose value is computed at read time
  /// instead of stored here — for writers that keep their counts in
  /// caller-owned cells too hot for a shared fetch_add (the per-tenant
  /// lanes, see TenantTable). The callback runs under the registry
  /// mutex on every read surface (CounterValue / Rows / ToJson), so it
  /// must be lock-free, must not call back into this registry, and must
  /// stay valid until the registry is destroyed. A physical counter
  /// with the same (name, label) shadows the derived row. Re-registering
  /// an identity replaces its callback.
  void RegisterDerivedCounter(std::string_view name, std::string_view label,
                              std::function<uint64_t()> fn);

  /// Read-side lookups that never create: zero / empty snapshot when
  /// the metric does not exist (the fuzz oracles and tests use these).
  uint64_t CounterValue(std::string_view name,
                        std::string_view label = {}) const;
  int64_t GaugeValue(std::string_view name, std::string_view label = {}) const;
  HistogramSnapshot HistogramSnap(std::string_view name,
                                  std::string_view label = {}) const;

  /// Every metric, grouped by kind (counters, then gauges, then
  /// histograms), each group sorted by (name, label).
  std::vector<MetricRow> Rows() const;

  /// The statsz rendering:
  ///   {"counters":{"name{label}":n,...},"gauges":{...},
  ///    "histograms":{"name":{"count":n,"mean":f,"p50":n,...},...}}
  std::string ToJson() const;

 private:
  static std::string Key(std::string_view name, std::string_view label);

  mutable std::mutex mu_;
  // Keyed by Key(name, label); unique_ptr keeps addresses stable while
  // the maps grow.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<uint64_t()>> derived_counters_;
};

#else  // XEE_OBS_OFF: the whole API degrades to inline no-ops.

class Counter {
 public:
  void Inc() {}
  void Add(uint64_t) {}
  uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void Add(int64_t) {}
  void Sub(int64_t) {}
  void Set(int64_t) {}
  int64_t value() const { return 0; }
};

class Histogram {
 public:
  static constexpr int kShards = 4;
  void Record(uint64_t) {}
  HistogramSnapshot Snap() const { return {}; }
};

struct MetricRow {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  std::string label;
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;
  int64_t gauge = 0;
  HistogramSnapshot hist;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Global() {
    static Registry r;
    return r;
  }

  Counter& GetCounter(std::string_view, std::string_view = {}) {
    static Counter c;
    return c;
  }
  Gauge& GetGauge(std::string_view, std::string_view = {}) {
    static Gauge g;
    return g;
  }
  Histogram& GetHistogram(std::string_view, std::string_view = {}) {
    static Histogram h;
    return h;
  }

  void RegisterDerivedCounter(std::string_view, std::string_view,
                              std::function<uint64_t()>) {}

  uint64_t CounterValue(std::string_view, std::string_view = {}) const {
    return 0;
  }
  int64_t GaugeValue(std::string_view, std::string_view = {}) const {
    return 0;
  }
  HistogramSnapshot HistogramSnap(std::string_view,
                                  std::string_view = {}) const {
    return {};
  }

  std::vector<MetricRow> Rows() const { return {}; }
  std::string ToJson() const {
    return "{\"counters\":{},\"gauges\":{},\"histograms\":{}}";
  }
};

#endif  // XEE_OBS_OFF

/// Length of the valid UTF-8 sequence starting at s[i], or 0 when the
/// bytes there are malformed (bad lead, truncation, overlong encoding,
/// surrogate, or > U+10FFFF). ASCII is handled by the caller.
inline size_t Utf8SequenceLen(std::string_view s, size_t i) {
  const unsigned char b0 = static_cast<unsigned char>(s[i]);
  size_t len;
  uint32_t cp, min;
  if ((b0 & 0xe0) == 0xc0) {
    len = 2, cp = b0 & 0x1fu, min = 0x80;
  } else if ((b0 & 0xf0) == 0xe0) {
    len = 3, cp = b0 & 0x0fu, min = 0x800;
  } else if ((b0 & 0xf8) == 0xf0) {
    len = 4, cp = b0 & 0x07u, min = 0x10000;
  } else {
    return 0;  // stray continuation byte or 0xFE/0xFF lead
  }
  if (i + len > s.size()) return 0;
  for (size_t k = 1; k < len; ++k) {
    const unsigned char b = static_cast<unsigned char>(s[i + k]);
    if ((b & 0xc0) != 0x80) return 0;
    cp = (cp << 6) | (b & 0x3fu);
  }
  if (cp < min || cp > 0x10ffff) return 0;
  if (cp >= 0xd800 && cp <= 0xdfff) return 0;
  return len;
}

/// Escapes `s` for inclusion in a JSON string literal: quotes,
/// backslashes, control characters, and — because exporter inputs
/// include operator-chosen registry names and raw client query strings
/// — invalid UTF-8, replaced byte-for-byte with U+FFFD so every export
/// stays parseable. Shared string math, live in BOTH build modes (the
/// healthz surface renders under XEE_OBS_OFF too).
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"':
        out += "\\\"";
        ++i;
        continue;
      case '\\':
        out += "\\\\";
        ++i;
        continue;
      case '\n':
        out += "\\n";
        ++i;
        continue;
      case '\r':
        out += "\\r";
        ++i;
        continue;
      case '\t':
        out += "\\t";
        ++i;
        continue;
      default:
        break;
    }
    const unsigned char b = static_cast<unsigned char>(c);
    if (b < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", b);
      out += buf;
      ++i;
      continue;
    }
    if (b < 0x80) {
      out.push_back(c);
      ++i;
      continue;
    }
    // Multi-byte region: copy only well-formed UTF-8 through; anything
    // else becomes U+FFFD, one replacement per bad byte.
    const size_t len = Utf8SequenceLen(s, i);
    if (len == 0) {
      out += "\xef\xbf\xbd";  // U+FFFD REPLACEMENT CHARACTER
      ++i;
    } else {
      out.append(s.substr(i, len));
      i += len;
    }
  }
  return out;
}

}  // namespace xee::obs

#endif  // XEE_OBS_METRICS_H_
