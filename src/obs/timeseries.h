#ifndef XEE_OBS_TIMESERIES_H_
#define XEE_OBS_TIMESERIES_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/window.h"

/// Bounded time-series over the cumulative metrics in a Registry
/// (DESIGN.md §16). StatszJson is a point-in-time aggregate; operating
/// the service needs the *trajectory* — requests per interval, the
/// p99 of the last minute, the shed rate during the burst five minutes
/// ago. The TimeSeriesStore delta-scrapes watched counters, gauges,
/// and histograms through obs/window.h cursors at a fixed interval and
/// retains the last `retention` points of each series in a ring.
///
/// Series identity is the registry row key ("name{label}"), so a
/// per-tenant label dimension falls out of watching a prefix
/// ("tenant.requests{tenant=" matches every tenant's row); cardinality
/// stays bounded by `max_series` — rows past the bound are counted in
/// dropped_series() instead of stored.
///
/// Sampling is driver-clocked: nothing here reads a wall clock. The
/// serving layer's ObsTick feeds wall microseconds from a scrape
/// thread; the traffic simulator feeds virtual time, which makes whole
/// trajectories (and the SLO alerts computed over them) replayable
/// bit-for-bit. Under XEE_OBS_OFF the store compiles to inline no-ops.
namespace xee::obs {

/// One retained sample. Counter series store the per-interval delta
/// (rate basis), gauge series the raw level, histogram sub-series the
/// per-interval quantile/count/mean.
struct TsPoint {
  uint64_t t_us = 0;
  double value = 0;
};

struct TimeSeriesOptions {
  /// Minimum spacing between samples; Sample() calls inside the
  /// interval are no-ops, so drivers may tick as often as they like.
  uint64_t interval_us = 1'000'000;
  /// Points retained per series (the ring size).
  size_t retention = 240;
  /// Bound on distinct series (cardinality guard for labeled watches).
  size_t max_series = 512;
};

#ifndef XEE_OBS_OFF

/// Thread-safety: all methods may be called from any thread; one mutex
/// guards the store (scraping is periodic and read traffic is export
/// surfaces, so contention is structural noise).
class TimeSeriesStore {
 public:
  /// `registry` must outlive the store.
  TimeSeriesStore(Registry* registry, TimeSeriesOptions options);

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  const TimeSeriesOptions& options() const { return options_; }

  /// Watches the counter row whose key is exactly `key` / every counter
  /// row whose key starts with `prefix`. Rows that do not exist yet are
  /// picked up when they appear (per-tenant rows register lazily).
  void WatchCounter(std::string key);
  void WatchCounterPrefix(std::string prefix);
  /// Same, for gauges (series of raw levels, not deltas).
  void WatchGauge(std::string key);
  void WatchGaugePrefix(std::string prefix);
  /// Watches one histogram through a delta cursor; expands to the
  /// sub-series `key.count` / `key.p50` / `key.p99` / `key.mean`.
  /// `h` must outlive the store (registry references are stable).
  void WatchHistogram(std::string key, Histogram* h);

  /// Takes one sample when `now_us` has advanced at least interval_us
  /// past the previous sample (the first call always samples). Returns
  /// whether a sample was taken.
  bool Sample(uint64_t now_us);

  uint64_t samples() const;
  uint64_t last_sample_us() const;
  size_t series_count() const;
  /// Counter/gauge rows that matched a watch but exceeded max_series.
  uint64_t dropped_series() const;

  std::vector<std::string> SeriesNames() const;
  /// The retained points of one series, oldest first (empty when the
  /// series does not exist).
  std::vector<TsPoint> Points(std::string_view series) const;

  /// Sum of the points with t_us in (now_us - window_us, now_us] — for
  /// delta series, the total events in the window.
  double SumOver(std::string_view series, uint64_t window_us,
                 uint64_t now_us) const;
  /// Largest point value in the same window (0 when empty) — for
  /// quantile sub-series, the worst interval in the window.
  double MaxOver(std::string_view series, uint64_t window_us,
                 uint64_t now_us) const;
  /// SumOver scaled to events per second.
  double RatePerSec(std::string_view series, uint64_t window_us,
                    uint64_t now_us) const;

  /// The .tsz rendering: options, sample count, and the newest
  /// `max_points` of every series as [t_us, value] pairs.
  std::string ToJson(size_t max_points = 32) const;

 private:
  struct Series {
    std::vector<TsPoint> ring;
    size_t pos = 0;       ///< next write index
    uint64_t count = 0;   ///< total points ever written
    uint64_t prev = 0;    ///< previous cumulative value (counter series)
  };
  struct HistWatch {
    std::string key;
    Histogram* hist;
    HistogramWindow cursor;
  };

  // All private helpers assume mu_ is held.
  Series* FindOrCreate(const std::string& key);
  void Append(Series* s, uint64_t t_us, double value);
  bool Matches(const std::string& key, const std::vector<std::string>& exact,
               const std::vector<std::string>& prefixes) const;
  const Series* Find(std::string_view key) const;

  TimeSeriesOptions options_;
  Registry* registry_;

  mutable std::mutex mu_;
  std::map<std::string, Series> series_;         // guarded by mu_
  std::vector<std::string> counter_keys_;        // guarded by mu_
  std::vector<std::string> counter_prefixes_;    // guarded by mu_
  std::vector<std::string> gauge_keys_;          // guarded by mu_
  std::vector<std::string> gauge_prefixes_;      // guarded by mu_
  std::vector<HistWatch> hist_watches_;          // guarded by mu_
  uint64_t samples_ = 0;                         // guarded by mu_
  uint64_t last_sample_us_ = 0;                  // guarded by mu_
  uint64_t dropped_ = 0;                         // guarded by mu_
};

#else  // XEE_OBS_OFF: the store compiles out entirely.

class TimeSeriesStore {
 public:
  TimeSeriesStore(Registry*, TimeSeriesOptions options)
      : options_(options) {}
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;
  const TimeSeriesOptions& options() const { return options_; }
  void WatchCounter(std::string) {}
  void WatchCounterPrefix(std::string) {}
  void WatchGauge(std::string) {}
  void WatchGaugePrefix(std::string) {}
  void WatchHistogram(std::string, Histogram*) {}
  bool Sample(uint64_t) { return false; }
  uint64_t samples() const { return 0; }
  uint64_t last_sample_us() const { return 0; }
  size_t series_count() const { return 0; }
  uint64_t dropped_series() const { return 0; }
  std::vector<std::string> SeriesNames() const { return {}; }
  std::vector<TsPoint> Points(std::string_view) const { return {}; }
  double SumOver(std::string_view, uint64_t, uint64_t) const { return 0; }
  double MaxOver(std::string_view, uint64_t, uint64_t) const { return 0; }
  double RatePerSec(std::string_view, uint64_t, uint64_t) const { return 0; }
  std::string ToJson(size_t = 32) const {
    return "{\"enabled\":false,\"samples\":0,\"series\":{}}";
  }

 private:
  TimeSeriesOptions options_;
};

#endif  // XEE_OBS_OFF

}  // namespace xee::obs

#endif  // XEE_OBS_TIMESERIES_H_
