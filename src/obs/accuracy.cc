#ifndef XEE_OBS_OFF

#include "obs/accuracy.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace xee::obs {

namespace {

/// SplitMix64 finalizer: a full-avalanche mix so the sampled tick
/// positions are spread uniformly rather than strided, yet fully
/// reproducible for a fixed seed.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void AppendDouble(double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

void AppendUint(uint64_t v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

/// Saturating round-to-uint64 for histogram units (milli-q-error, ppm).
uint64_t ToUnits(double v) {
  if (!(v > 0)) return 0;
  if (v >= 9.2e18) return UINT64_MAX;
  return static_cast<uint64_t>(v + 0.5);
}

}  // namespace

AccuracyTracker::AccuracyTracker(Registry* registry, AccuracyOptions options)
    : options_(options),
      registry_(registry),
      started_(registry->GetCounter("accuracy.samples", "phase=started")),
      recorded_(registry->GetCounter("accuracy.samples", "phase=recorded")),
      skipped_no_document_(
          registry->GetCounter("accuracy.samples", "phase=skipped_no_document")),
      deadline_suppressed_(registry->GetCounter(
          "accuracy.samples", "phase=deadline_suppressed")),
      backlog_suppressed_(
          registry->GetCounter("accuracy.samples", "phase=backlog_suppressed")),
      eval_error_(registry->GetCounter("accuracy.samples", "phase=eval_error")) {
  if (options_.sample != 0 && options_.drift_alpha <= 0) {
    options_.drift_alpha = 0.05;
  }
  if (options_.drift_alpha > 1) options_.drift_alpha = 1;
}

bool AccuracyTracker::ShouldSample() {
  if (options_.sample == 0) return false;
  const uint64_t tick = tick_.fetch_add(1, std::memory_order_relaxed);
  if (Mix(options_.seed ^ tick) % options_.sample != 0) return false;
  started_.Inc();
  return true;
}

bool AccuracyTracker::TryBeginShadow() {
  uint64_t cur = pending_.load(std::memory_order_relaxed);
  while (true) {
    if (cur >= options_.max_pending) {
      backlog_suppressed_.Inc();
      return false;
    }
    if (pending_.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_relaxed)) {
      return true;
    }
  }
}

void AccuracyTracker::EndShadow() {
  pending_.fetch_sub(1, std::memory_order_relaxed);
}

void AccuracyTracker::SkipNoDocument() { skipped_no_document_.Inc(); }
void AccuracyTracker::SuppressDeadline() { deadline_suppressed_.Inc(); }
void AccuracyTracker::SkipEvalError() { eval_error_.Inc(); }

SynopsisAccuracy AccuracyTracker::Record(const std::string& synopsis,
                                         uint64_t epoch,
                                         const QueryClass& cls,
                                         std::string_view query,
                                         double estimate, double truth) {
  const double qerror = AccuracyMath::QError(estimate, truth);
  const double signed_err = AccuracyMath::SignedRelError(estimate, truth);
  const std::string label = cls.Label();
  recorded_.Inc();

  std::lock_guard<std::mutex> lock(mu_);

  ClassState& cs = classes_[label];
  if (cs.qerror_milli == nullptr) {
    cs.qerror_milli = &registry_->GetHistogram("accuracy.qerror_milli", label);
    cs.over_ppm =
        &registry_->GetHistogram("accuracy.error_ppm", "dir=over," + label);
    cs.under_ppm =
        &registry_->GetHistogram("accuracy.error_ppm", "dir=under," + label);
  }
  cs.count += 1;
  cs.sum_signed += signed_err;
  cs.sum_abs += std::fabs(signed_err);
  cs.sum_qerror += qerror;
  if (qerror > cs.max_qerror) cs.max_qerror = qerror;
  cs.qerror_milli->Record(ToUnits(qerror * 1000.0));
  (signed_err >= 0 ? cs.over_ppm : cs.under_ppm)
      ->Record(ToUnits(std::fabs(signed_err) * 1e6));

  DriftState& ds = drift_[synopsis];
  if (ds.samples == 0 || ds.epoch != epoch) {
    // First sample, or the synopsis was re-registered under a new epoch:
    // drift state restarts (the old synopsis's errors say nothing about
    // the new one). A stale verdict cleared this way is a *recovery* —
    // the self-healing loop's terminal transition: a rebuild (or manual
    // re-registration) published a new epoch and the conviction no
    // longer applies.
    if (ds.stale) {
      registry_->GetCounter("accuracy.drift", "transition=recovered").Inc();
    }
    ds = DriftState{};
    ds.epoch = epoch;
    ds.ewma = qerror;
  } else {
    ds.ewma = options_.drift_alpha * qerror +
              (1.0 - options_.drift_alpha) * ds.ewma;
  }
  const bool was_stale = ds.stale;
  ds.samples += 1;
  ds.stale = ds.samples >= options_.drift_min_samples &&
             ds.ewma > options_.drift_qerror_limit;
  if (!was_stale && ds.stale) {
    registry_->GetCounter("accuracy.drift", "transition=stale").Inc();
  }

  if (options_.offender_capacity > 0) {
    const bool full = offenders_.size() >= options_.offender_capacity;
    if (!full || qerror > offenders_.back().qerror) {
      AccuracyOffender off;
      off.synopsis = synopsis;
      off.query = std::string(query);
      off.label = label;
      off.estimate = estimate;
      off.truth = truth;
      off.qerror = qerror;
      off.seq = ++offender_seq_;
      offenders_.push_back(std::move(off));
      std::stable_sort(offenders_.begin(), offenders_.end(),
                       [](const AccuracyOffender& a, const AccuracyOffender& b) {
                         return a.qerror > b.qerror;
                       });
      if (offenders_.size() > options_.offender_capacity) {
        offenders_.resize(options_.offender_capacity);
      }
    }
  }

  SynopsisAccuracy state;
  state.name = synopsis;
  state.epoch = ds.epoch;
  state.samples = ds.samples;
  state.ewma_qerror = ds.ewma;
  state.stale = ds.stale;
  return state;
}

std::vector<ClassAccuracy> AccuracyTracker::Classes() const {
  std::vector<ClassAccuracy> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(classes_.size());
  for (const auto& [label, cs] : classes_) {
    ClassAccuracy c;
    c.label = label;
    c.count = cs.count;
    const double n = static_cast<double>(cs.count);
    c.mean_signed_error = cs.count == 0 ? 0 : cs.sum_signed / n;
    c.mean_abs_error = cs.count == 0 ? 0 : cs.sum_abs / n;
    c.mean_qerror = cs.count == 0 ? 0 : cs.sum_qerror / n;
    c.max_qerror = cs.max_qerror;
    out.push_back(std::move(c));
  }
  return out;  // map order == sorted by label
}

std::vector<SynopsisAccuracy> AccuracyTracker::Synopses() const {
  std::vector<SynopsisAccuracy> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(drift_.size());
  for (const auto& [name, ds] : drift_) {
    SynopsisAccuracy s;
    s.name = name;
    s.epoch = ds.epoch;
    s.samples = ds.samples;
    s.ewma_qerror = ds.ewma;
    s.stale = ds.stale;
    out.push_back(std::move(s));
  }
  return out;  // map order == sorted by name
}

std::optional<SynopsisAccuracy> AccuracyTracker::SynopsisState(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = drift_.find(std::string(name));
  if (it == drift_.end()) return std::nullopt;
  SynopsisAccuracy s;
  s.name = it->first;
  s.epoch = it->second.epoch;
  s.samples = it->second.samples;
  s.ewma_qerror = it->second.ewma;
  s.stale = it->second.stale;
  return s;
}

std::vector<AccuracyOffender> AccuracyTracker::Offenders() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offenders_;
}

std::string AccuracyTracker::ToJson() const {
  const std::vector<ClassAccuracy> classes = Classes();
  const std::vector<SynopsisAccuracy> synopses = Synopses();
  const std::vector<AccuracyOffender> offenders = Offenders();

  std::string j = "{\"enabled\":";
  j += enabled() ? "true" : "false";
  j += ",\"sample\":";
  AppendUint(options_.sample, &j);
  j += ",\"drift_qerror_limit\":";
  AppendDouble(options_.drift_qerror_limit, &j);
  j += ",\"drift_min_samples\":";
  AppendUint(options_.drift_min_samples, &j);

  j += ",\"samples\":{\"started\":";
  AppendUint(started_.value(), &j);
  j += ",\"recorded\":";
  AppendUint(recorded_.value(), &j);
  j += ",\"skipped_no_document\":";
  AppendUint(skipped_no_document_.value(), &j);
  j += ",\"deadline_suppressed\":";
  AppendUint(deadline_suppressed_.value(), &j);
  j += ",\"backlog_suppressed\":";
  AppendUint(backlog_suppressed_.value(), &j);
  j += ",\"eval_error\":";
  AppendUint(eval_error_.value(), &j);
  j += ",\"pending\":";
  AppendUint(pending(), &j);
  j += "}";

  j += ",\"classes\":{";
  for (size_t i = 0; i < classes.size(); ++i) {
    const ClassAccuracy& c = classes[i];
    if (i != 0) j += ",";
    j += "\"";
    j += JsonEscape(c.label);
    j += "\":{\"count\":";
    AppendUint(c.count, &j);
    j += ",\"mean_signed_error\":";
    AppendDouble(c.mean_signed_error, &j);
    j += ",\"mean_abs_error\":";
    AppendDouble(c.mean_abs_error, &j);
    j += ",\"mean_qerror\":";
    AppendDouble(c.mean_qerror, &j);
    j += ",\"max_qerror\":";
    AppendDouble(c.max_qerror, &j);
    j += "}";
  }
  j += "}";

  j += ",\"synopses\":{";
  for (size_t i = 0; i < synopses.size(); ++i) {
    const SynopsisAccuracy& s = synopses[i];
    if (i != 0) j += ",";
    j += "\"";
    j += JsonEscape(s.name);
    j += "\":{\"epoch\":";
    AppendUint(s.epoch, &j);
    j += ",\"samples\":";
    AppendUint(s.samples, &j);
    j += ",\"ewma_qerror\":";
    AppendDouble(s.ewma_qerror, &j);
    j += ",\"stale\":";
    j += s.stale ? "true" : "false";
    j += "}";
  }
  j += "}";

  j += ",\"offenders\":[";
  for (size_t i = 0; i < offenders.size(); ++i) {
    const AccuracyOffender& o = offenders[i];
    if (i != 0) j += ",";
    j += "{\"synopsis\":\"";
    j += JsonEscape(o.synopsis);
    j += "\",\"query\":\"";
    j += JsonEscape(o.query);
    j += "\",\"class\":\"";
    j += JsonEscape(o.label);
    j += "\"";
    j += ",\"estimate\":";
    AppendDouble(o.estimate, &j);
    j += ",\"truth\":";
    AppendDouble(o.truth, &j);
    j += ",\"qerror\":";
    AppendDouble(o.qerror, &j);
    j += "}";
  }
  j += "]}";
  return j;
}

}  // namespace xee::obs

#endif  // XEE_OBS_OFF
