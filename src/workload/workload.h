#ifndef XEE_WORKLOAD_WORKLOAD_H_
#define XEE_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "xml/tree.h"
#include "xpath/query.h"

namespace xee::workload {

/// Workload generation knobs, following the protocol of paper Section 7:
/// simple queries are random subsequences of root-to-leaf paths; branch
/// queries merge two subsequences sharing a common prefix; order queries
/// fix the order between the sibling branch heads of branch queries.
/// Duplicates and negative queries (true count 0) are removed.
struct WorkloadOptions {
  uint64_t seed = 7;
  /// Queries *generated* per class before dedup/negative removal (the
  /// paper generates 4000 + 4000; the library defaults are scaled down).
  size_t simple_count = 800;
  size_t branch_count = 800;
  /// Query size (node count) range, inclusive (paper: 3..12).
  size_t min_size = 3;
  size_t max_size = 12;
};

/// A generated query with its exact result count (ground truth).
struct WorkloadQuery {
  xpath::Query query;
  uint64_t true_count = 0;
};

/// The per-dataset workload of Section 7 (Table 2), with order queries
/// split by target position for Figures 12 and 13.
struct Workload {
  std::vector<WorkloadQuery> simple;
  std::vector<WorkloadQuery> branch;
  /// Sibling-order queries whose target lies in a branch part (Fig. 12).
  std::vector<WorkloadQuery> order_branch_target;
  /// Sibling-order queries whose target lies in the trunk (Fig. 13).
  std::vector<WorkloadQuery> order_trunk_target;

  size_t TotalWithoutOrder() const { return simple.size() + branch.size(); }
  size_t TotalWithOrder() const {
    return order_branch_target.size() + order_trunk_target.size();
  }
};

/// Generates the workload for `doc` (must be finalized). Deterministic
/// for a fixed (document, options) pair. Internally labels the document
/// and evaluates candidate queries exactly, so cost is roughly
/// (#queries) x O(|doc|).
Workload GenerateWorkload(const xml::Document& doc,
                          const WorkloadOptions& options);

}  // namespace xee::workload

#endif  // XEE_WORKLOAD_WORKLOAD_H_
