#include "workload/workload.h"

#include <algorithm>
#include <set>
#include <string>

#include "common/rng.h"
#include "encoding/labeling.h"
#include "eval/exact_evaluator.h"
#include "xpath/parser.h"

namespace xee::workload {
namespace {

using encoding::TagPath;
using xpath::OrderConstraint;
using xpath::OrderKind;
using xpath::Query;
using xpath::RootMode;
using xpath::StructAxis;

/// Sorted random subsequence of {0, ..., n-1} of the given size that
/// always includes index `forced_first` as its first element when
/// `forced_first >= 0`.
std::vector<size_t> RandomIndices(Rng& rng, size_t n, size_t size,
                                  int forced_first) {
  std::vector<size_t> pool;
  size_t start = 0;
  if (forced_first >= 0) start = static_cast<size_t>(forced_first) + 1;
  for (size_t i = start; i < n; ++i) pool.push_back(i);
  const size_t want = forced_first >= 0 ? size - 1 : size;
  // Partial Fisher-Yates.
  std::vector<size_t> picked;
  for (size_t i = 0; i < want && !pool.empty(); ++i) {
    size_t j = rng.Index(pool.size());
    picked.push_back(pool[j]);
    pool[j] = pool.back();
    pool.pop_back();
  }
  std::sort(picked.begin(), picked.end());
  if (forced_first >= 0) {
    picked.insert(picked.begin(), static_cast<size_t>(forced_first));
  }
  return picked;
}

/// Appends a chain of steps for path positions `idx` of `path` under
/// `parent` in `q` (parent = -1 starts the query). Adjacent path
/// positions become '/', gaps become '//'. Returns the node ids added.
std::vector<int> AppendChain(Query* q, const xml::Document& doc,
                             const TagPath& path,
                             const std::vector<size_t>& idx, int parent,
                             size_t prev_pos) {
  std::vector<int> nodes;
  for (size_t k = 0; k < idx.size(); ++k) {
    const bool adjacent = idx[k] == prev_pos + 1;
    const StructAxis axis =
        adjacent ? StructAxis::kChild : StructAxis::kDescendant;
    parent = q->AddNode(doc.TagNameOf(path[idx[k]]), axis, parent);
    nodes.push_back(parent);
    prev_pos = idx[k];
  }
  return nodes;
}

class Generator {
 public:
  Generator(const xml::Document& doc, const WorkloadOptions& opt)
      : doc_(doc),
        opt_(opt),
        rng_(opt.seed ^ 0x9E3779B9),
        labeling_(encoding::LabelDocument(doc)),
        eval_(doc) {}

  Workload Run() {
    Workload w;
    GenerateSimple(&w);
    GenerateBranchAndOrder(&w);
    return w;
  }

 private:
  const encoding::EncodingTable& table() const { return labeling_.table; }

  /// Dedup + negative filter; returns true and fills `true_count` when
  /// the query is fresh and positive.
  bool Admit(const Query& q, std::set<std::string>* seen,
             uint64_t* true_count) {
    std::string key = q.ToString();
    if (!seen->insert(key).second) return false;
    auto r = eval_.Count(q);
    if (!r.ok() || r.value() == 0) return false;
    *true_count = r.value();
    return true;
  }

  size_t PickSize(size_t limit) {
    size_t lo = std::min(opt_.min_size, limit);
    size_t hi = std::min(opt_.max_size, limit);
    if (lo < 1) lo = 1;
    if (hi < lo) hi = lo;
    return static_cast<size_t>(rng_.UniformInt(lo, hi));
  }

  void GenerateSimple(Workload* w) {
    std::set<std::string> seen;
    const size_t paths = table().PathCount();
    for (size_t i = 0; i < opt_.simple_count; ++i) {
      const uint32_t enc = static_cast<uint32_t>(rng_.UniformInt(1, paths));
      const TagPath& path = table().Path(enc);
      const size_t size = PickSize(path.size());
      std::vector<size_t> idx = RandomIndices(rng_, path.size(), size, -1);
      if (idx.empty()) continue;

      Query q;
      q.root_mode = idx[0] == 0 ? RootMode::kAbsolute : RootMode::kAnywhere;
      AppendChain(&q, doc_, path, idx, -1, idx[0] == 0 ? 0 : SIZE_MAX - 1);
      q.target = static_cast<int>(q.size()) - 1;
      uint64_t count = 0;
      if (Admit(q, &seen, &count)) {
        w->simple.push_back(WorkloadQuery{std::move(q), count});
      }
    }
  }

  void GenerateBranchAndOrder(Workload* w) {
    std::set<std::string> seen_branch, seen_order;
    const size_t paths = table().PathCount();
    for (size_t i = 0; i < opt_.branch_count; ++i) {
      // Pick two paths sharing a common prefix of length >= 2 (so the
      // junction is below the root) whose continuations differ.
      const uint32_t e1 = static_cast<uint32_t>(rng_.UniformInt(1, paths));
      const uint32_t e2 = static_cast<uint32_t>(rng_.UniformInt(1, paths));
      if (e1 == e2) continue;
      const TagPath& p1 = table().Path(e1);
      const TagPath& p2 = table().Path(e2);
      size_t common = 0;
      while (common < p1.size() && common < p2.size() &&
             p1[common] == p2[common]) {
        ++common;
      }
      if (common < 1 || common >= p1.size() || common >= p2.size()) continue;
      // Junction position in the common prefix.
      const size_t jpos = rng_.UniformInt(0, common - 1);

      const size_t total = PickSize(opt_.max_size);
      // Split the size budget: trunk gets ~1/3, branches the rest.
      size_t trunk_size = std::max<size_t>(1, total / 3);
      trunk_size = std::min(trunk_size, jpos + 1);
      size_t branch_budget = total > trunk_size ? total - trunk_size : 2;
      size_t b1_size =
          std::max<size_t>(1, std::min(branch_budget / 2,
                                       p1.size() - jpos - 1));
      size_t b2_size = std::max<size_t>(
          1, std::min(branch_budget - branch_budget / 2,
                      p2.size() - jpos - 1));

      // Trunk: subsequence of positions [0, jpos] ending at jpos.
      std::vector<size_t> trunk_idx;
      if (trunk_size > 1) {
        trunk_idx = RandomIndices(rng_, jpos, trunk_size - 1, -1);
      }
      trunk_idx.push_back(jpos);

      // Branch heads forced to be the tags immediately below the
      // junction (child-attached), so sibling order axes apply.
      std::vector<size_t> b1_idx = RandomIndices(
          rng_, p1.size(), b1_size,
          static_cast<int>(jpos + 1) /* forced head */);
      std::vector<size_t> b2_idx =
          RandomIndices(rng_, p2.size(), b2_size,
                        static_cast<int>(jpos + 1));
      // Identical single-node branches would collapse the pattern.
      if (p1[b1_idx[0]] == p2[b2_idx[0]] && b1_idx.size() == 1 &&
          b2_idx.size() == 1) {
        continue;
      }

      Query q;
      q.root_mode =
          trunk_idx[0] == 0 ? RootMode::kAbsolute : RootMode::kAnywhere;
      std::vector<int> trunk = AppendChain(
          &q, doc_, p1, trunk_idx, -1, trunk_idx[0] == 0 ? 0 : SIZE_MAX - 1);
      const int junction = trunk.back();
      std::vector<int> b1 =
          AppendChain(&q, doc_, p1, b1_idx, junction, jpos);
      std::vector<int> b2 =
          AppendChain(&q, doc_, p2, b2_idx, junction, jpos);

      // Branch query: random target anywhere.
      {
        Query bq = q;
        bq.target = static_cast<int>(rng_.Index(bq.size()));
        uint64_t count = 0;
        if (Admit(bq, &seen_branch, &count)) {
          w->branch.push_back(WorkloadQuery{std::move(bq), count});
        }
      }

      // Order query: fix the order between the sibling heads, in a
      // random direction; targets in branch and in trunk.
      {
        Query oq = q;
        OrderConstraint c;
        c.kind = OrderKind::kSibling;
        const bool b1_first = rng_.Bernoulli(0.5);
        c.before = b1_first ? b1.front() : b2.front();
        c.after = b1_first ? b2.front() : b1.front();
        oq.orders.push_back(c);

        // Target in a branch part.
        {
          Query obq = oq;
          const std::vector<int>& side = rng_.Bernoulli(0.5) ? b1 : b2;
          obq.target = side[rng_.Index(side.size())];
          uint64_t count = 0;
          if (Admit(obq, &seen_order, &count)) {
            w->order_branch_target.push_back(
                WorkloadQuery{std::move(obq), count});
          }
        }
        // Target in the trunk part.
        {
          Query otq = oq;
          otq.target = trunk[rng_.Index(trunk.size())];
          uint64_t count = 0;
          if (Admit(otq, &seen_order, &count)) {
            w->order_trunk_target.push_back(
                WorkloadQuery{std::move(otq), count});
          }
        }
      }
    }
  }

  const xml::Document& doc_;
  WorkloadOptions opt_;
  Rng rng_;
  encoding::Labeling labeling_;
  eval::ExactEvaluator eval_;
};

}  // namespace

Workload GenerateWorkload(const xml::Document& doc,
                          const WorkloadOptions& options) {
  return Generator(doc, options).Run();
}

}  // namespace xee::workload
