#include "service/service_stats.h"

#include <bit>
#include <cmath>

#include "common/strings.h"

namespace xee::service {

void LatencyHistogram::Record(uint64_t ns) {
  const int idx = ns == 0 ? 0 : std::bit_width(ns) - 1;
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot s;
  uint64_t counts[kBuckets];
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += counts[i];
  }
  if (s.count == 0) return s;
  s.mean_us = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) /
              static_cast<double>(s.count) / 1e3;
  auto percentile = [&](double p) {
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p * static_cast<double>(s.count)));
    if (rank < 1) rank = 1;
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen >= rank) return static_cast<double>(1ull << (i + 1)) / 1e3;
    }
    return 0.0;
  };
  s.p50_us = percentile(0.50);
  s.p95_us = percentile(0.95);
  s.p99_us = percentile(0.99);
  return s;
}

ServiceStatsSnapshot ServiceStats::Snap(const LruStats& cache) const {
  ServiceStatsSnapshot s;
  s.requests = requests.load(std::memory_order_relaxed);
  s.batches = batches.load(std::memory_order_relaxed);
  s.exact_hits = exact_hits.load(std::memory_order_relaxed);
  s.canonical_hits = canonical_hits.load(std::memory_order_relaxed);
  s.misses = misses.load(std::memory_order_relaxed);
  s.shed = shed.load(std::memory_order_relaxed);
  s.degraded = degraded.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded.load(std::memory_order_relaxed);
  s.quarantined = quarantined.load(std::memory_order_relaxed);
  s.cache_evictions = cache.evictions;
  s.cache_bytes = cache.bytes;
  s.cache_entries = cache.entries;
  s.parse = parse.Snap();
  s.join = join.Snap();
  s.formula = formula.Snap();
  s.request = request.Snap();
  return s;
}

std::string ServiceStatsSnapshot::ToString() const {
  std::string out;
  out += StrFormat("requests: %llu (%llu batches)\n",
                   static_cast<unsigned long long>(requests),
                   static_cast<unsigned long long>(batches));
  const uint64_t outcomes = exact_hits + canonical_hits + misses;
  out += StrFormat(
      "plan cache: %llu exact hits, %llu canonical hits, %llu misses "
      "(%.1f%% hit)\n",
      static_cast<unsigned long long>(exact_hits),
      static_cast<unsigned long long>(canonical_hits),
      static_cast<unsigned long long>(misses),
      outcomes == 0 ? 0.0
                    : 100.0 * static_cast<double>(exact_hits + canonical_hits) /
                          static_cast<double>(outcomes));
  out += StrFormat("            %llu entries, %s charged, %llu evictions\n",
                   static_cast<unsigned long long>(cache_entries),
                   HumanBytes(cache_bytes).c_str(),
                   static_cast<unsigned long long>(cache_evictions));
  out += StrFormat(
      "robustness: %llu shed, %llu degraded, %llu deadline-exceeded, "
      "%llu quarantined\n",
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(degraded),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(quarantined));
  auto stage = [&](const char* name, const LatencyHistogram::Snapshot& h) {
    out += StrFormat(
        "%-8s n=%-8llu mean=%8.1fus  p50<=%8.1fus  p95<=%8.1fus  "
        "p99<=%8.1fus\n",
        name, static_cast<unsigned long long>(h.count), h.mean_us, h.p50_us,
        h.p95_us, h.p99_us);
  };
  stage("parse", parse);
  stage("join", join);
  stage("formula", formula);
  stage("request", request);
  return out;
}

}  // namespace xee::service
