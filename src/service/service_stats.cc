#include "service/service_stats.h"

#include "common/strings.h"

namespace xee::service {

ServiceStats::ServiceStats(obs::Registry* registry)
    : requests(registry->GetCounter("service.requests")),
      batches(registry->GetCounter("service.batches")),
      exact_hits(
          registry->GetCounter("service.plan_cache", "outcome=exact_hit")),
      canonical_hits(
          registry->GetCounter("service.plan_cache", "outcome=canonical_hit")),
      misses(registry->GetCounter("service.plan_cache", "outcome=miss")),
      memo_hits(registry->GetCounter("service.estimate_memo", "outcome=hit")),
      memo_misses(
          registry->GetCounter("service.estimate_memo", "outcome=miss")),
      analyzer_checked(
          registry->GetCounter("service.analyzer", "outcome=checked")),
      analyzer_pruned(
          registry->GetCounter("service.analyzer", "outcome=pruned")),
      analyzer_rewritten(
          registry->GetCounter("service.analyzer", "outcome=rewritten")),
      shed(registry->GetCounter("service.outcome", "reason=shed")),
      shed_single(
          registry->GetCounter("service.shed", "reason=admission_single")),
      shed_batch(
          registry->GetCounter("service.shed", "reason=admission_batch")),
      degraded(registry->GetCounter("service.outcome", "reason=degraded")),
      deadline_exceeded(
          registry->GetCounter("service.outcome", "reason=deadline_exceeded")),
      quarantined(
          registry->GetCounter("service.outcome", "reason=quarantined")),
      tail_shed(registry->GetCounter("service.trace.tail", "class=shed")),
      tail_deadline(
          registry->GetCounter("service.trace.tail", "class=deadline")),
      tail_error(registry->GetCounter("service.trace.tail", "class=error")),
      tail_pruned(registry->GetCounter("service.trace.tail", "class=pruned")),
      tail_degraded(
          registry->GetCounter("service.trace.tail", "class=degraded")),
      tail_slow(registry->GetCounter("service.trace.tail", "class=slow")),
      inflight(registry->GetGauge("service.inflight")),
      retry_after_ms(registry->GetHistogram("service.retry_after_ms")),
      request_ns(registry->GetHistogram("service.request_ns")) {
  for (size_t i = 0; i < obs::kStageCount; ++i) {
    stage[i] = &registry->GetHistogram(
        "service.stage." +
        std::string(obs::StageName(static_cast<obs::Stage>(i))) + "_ns");
  }
}

obs::Counter& ServiceStats::TailCounter(std::string_view cls) {
  if (cls == "shed") return tail_shed;
  if (cls == "deadline") return tail_deadline;
  if (cls == "error") return tail_error;
  if (cls == "pruned") return tail_pruned;
  if (cls == "degraded") return tail_degraded;
  return tail_slow;
}

ServiceStatsSnapshot ServiceStats::Snap(const LruStats& cache,
                                        const LruStats& memo) const {
  ServiceStatsSnapshot s;
  s.requests = requests.value();
  s.batches = batches.value();
  s.exact_hits = exact_hits.value();
  s.canonical_hits = canonical_hits.value();
  s.misses = misses.value();
  s.memo_hits = memo_hits.value();
  s.memo_misses = memo_misses.value();
  s.analyzer_checked = analyzer_checked.value();
  s.analyzer_pruned = analyzer_pruned.value();
  s.analyzer_rewritten = analyzer_rewritten.value();
  s.memo_evictions = memo.evictions;
  s.memo_bytes = memo.bytes;
  s.memo_entries = memo.entries;
  s.shed = shed.value();
  s.shed_single = shed_single.value();
  s.shed_batch = shed_batch.value();
  s.degraded = degraded.value();
  s.deadline_exceeded = deadline_exceeded.value();
  s.quarantined = quarantined.value();
  s.inflight = inflight.value();
  s.cache_evictions = cache.evictions;
  s.cache_bytes = cache.bytes;
  s.cache_entries = cache.entries;
  s.parse = StageHist(obs::Stage::kParse)->Snap();
  s.canonicalize = StageHist(obs::Stage::kCanonicalize)->Snap();
  s.cache_lookup = StageHist(obs::Stage::kCacheLookup)->Snap();
  s.snapshot_acquire = StageHist(obs::Stage::kSnapshot)->Snap();
  s.join = StageHist(obs::Stage::kJoin)->Snap();
  s.formula = StageHist(obs::Stage::kFormula)->Snap();
  s.request = request_ns.Snap();
  s.retry_after_ms = retry_after_ms.Snap();
  return s;
}

std::string ServiceStatsSnapshot::ToString() const {
  std::string out;
  out += StrFormat("requests: %llu (%llu batches, %lld in flight)\n",
                   static_cast<unsigned long long>(requests),
                   static_cast<unsigned long long>(batches),
                   static_cast<long long>(inflight));
  const uint64_t outcomes = exact_hits + canonical_hits + misses;
  out += StrFormat(
      "plan cache: %llu exact hits, %llu canonical hits, %llu misses "
      "(%.1f%% hit)\n",
      static_cast<unsigned long long>(exact_hits),
      static_cast<unsigned long long>(canonical_hits),
      static_cast<unsigned long long>(misses),
      outcomes == 0 ? 0.0
                    : 100.0 * static_cast<double>(exact_hits + canonical_hits) /
                          static_cast<double>(outcomes));
  out += StrFormat("            %llu entries, %s charged, %llu evictions\n",
                   static_cast<unsigned long long>(cache_entries),
                   HumanBytes(cache_bytes).c_str(),
                   static_cast<unsigned long long>(cache_evictions));
  out += StrFormat(
      "estimate memo: %llu hits, %llu misses; %llu entries, %s charged, "
      "%llu evictions\n",
      static_cast<unsigned long long>(memo_hits),
      static_cast<unsigned long long>(memo_misses),
      static_cast<unsigned long long>(memo_entries),
      HumanBytes(memo_bytes).c_str(),
      static_cast<unsigned long long>(memo_evictions));
  out += StrFormat(
      "analyzer: %llu checked, %llu pruned, %llu rewritten\n",
      static_cast<unsigned long long>(analyzer_checked),
      static_cast<unsigned long long>(analyzer_pruned),
      static_cast<unsigned long long>(analyzer_rewritten));
  out += StrFormat(
      "robustness: %llu shed (%llu single, %llu batch), %llu degraded, "
      "%llu deadline-exceeded, %llu quarantined\n",
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(shed_single),
      static_cast<unsigned long long>(shed_batch),
      static_cast<unsigned long long>(degraded),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(quarantined));
  auto stage = [&](const char* name, const obs::HistogramSnapshot& h) {
    out += StrFormat(
        "%-12s n=%-8llu mean=%8.1fus  p50<=%8.1fus  p95<=%8.1fus  "
        "p99<=%8.1fus\n",
        name, static_cast<unsigned long long>(h.count), h.mean / 1e3,
        static_cast<double>(h.p50) / 1e3, static_cast<double>(h.p95) / 1e3,
        static_cast<double>(h.p99) / 1e3);
  };
  stage("parse", parse);
  stage("canonicalize", canonicalize);
  stage("cache-lookup", cache_lookup);
  stage("snapshot", snapshot_acquire);
  stage("join", join);
  stage("formula", formula);
  stage("request", request);
  return out;
}

}  // namespace xee::service
