#ifndef XEE_SERVICE_SERVICE_STATS_H_
#define XEE_SERVICE_SERVICE_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/sharded_lru.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xee::service {

/// Point-in-time view of every service counter, queryable as a struct
/// and printable from the CLI. Stage latencies are real log-bucketed
/// histograms (obs::Histogram), so p50/p99 are quantiles of the
/// recorded distribution rather than a spike-distorted mean.
struct ServiceStatsSnapshot {
  // Request counters. `requests` counts individual queries (batch
  // members included); `batches` counts EstimateBatch calls.
  uint64_t requests = 0;
  uint64_t batches = 0;

  // Plan-cache outcome per request: an exact-string hit skips parse and
  // join entirely; a canonical hit ran the parse but found the plan
  // under the canonicalized key; a miss compiled from scratch.
  uint64_t exact_hits = 0;
  uint64_t canonical_hits = 0;
  uint64_t misses = 0;

  // Estimate-memo outcome: a memo hit ran the parse but answered from
  // the (canonical hash, epoch) final-estimate memo — no plan-cache
  // value copy, no compile. Misses count probes that went on to the
  // plan cache or a full compile.
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;

  // Static-analyzer outcomes (DESIGN.md §15). `analyzer_checked` counts
  // cache-miss requests the analyzer examined; `analyzer_pruned` the
  // subset answered 0 by a satisfiability proof (cache hits on a pruned
  // plan count here too — the label follows the answer); a request
  // counts in `analyzer_rewritten` when at least one rewrite rule fired
  // on its query.
  uint64_t analyzer_checked = 0;
  uint64_t analyzer_pruned = 0;
  uint64_t analyzer_rewritten = 0;

  // Robustness outcomes: requests shed by admission control, answered
  // degraded (order statistics dropped), rejected for an expired
  // deadline, or refused because the synopsis is quarantined.
  uint64_t shed = 0;
  uint64_t degraded = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t quarantined = 0;

  // Shed attribution: single-call admission refusals vs batch members
  // beyond the in-flight budget. Always sums to `shed`, so trajectory
  // scrapers can attribute shed load without parsing server text.
  uint64_t shed_single = 0;
  uint64_t shed_batch = 0;

  // Requests currently estimating. Mirrors the admission budget, so it
  // is only maintained when max_inflight > 0 (unbounded services report
  // 0 rather than paying two atomics per request).
  int64_t inflight = 0;

  // Plan-cache occupancy, from the sharded LRU.
  uint64_t cache_evictions = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_entries = 0;

  // Estimate-memo occupancy, from its own sharded LRU.
  uint64_t memo_evictions = 0;
  uint64_t memo_bytes = 0;
  uint64_t memo_entries = 0;

  // Per-stage latency over the full pipeline (nanosecond histograms)
  // plus end-to-end. Fed by the 1-in-trace_sample timed requests, so
  // `count` here is the number of timed requests — the counters above
  // remain exact totals.
  obs::HistogramSnapshot parse;
  obs::HistogramSnapshot canonicalize;
  obs::HistogramSnapshot cache_lookup;
  obs::HistogramSnapshot snapshot_acquire;
  obs::HistogramSnapshot join;
  obs::HistogramSnapshot formula;
  obs::HistogramSnapshot request;

  /// Distribution of the retry-after hints attached to shed requests
  /// (milliseconds; one sample per shed). Unlike the stage histograms
  /// this is exact, not sampled — shedding is off the hot path.
  obs::HistogramSnapshot retry_after_ms;

  /// Multi-line human-readable rendering for the CLI.
  std::string ToString() const;
};

/// The service's metric handles, resolved once against its
/// obs::Registry (DESIGN.md §10 catalogs the names). All members are
/// registry-owned atomics; any thread may bump them concurrently. This
/// is the *only* counter system in the service — the registry backs
/// both the struct snapshot below and the machine-readable STATSZ
/// export.
struct ServiceStats {
  explicit ServiceStats(obs::Registry* registry);

  obs::Counter& requests;
  obs::Counter& batches;
  obs::Counter& exact_hits;
  obs::Counter& canonical_hits;
  obs::Counter& misses;
  obs::Counter& memo_hits;
  obs::Counter& memo_misses;
  obs::Counter& analyzer_checked;
  obs::Counter& analyzer_pruned;
  obs::Counter& analyzer_rewritten;
  obs::Counter& shed;
  obs::Counter& shed_single;
  obs::Counter& shed_batch;
  obs::Counter& degraded;
  obs::Counter& deadline_exceeded;
  obs::Counter& quarantined;
  /// Tail-retention accounting, one counter per tail class
  /// ("service.trace.tail{class=...}"): bumped exactly when a record
  /// enters the trace ring's tail buffer, so over any run the sum
  /// equals TraceRing::tail_recorded() — the conservation the tail
  /// retention tests pin.
  obs::Counter& tail_shed;
  obs::Counter& tail_deadline;
  obs::Counter& tail_error;
  obs::Counter& tail_pruned;
  obs::Counter& tail_degraded;
  obs::Counter& tail_slow;
  obs::Gauge& inflight;
  obs::Histogram& retry_after_ms;

  /// The tail counter for a classification produced by the service's
  /// completion-time routing (`cls` must be one of the six classes).
  obs::Counter& TailCounter(std::string_view cls);

  /// Indexed by obs::Stage; `stage[kJoin]` is "service.stage.join_ns".
  obs::Histogram* stage[obs::kStageCount];
  obs::Histogram& request_ns;

  obs::Histogram* StageHist(obs::Stage s) const {
    return stage[static_cast<size_t>(s)];
  }

  /// Folds in the plan cache's and the estimate memo's LRU counters.
  ServiceStatsSnapshot Snap(const LruStats& cache, const LruStats& memo) const;
};

}  // namespace xee::service

#endif  // XEE_SERVICE_SERVICE_STATS_H_
