#ifndef XEE_SERVICE_SERVICE_STATS_H_
#define XEE_SERVICE_SERVICE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/sharded_lru.h"

namespace xee::service {

/// Lock-free latency histogram: 64 power-of-two nanosecond buckets
/// (bucket i counts samples with bit_width(ns) == i). Record() is
/// wait-free and safe from any thread; Snapshot() is approximate under
/// concurrent writes, which is fine for monitoring.
class LatencyHistogram {
 public:
  struct Snapshot {
    uint64_t count = 0;
    double mean_us = 0;
    double p50_us = 0;  ///< bucket upper bounds, so conservative
    double p95_us = 0;
    double p99_us = 0;
  };

  void Record(uint64_t ns);
  Snapshot Snap() const;

 private:
  static constexpr int kBuckets = 64;
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
};

/// Point-in-time view of every service counter, queryable as a struct
/// and printable from the CLI.
struct ServiceStatsSnapshot {
  // Request counters. `requests` counts individual queries (batch
  // members included); `batches` counts EstimateBatch calls.
  uint64_t requests = 0;
  uint64_t batches = 0;

  // Plan-cache outcome per request: an exact-string hit skips parse and
  // join entirely; a canonical hit ran the parse but found the plan
  // under the canonicalized key; a miss compiled from scratch.
  uint64_t exact_hits = 0;
  uint64_t canonical_hits = 0;
  uint64_t misses = 0;

  // Robustness outcomes: requests shed by admission control, answered
  // degraded (order statistics dropped), rejected for an expired
  // deadline, or refused because the synopsis is quarantined.
  uint64_t shed = 0;
  uint64_t degraded = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t quarantined = 0;

  // Plan-cache occupancy, from the sharded LRU.
  uint64_t cache_evictions = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_entries = 0;

  // Per-stage latency (parse / join / formula) plus end-to-end.
  LatencyHistogram::Snapshot parse;
  LatencyHistogram::Snapshot join;
  LatencyHistogram::Snapshot formula;
  LatencyHistogram::Snapshot request;

  /// Multi-line human-readable rendering for the CLI.
  std::string ToString() const;
};

/// Shared mutable counters behind the snapshot. All members are atomics
/// or lock-free histograms; any thread may bump them concurrently.
struct ServiceStats {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> exact_hits{0};
  std::atomic<uint64_t> canonical_hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> quarantined{0};

  LatencyHistogram parse;
  LatencyHistogram join;
  LatencyHistogram formula;
  LatencyHistogram request;

  /// Folds in the plan cache's LRU counters.
  ServiceStatsSnapshot Snap(const LruStats& cache) const;
};

}  // namespace xee::service

#endif  // XEE_SERVICE_SERVICE_STATS_H_
