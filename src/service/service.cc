#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "xpath/analyze.h"
#include "xpath/canonical.h"
#include "xpath/parser.h"

namespace xee::service {
namespace {

using Clock = std::chrono::steady_clock;
using obs::Stage;

uint64_t NsSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

}  // namespace

namespace {

/// The static analyzer's window into a pinned synopsis snapshot. The
/// returned view captures `syn` by reference; it must not outlive the
/// request's snapshot.
xpath::AnalyzerView MakeAnalyzerView(const estimator::Synopsis& syn) {
  xpath::AnalyzerView view;
  view.reach = &syn.reach();
  view.find_tag = [&syn](const std::string& name) { return syn.FindTag(name); };
  view.root_tag = syn.root_tag();
  view.root_name = syn.TagName(syn.root_tag());
  return view;
}

obs::AccuracyOptions MakeAccuracyOptions(const ServiceOptions& o) {
  obs::AccuracyOptions a;
  a.sample = o.accuracy_sample;
  a.seed = o.accuracy_seed;
  a.drift_qerror_limit = o.drift_qerror_limit;
  a.drift_min_samples = o.drift_min_samples;
  a.max_pending = o.accuracy_max_pending < 1 ? 1 : o.accuracy_max_pending;
  a.offender_capacity = o.accuracy_offenders;
  return a;
}

/// The flight recorder stores outcomes as small codes, not strings (no
/// allocation on the record path). The mapping is append-only: codes
/// are part of the dump surface tooling reads.
uint64_t FlightOutcomeCode(std::string_view label) {
  if (label == "exact-hit") return 1;
  if (label == "canonical-hit") return 2;
  if (label == "memo-hit") return 3;
  if (label == "miss") return 4;
  if (label == "pruned") return 5;
  if (label == "deadline") return 6;
  if (label == "quarantined") return 7;
  if (label == "not-found") return 8;
  if (label == "stale") return 9;
  if (label == "parse-error") return 10;
  if (label == "unsupported") return 11;
  if (label == "shed") return 12;
  return 0;  // "error" and anything future
}

}  // namespace

std::vector<obs::SloSpec> DefaultSloSpecs(double availability_objective,
                                          uint64_t p99_objective_ns,
                                          double qerror_objective) {
  std::vector<obs::SloSpec> specs;
  if (availability_objective > 0) {
    obs::SloSpec s;
    s.name = "availability";
    s.kind = obs::SloKind::kAvailability;
    s.objective = availability_objective;
    s.total_series = "service.requests";
    s.bad_series = {"service.outcome{reason=shed}",
                    "service.outcome{reason=deadline_exceeded}"};
    specs.push_back(std::move(s));
  }
  if (p99_objective_ns > 0) {
    obs::SloSpec s;
    s.name = "latency-p99";
    s.kind = obs::SloKind::kLatency;
    s.objective = static_cast<double>(p99_objective_ns);
    s.value_series = "service.request_ns.p99";
    s.fast_burn = 1.0;
    s.slow_burn = 1.0;
    specs.push_back(std::move(s));
  }
  if (qerror_objective > 0) {
    obs::SloSpec s;
    s.name = "accuracy-qerror";
    s.kind = obs::SloKind::kThreshold;
    // The gauge carries milli-q-error (integer gauges), so scale the
    // objective to match.
    s.objective = qerror_objective * 1000.0;
    s.value_series = "service.accuracy.worst_ewma_qerror_milli";
    s.fast_burn = 1.0;
    s.slow_burn = 1.0;
    specs.push_back(std::move(s));
  }
  return specs;
}

namespace {
/// Monotonic id source for TenantTable::gen_ (memo invalidation).
std::atomic<uint64_t> g_tenant_table_gen{1};
}  // namespace

TenantTable::TenantTable(obs::Registry* registry, size_t max)
    : registry_(registry),
      max_(max),
      gen_(g_tenant_table_gen.fetch_add(1, std::memory_order_relaxed)) {}

namespace {
/// Small nonzero per-thread id for lane ownership claims.
uint32_t LaneThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace

TenantTable::Slots* TenantTable::MakeSlots(const std::string& label_name,
                                           obs::FlightRecorder* flight) {
  auto s = std::make_unique<Slots>();
  const std::string label = "tenant=" + label_name;
  // The registry rows read through to the lanes; the lanes live in the
  // Slots, which this table never erases, so the callbacks stay valid
  // as long as the table does (the service destroys the table before
  // the registry and nothing reads the registry after that).
  Slots* raw = s.get();
  registry_->RegisterDerivedCounter("tenant.requests", label, [raw] {
    return raw->Sum(&Lane::requests);
  });
  registry_->RegisterDerivedCounter("tenant.shed", label, [raw] {
    return raw->Sum(&Lane::shed);
  });
  registry_->RegisterDerivedCounter("tenant.errors", label, [raw] {
    return raw->Sum(&Lane::errors);
  });
  registry_->RegisterDerivedCounter("tenant.plan_hits", label, [raw] {
    return raw->Sum(&Lane::plan_hits);
  });
  registry_->RegisterDerivedCounter("tenant.memo_hits", label, [raw] {
    return raw->Sum(&Lane::memo_hits);
  });
  s->request_ns = &registry_->GetHistogram("tenant.request_ns", label);
  if (flight != nullptr) s->flight_id = flight->Intern(label_name);
  return s.release();
}

TenantTable::Handle TenantTable::Get(const std::string& tenant,
                                     obs::FlightRecorder* flight) {
#ifdef XEE_OBS_OFF
  (void)tenant;
  (void)flight;
  return {};
#else
  if (max_ == 0) return {};
  // Warm path: the last answer this thread got from this table. Slots
  // are heap-allocated and never erased, so a memoized handle stays
  // valid for the table's lifetime; gen_ fences off hits against a
  // different (or reincarnated) table. One string compare versus a
  // shared-mutex lock plus a hashed map probe plus the lane claim —
  // the difference is measurable at serving rates (see bench
  // "service_obs2").
  struct LastLookup {
    uint64_t gen = 0;
    std::string tenant;
    Handle handle;
  };
  thread_local LastLookup last;
  if (last.gen == gen_ && last.tenant == tenant) return last.handle;
  Slots* found = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = slots_.find(tenant);
    if (it != slots_.end()) {
      found = it->second.get();
    } else if (slots_.size() >= max_ && overflow_ != nullptr) {
      found = overflow_.get();
    }
  }
  if (found == nullptr) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = slots_.find(tenant);
    if (it != slots_.end()) {
      found = it->second.get();
    } else if (slots_.size() >= max_) {
      if (overflow_ == nullptr) {
        overflow_.reset(MakeSlots("__other__", flight));
      }
      found = overflow_.get();
    } else {
      found = MakeSlots(tenant, flight);
      slots_.emplace(tenant, std::unique_ptr<Slots>(found));
    }
  }
  // Claim (or re-find) this thread's lane: an owned lane makes every
  // later increment a plain load/store. Threads past kLanes keep a
  // null lane and write through the shared fetch_add fallback.
  Lane* lane = nullptr;
  const uint32_t tid = LaneThreadId();
  for (Lane& l : found->lanes) {
    uint32_t owner = l.owner.load(std::memory_order_acquire);
    if (owner == tid) {
      lane = &l;
      break;
    }
    if (owner == 0 && l.owner.compare_exchange_strong(
                          owner, tid, std::memory_order_acq_rel)) {
      lane = &l;
      break;
    }
  }
  last.gen = gen_;
  last.tenant = tenant;
  last.handle = Handle{found, lane};
  return last.handle;
#endif
}

size_t TenantTable::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return slots_.size();
}

EstimationService::EstimationService(ServiceOptions options)
    : options_(options),
      cache_(options.plan_cache_bytes,
             options.cache_shards < 1 ? 1 : options.cache_shards),
      memo_(options.estimate_memo_bytes,
            options.cache_shards < 1 ? 1 : options.cache_shards),
      stats_(&obs_),
      traces_(options.trace_capacity < 1 ? 1 : options.trace_capacity,
              options.slow_trace_ns),
      accuracy_(&obs_, MakeAccuracyOptions(options)),
      tenants_(&obs_, options.tenant_max),
      pool_(options.ResolvedThreads()) {
  if (options.flight_bytes > 0) {
    flight_ = std::make_unique<obs::FlightRecorder>(options.flight_bytes);
    // Fault fires land in the black box next to the requests they
    // perturbed. One observer process-wide, last service wins; the
    // destructor unhooks only its own installation.
    FaultInjector::Global().SetFireObserver(&FlightFaultObserver, this);
  }
  if (options.ts_interval_us > 0) {
    obs::TimeSeriesOptions tso;
    tso.interval_us = options.ts_interval_us;
    tso.retention = options.ts_retention;
    tso.max_series = options.ts_max_series;
    timeseries_ = std::make_unique<obs::TimeSeriesStore>(&obs_, tso);
    timeseries_->WatchCounter("service.requests");
    timeseries_->WatchCounterPrefix("service.outcome");
    timeseries_->WatchCounterPrefix("service.shed");
    timeseries_->WatchCounterPrefix("service.trace.tail");
    timeseries_->WatchCounterPrefix("service.plan_cache");
    timeseries_->WatchCounterPrefix("service.estimate_memo");
    timeseries_->WatchCounterPrefix("tenant.");
    timeseries_->WatchCounterPrefix("slo.alert");
    timeseries_->WatchGauge("service.inflight");
    timeseries_->WatchGauge("service.accuracy.worst_ewma_qerror_milli");
    timeseries_->WatchHistogram("service.request_ns", &stats_.request_ns);
    if (!options.slos.empty()) {
      slo_ = std::make_unique<obs::SloEngine>(timeseries_.get(), &obs_,
                                              options.slos);
      slo_->SetTransitionHook([this](const obs::SloSpec& spec,
                                     obs::AlertState from, obs::AlertState to,
                                     uint64_t now_us) {
        if (flight_ != nullptr) {
          flight_->Record(obs::FlightEventType::kAlert,
                          flight_->Intern(spec.name),
                          static_cast<uint64_t>(to),
                          static_cast<uint64_t>(from), now_us);
        }
      });
    }
  }
  MaintenanceManager::Options maint;
  maint.error_budget = options.patch_error_budget;
  maint.histo_patch_tolerance = options.patch_tolerance;
  maint.attach_truth = options.live_truth;
  maint.max_retries = options.rebuild_max_retries;
  maint.max_restarts = options.rebuild_max_restarts;
  maint.backoff.initial_ms = options.rebuild_backoff_ms;
  // Constructed in the body, not the init list: the executor captures
  // pool_, which is the last-declared member.
  maint_ = std::make_unique<MaintenanceManager>(
      &registry_, &obs_, maint, [this](std::function<void()> task) {
        if (draining_.load(std::memory_order_acquire)) {
          task();  // pool is shutting down; run on the caller
        } else {
          pool_.Submit(std::move(task));
        }
      });
}

EstimationService::~EstimationService() {
  // Unhook the fault observer first: fires from pool tasks draining
  // below must not reach a flight recorder that is about to die. The
  // ctx check means a newer service's installation is left alone.
  FaultInjector::Global().ClearFireObserver(this);
  // Runs before member destruction: from here on, rebuild schedules
  // (e.g. from shadow tasks the pool drains) execute inline instead of
  // submitting to the dying pool.
  draining_.store(true, std::memory_order_release);
}

uint64_t EstimationService::RegisterLive(
    const std::string& name, xml::Document doc,
    const estimator::SynopsisOptions& build) {
  return maint_->RegisterLive(name, std::move(doc), build);
}

Result<ApplyOutcome> EstimationService::ApplyDelta(
    const std::string& name, const delta::DocumentDelta& delta) {
  Result<ApplyOutcome> out = maint_->ApplyDelta(name, delta);
  if (out.ok() && out.value().budget_exhausted && options_.auto_rebuild) {
    maint_->ScheduleRebuild(name, "budget");
  }
  return out;
}

std::string EstimationService::MakeKey(char kind, uint64_t epoch,
                                       const std::string& body) {
  std::string key;
  key.reserve(2 + 20 + body.size());
  key.push_back(kind);
  key += std::to_string(epoch);
  key.push_back(':');
  key += body;
  return key;
}

size_t EstimationService::TryAdmit(size_t want) {
  if (want == 0) return 0;
  // Unbounded mode tracks nothing: the inflight gauge mirrors the
  // admission budget, and with no budget there is nothing to observe
  // (and no reason to pay two atomics per request for it).
  if (options_.max_inflight == 0) return want;
  size_t cur = inflight_.load(std::memory_order_relaxed);
  while (true) {
    if (cur >= options_.max_inflight) return 0;
    const size_t grant = std::min(want, options_.max_inflight - cur);
    if (inflight_.compare_exchange_weak(cur, cur + grant,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      stats_.inflight.Add(static_cast<int64_t>(grant));
      return grant;
    }
  }
}

void EstimationService::Release(size_t slots) {
  if (slots == 0 || options_.max_inflight == 0) return;
  inflight_.fetch_sub(slots, std::memory_order_release);
  stats_.inflight.Sub(static_cast<int64_t>(slots));
}

EstimateOutcome EstimationService::ShedOutcome(const QueryRequest& req,
                                               size_t depth, bool batch) {
  stats_.shed.Inc();
  (batch ? stats_.shed_batch : stats_.shed_single).Inc();
  EstimateOutcome out;
  out.shed = true;
  // Escalate the hint with the shed depth: the more of one batch we had
  // to refuse, the deeper the overload, the longer clients should wait.
  uint64_t hint =
      static_cast<uint64_t>(options_.retry_after_ms) * (depth + 1);
  hint = std::clamp<uint64_t>(hint, 1, 1000);
  out.retry_after_ms = static_cast<uint32_t>(hint);
  stats_.retry_after_ms.Record(hint);
  out.estimate =
      Status(StatusCode::kOverloaded,
             "shed by admission control (" +
                 std::to_string(options_.max_inflight) +
                 " requests in flight); retry after " +
                 std::to_string(out.retry_after_ms) + "ms");
  // A shed is exactly the kind of request tail-based retention exists
  // for: it never reaches the timed pipeline, so record it here. The
  // per-tenant requests counter is bumped too — the caller only counts
  // the aggregate.
  const TenantTable::Handle tenant = tenants_.Get(req.synopsis, flight_.get());
  if (tenant) {
    tenant.Inc(&TenantTable::Lane::requests);
    tenant.Inc(&TenantTable::Lane::shed);
  }
  if (flight_ != nullptr) {
    flight_->Record(obs::FlightEventType::kShed,
                    tenant ? tenant.slots->flight_id
                           : obs::FlightRecorder::kOverflowId,
                    batch ? 1 : 0, hint);
  }
  if (options_.tail_retention) {
    RecordTrace(req, "shed", out, obs::TraceSpans{}, /*total_ns=*/0, "shed");
  }
  return out;
}

EstimateOutcome EstimationService::Estimate(const QueryRequest& request) {
  if (TryAdmit(1) == 0) {
    stats_.requests.Inc();
    return ShedOutcome(request, 0, /*batch=*/false);
  }
  EstimateOutcome out = EstimateAdmitted(request);
  Release(1);
  return out;
}

bool EstimationService::ShouldTime() {
#ifdef XEE_OBS_OFF
  return false;  // histograms and rings are no-ops; don't read clocks
#else
  const size_t n = options_.trace_sample;
  if (n == 1) return true;
  if (n == 0) return false;
  return trace_tick_.fetch_add(1, std::memory_order_relaxed) % n == 0;
#endif
}

EstimateOutcome EstimationService::EstimateAdmitted(
    const QueryRequest& req) {
  // One sampling decision gates every clock read this request would
  // make; the unsampled path costs only a handful of relaxed counter
  // adds (see ServiceOptions::trace_sample).
  const bool timed = ShouldTime();
  Clock::time_point t_request;
  if (timed) t_request = Clock::now();
  stats_.requests.Inc();
  // The per-tenant dimension keys on the synopsis name: one sharded-
  // lock map probe on the warm path, stable slot pointers after.
  const TenantTable::Handle tenant = tenants_.Get(req.synopsis, flight_.get());
  if (tenant) tenant.Inc(&TenantTable::Lane::requests);

  // The request's trace: stage timers and the estimator's work counters
  // accumulate here; timed requests land in the trace ring.
  obs::TraceSpans spans;
  const char* outcome_label = "error";

  // Captured at snapshot acquire for the shadow pipeline: the version's
  // ground-truth oracle (if any) and its epoch, plus whether the stale-
  // downgrade policy tainted this answer.
  std::shared_ptr<const GroundTruth> shadow_truth;
  uint64_t shadow_epoch = 0;
  bool stale_taint = false;

  EstimateOutcome out = [&]() -> EstimateOutcome {
    EstimateOutcome out;

    // Rung 0 — deadline gate. A request arriving expired costs one
    // clock read: no snapshot, no parse, no join.
    if (!req.deadline.infinite() && req.deadline.HasExpired()) {
      outcome_label = "deadline";
      out.estimate = Status(StatusCode::kDeadlineExceeded,
                            "deadline expired before estimation began");
      return out;
    }

    // Rung 1 — quarantine gate and snapshot acquire: a name whose last
    // load was rejected is deliberately out of service until a good
    // version arrives.
    std::optional<SynopsisSnapshot> snap;
    {
      obs::ScopedStageTimer t(&spans, Stage::kSnapshot,
                              stats_.StageHist(Stage::kSnapshot), timed);
      if (std::optional<Status> q = registry_.Quarantined(req.synopsis)) {
        outcome_label = "quarantined";
        out.estimate =
            Status(StatusCode::kUnavailable,
                   "synopsis quarantined: " + std::string(q->message()));
        return out;
      }
      snap = registry_.Snapshot(req.synopsis);
    }
    if (!snap.has_value()) {
      outcome_label = "not-found";
      out.estimate =
          Status(StatusCode::kNotFound, "unknown synopsis: " + req.synopsis);
      return out;
    }
    shadow_truth = snap->truth;
    shadow_epoch = snap->epoch;

    // Stale escalation (ServiceOptions::stale_downgrade): once shadow
    // sampling has convicted this version of drifting, its answers are
    // no longer trustworthy at full fidelity. Report-only mode leaves
    // answers alone; enforcement mode applies PR 3's degradation
    // contract — tag permissive requests degraded, refuse strict ones.
    if (options_.stale_downgrade &&
        snap->health == SynopsisHealth::kStale) {
      if (!req.allow_degraded) {
        outcome_label = "stale";
        out.estimate = Status(
            StatusCode::kUnavailable,
            "synopsis stale: shadow-sampled q-error over drift limit for: " +
                req.synopsis);
        return out;
      }
      stale_taint = true;
    }

    // A salvaged (order-dropped) version only affects queries that
    // carry order constraints — those degrade (or are refused with a
    // quarantine message below). Order-free answers are bit-identical
    // to an intact synopsis's, so they stay full fidelity.
    const bool order_quarantined = snap->order_quarantined;
    const estimator::EstimateLimits limits{req.deadline, &spans};

    // Exact-string probe: a warm repeat of the very same request text
    // skips the parse as well as the join. Degraded plans only satisfy
    // requests that accept degraded answers.
    const std::string stripped = xpath::StripWhitespace(req.xpath);
    const std::string exact_key = MakeKey('x', snap->epoch, stripped);
    {
      std::shared_ptr<const CachedPlan> hit;
      {
        obs::ScopedStageTimer t(&spans, Stage::kCacheLookup,
                                stats_.StageHist(Stage::kCacheLookup), timed);
        hit = cache_.Get(exact_key);
      }
      if (hit && (!hit->degraded || req.allow_degraded)) {
        outcome_label = "exact-hit";
        stats_.exact_hits.Inc();
        if (hit->pruned) stats_.analyzer_pruned.Inc();
        out.estimate = hit->estimate;
        out.degraded = hit->degraded && hit->estimate.ok();
        out.pruned = hit->pruned;
        return out;
      }
    }

    // Parse + canonicalize, then probe under the canonical key where
    // all spellings of this query meet.
    Result<xpath::Query> parsed = [&] {
      obs::ScopedStageTimer t(&spans, Stage::kParse,
                              stats_.StageHist(Stage::kParse), timed);
      return xpath::ParseXPath(stripped);
    }();
    if (!parsed.ok()) {  // unbounded garbage: uncached
      outcome_label = "parse-error";
      out.estimate = parsed.status();
      return out;
    }

    std::string body;
    xpath::Query canonical;
    bool prune_now = false;
    {
      obs::ScopedStageTimer t(&spans, Stage::kCanonicalize,
                              stats_.StageHist(Stage::kCanonicalize), timed);
      canonical = xpath::Canonicalize(parsed.value());
      // Static analysis (DESIGN.md §15) on the cache-miss path, inside
      // the canonicalize stage (it is part of producing the plan key).
      // A prune-safe unsatisfiability proof answers 0 below without a
      // join; otherwise the estimator-invariant rewrites run, so alias
      // spellings serialize to one shared plan key. The prune gate
      // requires the estimator to have answered exactly 0.0 itself —
      // wildcard-order and missing-order-statistics shapes keep their
      // kUnsupported / degraded surface, bit-for-bit.
      if (options_.enable_analyzer) {
        stats_.analyzer_checked.Inc();
        const xpath::AnalyzerView view = MakeAnalyzerView(*snap->synopsis);
        const xpath::Analysis analysis =
            xpath::AnalyzeSatisfiability(canonical, view);
        if (analysis.verdict == xpath::SatVerdict::kUnsat &&
            analysis.prune_safe &&
            (canonical.orders.empty() || snap->synopsis->has_order())) {
          prune_now = true;
        } else if (xpath::AnalyzeRewrite(&canonical, view) > 0) {
          stats_.analyzer_rewritten.Inc();
        }
      }
      body = xpath::SerializeKey(canonical);
    }

    // Pruned fast path: serve 0 and cache a synthetic zero plan under
    // the epoch-scoped keys (a synopsis swap re-validates the verdict).
    // Runs before the memo probe and never inserts into the memo — the
    // memo stores bare numbers and would drop the pruned label.
    if (prune_now) {
      outcome_label = "pruned";
      stats_.analyzer_pruned.Inc();
      const std::string canonical_key = MakeKey('c', snap->epoch, body);
      std::shared_ptr<const CachedPlan> plan;
      {
        obs::ScopedStageTimer t(&spans, Stage::kCacheLookup,
                                stats_.StageHist(Stage::kCacheLookup), timed);
        plan = cache_.Get(canonical_key);
      }
      if (!plan) {
        estimator::Estimator::Compiled zero;
        zero.query = canonical;
        zero.zero = true;
        zero.consts.emplace();  // estimate defaults to exactly 0.0
        plan = std::make_shared<const CachedPlan>(
            CachedPlan{std::move(zero), Result<double>{0.0},
                       /*degraded=*/false, /*pruned=*/true});
        cache_.PutCanonical(canonical_key, plan);
      }
      cache_.PutAlias(exact_key, std::move(plan));
      out.estimate = Result<double>{0.0};
      out.pruned = true;
      return out;
    }
    // Estimate-memo probe: the finished number under (canonical hash,
    // epoch). Entries are ~100 bytes, so they outlive evicted plans —
    // this rung turns a plan-cache eviction into one probe instead of a
    // recompile. Timed under cache-lookup: it is one.
    if (memo_.enabled()) {
      std::optional<Result<double>> m;
      {
        obs::ScopedStageTimer t(&spans, Stage::kCacheLookup,
                                stats_.StageHist(Stage::kCacheLookup), timed);
        m = memo_.Lookup('c', snap->epoch, body);
      }
      if (m.has_value()) {
        outcome_label = "memo-hit";
        stats_.memo_hits.Inc();
        out.estimate = std::move(*m);
        return out;
      }
      stats_.memo_misses.Inc();
    }

    const std::string canonical_key = MakeKey('c', snap->epoch, body);
    {
      std::shared_ptr<const CachedPlan> hit;
      {
        obs::ScopedStageTimer t(&spans, Stage::kCacheLookup,
                                stats_.StageHist(Stage::kCacheLookup), timed);
        hit = cache_.Get(canonical_key);
      }
      if (hit) {
        outcome_label = "canonical-hit";
        stats_.canonical_hits.Inc();
        if (hit->pruned) stats_.analyzer_pruned.Inc();
        cache_.PutAlias(exact_key, hit);
        if (!hit->pruned) memo_.Insert('c', snap->epoch, body, hit->estimate);
        out.estimate = hit->estimate;
        out.pruned = hit->pruned;
        return out;
      }
    }

    estimator::Estimator est(*snap->synopsis);

    // Computes, caches ('d' namespace) and serves the order-free
    // estimate of `canonical` — the degradation rung for order-axis
    // queries whose order statistics are missing, quarantined, or too
    // expensive for the deadline. `alias_exact` is set only when the
    // degradation is structural for this epoch (every future request
    // would degrade the same way), never when it is deadline-forced —
    // a later, slower request must be able to get the full answer.
    auto run_degraded = [&](bool alias_exact) -> EstimateOutcome {
      EstimateOutcome d;
      d.degraded = true;
      if (memo_.enabled()) {
        std::optional<Result<double>> m;
        {
          obs::ScopedStageTimer t(&spans, Stage::kCacheLookup,
                                  stats_.StageHist(Stage::kCacheLookup),
                                  timed);
          m = memo_.Lookup('d', snap->epoch, body);
        }
        if (m.has_value()) {
          outcome_label = "memo-hit";
          stats_.memo_hits.Inc();
          d.estimate = std::move(*m);
          return d;
        }
        stats_.memo_misses.Inc();
      }
      const std::string degraded_key = MakeKey('d', snap->epoch, body);
      {
        std::shared_ptr<const CachedPlan> hit;
        {
          obs::ScopedStageTimer t(&spans, Stage::kCacheLookup,
                                  stats_.StageHist(Stage::kCacheLookup), timed);
          hit = cache_.Get(degraded_key);
        }
        if (hit) {
          outcome_label = "canonical-hit";
          stats_.canonical_hits.Inc();
          if (alias_exact) cache_.PutAlias(exact_key, hit);
          memo_.Insert('d', snap->epoch, body, hit->estimate);
          d.estimate = hit->estimate;
          return d;
        }
      }
      xpath::Query base = canonical;
      base.orders.clear();
      Result<estimator::Estimator::Compiled> compiled = [&] {
        obs::ScopedStageTimer t(&spans, Stage::kJoin,
                                stats_.StageHist(Stage::kJoin), timed);
        return est.Compile(base, limits);
      }();
      if (!compiled.ok()) {
        d.estimate = compiled.status();
        return d;
      }
      Result<double> estimate = [&] {
        obs::ScopedStageTimer t(&spans, Stage::kFormula,
                                stats_.StageHist(Stage::kFormula), timed);
        return est.EstimateCompiled(compiled.value(), limits);
      }();
      d.estimate = estimate;
      if (estimate.status().code() == StatusCode::kDeadlineExceeded) {
        outcome_label = "deadline";
        return d;  // a blown deadline is not a property of the query
      }
      outcome_label = "miss";
      auto plan = std::make_shared<const CachedPlan>(
          CachedPlan{std::move(compiled).value(), estimate, /*degraded=*/true});
      cache_.PutCanonical(degraded_key, plan);
      if (alias_exact) cache_.PutAlias(exact_key, std::move(plan));
      memo_.Insert('d', snap->epoch, body, estimate);
      stats_.misses.Inc();
      return d;
    };

    // Rung 2 — missing order statistics (synopsis built without them,
    // or dropped by salvage). Degrade to the order-free formulas when
    // the request permits; otherwise fail honestly.
    const bool wants_order = !canonical.orders.empty();
    if (wants_order && !snap->synopsis->has_order()) {
      if (!req.allow_degraded) {
        outcome_label = order_quarantined ? "quarantined" : "unsupported";
        out.estimate =
            order_quarantined
                ? Status(StatusCode::kUnavailable,
                         "order statistics quarantined for synopsis: " +
                             req.synopsis)
                : Status(StatusCode::kUnsupported,
                         "synopsis was built without order statistics");
        return out;
      }
      return run_degraded(/*alias_exact=*/true);
    }

    // Full-fidelity path: compile (path join), then the estimation
    // formulas, both under the request deadline.
    Result<estimator::Estimator::Compiled> compiled = [&] {
      obs::ScopedStageTimer t(&spans, Stage::kJoin,
                              stats_.StageHist(Stage::kJoin), timed);
      return est.Compile(canonical, limits);
    }();

    Result<double> estimate{0.0};
    if (compiled.ok()) {
      obs::ScopedStageTimer t(&spans, Stage::kFormula,
                              stats_.StageHist(Stage::kFormula), timed);
      estimate = est.EstimateCompiled(compiled.value(), limits);
    } else {
      estimate = compiled.status();
    }

    // Rung 3 — deadline-forced fallback: the full computation did not
    // fit, but the (much cheaper) order-free one might still make it.
    if (estimate.status().code() == StatusCode::kDeadlineExceeded) {
      if (req.allow_degraded && wants_order && !req.deadline.HasExpired()) {
        return run_degraded(/*alias_exact=*/false);
      }
      outcome_label = "deadline";
      out.estimate = estimate;
      return out;  // never cached: not a property of the query
    }
    if (!compiled.ok()) {
      outcome_label = "error";
      out.estimate = estimate;
      return out;  // compile errors: uncached, as before
    }

    outcome_label = "miss";
    auto plan = std::make_shared<const CachedPlan>(
        CachedPlan{std::move(compiled).value(), estimate, /*degraded=*/false});
    cache_.PutCanonical(canonical_key, plan);
    cache_.PutAlias(exact_key, std::move(plan));
    memo_.Insert('c', snap->epoch, body, estimate);
    stats_.misses.Inc();
    out.estimate = estimate;
    return out;
  }();

  // "Degraded" describes an answer actually served; failures are just
  // failures.
  out.degraded = out.degraded && out.estimate.ok();
  // Shadow eligibility is judged before the stale taint lands: a taint
  // changes the answer's labeling, not its numbers, and the one synopsis
  // already convicted of drifting is the one that must keep being
  // audited (otherwise enforcement mode would freeze its own evidence).
  const bool shadow_eligible = out.estimate.ok() && !out.degraded;
  if (stale_taint && out.estimate.ok()) out.degraded = true;
  switch (out.estimate.status().code()) {
    case StatusCode::kDeadlineExceeded:
      stats_.deadline_exceeded.Inc();
      break;
    case StatusCode::kUnavailable:
      stats_.quarantined.Inc();
      break;
    default:
      break;
  }
  if (out.degraded) stats_.degraded.Inc();
  const std::string_view ol = outcome_label;
  if (tenant) {
    if (!out.estimate.ok()) {
      tenant.Inc(&TenantTable::Lane::errors);
    } else if (ol == "exact-hit" || ol == "canonical-hit") {
      tenant.Inc(&TenantTable::Lane::plan_hits);
    } else if (ol == "memo-hit") {
      tenant.Inc(&TenantTable::Lane::memo_hits);
    }
  }
  // Tail-based retention (DESIGN.md §16): the keep decision runs at
  // completion, when the outcome is known. One class per request, in
  // precedence order; "slow" needs the wall time, so it is judged
  // below, only for timed requests.
  const char* tail_class = nullptr;
  if (options_.tail_retention) {
    if (out.estimate.status().code() == StatusCode::kDeadlineExceeded) {
      tail_class = "deadline";
    } else if (!out.estimate.ok()) {
      tail_class = "error";
    } else if (out.pruned) {
      tail_class = "pruned";
    } else if (out.degraded) {
      tail_class = "degraded";
    }
  }
  uint64_t total_ns = 0;
  if (timed) {
    total_ns = NsSince(t_request);
    stats_.request_ns.Record(total_ns);
    if (tenant) tenant.slots->request_ns->Record(total_ns);
    if (tail_class == nullptr && options_.tail_retention &&
        traces_.IsSlow(total_ns)) {
      tail_class = "slow";
    }
  }
  if (timed || tail_class != nullptr) {
    RecordTrace(req, outcome_label, out, spans, total_ns, tail_class);
  }
  if (flight_ != nullptr) {
    flight_->Record(obs::FlightEventType::kRequest,
                    tenant ? tenant.slots->flight_id
                           : obs::FlightRecorder::kOverflowId,
                    FlightOutcomeCode(ol), total_ns);
  }
  if (shadow_eligible) {
    MaybeShadow(req, out, std::move(shadow_truth), shadow_epoch);
  }
  return out;
}

void EstimationService::MaybeShadow(const QueryRequest& req,
                                    const EstimateOutcome& out,
                                    std::shared_ptr<const GroundTruth> truth,
                                    uint64_t epoch) {
  if (!accuracy_.enabled()) return;
  // The sampling tick advances once per *eligible* request (full-
  // fidelity success), so "1-in-N" means 1-in-N auditable answers.
  if (!accuracy_.ShouldSample()) return;
  if (truth == nullptr) {
    accuracy_.SkipNoDocument();
    return;
  }
  if (!accuracy_.TryBeginShadow()) return;  // counted backlog_suppressed
  // Everything the shadow needs is captured by value / shared_ptr: the
  // task may outlive the request, the snapshot, and even the synopsis's
  // registration. EndShadow is balanced on every exit path of the task.
  pool_.Submit([this, synopsis = req.synopsis, xpath = req.xpath,
                deadline = req.deadline, truth = std::move(truth), epoch,
                estimate = out.estimate.value()]() {
    ShadowEvaluate(synopsis, xpath, deadline, truth, epoch, estimate);
    accuracy_.EndShadow();
  });
}

void EstimationService::ShadowEvaluate(
    const std::string& synopsis, const std::string& xpath,
    const Deadline& deadline, const std::shared_ptr<const GroundTruth>& truth,
    uint64_t epoch, double estimate) {
  // The caller's answer has long been returned; the deadline check here
  // implements the contract that no work attributable to a request runs
  // past its deadline (and bounds shadow debt under a backlog).
  if (!deadline.infinite() && deadline.HasExpired()) {
    accuracy_.SuppressDeadline();
    return;
  }
  // Re-parse off the hot path rather than copying the canonical query
  // into every request on the 255-in-256 chance it is not sampled (the
  // hot path for a warm exact-hit never parses at all).
  Result<xpath::Query> parsed =
      xpath::ParseXPath(xpath::StripWhitespace(xpath));
  if (!parsed.ok()) {
    accuracy_.SkipEvalError();
    return;
  }
  const xpath::Query canonical = xpath::Canonicalize(parsed.value());
  Result<uint64_t> truth_count = truth->evaluator.Count(canonical);
  if (!truth_count.ok()) {
    accuracy_.SkipEvalError();
    return;
  }
  const obs::SynopsisAccuracy drift = accuracy_.Record(
      synopsis, epoch, ClassifyQuery(canonical), xpath, estimate,
      static_cast<double>(truth_count.value()));
  // Below the sample gate the verdict stays kUnknown — flapping to
  // "healthy" off one lucky sample would be as wrong as flapping to
  // "stale" off one unlucky one.
  if (drift.samples >= accuracy_.options().drift_min_samples) {
    const bool applied =
        registry_.MarkHealth(synopsis, epoch,
                             drift.stale ? SynopsisHealth::kStale
                                         : SynopsisHealth::kHealthy);
    // Self-healing: a drift conviction of the *current* version of a
    // live synopsis schedules its rebuild (no-op for names not
    // registered live; repeat convictions coalesce into the in-flight
    // rebuild).
    if (applied && drift.stale && options_.auto_rebuild) {
      maint_->ScheduleRebuild(synopsis, "drift");
    }
  }
}

bool EstimationService::DrainShadow(uint64_t timeout_ms) const {
  const auto give_up =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (accuracy_.pending() != 0) {
    if (Clock::now() >= give_up) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

obs::QueryClass ClassifyQuery(const xpath::Query& canonical) {
  obs::QueryClass cls;
  cls.order = !canonical.orders.empty();
  cls.depth = static_cast<int>(canonical.nodes.size());
  // A root-anywhere query starts with an implicit '//' step.
  cls.descendant = canonical.root_mode == xpath::RootMode::kAnywhere;
  for (size_t i = 0; i < canonical.nodes.size(); ++i) {
    const xpath::QueryNode& node = canonical.nodes[i];
    if (i != 0 && node.axis == xpath::StructAxis::kDescendant) {
      cls.descendant = true;
    }
    if (node.children.size() >= 2) cls.branched = true;
    if (node.value_filter.has_value()) cls.predicate = true;
  }
  return cls;
}

void EstimationService::RecordTrace(const QueryRequest& req,
                                    const char* outcome,
                                    const EstimateOutcome& out,
                                    const obs::TraceSpans& spans,
                                    uint64_t total_ns,
                                    const char* tail_class) {
  if (options_.trace_capacity == 0) return;
#ifdef XEE_OBS_OFF
  (void)req;
  (void)outcome;
  (void)out;
  (void)spans;
  (void)total_ns;
  (void)tail_class;
#else
  // The class counter is bumped exactly when a record enters the tail
  // ring (capacity gate above, routing in TraceRing::Record), so
  // traces().tail_recorded() == sum of the class counters — the
  // conservation tail_retention_test pins.
  if (tail_class != nullptr) stats_.TailCounter(tail_class).Inc();
  obs::TraceRecord rec;
  rec.total_ns = total_ns;
  rec.spans = spans;
  rec.synopsis = req.synopsis;
  rec.query = req.xpath;
  rec.outcome = outcome;
  rec.degraded = out.degraded;
  if (tail_class != nullptr) rec.tail_class = tail_class;
  traces_.Record(std::move(rec));
#endif
}

void EstimationService::FlightFaultObserver(void* ctx, std::string_view site,
                                            uint64_t schedule_now) {
  auto* self = static_cast<EstimationService*>(ctx);
  self->flight_->Record(obs::FlightEventType::kFaultFire,
                        self->flight_->Intern(site), schedule_now, 0);
}

void EstimationService::ObsTick(uint64_t now_us) {
  std::lock_guard<std::mutex> lock(tick_mu_);
  if (flight_ != nullptr) {
    // Epoch bumps and rebuild transitions, detected by diffing the
    // registry / maintenance views against the last tick. Transitions
    // between ticks coalesce to the latest state — the black box
    // records the trajectory at scrape granularity, the ledger counters
    // in healthz stay exact.
    for (const SynopsisHealthRow& row : registry_.HealthRows()) {
      uint64_t& last = tick_epochs_[row.name];
      if (row.epoch != last) {
        flight_->Record(obs::FlightEventType::kEpochBump,
                        flight_->Intern(row.name), row.epoch, last, now_us);
        last = row.epoch;
      }
    }
    for (const MaintenanceRow& row : maint_->Rows()) {
      MaintenanceState& last = tick_states_[row.name];
      if (row.state != last) {
        flight_->Record(obs::FlightEventType::kRebuild,
                        flight_->Intern(row.name),
                        static_cast<uint64_t>(row.state), row.epoch, now_us);
        last = row.state;
      }
    }
  }
  if (timeseries_ == nullptr) return;
  // Refresh the gauge the accuracy-threshold SLO reads (milli-q-error:
  // gauges are integral). Worst across synopses: one drifting tenant
  // should burn the SLO even when the fleet average looks fine.
  double worst = 0;
  for (const obs::SynopsisAccuracy& s : accuracy_.Synopses()) {
    worst = std::max(worst, s.ewma_qerror);
  }
  obs_.GetGauge("service.accuracy.worst_ewma_qerror_milli")
      .Set(static_cast<int64_t>(worst * 1000.0));
  if (timeseries_->Sample(now_us) && slo_ != nullptr) {
    slo_->Evaluate(now_us);
  }
}

std::string EstimationService::TszJson() const {
  if (timeseries_ == nullptr) {
    return "{\"enabled\":false,\"samples\":0,\"series\":{}}";
  }
  return timeseries_->ToJson();
}

std::string EstimationService::AlertzJson() const {
  if (slo_ == nullptr) {
    return "{\"enabled\":false,\"evaluations\":0,\"alerts\":[]}";
  }
  return slo_->ToJson();
}

std::string EstimationService::FlightzJson() const {
  if (flight_ == nullptr) {
    return "{\"enabled\":false,\"recorded\":0,\"capacity\":0,\"events\":[]}";
  }
  return flight_->ToJson();
}

std::string EstimationService::StatszJson() {
  // The LRU keeps its own counters; mirror them into gauges at export
  // time so STATSZ is one self-contained document.
  const LruStats cache = cache_.stats();
  obs_.GetGauge("service.plan_cache.entries")
      .Set(static_cast<int64_t>(cache.entries));
  obs_.GetGauge("service.plan_cache.bytes")
      .Set(static_cast<int64_t>(cache.bytes));
  obs_.GetGauge("service.plan_cache.evictions")
      .Set(static_cast<int64_t>(cache.evictions));
  const LruStats memo = memo_.stats();
  obs_.GetGauge("service.estimate_memo.entries")
      .Set(static_cast<int64_t>(memo.entries));
  obs_.GetGauge("service.estimate_memo.bytes")
      .Set(static_cast<int64_t>(memo.bytes));
  obs_.GetGauge("service.estimate_memo.evictions")
      .Set(static_cast<int64_t>(memo.evictions));
  // Splice the accuracy section in as a fourth top-level key, keeping
  // the registry's counters/gauges/histograms rendering untouched.
  std::string j = obs_.ToJson();
  std::string spliced = ",\"accuracy\":";
  spliced += accuracy_.ToJson();
  j.insert(j.size() - 1, spliced);
  return j;
}

std::string EstimationService::HealthzJson() const {
  const std::vector<SynopsisHealthRow> rows = registry_.HealthRows();
  const std::vector<std::pair<std::string, Status>> quarantined =
      registry_.QuarantinedNames();

  bool any_stale = false;
  for (const SynopsisHealthRow& row : rows) {
    if (row.health == SynopsisHealth::kStale) any_stale = true;
  }
  std::string j = "{\"status\":\"";
  j += any_stale ? "stale" : "ok";
  j += "\",\"synopses\":{";
  for (size_t i = 0; i < rows.size(); ++i) {
    const SynopsisHealthRow& row = rows[i];
    if (i != 0) j += ",";
    j += "\"";
    j += obs::JsonEscape(row.name);
    j += "\":{\"epoch\":";
    j += std::to_string(row.epoch);
    j += ",\"health\":\"";
    j += SynopsisHealthName(row.health);
    j += "\",\"order_quarantined\":";
    j += row.order_quarantined ? "true" : "false";
    j += ",\"has_truth\":";
    j += row.has_truth ? "true" : "false";
    j += "}";
  }
  j += "},\"quarantined\":[";
  for (size_t i = 0; i < quarantined.size(); ++i) {
    if (i != 0) j += ",";
    j += "\"";
    j += obs::JsonEscape(quarantined[i].first);
    j += "\"";
  }
  j += "],\"maintenance\":{";
  const std::vector<MaintenanceRow> maint = maint_->Rows();
  for (size_t i = 0; i < maint.size(); ++i) {
    const MaintenanceRow& row = maint[i];
    if (i != 0) j += ",";
    j += "\"";
    j += obs::JsonEscape(row.name);
    j += "\":{\"state\":\"";
    j += MaintenanceStateName(row.state);
    j += "\",\"epoch\":";
    j += std::to_string(row.epoch);
    j += ",\"patch_error\":";
    j += std::to_string(row.patch_error);
    j += ",\"budget_exhausted\":";
    j += row.budget_exhausted ? "true" : "false";
    j += ",\"deltas_applied\":";
    j += std::to_string(row.deltas_applied);
    j += ",\"deltas_rejected\":";
    j += std::to_string(row.deltas_rejected);
    j += ",\"rebuilds\":{\"scheduled\":";
    j += std::to_string(row.rebuilds_scheduled);
    j += ",\"completed\":";
    j += std::to_string(row.rebuilds_completed);
    j += ",\"retried\":";
    j += std::to_string(row.rebuilds_retried);
    j += ",\"restarted\":";
    j += std::to_string(row.rebuilds_restarted);
    j += ",\"abandoned\":";
    j += std::to_string(row.rebuilds_abandoned);
    j += ",\"coalesced\":";
    j += std::to_string(row.rebuilds_coalesced);
    j += "}}";
  }
  // The SLO alert roll-up: operators watching healthz see burn-rate
  // state without fetching .alertz.
  j += "},\"alerts\":[";
  if (slo_ != nullptr) {
    const std::vector<obs::AlertStatus> alerts = slo_->Alerts();
    for (size_t i = 0; i < alerts.size(); ++i) {
      const obs::AlertStatus& a = alerts[i];
      if (i != 0) j += ",";
      j += "{\"slo\":\"";
      j += obs::JsonEscape(a.slo);
      j += "\",\"state\":\"";
      j += obs::AlertStateName(a.state);
      j += "\",\"fired\":";
      j += std::to_string(a.fired);
      j += ",\"resolved\":";
      j += std::to_string(a.resolved);
      j += "}";
    }
  }
  j += "]}";
  return j;
}

std::vector<EstimateOutcome> EstimationService::EstimateBatch(
    std::span<const QueryRequest> requests) {
  stats_.batches.Inc();
  const size_t n = requests.size();
  std::vector<EstimateOutcome> results(n);

  // Admission is decided for the whole batch up front: the in-flight
  // budget admits a prefix, the rest shed immediately with escalating
  // retry hints. Deciding before any work runs keeps shedding
  // deterministic (it cannot depend on how fast admitted members
  // finish) and never blocks admitted work behind refused work.
  const size_t admitted = TryAdmit(n);
  for (size_t i = admitted; i < n; ++i) {
    stats_.requests.Inc();
    results[i] = ShedOutcome(requests[i], i - admitted, /*batch=*/true);
  }
  if (admitted == 0) return results;

  if (admitted <= 1 || pool_.size() <= 1) {
    for (size_t i = 0; i < admitted; ++i) {
      results[i] = EstimateAdmitted(requests[i]);
    }
  } else {
    pool_.ParallelFor(admitted, [&](size_t i) {
      results[i] = EstimateAdmitted(requests[i]);
    });
  }
  Release(admitted);
  return results;
}

}  // namespace xee::service
