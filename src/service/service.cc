#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "xpath/canonical.h"
#include "xpath/parser.h"

namespace xee::service {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t NsSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

}  // namespace

EstimationService::EstimationService(ServiceOptions options)
    : options_(options),
      cache_(options.plan_cache_bytes,
             options.cache_shards < 1 ? 1 : options.cache_shards),
      pool_(options.ResolvedThreads()) {}

std::string EstimationService::MakeKey(char kind, uint64_t epoch,
                                       const std::string& body) {
  std::string key;
  key.reserve(2 + 20 + body.size());
  key.push_back(kind);
  key += std::to_string(epoch);
  key.push_back(':');
  key += body;
  return key;
}

size_t EstimationService::TryAdmit(size_t want) {
  if (options_.max_inflight == 0 || want == 0) return want;
  size_t cur = inflight_.load(std::memory_order_relaxed);
  while (true) {
    if (cur >= options_.max_inflight) return 0;
    const size_t grant = std::min(want, options_.max_inflight - cur);
    if (inflight_.compare_exchange_weak(cur, cur + grant,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      return grant;
    }
  }
}

void EstimationService::Release(size_t slots) {
  if (options_.max_inflight != 0 && slots != 0) {
    inflight_.fetch_sub(slots, std::memory_order_release);
  }
}

EstimateOutcome EstimationService::ShedOutcome(size_t depth) {
  EstimateOutcome out;
  out.shed = true;
  // Escalate the hint with the shed depth: the more of one batch we had
  // to refuse, the deeper the overload, the longer clients should wait.
  uint64_t hint =
      static_cast<uint64_t>(options_.retry_after_ms) * (depth + 1);
  hint = std::clamp<uint64_t>(hint, 1, 1000);
  out.retry_after_ms = static_cast<uint32_t>(hint);
  out.estimate =
      Status(StatusCode::kOverloaded,
             "shed by admission control (" +
                 std::to_string(options_.max_inflight) +
                 " requests in flight); retry after " +
                 std::to_string(out.retry_after_ms) + "ms");
  return out;
}

EstimateOutcome EstimationService::Estimate(const QueryRequest& request) {
  if (TryAdmit(1) == 0) {
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    stats_.shed.fetch_add(1, std::memory_order_relaxed);
    return ShedOutcome(0);
  }
  EstimateOutcome out = EstimateAdmitted(request);
  Release(1);
  return out;
}

EstimateOutcome EstimationService::EstimateAdmitted(
    const QueryRequest& req) {
  const auto t_request = Clock::now();
  stats_.requests.fetch_add(1, std::memory_order_relaxed);

  EstimateOutcome out = [&]() -> EstimateOutcome {
    EstimateOutcome out;

    // Rung 0 — deadline gate. A request arriving expired costs one
    // clock read: no snapshot, no parse, no join.
    if (!req.deadline.infinite() && req.deadline.HasExpired()) {
      out.estimate = Status(StatusCode::kDeadlineExceeded,
                            "deadline expired before estimation began");
      return out;
    }

    // Rung 1 — quarantine gate: a name whose last load was rejected is
    // deliberately out of service until a good version arrives.
    if (std::optional<Status> q = registry_.Quarantined(req.synopsis)) {
      out.estimate =
          Status(StatusCode::kUnavailable,
                 "synopsis quarantined: " + std::string(q->message()));
      return out;
    }

    std::optional<SynopsisSnapshot> snap = registry_.Snapshot(req.synopsis);
    if (!snap.has_value()) {
      out.estimate =
          Status(StatusCode::kNotFound, "unknown synopsis: " + req.synopsis);
      return out;
    }
    // A salvaged (order-dropped) version only affects queries that
    // carry order constraints — those degrade (or are refused with a
    // quarantine message below). Order-free answers are bit-identical
    // to an intact synopsis's, so they stay full fidelity.
    const bool order_quarantined = snap->order_quarantined;
    const estimator::EstimateLimits limits{req.deadline};

    // Exact-string probe: a warm repeat of the very same request text
    // skips the parse as well as the join. Degraded plans only satisfy
    // requests that accept degraded answers.
    const std::string stripped = xpath::StripWhitespace(req.xpath);
    const std::string exact_key = MakeKey('x', snap->epoch, stripped);
    if (std::shared_ptr<const CachedPlan> hit = cache_.Get(exact_key)) {
      if (!hit->degraded || req.allow_degraded) {
        stats_.exact_hits.fetch_add(1, std::memory_order_relaxed);
        out.estimate = hit->estimate;
        out.degraded = hit->degraded && hit->estimate.ok();
        return out;
      }
    }

    // Parse + canonicalize, then probe under the canonical key where
    // all spellings of this query meet.
    const auto t_parse = Clock::now();
    Result<xpath::Query> parsed = xpath::ParseXPath(stripped);
    stats_.parse.Record(NsSince(t_parse));
    if (!parsed.ok()) {  // unbounded garbage: uncached
      out.estimate = parsed.status();
      return out;
    }

    const xpath::Query canonical = xpath::Canonicalize(parsed.value());
    const std::string body = xpath::SerializeKey(canonical);
    const std::string canonical_key = MakeKey('c', snap->epoch, body);
    if (std::shared_ptr<const CachedPlan> hit = cache_.Get(canonical_key)) {
      stats_.canonical_hits.fetch_add(1, std::memory_order_relaxed);
      cache_.PutAlias(exact_key, hit);
      out.estimate = hit->estimate;
      return out;
    }

    estimator::Estimator est(*snap->synopsis);

    // Computes, caches ('d' namespace) and serves the order-free
    // estimate of `canonical` — the degradation rung for order-axis
    // queries whose order statistics are missing, quarantined, or too
    // expensive for the deadline. `alias_exact` is set only when the
    // degradation is structural for this epoch (every future request
    // would degrade the same way), never when it is deadline-forced —
    // a later, slower request must be able to get the full answer.
    auto run_degraded = [&](bool alias_exact) -> EstimateOutcome {
      EstimateOutcome d;
      d.degraded = true;
      const std::string degraded_key = MakeKey('d', snap->epoch, body);
      if (std::shared_ptr<const CachedPlan> hit = cache_.Get(degraded_key)) {
        stats_.canonical_hits.fetch_add(1, std::memory_order_relaxed);
        if (alias_exact) cache_.PutAlias(exact_key, hit);
        d.estimate = hit->estimate;
        return d;
      }
      xpath::Query base = canonical;
      base.orders.clear();
      const auto t_join = Clock::now();
      Result<estimator::Estimator::Compiled> compiled =
          est.Compile(base, limits);
      stats_.join.Record(NsSince(t_join));
      if (!compiled.ok()) {
        d.estimate = compiled.status();
        return d;
      }
      const auto t_formula = Clock::now();
      Result<double> estimate = est.EstimateCompiled(compiled.value(), limits);
      stats_.formula.Record(NsSince(t_formula));
      d.estimate = estimate;
      if (estimate.status().code() == StatusCode::kDeadlineExceeded) {
        return d;  // a blown deadline is not a property of the query
      }
      auto plan = std::make_shared<const CachedPlan>(
          CachedPlan{std::move(compiled).value(), estimate, /*degraded=*/true});
      cache_.PutCanonical(degraded_key, plan);
      if (alias_exact) cache_.PutAlias(exact_key, std::move(plan));
      stats_.misses.fetch_add(1, std::memory_order_relaxed);
      return d;
    };

    // Rung 2 — missing order statistics (synopsis built without them,
    // or dropped by salvage). Degrade to the order-free formulas when
    // the request permits; otherwise fail honestly.
    const bool wants_order = !canonical.orders.empty();
    if (wants_order && !snap->synopsis->has_order()) {
      if (!req.allow_degraded) {
        out.estimate =
            order_quarantined
                ? Status(StatusCode::kUnavailable,
                         "order statistics quarantined for synopsis: " +
                             req.synopsis)
                : Status(StatusCode::kUnsupported,
                         "synopsis was built without order statistics");
        return out;
      }
      return run_degraded(/*alias_exact=*/true);
    }

    // Full-fidelity path: compile (path join), then the estimation
    // formulas, both under the request deadline.
    const auto t_join = Clock::now();
    Result<estimator::Estimator::Compiled> compiled =
        est.Compile(canonical, limits);
    stats_.join.Record(NsSince(t_join));

    Result<double> estimate{0.0};
    if (compiled.ok()) {
      const auto t_formula = Clock::now();
      estimate = est.EstimateCompiled(compiled.value(), limits);
      stats_.formula.Record(NsSince(t_formula));
    } else {
      estimate = compiled.status();
    }

    // Rung 3 — deadline-forced fallback: the full computation did not
    // fit, but the (much cheaper) order-free one might still make it.
    if (estimate.status().code() == StatusCode::kDeadlineExceeded) {
      if (req.allow_degraded && wants_order && !req.deadline.HasExpired()) {
        return run_degraded(/*alias_exact=*/false);
      }
      out.estimate = estimate;
      return out;  // never cached: not a property of the query
    }
    if (!compiled.ok()) {
      out.estimate = estimate;
      return out;  // compile errors: uncached, as before
    }

    auto plan = std::make_shared<const CachedPlan>(
        CachedPlan{std::move(compiled).value(), estimate, /*degraded=*/false});
    cache_.PutCanonical(canonical_key, plan);
    cache_.PutAlias(exact_key, std::move(plan));
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    out.estimate = estimate;
    return out;
  }();

  // "Degraded" describes an answer actually served; failures are just
  // failures.
  out.degraded = out.degraded && out.estimate.ok();
  switch (out.estimate.status().code()) {
    case StatusCode::kDeadlineExceeded:
      stats_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kUnavailable:
      stats_.quarantined.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
  if (out.degraded) stats_.degraded.fetch_add(1, std::memory_order_relaxed);
  stats_.request.Record(NsSince(t_request));
  return out;
}

std::vector<EstimateOutcome> EstimationService::EstimateBatch(
    std::span<const QueryRequest> requests) {
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  const size_t n = requests.size();
  std::vector<EstimateOutcome> results(n);

  // Admission is decided for the whole batch up front: the in-flight
  // budget admits a prefix, the rest shed immediately with escalating
  // retry hints. Deciding before any work runs keeps shedding
  // deterministic (it cannot depend on how fast admitted members
  // finish) and never blocks admitted work behind refused work.
  const size_t admitted = TryAdmit(n);
  for (size_t i = admitted; i < n; ++i) {
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    stats_.shed.fetch_add(1, std::memory_order_relaxed);
    results[i] = ShedOutcome(i - admitted);
  }
  if (admitted == 0) return results;

  if (admitted <= 1 || pool_.size() <= 1) {
    for (size_t i = 0; i < admitted; ++i) {
      results[i] = EstimateAdmitted(requests[i]);
    }
  } else {
    pool_.ParallelFor(admitted, [&](size_t i) {
      results[i] = EstimateAdmitted(requests[i]);
    });
  }
  Release(admitted);
  return results;
}

}  // namespace xee::service
