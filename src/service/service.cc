#include "service/service.h"

#include <chrono>
#include <optional>
#include <utility>

#include "xpath/canonical.h"
#include "xpath/parser.h"

namespace xee::service {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t NsSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

}  // namespace

EstimationService::EstimationService(ServiceOptions options)
    : options_(options),
      cache_(options.plan_cache_bytes,
             options.cache_shards < 1 ? 1 : options.cache_shards),
      pool_(options.threads == 0 ? ThreadPool::DefaultThreads()
                                 : options.threads) {}

std::string EstimationService::MakeKey(char kind, uint64_t epoch,
                                       const std::string& body) {
  std::string key;
  key.reserve(2 + 20 + body.size());
  key.push_back(kind);
  key += std::to_string(epoch);
  key.push_back(':');
  key += body;
  return key;
}

Result<double> EstimationService::Estimate(const std::string& synopsis,
                                           const std::string& xpath) {
  const auto t_request = Clock::now();
  stats_.requests.fetch_add(1, std::memory_order_relaxed);

  std::optional<SynopsisSnapshot> snap = registry_.Snapshot(synopsis);
  if (!snap.has_value()) {
    return Status(StatusCode::kNotFound, "unknown synopsis: " + synopsis);
  }

  // Exact-string probe: a warm repeat of the very same request text
  // skips the parse as well as the join.
  const std::string stripped = xpath::StripWhitespace(xpath);
  const std::string exact_key = MakeKey('x', snap->epoch, stripped);
  if (std::shared_ptr<const CachedPlan> hit = cache_.Get(exact_key)) {
    stats_.exact_hits.fetch_add(1, std::memory_order_relaxed);
    stats_.request.Record(NsSince(t_request));
    return hit->estimate;
  }

  // Parse + canonicalize, then probe under the canonical key where all
  // spellings of this query meet.
  const auto t_parse = Clock::now();
  Result<xpath::Query> parsed = xpath::ParseXPath(stripped);
  stats_.parse.Record(NsSince(t_parse));
  if (!parsed.ok()) return parsed.status();  // unbounded garbage: uncached

  const xpath::Query canonical = xpath::Canonicalize(parsed.value());
  const std::string canonical_key =
      MakeKey('c', snap->epoch, xpath::SerializeKey(canonical));
  if (std::shared_ptr<const CachedPlan> hit = cache_.Get(canonical_key)) {
    stats_.canonical_hits.fetch_add(1, std::memory_order_relaxed);
    cache_.PutAlias(exact_key, hit);
    stats_.request.Record(NsSince(t_request));
    return hit->estimate;
  }

  // Full compile: path join, then the estimation formulas.
  estimator::Estimator est(*snap->synopsis);
  const auto t_join = Clock::now();
  Result<estimator::Estimator::Compiled> compiled = est.Compile(canonical);
  stats_.join.Record(NsSince(t_join));
  if (!compiled.ok()) return compiled.status();

  const auto t_formula = Clock::now();
  Result<double> estimate = est.EstimateCompiled(compiled.value());
  stats_.formula.Record(NsSince(t_formula));

  auto plan = std::make_shared<const CachedPlan>(
      CachedPlan{std::move(compiled).value(), estimate});
  cache_.PutCanonical(canonical_key, plan);
  cache_.PutAlias(exact_key, std::move(plan));
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  stats_.request.Record(NsSince(t_request));
  return estimate;
}

std::vector<Result<double>> EstimationService::EstimateBatch(
    std::span<const QueryRequest> requests) {
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::optional<Result<double>>> slots(requests.size());
  if (requests.size() <= 1 || pool_.size() <= 1) {
    for (size_t i = 0; i < requests.size(); ++i) {
      slots[i] = Estimate(requests[i].synopsis, requests[i].xpath);
    }
  } else {
    pool_.ParallelFor(requests.size(), [&](size_t i) {
      slots[i] = Estimate(requests[i].synopsis, requests[i].xpath);
    });
  }
  std::vector<Result<double>> results;
  results.reserve(slots.size());
  for (std::optional<Result<double>>& s : slots) {
    results.push_back(std::move(*s));
  }
  return results;
}

}  // namespace xee::service
