#include "service/synopsis_registry.h"

#include <utility>

namespace xee::service {

uint64_t SynopsisRegistry::Register(const std::string& name,
                                    estimator::Synopsis synopsis) {
  return Register(name, std::make_shared<const estimator::Synopsis>(
                            std::move(synopsis)));
}

uint64_t SynopsisRegistry::Register(
    const std::string& name,
    std::shared_ptr<const estimator::Synopsis> synopsis) {
  std::lock_guard<std::mutex> lock(mu_);
  SynopsisSnapshot& slot = map_[name];
  slot.synopsis = std::move(synopsis);
  slot.epoch = next_epoch_++;
  return slot.epoch;
}

bool SynopsisRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.erase(name) > 0;
}

std::optional<SynopsisSnapshot> SynopsisRegistry::Snapshot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(name);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> SynopsisRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(map_.size());
  for (const auto& [name, snap] : map_) names.push_back(name);
  return names;
}

}  // namespace xee::service
