#include "service/synopsis_registry.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/fault.h"

namespace xee::service {

std::string_view SynopsisHealthName(SynopsisHealth h) {
  switch (h) {
    case SynopsisHealth::kHealthy:
      return "healthy";
    case SynopsisHealth::kStale:
      return "stale";
    case SynopsisHealth::kUnknown:
      break;
  }
  return "unknown";
}

uint64_t SynopsisRegistry::Register(
    const std::string& name, estimator::Synopsis synopsis,
    std::shared_ptr<const xml::Document> document) {
  return Register(name,
                  std::make_shared<const estimator::Synopsis>(
                      std::move(synopsis)),
                  std::move(document));
}

uint64_t SynopsisRegistry::Register(
    const std::string& name,
    std::shared_ptr<const estimator::Synopsis> synopsis,
    std::shared_ptr<const xml::Document> document) {
  // ExactEvaluator construction walks the whole document; do it outside
  // the lock, like deserialization in RegisterSerialized.
  std::shared_ptr<const GroundTruth> truth;
  if (document != nullptr) {
    truth = std::make_shared<const GroundTruth>(std::move(document));
  }
  std::lock_guard<std::mutex> lock(mu_);
  quarantine_.erase(name);
  SynopsisSnapshot& slot = map_[name];
  slot.synopsis = std::move(synopsis);
  slot.epoch = next_epoch_++;
  slot.order_quarantined = false;
  slot.health = SynopsisHealth::kUnknown;
  slot.truth = std::move(truth);
  return slot.epoch;
}

bool SynopsisRegistry::AttachDocument(
    const std::string& name, std::shared_ptr<const xml::Document> document) {
  std::shared_ptr<const GroundTruth> truth;
  if (document != nullptr) {
    truth = std::make_shared<const GroundTruth>(std::move(document));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(name);
  if (it == map_.end()) return false;
  it->second.truth = std::move(truth);
  return true;
}

bool SynopsisRegistry::MarkHealth(const std::string& name, uint64_t epoch,
                                  SynopsisHealth health) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(name);
  if (it == map_.end() || it->second.epoch != epoch) return false;
  it->second.health = health;
  return true;
}

std::optional<SynopsisHealth> SynopsisRegistry::Health(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(name);
  if (it == map_.end()) return std::nullopt;
  return it->second.health;
}

std::vector<SynopsisHealthRow> SynopsisRegistry::HealthRows() const {
  std::vector<SynopsisHealthRow> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows.reserve(map_.size());
    for (const auto& [name, snap] : map_) {
      SynopsisHealthRow row;
      row.name = name;
      row.epoch = snap.epoch;
      row.health = snap.health;
      row.order_quarantined = snap.order_quarantined;
      row.has_truth = snap.truth != nullptr;
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const SynopsisHealthRow& a, const SynopsisHealthRow& b) {
              return a.name < b.name;
            });
  return rows;
}

std::vector<std::pair<std::string, Status>> SynopsisRegistry::QuarantinedNames()
    const {
  std::vector<std::pair<std::string, Status>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(quarantine_.size());
    for (const auto& [name, status] : quarantine_) {
      out.emplace_back(name, status);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

LoadOutcome SynopsisRegistry::RegisterSerialized(const std::string& name,
                                                 std::string_view blob) {
  // Deserialization is the expensive part; run it (and the injected
  // bit-rot) outside the lock so loads never stall serving.
  std::string bytes(blob);
  uint64_t rot = 0;
  if (!bytes.empty() && FaultFires(kBitrotFaultSite, &rot)) {
    bytes[rot % bytes.size()] ^=
        static_cast<char>(1u << ((rot >> 32) % 8));
  }

  estimator::DeserializeOptions opts;
  opts.salvage_order_corruption = true;
  estimator::DeserializeReport report;
  Result<estimator::Synopsis> syn =
      estimator::Synopsis::Deserialize(bytes, opts, &report);

  LoadOutcome out;
  if (!syn.ok()) {
    out.status = syn.status();
    std::lock_guard<std::mutex> lock(mu_);
    // The old version (if any) is as suspect as the blob that was meant
    // to replace it is broken — a swap is a statement that the previous
    // data is stale. Pull the name from serving entirely.
    map_.erase(name);
    quarantine_[name] = out.status;
    return out;
  }

  auto shared = std::make_shared<const estimator::Synopsis>(
      std::move(syn).value());
  std::lock_guard<std::mutex> lock(mu_);
  quarantine_.erase(name);
  SynopsisSnapshot& slot = map_[name];
  slot.synopsis = std::move(shared);
  slot.epoch = next_epoch_++;
  slot.order_quarantined = report.order_dropped;
  // A blob carries no source document: the new version starts unaudited
  // (no oracle) until AttachDocument supplies one.
  slot.health = SynopsisHealth::kUnknown;
  slot.truth = nullptr;
  out.epoch = slot.epoch;
  out.order_dropped = report.order_dropped;
  return out;
}

bool SynopsisRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool quarantined = quarantine_.erase(name) > 0;
  return map_.erase(name) > 0 || quarantined;
}

std::optional<SynopsisSnapshot> SynopsisRegistry::Snapshot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(name);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::optional<Status> SynopsisRegistry::Quarantined(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = quarantine_.find(name);
  if (it == quarantine_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> SynopsisRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(map_.size());
  for (const auto& [name, snap] : map_) names.push_back(name);
  return names;
}

}  // namespace xee::service
