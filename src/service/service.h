#ifndef XEE_SERVICE_SERVICE_H_
#define XEE_SERVICE_SERVICE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "service/plan_cache.h"
#include "service/service_stats.h"
#include "service/synopsis_registry.h"

namespace xee::service {

/// Construction knobs for EstimationService.
struct ServiceOptions {
  /// Byte budget of the compiled-plan cache (0 effectively disables
  /// caching: every Put immediately evicts down to one entry per shard).
  size_t plan_cache_bytes = 8ull << 20;
  /// Plan-cache shard count (contention vs. bookkeeping overhead).
  size_t cache_shards = 8;
  /// Worker threads for EstimateBatch; 0 = hardware concurrency.
  size_t threads = 0;
};

/// One estimation request against a registered synopsis.
struct QueryRequest {
  std::string synopsis;  ///< registry name
  std::string xpath;     ///< XPath expression (whitespace tolerated)
};

/// The serving layer over the paper's estimator: a synopsis registry
/// (named, swappable datasets), a compiled-plan cache keyed by
/// canonicalized queries, a worker pool for batch fan-out, and a stats
/// surface. Built for the optimizer hot loop — the estimate for a warm
/// query costs one cache lookup instead of a parse + path join.
///
/// Thread-safety: every method may be called concurrently from any
/// thread, including registry mutations under in-flight queries (each
/// query pins its synopsis version via a refcounted snapshot). Batch
/// results are bit-identical to issuing the same calls sequentially.
class EstimationService {
 public:
  explicit EstimationService(ServiceOptions options = {});

  /// Named synopses: register/swap/remove datasets here.
  SynopsisRegistry& registry() { return registry_; }
  const SynopsisRegistry& registry() const { return registry_; }

  /// Single-call fast path: runs on the caller's thread (no pool
  /// round-trip). kNotFound for an unregistered synopsis name.
  Result<double> Estimate(const std::string& synopsis,
                          const std::string& xpath);

  /// Fans `requests` out over the worker pool and blocks until every
  /// result is in. results[i] corresponds to requests[i].
  std::vector<Result<double>> EstimateBatch(
      std::span<const QueryRequest> requests);

  /// Cache outcome counters, occupancy, and per-stage latency.
  ServiceStatsSnapshot Stats() const { return stats_.Snap(cache_.stats()); }

  void ClearPlanCache() { cache_.Clear(); }

  size_t threads() const { return pool_.size(); }

 private:
  /// Namespaced cache key: kind ('x' exact string / 'c' canonical),
  /// synopsis epoch, and the query body.
  static std::string MakeKey(char kind, uint64_t epoch,
                             const std::string& body);

  ServiceOptions options_;
  SynopsisRegistry registry_;
  PlanCache cache_;
  ThreadPool pool_;
  ServiceStats stats_;
};

}  // namespace xee::service

#endif  // XEE_SERVICE_SERVICE_H_
