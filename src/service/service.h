#ifndef XEE_SERVICE_SERVICE_H_
#define XEE_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/accuracy.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xpath/query.h"
#include "service/estimate_memo.h"
#include "service/maintenance.h"
#include "service/plan_cache.h"
#include "service/service_stats.h"
#include "service/synopsis_registry.h"

namespace xee::service {

/// Construction knobs for EstimationService.
struct ServiceOptions {
  /// Byte budget of the compiled-plan cache (0 effectively disables
  /// caching: every Put immediately evicts down to one entry per shard).
  size_t plan_cache_bytes = 8ull << 20;
  /// Plan-cache shard count (contention vs. bookkeeping overhead).
  /// Shared by the estimate memo.
  size_t cache_shards = 8;
  /// Byte budget of the final-estimate memo (service/estimate_memo.h):
  /// a sharded LRU from (canonical plan hash, synopsis epoch) to the
  /// finished estimate. Entries are ~100 bytes vs kilobytes for a
  /// cached plan, so estimates survive plan evictions; a warm repeat
  /// against an unchanged synopsis costs parse + canonicalize + one
  /// probe. Epoch-keyed, so snapshot swaps invalidate for free.
  /// 0 disables the memo.
  size_t estimate_memo_bytes = 1ull << 20;
  /// Run the static query analyzer (xpath/analyze.h, DESIGN.md §15) on
  /// plan-cache misses: answer provably-empty queries 0 in O(plan) with
  /// outcome "pruned", and rewrite queries to estimator-invariant
  /// cheaper forms so alias families share one cached plan. Served
  /// numbers are bit-identical with the analyzer on or off; only the
  /// pruned/rewritten labels and the cache economics change.
  bool enable_analyzer = true;
  /// Worker threads for EstimateBatch; 0 = hardware concurrency.
  size_t threads = 0;
  /// Admission control: maximum requests estimating at once (single
  /// calls and batch members combined). Excess requests are shed
  /// immediately with kOverloaded and a retry-after hint instead of
  /// queueing without bound. 0 = unbounded (the historical behavior).
  size_t max_inflight = 0;
  /// Base of the retry-after hint attached to shed requests; shedding
  /// under deeper overload hints proportionally longer waits. Clients
  /// feed the hint to Backoff::NextDelayMs (common/backoff.h).
  uint32_t retry_after_ms = 2;
  /// Capacity of the recent-trace ring buffer (per-request stage
  /// breakdowns, exported via TRACEZ). 0 disables the ring (timed
  /// requests still feed the latency histograms).
  size_t trace_capacity = 128;
  /// Time 1-in-N requests (1 = every request, 0 = never). The sampling
  /// decision gates *all* per-request timing — the stage timers, the
  /// request histogram, and the trace ring — so the unsampled hot path
  /// does no clock reads at all (a warm cache hit costs ~1µs; a single
  /// clock read is ~3% of that). Counters are never sampled: request /
  /// outcome / cache counts stay exact. The latency histograms are
  /// unbiased 1-in-N samples of the distribution; their `count` is the
  /// number of timed requests, not total requests.
  size_t trace_sample = 16;
  /// Timed requests at or above this wall time are captured in the
  /// slow-trace ring (in addition to the sampled recent ring). 0
  /// disables slow capture. Untimed requests can't be detected as slow
  /// — set trace_sample = 1 to make slow capture exhaustive.
  uint64_t slow_trace_ns = 10'000'000;  // 10ms
  /// Shadow-evaluate 1-in-N successful full-fidelity requests against
  /// the synopsis's registered ground-truth Document (obs/accuracy.h,
  /// DESIGN.md §11). 1 = every request, 0 = off. The shadow runs on the
  /// worker pool after the caller's answer is complete — it never
  /// delays the reply — and never fires for shed, degraded, or failed
  /// requests. No-op under XEE_OBS_OFF.
  size_t accuracy_sample = 256;
  /// Seed of the shadow-sampling decision; fixed seed + fixed request
  /// sequence = same sampled positions (tests pin this).
  uint64_t accuracy_seed = 0xacc5eed;
  /// A synopsis whose shadow q-error EWMA exceeds this turns `stale`.
  double drift_qerror_limit = 2.0;
  /// ...but only after this many shadow samples of its current epoch.
  uint64_t drift_min_samples = 32;
  /// Bound on queued + running shadow evaluations; samples beyond it
  /// are dropped (backlog_suppressed), so a slow oracle can never grow
  /// an unbounded queue behind real traffic.
  size_t accuracy_max_pending = 64;
  /// Worst-offenders ring capacity (top-K sampled queries by q-error).
  size_t accuracy_offenders = 16;
  /// Escalation policy for a `stale` synopsis. Default (false) is
  /// report-only: health shows in healthz/ACCZ/statsz but answers are
  /// untouched. When true, answers from a stale synopsis carry PR 3's
  /// degraded semantics: tagged degraded when the request allows it,
  /// refused with kUnavailable when it insists on full fidelity.
  bool stale_downgrade = false;

  /// Self-healing (DESIGN.md §14): when a *live* synopsis (one
  /// registered through RegisterLive) is convicted stale — by the
  /// shadow-sampled drift EWMA or by exhausting its patch-error budget
  /// — automatically schedule a background rebuild. Off by default,
  /// like stale_downgrade: observability first, policy opt-in.
  bool auto_rebuild = false;
  /// Patch-error budget of live synopses, as a fraction of the
  /// document: once the accumulated error of incremental patching
  /// crosses it, the snapshot is marked stale and (under auto_rebuild)
  /// a rebuild is scheduled.
  double patch_error_budget = 0.05;
  /// Per-tag staleness tolerance below which a dirty histogram is left
  /// un-rebuilt on the delta path (see delta::PatchOptions). 0 = always
  /// rebuild dirty histograms from the exact maintained rows.
  double patch_tolerance = 0.0;
  /// Rebuild retry budget under rebuild.alloc-style failures, and the
  /// restart budget when the document moves mid-build.
  size_t rebuild_max_retries = 3;
  size_t rebuild_max_restarts = 3;
  /// Initial delay of the jittered-exponential rebuild retry backoff.
  uint64_t rebuild_backoff_ms = 1;
  /// Attach a materialized ground-truth document to every snapshot a
  /// live synopsis publishes, so shadow sampling keeps auditing the
  /// patched estimates (one document copy per publish).
  bool live_truth = true;

  /// `threads` with the 0 = hardware default resolved, clamped to >= 1
  /// (hardware_concurrency() may legitimately report 0).
  size_t ResolvedThreads() const {
    return threads == 0 ? ThreadPool::DefaultThreads()
                        : (threads < 1 ? 1 : threads);
  }
};

/// One estimation request against a registered synopsis.
struct QueryRequest {
  std::string synopsis;  ///< registry name
  std::string xpath;     ///< XPath expression (whitespace tolerated)
  /// Per-request deadline; infinite by default. A request arriving
  /// already expired is rejected in O(1) — no snapshot, parse, or join.
  Deadline deadline;
  /// Permit degraded answers: when order statistics are missing or the
  /// deadline cannot fit the full computation, serve the order-free
  /// estimate (tagged degraded) instead of failing. When false, such
  /// requests fail with kUnavailable / kDeadlineExceeded.
  bool allow_degraded = true;
};

/// A request's result plus its serving metadata. Convenience accessors
/// make it drop-in for call sites that treated the old Result<double>
/// return as a value-or-status.
struct EstimateOutcome {
  Result<double> estimate{0.0};
  /// The estimate ignored the query's order constraints (missing or
  /// quarantined order statistics, or a deadline-forced fallback).
  bool degraded = false;
  /// Shed by admission control before any work ran (status is
  /// kOverloaded; retry_after_ms carries the hint).
  bool shed = false;
  /// Answered 0 by the static analyzer's satisfiability proof — no path
  /// join or formula ran. The number (exactly 0.0) is what the full
  /// pipeline would have produced; prune verdicts are epoch-keyed, so a
  /// synopsis swap re-validates them.
  bool pruned = false;
  /// Suggested client wait before retrying a shed request.
  uint32_t retry_after_ms = 0;

  bool ok() const { return estimate.ok(); }
  double value() const { return estimate.value(); }
  Status status() const { return estimate.status(); }
};

/// The serving layer over the paper's estimator: a synopsis registry
/// (named, swappable datasets), a compiled-plan cache keyed by
/// canonicalized queries, a worker pool for batch fan-out, admission
/// control with deadline enforcement, and a stats surface. Built for
/// the optimizer hot loop — the estimate for a warm query costs one
/// cache lookup instead of a parse + path join — and for staying up
/// when inputs, load, or time budgets turn hostile (DESIGN.md §9).
///
/// Thread-safety: every method may be called concurrently from any
/// thread, including registry mutations under in-flight queries (each
/// query pins its synopsis version via a refcounted snapshot). Batch
/// results are bit-identical to issuing the same calls sequentially,
/// admission permitting.
class EstimationService {
 public:
  explicit EstimationService(ServiceOptions options = {});
  ~EstimationService();

  /// Named synopses: register/swap/remove datasets here.
  SynopsisRegistry& registry() { return registry_; }
  const SynopsisRegistry& registry() const { return registry_; }

  /// Single-call fast path: runs on the caller's thread (no pool
  /// round-trip). kNotFound for an unregistered synopsis name,
  /// kUnavailable for a quarantined one, kOverloaded when admission
  /// control sheds, kDeadlineExceeded for a blown deadline.
  EstimateOutcome Estimate(const QueryRequest& request);
  EstimateOutcome Estimate(const std::string& synopsis,
                           const std::string& xpath) {
    return Estimate(QueryRequest{synopsis, xpath});
  }

  /// Fans `requests` out over the worker pool and blocks until every
  /// result is in. results[i] corresponds to requests[i]. Admission is
  /// decided up front for the whole batch: members beyond the in-flight
  /// budget are shed (kOverloaded, escalating retry hints) without
  /// blocking the admitted ones.
  std::vector<EstimateOutcome> EstimateBatch(
      std::span<const QueryRequest> requests);

  /// Cache outcome counters, occupancy, and per-stage latency.
  ServiceStatsSnapshot Stats() const {
    return stats_.Snap(cache_.stats(), memo_.stats());
  }

  /// This service's metrics registry (every ServiceStats counter lives
  /// here). Process-wide subsystems (estimator, thread pool, faults)
  /// report to obs::Registry::Global() instead.
  obs::Registry& obs() { return obs_; }
  const obs::Registry& obs() const { return obs_; }

  /// Recent and slow per-request traces (see ServiceOptions::
  /// trace_capacity / trace_sample / slow_trace_ns).
  obs::TraceRing& traces() { return traces_; }
  const obs::TraceRing& traces() const { return traces_; }

  /// Shadow-sampled accuracy state (see ServiceOptions::accuracy_*).
  obs::AccuracyTracker& accuracy() { return accuracy_; }
  const obs::AccuracyTracker& accuracy() const { return accuracy_; }

  /// The STATSZ payload: refreshes the plan-cache occupancy gauges and
  /// renders this service's registry as JSON (with an "accuracy"
  /// section spliced in).
  std::string StatszJson();

  /// The ACCZ payload: the accuracy tracker's JSON alone.
  std::string AccuracyJson() const { return accuracy_.ToJson(); }

  /// The healthz payload, built from the registry (meaningful even
  /// under XEE_OBS_OFF, where health simply stays "unknown"):
  ///   {"status":"ok"|"stale","synopses":{name:{...}},"quarantined":[...]}
  std::string HealthzJson() const;

  /// Blocks until no shadow evaluations are pending (polling), or
  /// `timeout_ms` elapsed; returns whether the backlog reached zero.
  /// Tests and benches use this to observe a quiesced accuracy state.
  bool DrainShadow(uint64_t timeout_ms = 10'000) const;

  void ClearPlanCache() {
    cache_.Clear();
    memo_.Clear();
  }

  size_t threads() const { return pool_.size(); }

  /// Virtual-load hooks for the traffic simulator (src/sim/): occupy /
  /// release one admission slot without running a request, so an
  /// open-loop driver can make the service see N requests in flight in
  /// *virtual* time while issuing real calls one at a time on a single
  /// thread. Hold fails (false) when the in-flight budget is exhausted;
  /// for an unbounded service (max_inflight == 0) it always "succeeds"
  /// and both calls are no-ops, matching Estimate's own admission.
  /// Callers must balance every successful Hold with exactly one
  /// Release.
  bool HoldInflightSlot() { return TryAdmit(1) == 1; }
  void ReleaseInflightSlot() { Release(1); }

  /// Registers `doc` as a *live* document: the service owns it, builds
  /// and publishes its synopsis, and keeps the published snapshot
  /// current under ApplyDelta / background rebuilds. Returns the first
  /// epoch.
  uint64_t RegisterLive(const std::string& name, xml::Document doc,
                        const estimator::SynopsisOptions& build = {});

  /// Applies a delta batch to a live synopsis: patches incrementally,
  /// publishes a new epoch (plan-cache and memo entries for the old
  /// epoch die with it), and — when the patch-error budget is blown —
  /// marks the snapshot stale and (under auto_rebuild) schedules a
  /// rebuild. In-flight estimates are never blocked: they hold
  /// refcounted snapshots.
  Result<ApplyOutcome> ApplyDelta(const std::string& name,
                                  const delta::DocumentDelta& delta);

  /// Schedules a background rebuild of a live synopsis (reason label:
  /// "manual" from operators, "drift"/"budget" from self-healing).
  /// False for names not registered live.
  bool ScheduleRebuild(const std::string& name,
                       const std::string& reason = "manual") {
    return maint_->ScheduleRebuild(name, reason);
  }

  /// Blocks until no rebuild is in flight (or timeout); true = drained.
  bool DrainMaintenance(uint64_t timeout_ms = 10'000) {
    return maint_->DrainMaintenance(timeout_ms);
  }

  /// Maintenance state of every live synopsis (the healthz
  /// "maintenance" section).
  const MaintenanceManager& maintenance() const { return *maint_; }

 private:
  /// Namespaced cache key: kind ('x' exact string / 'c' canonical /
  /// 'd' degraded order-free), synopsis epoch, and the query body.
  static std::string MakeKey(char kind, uint64_t epoch,
                             const std::string& body);

  /// Reserves up to `want` in-flight slots; returns how many were
  /// granted (possibly 0). Never blocks.
  size_t TryAdmit(size_t want);
  void Release(size_t slots);

  /// An outcome for a shed request, with the shed counters (aggregate,
  /// by-reason attribution, retry-hint histogram) bumped as a side
  /// effect. `depth` escalates the retry hint when several requests
  /// shed at once; `batch` attributes the shed to EstimateBatch tail
  /// refusal rather than single-call admission.
  EstimateOutcome ShedOutcome(size_t depth, bool batch);

  /// The estimation ladder, run after admission.
  EstimateOutcome EstimateAdmitted(const QueryRequest& request);

  /// The once-per-request sampling decision (ServiceOptions::
  /// trace_sample): true when this request should be timed end to end.
  /// Always false in an XEE_OBS_OFF build.
  bool ShouldTime();

  /// Pushes a completed (timed) request into the trace ring.
  void RecordTrace(const QueryRequest& request, const char* outcome,
                   const EstimateOutcome& out, const obs::TraceSpans& spans,
                   uint64_t total_ns);

  /// Samples `out` for shadow evaluation and, when sampled and
  /// admitted, submits the shadow task to the pool. Called after the
  /// caller-visible answer is fully formed; never blocks.
  void MaybeShadow(const QueryRequest& request, const EstimateOutcome& out,
                   std::shared_ptr<const GroundTruth> truth, uint64_t epoch);

  /// The shadow task body (pool thread): re-parse, exact-count against
  /// `truth`, record the error, feed the drift verdict back into the
  /// registry's health state.
  void ShadowEvaluate(const std::string& synopsis, const std::string& xpath,
                      const Deadline& deadline,
                      const std::shared_ptr<const GroundTruth>& truth,
                      uint64_t epoch, double estimate);

  ServiceOptions options_;
  SynopsisRegistry registry_;
  PlanCache cache_;
  EstimateMemo memo_;
  obs::Registry obs_;  // must precede stats_/accuracy_ (handle resolution)
  ServiceStats stats_;
  obs::TraceRing traces_;
  obs::AccuracyTracker accuracy_;
  std::atomic<size_t> inflight_{0};
  std::atomic<uint64_t> trace_tick_{0};  // sampling counter
  /// Set by the destructor body before member destruction starts: the
  /// pool's drain may still run shadow tasks that schedule rebuilds,
  /// and those must run inline rather than Submit to a pool that has
  /// begun shutting down.
  std::atomic<bool> draining_{false};
  /// Constructed in the constructor body (its executor captures pool_)
  /// but declared before pool_ on purpose: queued rebuild tasks touch
  /// the manager, so the pool's destructor must drain before the
  /// manager dies.
  std::unique_ptr<MaintenanceManager> maint_;
  /// Declared last on purpose: the pool's destructor drains queued
  /// shadow and rebuild tasks, which touch accuracy_, registry_, obs_
  /// and maint_ — those must still be alive while the drain runs.
  ThreadPool pool_;
};

/// Classifies a canonicalized query into its accuracy label dimensions
/// (obs::QueryClass): order vs '//' vs child-only axis mix, chain vs
/// branch shape, predicate presence, node-count depth. Exposed so tests
/// can compute the class a query's shadow samples land under.
obs::QueryClass ClassifyQuery(const xpath::Query& canonical);

}  // namespace xee::service

#endif  // XEE_SERVICE_SERVICE_H_
