#ifndef XEE_SERVICE_SERVICE_H_
#define XEE_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/accuracy.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "xpath/query.h"
#include "service/estimate_memo.h"
#include "service/maintenance.h"
#include "service/plan_cache.h"
#include "service/service_stats.h"
#include "service/synopsis_registry.h"

namespace xee::service {

/// Construction knobs for EstimationService.
struct ServiceOptions {
  /// Byte budget of the compiled-plan cache (0 effectively disables
  /// caching: every Put immediately evicts down to one entry per shard).
  size_t plan_cache_bytes = 8ull << 20;
  /// Plan-cache shard count (contention vs. bookkeeping overhead).
  /// Shared by the estimate memo.
  size_t cache_shards = 8;
  /// Byte budget of the final-estimate memo (service/estimate_memo.h):
  /// a sharded LRU from (canonical plan hash, synopsis epoch) to the
  /// finished estimate. Entries are ~100 bytes vs kilobytes for a
  /// cached plan, so estimates survive plan evictions; a warm repeat
  /// against an unchanged synopsis costs parse + canonicalize + one
  /// probe. Epoch-keyed, so snapshot swaps invalidate for free.
  /// 0 disables the memo.
  size_t estimate_memo_bytes = 1ull << 20;
  /// Run the static query analyzer (xpath/analyze.h, DESIGN.md §15) on
  /// plan-cache misses: answer provably-empty queries 0 in O(plan) with
  /// outcome "pruned", and rewrite queries to estimator-invariant
  /// cheaper forms so alias families share one cached plan. Served
  /// numbers are bit-identical with the analyzer on or off; only the
  /// pruned/rewritten labels and the cache economics change.
  bool enable_analyzer = true;
  /// Worker threads for EstimateBatch; 0 = hardware concurrency.
  size_t threads = 0;
  /// Admission control: maximum requests estimating at once (single
  /// calls and batch members combined). Excess requests are shed
  /// immediately with kOverloaded and a retry-after hint instead of
  /// queueing without bound. 0 = unbounded (the historical behavior).
  size_t max_inflight = 0;
  /// Base of the retry-after hint attached to shed requests; shedding
  /// under deeper overload hints proportionally longer waits. Clients
  /// feed the hint to Backoff::NextDelayMs (common/backoff.h).
  uint32_t retry_after_ms = 2;
  /// Capacity of the recent-trace ring buffer (per-request stage
  /// breakdowns, exported via TRACEZ). 0 disables the ring (timed
  /// requests still feed the latency histograms).
  size_t trace_capacity = 128;
  /// Time 1-in-N requests (1 = every request, 0 = never). The sampling
  /// decision gates *all* per-request timing — the stage timers, the
  /// request histogram, and the trace ring — so the unsampled hot path
  /// does no clock reads at all (a warm cache hit costs ~1µs; a single
  /// clock read is ~3% of that). Counters are never sampled: request /
  /// outcome / cache counts stay exact. The latency histograms are
  /// unbiased 1-in-N samples of the distribution; their `count` is the
  /// number of timed requests, not total requests.
  size_t trace_sample = 16;
  /// Timed requests at or above this wall time classify as "slow" and
  /// are retained in the trace ring's tail buffer. 0 disables slow
  /// capture. Untimed requests can't be detected as slow — set
  /// trace_sample = 1 to make slow capture exhaustive.
  uint64_t slow_trace_ns = 10'000'000;  // 10ms
  /// Shadow-evaluate 1-in-N successful full-fidelity requests against
  /// the synopsis's registered ground-truth Document (obs/accuracy.h,
  /// DESIGN.md §11). 1 = every request, 0 = off. The shadow runs on the
  /// worker pool after the caller's answer is complete — it never
  /// delays the reply — and never fires for shed, degraded, or failed
  /// requests. No-op under XEE_OBS_OFF.
  size_t accuracy_sample = 256;
  /// Seed of the shadow-sampling decision; fixed seed + fixed request
  /// sequence = same sampled positions (tests pin this).
  uint64_t accuracy_seed = 0xacc5eed;
  /// A synopsis whose shadow q-error EWMA exceeds this turns `stale`.
  double drift_qerror_limit = 2.0;
  /// ...but only after this many shadow samples of its current epoch.
  uint64_t drift_min_samples = 32;
  /// Bound on queued + running shadow evaluations; samples beyond it
  /// are dropped (backlog_suppressed), so a slow oracle can never grow
  /// an unbounded queue behind real traffic.
  size_t accuracy_max_pending = 64;
  /// Worst-offenders ring capacity (top-K sampled queries by q-error).
  size_t accuracy_offenders = 16;
  /// Escalation policy for a `stale` synopsis. Default (false) is
  /// report-only: health shows in healthz/ACCZ/statsz but answers are
  /// untouched. When true, answers from a stale synopsis carry PR 3's
  /// degraded semantics: tagged degraded when the request allows it,
  /// refused with kUnavailable when it insists on full fidelity.
  bool stale_downgrade = false;

  /// Self-healing (DESIGN.md §14): when a *live* synopsis (one
  /// registered through RegisterLive) is convicted stale — by the
  /// shadow-sampled drift EWMA or by exhausting its patch-error budget
  /// — automatically schedule a background rebuild. Off by default,
  /// like stale_downgrade: observability first, policy opt-in.
  bool auto_rebuild = false;
  /// Patch-error budget of live synopses, as a fraction of the
  /// document: once the accumulated error of incremental patching
  /// crosses it, the snapshot is marked stale and (under auto_rebuild)
  /// a rebuild is scheduled.
  double patch_error_budget = 0.05;
  /// Per-tag staleness tolerance below which a dirty histogram is left
  /// un-rebuilt on the delta path (see delta::PatchOptions). 0 = always
  /// rebuild dirty histograms from the exact maintained rows.
  double patch_tolerance = 0.0;
  /// Rebuild retry budget under rebuild.alloc-style failures, and the
  /// restart budget when the document moves mid-build.
  size_t rebuild_max_retries = 3;
  size_t rebuild_max_restarts = 3;
  /// Initial delay of the jittered-exponential rebuild retry backoff.
  uint64_t rebuild_backoff_ms = 1;
  /// Attach a materialized ground-truth document to every snapshot a
  /// live synopsis publishes, so shadow sampling keeps auditing the
  /// patched estimates (one document copy per publish).
  bool live_truth = true;

  // --- Flight-data observability (DESIGN.md §16) ---

  /// Sampling interval of the time-series store; 0 disables the store
  /// (and with it the SLO engine). Samples are taken by ObsTick, which
  /// a driver must call — the server spawns a wall-clock scrape thread,
  /// the traffic simulator feeds virtual time; the service itself never
  /// reads a clock for this.
  uint64_t ts_interval_us = 1'000'000;
  /// Points retained per time series (the ring size).
  size_t ts_retention = 240;
  /// Distinct-series bound of the store (cardinality guard).
  size_t ts_max_series = 512;
  /// Per-tenant (synopsis-name) metric dimension: the first tenant_max
  /// distinct names get their own requests/shed/hit counters and
  /// latency histogram ("tenant.requests{tenant=NAME}", ...); later
  /// names share one "__other__" overflow slot, so hostile name
  /// cardinality cannot grow the registry. 0 disables the dimension.
  size_t tenant_max = 32;
  /// Declarative SLOs evaluated by ObsTick over the time-series (see
  /// obs/slo.h and DefaultSloSpecs below); empty = no SLO engine.
  std::vector<obs::SloSpec> slos;
  /// Byte budget of the black-box flight recorder (obs/flight.h);
  /// 0 disables it.
  size_t flight_bytes = 64 * 1024;
  /// Tail-based trace retention: requests whose completion outcome
  /// classifies as shed / deadline / error / pruned / degraded / slow
  /// are recorded in the trace ring's tail buffer regardless of the
  /// head sample (trace_sample). Each retained record bumps
  /// "service.trace.tail{class=...}", so retention is auditable by
  /// conservation: traces().tail_recorded() == the sum over classes.
  bool tail_retention = true;

  /// `threads` with the 0 = hardware default resolved, clamped to >= 1
  /// (hardware_concurrency() may legitimately report 0).
  size_t ResolvedThreads() const {
    return threads == 0 ? ThreadPool::DefaultThreads()
                        : (threads < 1 ? 1 : threads);
  }
};

/// One estimation request against a registered synopsis.
struct QueryRequest {
  std::string synopsis;  ///< registry name
  std::string xpath;     ///< XPath expression (whitespace tolerated)
  /// Per-request deadline; infinite by default. A request arriving
  /// already expired is rejected in O(1) — no snapshot, parse, or join.
  Deadline deadline;
  /// Permit degraded answers: when order statistics are missing or the
  /// deadline cannot fit the full computation, serve the order-free
  /// estimate (tagged degraded) instead of failing. When false, such
  /// requests fail with kUnavailable / kDeadlineExceeded.
  bool allow_degraded = true;
};

/// A request's result plus its serving metadata. Convenience accessors
/// make it drop-in for call sites that treated the old Result<double>
/// return as a value-or-status.
struct EstimateOutcome {
  Result<double> estimate{0.0};
  /// The estimate ignored the query's order constraints (missing or
  /// quarantined order statistics, or a deadline-forced fallback).
  bool degraded = false;
  /// Shed by admission control before any work ran (status is
  /// kOverloaded; retry_after_ms carries the hint).
  bool shed = false;
  /// Answered 0 by the static analyzer's satisfiability proof — no path
  /// join or formula ran. The number (exactly 0.0) is what the full
  /// pipeline would have produced; prune verdicts are epoch-keyed, so a
  /// synopsis swap re-validates them.
  bool pruned = false;
  /// Suggested client wait before retrying a shed request.
  uint32_t retry_after_ms = 0;

  bool ok() const { return estimate.ok(); }
  double value() const { return estimate.value(); }
  Status status() const { return estimate.status(); }
};

/// The standard SLO set the server's --slo-* flags configure:
/// availability = 1 - (shed + deadline) / requests against
/// `availability_objective` (skipped when <= 0), request p99 latency
/// against `p99_objective_ns` (skipped when 0), and the worst
/// shadow-sampled q-error EWMA against `qerror_objective` (skipped when
/// <= 0). Threshold-style specs use burn thresholds of 1.0 ("at the
/// objective"); availability keeps obs::SloSpec's fast/slow-page split.
std::vector<obs::SloSpec> DefaultSloSpecs(double availability_objective,
                                          uint64_t p99_objective_ns,
                                          double qerror_objective);

/// Bounded per-tenant (synopsis-name) metric slots (DESIGN.md §16). The
/// first `max` distinct tenant names each get their own counter rows
/// and latency histogram in the service registry; every later name
/// shares one "__other__" overflow slot, so per-tenant observability
/// has a hard cardinality ceiling no traffic mix can exceed.
///
/// The counts themselves live in single-writer lanes, not registry
/// counters: each tenant owns a few cache-line cells, a thread claims
/// one on first contact, and from then on its increments are plain
/// relaxed load/store pairs on an L1-resident line — no lock-prefixed
/// RMW on the request path (the difference is about half the obs
/// layer's per-request cost, see bench "service_obs2"). The registry's
/// tenant.* rows are derived counters that sum the lanes at read time,
/// so every read surface (CounterValue, Rows, statsz, the time-series
/// scrape) sees exact totals. Threads past the lane count fall back to
/// a shared fetch_add lane; nothing is ever lost.
class TenantTable {
 public:
  /// One cache line of per-tenant counts with at most one writing
  /// thread (`owner`, claimed by CAS, held for the table's lifetime).
  /// Single-writer is what makes store(load+1) exact.
  struct alignas(64) Lane {
    std::atomic<uint32_t> owner{0};  ///< claiming thread id; 0 = free
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> plan_hits{0};
    std::atomic<uint64_t> memo_hits{0};
  };
  static constexpr size_t kLanes = 4;

  struct Slots {
    Lane lanes[kLanes];
    /// Overflow for threads that found every lane owned; multi-writer,
    /// so increments here use fetch_add (owner is unused).
    Lane shared;
    obs::Histogram* request_ns = nullptr;  ///< tenant.request_ns{tenant=X}
    /// The tenant name's flight-recorder intern id (kOverflowId when no
    /// recorder was passed to Get).
    uint32_t flight_id = obs::FlightRecorder::kOverflowId;

    /// Exact total for one count across the shared + owned lanes.
    uint64_t Sum(std::atomic<uint64_t> Lane::*field) const {
      uint64_t total = (shared.*field).load(std::memory_order_relaxed);
      for (const Lane& l : lanes) {
        total += (l.*field).load(std::memory_order_relaxed);
      }
      return total;
    }
  };

  /// A thread's view of one tenant: the slots plus the lane this thread
  /// owns (nullptr when it lost the lane race and writes through the
  /// shared fallback). Returned by Get and memoized per thread.
  struct Handle {
    Slots* slots = nullptr;
    Lane* lane = nullptr;

    explicit operator bool() const { return slots != nullptr; }

    /// Bumps one count, e.g. h.Inc(&TenantTable::Lane::requests).
    void Inc(std::atomic<uint64_t> Lane::*field) const {
      if (lane != nullptr) {
        std::atomic<uint64_t>& cell = lane->*field;
        cell.store(cell.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
      } else {
        (slots->shared.*field).fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  /// `registry` must outlive the table — and reads of the registry's
  /// tenant.* rows must not outlive the table, since the derived rows
  /// registered here read lane cells the table owns.
  /// `max` == 0 disables the dimension: Get always returns a null
  /// handle.
  TenantTable(obs::Registry* registry, size_t max);

  TenantTable(const TenantTable&) = delete;
  TenantTable& operator=(const TenantTable&) = delete;

  /// The handle for `tenant`, created on first sight (the shared
  /// overflow slot once `max` names exist). `flight` may be null; when
  /// set, the tenant name is interned once and cached. Slots pointers
  /// are stable for the table's lifetime. Always null under
  /// XEE_OBS_OFF — the per-tenant dimension compiles out with the rest
  /// of the metrics layer.
  ///
  /// Warm-path cost: a per-thread memo of the last (tenant, handle)
  /// pair answers the common same-tenant-again case with one string
  /// compare — no lock, no hash, and the lane claim already resolved.
  /// Only a memo miss takes the shared lock and the map probe.
  Handle Get(const std::string& tenant, obs::FlightRecorder* flight);

  /// Distinct tenant slots created (excluding the overflow slot).
  size_t size() const;

 private:
  Slots* MakeSlots(const std::string& label_name,
                   obs::FlightRecorder* flight);

  obs::Registry* registry_;
  const size_t max_;
  /// Distinguishes this table from any other (including one later
  /// constructed at the same address) in the thread-local lookup memo —
  /// see Get.
  const uint64_t gen_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Slots>>
      slots_;                        // guarded by mu_
  std::unique_ptr<Slots> overflow_;  // guarded by mu_
};

/// The serving layer over the paper's estimator: a synopsis registry
/// (named, swappable datasets), a compiled-plan cache keyed by
/// canonicalized queries, a worker pool for batch fan-out, admission
/// control with deadline enforcement, and a stats surface. Built for
/// the optimizer hot loop — the estimate for a warm query costs one
/// cache lookup instead of a parse + path join — and for staying up
/// when inputs, load, or time budgets turn hostile (DESIGN.md §9).
///
/// Thread-safety: every method may be called concurrently from any
/// thread, including registry mutations under in-flight queries (each
/// query pins its synopsis version via a refcounted snapshot). Batch
/// results are bit-identical to issuing the same calls sequentially,
/// admission permitting.
class EstimationService {
 public:
  explicit EstimationService(ServiceOptions options = {});
  ~EstimationService();

  /// Named synopses: register/swap/remove datasets here.
  SynopsisRegistry& registry() { return registry_; }
  const SynopsisRegistry& registry() const { return registry_; }

  /// Single-call fast path: runs on the caller's thread (no pool
  /// round-trip). kNotFound for an unregistered synopsis name,
  /// kUnavailable for a quarantined one, kOverloaded when admission
  /// control sheds, kDeadlineExceeded for a blown deadline.
  EstimateOutcome Estimate(const QueryRequest& request);
  EstimateOutcome Estimate(const std::string& synopsis,
                           const std::string& xpath) {
    return Estimate(QueryRequest{synopsis, xpath});
  }

  /// Fans `requests` out over the worker pool and blocks until every
  /// result is in. results[i] corresponds to requests[i]. Admission is
  /// decided up front for the whole batch: members beyond the in-flight
  /// budget are shed (kOverloaded, escalating retry hints) without
  /// blocking the admitted ones.
  std::vector<EstimateOutcome> EstimateBatch(
      std::span<const QueryRequest> requests);

  /// Cache outcome counters, occupancy, and per-stage latency.
  ServiceStatsSnapshot Stats() const {
    return stats_.Snap(cache_.stats(), memo_.stats());
  }

  /// This service's metrics registry (every ServiceStats counter lives
  /// here). Process-wide subsystems (estimator, thread pool, faults)
  /// report to obs::Registry::Global() instead.
  obs::Registry& obs() { return obs_; }
  const obs::Registry& obs() const { return obs_; }

  /// Recent and slow per-request traces (see ServiceOptions::
  /// trace_capacity / trace_sample / slow_trace_ns).
  obs::TraceRing& traces() { return traces_; }
  const obs::TraceRing& traces() const { return traces_; }

  /// Shadow-sampled accuracy state (see ServiceOptions::accuracy_*).
  obs::AccuracyTracker& accuracy() { return accuracy_; }
  const obs::AccuracyTracker& accuracy() const { return accuracy_; }

  /// The STATSZ payload: refreshes the plan-cache occupancy gauges and
  /// renders this service's registry as JSON (with an "accuracy"
  /// section spliced in).
  std::string StatszJson();

  /// The ACCZ payload: the accuracy tracker's JSON alone.
  std::string AccuracyJson() const { return accuracy_.ToJson(); }

  /// Driver-clocked observability tick (DESIGN.md §16): diffs synopsis
  /// epochs and rebuild states into the flight recorder, refreshes the
  /// worst-q-error gauge, takes a time-series sample when `now_us` has
  /// advanced past the scrape interval, and — when a sample was taken —
  /// re-evaluates the SLO burn-rate alerts. The server calls this from
  /// a wall-clock scrape thread; the traffic simulator feeds virtual
  /// microseconds, which makes whole alert trajectories replayable
  /// bit-for-bit. Thread-safe; concurrent ticks serialize.
  void ObsTick(uint64_t now_us);

  /// The .tsz payload: the time-series store's JSON (disabled stub when
  /// ts_interval_us == 0).
  std::string TszJson() const;
  /// The .alertz payload: the SLO engine's JSON (disabled stub when no
  /// SLOs are configured).
  std::string AlertzJson() const;
  /// The .flightz payload: the flight recorder's JSON (disabled stub
  /// when flight_bytes == 0).
  std::string FlightzJson() const;

  /// Null when the corresponding option disabled the subsystem.
  obs::TimeSeriesStore* timeseries() { return timeseries_.get(); }
  const obs::TimeSeriesStore* timeseries() const { return timeseries_.get(); }
  obs::SloEngine* slo() { return slo_.get(); }
  const obs::SloEngine* slo() const { return slo_.get(); }
  obs::FlightRecorder* flight() { return flight_.get(); }
  const obs::FlightRecorder* flight() const { return flight_.get(); }

  /// The per-tenant slot table (see ServiceOptions::tenant_max).
  TenantTable& tenants() { return tenants_; }

  /// The healthz payload, built from the registry (meaningful even
  /// under XEE_OBS_OFF, where health simply stays "unknown"):
  ///   {"status":"ok"|"stale","synopses":{name:{...}},"quarantined":[...]}
  std::string HealthzJson() const;

  /// Blocks until no shadow evaluations are pending (polling), or
  /// `timeout_ms` elapsed; returns whether the backlog reached zero.
  /// Tests and benches use this to observe a quiesced accuracy state.
  bool DrainShadow(uint64_t timeout_ms = 10'000) const;

  void ClearPlanCache() {
    cache_.Clear();
    memo_.Clear();
  }

  size_t threads() const { return pool_.size(); }

  /// Virtual-load hooks for the traffic simulator (src/sim/): occupy /
  /// release one admission slot without running a request, so an
  /// open-loop driver can make the service see N requests in flight in
  /// *virtual* time while issuing real calls one at a time on a single
  /// thread. Hold fails (false) when the in-flight budget is exhausted;
  /// for an unbounded service (max_inflight == 0) it always "succeeds"
  /// and both calls are no-ops, matching Estimate's own admission.
  /// Callers must balance every successful Hold with exactly one
  /// Release.
  bool HoldInflightSlot() { return TryAdmit(1) == 1; }
  void ReleaseInflightSlot() { Release(1); }

  /// Registers `doc` as a *live* document: the service owns it, builds
  /// and publishes its synopsis, and keeps the published snapshot
  /// current under ApplyDelta / background rebuilds. Returns the first
  /// epoch.
  uint64_t RegisterLive(const std::string& name, xml::Document doc,
                        const estimator::SynopsisOptions& build = {});

  /// Applies a delta batch to a live synopsis: patches incrementally,
  /// publishes a new epoch (plan-cache and memo entries for the old
  /// epoch die with it), and — when the patch-error budget is blown —
  /// marks the snapshot stale and (under auto_rebuild) schedules a
  /// rebuild. In-flight estimates are never blocked: they hold
  /// refcounted snapshots.
  Result<ApplyOutcome> ApplyDelta(const std::string& name,
                                  const delta::DocumentDelta& delta);

  /// Schedules a background rebuild of a live synopsis (reason label:
  /// "manual" from operators, "drift"/"budget" from self-healing).
  /// False for names not registered live.
  bool ScheduleRebuild(const std::string& name,
                       const std::string& reason = "manual") {
    return maint_->ScheduleRebuild(name, reason);
  }

  /// Blocks until no rebuild is in flight (or timeout); true = drained.
  bool DrainMaintenance(uint64_t timeout_ms = 10'000) {
    return maint_->DrainMaintenance(timeout_ms);
  }

  /// Maintenance state of every live synopsis (the healthz
  /// "maintenance" section).
  const MaintenanceManager& maintenance() const { return *maint_; }

 private:
  /// Namespaced cache key: kind ('x' exact string / 'c' canonical /
  /// 'd' degraded order-free), synopsis epoch, and the query body.
  static std::string MakeKey(char kind, uint64_t epoch,
                             const std::string& body);

  /// Reserves up to `want` in-flight slots; returns how many were
  /// granted (possibly 0). Never blocks.
  size_t TryAdmit(size_t want);
  void Release(size_t slots);

  /// An outcome for a shed request, with the shed counters (aggregate,
  /// by-reason attribution, retry-hint histogram, per-tenant), the
  /// flight-recorder shed event, and the tail-retained shed trace
  /// bumped as side effects. `depth` escalates the retry hint when
  /// several requests shed at once; `batch` attributes the shed to
  /// EstimateBatch tail refusal rather than single-call admission.
  EstimateOutcome ShedOutcome(const QueryRequest& req, size_t depth,
                              bool batch);

  /// The estimation ladder, run after admission.
  EstimateOutcome EstimateAdmitted(const QueryRequest& request);

  /// The once-per-request sampling decision (ServiceOptions::
  /// trace_sample): true when this request should be timed end to end.
  /// Always false in an XEE_OBS_OFF build.
  bool ShouldTime();

  /// Pushes a completed request into the trace ring: head-sampled
  /// routine records (tail_class == nullptr) into the recent ring,
  /// tail-classified records into the tail ring, bumping the matching
  /// "service.trace.tail{class=...}" counter so retention conserves.
  void RecordTrace(const QueryRequest& request, const char* outcome,
                   const EstimateOutcome& out, const obs::TraceSpans& spans,
                   uint64_t total_ns, const char* tail_class);

  /// FaultInjector::FireObserver thunk: logs fired fault sites into the
  /// flight recorder (`ctx` is the EstimationService that installed it).
  static void FlightFaultObserver(void* ctx, std::string_view site,
                                  uint64_t schedule_now);

  /// Samples `out` for shadow evaluation and, when sampled and
  /// admitted, submits the shadow task to the pool. Called after the
  /// caller-visible answer is fully formed; never blocks.
  void MaybeShadow(const QueryRequest& request, const EstimateOutcome& out,
                   std::shared_ptr<const GroundTruth> truth, uint64_t epoch);

  /// The shadow task body (pool thread): re-parse, exact-count against
  /// `truth`, record the error, feed the drift verdict back into the
  /// registry's health state.
  void ShadowEvaluate(const std::string& synopsis, const std::string& xpath,
                      const Deadline& deadline,
                      const std::shared_ptr<const GroundTruth>& truth,
                      uint64_t epoch, double estimate);

  ServiceOptions options_;
  SynopsisRegistry registry_;
  PlanCache cache_;
  EstimateMemo memo_;
  obs::Registry obs_;  // must precede stats_/accuracy_ (handle resolution)
  ServiceStats stats_;
  obs::TraceRing traces_;
  obs::AccuracyTracker accuracy_;
  /// Flight-data members, in dependency order: the tenant table caches
  /// flight intern ids, the time-series store scrapes obs_, the SLO
  /// engine reads the time-series (reverse destruction unwinds safely).
  std::unique_ptr<obs::FlightRecorder> flight_;
  TenantTable tenants_;
  std::unique_ptr<obs::TimeSeriesStore> timeseries_;
  std::unique_ptr<obs::SloEngine> slo_;
  /// ObsTick's scrape-time diffing state: last seen epoch / rebuild
  /// state per synopsis (guarded by tick_mu_, which also serializes
  /// concurrent ticks).
  std::mutex tick_mu_;
  std::map<std::string, uint64_t> tick_epochs_;
  std::map<std::string, MaintenanceState> tick_states_;
  std::atomic<size_t> inflight_{0};
  std::atomic<uint64_t> trace_tick_{0};  // sampling counter
  /// Set by the destructor body before member destruction starts: the
  /// pool's drain may still run shadow tasks that schedule rebuilds,
  /// and those must run inline rather than Submit to a pool that has
  /// begun shutting down.
  std::atomic<bool> draining_{false};
  /// Constructed in the constructor body (its executor captures pool_)
  /// but declared before pool_ on purpose: queued rebuild tasks touch
  /// the manager, so the pool's destructor must drain before the
  /// manager dies.
  std::unique_ptr<MaintenanceManager> maint_;
  /// Declared last on purpose: the pool's destructor drains queued
  /// shadow and rebuild tasks, which touch accuracy_, registry_, obs_
  /// and maint_ — those must still be alive while the drain runs.
  ThreadPool pool_;
};

/// Classifies a canonicalized query into its accuracy label dimensions
/// (obs::QueryClass): order vs '//' vs child-only axis mix, chain vs
/// branch shape, predicate presence, node-count depth. Exposed so tests
/// can compute the class a query's shadow samples land under.
obs::QueryClass ClassifyQuery(const xpath::Query& canonical);

}  // namespace xee::service

#endif  // XEE_SERVICE_SERVICE_H_
