#include "service/maintenance.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/fault.h"

namespace xee::service {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t NsSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

void SleepMs(uint64_t ms) {
  if (ms == 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

const char* MaintenanceStateName(MaintenanceState s) {
  switch (s) {
    case MaintenanceState::kHealthy:
      return "healthy";
    case MaintenanceState::kPatched:
      return "patched";
    case MaintenanceState::kStale:
      return "stale";
    case MaintenanceState::kRebuilding:
      return "rebuilding";
  }
  return "unknown";
}

MaintenanceManager::MaintenanceManager(
    SynopsisRegistry* registry, obs::Registry* obs, Options options,
    std::function<void(std::function<void()>)> executor)
    : registry_(registry),
      obs_(obs),
      options_(options),
      executor_(std::move(executor)) {
  XEE_CHECK(registry_ != nullptr && obs_ != nullptr);
}

uint64_t MaintenanceManager::RegisterLive(
    const std::string& name, xml::Document doc,
    const estimator::SynopsisOptions& build) {
  if (!doc.finalized()) doc.Finalize();
  auto entry = std::make_unique<Entry>();
  entry->live = std::make_unique<delta::LiveDocument>(std::move(doc));
  entry->build = build;
  // The fresh document is pristine, so building straight off the live
  // tree is safe — the never-label-the-live-tree rule starts mattering
  // at the first mutation.
  auto synopsis = std::make_shared<const estimator::Synopsis>(
      estimator::Synopsis::Build(entry->live->doc(), build));
  delta::PatchOptions patch;
  patch.error_budget = options_.error_budget;
  patch.histo_patch_tolerance = options_.histo_patch_tolerance;
  patch.build = build;
  entry->synopsis = std::make_unique<delta::LiveSynopsis>(
      synopsis, entry->live.get(), patch);
  const uint64_t epoch = Publish(name, entry.get(), std::move(synopsis));
  std::lock_guard<std::mutex> lock(mu_);
  entries_[name] = std::move(entry);
  return epoch;
}

bool MaintenanceManager::Managed(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.find(name) != entries_.end();
}

MaintenanceManager::Entry* MaintenanceManager::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.get();
}

uint64_t MaintenanceManager::Publish(
    const std::string& name, Entry* entry,
    std::shared_ptr<const estimator::Synopsis> synopsis) {
  std::shared_ptr<const xml::Document> truth;
  if (options_.attach_truth) {
    truth = std::make_shared<const xml::Document>(entry->live->Materialize());
  }
  entry->epoch = registry_->Register(name, std::move(synopsis),
                                     std::move(truth));
  return entry->epoch;
}

Result<ApplyOutcome> MaintenanceManager::ApplyDelta(
    const std::string& name, const delta::DocumentDelta& delta) {
  Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status(StatusCode::kNotFound, "no live document: " + name);
  }
  const Clock::time_point t0 = Clock::now();
  std::lock_guard<std::mutex> lock(entry->mu);
  Result<delta::ApplyResult> applied = entry->synopsis->Apply(delta);
  if (!applied.ok()) {
    ++entry->deltas_rejected;
    obs_->GetCounter("service.delta.rejected").Inc();
    return applied.status();
  }
  ApplyOutcome out;
  out.apply = std::move(applied).value();
  out.epoch = Publish(name, entry, out.apply.synopsis);
  out.budget_exhausted = out.apply.budget_exhausted;
  ++entry->deltas_applied;
  if (out.budget_exhausted) {
    // The budget no longer covers the accumulated patch error: the
    // freshly published snapshot starts life convicted, skipping the
    // shadow-sampling trial its drift would eventually lose.
    entry->state = MaintenanceState::kStale;
    registry_->MarkHealth(name, out.epoch, SynopsisHealth::kStale);
  } else if (entry->state == MaintenanceState::kHealthy) {
    entry->state = MaintenanceState::kPatched;
  }
  obs_->GetCounter("service.delta.applied").Inc();
  obs_->GetCounter("service.delta.ops").Add(out.apply.ops_applied);
  obs_->GetCounter("service.delta.nodes_inserted")
      .Add(out.apply.nodes_inserted);
  obs_->GetCounter("service.delta.nodes_deleted")
      .Add(out.apply.nodes_deleted);
  obs_->GetCounter("service.delta.histos_patched")
      .Add(out.apply.histos_patched);
  obs_->GetCounter("service.delta.histos_rebuilt")
      .Add(out.apply.histos_rebuilt);
  obs_->GetHistogram("service.delta.apply_ns").Record(NsSince(t0));
  return out;
}

Result<delta::DeltaOp> MaintenanceManager::CloneOp(const std::string& name,
                                                   uint32_t rank) const {
  Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status(StatusCode::kNotFound, "no live document: " + name);
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (rank == 0 || rank >= entry->live->live_nodes()) {
    return Status(StatusCode::kInvalidArgument,
                  "clone rank out of range (and never 0: the root has "
                  "no parent to clone under)");
  }
  const std::vector<xml::NodeId> by_rank = entry->live->PreorderNodes();
  const xml::NodeId node = by_rank[rank];
  const xml::NodeId parent = entry->live->doc().Parent(node);
  uint32_t parent_rank = 0;
  for (size_t i = 0; i < by_rank.size(); ++i) {
    if (by_rank[i] == parent) {
      parent_rank = static_cast<uint32_t>(i);
      break;
    }
  }
  delta::DeltaOp op;
  op.kind = delta::DeltaOp::Kind::kInsert;
  op.target = parent_rank;
  op.subtree = delta::SpecFromSubtree(*entry->live, node);
  return op;
}

size_t MaintenanceManager::LiveNodeCount(const std::string& name) const {
  Entry* entry = Find(name);
  if (entry == nullptr) return 0;
  std::lock_guard<std::mutex> lock(entry->mu);
  return entry->live->live_nodes();
}

bool MaintenanceManager::ScheduleRebuild(const std::string& name,
                                         const std::string& reason) {
  Entry* entry = Find(name);
  if (entry == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->rebuild_inflight) {
      ++entry->coalesced;
      obs_->GetCounter("service.rebuild.coalesced").Inc();
      return true;
    }
    entry->rebuild_inflight = true;
    entry->state = MaintenanceState::kRebuilding;
    ++entry->scheduled;
  }
  obs_->GetCounter("service.rebuild.scheduled", reason).Inc();
  if (executor_) {
    executor_([this, name]() { RebuildTask(name); });
  } else {
    RebuildTask(name);
  }
  return true;
}

void MaintenanceManager::RebuildTask(std::string name) {
  Entry* entry = Find(name);
  if (entry == nullptr) return;  // replaced while queued
  const Clock::time_point t0 = Clock::now();
  Backoff backoff(options_.backoff, options_.backoff_seed);
  size_t retries = 0;
  size_t restarts = 0;
  const auto abandon = [&]() {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->rebuild_inflight = false;
    // Whatever drove the schedule (drift verdict, blown budget) is
    // still true of the serving snapshot.
    entry->state = MaintenanceState::kStale;
    ++entry->abandoned;
    obs_->GetCounter("service.rebuild.abandoned").Inc();
  };
  while (true) {
    // Snapshot the source under the lock; build outside it, so
    // estimates and further deltas proceed during the rebuild.
    uint64_t source_seq = 0;
    xml::Document source;
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      source_seq = entry->live->seq();
      source = entry->live->Materialize();
    }
    uint64_t slow_ms = 0;
    if (FaultFires(kSlowFaultSite, &slow_ms)) SleepMs(slow_ms);
    estimator::SynopsisOptions build;
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      build = entry->build;
    }
    auto rebuilt = std::make_shared<const estimator::Synopsis>(
        estimator::Synopsis::Build(source, build));
    if (FaultFires(kAllocFaultSite)) {
      if (retries >= options_.max_retries) return abandon();
      ++retries;
      {
        std::lock_guard<std::mutex> lock(entry->mu);
        ++entry->retried;
      }
      obs_->GetCounter("service.rebuild.retried").Inc();
      SleepMs(backoff.NextDelayMs());
      continue;
    }
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->live->seq() != source_seq) {
      // The document moved while we were building: this synopsis
      // describes a shape no longer live. Restart from the new shape.
      if (restarts >= options_.max_restarts) {
        entry->rebuild_inflight = false;
        entry->state = MaintenanceState::kStale;
        ++entry->abandoned;
        obs_->GetCounter("service.rebuild.abandoned").Inc();
        return;
      }
      ++restarts;
      ++entry->restarted;
      obs_->GetCounter("service.rebuild.restarted").Inc();
      continue;
    }
    // Publish: swap the registry snapshot (epoch bump retires the old
    // version's plan-cache and memo namespaces), compact the live
    // arena to the shape we just built, and re-base the incremental
    // state with a fresh error budget.
    Publish(name, entry, rebuilt);
    entry->live->Compact(std::move(source));
    entry->synopsis->ResetToBase(std::move(rebuilt));
    entry->state = MaintenanceState::kHealthy;
    entry->rebuild_inflight = false;
    ++entry->completed;
    obs_->GetCounter("service.rebuild.completed").Inc();
    obs_->GetHistogram("service.rebuild.duration_ns").Record(NsSince(t0));
    return;
  }
}

bool MaintenanceManager::DrainMaintenance(uint64_t timeout_ms) {
  const auto give_up = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    bool inflight = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [name, entry] : entries_) {
        std::lock_guard<std::mutex> el(entry->mu);
        if (entry->rebuild_inflight) inflight = true;
      }
    }
    if (!inflight) return true;
    if (Clock::now() >= give_up) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

std::vector<MaintenanceRow> MaintenanceManager::Rows() const {
  std::vector<MaintenanceRow> rows;
  std::lock_guard<std::mutex> lock(mu_);
  rows.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    std::lock_guard<std::mutex> el(entry->mu);
    MaintenanceRow row;
    row.name = name;
    row.state = entry->state;
    row.epoch = entry->epoch;
    row.patch_error = entry->synopsis->patch_error();
    row.budget_exhausted = entry->synopsis->budget_exhausted();
    row.deltas_applied = entry->deltas_applied;
    row.deltas_rejected = entry->deltas_rejected;
    row.rebuilds_scheduled = entry->scheduled;
    row.rebuilds_completed = entry->completed;
    row.rebuilds_retried = entry->retried;
    row.rebuilds_restarted = entry->restarted;
    row.rebuilds_abandoned = entry->abandoned;
    row.rebuilds_coalesced = entry->coalesced;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace xee::service
