#ifndef XEE_SERVICE_MAINTENANCE_H_
#define XEE_SERVICE_MAINTENANCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/status.h"
#include "delta/document_delta.h"
#include "delta/live_synopsis.h"
#include "obs/metrics.h"
#include "service/synopsis_registry.h"

namespace xee::service {

/// The maintenance state machine of one live synopsis (DESIGN.md §14).
/// healthy -> patched on the first applied delta; patched -> stale when
/// the patch-error budget is exhausted (or drift sampling convicts the
/// version); any state -> rebuilding while a background rebuild is in
/// flight; a published rebuild returns to healthy.
enum class MaintenanceState : uint8_t {
  kHealthy = 0,
  kPatched = 1,
  kStale = 2,
  kRebuilding = 3,
};

const char* MaintenanceStateName(MaintenanceState s);

/// One row of MaintenanceManager::Rows() — the healthz view.
struct MaintenanceRow {
  std::string name;
  MaintenanceState state = MaintenanceState::kHealthy;
  uint64_t epoch = 0;
  double patch_error = 0;
  bool budget_exhausted = false;
  uint64_t deltas_applied = 0;
  uint64_t deltas_rejected = 0;
  uint64_t rebuilds_scheduled = 0;
  uint64_t rebuilds_completed = 0;
  uint64_t rebuilds_retried = 0;
  uint64_t rebuilds_restarted = 0;
  uint64_t rebuilds_abandoned = 0;
  uint64_t rebuilds_coalesced = 0;
};

/// What one ApplyDelta call did, plus where it left the version.
struct ApplyOutcome {
  delta::ApplyResult apply;
  /// Epoch of the patched snapshot published by this batch.
  uint64_t epoch = 0;
  /// The patch-error budget is exhausted: the snapshot was marked
  /// stale, and the caller should schedule a rebuild (or have
  /// auto-rebuild do it).
  bool budget_exhausted = false;
};

/// Owns the live documents behind registered synopses and keeps their
/// published snapshots current under mutation: each applied delta
/// patches the synopsis incrementally and publishes a new epoch through
/// the registry swap (estimates never block on maintenance — they hold
/// refcounted snapshots), and a background rebuild pipeline restores
/// exactness when patching has drifted too far.
///
/// Rebuilds run on the caller-supplied executor (the service's worker
/// pool), materialize a pristine copy of the live tree, build from
/// scratch, and publish — unless the document moved underneath them, in
/// which case they restart from the new shape (bounded), or the armed
/// `rebuild.alloc` fault fails the attempt, in which case they retry on
/// a jittered backoff schedule while the patched synopsis keeps
/// serving. A rebuild that exhausts its retries is abandoned: the
/// stale-marked snapshot keeps serving and the next schedule tries
/// again.
///
/// Thread-safety: all public methods may be called from any thread.
/// Per-name state is mutex-guarded; the registry publish is the
/// linearization point readers observe.
class MaintenanceManager {
 public:
  /// Fault site: fails a rebuild attempt after the build ran, modeling
  /// allocation failure in the publish path. The attempt is retried
  /// with backoff; the serving snapshot is untouched.
  static constexpr const char* kAllocFaultSite = "rebuild.alloc";
  /// Fault site: stalls a rebuild attempt for `payload` milliseconds
  /// before the build, widening the window in which estimates must keep
  /// serving from the patched snapshot.
  static constexpr const char* kSlowFaultSite = "rebuild.slow";

  struct Options {
    /// Patch-error budget and histogram fold tolerance for every
    /// registered live synopsis (LiveSynopsis::PatchOptions fields; the
    /// build options come from RegisterLive).
    double error_budget = 0.05;
    double histo_patch_tolerance = 0.0;
    /// Attach a materialized ground-truth document to every published
    /// snapshot, keeping the PR 5 shadow pipeline auditing the patched
    /// estimates. Costs one document copy per publish.
    bool attach_truth = true;
    /// Rebuild attempts beyond the first before the rebuild is
    /// abandoned.
    size_t max_retries = 3;
    /// Publish-time restarts (document moved during the build) before
    /// the rebuild is abandoned.
    size_t max_restarts = 3;
    BackoffPolicy backoff{/*initial_ms=*/1, /*max_ms=*/50};
    uint64_t backoff_seed = 7;
  };

  /// `registry` and `obs` must outlive the manager. `executor` runs
  /// rebuild tasks; pass {} to run them inline on the scheduling
  /// thread (tests, single-threaded services).
  MaintenanceManager(SynopsisRegistry* registry, obs::Registry* obs,
                     Options options,
                     std::function<void(std::function<void()>)> executor);

  /// Takes ownership of `doc` as the live document behind `name`,
  /// builds its synopsis, and publishes the first snapshot. Returns the
  /// published epoch. Re-registering a name replaces its live state.
  uint64_t RegisterLive(const std::string& name, xml::Document doc,
                        const estimator::SynopsisOptions& build = {});

  bool Managed(const std::string& name) const;

  /// Applies one delta batch to `name`: mutates the live document,
  /// patches the synopsis, publishes the patched clone under a new
  /// epoch (invalidating plan-cache/memo entries for free via the
  /// epoch-keyed namespaces), and marks the snapshot stale when the
  /// patch-error budget is exhausted. A rejected batch (invalid target,
  /// corrupt-fault) changes nothing and fails with kInvalidArgument;
  /// an unknown name fails with kNotFound.
  Result<ApplyOutcome> ApplyDelta(const std::string& name,
                                  const delta::DocumentDelta& delta);

  /// Builds the insert op that clones the subtree at live preorder rank
  /// `rank` under that subtree's own parent — the canonical exactly-
  /// patchable mutation (every path and pid combination the clone
  /// introduces already occurs earlier in document order). Fails for
  /// rank 0 (the root cannot be cloned into itself) or an out-of-range
  /// rank. Delta generators in the CLI, simulator and benches build
  /// their patch-friendly traffic from this.
  Result<delta::DeltaOp> CloneOp(const std::string& name,
                                 uint32_t rank) const;

  /// Live node count of `name` (0 when unmanaged); generators pick
  /// target ranks below it.
  size_t LiveNodeCount(const std::string& name) const;

  /// Schedules a background rebuild of `name` (reason is an obs label:
  /// "drift", "budget", "manual"). Returns false for unmanaged names.
  /// A schedule while a rebuild is already in flight coalesces into it.
  bool ScheduleRebuild(const std::string& name, const std::string& reason);

  /// Blocks until no rebuild is in flight or `timeout_ms` elapses;
  /// true when drained. Abandoned rebuilds count as drained.
  bool DrainMaintenance(uint64_t timeout_ms);

  /// Point-in-time maintenance state of every managed name, sorted by
  /// name (healthz).
  std::vector<MaintenanceRow> Rows() const;

 private:
  struct Entry {
    mutable std::mutex mu;
    std::unique_ptr<delta::LiveDocument> live;        // guarded by mu
    std::unique_ptr<delta::LiveSynopsis> synopsis;    // guarded by mu
    estimator::SynopsisOptions build;                 // guarded by mu
    MaintenanceState state = MaintenanceState::kHealthy;  // guarded by mu
    uint64_t epoch = 0;                               // guarded by mu
    bool rebuild_inflight = false;                    // guarded by mu
    uint64_t deltas_applied = 0;                      // guarded by mu
    uint64_t deltas_rejected = 0;                     // guarded by mu
    uint64_t scheduled = 0;                           // guarded by mu
    uint64_t completed = 0;                           // guarded by mu
    uint64_t retried = 0;                             // guarded by mu
    uint64_t restarted = 0;                           // guarded by mu
    uint64_t abandoned = 0;                           // guarded by mu
    uint64_t coalesced = 0;                           // guarded by mu
  };

  Entry* Find(const std::string& name) const;
  /// Publishes (synopsis, truth) for `entry` under the registry swap
  /// and records the new epoch. Caller holds entry->mu.
  uint64_t Publish(const std::string& name, Entry* entry,
                   std::shared_ptr<const estimator::Synopsis> synopsis);
  void RebuildTask(std::string name);

  SynopsisRegistry* registry_;
  obs::Registry* obs_;
  Options options_;
  std::function<void(std::function<void()>)> executor_;

  mutable std::mutex mu_;  // guards entries_ (the map, not the entries)
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace xee::service

#endif  // XEE_SERVICE_MAINTENANCE_H_
