#ifndef XEE_SERVICE_ESTIMATE_MEMO_H_
#define XEE_SERVICE_ESTIMATE_MEMO_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/sharded_lru.h"
#include "common/status.h"
#include "xpath/canonical.h"

namespace xee::service {

/// The final-estimate memo (DESIGN.md §13): a sharded byte-budgeted LRU
/// from `(canonical plan hash, synopsis epoch)` to the finished estimate.
///
/// This sits one rung below the compiled-plan cache in the serving
/// ladder. A memo entry is ~100 bytes where a cached plan is kilobytes,
/// so under byte pressure (alias storms, small budgets) estimates
/// outlive their plans by orders of magnitude: a warm repeat whose plan
/// was evicted costs parse + canonicalize + one probe here instead of a
/// recompile (path join + formula walk).
///
/// Invalidation is free: the epoch is part of the key, and the registry
/// bumps the epoch on every snapshot swap, so entries of a replaced
/// synopsis can never be returned — they age out of the LRU.
///
/// Keys are 64-bit StableHash64 digests of the kind-tagged canonical
/// body. A hash collision must never surface a wrong estimate (the
/// differential suite pins bitwise equality with the unoptimized
/// estimator), so each entry stores its exact body and a Lookup whose
/// body does not match reports a miss.
class EstimateMemo {
 public:
  struct Entry {
    char kind;         ///< 'c' full fidelity / 'd' degraded order-free
    std::string body;  ///< canonical serialized query (collision guard)
    Result<double> estimate{0.0};
  };

  /// `byte_budget` 0 disables the memo entirely: lookups miss without
  /// touching counters and inserts are dropped.
  EstimateMemo(size_t byte_budget, size_t shards)
      : enabled_(byte_budget > 0), lru_(byte_budget, shards) {}

  bool enabled() const { return enabled_; }

  /// Returns the memoized estimate for (kind, epoch, body), or nullopt.
  std::optional<Result<double>> Lookup(char kind, uint64_t epoch,
                                       const std::string& body) {
    if (!enabled_) return std::nullopt;
    const Key key{BodyHash(kind, body), epoch};
    const std::shared_ptr<const Entry> e = lru_.Get(key);
    if (e == nullptr) return std::nullopt;
    if (e->kind != kind || e->body != body) return std::nullopt;  // collision
    return e->estimate;
  }

  /// Memoizes `estimate` under (kind, epoch, body). Deadline errors are
  /// never a property of the query and must not be passed here.
  void Insert(char kind, uint64_t epoch, const std::string& body,
              Result<double> estimate) {
    if (!enabled_) return;
    const Key key{BodyHash(kind, body), epoch};
    auto entry = std::make_shared<Entry>();
    entry->kind = kind;
    entry->body = body;
    entry->estimate = std::move(estimate);
    const size_t bytes = sizeof(Entry) + entry->body.capacity() +
                         (entry->estimate.ok()
                              ? 0
                              : entry->estimate.status().message().size()) +
                         kEntryOverhead;
    lru_.Put(key, std::move(entry), bytes);
  }

  LruStats stats() const { return lru_.stats(); }
  void Clear() { lru_.Clear(); }

 private:
  /// Per-entry bookkeeping charge (list/map nodes, shared_ptr block).
  static constexpr size_t kEntryOverhead = 96;

  struct Key {
    uint64_t hash;
    uint64_t epoch;
    friend bool operator==(const Key& a, const Key& b) {
      return a.hash == b.hash && a.epoch == b.epoch;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const noexcept {
      return static_cast<size_t>(k.hash ^ (k.epoch * 0x9e3779b97f4a7c15ull));
    }
  };

  static uint64_t BodyHash(char kind, const std::string& body) {
    return xpath::StableHash64(body) ^
           (static_cast<uint64_t>(static_cast<unsigned char>(kind)) *
            0xff51afd7ed558ccdull);
  }

  const bool enabled_;
  ShardedLru<Key, Entry, KeyHash> lru_;
};

}  // namespace xee::service

#endif  // XEE_SERVICE_ESTIMATE_MEMO_H_
