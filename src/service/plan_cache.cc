#include "service/plan_cache.h"

namespace xee::service {

size_t CachedPlan::ApproxBytes() const {
  return sizeof(CachedPlan) + plan.ApproxBytes();
}

}  // namespace xee::service
