#ifndef XEE_SERVICE_PLAN_CACHE_H_
#define XEE_SERVICE_PLAN_CACHE_H_

#include <memory>
#include <string>

#include "common/sharded_lru.h"
#include "common/status.h"
#include "estimator/estimator.h"

namespace xee::service {

/// One compiled, fully evaluated query against one synopsis version:
/// the canonicalized AST with its path-join survivor sets (reusable via
/// Estimator::EstimateCompiled, e.g. to re-derive per-node candidate
/// statistics for an optimizer) plus the memoized estimate — including
/// memoized errors, so a repeatedly submitted unsupported query is
/// rejected from cache instead of recompiled every time.
struct CachedPlan {
  estimator::Estimator::Compiled plan;
  Result<double> estimate;
  /// The estimate was computed with the order constraints dropped
  /// (degradation ladder, DESIGN.md §9). Degraded plans live under 'd'
  /// keys so a full-fidelity request never hits one by accident.
  bool degraded = false;
  /// The static analyzer proved the query unsatisfiable and the plan is
  /// a synthetic zero (DESIGN.md §15): `plan` carries no join, `estimate`
  /// is exactly 0.0. The flag keeps the pruned label on cache hits and
  /// keeps such plans out of the estimate memo (which stores bare
  /// numbers and would lose it).
  bool pruned = false;

  size_t ApproxBytes() const;
};

/// The service's compiled-plan cache: a sharded, byte-budgeted LRU from
/// query keys to shared immutable plans.
///
/// Each plan is stored once under its canonical key — where every
/// spelling of a semantically identical query lands — and aliased under
/// the exact request strings that reached it, so an exact repeat skips
/// even the XPath parse. Alias entries share the plan and are charged
/// only their key, not a second copy of the plan.
///
/// Keys embed the synopsis epoch (see EstimationService::MakeKey), so a
/// swapped synopsis never serves stale plans; old-epoch entries age out
/// of the LRU. Thread-safety: inherited from ShardedLru — fully
/// concurrent.
class PlanCache {
 public:
  explicit PlanCache(size_t byte_budget, size_t shards)
      : lru_(byte_budget, shards) {}

  std::shared_ptr<const CachedPlan> Get(const std::string& key) {
    return lru_.Get(key);
  }

  /// Primary insert under the canonical key: charged the full plan.
  void PutCanonical(const std::string& key,
                    std::shared_ptr<const CachedPlan> plan) {
    const size_t bytes = key.size() + plan->ApproxBytes();
    lru_.Put(key, std::move(plan), bytes);
  }

  /// Alias insert under an exact request string: charged the key plus
  /// bookkeeping only.
  void PutAlias(const std::string& key,
                std::shared_ptr<const CachedPlan> plan) {
    const size_t bytes = key.size() + 64;
    lru_.Put(key, std::move(plan), bytes);
  }

  LruStats stats() const { return lru_.stats(); }
  void Clear() { lru_.Clear(); }

 private:
  ShardedLru<std::string, CachedPlan> lru_;
};

}  // namespace xee::service

#endif  // XEE_SERVICE_PLAN_CACHE_H_
