#ifndef XEE_SERVICE_SYNOPSIS_REGISTRY_H_
#define XEE_SERVICE_SYNOPSIS_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "estimator/synopsis.h"

namespace xee::service {

/// A refcounted view of one registered synopsis at a point in time.
/// Holding a snapshot keeps its synopsis alive while Register/Remove
/// replace it in the registry, so a dataset can be reloaded under
/// queries in flight. `epoch` uniquely identifies the version across
/// the registry's lifetime (cache keys embed it, so swapping a name
/// implicitly invalidates every plan compiled against the old version).
struct SynopsisSnapshot {
  std::shared_ptr<const estimator::Synopsis> synopsis;
  uint64_t epoch = 0;
  /// This version loaded from a blob whose o-histogram section was
  /// corrupt and dropped (RegisterSerialized salvage): order-free
  /// queries are exact as usual, but everything served from it is
  /// degraded and order-axis queries cannot run at full fidelity.
  bool order_quarantined = false;
};

/// What RegisterSerialized did with a blob.
struct LoadOutcome {
  /// Ok when a version was registered (possibly degraded); the
  /// deserialization error when the blob was rejected and the name
  /// quarantined.
  Status status;
  /// New version epoch; 0 when rejected.
  uint64_t epoch = 0;
  /// The version registered without its order statistics.
  bool order_dropped = false;

  bool ok() const { return status.ok(); }
};

/// Thread-safe name -> synopsis map with swap semantics.
///
/// Thread-safety: every method may be called concurrently; the map is
/// guarded by one mutex (operations are O(1) pointer shuffles — the
/// synopses themselves are immutable and shared by reference).
/// RegisterSerialized deserializes outside the lock.
class SynopsisRegistry {
 public:
  /// Registers `synopsis` under `name`, replacing any previous version
  /// and clearing any quarantine on the name. Returns the new epoch.
  uint64_t Register(const std::string& name, estimator::Synopsis synopsis);
  uint64_t Register(const std::string& name,
                    std::shared_ptr<const estimator::Synopsis> synopsis);

  /// Deserializes `blob` and registers the result under `name`. A blob
  /// whose damage is confined to the o-histogram section registers as a
  /// degraded (order-quarantined) version; any other corruption rejects
  /// the blob, removes `name` from serving, and quarantines it — the
  /// serving layer answers kUnavailable until a good version arrives.
  LoadOutcome RegisterSerialized(const std::string& name,
                                 std::string_view blob);

  /// Drops `name` (and any quarantine record); in-flight snapshots stay
  /// valid. False if absent.
  bool Remove(const std::string& name);

  /// The current version of `name`, or nullopt.
  std::optional<SynopsisSnapshot> Snapshot(const std::string& name) const;

  /// The rejection status of a quarantined name, or nullopt when the
  /// name is serving (or simply unknown).
  std::optional<Status> Quarantined(const std::string& name) const;

  /// Registered names, unordered. Quarantined names are not serving and
  /// not listed.
  std::vector<std::string> Names() const;

  /// Fault site (common/fault.h) fired inside RegisterSerialized: when
  /// armed, one bit of the incoming blob is flipped (position chosen by
  /// the fault payload) before deserialization — chaos tests use it to
  /// exercise the quarantine and salvage paths with real bit-rot.
  static constexpr std::string_view kBitrotFaultSite = "registry.bitrot";

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, SynopsisSnapshot> map_;
  std::unordered_map<std::string, Status> quarantine_;
  uint64_t next_epoch_ = 1;  // guarded by mu_
};

}  // namespace xee::service

#endif  // XEE_SERVICE_SYNOPSIS_REGISTRY_H_
