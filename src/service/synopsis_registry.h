#ifndef XEE_SERVICE_SYNOPSIS_REGISTRY_H_
#define XEE_SERVICE_SYNOPSIS_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "estimator/synopsis.h"

namespace xee::service {

/// A refcounted view of one registered synopsis at a point in time.
/// Holding a snapshot keeps its synopsis alive while Register/Remove
/// replace it in the registry, so a dataset can be reloaded under
/// queries in flight. `epoch` uniquely identifies the version across
/// the registry's lifetime (cache keys embed it, so swapping a name
/// implicitly invalidates every plan compiled against the old version).
struct SynopsisSnapshot {
  std::shared_ptr<const estimator::Synopsis> synopsis;
  uint64_t epoch = 0;
};

/// Thread-safe name -> synopsis map with swap semantics.
///
/// Thread-safety: every method may be called concurrently; the map is
/// guarded by one mutex (operations are O(1) pointer shuffles — the
/// synopses themselves are immutable and shared by reference).
class SynopsisRegistry {
 public:
  /// Registers `synopsis` under `name`, replacing any previous version.
  /// Returns the new version's epoch.
  uint64_t Register(const std::string& name, estimator::Synopsis synopsis);
  uint64_t Register(const std::string& name,
                    std::shared_ptr<const estimator::Synopsis> synopsis);

  /// Drops `name`; in-flight snapshots stay valid. False if absent.
  bool Remove(const std::string& name);

  /// The current version of `name`, or nullopt.
  std::optional<SynopsisSnapshot> Snapshot(const std::string& name) const;

  /// Registered names, unordered.
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, SynopsisSnapshot> map_;
  uint64_t next_epoch_ = 1;  // guarded by mu_
};

}  // namespace xee::service

#endif  // XEE_SERVICE_SYNOPSIS_REGISTRY_H_
