#ifndef XEE_SERVICE_SYNOPSIS_REGISTRY_H_
#define XEE_SERVICE_SYNOPSIS_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "estimator/synopsis.h"
#include "eval/exact_evaluator.h"
#include "xml/tree.h"

namespace xee::service {

/// A synopsis version's accuracy health, fed back by the shadow-
/// evaluation pipeline (obs/accuracy.h, DESIGN.md §11). kUnknown until
/// enough shadow samples accumulate; kStale when the drift EWMA crossed
/// `drift_qerror_limit` — the synopsis no longer describes the data it
/// claims to summarize.
enum class SynopsisHealth { kUnknown, kHealthy, kStale };

std::string_view SynopsisHealthName(SynopsisHealth h);

/// The ground-truth oracle optionally attached to a synopsis version:
/// the source Document plus an exact evaluator over it. Immutable after
/// construction and shared by reference, so shadow evaluations keep it
/// alive across Register/Remove just like the synopsis itself.
struct GroundTruth {
  explicit GroundTruth(std::shared_ptr<const xml::Document> doc)
      : document(std::move(doc)), evaluator(*document) {}

  std::shared_ptr<const xml::Document> document;
  eval::ExactEvaluator evaluator;  ///< over *document
};

/// A refcounted view of one registered synopsis at a point in time.
/// Holding a snapshot keeps its synopsis alive while Register/Remove
/// replace it in the registry, so a dataset can be reloaded under
/// queries in flight. `epoch` uniquely identifies the version across
/// the registry's lifetime (cache keys embed it, so swapping a name
/// implicitly invalidates every plan compiled against the old version).
struct SynopsisSnapshot {
  std::shared_ptr<const estimator::Synopsis> synopsis;
  uint64_t epoch = 0;
  /// This version loaded from a blob whose o-histogram section was
  /// corrupt and dropped (RegisterSerialized salvage): order-free
  /// queries are exact as usual, but everything served from it is
  /// degraded and order-axis queries cannot run at full fidelity.
  bool order_quarantined = false;
  /// Shadow-sampled accuracy verdict for this version (kUnknown until
  /// the drift gate has seen enough samples).
  SynopsisHealth health = SynopsisHealth::kUnknown;
  /// Ground-truth oracle for shadow evaluation; null when no Document
  /// was attached (shadow sampling then skips this synopsis).
  std::shared_ptr<const GroundTruth> truth;
};

/// One row of SynopsisRegistry::HealthRows() — the healthz view.
struct SynopsisHealthRow {
  std::string name;
  uint64_t epoch = 0;
  SynopsisHealth health = SynopsisHealth::kUnknown;
  bool order_quarantined = false;
  bool has_truth = false;
};

/// What RegisterSerialized did with a blob.
struct LoadOutcome {
  /// Ok when a version was registered (possibly degraded); the
  /// deserialization error when the blob was rejected and the name
  /// quarantined.
  Status status;
  /// New version epoch; 0 when rejected.
  uint64_t epoch = 0;
  /// The version registered without its order statistics.
  bool order_dropped = false;

  bool ok() const { return status.ok(); }
};

/// Thread-safe name -> synopsis map with swap semantics.
///
/// Thread-safety: every method may be called concurrently; the map is
/// guarded by one mutex (operations are O(1) pointer shuffles — the
/// synopses themselves are immutable and shared by reference).
/// RegisterSerialized deserializes outside the lock.
class SynopsisRegistry {
 public:
  /// Registers `synopsis` under `name`, replacing any previous version
  /// and clearing any quarantine on the name. Returns the new epoch.
  /// `document`, when non-null, becomes the version's ground-truth
  /// oracle (shadow evaluation builds an ExactEvaluator over it); a new
  /// version always starts with kUnknown health and, unless `document`
  /// is passed here, no truth — a synopsis's health and oracle describe
  /// one version, never carry over to the next.
  uint64_t Register(const std::string& name, estimator::Synopsis synopsis,
                    std::shared_ptr<const xml::Document> document = nullptr);
  uint64_t Register(const std::string& name,
                    std::shared_ptr<const estimator::Synopsis> synopsis,
                    std::shared_ptr<const xml::Document> document = nullptr);

  /// Attaches (or replaces) the ground-truth Document of the current
  /// version of `name` without bumping the epoch — the oracle does not
  /// change what estimates the synopsis produces, only whether they can
  /// be audited. False when `name` is not serving.
  bool AttachDocument(const std::string& name,
                      std::shared_ptr<const xml::Document> document);

  /// Sets the health verdict of `name`, but only while its current
  /// version still is `epoch` — a shadow verdict computed against a
  /// replaced version must not taint its successor. Returns whether the
  /// verdict was applied.
  bool MarkHealth(const std::string& name, uint64_t epoch,
                  SynopsisHealth health);

  /// Current health of `name`, or nullopt when not serving.
  std::optional<SynopsisHealth> Health(const std::string& name) const;

  /// Every serving name's health row, sorted by name (the healthz
  /// payload; quarantined names are not serving — see
  /// QuarantinedNames).
  std::vector<SynopsisHealthRow> HealthRows() const;

  /// Quarantined names, sorted, with their rejection statuses.
  std::vector<std::pair<std::string, Status>> QuarantinedNames() const;

  /// Deserializes `blob` and registers the result under `name`. A blob
  /// whose damage is confined to the o-histogram section registers as a
  /// degraded (order-quarantined) version; any other corruption rejects
  /// the blob, removes `name` from serving, and quarantines it — the
  /// serving layer answers kUnavailable until a good version arrives.
  LoadOutcome RegisterSerialized(const std::string& name,
                                 std::string_view blob);

  /// Drops `name` (and any quarantine record); in-flight snapshots stay
  /// valid. False if absent.
  bool Remove(const std::string& name);

  /// The current version of `name`, or nullopt.
  std::optional<SynopsisSnapshot> Snapshot(const std::string& name) const;

  /// The rejection status of a quarantined name, or nullopt when the
  /// name is serving (or simply unknown).
  std::optional<Status> Quarantined(const std::string& name) const;

  /// Registered names, unordered. Quarantined names are not serving and
  /// not listed.
  std::vector<std::string> Names() const;

  /// Fault site (common/fault.h) fired inside RegisterSerialized: when
  /// armed, one bit of the incoming blob is flipped (position chosen by
  /// the fault payload) before deserialization — chaos tests use it to
  /// exercise the quarantine and salvage paths with real bit-rot.
  static constexpr std::string_view kBitrotFaultSite = "registry.bitrot";

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, SynopsisSnapshot> map_;
  std::unordered_map<std::string, Status> quarantine_;
  uint64_t next_epoch_ = 1;  // guarded by mu_
};

}  // namespace xee::service

#endif  // XEE_SERVICE_SYNOPSIS_REGISTRY_H_
