#include "pidtree/collapsed_pid_tree.h"

namespace xee::pidtree {
namespace {

/// Bit values `from..to` (1-based, inclusive) of `bits` as a byte-per-bit
/// vector.
std::vector<uint8_t> Slice(const PathIdBits& bits, size_t from, size_t to) {
  std::vector<uint8_t> out;
  for (size_t b = from; b <= to; ++b) out.push_back(bits.Test(b) ? 1 : 0);
  return out;
}

}  // namespace

CollapsedPidTree::CollapsedPidTree(const std::vector<PathIdBits>& pids) {
  XEE_CHECK(!pids.empty());
  num_bits_ = pids[0].num_bits();
  leaf_count_ = pids.size();
  for (size_t i = 1; i < pids.size(); ++i) {
    XEE_CHECK(PathIdBits::LexLess(pids[i - 1], pids[i]));
  }

  // Side descriptor used during recursive construction; nodes_ indices
  // are assigned as branching points are discovered.
  struct SideDesc {
    int32_t child = -1;
    std::vector<uint8_t> run;
    bool tail_ones = false;
  };

  // Recursive lambda: describe pids[lo, hi) below shared bit prefix
  // [1, pos].
  auto build = [&](auto&& self, size_t lo, size_t hi,
                   size_t pos) -> SideDesc {
    SideDesc side;
    if (hi - lo == 1) {
      // Single pid: store the run up to the shorter homogeneous tail.
      const PathIdBits& p = pids[lo];
      size_t last_one = 0, last_zero = 0;
      for (size_t b = pos + 1; b <= num_bits_; ++b) {
        if (p.Test(b)) {
          last_one = b;
        } else {
          last_zero = b;
        }
      }
      if (last_one <= last_zero) {
        side.tail_ones = false;  // all-0 tail after the last 1
        if (last_one > pos) side.run = Slice(p, pos + 1, last_one);
      } else {
        side.tail_ones = true;  // all-1 tail after the last 0
        if (last_zero > pos) side.run = Slice(p, pos + 1, last_zero);
      }
      return side;
    }
    // Divergence bit: first position where the range's min and max pids
    // differ (all of the range shares the prefix before it).
    size_t d = pos + 1;
    while (pids[lo].Test(d) == pids[hi - 1].Test(d)) ++d;
    XEE_CHECK(d <= num_bits_);
    if (d > pos + 1) side.run = Slice(pids[lo], pos + 1, d - 1);
    // Split: first index whose bit d is 1.
    size_t split = lo;
    while (!pids[split].Test(d)) ++split;
    XEE_CHECK(split > lo && split < hi);

    const int32_t node_idx = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
    side.child = node_idx;
    SideDesc left = self(self, lo, split, d);
    SideDesc right = self(self, split, hi, d);
    Node& node = nodes_[node_idx];
    node.sep = static_cast<uint32_t>(split);  // max ref of the left side
    node.left = left.child;
    node.left_run = std::move(left.run);
    node.left_pruned = !left.tail_ones;
    node.right = right.child;
    node.right_run = std::move(right.run);
    node.right_pruned = !right.tail_ones;
    return side;
  };

  SideDesc top = build(build, 0, pids.size(), 0);
  // The top side is stored as a pseudo-node 'wrapping' the real root so
  // Lookup/Find have one uniform loop: a node with sep = leaf_count_
  // whose left side is the whole tree. (Every ref is <= sep.)
  Node wrapper;
  wrapper.sep = static_cast<uint32_t>(leaf_count_);
  wrapper.left = top.child;
  wrapper.left_run = std::move(top.run);
  wrapper.left_pruned = !top.tail_ones;
  nodes_.insert(nodes_.begin(), Node{});
  // Inserting at the front shifted every index by one.
  for (Node& n : nodes_) {
    if (n.left >= 0) n.left += 1;
    if (n.right >= 0) n.right += 1;
  }
  if (wrapper.left >= 0) wrapper.left += 1;
  nodes_[0] = std::move(wrapper);
}

PathIdBits CollapsedPidTree::Lookup(encoding::PidRef ref) const {
  XEE_CHECK(ref >= 1 && ref <= leaf_count_);
  PathIdBits out(num_bits_);
  size_t pos = 0;  // bits emitted so far
  int32_t cur = 0;
  bool first = true;
  while (true) {
    const Node& node = nodes_[cur];
    bool go_right;
    if (first) {
      go_right = false;  // wrapper: everything is on the left
      first = false;
    } else {
      ++pos;  // the node's own branching bit
      go_right = ref > node.sep;
      if (go_right) out.Set(pos);
    }
    const auto& run = go_right ? node.right_run : node.left_run;
    for (uint8_t bit : run) {
      ++pos;
      if (bit) out.Set(pos);
    }
    const int32_t child = go_right ? node.right : node.left;
    if (child < 0) {
      const bool tail_ones =
          go_right ? !node.right_pruned : !node.left_pruned;
      if (tail_ones) {
        for (size_t b = pos + 1; b <= num_bits_; ++b) out.Set(b);
      }
      return out;
    }
    cur = child;
  }
}

encoding::PidRef CollapsedPidTree::Find(const PathIdBits& bits) const {
  if (bits.num_bits() != num_bits_) return 0;
  size_t pos = 0;
  int32_t cur = 0;
  bool first = true;
  uint32_t lo = 1, hi = static_cast<uint32_t>(leaf_count_);
  while (true) {
    const Node& node = nodes_[cur];
    bool go_right;
    if (first) {
      go_right = false;
      first = false;
    } else {
      ++pos;
      go_right = bits.Test(pos);
      if (go_right) {
        lo = node.sep + 1;
      } else {
        hi = node.sep;
      }
      if (lo > hi) return 0;
    }
    const auto& run = go_right ? node.right_run : node.left_run;
    for (uint8_t bit : run) {
      ++pos;
      if (bits.Test(pos) != (bit != 0)) return 0;
    }
    const int32_t child = go_right ? node.right : node.left;
    if (child < 0) {
      const bool tail_ones =
          go_right ? !node.right_pruned : !node.left_pruned;
      for (size_t b = pos + 1; b <= num_bits_; ++b) {
        if (bits.Test(b) != tail_ones) return 0;
      }
      return lo == hi ? lo : 0;
    }
    cur = child;
  }
}

size_t CollapsedPidTree::SizeBytes() const {
  size_t bytes = 0;
  for (const Node& n : nodes_) {
    bytes += 8;  // 2-byte integer + two 3-byte child refs
    if (!n.left_run.empty()) bytes += 1 + (n.left_run.size() + 7) / 8;
    if (!n.right_run.empty()) bytes += 1 + (n.right_run.size() + 7) / 8;
  }
  return bytes;
}

}  // namespace xee::pidtree
