#ifndef XEE_PIDTREE_PID_BINARY_TREE_H_
#define XEE_PIDTREE_PID_BINARY_TREE_H_

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "encoding/labeling.h"

namespace xee::pidtree {

/// The path-id binary tree of paper Section 6: a bit-trie over the
/// distinct path ids of a document, used to store the (path-id integer ->
/// bit sequence) mapping more compactly than the raw path-id table.
///
/// * Left/right edges encode bit values 0/1; bit 1 (the paper's leftmost
///   bit) is the edge out of the trie root.
/// * Trie leaves, left to right, are the distinct path ids in bit-string
///   lexicographic order; the integer attached to leaf `i` is the PidRef
///   `i` (1-based), matching `encoding::Labeling::distinct_pids`.
/// * Each internal node carries the largest leaf integer of its left
///   subtree (or, with an empty left subtree, one less than the smallest
///   integer of its right subtree), enabling navigation by integer.
/// * Compression: a left (right) subtree containing only left (right)
///   edges represents a run of 0 (1) bits and is removed together with
///   its incoming edge; navigation reconstructs the run.
class PathIdBinaryTree {
 public:
  /// Builds the tree over `pids`, which must be non-empty, of equal
  /// widths, distinct, and sorted by PathIdBits::LexLess — exactly the
  /// `distinct_pids` of a Labeling.
  explicit PathIdBinaryTree(const std::vector<PathIdBits>& pids);

  /// Convenience: builds over `labeling.distinct_pids`.
  explicit PathIdBinaryTree(const encoding::Labeling& labeling)
      : PathIdBinaryTree(labeling.distinct_pids) {}

  /// Width of every path id in bits.
  size_t num_bits() const { return num_bits_; }
  /// Number of distinct path ids indexed.
  size_t LeafCount() const { return leaf_count_; }

  /// Reconstructs the bit sequence of path id `ref` (1..LeafCount()).
  PathIdBits Lookup(encoding::PidRef ref) const;

  /// Returns the PidRef whose bit sequence is `bits`, or 0 if absent.
  encoding::PidRef Find(const PathIdBits& bits) const;

  /// Number of nodes kept after compression (including the trie root).
  size_t NodeCount() const { return kept_node_count_; }
  /// Number of nodes before compression (for savings reporting).
  size_t UncompressedNodeCount() const { return uncompressed_node_count_; }

  /// Modeled storage footprint: 8 bytes per kept node (2-byte integer +
  /// two 3-byte child references).
  size_t SizeBytes() const { return kept_node_count_ * 8; }
  /// Footprint without the pure-chain compression, same cost model.
  size_t UncompressedSizeBytes() const {
    return uncompressed_node_count_ * 8;
  }

 private:
  struct Node {
    int32_t left = -1;
    int32_t right = -1;
    uint32_t sep = 0;  // largest leaf integer in the (original) left subtree
    bool left_pruned = false;
    bool right_pruned = false;
  };

  // Returns true iff the subtree at `n` contains only `left` (bit==0) or
  // only `right` (bit==1) edges; used by the compression pass.
  bool IsPureChain(int32_t n, bool left) const;

  size_t num_bits_ = 0;
  size_t leaf_count_ = 0;
  size_t uncompressed_node_count_ = 0;
  size_t kept_node_count_ = 0;
  std::vector<Node> nodes_;  // nodes_[0] is the trie root (depth 0)
};

}  // namespace xee::pidtree

#endif  // XEE_PIDTREE_PID_BINARY_TREE_H_
