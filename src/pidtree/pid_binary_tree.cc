#include "pidtree/pid_binary_tree.h"

#include <utility>

namespace xee::pidtree {

PathIdBinaryTree::PathIdBinaryTree(const std::vector<PathIdBits>& pids) {
  XEE_CHECK(!pids.empty());
  num_bits_ = pids[0].num_bits();
  leaf_count_ = pids.size();
  XEE_CHECK(num_bits_ >= 1);

  // --- Insert every pid into the trie. ---
  nodes_.emplace_back();  // root
  for (size_t i = 0; i < pids.size(); ++i) {
    XEE_CHECK(pids[i].num_bits() == num_bits_);
    if (i > 0) XEE_CHECK(PathIdBits::LexLess(pids[i - 1], pids[i]));
    int32_t cur = 0;
    for (size_t bit = 1; bit <= num_bits_; ++bit) {
      int32_t& child = pids[i].Test(bit) ? nodes_[cur].right : nodes_[cur].left;
      if (child < 0) {
        child = static_cast<int32_t>(nodes_.size());
        int32_t saved = child;  // nodes_ may reallocate
        nodes_.emplace_back();
        cur = saved;
      } else {
        cur = child;
      }
    }
  }
  uncompressed_node_count_ = nodes_.size();

  // --- Assign separators (pre-compression): post-order computation of
  // [min,max] leaf integers per subtree, with leaves numbered 1..K in
  // in-order (= insertion/lex) order. ---
  std::vector<std::pair<uint32_t, uint32_t>> range(
      nodes_.size(), {0, 0});  // [min,max] leaf ids in subtree
  {
    uint32_t next_leaf = 0;
    // Iterative post-order: stack of (node, state 0=descend-left,
    // 1=descend-right, 2=finish).
    std::vector<std::pair<int32_t, int>> stack;
    stack.emplace_back(0, 0);
    while (!stack.empty()) {
      auto& [n, state] = stack.back();
      Node& node = nodes_[n];
      if (state == 0) {
        state = 1;
        if (node.left >= 0) stack.emplace_back(node.left, 0);
      } else if (state == 1) {
        state = 2;
        if (node.right >= 0) stack.emplace_back(node.right, 0);
      } else {
        if (node.left < 0 && node.right < 0) {
          uint32_t id = ++next_leaf;
          range[n] = {id, id};
          node.sep = id;  // a leaf carries its own integer
        } else {
          uint32_t lo = node.left >= 0 ? range[node.left].first
                                       : range[node.right].first;
          uint32_t hi = node.right >= 0 ? range[node.right].second
                                        : range[node.left].second;
          range[n] = {lo, hi};
          node.sep = node.left >= 0 ? range[node.left].second
                                    : range[node.right].first - 1;
        }
        stack.pop_back();
      }
    }
    XEE_CHECK(next_leaf == leaf_count_);
  }

  // --- Compression: prune pure-left left subtrees and pure-right right
  // subtrees (a bare leaf is pure in both senses). ---
  for (Node& node : nodes_) {
    if (node.left >= 0 && IsPureChain(node.left, /*left=*/true)) {
      node.left = -1;
      node.left_pruned = true;
    }
    if (node.right >= 0 && IsPureChain(node.right, /*left=*/false)) {
      node.right = -1;
      node.right_pruned = true;
    }
  }

  // --- Count reachable nodes after compression. ---
  {
    size_t count = 0;
    std::vector<int32_t> stack = {0};
    while (!stack.empty()) {
      int32_t n = stack.back();
      stack.pop_back();
      ++count;
      if (nodes_[n].left >= 0) stack.push_back(nodes_[n].left);
      if (nodes_[n].right >= 0) stack.push_back(nodes_[n].right);
    }
    kept_node_count_ = count;
  }
}

bool PathIdBinaryTree::IsPureChain(int32_t n, bool left) const {
  while (true) {
    const Node& node = nodes_[n];
    if (node.left < 0 && node.right < 0) return true;  // leaf
    int32_t next = left ? node.left : node.right;
    int32_t other = left ? node.right : node.left;
    if (next < 0 || other >= 0) return false;
    n = next;
  }
}

PathIdBits PathIdBinaryTree::Lookup(encoding::PidRef ref) const {
  XEE_CHECK(ref >= 1 && ref <= leaf_count_);
  PathIdBits out(num_bits_);
  int32_t cur = 0;
  for (size_t bit = 1; bit <= num_bits_; ++bit) {
    const Node& node = nodes_[cur];
    bool go_right = ref > node.sep;
    if (go_right) {
      if (node.right < 0) {
        // Pruned pure-right chain: remaining bits are all 1.
        XEE_CHECK(node.right_pruned);
        for (size_t b = bit; b <= num_bits_; ++b) out.Set(b);
        return out;
      }
      out.Set(bit);
      cur = node.right;
    } else {
      if (node.left < 0) {
        // Pruned pure-left chain: remaining bits are all 0.
        XEE_CHECK(node.left_pruned);
        return out;
      }
      cur = node.left;
    }
  }
  return out;
}

encoding::PidRef PathIdBinaryTree::Find(const PathIdBits& bits) const {
  if (bits.num_bits() != num_bits_) return 0;
  int32_t cur = 0;
  uint32_t lo = 1;
  uint32_t hi = static_cast<uint32_t>(leaf_count_);
  for (size_t bit = 1; bit <= num_bits_; ++bit) {
    const Node& node = nodes_[cur];
    if (bits.Test(bit)) {
      if (node.right < 0) {
        if (!node.right_pruned) return 0;
        // Remaining bits must all be 1; the leaf is the subtree maximum.
        for (size_t b = bit; b <= num_bits_; ++b) {
          if (!bits.Test(b)) return 0;
        }
        return hi;
      }
      lo = node.sep + 1;
      cur = node.right;
    } else {
      if (node.left < 0) {
        if (!node.left_pruned) return 0;
        // Remaining bits must all be 0; the leaf is the left maximum.
        for (size_t b = bit; b <= num_bits_; ++b) {
          if (bits.Test(b)) return 0;
        }
        return node.sep;
      }
      hi = node.sep;
      cur = node.left;
    }
  }
  // All bits consumed on kept nodes: cannot happen, since leaf children
  // are always pruned; kept for defensiveness.
  return lo == hi ? lo : 0;
}

}  // namespace xee::pidtree
