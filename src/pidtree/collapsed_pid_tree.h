#ifndef XEE_PIDTREE_COLLAPSED_PID_TREE_H_
#define XEE_PIDTREE_COLLAPSED_PID_TREE_H_

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "encoding/labeling.h"

namespace xee::pidtree {

/// Extension of the paper's path-id binary tree (DESIGN.md §6 notes):
/// a path-compressed (radix) variant. Besides removing pure 0/1 chains
/// like the paper's structure, every remaining single-child chain is
/// collapsed into one edge that stores the skipped bit run explicitly.
///
/// Rationale: the per-bit nodes of the paper's structure make mixed-bit
/// chains expensive; the byte sizes the paper reports for its binary
/// tree are only reachable when such chains are collapsed. This variant
/// reproduces that behaviour; bench_table3 reports both structures.
class CollapsedPidTree {
 public:
  /// Builds over `pids`: non-empty, equal widths, distinct, sorted by
  /// PathIdBits::LexLess (a Labeling's `distinct_pids`).
  explicit CollapsedPidTree(const std::vector<PathIdBits>& pids);

  explicit CollapsedPidTree(const encoding::Labeling& labeling)
      : CollapsedPidTree(labeling.distinct_pids) {}

  size_t num_bits() const { return num_bits_; }
  size_t LeafCount() const { return leaf_count_; }

  /// Reconstructs the bit sequence of path id `ref` (1..LeafCount()).
  PathIdBits Lookup(encoding::PidRef ref) const;

  /// Returns the PidRef whose bit sequence is `bits`, or 0 if absent.
  encoding::PidRef Find(const PathIdBits& bits) const;

  size_t NodeCount() const { return nodes_.size(); }

  /// Modeled footprint: 8 bytes per node (integer + 2 child refs) plus,
  /// per edge with a collapsed run, 1 length byte and the run's bits
  /// rounded up to whole bytes.
  size_t SizeBytes() const;

 private:
  struct Node {
    int32_t left = -1;
    int32_t right = -1;
    uint32_t sep = 0;
    bool left_pruned = false;   // pure-0 tail below the left edge
    bool right_pruned = false;  // pure-1 tail below the right edge
    // Bits skipped AFTER taking the left/right edge (the edge's own bit
    // is implicit), in order.
    std::vector<uint8_t> left_run;
    std::vector<uint8_t> right_run;
  };

  size_t num_bits_ = 0;
  size_t leaf_count_ = 0;
  std::vector<Node> nodes_;  // nodes_[0] = root
};

}  // namespace xee::pidtree

#endif  // XEE_PIDTREE_COLLAPSED_PID_TREE_H_
