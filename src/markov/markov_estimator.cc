#include "markov/markov_estimator.h"

#include <algorithm>

#include "common/check.h"

namespace xee::markov {
namespace {

using xpath::Query;
using xpath::RootMode;
using xpath::StructAxis;

}  // namespace

std::string MarkovEstimator::Key(const std::vector<xml::TagId>& window) {
  std::string key;
  key.reserve(window.size() * 4);
  for (xml::TagId t : window) {
    key.append(reinterpret_cast<const char*>(&t), 4);
  }
  return key;
}

MarkovEstimator MarkovEstimator::Build(const xml::Document& doc,
                                       const MarkovOptions& options) {
  XEE_CHECK(options.k >= 2);
  MarkovEstimator e;
  e.k_ = options.k;
  e.root_tag_ = doc.Tag(doc.root());
  for (size_t t = 0; t < doc.TagCount(); ++t) {
    e.tag_names_.push_back(doc.TagNameOf(static_cast<xml::TagId>(t)));
  }

  // DFS maintaining the ancestor tag stack; at each node count every
  // suffix window of length 1..k ending here.
  std::vector<xml::TagId> tag_stack;
  std::vector<std::pair<xml::NodeId, size_t>> stack;
  auto enter = [&](xml::NodeId n) {
    tag_stack.push_back(doc.Tag(n));
    const size_t max_len = std::min(e.k_, tag_stack.size());
    for (size_t len = 1; len <= max_len; ++len) {
      std::vector<xml::TagId> window(tag_stack.end() - static_cast<long>(len),
                                     tag_stack.end());
      e.grams_[Key(window)]++;
    }
  };
  enter(doc.root());
  stack.emplace_back(doc.root(), 0);
  while (!stack.empty()) {
    auto& [node, child_idx] = stack.back();
    const auto& children = doc.Children(node);
    if (child_idx < children.size()) {
      xml::NodeId child = children[child_idx++];
      enter(child);
      stack.emplace_back(child, 0);
    } else {
      tag_stack.pop_back();
      stack.pop_back();
    }
  }
  return e;
}

uint64_t MarkovEstimator::PathFrequency(
    const std::vector<std::string>& tags) const {
  XEE_CHECK(!tags.empty() && tags.size() <= k_);
  std::vector<xml::TagId> window;
  for (const std::string& name : tags) {
    auto it = std::find(tag_names_.begin(), tag_names_.end(), name);
    if (it == tag_names_.end()) return 0;
    window.push_back(static_cast<xml::TagId>(it - tag_names_.begin()));
  }
  auto it = grams_.find(Key(window));
  return it == grams_.end() ? 0 : it->second;
}

Result<double> MarkovEstimator::Estimate(const Query& q) const {
  Status s = q.Validate();
  if (!s.ok()) return s;
  // The Markov family handles simple child-axis chains only (paper §8).
  if (!q.orders.empty()) {
    return Status(StatusCode::kUnsupported, "Markov paths have no order");
  }
  std::vector<xml::TagId> chain;
  for (size_t i = 0; i < q.size(); ++i) {
    const auto& n = q.nodes[i];
    if (n.children.size() > 1) {
      return Status(StatusCode::kUnsupported,
                    "Markov estimator supports simple paths only");
    }
    if (i > 0 && n.axis != StructAxis::kChild) {
      return Status(StatusCode::kUnsupported,
                    "Markov estimator supports child axes only");
    }
    if (n.tag == "*" || n.value_filter.has_value()) {
      return Status(StatusCode::kUnsupported,
                    "Markov estimator is name-test-and-structure only");
    }
    auto it = std::find(tag_names_.begin(), tag_names_.end(), n.tag);
    if (it == tag_names_.end()) return 0.0;
    chain.push_back(static_cast<xml::TagId>(it - tag_names_.begin()));
  }
  if (q.target != static_cast<int>(q.size()) - 1) {
    return Status(StatusCode::kUnsupported,
                  "Markov estimator targets the last step");
  }
  if (q.root_mode == RootMode::kAbsolute && chain[0] != root_tag_) {
    return 0.0;
  }

  auto freq = [&](size_t from, size_t len) -> double {
    std::vector<xml::TagId> window(chain.begin() + static_cast<long>(from),
                                   chain.begin() + static_cast<long>(from + len));
    auto it = grams_.find(Key(window));
    return it == grams_.end() ? 0.0 : static_cast<double>(it->second);
  };

  const size_t n = chain.size();
  if (n <= k_) return freq(0, n);

  // Markov chaining: f(t1..tk) * prod f(t_i..t_{i+k-1}) / f(t_i..t_{i+k-2}).
  double estimate = freq(0, k_);
  for (size_t i = 1; i + k_ <= n; ++i) {
    const double denom = freq(i, k_ - 1);
    if (denom <= 0) return 0.0;
    estimate *= freq(i, k_) / denom;
  }
  return estimate;
}

size_t MarkovEstimator::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& [key, count] : grams_) {
    (void)count;
    bytes += key.size() / 4 + 4;
  }
  return bytes;
}

}  // namespace xee::markov
