#ifndef XEE_MARKOV_MARKOV_ESTIMATOR_H_
#define XEE_MARKOV_MARKOV_ESTIMATOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "xml/tree.h"
#include "xpath/query.h"

namespace xee::markov {

/// Construction knobs.
struct MarkovOptions {
  /// Window length: frequencies of every downward tag path of length up
  /// to k are stored; longer chains are estimated by Markov chaining.
  /// Must be >= 2.
  size_t k = 2;
};

/// Third related-work baseline: the Markov path-frequency estimator of
/// [11] (McHugh & Widom, Lore) as summarized in the paper's Section 8 —
/// "stores the frequencies of all paths with length up to k, which are
/// aggregated to estimate the node frequency of longer paths".
///
/// Faithful to the family's documented limitation ("these Markov-based
/// solutions are limited to simple path queries"): only child-axis
/// chains with the default (last-step) target are supported; descendant
/// axes, branches, wildcards, order axes and value predicates return
/// kUnsupported.
class MarkovEstimator {
 public:
  static MarkovEstimator Build(const xml::Document& doc,
                               const MarkovOptions& options = {});

  /// Estimated selectivity of the chain's last step. Exact for chains of
  /// length <= k; longer chains chain conditional frequencies:
  ///   f(t1..tk) * prod_i f(t_i..t_{i+k-1}) / f(t_i..t_{i+k-2}).
  Result<double> Estimate(const xpath::Query& q) const;

  /// Raw frequency of a downward tag-name path (length <= k), 0 if
  /// unseen. Exposed for tests and exploration.
  uint64_t PathFrequency(const std::vector<std::string>& tags) const;

  /// Modeled footprint: one 1-byte tag ref per gram position plus a
  /// 4-byte count per stored gram.
  size_t SizeBytes() const;

  size_t k() const { return k_; }

 private:
  /// Encodes a tag-id window as a byte string key.
  static std::string Key(const std::vector<xml::TagId>& window);

  size_t k_ = 2;
  std::vector<std::string> tag_names_;
  xml::TagId root_tag_ = 0;
  std::unordered_map<std::string, uint64_t> grams_;
  size_t gram_bytes_ = 0;
};

}  // namespace xee::markov

#endif  // XEE_MARKOV_MARKOV_ESTIMATOR_H_
