#include "eval/exact_evaluator.h"

#include <algorithm>
#include <limits>
#include <optional>

namespace xee::eval {
namespace {

using xml::Document;
using xml::NodeId;
using xpath::OrderConstraint;
using xpath::OrderKind;
using xpath::Query;
using xpath::RootMode;
using xpath::StructAxis;

constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max();

/// A branch candidate for constraint solving: `in` is the coordinate the
/// predecessor constraint tests (sibling position / pre-order begin),
/// `out` the coordinate imposed on successors (sibling position /
/// pre-order end).
struct PosCand {
  uint32_t in;
  uint32_t out;
};

/// Order-constraint structure at one junction query node.
struct JunctionPlan {
  std::vector<OrderConstraint> constraints;
  std::vector<int> branches;     // constrained child query nodes
  OrderKind kind = OrderKind::kSibling;
  std::vector<int> topo;         // branches in topological order
  bool cyclic = false;
};

/// Per-query working state.
struct Work {
  std::vector<xml::TagId> tags;                 // per query node
  std::vector<std::vector<NodeId>> cand_list;   // C(q), pre-order sorted
  std::vector<std::vector<uint8_t>> cand_mask;  // C(q) membership
  std::vector<JunctionPlan> plans;              // per query node
};

constexpr xml::TagId kAnyTag = UINT32_MAX;

class Engine {
 public:
  Engine(const Document& doc,
         const std::vector<std::vector<NodeId>>& by_tag,
         const std::vector<NodeId>& all_nodes, const Query& q)
      : doc_(doc), by_tag_(by_tag), all_nodes_(all_nodes), q_(q) {}

  Result<std::vector<NodeId>> Run() {
    // Resolve tags; an unknown tag means an empty result.
    w_.tags.resize(q_.nodes.size());
    for (size_t i = 0; i < q_.nodes.size(); ++i) {
      if (q_.nodes[i].tag == "*") {
        w_.tags[i] = kAnyTag;
        continue;
      }
      auto t = doc_.FindTag(q_.nodes[i].tag);
      if (!t.has_value()) return std::vector<NodeId>{};
      w_.tags[i] = *t;
    }
    Status s = BuildPlans();
    if (!s.ok()) return s;
    BottomUp();
    return TopDown();
  }

 private:
  /// Groups order constraints by junction and topo-sorts the branches.
  Status BuildPlans() {
    w_.plans.resize(q_.nodes.size());
    for (const OrderConstraint& c : q_.orders) {
      int junction = q_.nodes[c.before].parent;
      JunctionPlan& plan = w_.plans[junction];
      if (!plan.constraints.empty() && plan.kind != c.kind) {
        return Status(StatusCode::kUnsupported,
                      "mixed constraint kinds at one junction");
      }
      plan.kind = c.kind;
      plan.constraints.push_back(c);
      for (int e : {c.before, c.after}) {
        if (std::find(plan.branches.begin(), plan.branches.end(), e) ==
            plan.branches.end()) {
          plan.branches.push_back(e);
        }
      }
    }
    for (JunctionPlan& plan : w_.plans) {
      if (plan.constraints.empty()) continue;
      // Kahn topo sort over the constraint edges.
      std::vector<int> indeg(plan.branches.size(), 0);
      auto idx = [&](int node) {
        return static_cast<int>(std::find(plan.branches.begin(),
                                          plan.branches.end(), node) -
                                plan.branches.begin());
      };
      for (const OrderConstraint& c : plan.constraints) {
        indeg[idx(c.after)]++;
      }
      std::vector<int> queue;
      for (size_t i = 0; i < plan.branches.size(); ++i) {
        if (indeg[i] == 0) queue.push_back(static_cast<int>(i));
      }
      while (!queue.empty()) {
        int i = queue.back();
        queue.pop_back();
        plan.topo.push_back(plan.branches[i]);
        for (const OrderConstraint& c : plan.constraints) {
          if (c.before == plan.branches[i] && --indeg[idx(c.after)] == 0) {
            queue.push_back(idx(c.after));
          }
        }
      }
      plan.cyclic = plan.topo.size() != plan.branches.size();
    }
    return Status::Ok();
  }

  /// Candidates of branch `qc` inside junction binding `d` as (in, out)
  /// coordinates, ascending by `in`.
  std::vector<PosCand> CollectBranch(int qc, NodeId d,
                                     OrderKind kind) const {
    std::vector<PosCand> out;
    if (q_.nodes[qc].axis == StructAxis::kChild) {
      const auto& children = doc_.Children(d);
      for (size_t i = 0; i < children.size(); ++i) {
        if (!w_.cand_mask[qc][children[i]]) continue;
        if (kind == OrderKind::kSibling) {
          out.push_back(PosCand{static_cast<uint32_t>(i),
                                static_cast<uint32_t>(i)});
        } else {
          out.push_back(PosCand{doc_.PreorderIndex(children[i]),
                                doc_.SubtreeEnd(children[i])});
        }
      }
    } else {
      // Descendant branch (document-order constraints only; Validate
      // forbids sibling constraints on descendant branches).
      ForEachDescendantCand(qc, d, [&](NodeId n) {
        out.push_back(PosCand{doc_.PreorderIndex(n), doc_.SubtreeEnd(n)});
      });
    }
    return out;
  }

  /// Calls `fn` for every candidate of `qc` in d's subtree (strict
  /// descendants).
  template <typename Fn>
  void ForEachDescendantCand(int qc, NodeId d, Fn&& fn) const {
    const auto& list = w_.cand_list[qc];
    const uint32_t begin = doc_.PreorderIndex(d);
    const uint32_t end = doc_.SubtreeEnd(d);
    auto it = std::upper_bound(
        list.begin(), list.end(), begin, [this](uint32_t pos, NodeId n) {
          return pos < doc_.PreorderIndex(n);
        });
    for (; it != list.end() && doc_.PreorderIndex(*it) < end; ++it) {
      fn(*it);
    }
  }

  /// Existence of any candidate of `qc` under `d` (axis-aware).
  bool BranchExists(int qc, NodeId d) const {
    if (q_.nodes[qc].axis == StructAxis::kChild) {
      for (NodeId ch : doc_.Children(d)) {
        if (w_.cand_mask[qc][ch]) return true;
      }
      return false;
    }
    bool found = false;
    ForEachDescendantCand(qc, d, [&](NodeId) { found = true; });
    return found;
  }

  /// Greedy feasibility of the constrained branches at junction `qn`
  /// bound to `d`. `pin_branch` (a query node id, or -1) forces that
  /// branch's candidate to `pin`.
  bool SolveConstraints(int qn, NodeId d, int pin_branch,
                        PosCand pin) const {
    const JunctionPlan& plan = w_.plans[qn];
    if (plan.cyclic) return false;
    const bool strict = plan.kind == OrderKind::kSibling;

    // req[branch] = minimal allowed `in`.
    std::vector<uint32_t> req(plan.branches.size(), 0);
    auto idx = [&](int node) {
      return static_cast<size_t>(std::find(plan.branches.begin(),
                                           plan.branches.end(), node) -
                                 plan.branches.begin());
    };
    for (int branch : plan.topo) {
      const size_t bi = idx(branch);
      uint32_t out;
      if (branch == pin_branch) {
        if (pin.in < req[bi]) return false;
        out = pin.out;
      } else {
        std::vector<PosCand> cands = CollectBranch(branch, d, plan.kind);
        uint32_t best = kInf;
        for (const PosCand& c : cands) {
          if (c.in >= req[bi]) best = std::min(best, c.out);
        }
        if (best == kInf) return false;
        out = best;
      }
      for (const OrderConstraint& c : plan.constraints) {
        if (c.before != branch) continue;
        const size_t ai = idx(c.after);
        const uint32_t need = strict ? out + 1 : out;
        req[ai] = std::max(req[ai], need);
      }

    }
    return true;
  }

  /// d satisfies the subquery rooted at qn (downwards only).
  bool SubtreeFeasible(int qn, NodeId d) const {
    const JunctionPlan& plan = w_.plans[qn];
    for (int qc : q_.nodes[qn].children) {
      const bool constrained =
          std::find(plan.branches.begin(), plan.branches.end(), qc) !=
          plan.branches.end();
      if (constrained) continue;  // handled by the solver below
      if (!BranchExists(qc, d)) return false;
    }
    if (!plan.constraints.empty()) {
      return SolveConstraints(qn, d, /*pin_branch=*/-1, PosCand{});
    }
    return true;
  }

  void BottomUp() {
    const size_t n = q_.nodes.size();
    w_.cand_list.resize(n);
    w_.cand_mask.assign(n, std::vector<uint8_t>(doc_.NodeCount(), 0));
    // Parents precede children in index order, so reverse order is
    // bottom-up.
    for (size_t i = n; i-- > 0;) {
      const int qi = static_cast<int>(i);
      const auto& source =
          w_.tags[i] == kAnyTag ? all_nodes_ : by_tag_[w_.tags[i]];
      const auto& filter = q_.nodes[i].value_filter;
      for (NodeId d : source) {
        if (filter.has_value() && doc_.Text(d) != *filter) continue;
        if (!SubtreeFeasible(qi, d)) continue;
        w_.cand_list[i].push_back(d);
        w_.cand_mask[i][d] = 1;
      }
    }
  }

  /// Pin feasibility of `d` as branch `qc` under junction binding `dp`.
  /// Assumes dp in M(parent) (all branches feasible without pin).
  bool PinFeasible(int qp, NodeId dp, int qc, NodeId d) const {
    const JunctionPlan& plan = w_.plans[qp];
    if (plan.constraints.empty() ||
        std::find(plan.branches.begin(), plan.branches.end(), qc) ==
            plan.branches.end()) {
      return true;  // unconstrained branch: dp's feasibility stands
    }
    PosCand pin;
    if (plan.kind == OrderKind::kSibling) {
      const uint32_t pos = static_cast<uint32_t>(doc_.SiblingIndex(d));
      pin = PosCand{pos, pos};
    } else {
      pin = PosCand{doc_.PreorderIndex(d), doc_.SubtreeEnd(d)};
    }
    // Fast path for the common single-constraint case, cached per dp.
    if (plan.constraints.size() == 1) {
      const OrderConstraint& c = plan.constraints[0];
      const bool strict = plan.kind == OrderKind::kSibling;
      const SummaryKey key{qp, dp};
      if (!(cached_key_ == key)) {
        const int other = qc == c.before ? c.after : c.before;
        // Both (min out, max in) summaries computed once per dp; the
        // other endpoint of this pin uses one of them.
        std::vector<PosCand> oc = CollectBranch(other, dp, plan.kind);
        uint32_t min_out = kInf, max_in = 0;
        bool any = false;
        for (const PosCand& pc : oc) {
          min_out = std::min(min_out, pc.out);
          max_in = std::max(max_in, pc.in);
          any = true;
        }
        cached_key_ = key;

        cached_any_ = any;
        cached_min_out_ = min_out;
        cached_max_in_ = max_in;
      }
      if (!cached_any_) return false;
      if (qc == c.after) {
        return pin.in >= (strict ? cached_min_out_ + 1 : cached_min_out_);
      }
      return cached_max_in_ >= (strict ? pin.out + 1 : pin.out);
    }
    return SolveConstraints(qp, dp, qc, pin);
  }

  Result<std::vector<NodeId>> TopDown() {
    const size_t n = q_.nodes.size();
    std::vector<std::vector<NodeId>> m_list(n);
    std::vector<std::vector<uint8_t>> m_mask(
        n, std::vector<uint8_t>(doc_.NodeCount(), 0));

    for (NodeId d : w_.cand_list[0]) {
      if (q_.root_mode == RootMode::kAbsolute && d != doc_.root()) continue;
      m_list[0].push_back(d);
      m_mask[0][d] = 1;
    }
    for (size_t i = 1; i < n; ++i) {
      const int qp = q_.nodes[i].parent;
      cached_key_ = SummaryKey{};  // reset the per-dp cache between nodes
      for (NodeId d : w_.cand_list[i]) {
        bool ok = false;
        if (q_.nodes[i].axis == StructAxis::kChild) {
          NodeId dp = doc_.Parent(d);
          ok = dp != xml::kNullNode && m_mask[qp][dp] &&
               PinFeasible(qp, dp, static_cast<int>(i), d);
        } else {
          for (NodeId dp = doc_.Parent(d); dp != xml::kNullNode;
               dp = doc_.Parent(dp)) {
            if (m_mask[qp][dp] &&
                PinFeasible(qp, dp, static_cast<int>(i), d)) {
              ok = true;
              break;
            }
          }
        }
        if (ok) {
          m_list[i].push_back(d);
          m_mask[i][d] = 1;
        }
      }
    }
    return std::move(m_list[q_.target]);
  }

  struct SummaryKey {
    int qp = -1;
    NodeId dp = xml::kNullNode;
    friend bool operator==(const SummaryKey&, const SummaryKey&) = default;
  };

  const Document& doc_;
  const std::vector<std::vector<NodeId>>& by_tag_;
  const std::vector<NodeId>& all_nodes_;
  const Query& q_;
  Work w_;

  // Single-constraint pin cache (see PinFeasible).
  mutable SummaryKey cached_key_;
  mutable bool cached_any_ = false;
  mutable uint32_t cached_min_out_ = 0;
  mutable uint32_t cached_max_in_ = 0;
};

}  // namespace

ExactEvaluator::ExactEvaluator(const xml::Document& doc) : doc_(doc) {
  XEE_CHECK_MSG(doc.finalized(), "document must be finalized");
  by_tag_.resize(doc.TagCount());
  for (NodeId n = 0; n < doc.NodeCount(); ++n) {
    by_tag_[doc.Tag(n)].push_back(n);
  }
  for (auto& list : by_tag_) {
    std::sort(list.begin(), list.end(), [&doc](NodeId a, NodeId b) {
      return doc.PreorderIndex(a) < doc.PreorderIndex(b);
    });
  }
  all_nodes_.resize(doc.NodeCount());
  for (NodeId n = 0; n < doc.NodeCount(); ++n) all_nodes_[n] = n;
  std::sort(all_nodes_.begin(), all_nodes_.end(),
            [&doc](NodeId a, NodeId b) {
              return doc.PreorderIndex(a) < doc.PreorderIndex(b);
            });
}

Result<std::vector<xml::NodeId>> ExactEvaluator::Matches(
    const xpath::Query& q) const {
  Status s = q.Validate();
  if (!s.ok()) return s;
  Engine engine(doc_, by_tag_, all_nodes_, q);
  Result<std::vector<NodeId>> r = engine.Run();
  if (!r.ok()) return r;
  std::vector<NodeId> matches = std::move(r).value();
  std::sort(matches.begin(), matches.end(), [this](NodeId a, NodeId b) {
    return doc_.PreorderIndex(a) < doc_.PreorderIndex(b);
  });
  return matches;
}

Result<uint64_t> ExactEvaluator::Count(const xpath::Query& q) const {
  Result<std::vector<NodeId>> r = Matches(q);
  if (!r.ok()) return r.status();
  return static_cast<uint64_t>(r.value().size());
}

}  // namespace xee::eval
