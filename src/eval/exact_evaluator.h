#ifndef XEE_EVAL_EXACT_EVALUATOR_H_
#define XEE_EVAL_EXACT_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "xml/tree.h"
#include "xpath/query.h"

namespace xee::eval {

/// Exact XPath evaluation over a Document for the paper's query fragment
/// (twig queries with child/descendant axes and order constraints). Used
/// as ground truth when measuring estimation error, and for pruning
/// negative queries from generated workloads.
///
/// Semantics: a match of query Q is a mapping from query nodes to
/// elements respecting tags ("*" matches any element), axes and order
/// constraints; the result of
/// `Matches`/`Count` is the set/count of distinct elements bound to
/// Q.target over all matches. Sibling constraints require the two
/// endpoints to be bound to children of the junction binding with the
/// `before` endpoint at a smaller sibling position; document-order
/// constraints require the `after` binding's subtree to start after the
/// `before` binding's subtree ends (the XPath following/preceding
/// relation), scoped under the junction binding as in paper Section 5.
///
/// Complexity: O(|doc| * |query|) for unordered queries and queries with
/// one order constraint; queries with several constraints at one
/// junction fall back to a per-candidate greedy check.
///
/// Thread-safety: `Matches`/`Count` are const and reentrant — `by_tag_`
/// and `all_nodes_` are immutable after construction, and all per-query
/// working state (including the match engine's pin cache) lives on the
/// call's own stack. The shadow-evaluation pipeline (obs/accuracy.h)
/// relies on this to run one shared evaluator from every thread-pool
/// worker concurrently.
class ExactEvaluator {
 public:
  /// `doc` must be finalized and must outlive the evaluator.
  explicit ExactEvaluator(const xml::Document& doc);

  /// Distinct elements bound to `q.target`, in document order.
  Result<std::vector<xml::NodeId>> Matches(const xpath::Query& q) const;

  /// |Matches(q)|.
  Result<uint64_t> Count(const xpath::Query& q) const;

 private:
  const xml::Document& doc_;
  /// Elements per tag, sorted by pre-order position.
  std::vector<std::vector<xml::NodeId>> by_tag_;
  /// All elements, sorted by pre-order (source for "*" name tests).
  std::vector<xml::NodeId> all_nodes_;
};

}  // namespace xee::eval

#endif  // XEE_EVAL_EXACT_EVALUATOR_H_
