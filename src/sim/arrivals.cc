#include "sim/arrivals.h"

#include <cmath>

#include "common/check.h"

namespace xee::sim {
namespace {

/// Exponentially distributed gap at `rate_qps`, in microseconds,
/// clamped to >= 1 (virtual time is integral; a zero gap would let one
/// instant absorb unbounded arrivals).
uint64_t ExpGapUs(Rng& rng, double rate_qps) {
  XEE_CHECK(rate_qps > 0);
  // 1 - U in (0, 1]: log() never sees 0.
  const double u = 1.0 - rng.UniformDouble();
  const double gap_us = -std::log(u) * 1e6 / rate_qps;
  if (gap_us < 1.0) return 1;
  if (gap_us > 1e15) return static_cast<uint64_t>(1e15);  // effectively never
  return static_cast<uint64_t>(gap_us);
}

}  // namespace

std::string_view ArrivalKindName(ArrivalModel::Kind kind) {
  switch (kind) {
    case ArrivalModel::Kind::kPoisson:
      return "poisson";
    case ArrivalModel::Kind::kBursty:
      return "bursty";
    case ArrivalModel::Kind::kDiurnal:
      return "diurnal";
  }
  return "unknown";
}

ArrivalProcess::ArrivalProcess(const ArrivalModel& model, Rng rng)
    : model_(model), rng_(rng) {}

uint64_t ArrivalProcess::Next(uint64_t now_us) {
  switch (model_.kind) {
    case ArrivalModel::Kind::kPoisson:
      return now_us + ExpGapUs(rng_, model_.rate_qps);
    case ArrivalModel::Kind::kBursty:
      return NextBursty(now_us);
    case ArrivalModel::Kind::kDiurnal:
      return NextDiurnal(now_us);
  }
  return now_us + 1;
}

uint64_t ArrivalProcess::NextBursty(uint64_t now_us) {
  // Walk phase boundaries until a candidate arrival lands inside its
  // own phase. Phase durations are exponential, so the process is a
  // two-state MMPP; the phase machine advances deterministically with
  // the stream, not with the wall clock.
  uint64_t t = now_us;
  for (;;) {
    if (t >= phase_end_us_) {
      burst_on_ = !burst_on_;
      const uint64_t mean = burst_on_ ? model_.mean_on_us : model_.mean_off_us;
      // Exponential phase length with mean `mean` (>= 1us).
      const double u = 1.0 - rng_.UniformDouble();
      uint64_t len = static_cast<uint64_t>(
          -std::log(u) * static_cast<double>(mean));
      if (len < 1) len = 1;
      phase_end_us_ = t + len;
    }
    const double rate = burst_on_ ? model_.burst_rate_qps : model_.rate_qps;
    const uint64_t candidate = t + ExpGapUs(rng_, rate);
    if (candidate < phase_end_us_) return candidate;
    t = phase_end_us_;  // no arrival this phase; roll into the next
  }
}

uint64_t ArrivalProcess::NextDiurnal(uint64_t now_us) {
  // Thinning (Lewis-Shedler): candidates at the peak rate, accepted
  // with probability rate(t)/peak — exact for any bounded rate curve.
  const double amp = model_.amplitude;
  const double peak = model_.rate_qps * (1.0 + amp);
  uint64_t t = now_us;
  for (;;) {
    t += ExpGapUs(rng_, peak);
    const double phase = 2.0 * M_PI *
                         static_cast<double>(t % model_.period_us) /
                         static_cast<double>(model_.period_us);
    const double rate = model_.rate_qps * (1.0 + amp * std::sin(phase));
    if (rng_.UniformDouble() * peak < rate) return t;
  }
}

}  // namespace xee::sim
