#include "sim/traffic.h"

#include <cctype>
#include <utility>

#include "common/check.h"
#include "fuzz/fuzz.h"

namespace xee::sim {
namespace {

/// Parse-error traffic: shapes covering the parser's major reject
/// paths (empty step, dangling predicate, bad axis, stray bytes).
constexpr const char* kGarbage[] = {
    "///",       "/a[",      "/a]b",        "//following-sibling::x",
    "/a/b[.=\"", "child::",  "/a/*[1 2]",   "/9bad",
    "",          "/a//[b]",
};

}  // namespace

TrafficSource::TrafficSource(const TrafficModel& model,
                             std::vector<std::string> tenant_names,
                             const std::vector<std::string>& tags, Rng rng)
    : model_(model), tenants_(std::move(tenant_names)), rng_(rng) {
  XEE_CHECK(!tenants_.empty());
  XEE_CHECK(!tags.empty());
  // Family tables draw from a dedicated child stream so the per-request
  // draws below are independent of how many families were generated.
  Rng family_rng = rng_.Split();
  families_.resize(tenants_.size());
  for (std::vector<std::string>& fams : families_) {
    fams.reserve(model_.families_per_tenant);
    for (size_t k = 0; k < model_.families_per_tenant; ++k) {
      fams.push_back(fuzz::GenerateQueryString(family_rng, tags));
    }
  }
}

std::string TrafficSource::AliasSpelling(Rng& rng, const std::string& query) {
  std::string out;
  out.reserve(query.size() + 16);
  size_t i = 0;
  while (i < query.size()) {
    if (query[i] != '/') {
      out.push_back(query[i++]);
      continue;
    }
    // A separator: one '/' or two.
    size_t slashes = 1;
    if (i + 1 < query.size() && query[i + 1] == '/') slashes = 2;
    out.append(slashes, '/');
    i += slashes;
    // Insert an explicit axis only before a plain name step — never
    // before '*' (the parser's axis grammar takes names), and never
    // when the step already spells an axis ("name::" ahead), which an
    // inserted prefix would corrupt.
    size_t j = i;
    while (j < query.size() &&
           (std::isalnum(static_cast<unsigned char>(query[j])) ||
            query[j] == '_' || query[j] == '-' || query[j] == '.')) {
      ++j;
    }
    const bool plain_name =
        j > i && std::isalpha(static_cast<unsigned char>(query[i])) &&
        !(j + 1 < query.size() && query[j] == ':' && query[j + 1] == ':');
    if (plain_name && rng.Bernoulli(0.6)) {
      // '//x' expands to descendant::, '/x' to child:: — the axes the
      // separators already imply, so the canonical plan is unchanged
      // while the exact-key spelling is new.
      out += slashes == 2 ? "descendant::" : "child::";
    }
  }
  return out;
}

std::string TrafficSource::SemanticAliasSpelling(const std::string& root_name,
                                                 const std::string& query) {
  if (root_name.empty() || query.size() < 3 || query[0] != '/' ||
      query[1] != '/') {
    return query;
  }
  // The first step must be a plain name test: never '*' (it could bind
  // the root element, which "/root//*" excludes) and never an explicit
  // "axis::" prefix (the prefix char test below would read the axis
  // keyword as the name).
  size_t j = 2;
  while (j < query.size() &&
         (std::isalnum(static_cast<unsigned char>(query[j])) ||
          query[j] == '_' || query[j] == '-' || query[j] == '.')) {
    ++j;
  }
  const bool plain_name =
      j > 2 && std::isalpha(static_cast<unsigned char>(query[2])) &&
      !(j + 1 < query.size() && query[j] == ':' && query[j + 1] == ':');
  if (!plain_name) return query;
  // "//root/..." is not "/root//root/..." — a recursive first step
  // naming the root must keep its spelling.
  if (query.compare(2, j - 2, root_name) == 0) return query;
  return "/" + root_name + query;
}

service::QueryRequest TrafficSource::Make() {
  service::QueryRequest req;

  // Tenant: Zipf rank 1 maps to tenants_[0], so the skew is stable
  // across runs (tenant order is fixed at construction).
  const size_t tenant =
      static_cast<size_t>(
          rng_.Zipf(static_cast<uint64_t>(tenants_.size()),
                    model_.tenant_zipf_s)) -
      1;
  req.synopsis = rng_.Bernoulli(model_.unknown_tenant_prob)
                     ? "sim-unknown-tenant"
                     : tenants_[tenant];

  if (rng_.Bernoulli(model_.garbage_prob)) {
    req.xpath = kGarbage[rng_.Index(std::size(kGarbage))];
  } else {
    const std::vector<std::string>& fams = families_[tenant];
    const size_t f =
        static_cast<size_t>(rng_.Zipf(static_cast<uint64_t>(fams.size()),
                                      model_.query_zipf_s)) -
        1;
    req.xpath = rng_.Bernoulli(model_.alias_prob)
                    ? AliasSpelling(rng_, fams[f])
                    : fams[f];
    // Short-circuit on the probability, not just inside Bernoulli: a
    // zero-probability model must not consume a draw, or every existing
    // scenario's request stream (and fingerprint) would shift.
    if (model_.semantic_alias_prob > 0 &&
        rng_.Bernoulli(model_.semantic_alias_prob)) {
      req.xpath = SemanticAliasSpelling(model_.root_name, req.xpath);
    }
  }

  const double u = rng_.UniformDouble();
  if (u < model_.p_infinite) {
    req.deadline = Deadline::Infinite();
  } else if (u < model_.p_infinite + model_.p_expired) {
    req.deadline = Deadline::AlreadyExpired();
  } else {
    req.deadline = Deadline::AfterMs(model_.finite_ms);
  }
  return req;
}

}  // namespace xee::sim
