#ifndef XEE_SIM_ENGINE_H_
#define XEE_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace xee::sim {

/// Deterministic discrete-event engine (DESIGN.md §12): a virtual clock
/// in microseconds over a min-heap of scheduled closures. Events fire
/// in (time, schedule order) — two events at the same timestamp run in
/// the order they were scheduled — so a run is a pure function of
/// whatever seeded randomness drove the scheduling, never of wall time
/// or thread timing. Virtual time costs nothing to skip: a 10-minute
/// simulated soak takes however long its events take to execute.
///
/// Single-threaded by contract: Run/Drain dispatch on the calling
/// thread, and handlers may schedule further events freely (including
/// at the current instant, which runs them later within that instant).
class Engine {
 public:
  using EventFn = std::function<void()>;

  uint64_t now_us() const { return now_us_; }

  /// Schedules `fn` at absolute virtual time `t_us`. Scheduling into
  /// the past is clamped to the current instant — virtual time never
  /// runs backwards.
  void At(uint64_t t_us, EventFn fn);

  void After(uint64_t delay_us, EventFn fn) {
    At(now_us_ + delay_us, std::move(fn));
  }

  /// Dispatches every event with time <= until_us in order and leaves
  /// the clock at until_us (a horizon, not a truncation: later events
  /// stay queued for a further Run or Drain).
  void Run(uint64_t until_us);

  /// Dispatches everything left — completions draining past the
  /// arrival horizon — leaving the clock at the last event's time.
  void Drain();

  size_t pending() const { return heap_.size(); }

  /// Observes every clock advance, before the events at the new time
  /// dispatch. The simulator points this at FaultInjector::AdvanceTime
  /// so time-windowed chaos schedules follow virtual time.
  std::function<void(uint64_t)> on_time_advance;

 private:
  struct Event {
    uint64_t t = 0;
    uint64_t seq = 0;  ///< tie-break: FIFO within one timestamp
    EventFn fn;
  };
  struct Later {
    // std::push_heap keeps the *smallest* (t, seq) on top under this
    // "greater-than" comparison.
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  /// Pops and runs the earliest event; advances the clock to it.
  void DispatchNext();
  void AdvanceTo(uint64_t t_us);

  std::vector<Event> heap_;
  uint64_t now_us_ = 0;
  uint64_t seq_ = 0;
};

}  // namespace xee::sim

#endif  // XEE_SIM_ENGINE_H_
