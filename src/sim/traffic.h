#ifndef XEE_SIM_TRAFFIC_H_
#define XEE_SIM_TRAFFIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "service/service.h"

namespace xee::sim {

/// Workload-mix knobs: who asks (Zipf tenant skew), what they ask
/// (Zipf over grammar-generated query families, alias respellings,
/// outright garbage), and how patient they are (deadline mix).
struct TrafficModel {
  /// Zipf exponent over the registered tenants (0 = uniform).
  double tenant_zipf_s = 1.1;

  /// Query families pre-generated per tenant from the fuzz grammar
  /// (src/fuzz/query_gen) over the synopsis's tag alphabet; each
  /// request Zipf-picks a family.
  size_t families_per_tenant = 64;
  double query_zipf_s = 1.0;

  /// Probability that a request respells its family — inserting
  /// explicit child::/descendant:: axes that parse to the *same*
  /// canonical plan under a *different* exact cache key. The
  /// cache-adversarial knob: high alias rates multiply exact-key
  /// entries per canonical plan, stressing eviction and the
  /// canonical-hit path instead of the warm exact-hit path.
  double alias_prob = 0.0;

  /// Probability that a request respells its family *semantically*: a
  /// "//"-headed query is re-issued as "/<root_name>//..." — a different
  /// canonical query (new plan-cache AND memo key) that the static
  /// analyzer's anchor/elide rewrites collapse back onto the family's
  /// plan. With the analyzer off, every such spelling compiles and
  /// caches as its own plan; the intel alias-storm scenarios measure
  /// exactly that contrast. Guarded by `> 0 &&` in the source so a zero
  /// probability consumes no rng draws and existing scenario
  /// fingerprints stay bit-identical.
  double semantic_alias_prob = 0.0;
  /// Document root tag used by semantic aliasing. The simulator fills
  /// this from the dataset at run time; empty disables the respelling.
  std::string root_name;

  /// Probability of a syntactically broken query (parse-error traffic).
  double garbage_prob = 0.0;

  /// Probability of addressing a tenant that was never registered
  /// (kNotFound traffic).
  double unknown_tenant_prob = 0.0;

  /// Deadline mix: infinite with p_infinite, already expired with
  /// p_expired (deterministic O(1) rejects), else finite at
  /// finite_ms. Finite deadlines are kept generous (seconds, against
  /// microsecond queries) so real-clock jitter cannot flip outcomes —
  /// mid-run expiry is the chaos scheduler's job (deadline.expire),
  /// which is deterministic.
  double p_infinite = 0.9;
  double p_expired = 0.0;
  uint64_t finite_ms = 2000;
};

/// One seeded request stream: fixes the tenant names and pre-generates
/// the family table at construction, then mints QueryRequests one draw
/// at a time. Equal (model, tenants, tags, seed) produce identical
/// request sequences.
class TrafficSource {
 public:
  TrafficSource(const TrafficModel& model,
                std::vector<std::string> tenant_names,
                const std::vector<std::string>& tags, Rng rng);

  service::QueryRequest Make();

  /// The family table, exposed so tests can assert the alias invariant
  /// (every respelling canonicalizes to its family's plan).
  const std::vector<std::vector<std::string>>& families() const {
    return families_;
  }

  /// Respells `query` without changing its canonical plan: inserts
  /// explicit `child::` after single-`/` separators and `descendant::`
  /// after `//`, skipping wildcard and explicitly-axised steps. Public
  /// (and static) for the alias-invariant test.
  static std::string AliasSpelling(Rng& rng, const std::string& query);

  /// Respells `query` as the semantically equal "/<root_name>" + query
  /// when it starts with "//" followed by a plain name other than
  /// root_name (every element except the root has the root as a proper
  /// ancestor, so anchoring under the root changes nothing — unless the
  /// first step could itself bind the root, which the guards exclude).
  /// Unlike AliasSpelling the result is a *different canonical query*;
  /// only the analyzer's rewrites reunite it with the original's plan.
  /// Returns `query` unchanged when the guards fail.
  static std::string SemanticAliasSpelling(const std::string& root_name,
                                           const std::string& query);

 private:
  TrafficModel model_;
  std::vector<std::string> tenants_;
  std::vector<std::vector<std::string>> families_;  ///< [tenant][family]
  Rng rng_;
};

}  // namespace xee::sim

#endif  // XEE_SIM_TRAFFIC_H_
