#ifndef XEE_SIM_SCENARIO_H_
#define XEE_SIM_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.h"
#include "obs/slo.h"
#include "sim/arrivals.h"
#include "sim/traffic.h"

namespace xee::sim {

/// A chaos entry: arm `site` with `config` for the whole run. The
/// window_start / window_end fields of the config are in *virtual
/// microseconds* — the simulator feeds the engine clock to
/// FaultInjector::AdvanceTime, so the fault can only fire while the
/// virtual clock is inside the window.
struct ChaosWindow {
  std::string site;
  FaultConfig config;
  /// The site fires from a background thread (rebuild workers), so its
  /// per-window fire attribution is wall-clock-dependent: reported in
  /// the trajectory but excluded from the determinism fingerprint.
  /// Sites reached only from the driving thread leave this false.
  bool background = false;
};

/// A periodic stream of delta batches against the live tenants
/// (round-robin across batches), applied on the driving thread at
/// virtual times. Each batch draws ops_per_delta mutations: a
/// novel-tag subtree insert with probability novel_prob (charges patch
/// error — the knob that drives the budget toward exhaustion), a
/// subtree delete with probability delete_prob, a sibling clone
/// otherwise (exactly patchable, charges nothing).
struct DeltaBurst {
  uint64_t start_us = 0;
  uint64_t period_us = 100'000;
  size_t count = 0;
  size_t ops_per_delta = 1;
  double novel_prob = 0.0;
  double delete_prob = 0.0;
};

/// Everything that defines one reproducible simulation run. Two runs of
/// the same Scenario produce the same arrival sequence, the same
/// queries, the same shed/degrade decisions, and the same trajectory
/// fingerprint (workers == 0; see Scenario::workers).
struct Scenario {
  std::string name;
  uint64_t seed = 1;

  /// Arrival horizon; completions past it still drain.
  uint64_t duration_us = 10'000'000;
  /// Trajectory sampling period (one WindowRow per window).
  uint64_t window_us = 1'000'000;

  ArrivalModel arrival;
  TrafficModel traffic;

  // --- service shape ---
  size_t tenants = 4;
  std::string dataset = "ssplays";  ///< datagen dataset per tenant
  double dataset_scale = 0.05;
  size_t max_inflight = 64;
  size_t plan_cache_bytes = 8ull << 20;
  /// Final-estimate memo budget (0 disables). Kept at the service
  /// default so alias-storm scenarios exercise the memo rung under the
  /// same pressure production would see.
  size_t estimate_memo_bytes = 1ull << 20;
  /// Static query analyzer (ServiceOptions::enable_analyzer): prune
  /// provably-empty queries and rewrite alias families onto shared
  /// plans. Served bits are analyzer-invariant, so flipping this must
  /// not move the deterministic trajectory — only cache economics.
  /// The intel_alias_storm / intel_alias_storm_off pair measures the
  /// contrast.
  bool enable_analyzer = true;
  size_t accuracy_sample = 0;  ///< 0 = shadow sampling off

  /// Virtual service time of an admitted, successful request:
  /// service_min_us plus an exponential with mean service_exp_us. This
  /// is how long the request *holds its admission slot* in virtual
  /// time; the real single-threaded Estimate() call is instantaneous
  /// as far as the virtual clock is concerned.
  uint64_t service_min_us = 1'000;
  uint64_t service_exp_us = 19'000;

  /// Re-register each tenant from its serialized blob every period (0 =
  /// never): exercises epoch bumps, cache invalidation by epoch key,
  /// and — with a registry.bitrot chaos window — the salvage /
  /// quarantine paths mid-traffic.
  uint64_t reload_period_us = 0;

  // --- live maintenance (DESIGN.md §14) ---
  /// Register every tenant as a *live document* through the maintenance
  /// manager (RegisterLive) instead of a frozen blob: delta bursts
  /// patch the synopsis incrementally under traffic and background
  /// rebuilds restore exactness. Do not combine with reload_period_us —
  /// a blob reload would replace the live snapshot lineage.
  bool live = false;
  /// Self-healing policy for live tenants (ServiceOptions fields of the
  /// same names): a stale verdict — budget exhaustion or drift
  /// conviction — auto-schedules a background rebuild.
  bool auto_rebuild = false;
  double patch_error_budget = 0.05;
  uint64_t drift_min_samples = 32;
  std::vector<DeltaBurst> deltas;

  // --- flight-data observability (DESIGN.md §16) ---
  /// Virtual-time scrape cadence of the service's time-series store
  /// (ServiceOptions::ts_interval_us). When > 0 the simulator schedules
  /// ObsTick events on the engine at this cadence, so the scraped
  /// series — and every SLO alert transition computed over them — are a
  /// pure function of the scenario and replay bit-for-bit. 0 keeps
  /// flight-data scraping off (the historical scenarios).
  uint64_t ts_interval_us = 0;
  /// Declarative SLOs evaluated at each scrape. Only counter-derived
  /// specs (availability) are deterministic under virtual time; latency
  /// and q-error specs read wall-clock-measured series and would make
  /// the alert trajectory — which IS fingerprinted — timing-dependent.
  std::vector<obs::SloSpec> slos;

  std::vector<ChaosWindow> chaos;

  /// 0 = deterministic single-threaded virtual-time mode (the default;
  /// fingerprints are stable). > 0 = dispatch real Estimate() calls to
  /// a thread pool of this size — virtual slot-holding is skipped, the
  /// fingerprint is not stable, but drain invariants must still hold.
  /// This is the TSan mode.
  size_t workers = 0;
};

/// Multiplies every duration-like knob (duration, window, arrival
/// phases/period, chaos windows, reload period) by `factor`, keeping
/// rates and sizes fixed — a 0.1-scaled scenario is the same shape, ten
/// times shorter. Used by --duration-ms and the smoke test.
Scenario ScaledScenario(Scenario s, double factor);

/// The named scenario families: Poisson steady-state, bursty overload
/// with a chaos window, diurnal ramp with an alias storm, live
/// documents under delta churn with drift-triggered self-healing, and
/// the long-tail semantic-alias storm with the analyzer on vs off.
Scenario PoissonSteady();
Scenario BurstyOverloadChaos();
Scenario DiurnalAliasStorm();
Scenario LiveUpdateChurn();
/// A long-tail workload (shallow Zipf over many families) where half
/// the requests respell their family semantically ("/ROOT//..." for
/// "//..."), against a deliberately small plan cache and memo: the
/// analyzer's rewrites collapse each family's spellings onto one plan.
Scenario IntelAliasStorm();
/// IntelAliasStorm with enable_analyzer = false and a distinct name:
/// the same seed and traffic, every semantic spelling compiling its own
/// plan. Fingerprints of the pair must be equal (the analyzer is
/// invisible in served outcomes); only the cache economics differ.
Scenario IntelAliasStormOff();
/// Bursty overload through the flight-data pipeline: the burst's
/// shed + deadline failures burn the availability SLO's error budget,
/// the multi-window alert fires mid-burst and resolves in the off
/// phase, and the whole alert trajectory (fired/resolved/burning per
/// window) is part of the determinism fingerprint. The drain invariant
/// pins alert conservation: fired == resolved + still-burning.
Scenario SloBurn();

std::vector<std::string> ScenarioNames();

/// Scenario by name, or false when unknown.
bool ScenarioByName(const std::string& name, Scenario* out);

}  // namespace xee::sim

#endif  // XEE_SIM_SCENARIO_H_
