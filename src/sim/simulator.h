#ifndef XEE_SIM_SIMULATOR_H_
#define XEE_SIM_SIMULATOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sim/invariants.h"
#include "sim/scenario.h"

namespace xee::sim {

/// One trajectory sample: what happened between the previous window
/// close and t_end_us. The *deterministic* columns (arrival and outcome
/// tallies, virtual queue depth, chaos fire counts) are a pure function
/// of the scenario and feed the fingerprint; the *measured* columns
/// (latency quantiles, shadow activity) are scraped from the obs
/// registry for the trajectory report but excluded from the fingerprint
/// — they depend on the wall clock and thread timing.
struct WindowRow {
  uint64_t t_end_us = 0;

  // Deterministic (fingerprinted).
  uint64_t arrivals = 0;
  uint64_t ok_full = 0;
  uint64_t ok_degraded = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t not_found = 0;
  uint64_t unavailable = 0;
  uint64_t errored = 0;
  uint64_t vqueue = 0;  ///< virtual slots held at window close
  /// Delta batches applied / rejected this window (live scenarios;
  /// driving-thread events at virtual times, so deterministic).
  uint64_t deltas_applied = 0;
  uint64_t deltas_rejected = 0;
  /// SLO alert transitions this window and alerts burning at window
  /// close (scenarios with Scenario::slos). Deterministic: ObsTick runs
  /// at virtual times over counter-derived series, so the whole alert
  /// trajectory replays bit-for-bit and is fingerprinted.
  uint64_t alerts_fired = 0;
  uint64_t alerts_resolved = 0;
  uint64_t alerts_burning = 0;
  /// Chaos fires per armed driving-thread site, delta over this window.
  std::vector<std::pair<std::string, uint64_t>> fault_fires;

  // Measured (reported, not fingerprinted).
  obs::HistogramSnapshot request_ns;      ///< timed-request latency, delta
  obs::HistogramSnapshot retry_after_ms;  ///< shed retry hints, delta
  uint64_t shadow_recorded = 0;           ///< accuracy samples, delta
  uint64_t formula_memo = 0;              ///< estimate-memo hits, delta
  /// Requests answered 0 by the analyzer's unsat proof, delta. Measured
  /// rather than fingerprinted on purpose: the on/off scenario pair
  /// must share one fingerprint, and this is exactly the column that
  /// differs between the arms.
  uint64_t analyzer_pruned = 0;
  uint64_t rebuilds_done = 0;  ///< background rebuilds published, delta;
                               ///< wall-clock timing, hence not
                               ///< fingerprinted
  /// Fires of ChaosWindow::background sites (rebuild workers): window
  /// attribution is wall-clock timing, hence not fingerprinted.
  std::vector<std::pair<std::string, uint64_t>> background_fires;

  /// One BENCH-style JSON object (bench "simulate").
  std::string ToJson(const std::string& scenario) const;
};

/// A finished run: the trajectory, the drain-time ledger, the invariant
/// verdicts, and the determinism fingerprint.
struct SimResult {
  Scenario scenario;
  std::vector<WindowRow> trajectory;
  SimTotals totals;
  InvariantReport invariants;
  /// StableHash64 over the deterministic trajectory columns and the
  /// final totals. Two runs of the same scenario (workers == 0) must
  /// produce the same fingerprint; the determinism test pins this.
  uint64_t fingerprint = 0;

  bool ok() const { return invariants.ok(); }
  /// The run's summary JSON row (totals + fingerprint + invariants).
  std::string SummaryJson() const;
};

/// Fingerprint helper, exposed for the determinism test.
uint64_t TrajectoryFingerprint(const std::vector<WindowRow>& trajectory,
                               const SimTotals& totals);

/// Runs `scenario` to completion: builds the dataset and service,
/// registers the tenants, arms the chaos schedule, drives the virtual
/// clock through arrivals / completions / reloads / window closes,
/// drains, and checks the drain invariants. Resets the global
/// FaultInjector on entry and exit.
SimResult RunScenario(const Scenario& scenario);

}  // namespace xee::sim

#endif  // XEE_SIM_SIMULATOR_H_
