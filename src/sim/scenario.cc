#include "sim/scenario.h"

#include <cmath>

#include "common/deadline.h"
#include "delta/document_delta.h"
#include "estimator/estimator.h"
#include "service/maintenance.h"
#include "service/service.h"
#include "service/synopsis_registry.h"

namespace xee::sim {
namespace {

uint64_t ScaleUs(uint64_t us, double factor) {
  const double scaled = static_cast<double>(us) * factor;
  if (scaled < 1.0) return us == 0 ? 0 : 1;
  return static_cast<uint64_t>(scaled);
}

}  // namespace

Scenario ScaledScenario(Scenario s, double factor) {
  s.duration_us = ScaleUs(s.duration_us, factor);
  s.window_us = ScaleUs(s.window_us, factor);
  s.arrival.mean_on_us = ScaleUs(s.arrival.mean_on_us, factor);
  s.arrival.mean_off_us = ScaleUs(s.arrival.mean_off_us, factor);
  s.arrival.period_us = ScaleUs(s.arrival.period_us, factor);
  s.reload_period_us = ScaleUs(s.reload_period_us, factor);
  s.ts_interval_us = ScaleUs(s.ts_interval_us, factor);
  for (obs::SloSpec& spec : s.slos) {
    spec.fast_window_us = ScaleUs(spec.fast_window_us, factor);
    spec.slow_window_us = ScaleUs(spec.slow_window_us, factor);
  }
  for (DeltaBurst& b : s.deltas) {
    b.start_us = ScaleUs(b.start_us, factor);
    b.period_us = ScaleUs(b.period_us, factor);
  }
  for (ChaosWindow& w : s.chaos) {
    w.config.window_start = ScaleUs(w.config.window_start, factor);
    if (w.config.window_end != UINT64_MAX) {
      w.config.window_end = ScaleUs(w.config.window_end, factor);
    }
  }
  return s;
}

Scenario PoissonSteady() {
  Scenario s;
  s.name = "poisson_steady";
  s.seed = 601;
  s.duration_us = 10'000'000;
  s.window_us = 1'000'000;

  s.arrival.kind = ArrivalModel::Kind::kPoisson;
  s.arrival.rate_qps = 400.0;

  // Offered virtual concurrency ~= 400 qps * 20ms = 8 slots on average,
  // far under the budget: the healthy baseline. A trickle of garbage,
  // aliases, and pre-expired deadlines keeps every outcome counter
  // nonzero without changing the steady-state story.
  s.tenants = 4;
  s.dataset = "ssplays";
  s.dataset_scale = 0.05;
  s.max_inflight = 64;
  s.accuracy_sample = 4;
  s.service_min_us = 1'000;
  s.service_exp_us = 19'000;

  s.traffic.tenant_zipf_s = 1.1;
  s.traffic.families_per_tenant = 48;
  s.traffic.query_zipf_s = 1.0;
  s.traffic.alias_prob = 0.10;
  s.traffic.garbage_prob = 0.02;
  s.traffic.unknown_tenant_prob = 0.01;
  s.traffic.p_infinite = 0.85;
  s.traffic.p_expired = 0.02;
  s.traffic.finite_ms = 1'000;
  return s;
}

Scenario BurstyOverloadChaos() {
  Scenario s;
  s.name = "bursty_overload_chaos";
  s.seed = 602;
  s.duration_us = 12'000'000;
  s.window_us = 500'000;

  s.arrival.kind = ArrivalModel::Kind::kBursty;
  s.arrival.rate_qps = 100.0;
  s.arrival.burst_rate_qps = 3'000.0;
  s.arrival.mean_on_us = 800'000;
  s.arrival.mean_off_us = 1'200'000;

  // Virtual capacity ~= 8 slots / 30ms = 266 qps: bursts at 3000 qps
  // must shed hard, the off-phases drain. Shadow sampling stays off —
  // shadow evaluation calls Deadline::HasExpired from pool threads,
  // which would consume deadline.expire probability draws in
  // thread-timing order and break the fingerprint.
  s.tenants = 3;
  s.dataset = "dblp";
  s.dataset_scale = 0.05;
  s.max_inflight = 8;
  s.accuracy_sample = 0;
  s.service_min_us = 2'000;
  s.service_exp_us = 28'000;

  s.traffic.tenant_zipf_s = 1.0;
  s.traffic.families_per_tenant = 32;
  s.traffic.query_zipf_s = 1.1;
  s.traffic.alias_prob = 0.05;
  s.traffic.garbage_prob = 0.05;
  s.traffic.unknown_tenant_prob = 0.02;
  s.traffic.p_infinite = 0.80;
  s.traffic.p_expired = 0.02;
  s.traffic.finite_ms = 2'000;

  // Mid-run chaos: deadlines start lying (every 4th check expires
  // spuriously) for the middle third, with an allocation-failure streak
  // overlapping it. Both sites are only reached from the main thread
  // here, so the draw order — and the fingerprint — stay deterministic.
  {
    ChaosWindow w;
    w.site = std::string(Deadline::kFaultSite);
    w.config.probability = 0.25;
    w.config.seed = 71;
    w.config.window_start = 4'000'000;
    w.config.window_end = 8'000'000;
    s.chaos.push_back(w);
  }
  {
    ChaosWindow w;
    w.site = std::string(estimator::Estimator::kAllocFaultSite);
    // The alloc site is only hit on plan-cache misses — rare once the
    // cache warms — so the probability is high to make the window
    // visible in the fire trajectory.
    w.config.probability = 0.35;
    w.config.seed = 72;
    w.config.max_fires = 200;
    w.config.window_start = 5'000'000;
    w.config.window_end = 7'000'000;
    s.chaos.push_back(w);
  }
  return s;
}

Scenario DiurnalAliasStorm() {
  Scenario s;
  s.name = "diurnal_alias_storm";
  s.seed = 603;
  s.duration_us = 12'000'000;
  s.window_us = 1'000'000;

  s.arrival.kind = ArrivalModel::Kind::kDiurnal;
  s.arrival.rate_qps = 300.0;
  s.arrival.amplitude = 0.8;
  s.arrival.period_us = 6'000'000;  // two compressed "days"

  // The cache-adversarial mix: 70% of requests respell their family
  // under a fresh exact key against a deliberately small plan cache,
  // periodic reloads bump epochs (every cached key dies with its
  // epoch), and a bitrot window corrupts two of the reloads — one
  // tenant rides the salvage/quarantine path while traffic continues.
  s.tenants = 8;
  s.dataset = "xmark";
  s.dataset_scale = 0.05;
  s.max_inflight = 128;
  s.plan_cache_bytes = 256 << 10;
  s.accuracy_sample = 8;
  s.service_min_us = 500;
  s.service_exp_us = 4'500;
  s.reload_period_us = 1'500'000;

  s.traffic.tenant_zipf_s = 1.2;
  s.traffic.families_per_tenant = 96;
  s.traffic.query_zipf_s = 1.0;
  s.traffic.alias_prob = 0.70;
  s.traffic.garbage_prob = 0.01;
  s.traffic.unknown_tenant_prob = 0.0;
  s.traffic.p_infinite = 0.90;
  s.traffic.p_expired = 0.01;
  s.traffic.finite_ms = 2'000;

  {
    // registry.bitrot is reached only from the main thread's reload
    // events, so it is fingerprint-safe. probability 1: every reload
    // inside the window ingests a corrupted blob.
    ChaosWindow w;
    w.site = std::string(service::SynopsisRegistry::kBitrotFaultSite);
    w.config.probability = 1.0;
    w.config.seed = 73;
    w.config.window_start = 6'000'000;
    w.config.window_end = 9'000'000;
    s.chaos.push_back(w);
  }
  return s;
}

Scenario LiveUpdateChurn() {
  Scenario s;
  s.name = "live_update_churn";
  s.seed = 604;
  s.duration_us = 8'000'000;
  s.window_us = 1'000'000;

  s.arrival.kind = ArrivalModel::Kind::kPoisson;
  s.arrival.rate_qps = 250.0;

  // Two live tenants under moderate steady traffic: the story here is
  // maintenance, not admission control. Shadow sampling stays on so the
  // drift pipeline audits the *patched* estimates end to end.
  s.tenants = 2;
  s.dataset = "ssplays";
  s.dataset_scale = 0.02;
  s.max_inflight = 64;
  s.accuracy_sample = 4;
  s.service_min_us = 1'000;
  s.service_exp_us = 15'000;

  s.traffic.tenant_zipf_s = 1.0;
  s.traffic.families_per_tenant = 32;
  s.traffic.query_zipf_s = 1.0;
  s.traffic.alias_prob = 0.05;
  s.traffic.garbage_prob = 0.01;
  s.traffic.unknown_tenant_prob = 0.01;
  s.traffic.p_infinite = 0.90;
  s.traffic.p_expired = 0.01;
  s.traffic.finite_ms = 1'000;

  s.live = true;
  s.auto_rebuild = true;
  // A handful of novel-tag chains (each charging ~3 units against a
  // few-thousand-node baseline) exhausts this, flipping the tenant
  // stale and triggering the self-heal rebuild mid-skew.
  s.patch_error_budget = 0.004;
  s.drift_min_samples = 16;

  // Phase one: patch-friendly churn — sibling clones (charge zero,
  // bit-exact patches) with a trickle of deletes. The synopsis rides
  // healthy -> patched and back without ever going stale.
  {
    DeltaBurst b;
    b.start_us = 500'000;
    b.period_us = 100'000;
    b.count = 25;
    b.ops_per_delta = 2;
    b.delete_prob = 0.15;
    s.deltas.push_back(b);
  }
  // Phase two: novel-tag skew — the document grows structure the base
  // synopsis has never seen, patch error accumulates past the budget,
  // and auto-rebuild kicks in while the alloc fault window fails the
  // first attempts. The quiet tail after ~5.3s lets the retries land
  // and health return before drain.
  {
    DeltaBurst b;
    b.start_us = 3'500'000;
    b.period_us = 150'000;
    b.count = 12;
    b.ops_per_delta = 2;
    b.novel_prob = 0.7;
    b.delete_prob = 0.1;
    s.deltas.push_back(b);
  }

  {
    // One torn batch: delta.corrupt fires exactly once inside the clone
    // churn, and the batch must be rejected without moving the
    // document (the deltas_rejected ledger column comes from here).
    ChaosWindow w;
    w.site = std::string(delta::LiveDocument::kCorruptFaultSite);
    w.config.probability = 1.0;
    w.config.seed = 74;
    w.config.max_fires = 1;
    w.config.window_start = 1'000'000;
    w.config.window_end = 2'000'000;
    s.chaos.push_back(w);
  }
  {
    // Fail the first rebuild attempts in the publish path: the patched
    // synopsis keeps serving while the backoff retries run.
    ChaosWindow w;
    w.site = std::string(service::MaintenanceManager::kAllocFaultSite);
    w.config.probability = 1.0;
    w.config.seed = 75;
    w.config.max_fires = 2;
    w.config.window_start = 3'500'000;
    w.background = true;
    s.chaos.push_back(w);
  }
  {
    // Stall rebuild attempts 2ms each, widening the window in which
    // estimates must keep serving from the patched snapshot.
    ChaosWindow w;
    w.site = std::string(service::MaintenanceManager::kSlowFaultSite);
    w.config.probability = 1.0;
    w.config.payload = 2;
    w.config.seed = 76;
    w.config.max_fires = 2;
    w.config.window_start = 3'500'000;
    w.background = true;
    s.chaos.push_back(w);
  }
  return s;
}

Scenario IntelAliasStorm() {
  Scenario s;
  s.name = "intel_alias_storm";
  s.seed = 605;
  s.duration_us = 10'000'000;
  s.window_us = 1'000'000;

  s.arrival.kind = ArrivalModel::Kind::kPoisson;
  s.arrival.rate_qps = 350.0;

  // The plan-sharing stress: a long-tail family table (shallow Zipf over
  // 128 families) against a small plan cache and memo, with *semantic*
  // respellings on top of the syntactic ones. Every "//x..." family has
  // up to three live spellings — itself, an axis-expanded alias, and the
  // root-anchored "/SITE//x..." form. The first two share a canonical
  // key by construction; only the analyzer's anchor/elide rewrites
  // reunite the third with the family's plan. Small caches make the
  // difference measurable as hit-rate, not just entry counts.
  s.tenants = 4;
  s.dataset = "xmark";
  s.dataset_scale = 0.05;
  s.max_inflight = 128;
  s.plan_cache_bytes = 256 << 10;
  s.estimate_memo_bytes = 128 << 10;
  s.accuracy_sample = 0;
  s.service_min_us = 500;
  s.service_exp_us = 4'500;

  s.traffic.tenant_zipf_s = 1.0;
  s.traffic.families_per_tenant = 128;
  s.traffic.query_zipf_s = 0.6;  // long tail: cold families keep coming
  s.traffic.alias_prob = 0.30;
  s.traffic.semantic_alias_prob = 0.50;
  s.traffic.garbage_prob = 0.01;
  s.traffic.unknown_tenant_prob = 0.0;
  s.traffic.p_infinite = 0.90;
  s.traffic.p_expired = 0.01;
  s.traffic.finite_ms = 2'000;
  return s;
}

Scenario IntelAliasStormOff() {
  // Same seed, same traffic, same caches — the control arm. The request
  // stream and every served estimate are bit-identical to the on-arm
  // (the analyzer is semantics-preserving), so the two trajectories
  // share one fingerprint; only the cache-economics columns move.
  Scenario s = IntelAliasStorm();
  s.name = "intel_alias_storm_off";
  s.enable_analyzer = false;
  return s;
}

Scenario SloBurn() {
  Scenario s;
  s.name = "slo_burn";
  s.seed = 606;
  s.duration_us = 12'000'000;
  s.window_us = 500'000;

  s.arrival.kind = ArrivalModel::Kind::kBursty;
  s.arrival.rate_qps = 80.0;
  s.arrival.burst_rate_qps = 3'000.0;
  s.arrival.mean_on_us = 900'000;
  s.arrival.mean_off_us = 1'800'000;

  // The overload shape from bursty_overload_chaos, pointed at the SLO
  // engine: bursts shed hard against 8 virtual slots, the shed +
  // deadline failures feed the availability spec's bad series, and the
  // long off-phases let the fast window recover so the alert resolves
  // inside the horizon (conservation then proves the full loop ran).
  // Shadow sampling stays off for the same fingerprint reason as the
  // chaos scenario; so does per-request timing dependence — the
  // availability spec reads only exact counters.
  s.tenants = 3;
  s.dataset = "dblp";
  s.dataset_scale = 0.05;
  s.max_inflight = 8;
  s.accuracy_sample = 0;
  s.service_min_us = 2'000;
  s.service_exp_us = 28'000;

  s.traffic.tenant_zipf_s = 1.0;
  s.traffic.families_per_tenant = 32;
  s.traffic.query_zipf_s = 1.1;
  s.traffic.alias_prob = 0.05;
  s.traffic.garbage_prob = 0.03;
  s.traffic.unknown_tenant_prob = 0.01;
  s.traffic.p_infinite = 0.85;
  s.traffic.p_expired = 0.02;
  s.traffic.finite_ms = 2'000;

  // Scrape every half second; the availability SLO (and only it — see
  // Scenario::slos on why measured specs are excluded) pages when both
  // the 1.5s and the 6s window burn the 0.1% error budget at 14x/6x.
  // A burst's ~90% failure ratio burns at ~900x, so the alert fires on
  // the first scrape inside a burst and resolves once the fast window
  // is all off-phase.
  s.ts_interval_us = 500'000;
  s.slos = service::DefaultSloSpecs(0.999, 0, 0.0);
  s.slos[0].fast_window_us = 1'500'000;
  s.slos[0].slow_window_us = 6'000'000;
  return s;
}

std::vector<std::string> ScenarioNames() {
  return {"poisson_steady",    "bursty_overload_chaos",
          "diurnal_alias_storm", "live_update_churn",
          "intel_alias_storm", "intel_alias_storm_off",
          "slo_burn"};
}

bool ScenarioByName(const std::string& name, Scenario* out) {
  if (name == "poisson_steady") {
    *out = PoissonSteady();
  } else if (name == "bursty_overload_chaos") {
    *out = BurstyOverloadChaos();
  } else if (name == "diurnal_alias_storm") {
    *out = DiurnalAliasStorm();
  } else if (name == "live_update_churn") {
    *out = LiveUpdateChurn();
  } else if (name == "intel_alias_storm") {
    *out = IntelAliasStorm();
  } else if (name == "intel_alias_storm_off") {
    *out = IntelAliasStormOff();
  } else if (name == "slo_burn") {
    *out = SloBurn();
  } else {
    return false;
  }
  return true;
}

}  // namespace xee::sim
