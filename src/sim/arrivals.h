#ifndef XEE_SIM_ARRIVALS_H_
#define XEE_SIM_ARRIVALS_H_

#include <cstdint>
#include <string_view>

#include "common/rng.h"

namespace xee::sim {

/// Open-loop arrival processes (DESIGN.md §12): the next arrival's
/// timestamp depends only on the seed and the clock, never on how long
/// the service took to answer — the property that distinguishes
/// production bursts from the closed-loop peak-qps benches, where a
/// slow server conveniently slows its own offered load.
struct ArrivalModel {
  enum class Kind {
    kPoisson,  ///< memoryless at `rate_qps`
    kBursty,   ///< on/off modulated: base rate, bursts at `burst_rate_qps`
    kDiurnal,  ///< sinusoidal ramp: rate_qps * (1 + amplitude*sin(2πt/period))
  };
  Kind kind = Kind::kPoisson;

  /// Base (off-state / mean-of-ramp) arrival rate, queries per second.
  double rate_qps = 100.0;

  // kBursty: alternating exponential on/off phases; arrivals come at
  // `burst_rate_qps` during on-phases and `rate_qps` between them.
  double burst_rate_qps = 1000.0;
  uint64_t mean_on_us = 500'000;
  uint64_t mean_off_us = 1'500'000;

  // kDiurnal: a compressed day. amplitude in [0,1); period the virtual
  // "day" length.
  double amplitude = 0.8;
  uint64_t period_us = 10'000'000;
};

std::string_view ArrivalKindName(ArrivalModel::Kind kind);

/// One seeded arrival stream over an ArrivalModel. Stateful (the bursty
/// process carries its phase); equal (model, seed) pairs produce
/// identical arrival sequences.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalModel& model, Rng rng);

  /// Absolute virtual time of the next arrival at or after `now_us`
  /// (strictly after: gaps are clamped to >= 1us so arrivals never
  /// stack infinitely on one instant).
  uint64_t Next(uint64_t now_us);

 private:
  uint64_t NextBursty(uint64_t now_us);
  uint64_t NextDiurnal(uint64_t now_us);

  ArrivalModel model_;
  Rng rng_;
  // kBursty phase machine.
  bool burst_on_ = false;
  uint64_t phase_end_us_ = 0;
};

}  // namespace xee::sim

#endif  // XEE_SIM_ARRIVALS_H_
