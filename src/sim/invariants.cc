#include "sim/invariants.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/fault.h"

namespace xee::sim {
namespace {

std::string Format(const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

void Check(InvariantReport* report, std::string name, bool ok,
           std::string detail) {
  report->properties.push_back(
      Property{std::move(name), ok, std::move(detail)});
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += Format("\\u%04x", c);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string InvariantReport::Summary() const {
  size_t passed = 0;
  for (const Property& p : properties) passed += p.ok ? 1 : 0;
  std::string out = Format("%zu/%zu ok", passed, properties.size());
  for (const Property& p : properties) {
    if (!p.ok) out += Format("; FAIL %s: %s", p.name.c_str(),
                             p.detail.c_str());
  }
  return out;
}

std::string InvariantReport::ToJson() const {
  std::string out = "[";
  for (size_t i = 0; i < properties.size(); ++i) {
    const Property& p = properties[i];
    if (i) out += ",";
    out += Format("{\"name\":\"%s\",\"ok\":%s,\"detail\":\"%s\"}",
                  JsonEscape(p.name).c_str(), p.ok ? "true" : "false",
                  JsonEscape(p.detail).c_str());
  }
  out += "]";
  return out;
}

InvariantReport CheckDrainInvariants(const SimTotals& totals,
                                     service::EstimationService& service,
                                     const Scenario& scenario,
                                     size_t engine_pending) {
  InvariantReport report;

  // 1. Request conservation: every arrival landed in exactly one
  // outcome bucket. The cornerstone — a lost or double-counted request
  // breaks it no matter which path mis-tallied.
  Check(&report, "request-conservation",
        totals.arrivals == totals.Accounted(),
        Format("arrivals=%" PRIu64 " accounted=%" PRIu64 " (ok=%" PRIu64
               " degraded=%" PRIu64 " shed=%" PRIu64 " deadline=%" PRIu64
               " not_found=%" PRIu64 " unavailable=%" PRIu64
               " errored=%" PRIu64 ")",
               totals.arrivals, totals.Accounted(), totals.ok_full,
               totals.ok_degraded, totals.shed, totals.deadline_exceeded,
               totals.not_found, totals.unavailable, totals.errored));

  // 2. Virtual-slot balance: every held admission slot was released by
  // its completion event.
  Check(&report, "slot-balance", totals.holds == totals.releases,
        Format("holds=%" PRIu64 " releases=%" PRIu64, totals.holds,
               totals.releases));

  // 3. The engine has no queued events: drain was complete.
  Check(&report, "engine-drained", engine_pending == 0,
        Format("pending=%zu", engine_pending));

  const service::ServiceStatsSnapshot stats = service.Stats();

  // 4. In-flight gauge at zero: admission slots (real and virtual) all
  // returned. Meaningful in both build modes (0 under XEE_OBS_OFF too).
  Check(&report, "inflight-zero", stats.inflight == 0,
        Format("inflight=%" PRId64, stats.inflight));

#ifndef XEE_OBS_OFF
  // 5. Obs cross-checks: the service's counters agree with the
  // simulator's independent ledger.
  Check(&report, "obs-requests", stats.requests == totals.arrivals,
        Format("service.requests=%" PRIu64 " arrivals=%" PRIu64,
               stats.requests, totals.arrivals));
  Check(&report, "obs-shed",
        stats.shed == totals.shed &&
            stats.shed == stats.shed_single + stats.shed_batch,
        Format("service.shed=%" PRIu64 " (single=%" PRIu64 " batch=%" PRIu64
               ") sim.shed=%" PRIu64,
               stats.shed, stats.shed_single, stats.shed_batch, totals.shed));
  Check(&report, "obs-degraded", stats.degraded == totals.ok_degraded,
        Format("service.degraded=%" PRIu64 " sim.degraded=%" PRIu64,
               stats.degraded, totals.ok_degraded));
  // A memo hit short-circuits before the canonical plan-cache probe, so
  // memo-hit requests touch none of the plan-cache outcome counters —
  // all four outcomes together must still fit under the request count.
  Check(&report, "obs-cache-outcomes",
        stats.exact_hits + stats.canonical_hits + stats.misses +
                stats.memo_hits <=
            stats.requests,
        Format("exact=%" PRIu64 " canonical=%" PRIu64 " miss=%" PRIu64
               " memo=%" PRIu64 " requests=%" PRIu64,
               stats.exact_hits, stats.canonical_hits, stats.misses,
               stats.memo_hits, stats.requests));

  // 6. Accuracy-sample conservation: every started sample reached
  // exactly one terminal counter, and the shadow backlog is empty.
  if (scenario.accuracy_sample > 0) {
    obs::Registry& reg = service.obs();
    const uint64_t started =
        reg.GetCounter("accuracy.samples", "phase=started").value();
    const uint64_t closed =
        reg.GetCounter("accuracy.samples", "phase=recorded").value() +
        reg.GetCounter("accuracy.samples", "phase=skipped_no_document")
            .value() +
        reg.GetCounter("accuracy.samples", "phase=deadline_suppressed")
            .value() +
        reg.GetCounter("accuracy.samples", "phase=backlog_suppressed")
            .value() +
        reg.GetCounter("accuracy.samples", "phase=eval_error").value();
    Check(&report, "accuracy-conservation",
          started == closed && service.accuracy().pending() == 0,
          Format("started=%" PRIu64 " closed=%" PRIu64 " pending=%" PRIu64,
                 started, closed, service.accuracy().pending()));
  }
#endif  // XEE_OBS_OFF

  // 7. Alert conservation (scenarios with SLOs): over the whole run,
  // every fired alert either resolved or is still burning at drain —
  // the state machine cannot lose or double-count a transition. The
  // per-alert registry counters must agree with the engine's own
  // tallies. Trivially 0 == 0 + 0 under XEE_OBS_OFF (the stub engine),
  // which is the correct contract for a compiled-out alerting surface.
  if (!scenario.slos.empty() && service.slo() != nullptr) {
    const uint64_t fired = service.slo()->TotalFired();
    const uint64_t resolved = service.slo()->TotalResolved();
    const uint64_t burning = service.slo()->BurningCount();
    bool counters_agree = true;
#ifndef XEE_OBS_OFF
    obs::Registry& reg = service.obs();
    for (const obs::AlertStatus& a : service.slo()->Alerts()) {
      counters_agree =
          counters_agree &&
          reg.CounterValue("slo.alert", "slo=" + a.slo +
                                            ",transition=fired") == a.fired &&
          reg.CounterValue("slo.alert", "slo=" + a.slo +
                                            ",transition=resolved") ==
              a.resolved;
    }
#endif  // XEE_OBS_OFF
    Check(&report, "alert-conservation",
          fired == resolved + burning && counters_agree,
          Format("fired=%" PRIu64 " resolved=%" PRIu64 " burning=%" PRIu64
                 " counters_agree=%d",
                 fired, resolved, burning, counters_agree ? 1 : 0));
  }

  // 8. Chaos budgets: no armed site fired more than its max_fires, and
  // never more often than it was hit.
  FaultInjector& faults = FaultInjector::Global();
  for (const ChaosWindow& w : scenario.chaos) {
    const uint64_t fires = faults.FireCount(w.site);
    const uint64_t hits = faults.HitCount(w.site);
    Check(&report, "chaos-budget:" + w.site,
          fires <= w.config.max_fires && fires <= hits,
          Format("fires=%" PRIu64 " hits=%" PRIu64 " max_fires=%" PRIu64,
                 fires, hits, w.config.max_fires));
  }

  // 9. Live-maintenance ledgers (after DrainMaintenance).
  if (scenario.live) {
    uint64_t applied = 0, rejected = 0, scheduled = 0, completed = 0,
             abandoned = 0;
    bool drained = true;   // no row still mid-rebuild
    bool settled = true;   // no row left stale (self-heal ran)
    for (const service::MaintenanceRow& r : service.maintenance().Rows()) {
      applied += r.deltas_applied;
      rejected += r.deltas_rejected;
      scheduled += r.rebuilds_scheduled;
      completed += r.rebuilds_completed;
      abandoned += r.rebuilds_abandoned;
      drained = drained && r.state != service::MaintenanceState::kRebuilding;
      settled = settled && r.state != service::MaintenanceState::kStale;
    }

    // Delta conservation: the simulator's own attempt ledger matches
    // the applied + rejected split, and the manager counted the same
    // events.
    Check(&report, "delta-conservation",
          totals.deltas_attempted ==
                  totals.deltas_applied + totals.deltas_rejected &&
              applied == totals.deltas_applied &&
              rejected == totals.deltas_rejected,
          Format("attempted=%" PRIu64 " applied=%" PRIu64 " rejected=%" PRIu64
                 " maint.applied=%" PRIu64 " maint.rejected=%" PRIu64,
                 totals.deltas_attempted, totals.deltas_applied,
                 totals.deltas_rejected, applied, rejected));

    // Rebuild conservation: every non-coalesced schedule terminated —
    // completed or abandoned — and nothing is still in flight after
    // the drain. Retries and restarts are intermediate states, not
    // terminal ones, so they don't appear in the balance.
    Check(&report, "rebuild-ledger",
          drained && scheduled == completed + abandoned,
          Format("scheduled=%" PRIu64 " completed=%" PRIu64
                 " abandoned=%" PRIu64 " drained=%d",
                 scheduled, completed, abandoned, drained ? 1 : 0));

    // Epoch monotonicity: every ApplyDelta publish strictly advanced
    // the tenant's epoch — an estimate can never have been answered
    // from a retired snapshot's cache namespace.
    Check(&report, "epoch-monotonic", totals.epoch_regressions == 0,
          Format("regressions=%" PRIu64, totals.epoch_regressions));

    // Self-healing closed the loop: if any batch exhausted the budget
    // (healthy -> stale), at least one rebuild published and no tenant
    // is still stale at drain. Only meaningful under the auto_rebuild
    // policy — report-only scenarios legitimately end stale.
    if (scenario.auto_rebuild) {
      Check(&report, "self-heal",
            totals.stale_marks == 0 || (completed >= 1 && settled),
            Format("stale_marks=%" PRIu64 " completed=%" PRIu64
                   " settled=%d",
                   totals.stale_marks, completed, settled ? 1 : 0));
    }
  }

  return report;
}

}  // namespace xee::sim
