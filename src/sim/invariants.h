#ifndef XEE_SIM_INVARIANTS_H_
#define XEE_SIM_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "service/service.h"
#include "sim/scenario.h"

namespace xee::sim {

/// The simulator's own ground-truth tallies, bumped once per event on
/// the driving thread (mutex-guarded in workers>0 mode). These are the
/// primary conservation ledger; the service's obs counters are checked
/// *against* them, not trusted instead of them — an XEE_OBS_OFF build
/// still verifies conservation.
struct SimTotals {
  uint64_t arrivals = 0;

  // Every arrival lands in exactly one bucket below.
  uint64_t ok_full = 0;      ///< answered, full fidelity
  uint64_t ok_degraded = 0;  ///< answered with the degraded tag
  uint64_t shed = 0;         ///< kOverloaded from admission control
  uint64_t deadline_exceeded = 0;
  uint64_t not_found = 0;    ///< unknown tenant
  uint64_t unavailable = 0;  ///< quarantined synopsis / fidelity refusal
  uint64_t errored = 0;      ///< parse errors, injected alloc failures, rest

  // Virtual-load slot ledger (workers == 0 mode): every successful
  // HoldInflightSlot must be balanced by one ReleaseInflightSlot.
  uint64_t holds = 0;
  uint64_t releases = 0;

  uint64_t reloads = 0;  ///< RegisterSerialized reload events executed

  // Live-maintenance ledger (all zero unless Scenario::live). Every
  // attempted delta batch is either applied or cleanly rejected;
  // stale_marks counts applied batches that exhausted the patch-error
  // budget (each one is an auto-rebuild trigger under auto_rebuild);
  // epoch_regressions counts ApplyDelta outcomes whose published epoch
  // failed to strictly increase — always a bug, never load-dependent.
  uint64_t deltas_attempted = 0;
  uint64_t deltas_applied = 0;
  uint64_t deltas_rejected = 0;
  uint64_t stale_marks = 0;
  uint64_t epoch_regressions = 0;

  uint64_t Answered() const { return ok_full + ok_degraded; }
  uint64_t Accounted() const {
    return Answered() + shed + deadline_exceeded + not_found + unavailable +
           errored;
  }
};

/// One named conservation property, checked at drain.
struct Property {
  std::string name;
  bool ok = false;
  std::string detail;  ///< the numbers, for the failure message / JSON
};

struct InvariantReport {
  std::vector<Property> properties;

  bool ok() const {
    for (const Property& p : properties) {
      if (!p.ok) return false;
    }
    return true;
  }
  /// "8/8 ok" or "7/8 ok; FAIL request-conservation: ...".
  std::string Summary() const;
  std::string ToJson() const;
};

/// Checks every drain invariant: request conservation, slot balance, a
/// drained engine, obs-counter cross-checks (skipped under XEE_OBS_OFF),
/// accuracy-sample conservation, SLO alert conservation (fired ==
/// resolved + still-burning, for scenarios with SLOs), and per-site
/// chaos budgets. Call only
/// after Engine::Drain() and DrainShadow() — the properties assume a
/// quiesced system.
InvariantReport CheckDrainInvariants(const SimTotals& totals,
                                     service::EstimationService& service,
                                     const Scenario& scenario,
                                     size_t engine_pending);

}  // namespace xee::sim

#endif  // XEE_SIM_INVARIANTS_H_
