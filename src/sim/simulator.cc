#include "sim/simulator.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>

#include "common/check.h"
#include "common/fault.h"
#include "common/thread_pool.h"
#include "datagen/datagen.h"
#include "delta/document_delta.h"
#include "estimator/synopsis.h"
#include "obs/window.h"
#include "service/service.h"
#include "sim/engine.h"
#include "xpath/canonical.h"

namespace xee::sim {
namespace {

std::string Format(const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

std::string HistJson(const obs::HistogramSnapshot& h) {
  return Format("{\"count\":%llu,\"p50\":%llu,\"p90\":%llu,\"p99\":%llu,"
                "\"max\":%llu}",
                static_cast<unsigned long long>(h.count),
                static_cast<unsigned long long>(h.p50),
                static_cast<unsigned long long>(h.p90),
                static_cast<unsigned long long>(h.p99),
                static_cast<unsigned long long>(h.max));
}

/// Exponential draw with mean `mean_us`, clamped to >= 1.
uint64_t ExpUs(Rng& rng, uint64_t mean_us) {
  if (mean_us == 0) return 1;
  const double u = 1.0 - rng.UniformDouble();
  const double v = -std::log(u) * static_cast<double>(mean_us);
  return v < 1.0 ? 1 : static_cast<uint64_t>(v);
}

/// Files `out` into exactly one outcome bucket of both ledgers.
void Classify(const service::EstimateOutcome& out, SimTotals* totals,
              WindowRow* window) {
  uint64_t SimTotals::* t = nullptr;
  uint64_t WindowRow::* w = nullptr;
  if (out.shed) {
    t = &SimTotals::shed;
    w = &WindowRow::shed;
  } else if (out.ok()) {
    t = out.degraded ? &SimTotals::ok_degraded : &SimTotals::ok_full;
    w = out.degraded ? &WindowRow::ok_degraded : &WindowRow::ok_full;
  } else {
    switch (out.status().code()) {
      case StatusCode::kDeadlineExceeded:
        t = &SimTotals::deadline_exceeded;
        w = &WindowRow::deadline_exceeded;
        break;
      case StatusCode::kNotFound:
        t = &SimTotals::not_found;
        w = &WindowRow::not_found;
        break;
      case StatusCode::kUnavailable:
        t = &SimTotals::unavailable;
        w = &WindowRow::unavailable;
        break;
      default:
        t = &SimTotals::errored;
        w = &WindowRow::errored;
        break;
    }
  }
  ++(totals->*t);
  ++(window->*w);
}

void AppendU64(std::string* s, uint64_t v) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%llx,", static_cast<unsigned long long>(v));
  *s += buf;
}

}  // namespace

std::string WindowRow::ToJson(const std::string& scenario) const {
  std::string out = Format(
      "{\"bench\":\"simulate\",\"scenario\":\"%s\",\"t_ms\":%llu,"
      "\"arrivals\":%llu,\"ok\":%llu,\"degraded\":%llu,\"shed\":%llu,"
      "\"deadline\":%llu,\"not_found\":%llu,\"unavailable\":%llu,"
      "\"errored\":%llu,\"vqueue\":%llu",
      scenario.c_str(), static_cast<unsigned long long>(t_end_us / 1000),
      static_cast<unsigned long long>(arrivals),
      static_cast<unsigned long long>(ok_full),
      static_cast<unsigned long long>(ok_degraded),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(not_found),
      static_cast<unsigned long long>(unavailable),
      static_cast<unsigned long long>(errored),
      static_cast<unsigned long long>(vqueue));
  out += Format(",\"deltas\":%llu,\"delta_rejects\":%llu,\"rebuilds\":%llu",
                static_cast<unsigned long long>(deltas_applied),
                static_cast<unsigned long long>(deltas_rejected),
                static_cast<unsigned long long>(rebuilds_done));
  out += Format(
      ",\"alerts_fired\":%llu,\"alerts_resolved\":%llu,"
      "\"alerts_burning\":%llu",
      static_cast<unsigned long long>(alerts_fired),
      static_cast<unsigned long long>(alerts_resolved),
      static_cast<unsigned long long>(alerts_burning));
  if (!fault_fires.empty() || !background_fires.empty()) {
    out += ",\"fault_fires\":{";
    bool first = true;
    for (const auto& list : {&fault_fires, &background_fires}) {
      for (const auto& [site, fires] : *list) {
        if (!first) out += ",";
        first = false;
        out += Format("\"%s\":%llu", site.c_str(),
                      static_cast<unsigned long long>(fires));
      }
    }
    out += "}";
  }
  out += ",\"request_ns\":" + HistJson(request_ns);
  out += ",\"retry_after_ms\":" + HistJson(retry_after_ms);
  out += Format(
      ",\"shadow_recorded\":%llu,\"formula_memo\":%llu,"
      "\"analyzer_pruned\":%llu}",
      static_cast<unsigned long long>(shadow_recorded),
      static_cast<unsigned long long>(formula_memo),
      static_cast<unsigned long long>(analyzer_pruned));
  return out;
}

uint64_t TrajectoryFingerprint(const std::vector<WindowRow>& trajectory,
                               const SimTotals& totals) {
  // Serialize the deterministic columns into a canonical byte string
  // and hash once: cheap, order-sensitive, and easy to reason about.
  std::string bytes;
  bytes.reserve(trajectory.size() * 96);
  for (const WindowRow& r : trajectory) {
    AppendU64(&bytes, r.t_end_us);
    AppendU64(&bytes, r.arrivals);
    AppendU64(&bytes, r.ok_full);
    AppendU64(&bytes, r.ok_degraded);
    AppendU64(&bytes, r.shed);
    AppendU64(&bytes, r.deadline_exceeded);
    AppendU64(&bytes, r.not_found);
    AppendU64(&bytes, r.unavailable);
    AppendU64(&bytes, r.errored);
    AppendU64(&bytes, r.vqueue);
    AppendU64(&bytes, r.deltas_applied);
    AppendU64(&bytes, r.deltas_rejected);
    AppendU64(&bytes, r.alerts_fired);
    AppendU64(&bytes, r.alerts_resolved);
    AppendU64(&bytes, r.alerts_burning);
    for (const auto& [site, fires] : r.fault_fires) {
      bytes += site;
      AppendU64(&bytes, fires);
    }
    bytes += ";";
  }
  AppendU64(&bytes, totals.arrivals);
  AppendU64(&bytes, totals.Accounted());
  AppendU64(&bytes, totals.holds);
  AppendU64(&bytes, totals.releases);
  AppendU64(&bytes, totals.reloads);
  AppendU64(&bytes, totals.deltas_attempted);
  AppendU64(&bytes, totals.deltas_applied);
  AppendU64(&bytes, totals.deltas_rejected);
  // stale_marks and epoch values are rebuild-timing-dependent (a
  // background publish resets the patch-error ledger whenever it lands)
  // and stay out of the fingerprint.
  return xpath::StableHash64(bytes);
}

std::string SimResult::SummaryJson() const {
  std::string out = Format(
      "{\"bench\":\"simulate\",\"scenario\":\"%s\",\"summary\":true,"
      "\"seed\":%llu,\"duration_ms\":%llu,\"windows\":%zu,"
      "\"arrivals\":%llu,\"ok\":%llu,\"degraded\":%llu,\"shed\":%llu,"
      "\"deadline\":%llu,\"not_found\":%llu,\"unavailable\":%llu,"
      "\"errored\":%llu,\"reloads\":%llu,"
      "\"deltas\":%llu,\"delta_rejects\":%llu,\"stale_marks\":%llu,"
      "\"fingerprint\":\"%016llx\",\"invariants_ok\":%s,\"invariants\":",
      scenario.name.c_str(), static_cast<unsigned long long>(scenario.seed),
      static_cast<unsigned long long>(scenario.duration_us / 1000),
      trajectory.size(), static_cast<unsigned long long>(totals.arrivals),
      static_cast<unsigned long long>(totals.ok_full),
      static_cast<unsigned long long>(totals.ok_degraded),
      static_cast<unsigned long long>(totals.shed),
      static_cast<unsigned long long>(totals.deadline_exceeded),
      static_cast<unsigned long long>(totals.not_found),
      static_cast<unsigned long long>(totals.unavailable),
      static_cast<unsigned long long>(totals.errored),
      static_cast<unsigned long long>(totals.reloads),
      static_cast<unsigned long long>(totals.deltas_applied),
      static_cast<unsigned long long>(totals.deltas_rejected),
      static_cast<unsigned long long>(totals.stale_marks),
      static_cast<unsigned long long>(fingerprint),
      invariants.ok() ? "true" : "false");
  out += invariants.ToJson();
  out += "}";
  return out;
}

SimResult RunScenario(const Scenario& sc) {
  FaultInjector& faults = FaultInjector::Global();
  faults.Reset();

  SimResult result;
  result.scenario = sc;

  service::ServiceOptions opt;
  opt.plan_cache_bytes = sc.plan_cache_bytes;
  opt.estimate_memo_bytes = sc.estimate_memo_bytes;
  opt.enable_analyzer = sc.enable_analyzer;
  opt.max_inflight = sc.max_inflight;
  opt.accuracy_sample = sc.accuracy_sample;
  opt.auto_rebuild = sc.auto_rebuild;
  opt.patch_error_budget = sc.patch_error_budget;
  opt.drift_min_samples = sc.drift_min_samples;
  // Flight-data scraping is driver-clocked: the scenario's cadence, fed
  // from the virtual clock below. 0 disables store and SLO engine.
  opt.ts_interval_us = sc.ts_interval_us;
  opt.slos = sc.slos;
  // workers == 0 still needs a (small) pool: shadow evaluation runs
  // there. The determinism analysis in DESIGN.md §12 covers why pool
  // threads cannot perturb the fingerprint in the shipped scenarios.
  opt.threads = sc.workers == 0 ? 1 : sc.workers;
  service::EstimationService svc(opt);

  // Seed plan: one child stream per stochastic component, so e.g. a
  // different arrival model cannot shift which queries the traffic
  // source generates.
  Rng root(sc.seed);
  Rng arrival_rng = root.Split();
  Rng traffic_rng = root.Split();
  Rng service_rng = root.Split();

  // Dataset, synopsis, tenants. All tenants share one synopsis version
  // lineage (same blob), which is what the reload/bitrot machinery
  // stresses; tenant identity still matters for cache keys, Zipf skew,
  // and quarantine blast radius.
  datagen::GenOptions gopt;
  gopt.seed = sc.seed ^ 0xda7a5e3dull;
  gopt.scale = sc.dataset_scale;
  auto doc_result = datagen::GenerateByName(sc.dataset, gopt);
  XEE_CHECK(doc_result.ok());
  auto doc =
      std::make_shared<xml::Document>(std::move(doc_result).value());

  estimator::Synopsis built =
      estimator::Synopsis::Build(*doc, estimator::SynopsisOptions{});
  const std::string blob = built.Serialize();
  auto synopsis =
      std::make_shared<const estimator::Synopsis>(std::move(built));

  std::vector<std::string> tenants;
  tenants.reserve(sc.tenants);
  for (size_t i = 0; i < sc.tenants; ++i) {
    tenants.push_back(Format("%s-t%zu", sc.dataset.c_str(), i));
  }
  for (const std::string& name : tenants) {
    if (sc.live) {
      // Each live tenant owns its document, so regenerate a private
      // copy (Document is move-only by design). RegisterLive builds the
      // synopsis, attaches the materialized ground truth, and publishes
      // the first epoch.
      auto tdoc = datagen::GenerateByName(sc.dataset, gopt);
      XEE_CHECK(tdoc.ok());
      svc.RegisterLive(name, std::move(tdoc).value());
    } else {
      svc.registry().Register(name, synopsis, doc);
    }
  }

  std::vector<std::string> tags;
  tags.reserve(doc->TagCount());
  for (size_t t = 0; t < doc->TagCount(); ++t) {
    tags.push_back(doc->TagNameOf(static_cast<xml::TagId>(t)));
  }

  TrafficModel tm = sc.traffic;
  if (tm.semantic_alias_prob > 0) {
    // Semantic aliasing anchors "//x..." under the document root; the
    // root tag is a dataset property, so fill it here rather than in
    // the scenario table.
    tm.root_name = doc->TagNameOf(doc->Tag(doc->root()));
  }
  TrafficSource traffic(tm, tenants, tags, traffic_rng);
  ArrivalProcess arrivals(sc.arrival, arrival_rng);

  // Chaos arms after the initial registrations: the schedule clock is
  // still 0, so windowed faults stay dormant until the engine advances
  // into their window.
  for (const ChaosWindow& w : sc.chaos) faults.Arm(w.site, w.config);

  Engine eng;
  eng.on_time_advance = [&faults](uint64_t t) { faults.AdvanceTime(t); };

  SimTotals totals;
  uint64_t vqueue = 0;
  WindowRow acc;  // deterministic deltas since the last window close
  std::mutex mu;  // guards totals/acc in workers > 0 mode
  std::optional<ThreadPool> pool;
  if (sc.workers > 0) pool.emplace(sc.workers);

  // Windowed scrape cursors over the service's obs registry.
  obs::Histogram& req_hist = svc.obs().GetHistogram("service.request_ns");
  obs::Histogram& retry_hist =
      svc.obs().GetHistogram("service.retry_after_ms");
  obs::Counter& recorded_ctr =
      svc.obs().GetCounter("accuracy.samples", "phase=recorded");
  obs::Counter& memo_hit_ctr =
      svc.obs().GetCounter("service.estimate_memo", "outcome=hit");
  obs::Counter& pruned_ctr =
      svc.obs().GetCounter("service.analyzer", "outcome=pruned");
  obs::HistogramWindow req_win, retry_win;
  obs::CounterWindow recorded_win, memo_hit_win, pruned_win;
  std::vector<uint64_t> fire_prev(sc.chaos.size(), 0);
  uint64_t rebuilds_prev = 0;
  uint64_t alerts_fired_prev = 0, alerts_resolved_prev = 0;

  auto close_window = [&](uint64_t t_end) {
    WindowRow row;
    {
      std::unique_lock<std::mutex> lock(mu, std::defer_lock);
      if (pool) lock.lock();
      row = acc;
      acc = WindowRow{};
    }
    row.t_end_us = t_end;
    row.vqueue = vqueue;
    for (size_t i = 0; i < sc.chaos.size(); ++i) {
      const uint64_t cum = faults.FireCount(sc.chaos[i].site);
      auto& dest =
          sc.chaos[i].background ? row.background_fires : row.fault_fires;
      dest.emplace_back(sc.chaos[i].site, cum - fire_prev[i]);
      fire_prev[i] = cum;
    }
    if (svc.slo() != nullptr) {
      // Deterministic columns: the SLO engine only moves on ObsTick
      // events, which run at virtual times over counter-derived series.
      const uint64_t fired = svc.slo()->TotalFired();
      const uint64_t resolved = svc.slo()->TotalResolved();
      row.alerts_fired = fired - alerts_fired_prev;
      row.alerts_resolved = resolved - alerts_resolved_prev;
      row.alerts_burning = svc.slo()->BurningCount();
      alerts_fired_prev = fired;
      alerts_resolved_prev = resolved;
    }
    row.request_ns = req_win.Advance(req_hist);
    row.retry_after_ms = retry_win.Advance(retry_hist);
    row.shadow_recorded = recorded_win.Advance(recorded_ctr.value());
    row.formula_memo = memo_hit_win.Advance(memo_hit_ctr.value());
    row.analyzer_pruned = pruned_win.Advance(pruned_ctr.value());
    if (sc.live) {
      uint64_t cum = 0;
      for (const service::MaintenanceRow& r : svc.maintenance().Rows()) {
        cum += r.rebuilds_completed;
      }
      row.rebuilds_done = cum - rebuilds_prev;
      rebuilds_prev = cum;
    }
    result.trajectory.push_back(std::move(row));
  };

  // Flight-data scrape ticks at the scenario's cadence, scheduled
  // before the window closes so a tick sharing a window boundary lands
  // in that window's row (FIFO within a timestamp). Each tick samples
  // the time-series and evaluates the SLOs at the virtual instant.
  if (sc.ts_interval_us > 0) {
    for (uint64_t t = sc.ts_interval_us; t <= sc.duration_us;
         t += sc.ts_interval_us) {
      eng.At(t, [&svc, t] { svc.ObsTick(t); });
    }
  }

  // Window closes, scheduled up front so they dispatch before any
  // same-instant arrival (FIFO within a timestamp).
  for (uint64_t t = sc.window_us;; t += sc.window_us) {
    const uint64_t end = t < sc.duration_us ? t : sc.duration_us;
    eng.At(end, [&close_window, end] { close_window(end); });
    if (end == sc.duration_us) break;
  }

  // Reload cadence: re-register tenants round-robin from the serialized
  // blob (epoch bump, cache invalidation by key epoch; bitrot chaos
  // corrupts the blob in flight when its window is open), then re-attach
  // the ground-truth oracle (a reload would otherwise drop it).
  if (sc.reload_period_us > 0) {
    size_t k = 0;
    for (uint64_t t = sc.reload_period_us; t <= sc.duration_us;
         t += sc.reload_period_us, ++k) {
      const size_t tenant = k % tenants.size();
      eng.At(t, [&svc, &tenants, &blob, &doc, &totals, tenant] {
        svc.registry().RegisterSerialized(tenants[tenant], blob);
        svc.registry().AttachDocument(tenants[tenant], doc);
        ++totals.reloads;
      });
    }
  }

  // Delta bursts (live scenarios): batched mutations applied on the
  // driving thread at virtual times, round-robin across tenants. All
  // draws come from a dedicated stream, and only this thread mutates
  // the live documents, so the applied/rejected trajectory is
  // deterministic even while background rebuilds race the bursts.
  Rng delta_rng = root.Split();
  std::vector<uint64_t> last_epoch(tenants.size(), 0);
  size_t novel_counter = 0;
  auto apply_delta = [&](size_t burst_idx, size_t tenant_idx) {
    const DeltaBurst& b = sc.deltas[burst_idx];
    const std::string& name = tenants[tenant_idx];
    delta::DocumentDelta dd;
    const size_t nodes = svc.maintenance().LiveNodeCount(name);
    for (size_t i = 0; i < b.ops_per_delta; ++i) {
      const double r = delta_rng.UniformDouble();
      if (r < b.novel_prob || nodes < 2) {
        // A chain of tags the base synopsis has never seen: always
        // applies, always charges patch error.
        delta::DeltaOp op;
        op.kind = delta::DeltaOp::Kind::kInsert;
        op.target = nodes < 2 ? 0
                              : static_cast<uint32_t>(
                                    delta_rng.UniformInt(0, nodes - 1));
        const size_t chain = 1 + delta_rng.UniformInt(0, 1);
        for (size_t c = 0; c < chain; ++c) {
          op.subtree.tags.push_back(Format("sim%zu", novel_counter++));
          op.subtree.parent.push_back(static_cast<int32_t>(c) - 1);
        }
        dd.ops.push_back(std::move(op));
      } else if (r < b.novel_prob + b.delete_prob && nodes > 8) {
        delta::DeltaOp op;
        op.kind = delta::DeltaOp::Kind::kDelete;
        op.target =
            static_cast<uint32_t>(delta_rng.UniformInt(1, nodes - 1));
        dd.ops.push_back(std::move(op));
      } else {
        // Sibling clone: the canonical exactly-patchable mutation.
        auto clone = svc.maintenance().CloneOp(
            name,
            static_cast<uint32_t>(delta_rng.UniformInt(1, nodes - 1)));
        if (clone.ok()) dd.ops.push_back(std::move(clone).value());
      }
    }
    const auto out = svc.ApplyDelta(name, dd);
    {
      std::unique_lock<std::mutex> lock(mu, std::defer_lock);
      if (pool) lock.lock();
      ++totals.deltas_attempted;
      if (out.ok()) {
        ++totals.deltas_applied;
        ++acc.deltas_applied;
        if (out.value().budget_exhausted) ++totals.stale_marks;
        if (out.value().epoch <= last_epoch[tenant_idx]) {
          ++totals.epoch_regressions;
        }
        last_epoch[tenant_idx] = out.value().epoch;
      } else {
        ++totals.deltas_rejected;
        ++acc.deltas_rejected;
      }
    }
  };
  if (sc.live) {
    size_t k = 0;
    for (size_t bi = 0; bi < sc.deltas.size(); ++bi) {
      const DeltaBurst& b = sc.deltas[bi];
      for (size_t j = 0; j < b.count; ++j, ++k) {
        const uint64_t t = b.start_us + j * b.period_us;
        if (t > sc.duration_us) break;
        const size_t tenant = k % tenants.size();
        eng.At(t, [&apply_delta, bi, tenant] { apply_delta(bi, tenant); });
      }
    }
  }

  // The open-loop arrival chain: each arrival schedules its successor
  // from the arrival process alone before doing any work, so offered
  // load never depends on service behavior.
  std::function<void()> arrive = [&] {
    const uint64_t now = eng.now_us();
    const uint64_t next = arrivals.Next(now);
    if (next < sc.duration_us) eng.At(next, [&arrive] { arrive(); });

    service::QueryRequest req = traffic.Make();
    // Drawn for every arrival (not just admitted ones) so the stream
    // stays aligned no matter how outcomes fall.
    const uint64_t service_us =
        sc.service_min_us + ExpUs(service_rng, sc.service_exp_us);

    if (!pool) {
      ++totals.arrivals;
      ++acc.arrivals;
      const service::EstimateOutcome out = svc.Estimate(req);
      Classify(out, &totals, &acc);
      if (out.ok()) {
        // The request's *virtual* residency: hold a real admission slot
        // until the completion event, so later arrivals see the load.
        if (svc.HoldInflightSlot()) {
          ++totals.holds;
          ++vqueue;
          eng.At(now + service_us, [&svc, &totals, &vqueue] {
            svc.ReleaseInflightSlot();
            ++totals.releases;
            --vqueue;
          });
        }
      }
    } else {
      // Concurrent mode (TSan): real thread concurrency, no virtual
      // residency, fingerprint not stable — invariants still must hold.
      {
        std::lock_guard<std::mutex> lock(mu);
        ++totals.arrivals;
        ++acc.arrivals;
      }
      pool->Submit([&svc, &mu, &totals, &acc, req] {
        const service::EstimateOutcome out = svc.Estimate(req);
        std::lock_guard<std::mutex> lock(mu);
        Classify(out, &totals, &acc);
      });
    }
  };
  const uint64_t first = arrivals.Next(0);
  if (first < sc.duration_us) eng.At(first, [&arrive] { arrive(); });

  eng.Run(sc.duration_us);
  eng.Drain();  // completions past the arrival horizon
  pool.reset();  // joins the workers; all concurrent tallies are in
  // Shadow first: a late drift verdict may still schedule a rebuild,
  // which the maintenance drain then waits out (retries included).
  svc.DrainShadow();
  if (sc.live) svc.DrainMaintenance(60'000);

  result.totals = totals;
  result.fingerprint = TrajectoryFingerprint(result.trajectory, totals);
  result.invariants = CheckDrainInvariants(totals, svc, sc, eng.pending());
  if (!result.invariants.ok() && svc.flight() != nullptr &&
      svc.flight()->enabled()) {
    // Post-mortem: a violated drain invariant dumps the black-box
    // flight recorder — the event ring right up to the failure — as one
    // parseable JSON line on stderr next to the invariant report.
    std::fprintf(stderr, "flight-recorder dump (%s): %s\n", sc.name.c_str(),
                 svc.FlightzJson().c_str());
  }
  faults.Reset();
  return result;
}

}  // namespace xee::sim
