#include "sim/engine.h"

#include <algorithm>
#include <utility>

namespace xee::sim {

void Engine::At(uint64_t t_us, EventFn fn) {
  heap_.push_back(Event{std::max(t_us, now_us_), seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Engine::AdvanceTo(uint64_t t_us) {
  if (t_us <= now_us_) return;
  now_us_ = t_us;
  if (on_time_advance) on_time_advance(now_us_);
}

void Engine::DispatchNext() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  AdvanceTo(ev.t);
  ev.fn();  // may schedule further events
}

void Engine::Run(uint64_t until_us) {
  while (!heap_.empty() && heap_.front().t <= until_us) DispatchNext();
  AdvanceTo(until_us);
}

void Engine::Drain() {
  while (!heap_.empty()) DispatchNext();
}

}  // namespace xee::sim
