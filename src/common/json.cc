#include "common/json.h"

#include <cmath>
#include <cstdlib>

#include "common/strings.h"

namespace xee::json {

const Value* Value::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view. Positions are byte
/// offsets; errors carry them so a fuzz finding pinpoints the corrupt
/// spot in a multi-kilobyte STATSZ document.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    SkipWs();
    Value v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing garbage after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Err(const std::string& what) const {
    return Status(StatusCode::kParseError,
                  StrFormat("json: %s at byte %zu", what.c_str(), pos_));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!AtEnd()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    if (AtEnd()) return Err("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = Value::Kind::kString;
        return ParseString(&out->str);
      case 't':
        if (!ConsumeWord("true")) return Err("bad literal");
        out->kind = Value::Kind::kBool;
        out->boolean = true;
        return Status::Ok();
      case 'f':
        if (!ConsumeWord("false")) return Err("bad literal");
        out->kind = Value::Kind::kBool;
        out->boolean = false;
        return Status::Ok();
      case 'n':
        if (!ConsumeWord("null")) return Err("bad literal");
        out->kind = Value::Kind::kNull;
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    out->kind = Value::Kind::kObject;
    SkipWs();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWs();
      if (AtEnd() || Peek() != '"') return Err("expected object key");
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      Value member;
      s = ParseValue(&member, depth + 1);
      if (!s.ok()) return s;
      out->members.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Err("expected ',' or '}'");
    }
  }

  Status ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    out->kind = Value::Kind::kArray;
    SkipWs();
    if (Consume(']')) return Status::Ok();
    while (true) {
      SkipWs();
      Value item;
      Status s = ParseValue(&item, depth + 1);
      if (!s.ok()) return s;
      out->items.push_back(std::move(item));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Err("expected ',' or ']'");
    }
  }

  /// One \uXXXX escape's code unit, or -1.
  int HexQuad() {
    if (pos_ + 4 > text_.size()) return -1;
    int v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      int d;
      if (c >= '0' && c <= '9') {
        d = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        d = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        d = c - 'A' + 10;
      } else {
        return -1;
      }
      v = v * 16 + d;
    }
    pos_ += 4;
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  /// Validates one raw (non-escape) UTF-8 sequence starting at pos_ and
  /// appends it; false on malformed, overlong, surrogate, or > U+10FFFF.
  bool ConsumeUtf8(std::string* out) {
    const unsigned char b0 = static_cast<unsigned char>(text_[pos_]);
    size_t len;
    uint32_t cp, min;
    if (b0 < 0x80) {
      len = 1, cp = b0, min = 0;
    } else if ((b0 & 0xe0) == 0xc0) {
      len = 2, cp = b0 & 0x1fu, min = 0x80;
    } else if ((b0 & 0xf0) == 0xe0) {
      len = 3, cp = b0 & 0x0fu, min = 0x800;
    } else if ((b0 & 0xf8) == 0xf0) {
      len = 4, cp = b0 & 0x07u, min = 0x10000;
    } else {
      return false;  // continuation byte or 0xFE/0xFF lead
    }
    if (pos_ + len > text_.size()) return false;
    for (size_t i = 1; i < len; ++i) {
      const unsigned char b = static_cast<unsigned char>(text_[pos_ + i]);
      if ((b & 0xc0) != 0x80) return false;
      cp = (cp << 6) | (b & 0x3fu);
    }
    if (cp < min || cp > 0x10ffff) return false;
    if (cp >= 0xd800 && cp <= 0xdfff) return false;
    out->append(text_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    while (true) {
      if (AtEnd()) return Err("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c < 0x20) return Err("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) return Err("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            const int u = HexQuad();
            if (u < 0) return Err("bad \\u escape");
            uint32_t cp = static_cast<uint32_t>(u);
            if (cp >= 0xdc00 && cp <= 0xdfff) {
              return Err("unpaired low surrogate");
            }
            if (cp >= 0xd800 && cp <= 0xdbff) {  // needs a low surrogate
              if (!ConsumeWord("\\u")) return Err("unpaired high surrogate");
              const int lo = HexQuad();
              if (lo < 0x0dc00 || lo > 0x0dfff) {
                return Err("bad surrogate pair");
              }
              cp = 0x10000 + ((cp - 0xd800) << 10) +
                   (static_cast<uint32_t>(lo) - 0xdc00);
            }
            AppendUtf8(cp, out);
            break;
          }
          default:
            return Err("unknown escape");
        }
        continue;
      }
      if (!ConsumeUtf8(out)) return Err("invalid UTF-8 in string");
    }
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    Consume('-');
    if (AtEnd()) return Err("bad number");
    if (Consume('0')) {
      // no leading zeros
    } else if (Peek() >= '1' && Peek() <= '9') {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    } else {
      return Err("bad number");
    }
    if (Consume('.')) {
      if (AtEnd() || Peek() < '0' || Peek() > '9') return Err("bad fraction");
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') return Err("bad exponent");
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    const std::string repr(text_.substr(start, pos_ - start));
    out->kind = Value::Kind::kNumber;
    out->number = std::strtod(repr.c_str(), nullptr);
    if (!std::isfinite(out->number)) return Err("number out of range");
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace xee::json
