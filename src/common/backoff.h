#ifndef XEE_COMMON_BACKOFF_H_
#define XEE_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "common/rng.h"

namespace xee {

/// Shape of a jittered exponential backoff schedule.
struct BackoffPolicy {
  uint64_t initial_ms = 1;    ///< first delay (before jitter)
  uint64_t max_ms = 1000;     ///< ceiling for the un-jittered delay
  double multiplier = 2.0;    ///< growth per attempt (>= 1)
  /// Jitter fraction in [0,1]: each delay is drawn uniformly from
  /// [d*(1-jitter), d]. Jitter decorrelates clients that were shed by
  /// the same overload spike, so they do not retry in lockstep.
  double jitter = 0.5;
};

/// Client-side retry pacing for requests the service shed with
/// kOverloaded (see EstimateOutcome::retry_after_ms). Deterministic:
/// equal (policy, seed) produce equal delay sequences, so retry tests
/// and the chaos fuzzer replay exactly.
///
/// Usage:
///
///   Backoff backoff({}, /*seed=*/42);
///   while (true) {
///     auto out = service.Estimate(req);
///     if (!out.shed) break;
///     SleepMs(backoff.NextDelayMs(out.retry_after_ms));
///   }
///
/// Not thread-safe; one Backoff per retry loop.
class Backoff {
 public:
  Backoff(const BackoffPolicy& policy, uint64_t seed)
      : policy_(policy), rng_(seed) {
    policy_.multiplier = std::max(1.0, policy_.multiplier);
    policy_.jitter = std::clamp(policy_.jitter, 0.0, 1.0);
    policy_.max_ms = std::max(policy_.max_ms, policy_.initial_ms);
    Reset();
  }

  /// The next delay: jittered exponential, never below the server's
  /// retry-after hint (pass 0 when there is none).
  uint64_t NextDelayMs(uint64_t server_hint_ms = 0) {
    const double base = next_ms_;
    next_ms_ = std::min(static_cast<double>(policy_.max_ms),
                        next_ms_ * policy_.multiplier);
    ++attempts_;
    const double lo = base * (1.0 - policy_.jitter);
    const double jittered = lo + (base - lo) * rng_.UniformDouble();
    const auto delay = static_cast<uint64_t>(jittered);
    return std::max(delay, server_hint_ms);
  }

  /// Starts the schedule over after a success.
  void Reset() {
    next_ms_ = static_cast<double>(policy_.initial_ms);
    attempts_ = 0;
  }

  size_t attempts() const { return attempts_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  double next_ms_ = 1;
  size_t attempts_ = 0;
};

}  // namespace xee

#endif  // XEE_COMMON_BACKOFF_H_
