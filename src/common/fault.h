#ifndef XEE_COMMON_FAULT_H_
#define XEE_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/rng.h"

namespace xee {

/// How an armed fault site behaves. All randomness comes from a seeded
/// Rng stream per site, so a single-threaded run replays identically
/// from (site order, seed); concurrent chaos should arm with
/// probability 1 so hit interleaving cannot change what fires.
struct FaultConfig {
  /// Chance that a hit past `skip` fires (clamped to [0,1]).
  double probability = 1.0;
  /// Site-specific argument delivered to the firing site: sleep
  /// milliseconds for slow workers, corruption position/bit for
  /// bit-rot, unused elsewhere.
  uint64_t payload = 0;
  /// The first `skip` hits never fire (lets a test survive early
  /// checkpoints and fail a later one).
  uint64_t skip = 0;
  /// Stop firing after this many fires (the site stays armed and keeps
  /// counting hits).
  uint64_t max_fires = UINT64_MAX;
  /// Seed of the site's probability stream.
  uint64_t seed = 1;
  /// Time-windowed schedule: the site only fires while the injector's
  /// schedule clock (AdvanceTime) reads inside [window_start,
  /// window_end). The defaults cover all of time, so plain arms keep
  /// the purely probabilistic behavior. Clock units are the driver's
  /// choice — the traffic simulator (src/sim/) feeds virtual
  /// microseconds, a wall-clock driver can feed epoch milliseconds —
  /// and windows are interpreted in whatever the driver feeds. Hits
  /// outside the window are counted but never fire and never consume a
  /// skip slot or probability draw, so a window shifts *when* a
  /// schedule fires without changing *what* it fires once active.
  uint64_t window_start = 0;
  uint64_t window_end = UINT64_MAX;
};

/// Deterministic fault-injection registry (DESIGN.md §9). Production
/// code marks *named sites* — "deadline.expire", "pool.slow-worker",
/// "estimator.alloc", "registry.bitrot" — by calling FaultFires(site);
/// tests and the chaos fuzzer arm sites to force allocation failure,
/// deadline expiry, slow workers, and synopsis bit-rot without
/// plumbing test hooks through every API.
///
/// Cost when idle: FaultFires() is a single relaxed atomic load when
/// nothing is armed — safe to leave in release hot paths.
///
/// Thread-safety: all methods may be called from any thread; per-site
/// state is mutex-guarded (armed sites are off the hot path by
/// definition).
class FaultInjector {
 public:
  /// The process-wide registry every fault site consults.
  static FaultInjector& Global();

  /// Arms (or re-arms, resetting counters) `site`.
  void Arm(const std::string& site, const FaultConfig& config = {});
  /// Disarms `site`; its hit/fire counters are forgotten.
  void Disarm(const std::string& site);
  /// Disarms every site and rewinds the schedule clock to 0.
  void Reset();

  /// Sets the schedule clock consulted by time-windowed configs
  /// (FaultConfig::window_start/window_end). Drivers normally advance
  /// it monotonically — the simulator calls this on every virtual-time
  /// step — but the clock is simply whatever was last set, so tests may
  /// rewind it. A relaxed atomic store: safe (and cheap) to call from
  /// any thread, including per-event in a hot simulation loop.
  void AdvanceTime(uint64_t now) {
    schedule_now_.store(now, std::memory_order_relaxed);
  }
  uint64_t ScheduleTime() const {
    return schedule_now_.load(std::memory_order_relaxed);
  }

  /// True when at least one site is armed (the fast gate).
  bool any_armed() const {
    return armed_.load(std::memory_order_relaxed) > 0;
  }

  /// Counts a hit at `site`; returns true when the fault fires this
  /// hit, copying the armed payload into `payload` when non-null.
  /// Unarmed sites never fire.
  bool Fire(std::string_view site, uint64_t* payload = nullptr);

  /// Observer invoked (under the injector mutex — keep it cheap) each
  /// time any site fires, with the site name and the schedule clock.
  /// One observer at a time, last install wins; the flight recorder
  /// wiring in the serving layer uses this to log fault fires into the
  /// black-box ring. ClearFireObserver only clears when `ctx` still
  /// matches, so a dying service cannot unhook a newer one's observer.
  using FireObserver = void (*)(void* ctx, std::string_view site,
                                uint64_t schedule_now);
  void SetFireObserver(FireObserver fn, void* ctx);
  void ClearFireObserver(void* ctx);

  /// Observability for tests: fires/hits since the site was armed
  /// (0 for unarmed sites).
  uint64_t FireCount(const std::string& site) const;
  uint64_t HitCount(const std::string& site) const;

 private:
  struct Site {
    FaultConfig config;
    Rng rng;
    uint64_t hits = 0;
    /// Hits that landed inside the schedule window — the count `skip`
    /// is measured against, so windows shift schedules in time without
    /// re-interpreting their skip budgets.
    uint64_t windowed_hits = 0;
    uint64_t fires = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Site, std::less<>> sites_;  // guarded by mu_
  FireObserver observer_ = nullptr;                 // guarded by mu_
  void* observer_ctx_ = nullptr;                    // guarded by mu_
  std::atomic<size_t> armed_{0};
  std::atomic<uint64_t> schedule_now_{0};
};

/// The one-liner production sites use:
///
///   if (FaultFires("registry.bitrot", &payload)) { ...corrupt... }
inline bool FaultFires(std::string_view site, uint64_t* payload = nullptr) {
  FaultInjector& g = FaultInjector::Global();
  if (!g.any_armed()) return false;
  return g.Fire(site, payload);
}

/// RAII arming for tests: arms on construction, disarms on destruction
/// so a failing test cannot leak an armed fault into the next one.
class ScopedFault {
 public:
  ScopedFault(std::string site, const FaultConfig& config = {})
      : site_(std::move(site)) {
    FaultInjector::Global().Arm(site_, config);
  }
  ~ScopedFault() { FaultInjector::Global().Disarm(site_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

}  // namespace xee

#endif  // XEE_COMMON_FAULT_H_
