#ifndef XEE_COMMON_JSON_H_
#define XEE_COMMON_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace xee::json {

/// A parsed JSON document node. Small and strict by design: the library
/// exists so tests and fuzz oracles can *validate* the JSON this repo
/// emits (STATSZ / TRACEZ / ACCZ) and assert scraper-visible schema,
/// not to be a general serialization stack.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;                                   ///< kString
  std::vector<Value> items;                          ///< kArray
  std::vector<std::pair<std::string, Value>> members;  ///< kObject, in order

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup (first match); nullptr when absent or when
  /// this value is not an object.
  const Value* Find(std::string_view key) const;
  bool Has(std::string_view key) const { return Find(key) != nullptr; }
};

/// Parses `text` as one strict RFC 8259 JSON document: no trailing
/// garbage, no comments, numbers by the JSON grammar, \uXXXX escapes
/// with correctly paired surrogates, and — the part the export fuzzer
/// leans on — every string must be valid UTF-8. kParseError (with a
/// byte offset in the message) on any violation.
Result<Value> Parse(std::string_view text);

}  // namespace xee::json

#endif  // XEE_COMMON_JSON_H_
