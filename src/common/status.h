#ifndef XEE_COMMON_STATUS_H_
#define XEE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace xee {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< Caller passed something structurally wrong.
  kParseError,         ///< Malformed XML or XPath input.
  kNotFound,           ///< Lookup key absent (tag, path id, ...).
  kUnsupported,        ///< Valid input outside the implemented fragment.
  kInternal,           ///< Invariant violation surfaced as a status.
  kDeadlineExceeded,   ///< Request deadline passed before the answer.
  kOverloaded,         ///< Shed by admission control; retry with backoff.
  kUnavailable,        ///< Resource quarantined or temporarily unusable.
};

/// Returns a short lowercase name for `code` (e.g. "parse-error").
const char* StatusCodeName(StatusCode code);

/// Lightweight success-or-error value. Library entry points that can fail
/// on user input return Status (or Result<T>); exceptions are not used.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs an error status; `code` must not be kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    XEE_CHECK(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "ok" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// error result aborts (programmer error).
template <typename T>
class Result {
 public:
  /// Constructs a success result holding `value`.
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Constructs an error result; `status` must be an error.
  Result(Status status) : v_(std::move(status)) {  // NOLINT
    XEE_CHECK(!std::get<Status>(v_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  /// Returns the error status, or OK when this result holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(v_);
  }

  const T& value() const& {
    XEE_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(v_);
  }
  T& value() & {
    XEE_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(v_);
  }
  T&& value() && {
    XEE_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(v_));
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace xee

#endif  // XEE_COMMON_STATUS_H_
