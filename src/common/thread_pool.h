#ifndef XEE_COMMON_THREAD_POOL_H_
#define XEE_COMMON_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace xee {

/// A fixed-size worker pool executing submitted closures in FIFO order.
///
/// Thread-safety contract: Submit() and ParallelFor() may be called from
/// any thread, including concurrently. The destructor drains the queue
/// (every submitted task runs) and joins the workers; no task may Submit
/// to the pool it runs on after destruction has begun.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution on some worker.
  void Submit(std::function<void()> fn);

  /// Runs fn(0..n-1) across the workers and blocks until all calls have
  /// returned. Tasks are batched into contiguous index chunks to keep
  /// per-task overhead low for fine-grained work.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t size() const { return workers_.size(); }

  /// std::thread::hardware_concurrency with a fallback of 1.
  static size_t DefaultThreads();

  /// Fault site (common/fault.h): when armed, a worker sleeps for
  /// `payload` milliseconds before running each task — chaos tests use
  /// it to simulate slow or wedged workers without real load.
  static constexpr std::string_view kSlowWorkerFaultSite = "pool.slow-worker";

 private:
  /// A queued closure plus its enqueue time, so the worker can report
  /// queue-wait latency (pool.queue_wait_ns in the global obs registry;
  /// the timestamp is skipped entirely under XEE_OBS_OFF).
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace xee

#endif  // XEE_COMMON_THREAD_POOL_H_
