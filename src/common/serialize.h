#ifndef XEE_COMMON_SERIALIZE_H_
#define XEE_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace xee {

/// Append-only little-endian binary encoder used by synopsis
/// serialization. All integers are fixed-width; strings and blobs are
/// length-prefixed with u32.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }

  const std::string& data() const& { return out_; }
  std::string data() && { return std::move(out_); }

 private:
  void PutRaw(const void* p, size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string out_;
};

/// Bounds-checked decoder matching BinaryWriter. All getters return an
/// error Status on truncation instead of reading out of bounds.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetDouble(double* v) { return GetRaw(v, sizeof(*v)); }
  Status GetString(std::string* s) {
    uint32_t len = 0;
    Status st = GetU32(&len);
    if (!st.ok()) return st;
    if (len > Remaining()) return Truncated();
    *s = std::string(data_.substr(pos_, len));
    pos_ += len;
    return Status::Ok();
  }

  size_t Remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status GetRaw(void* p, size_t n) {
    if (n > Remaining()) return Truncated();
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return Status::Ok();
  }
  static Status Truncated() {
    return Status(StatusCode::kParseError, "truncated binary data");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace xee

#endif  // XEE_COMMON_SERIALIZE_H_
