#include "common/status.h"

namespace xee {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kParseError:
      return "parse-error";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace xee
