#include "common/fault.h"

#include "obs/metrics.h"

namespace xee {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& site, const FaultConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sites_.insert_or_assign(
      site,
      Site{config, Rng(config.seed), /*hits=*/0, /*windowed_hits=*/0,
           /*fires=*/0});
  (void)it;
  if (inserted) armed_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sites_.erase(site) > 0) {
    armed_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.fetch_sub(sites_.size(), std::memory_order_relaxed);
  sites_.clear();
  schedule_now_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::Fire(std::string_view site, uint64_t* payload) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  Site& s = it->second;
  ++s.hits;
  // The schedule window gates everything below it: a hit outside the
  // window counts as a hit but consumes neither a skip slot nor a
  // probability draw, so the in-window behavior is independent of when
  // the window opens.
  const uint64_t now = schedule_now_.load(std::memory_order_relaxed);
  if (now < s.config.window_start || now >= s.config.window_end) {
    return false;
  }
  ++s.windowed_hits;
  if (s.windowed_hits <= s.config.skip) return false;
  if (s.fires >= s.config.max_fires) return false;
  if (!s.rng.Bernoulli(s.config.probability)) return false;
  ++s.fires;
  // Fired injections are events worth seeing next to the metrics they
  // perturb; labeled by site in the global registry (monotonic across
  // Arm/Reset cycles, unlike the per-site `fires`).
  obs::Registry::Global().GetCounter("fault.fires", site).Inc();
  if (observer_ != nullptr) observer_(observer_ctx_, site, now);
  if (payload != nullptr) *payload = s.config.payload;
  return true;
}

void FaultInjector::SetFireObserver(FireObserver fn, void* ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = fn;
  observer_ctx_ = ctx;
}

void FaultInjector::ClearFireObserver(void* ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  if (observer_ctx_ == ctx) {
    observer_ = nullptr;
    observer_ctx_ = nullptr;
  }
}

uint64_t FaultInjector::FireCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

uint64_t FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

}  // namespace xee
