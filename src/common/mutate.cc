#include "common/mutate.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace xee {
namespace {

/// Byte values over-represented in format edge cases: zero, all-ones,
/// sign boundaries, ASCII structure characters, and small counts.
constexpr uint8_t kInterestingBytes[] = {0x00, 0x01, 0x02, 0x7f, 0x80,
                                         0xfe, 0xff, '<',  '>',  '"',
                                         '/',  '[',  ']',  '\\'};

/// 32-bit values aimed at length/count fields: zero, one, maxima, and
/// the bounds-check thresholds used by the synopsis format.
constexpr uint32_t kInterestingU32[] = {0,          1,          2,
                                        0x7fffffff, 0x80000000, 0xffffffff,
                                        1u << 16,   1u << 20,   1u << 24};

}  // namespace

void MutateOnce(Rng& rng, std::string* data) {
  std::string& d = *data;
  if (d.empty()) {
    // Only insertion applies to an empty input.
    const size_t n = 1 + rng.Index(8);
    for (size_t i = 0; i < n; ++i) {
      d.push_back(static_cast<char>(rng.Next()));
    }
    return;
  }
  switch (rng.Index(8)) {
    case 0: {  // flip one bit
      const size_t pos = rng.Index(d.size());
      d[pos] = static_cast<char>(
          static_cast<uint8_t>(d[pos]) ^ (1u << rng.Index(8)));
      break;
    }
    case 1: {  // overwrite one byte with an interesting value
      d[rng.Index(d.size())] = static_cast<char>(
          kInterestingBytes[rng.Index(std::size(kInterestingBytes))]);
      break;
    }
    case 2: {  // overwrite one byte with a random value
      d[rng.Index(d.size())] = static_cast<char>(rng.Next());
      break;
    }
    case 3: {  // truncate at a random point
      d.resize(rng.Index(d.size()));
      break;
    }
    case 4: {  // erase a span
      const size_t pos = rng.Index(d.size());
      const size_t len = 1 + rng.Index(std::min<size_t>(16, d.size() - pos));
      d.erase(pos, len);
      break;
    }
    case 5: {  // duplicate a span in place
      const size_t pos = rng.Index(d.size());
      const size_t len = 1 + rng.Index(std::min<size_t>(16, d.size() - pos));
      d.insert(pos, d.substr(pos, len));
      break;
    }
    case 6: {  // insert random bytes
      const size_t pos = rng.Index(d.size() + 1);
      std::string ins;
      const size_t len = 1 + rng.Index(8);
      for (size_t i = 0; i < len; ++i) {
        ins.push_back(static_cast<char>(rng.Next()));
      }
      d.insert(pos, ins);
      break;
    }
    default: {  // overwrite a little-endian u32 with an interesting value
      if (d.size() < sizeof(uint32_t)) {
        d[rng.Index(d.size())] = static_cast<char>(rng.Next());
        break;
      }
      const size_t pos = rng.Index(d.size() - sizeof(uint32_t) + 1);
      const uint32_t v = kInterestingU32[rng.Index(std::size(kInterestingU32))];
      std::memcpy(d.data() + pos, &v, sizeof(v));
      break;
    }
  }
}

void Mutate(Rng& rng, std::string* data, size_t edits) {
  for (size_t i = 0; i < edits; ++i) MutateOnce(rng, data);
}

}  // namespace xee
