#ifndef XEE_COMMON_MUTATE_H_
#define XEE_COMMON_MUTATE_H_

#include <cstddef>
#include <string>

#include "common/rng.h"

namespace xee {

/// Deterministic byte/structure mutation helpers for fuzzing. Each call
/// applies one randomly chosen edit to `data`: a bit flip, a byte
/// overwrite with an "interesting" value (0x00, 0xff, boundary bytes),
/// a truncation, a span erase or duplication, a random insertion, or a
/// 32-bit little-endian integer overwrite (aimed at the length/count
/// fields of binary formats). Identical Rng state and input produce the
/// identical mutant. An empty string can only grow (insertion).
void MutateOnce(Rng& rng, std::string* data);

/// Applies `edits` successive MutateOnce edits.
void Mutate(Rng& rng, std::string* data, size_t edits);

}  // namespace xee

#endif  // XEE_COMMON_MUTATE_H_
