#ifndef XEE_COMMON_CHECK_H_
#define XEE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Internal invariant-checking macros.
///
/// XEE_CHECK aborts the process with a source location when an invariant
/// that must hold regardless of build mode is violated. Library code uses
/// these for programmer errors only; recoverable conditions (bad input
/// documents, malformed queries) are reported through xee::Status instead.

#define XEE_CHECK(cond)                                                    \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "XEE_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define XEE_CHECK_MSG(cond, msg)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "XEE_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, (msg));                      \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#endif  // XEE_COMMON_CHECK_H_
