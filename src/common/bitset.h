#ifndef XEE_COMMON_BITSET_H_
#define XEE_COMMON_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/check.h"

namespace xee {

/// Word-parallel kernels over raw uint64_t spans, shared by `PathIdBits`
/// and anything else that walks path-id words (the structural join, the
/// collapsed pid tree). Each kernel processes 64-byte blocks (8 words) per
/// iteration with a scalar tail, which compilers autovectorize cleanly; a
/// straight scalar reference of each kernel is exported alongside so
/// differential tests can pin the two bitwise-equal over fuzzed inputs.
namespace bitkernel {

/// Words per 64-byte block.
inline constexpr size_t kBlockWords = 8;

size_t PopCountWords(const uint64_t* w, size_t n);
size_t AndPopCountWords(const uint64_t* a, const uint64_t* b, size_t n);
bool IsZeroWords(const uint64_t* w, size_t n);
/// True iff (a & b) == b word-wise, i.e. every set bit of b is set in a.
bool CoversWords(const uint64_t* a, const uint64_t* b, size_t n);
void OrWords(uint64_t* dst, const uint64_t* src, size_t n);
void AndWords(uint64_t* dst, const uint64_t* a, const uint64_t* b, size_t n);

/// Scalar one-word-at-a-time references for differential testing.
size_t PopCountWordsScalar(const uint64_t* w, size_t n);
size_t AndPopCountWordsScalar(const uint64_t* a, const uint64_t* b, size_t n);
bool IsZeroWordsScalar(const uint64_t* w, size_t n);
bool CoversWordsScalar(const uint64_t* a, const uint64_t* b, size_t n);
void OrWordsScalar(uint64_t* dst, const uint64_t* src, size_t n);
void AndWordsScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                    size_t n);

}  // namespace bitkernel

/// A fixed-width dynamic bit sequence used to represent path ids.
///
/// Bit positions are 1-based, matching the paper: bit `i` corresponds to
/// the root-to-leaf path whose encoding-table integer is `i`, and the
/// "leftmost" bit of the paper's bit strings is bit 1. Width is the number
/// of distinct root-to-leaf paths in the document and is identical for all
/// ids of one document; binary operations require equal widths.
///
/// Invariant: bits past `num_bits()` in the last storage word are always
/// zero. Every mutating operation preserves it (`TailIsClear` checks it),
/// so popcount/compare kernels never need per-call masking.
class PathIdBits {
 public:
  /// Constructs an all-zero id of `num_bits` bits (num_bits may be 0).
  explicit PathIdBits(size_t num_bits = 0)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  /// Parses a string of '0'/'1' characters, leftmost character = bit 1.
  static PathIdBits FromBitString(const std::string& bits);

  size_t num_bits() const { return num_bits_; }

  /// Sets 1-based bit `i` to 1.
  void Set(size_t i) {
    XEE_CHECK(i >= 1 && i <= num_bits_);
    words_[(i - 1) >> 6] |= uint64_t{1} << ((i - 1) & 63);
  }

  /// Returns the value of 1-based bit `i`.
  bool Test(size_t i) const {
    XEE_CHECK(i >= 1 && i <= num_bits_);
    return (words_[(i - 1) >> 6] >> ((i - 1) & 63)) & 1;
  }

  /// Changes the width to `num_bits`. Existing bits at positions that
  /// survive are preserved; bits past the new width are cleared so the
  /// tail-word invariant holds (a later grow must not resurrect them).
  void Resize(size_t num_bits);

  /// In-place bit-or with `other` (equal widths required).
  void OrWith(const PathIdBits& other);

  /// Returns true iff no bit is set.
  bool IsZero() const;

  /// Number of set bits.
  size_t PopCount() const;

  /// Number of set bits in `*this & other` without materializing the
  /// intersection (equal widths required).
  size_t AndPopCount(const PathIdBits& other) const;

  /// True iff every set bit of `other` is also set here (subset-or-equal).
  /// This is the paper's `(PidX & PidY) == PidY`.
  bool Covers(const PathIdBits& other) const;

  /// The paper's strict containment: Covers(other) and *this != other.
  bool Contains(const PathIdBits& other) const {
    return Covers(other) && !(*this == other);
  }

  /// Calls `fn(i)` for each set bit position i in increasing order.
  void ForEachSetBit(const std::function<void(size_t)>& fn) const;

  /// Returns the set bit positions in increasing order.
  std::vector<uint32_t> SetBits() const;

  /// Renders as a '0'/'1' string with bit 1 leftmost (paper notation).
  std::string ToBitString() const;

  /// Raw storage words, little-endian bit order within a word. Exposed for
  /// the kernel differential tests; bits past num_bits() are zero.
  const std::vector<uint64_t>& words() const { return words_; }

  /// True iff the tail-word invariant holds (bits past num_bits are 0).
  bool TailIsClear() const;

  friend PathIdBits operator|(const PathIdBits& a, const PathIdBits& b) {
    PathIdBits r = a;
    r.OrWith(b);
    return r;
  }
  friend PathIdBits operator&(const PathIdBits& a, const PathIdBits& b);

  friend bool operator==(const PathIdBits& a, const PathIdBits& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }
  /// Lexicographic-by-word order; total order suitable for std::map keys.
  friend bool operator<(const PathIdBits& a, const PathIdBits& b);

  /// Bit-string lexicographic order (bit 1 compared first, '0' < '1').
  /// This is the order of trie leaves in the path-id binary tree, so path
  /// id integers are assigned in this order (paper Section 6, Figure 6).
  static bool LexLess(const PathIdBits& a, const PathIdBits& b);

  /// Hash functor for unordered containers keyed by PathIdBits.
  struct Hash {
    size_t operator()(const PathIdBits& b) const;
  };

 private:
  size_t num_bits_;
  std::vector<uint64_t> words_;
};

}  // namespace xee

#endif  // XEE_COMMON_BITSET_H_
