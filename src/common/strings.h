#ifndef XEE_COMMON_STRINGS_H_
#define XEE_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xee {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a byte count as "123 B" / "1.2 KB" / "3.4 MB".
std::string HumanBytes(uint64_t bytes);

}  // namespace xee

#endif  // XEE_COMMON_STRINGS_H_
