#ifndef XEE_COMMON_RNG_H_
#define XEE_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace xee {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library (data generators, workload
/// generator) takes an explicit Rng so that datasets and experiments are
/// reproducible from a seed; nothing reads global entropy.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Forks an independent child generator, advancing this stream by one
  /// draw. Splitting lets one master seed drive several components (the
  /// fuzz harness gives each iteration and each generator its own child)
  /// without the components perturbing each other's sequences.
  Rng Split() { return Rng(Next()); }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  uint64_t UniformInt(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [1, n] with exponent `s` (s=0 is uniform).
  /// Used to model skewed tag/sibling frequencies in the data generators.
  uint64_t Zipf(uint64_t n, double s);

  /// Picks a uniformly random element index of a non-empty size.
  size_t Index(size_t size) {
    XEE_CHECK(size > 0);
    return static_cast<size_t>(UniformInt(0, size - 1));
  }

  /// Samples an index according to non-negative `weights` (not all zero).
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
};

}  // namespace xee

#endif  // XEE_COMMON_RNG_H_
