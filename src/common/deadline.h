#ifndef XEE_COMMON_DEADLINE_H_
#define XEE_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>
#include <string_view>

#include "common/fault.h"

namespace xee {

/// A point in steady time after which a request's answer is worthless
/// to its caller — the estimator is a selectivity oracle inside an
/// optimizer and must answer fast or not at all. Deadlines are checked
/// cooperatively (service admission, estimator step/join boundaries);
/// work past the deadline is abandoned with kDeadlineExceeded, never
/// blocked on.
///
/// Copyable value type; the default constructed deadline is infinite.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Fault site consulted by finite deadlines (see common/fault.h):
  /// arming it forces HasExpired() to report expiry, so chaos tests
  /// drive the deadline machinery without racing the real clock.
  /// Infinite deadlines ignore it — a caller who never asked for a
  /// deadline cannot be expired by fault injection.
  static constexpr std::string_view kFaultSite = "deadline.expire";

  Deadline() : tp_(Clock::time_point::max()) {}

  /// No deadline: never expires.
  static Deadline Infinite() { return Deadline(); }

  /// Expires once `d` has elapsed from now (saturating; a huge `d` is
  /// effectively infinite but still finite for fault injection).
  static Deadline After(Clock::duration d) {
    const Clock::time_point now = Clock::now();
    if (d >= Clock::time_point::max() - now) {
      return Deadline(Clock::time_point::max() - Clock::duration(1));
    }
    return Deadline(now + d);
  }
  static Deadline AfterMs(uint64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }
  static Deadline AfterMicros(uint64_t us) {
    return After(std::chrono::microseconds(us));
  }

  /// A deadline that has already passed — for tests and for callers
  /// probing the shed/reject paths.
  static Deadline AlreadyExpired() { return Deadline(Clock::time_point::min()); }

  bool infinite() const { return tp_ == Clock::time_point::max(); }

  /// True once the deadline has passed (or the kFaultSite fault fires,
  /// for finite deadlines).
  bool HasExpired() const {
    if (infinite()) return false;
    if (FaultFires(kFaultSite)) return true;
    return Clock::now() >= tp_;
  }

  /// Time left before expiry; zero when expired, Clock::duration::max()
  /// when infinite. A hint only — HasExpired() is the authority.
  Clock::duration Remaining() const {
    if (infinite()) return Clock::duration::max();
    const Clock::time_point now = Clock::now();
    return now >= tp_ ? Clock::duration::zero() : tp_ - now;
  }

 private:
  explicit Deadline(Clock::time_point tp) : tp_(tp) {}
  Clock::time_point tp_;
};

}  // namespace xee

#endif  // XEE_COMMON_DEADLINE_H_
