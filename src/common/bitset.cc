#include "common/bitset.h"

#include <bit>

namespace xee {
namespace bitkernel {

// The block kernels accumulate across 8 words (one 64-byte line) before
// branching, so the inner loop is straight-line word ops the compiler can
// keep in registers or vectorize; only the reductions with early-exit
// semantics (IsZero/Covers) test once per block.

size_t PopCountWords(const uint64_t* w, size_t n) {
  size_t total = 0;
  size_t i = 0;
  for (; i + kBlockWords <= n; i += kBlockWords) {
    size_t block = 0;
    for (size_t j = 0; j < kBlockWords; ++j) {
      block += static_cast<size_t>(std::popcount(w[i + j]));
    }
    total += block;
  }
  for (; i < n; ++i) total += static_cast<size_t>(std::popcount(w[i]));
  return total;
}

size_t AndPopCountWords(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t total = 0;
  size_t i = 0;
  for (; i + kBlockWords <= n; i += kBlockWords) {
    size_t block = 0;
    for (size_t j = 0; j < kBlockWords; ++j) {
      block += static_cast<size_t>(std::popcount(a[i + j] & b[i + j]));
    }
    total += block;
  }
  for (; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

bool IsZeroWords(const uint64_t* w, size_t n) {
  size_t i = 0;
  for (; i + kBlockWords <= n; i += kBlockWords) {
    uint64_t acc = 0;
    for (size_t j = 0; j < kBlockWords; ++j) acc |= w[i + j];
    if (acc != 0) return false;
  }
  uint64_t acc = 0;
  for (; i < n; ++i) acc |= w[i];
  return acc == 0;
}

bool CoversWords(const uint64_t* a, const uint64_t* b, size_t n) {
  // (a & b) == b  ⇔  (~a & b) == 0; accumulate the violation mask per
  // block so the early-exit branch runs once per 64 bytes.
  size_t i = 0;
  for (; i + kBlockWords <= n; i += kBlockWords) {
    uint64_t acc = 0;
    for (size_t j = 0; j < kBlockWords; ++j) acc |= ~a[i + j] & b[i + j];
    if (acc != 0) return false;
  }
  uint64_t acc = 0;
  for (; i < n; ++i) acc |= ~a[i] & b[i];
  return acc == 0;
}

void OrWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + kBlockWords <= n; i += kBlockWords) {
    for (size_t j = 0; j < kBlockWords; ++j) dst[i + j] |= src[i + j];
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void AndWords(uint64_t* dst, const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + kBlockWords <= n; i += kBlockWords) {
    for (size_t j = 0; j < kBlockWords; ++j) dst[i + j] = a[i + j] & b[i + j];
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

size_t PopCountWordsScalar(const uint64_t* w, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(w[i]));
  }
  return total;
}

size_t AndPopCountWordsScalar(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

bool IsZeroWordsScalar(const uint64_t* w, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (w[i] != 0) return false;
  }
  return true;
}

bool CoversWordsScalar(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != b[i]) return false;
  }
  return true;
}

void OrWordsScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void AndWordsScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                    size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = a[i] & b[i];
}

}  // namespace bitkernel

PathIdBits PathIdBits::FromBitString(const std::string& bits) {
  PathIdBits r(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    XEE_CHECK(bits[i] == '0' || bits[i] == '1');
    if (bits[i] == '1') r.Set(i + 1);
  }
  return r;
}

void PathIdBits::Resize(size_t num_bits) {
  num_bits_ = num_bits;
  words_.resize((num_bits + 63) / 64, 0);
  // Clear any bits past the new width in the (possibly shrunk) last word;
  // otherwise a shrink followed by a grow would resurrect stale bits and
  // popcount kernels would disagree with bit-by-bit Test().
  if (num_bits_ & 63) {
    words_.back() &= (uint64_t{1} << (num_bits_ & 63)) - 1;
  }
}

void PathIdBits::OrWith(const PathIdBits& other) {
  XEE_CHECK(num_bits_ == other.num_bits_);
  bitkernel::OrWords(words_.data(), other.words_.data(), words_.size());
}

bool PathIdBits::IsZero() const {
  return bitkernel::IsZeroWords(words_.data(), words_.size());
}

size_t PathIdBits::PopCount() const {
  return bitkernel::PopCountWords(words_.data(), words_.size());
}

size_t PathIdBits::AndPopCount(const PathIdBits& other) const {
  XEE_CHECK(num_bits_ == other.num_bits_);
  return bitkernel::AndPopCountWords(words_.data(), other.words_.data(),
                                     words_.size());
}

bool PathIdBits::Covers(const PathIdBits& other) const {
  XEE_CHECK(num_bits_ == other.num_bits_);
  return bitkernel::CoversWords(words_.data(), other.words_.data(),
                                words_.size());
}

void PathIdBits::ForEachSetBit(const std::function<void(size_t)>& fn) const {
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      fn(w * 64 + static_cast<size_t>(bit) + 1);
      word &= word - 1;
    }
  }
}

std::vector<uint32_t> PathIdBits::SetBits() const {
  std::vector<uint32_t> out;
  out.reserve(PopCount());
  ForEachSetBit([&out](size_t i) { out.push_back(static_cast<uint32_t>(i)); });
  return out;
}

std::string PathIdBits::ToBitString() const {
  std::string s(num_bits_, '0');
  ForEachSetBit([&s](size_t i) { s[i - 1] = '1'; });
  return s;
}

bool PathIdBits::TailIsClear() const {
  if ((num_bits_ & 63) == 0) return true;
  return (words_.back() & ~((uint64_t{1} << (num_bits_ & 63)) - 1)) == 0;
}

PathIdBits operator&(const PathIdBits& a, const PathIdBits& b) {
  XEE_CHECK(a.num_bits_ == b.num_bits_);
  PathIdBits r(a.num_bits_);
  bitkernel::AndWords(r.words_.data(), a.words_.data(), b.words_.data(),
                      r.words_.size());
  return r;
}

bool operator<(const PathIdBits& a, const PathIdBits& b) {
  if (a.num_bits_ != b.num_bits_) return a.num_bits_ < b.num_bits_;
  return a.words_ < b.words_;
}

bool PathIdBits::LexLess(const PathIdBits& a, const PathIdBits& b) {
  XEE_CHECK(a.num_bits_ == b.num_bits_);
  for (size_t w = 0; w < a.words_.size(); ++w) {
    uint64_t diff = a.words_[w] ^ b.words_[w];
    if (diff != 0) {
      // The lowest differing bit is the earliest position in the paper's
      // left-to-right bit string; '0' there sorts first.
      int p = std::countr_zero(diff);
      return ((a.words_[w] >> p) & 1) == 0;
    }
  }
  return false;  // equal
}

size_t PathIdBits::Hash::operator()(const PathIdBits& b) const {
  // FNV-1a over the words; path-id sets are small so this is plenty.
  uint64_t h = 1469598103934665603ull;
  for (uint64_t w : b.words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h ^ b.num_bits_);
}

}  // namespace xee
