#include "common/bitset.h"

#include <bit>

namespace xee {

PathIdBits PathIdBits::FromBitString(const std::string& bits) {
  PathIdBits r(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    XEE_CHECK(bits[i] == '0' || bits[i] == '1');
    if (bits[i] == '1') r.Set(i + 1);
  }
  return r;
}

void PathIdBits::OrWith(const PathIdBits& other) {
  XEE_CHECK(num_bits_ == other.num_bits_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
}

bool PathIdBits::IsZero() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

size_t PathIdBits::PopCount() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

bool PathIdBits::Covers(const PathIdBits& other) const {
  XEE_CHECK(num_bits_ == other.num_bits_);
  for (size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & other.words_[w]) != other.words_[w]) return false;
  }
  return true;
}

void PathIdBits::ForEachSetBit(const std::function<void(size_t)>& fn) const {
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      fn(w * 64 + static_cast<size_t>(bit) + 1);
      word &= word - 1;
    }
  }
}

std::vector<uint32_t> PathIdBits::SetBits() const {
  std::vector<uint32_t> out;
  out.reserve(PopCount());
  ForEachSetBit([&out](size_t i) { out.push_back(static_cast<uint32_t>(i)); });
  return out;
}

std::string PathIdBits::ToBitString() const {
  std::string s(num_bits_, '0');
  ForEachSetBit([&s](size_t i) { s[i - 1] = '1'; });
  return s;
}

PathIdBits operator&(const PathIdBits& a, const PathIdBits& b) {
  XEE_CHECK(a.num_bits_ == b.num_bits_);
  PathIdBits r(a.num_bits_);
  for (size_t w = 0; w < r.words_.size(); ++w) {
    r.words_[w] = a.words_[w] & b.words_[w];
  }
  return r;
}

bool operator<(const PathIdBits& a, const PathIdBits& b) {
  if (a.num_bits_ != b.num_bits_) return a.num_bits_ < b.num_bits_;
  return a.words_ < b.words_;
}

bool PathIdBits::LexLess(const PathIdBits& a, const PathIdBits& b) {
  XEE_CHECK(a.num_bits_ == b.num_bits_);
  for (size_t w = 0; w < a.words_.size(); ++w) {
    uint64_t diff = a.words_[w] ^ b.words_[w];
    if (diff != 0) {
      // The lowest differing bit is the earliest position in the paper's
      // left-to-right bit string; '0' there sorts first.
      int p = std::countr_zero(diff);
      return ((a.words_[w] >> p) & 1) == 0;
    }
  }
  return false;  // equal
}

size_t PathIdBits::Hash::operator()(const PathIdBits& b) const {
  // FNV-1a over the words; path-id sets are small so this is plenty.
  uint64_t h = 1469598103934665603ull;
  for (uint64_t w : b.words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h ^ b.num_bits_);
}

}  // namespace xee
