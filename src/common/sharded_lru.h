#ifndef XEE_COMMON_SHARDED_LRU_H_
#define XEE_COMMON_SHARDED_LRU_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace xee {

/// Aggregated cache counters (monotonic except `bytes`/`entries`).
struct LruStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes = 0;    ///< current charged bytes across shards
  uint64_t entries = 0;  ///< current entry count across shards
};

/// A thread-safe LRU cache sharded by key hash, with byte-budget
/// accounting: each entry is charged the byte size the caller reports at
/// Put() time, and least-recently-used entries are evicted until every
/// shard fits its slice of the budget.
///
/// Values are held as shared_ptr<const V>; Get() hands out a reference
/// that stays valid after the entry is evicted, so readers never block
/// writers beyond the brief shard-map critical section.
///
/// Thread-safety contract: all methods may be called concurrently; each
/// shard is guarded by its own mutex and no operation takes more than one
/// shard lock.
template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedLru {
 public:
  /// `byte_budget` is the total charged-byte capacity; `shards` is
  /// rounded up to at least 1. Entries larger than a whole shard slice
  /// are admitted alone (the shard transiently exceeds its slice until
  /// the next Put).
  explicit ShardedLru(size_t byte_budget, size_t shards = 8)
      : shard_count_(shards < 1 ? 1 : shards),
        shard_budget_(byte_budget / (shards < 1 ? 1 : shards)),
        shards_(new Shard[shard_count_]) {}

  /// Returns the cached value and refreshes its recency, or nullptr.
  std::shared_ptr<const V> Get(const K& key) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      ++s.misses;
      return nullptr;
    }
    ++s.hits;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return it->second->value;
  }

  /// Inserts or replaces `key`, charging `bytes` against the budget and
  /// evicting stale entries as needed.
  void Put(const K& key, std::shared_ptr<const V> value, size_t bytes) {
    XEE_CHECK(value != nullptr);
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      s.bytes -= it->second->bytes;
      s.lru.erase(it->second);
      s.map.erase(it);
    }
    s.lru.push_front(Entry{key, std::move(value), bytes});
    s.map.emplace(key, s.lru.begin());
    s.bytes += bytes;
    while (s.bytes > shard_budget_ && s.lru.size() > 1) {
      const Entry& victim = s.lru.back();
      s.bytes -= victim.bytes;
      s.map.erase(victim.key);
      s.lru.pop_back();
      ++s.evictions;
    }
  }

  /// Drops every entry (counters other than bytes/entries are kept).
  void Clear() {
    for (size_t i = 0; i < shard_count_; ++i) {
      Shard& s = shards_[i];
      std::lock_guard<std::mutex> lock(s.mu);
      s.lru.clear();
      s.map.clear();
      s.bytes = 0;
    }
  }

  /// Debug audit: recomputes every shard's charged bytes from its live
  /// entries and compares against the running totals kept by Put/evict —
  /// the overwrite-with-different-size path in particular must credit
  /// the old charge before debiting the new one. O(entries); tests call
  /// this after randomized insert/overwrite/evict sequences.
  bool DebugCheckBalanced() const {
    for (size_t i = 0; i < shard_count_; ++i) {
      Shard& s = shards_[i];
      std::lock_guard<std::mutex> lock(s.mu);
      size_t sum = 0;
      for (const Entry& e : s.lru) sum += e.bytes;
      if (sum != s.bytes) return false;
      if (s.lru.size() != s.map.size()) return false;
    }
    return true;
  }

  /// Sums counters across shards. The result is a consistent snapshot
  /// per shard, not across shards (adequate for monitoring).
  LruStats stats() const {
    LruStats out;
    for (size_t i = 0; i < shard_count_; ++i) {
      Shard& s = shards_[i];
      std::lock_guard<std::mutex> lock(s.mu);
      out.hits += s.hits;
      out.misses += s.misses;
      out.evictions += s.evictions;
      out.bytes += s.bytes;
      out.entries += s.lru.size();
    }
    return out;
  }

 private:
  struct Entry {
    K key;
    std::shared_ptr<const V> value;
    size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    // The custom Hash must reach the map too, not just ShardFor — a key
    // type without a std::hash specialization fails to compile (and one
    // with a *different* std::hash would shard on one function and
    // bucket on another).
    std::unordered_map<K, typename std::list<Entry>::iterator, Hash> map;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const K& key) const {
    return shards_[Hash{}(key) % shard_count_];
  }

  const size_t shard_count_;
  const size_t shard_budget_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace xee

#endif  // XEE_COMMON_SHARDED_LRU_H_
