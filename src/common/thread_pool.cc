#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <latch>

#include "common/fault.h"
#include "obs/metrics.h"

namespace xee {
namespace {

/// Pool metrics live in the global registry: queue depth (gauge), time
/// spent queued, and task run time (ns histograms). Handles resolved
/// once per process.
struct PoolMetrics {
  obs::Gauge& queue_depth =
      obs::Registry::Global().GetGauge("pool.queue_depth");
  obs::Histogram& queue_wait_ns =
      obs::Registry::Global().GetHistogram("pool.queue_wait_ns");
  obs::Histogram& task_ns =
      obs::Registry::Global().GetHistogram("pool.task_ns");

  static PoolMetrics& Get() {
    static PoolMetrics m;
    return m;
  }
};

#ifndef XEE_OBS_OFF
uint64_t NsBetween(std::chrono::steady_clock::time_point a,
                   std::chrono::steady_clock::time_point b) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}
#endif

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  const size_t n = std::max<size_t>(1, threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  Task task{std::move(fn), {}};
#ifndef XEE_OBS_OFF
  task.enqueued = std::chrono::steady_clock::now();
#endif
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  PoolMetrics::Get().queue_depth.Add(1);
  cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // One chunk per worker times a small oversubscription factor, so
  // uneven per-index costs still balance.
  const size_t chunks = std::min(n, workers_.size() * 4);
  std::latch done(static_cast<ptrdiff_t>(chunks));
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = n * c / chunks;
    const size_t end = n * (c + 1) / chunks;
    Submit([&, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
      done.count_down();
    });
  }
  done.wait();
}

size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    PoolMetrics& metrics = PoolMetrics::Get();
    metrics.queue_depth.Sub(1);
    uint64_t slow_ms = 0;
    if (FaultFires(kSlowWorkerFaultSite, &slow_ms)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(slow_ms));
    }
#ifndef XEE_OBS_OFF
    const auto start = std::chrono::steady_clock::now();
    metrics.queue_wait_ns.Record(NsBetween(task.enqueued, start));
    task.fn();
    metrics.task_ns.Record(NsBetween(start, std::chrono::steady_clock::now()));
#else
    task.fn();
#endif
  }
}

}  // namespace xee
