#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <latch>

#include "common/fault.h"

namespace xee {

ThreadPool::ThreadPool(size_t threads) {
  const size_t n = std::max<size_t>(1, threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // One chunk per worker times a small oversubscription factor, so
  // uneven per-index costs still balance.
  const size_t chunks = std::min(n, workers_.size() * 4);
  std::latch done(static_cast<ptrdiff_t>(chunks));
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = n * c / chunks;
    const size_t end = n * (c + 1) / chunks;
    Submit([&, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
      done.count_down();
    });
  }
  done.wait();
}

size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    uint64_t slow_ms = 0;
    if (FaultFires(kSlowWorkerFaultSite, &slow_ms)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(slow_ms));
    }
    task();
  }
}

}  // namespace xee
