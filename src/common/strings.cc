#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace xee {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  if (bytes < 1024) return StrFormat("%llu B", (unsigned long long)bytes);
  double kb = static_cast<double>(bytes) / 1024.0;
  if (kb < 1024) return StrFormat("%.2f KB", kb);
  return StrFormat("%.2f MB", kb / 1024.0);
}

}  // namespace xee
