#include "common/rng.h"

#include <cmath>

namespace xee {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t lo, uint64_t hi) {
  XEE_CHECK(lo <= hi);
  const uint64_t span = hi - lo + 1;
  if (span == 0) return Next();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return lo + v % span;
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return UniformDouble() < p;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  XEE_CHECK(n >= 1);
  if (n == 1) return 1;
  if (s <= 0) return UniformInt(1, n);
  // Inverse-CDF on the (unnormalized) harmonic weights. n is small in all
  // of our uses (tens to hundreds), so the linear scan is fine.
  double total = 0;
  for (uint64_t k = 1; k <= n; ++k) total += std::pow(static_cast<double>(k), -s);
  double u = UniformDouble() * total;
  double acc = 0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += std::pow(static_cast<double>(k), -s);
    if (u < acc) return k;
  }
  return n;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    XEE_CHECK(w >= 0);
    total += w;
  }
  XEE_CHECK(total > 0);
  double u = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace xee
