#include "histogram/o_histogram.h"

#include <algorithm>
#include <cmath>

namespace xee::histogram {
namespace {

/// Incremental mean/variance accumulator over cell values.
struct Welford {
  double sum = 0;
  double sum_sq = 0;
  size_t n = 0;

  void Add(double v) {
    sum += v;
    sum_sq += v * v;
    ++n;
  }
  double Mean() const { return n == 0 ? 0 : sum / static_cast<double>(n); }
  /// Mean squared deviation (the paper's variance is its square root).
  double Msd() const {
    if (n == 0) return 0;
    double m = Mean();
    return std::max(0.0, sum_sq / static_cast<double>(n) - m * m);
  }
};

}  // namespace

OHistogram OHistogram::Build(const stats::PathOrderTable& table,
                             const std::vector<uint32_t>& row_of_tag,
                             const std::vector<encoding::PidRef>& col_order,
                             double variance_threshold) {
  XEE_CHECK(variance_threshold >= 0);
  OHistogram h;
  h.row_of_tag_ = row_of_tag;
  for (uint32_t c = 0; c < col_order.size(); ++c) {
    h.col_of_.emplace(col_order[c], c);
  }
  if (table.rows().empty() || col_order.empty()) return h;

  const size_t tag_count = row_of_tag.size();
  const size_t num_rows = 2 * tag_count;
  const size_t num_cols = col_order.size();

  // Materialize the dense grid (rows x cols) of frequencies.
  std::vector<std::vector<double>> grid(num_rows,
                                        std::vector<double>(num_cols, 0));
  std::vector<std::vector<bool>> nonempty(num_rows,
                                          std::vector<bool>(num_cols, false));
  for (const auto& [key, cells] : table.rows()) {
    size_t row = (key.region == stats::OrderRegion::kAfter ? tag_count : 0) +
                 row_of_tag[key.other_tag];
    for (const auto& [pid, count] : cells) {
      auto col = h.col_of_.find(pid);
      XEE_CHECK_MSG(col != h.col_of_.end(),
                    "path-order pid missing from p-histogram column order");
      grid[row][col->second] = static_cast<double>(count);
      nonempty[row][col->second] = true;
    }
  }

  std::vector<std::vector<bool>> owned(num_rows,
                                       std::vector<bool>(num_cols, false));
  const double v2 = variance_threshold * variance_threshold;
  const double eps = 1e-12;

  for (size_t r = 0; r < num_rows; ++r) {
    // A box never crosses the boundary between the before and after
    // regions.
    const size_t region_end = r < tag_count ? tag_count : num_rows;
    for (size_t c = 0; c < num_cols; ++c) {
      if (!nonempty[r][c] || owned[r][c]) continue;

      // Step 2a: extend the seed cell to a run of cells to the right.
      Welford acc;
      acc.Add(grid[r][c]);
      size_t c2 = c;
      while (c2 + 1 < num_cols && nonempty[r][c2 + 1] && !owned[r][c2 + 1]) {
        Welford trial = acc;
        trial.Add(grid[r][c2 + 1]);
        if (trial.Msd() > v2 + eps) break;
        acc = trial;
        ++c2;
      }

      // Step 2b: extend the run downwards row by row within the region.
      size_t r2 = r;
      while (r2 + 1 < region_end) {
        const size_t cand = r2 + 1;
        bool any_nonempty = false;
        bool blocked = false;
        Welford trial = acc;
        for (size_t cc = c; cc <= c2; ++cc) {
          if (owned[cand][cc]) {
            blocked = true;
            break;
          }
          if (nonempty[cand][cc]) any_nonempty = true;
          trial.Add(grid[cand][cc]);
        }
        if (blocked || !any_nonempty) break;
        if (trial.Msd() > v2 + eps) break;
        acc = trial;
        r2 = cand;
      }

      for (size_t rr = r; rr <= r2; ++rr) {
        for (size_t cc = c; cc <= c2; ++cc) owned[rr][cc] = true;
      }
      h.buckets_.push_back(Bucket{static_cast<uint32_t>(c),
                                  static_cast<uint32_t>(r),
                                  static_cast<uint32_t>(c2),
                                  static_cast<uint32_t>(r2), acc.Mean()});
    }
  }
  h.BuildRowIndex();
  return h;
}

OHistogram OHistogram::FromBuckets(
    std::vector<Bucket> buckets, const std::vector<uint32_t>& row_of_tag,
    const std::vector<encoding::PidRef>& col_order) {
  OHistogram h;
  h.buckets_ = std::move(buckets);
  h.row_of_tag_ = row_of_tag;
  for (uint32_t c = 0; c < col_order.size(); ++c) {
    h.col_of_.emplace(col_order[c], c);
  }
  h.BuildRowIndex();
  return h;
}

void OHistogram::BuildRowIndex() {
  row_index_.assign(2 * row_of_tag_.size(), {});

  // Inserts [x1, x2] into a sorted disjoint span list, clipped against
  // the columns already covered — so where (adversarial) boxes overlap,
  // the earliest-inserted bucket keeps the cell.
  auto insert_clipped = [](std::vector<RowSpan>& spans, uint32_t x1,
                           uint32_t x2, double freq) {
    std::vector<RowSpan> merged;
    merged.reserve(spans.size() + 2);
    uint64_t cur = x1;  // next still-uncovered column of the new span
    size_t i = 0;
    for (; i < spans.size() && spans[i].x1 <= x2; ++i) {
      const RowSpan& s = spans[i];
      if (cur < s.x1 && cur <= x2) {
        merged.push_back(RowSpan{static_cast<uint32_t>(cur),
                                 std::min(x2, s.x1 - 1), freq});
      }
      merged.push_back(s);
      cur = std::max<uint64_t>(cur, static_cast<uint64_t>(s.x2) + 1);
    }
    if (cur <= x2) {
      merged.push_back(RowSpan{static_cast<uint32_t>(cur), x2, freq});
    }
    for (; i < spans.size(); ++i) merged.push_back(spans[i]);
    spans = std::move(merged);
  };

  for (const Bucket& b : buckets_) {
    for (uint64_t row = b.y1; row <= b.y2 && row < row_index_.size(); ++row) {
      insert_clipped(row_index_[row], b.x1, b.x2, b.avg_freq);
    }
  }
}

double OHistogram::Get(stats::OrderRegion region, xml::TagId other,
                       encoding::PidRef pid) const {
  if (other >= row_of_tag_.size()) return 0;
  auto col_it = col_of_.find(pid);
  if (col_it == col_of_.end()) return 0;
  const uint32_t col = col_it->second;
  const uint32_t row =
      (region == stats::OrderRegion::kAfter
           ? static_cast<uint32_t>(row_of_tag_.size())
           : 0) +
      row_of_tag_[other];
  if (row >= row_index_.size()) return 0;
  const std::vector<RowSpan>& spans = row_index_[row];
  auto it = std::upper_bound(
      spans.begin(), spans.end(), col,
      [](uint32_t c, const RowSpan& s) { return c < s.x1; });
  if (it == spans.begin()) return 0;
  --it;
  return col <= it->x2 ? it->avg_freq : 0;
}

}  // namespace xee::histogram
