#ifndef XEE_HISTOGRAM_O_HISTOGRAM_H_
#define XEE_HISTOGRAM_O_HISTOGRAM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stats/path_order.h"

namespace xee::histogram {

/// The o-histogram of paper Section 6 for one element tag X: summarizes
/// X's path-order table with rectangular buckets (x.start, y.start,
/// x.end, y.end, average frequency) over a grid whose columns are X's
/// path ids in p-histogram order and whose rows are (region, other tag)
/// pairs — the "+element" (before) block followed by the "element+"
/// (after) block, tags in alphabetic order within each block.
///
/// Construction (Algorithm 2) scans non-empty cells row-wise; each seed
/// cell is extended rightwards to a run (stopping at empty or owned
/// cells) and then downwards row by row (stopping at an all-empty span,
/// an owned cell, or the region boundary), keeping the intra-box standard
/// deviation over *all* covered cells — zeros included — within the
/// threshold.
class OHistogram {
 public:
  struct Bucket {
    uint32_t x1, y1, x2, y2;  // inclusive column/row bounds
    double avg_freq;
  };

  /// Builds the o-histogram for one tag.
  ///
  /// `row_of_tag[t]` is the alphabetic rank of tag t among all document
  /// tags (shared across all o-histograms of a document); rows for the
  /// kAfter region live at rank + row_of_tag.size().
  /// `col_order` is the tag's pid column order (PHistogram::PidsInOrder).
  static OHistogram Build(const stats::PathOrderTable& table,
                          const std::vector<uint32_t>& row_of_tag,
                          const std::vector<encoding::PidRef>& col_order,
                          double variance_threshold);

  /// Reassembles a histogram from stored buckets (deserialization).
  static OHistogram FromBuckets(std::vector<Bucket> buckets,
                                const std::vector<uint32_t>& row_of_tag,
                                const std::vector<encoding::PidRef>& col_order);

  /// Summarized cell value g(pid, other): the covering bucket's average
  /// frequency, or 0 when no bucket covers the cell. O(log buckets) via
  /// the per-row interval index; identical to scanning `buckets()` in
  /// order and returning the first cover.
  double Get(stats::OrderRegion region, xml::TagId other,
             encoding::PidRef pid) const;

  const std::vector<Bucket>& buckets() const { return buckets_; }
  size_t BucketCount() const { return buckets_.size(); }

  /// Modeled footprint: four 2-byte coordinates plus a 4-byte average
  /// per bucket.
  size_t SizeBytes() const { return buckets_.size() * 12; }

 private:
  /// One column run of a bucket within a single row.
  struct RowSpan {
    uint32_t x1, x2;  // inclusive column bounds
    double avg_freq;
  };

  /// Expands `buckets_` into per-row sorted disjoint column spans so Get
  /// binary-searches one row instead of scanning every bucket. Earlier
  /// buckets win where boxes overlap (only possible on adversarial
  /// deserialized bucket lists), matching the first-match linear scan.
  void BuildRowIndex();

  std::vector<Bucket> buckets_;
  std::vector<uint32_t> row_of_tag_;  // alphabetic rank per TagId
  std::unordered_map<encoding::PidRef, uint32_t> col_of_;
  std::vector<std::vector<RowSpan>> row_index_;  // size 2 * row_of_tag_.size()
};

}  // namespace xee::histogram

#endif  // XEE_HISTOGRAM_O_HISTOGRAM_H_
