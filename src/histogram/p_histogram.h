#ifndef XEE_HISTOGRAM_P_HISTOGRAM_H_
#define XEE_HISTOGRAM_P_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "stats/pathid_frequency.h"

namespace xee::histogram {

/// The p-histogram of paper Section 6 for one element tag: summarizes the
/// tag's pathId-frequency list in buckets holding a set of path ids and
/// one average frequency. Construction (Algorithm 1) sorts entries by
/// frequency and greedily grows each bucket while the intra-bucket
/// frequency "variance" (the paper's definition is the standard
/// deviation, sqrt(sum (f_i - avg)^2 / k)) stays within a threshold v.
///
/// With v = 0 every bucket holds entries of one identical frequency, so
/// lookups are exact.
class PHistogram {
 public:
  struct Bucket {
    std::vector<encoding::PidRef> pids;
    double avg_freq = 0;
  };

  /// Builds the histogram for a tag's (pid, freq) list (may be empty).
  static PHistogram Build(const std::vector<stats::PidFreq>& pid_freqs,
                          double variance_threshold);

  /// Ablation baseline (DESIGN.md A1): frequency-sorted equi-count
  /// buckets of ~`bucket_count` buckets, instead of variance-controlled
  /// ones. Same storage model, so memory matches Build() output with the
  /// same bucket count.
  static PHistogram BuildEquiCount(const std::vector<stats::PidFreq>& pid_freqs,
                                   size_t bucket_count);

  /// Reassembles a histogram from stored buckets (deserialization); the
  /// buckets must partition the tag's pids.
  static PHistogram FromBuckets(std::vector<Bucket> buckets);

  /// Rebuild for incremental maintenance (delta/LiveSynopsis): builds
  /// from a tag's exact pid -> frequency map, applying the equi-count
  /// ablation when the scratch build would. Keeping this one call site
  /// is what makes a patched synopsis bit-identical to a rebuild.
  static PHistogram FromExactRows(
      const std::map<encoding::PidRef, uint64_t>& rows,
      double variance_threshold, bool equi_count);

  /// The summarized frequency of `pid`: the containing bucket's average,
  /// or 0 when the tag never carries this pid.
  double Frequency(encoding::PidRef pid) const;

  /// True iff `pid` occurs in some bucket.
  bool HasPid(encoding::PidRef pid) const {
    return bucket_of_.find(pid) != bucket_of_.end();
  }

  /// All pids of this tag, concatenated in bucket order. This ordering
  /// (ascending bucket average) is the column order the o-histogram uses
  /// ("path ids order in p-histogram", Algorithm 2).
  const std::vector<encoding::PidRef>& PidsInOrder() const {
    return pid_order_;
  }

  const std::vector<Bucket>& buckets() const { return buckets_; }
  size_t BucketCount() const { return buckets_.size(); }

  /// Modeled footprint: 2 bytes per stored pid reference, plus 6 bytes
  /// per bucket (4-byte average frequency + 2-byte entry count).
  size_t SizeBytes() const {
    return pid_order_.size() * 2 + buckets_.size() * 6;
  }

 private:
  std::vector<Bucket> buckets_;
  std::vector<encoding::PidRef> pid_order_;
  std::unordered_map<encoding::PidRef, uint32_t> bucket_of_;
};

}  // namespace xee::histogram

#endif  // XEE_HISTOGRAM_P_HISTOGRAM_H_
