#include "histogram/p_histogram.h"

#include <algorithm>
#include <cmath>

namespace xee::histogram {

PHistogram PHistogram::Build(const std::vector<stats::PidFreq>& pid_freqs,
                             double variance_threshold) {
  XEE_CHECK(variance_threshold >= 0);
  PHistogram h;
  if (pid_freqs.empty()) return h;

  // Step 1 of Algorithm 1: sort by frequency (ties by pid for
  // determinism).
  std::vector<stats::PidFreq> sorted = pid_freqs;
  std::sort(sorted.begin(), sorted.end(),
            [](const stats::PidFreq& a, const stats::PidFreq& b) {
              if (a.freq != b.freq) return a.freq < b.freq;
              return a.pid < b.pid;
            });

  // Step 2-3: greedily grow buckets while the intra-bucket standard
  // deviation stays within the threshold. Running sums give O(1) checks.
  const double v2 = variance_threshold * variance_threshold;
  Bucket cur;
  double sum = 0, sum_sq = 0;
  auto flush = [&] {
    if (cur.pids.empty()) return;
    cur.avg_freq = sum / static_cast<double>(cur.pids.size());
    h.buckets_.push_back(std::move(cur));
    cur = Bucket{};
    sum = sum_sq = 0;
  };
  for (const stats::PidFreq& pf : sorted) {
    const double f = static_cast<double>(pf.freq);
    const double k = static_cast<double>(cur.pids.size() + 1);
    const double nsum = sum + f;
    const double nsum_sq = sum_sq + f * f;
    const double mean = nsum / k;
    // Mean squared deviation = E[f^2] - mean^2 (clamped for rounding).
    const double msd = std::max(0.0, nsum_sq / k - mean * mean);
    if (!cur.pids.empty() && msd > v2 + 1e-12) flush();
    cur.pids.push_back(pf.pid);
    sum += f;
    sum_sq += f * f;
  }
  flush();

  for (uint32_t b = 0; b < h.buckets_.size(); ++b) {
    for (encoding::PidRef pid : h.buckets_[b].pids) {
      h.pid_order_.push_back(pid);
      h.bucket_of_.emplace(pid, b);
    }
  }
  return h;
}

PHistogram PHistogram::BuildEquiCount(
    const std::vector<stats::PidFreq>& pid_freqs, size_t bucket_count) {
  PHistogram h;
  if (pid_freqs.empty()) return h;
  if (bucket_count < 1) bucket_count = 1;
  if (bucket_count > pid_freqs.size()) bucket_count = pid_freqs.size();

  std::vector<stats::PidFreq> sorted = pid_freqs;
  std::sort(sorted.begin(), sorted.end(),
            [](const stats::PidFreq& a, const stats::PidFreq& b) {
              if (a.freq != b.freq) return a.freq < b.freq;
              return a.pid < b.pid;
            });

  const size_t n = sorted.size();
  size_t start = 0;
  for (size_t b = 0; b < bucket_count; ++b) {
    const size_t end = (b + 1) * n / bucket_count;
    Bucket bucket;
    double sum = 0;
    for (size_t i = start; i < end; ++i) {
      bucket.pids.push_back(sorted[i].pid);
      sum += static_cast<double>(sorted[i].freq);
    }
    if (!bucket.pids.empty()) {
      bucket.avg_freq = sum / static_cast<double>(bucket.pids.size());
      h.buckets_.push_back(std::move(bucket));
    }
    start = end;
  }
  for (uint32_t b = 0; b < h.buckets_.size(); ++b) {
    for (encoding::PidRef pid : h.buckets_[b].pids) {
      h.pid_order_.push_back(pid);
      h.bucket_of_.emplace(pid, b);
    }
  }
  return h;
}

PHistogram PHistogram::FromBuckets(std::vector<Bucket> buckets) {
  PHistogram h;
  h.buckets_ = std::move(buckets);
  for (uint32_t b = 0; b < h.buckets_.size(); ++b) {
    for (encoding::PidRef pid : h.buckets_[b].pids) {
      h.pid_order_.push_back(pid);
      h.bucket_of_.emplace(pid, b);
    }
  }
  return h;
}

PHistogram PHistogram::FromExactRows(
    const std::map<encoding::PidRef, uint64_t>& rows,
    double variance_threshold, bool equi_count) {
  std::vector<stats::PidFreq> list;
  list.reserve(rows.size());
  for (const auto& [pid, freq] : rows) list.push_back({pid, freq});
  PHistogram h = Build(list, variance_threshold);
  if (equi_count) h = BuildEquiCount(list, h.BucketCount());
  return h;
}

double PHistogram::Frequency(encoding::PidRef pid) const {
  auto it = bucket_of_.find(pid);
  if (it == bucket_of_.end()) return 0;
  return buckets_[it->second].avg_freq;
}

}  // namespace xee::histogram
