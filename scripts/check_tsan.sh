#!/usr/bin/env bash
# Builds the concurrency-sensitive targets under ThreadSanitizer and
# runs the service-layer tests, so data races in the serving path are
# caught mechanically rather than by luck. Part of the tier-2 checks;
# run from the repository root:
#
#   scripts/check_tsan.sh [extra ctest -R regex]
#
# Uses a dedicated build tree (build-tsan) so the regular build stays
# sanitizer-free.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-ServiceTest|EstimateOptDiff|CanonicalTest|EstimatorTest|ObsTest|AccuracyTrackerTest|ShadowSamplingTest|MaintenanceTest|ServiceIntel|FlightRecorderTest|TimeSeriesTest|SloEngineTest|ServiceFlightTest}"

cmake -B build-tsan -S . -DXEE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)" \
  --target service_test canonical_test estimator_test obs_test \
  estimate_opt_diff_test maintenance_test analyze_test \
  accuracy_obs_test accuracy_shadow_test flight_test simulate
(cd build-tsan && ctest -R "$FILTER" --output-on-failure)

# One simulator scenario in concurrent mode: real Estimate() calls
# racing across a worker pool against reloads, shadow evaluation, and
# admission control (fingerprints are not stable here; the run still
# must hold every drain invariant, and TSan must stay quiet).
build-tsan/bench/simulate --scenario=bursty_overload_chaos \
  --workers=4 --duration-ms=2000 >/dev/null
# The live-churn scenario in concurrent mode: deltas and background
# rebuild publishes racing real Estimate() traffic (the maintenance
# tentpole's data-race surface).
build-tsan/bench/simulate --scenario=live_update_churn \
  --workers=2 --duration-ms=2000 >/dev/null
# The analyzer alias storm in concurrent mode: workers racing to probe
# and insert shared pruned/rewritten plans, against a small cache that
# keeps evicting them (the query-intelligence data-race surface;
# ServiceIntel's concurrent-batch test covers the same paths in-process).
build-tsan/bench/simulate --scenario=intel_alias_storm \
  --workers=4 --duration-ms=2000 >/dev/null
# The SLO-burn scenario in concurrent mode: overload sheds and deadline
# failures racing ObsTick scrapes, alert transitions, and flight-ring
# appends across a worker pool (the flight-data observability
# tentpole's data-race surface).
build-tsan/bench/simulate --scenario=slo_burn \
  --workers=4 --duration-ms=2000 >/dev/null
echo "TSan checks passed."
