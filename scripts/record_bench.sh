#!/usr/bin/env bash
# Records the serving-layer benchmark trajectory as machine-readable
# JSON at the repository root, so PRs can diff throughput and shadow-
# sampling cost instead of eyeballing stdout. Runs
# bench_service_throughput (qps + per-stage latency + the accuracy-
# sampling sweep) and wraps its JSON rows with the run configuration:
#
#   {"bench_file_version":1,"recorded":{...config...},"rows":[...]}
#
# Usage, from the repository root (flags pass through to the bench):
#
#   scripts/record_bench.sh                         # -> BENCH_pr5.json
#   OUT=BENCH_tmp.json scripts/record_bench.sh --scale=0.1
#
# The environment knobs: OUT (output path, default BENCH_pr5.json),
# BUILD (build tree, default build). Numbers are machine-dependent —
# compare rows recorded on the same box only.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_pr5.json}"
BUILD="${BUILD:-build}"
ARGS=("$@")
if [[ "${#ARGS[@]}" -eq 0 ]]; then
  # The recorded configuration: modest scale so the run stays in
  # seconds, fixed seed so the workload (and therefore the row set) is
  # reproducible.
  ARGS=(--scale=0.25 --queries=400 --seed=42)
fi

cmake --build "$BUILD" -j"$(nproc)" --target bench_service_throughput \
  >/dev/null

raw="$("$BUILD"/bench/bench_service_throughput "${ARGS[@]}")"

{
  printf '{"bench_file_version":1,"recorded":{"bench":"service_throughput","args":"%s"},"rows":[\n' \
    "${ARGS[*]}"
  # Keep only the JSON rows; the bench interleaves human-readable text.
  first=1
  while IFS= read -r line; do
    [[ "$line" == \{\"bench\"* ]] || continue
    if [[ "$first" == 1 ]]; then first=0; else printf ',\n'; fi
    printf '%s' "$line"
  done <<<"$raw"
  printf '\n]}\n'
} >"$OUT"

rows="$(grep -c '"bench"' "$OUT" || true)"
echo "record_bench: wrote $OUT ($rows rows)"

# --- simulator trajectories (PR 6) -------------------------------------
# The three scenario families at their pinned seeds and full durations:
# per-window trajectory rows plus one summary row (fingerprint +
# invariant verdicts) each. The deterministic columns are reproducible
# anywhere; the latency quantiles are machine-dependent like the rows
# above. SIM_OUT overrides the output path.
SIM_OUT="${SIM_OUT:-BENCH_pr6.json}"

cmake --build "$BUILD" -j"$(nproc)" --target simulate >/dev/null

sim_raw="$("$BUILD"/bench/simulate --scenario=all)"

{
  printf '{"bench_file_version":1,"recorded":{"bench":"simulate","args":"--scenario=all"},"rows":[\n'
  first=1
  while IFS= read -r line; do
    [[ "$line" == \{\"bench\"* ]] || continue
    if [[ "$first" == 1 ]]; then first=0; else printf ',\n'; fi
    printf '%s' "$line"
  done <<<"$sim_raw"
  printf '\n]}\n'
} >"$SIM_OUT"

sim_rows="$(grep -c '"bench"' "$SIM_OUT" || true)"
echo "record_bench: wrote $SIM_OUT ($sim_rows rows)"
