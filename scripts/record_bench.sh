#!/usr/bin/env bash
# Records the serving-layer benchmark trajectory as machine-readable
# JSON at the repository root, so PRs can diff throughput and shadow-
# sampling cost instead of eyeballing stdout. One combined file carries
# bench_service_throughput (qps + delta-scraped per-stage latency + the
# estimate-memo comparison + the analyzer alias-storm contrast + the
# accuracy-sampling sweep + the service_obs2 flight-data-observability
# on/off overhead contrast),
# bench_update_throughput (incremental delta maintenance vs the
# rebuild-per-delta and position-histogram baselines, plus estimate
# latency quantiles with background rebuilds in flight), and the
# simulator trajectories (every scenario family at its pinned seed,
# live_update_churn, the intel_alias_storm on/off pair, and the
# slo_burn SLO/flight-recorder scenario included: per-window rows plus
# one summary row each):
#
#   {"bench_file_version":2,"recorded":{...config...},"rows":[...]}
#
# Usage, from the repository root (flags pass through to the bench):
#
#   scripts/record_bench.sh                         # -> BENCH_pr10.json
#   OUT=BENCH_tmp.json scripts/record_bench.sh --scale=0.1
#
# The environment knobs: OUT (output path, default BENCH_pr10.json),
# BUILD (build tree, default build). Numbers are machine-dependent —
# compare rows recorded on the same box only. Stage rows measured with
# more threads than cores carry "oversubscribed":true; exclude them
# from latency trend comparisons.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_pr10.json}"
BUILD="${BUILD:-build}"
ARGS=("$@")
if [[ "${#ARGS[@]}" -eq 0 ]]; then
  # The recorded configuration: modest scale so the run stays in
  # seconds, fixed seed so the workload (and therefore the row set) is
  # reproducible.
  ARGS=(--scale=0.25 --queries=400 --seed=42)
fi

cmake --build "$BUILD" -j"$(nproc)" --target bench_service_throughput \
  >/dev/null
cmake --build "$BUILD" -j"$(nproc)" --target bench_update_throughput \
  >/dev/null
cmake --build "$BUILD" -j"$(nproc)" --target simulate >/dev/null

raw="$("$BUILD"/bench/bench_service_throughput "${ARGS[@]}")"
update_raw="$("$BUILD"/bench/bench_update_throughput "${ARGS[@]}")"
sim_raw="$("$BUILD"/bench/simulate --scenario=all)"

{
  printf '{"bench_file_version":3,"recorded":{"bench":"service_throughput+update_throughput+simulate","args":"%s","sim_args":"--scenario=all"},"rows":[\n' \
    "${ARGS[*]}"
  # Keep only the JSON rows; the benches interleave human-readable text.
  first=1
  while IFS= read -r line; do
    [[ "$line" == \{\"bench\"* ]] || continue
    if [[ "$first" == 1 ]]; then first=0; else printf ',\n'; fi
    printf '%s' "$line"
  done <<<"$raw"$'\n'"$update_raw"$'\n'"$sim_raw"
  printf '\n]}\n'
} >"$OUT"

rows="$(grep -c '"bench"' "$OUT" || true)"
echo "record_bench: wrote $OUT ($rows rows)"
