#!/usr/bin/env bash
# Runs the deterministic fuzz harness against the checked-in corpus.
#
#   scripts/run_fuzz.sh [--iters N] [--seed S] [--generator G] [--build DIR]
#
# Extra flags are passed through to fuzz_driver (see fuzz_driver --help).
# Exit status: 0 clean, 1 findings, 2 usage/setup error.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
args=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build)
      build_dir="$2"
      shift 2
      ;;
    *)
      args+=("$1")
      shift
      ;;
  esac
done

driver="${build_dir}/src/fuzz/fuzz_driver"
if [[ ! -x "${driver}" ]]; then
  echo "fuzz_driver not found at ${driver}; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 2
fi

exec "${driver}" --corpus "${repo_root}/tests/corpus" "${args[@]}"
