#!/usr/bin/env bash
# Builds the robustness-sensitive targets under AddressSanitizer +
# UndefinedBehaviorSanitizer and runs the serving tests plus the
# fixed-seed fuzz and chaos smokes, so memory errors on the degraded /
# fault-injected paths are caught mechanically. Part of the tier-2
# checks; run from the repository root:
#
#   scripts/check_asan.sh [extra ctest -R regex]
#
# Uses a dedicated build tree (build-asan) so the regular build stays
# sanitizer-free.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-ServiceTest|SynopsisSalvage|FuzzHarness|fuzz_smoke|chaos_smoke|export_fuzz_smoke|prune_fuzz_smoke|ShadowSamplingTest|MaintenanceTest|LiveDocumentTest|LiveSynopsisTest|AnalyzeSat|AnalyzeRewrite|ServiceIntel|FlightRecorderTest|TimeSeriesTest|SloEngineTest|ServiceFlightTest}"

cmake -B build-asan -S . -DXEE_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j"$(nproc)" \
  --target service_test serialize_test fuzz_test fuzz_driver \
  accuracy_shadow_test delta_test maintenance_test analyze_test \
  flight_test
(cd build-asan && ctest -R "$FILTER" --output-on-failure)
echo "ASan/UBSan checks passed."
