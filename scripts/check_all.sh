#!/usr/bin/env bash
# The full pre-merge battery, in increasing order of cost:
#
#   1. tier-1 build + ctest (unit, accuracy, smoke labels)
#   2. ThreadSanitizer slice   (scripts/check_tsan.sh)
#   3. ASan/UBSan slice        (scripts/check_asan.sh)
#
# The fuzz and chaos smokes run inside step 1 via their ctest entries
# (label `smoke`), and again under ASan in step 3. Run from the
# repository root:
#
#   scripts/check_all.sh            # everything
#   scripts/check_all.sh --fast     # tier-1 only, skip the sanitizers
#
# Exits non-zero on the first failing stage.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then fast=1; fi

echo "== [1/3] tier-1 build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure)

if [[ "$fast" == "1" ]]; then
  echo "check_all: tier-1 passed (sanitizers skipped with --fast)."
  exit 0
fi

echo "== [2/3] ThreadSanitizer slice =="
scripts/check_tsan.sh

echo "== [3/3] ASan/UBSan slice =="
scripts/check_asan.sh

echo "check_all: all stages passed."
