#!/usr/bin/env bash
# The full pre-merge battery, in increasing order of cost:
#
#   1. tier-1 build + ctest (unit, accuracy, smoke, live, intel, flight
#      labels — includes the formula-tail differential suites, the live-
#      document maintenance suite, the flight-data observability suite
#      (time-series store, SLO burn-rate engine, flight recorder,
#      tail-based trace retention), and the query-intelligence suite:
#      analyze_test pins the prune/rewrite soundness contracts against
#      exact counts and bitwise differentials, prune_fuzz_smoke runs
#      the 30k-iteration prune-soundness oracle)
#   2. quality slice: the accuracy-observability suite (shadow-sampling
#      correctness, drift detection, export schema + export fuzz;
#      ctest label `quality`)
#   3. ThreadSanitizer slice   (scripts/check_tsan.sh)
#   4. ASan/UBSan slice        (scripts/check_asan.sh)
#
# The fuzz, chaos, and simulator smokes run inside step 1 via their
# ctest entries (label `smoke`; simulate_smoke runs every scenario
# family — live_update_churn and the intel_alias_storm on/off pair
# included — time-scaled and fails on any drain-invariant violation),
# and the fuzz/chaos/prune smokes plus the live maintenance and
# analyzer tests run again under ASan in step 4; the TSan slice also
# drives simulator scenarios in concurrent mode: the live-churn
# scenario with rebuilds racing traffic, and the analyzer alias storm
# with shared pruned/rewritten plans probed across a worker pool. Run from the
# repository root:
#
#   scripts/check_all.sh            # everything
#   scripts/check_all.sh --fast     # tier-1 only, skip the sanitizers
#
# Exits non-zero on the first failing stage.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then fast=1; fi

echo "== [1/4] tier-1 build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
(cd build && ctest -LE quality --output-on-failure)

echo "== [2/4] quality slice (accuracy observability) =="
(cd build && ctest -L quality --output-on-failure)

if [[ "$fast" == "1" ]]; then
  echo "check_all: tier-1 passed (sanitizers skipped with --fast)."
  exit 0
fi

echo "== [3/4] ThreadSanitizer slice =="
scripts/check_tsan.sh

echo "== [4/4] ASan/UBSan slice =="
scripts/check_asan.sh

echo "check_all: all stages passed."
