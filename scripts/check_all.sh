#!/usr/bin/env bash
# The full pre-merge battery, in increasing order of cost:
#
#   1. tier-1 build + ctest (unit, accuracy, smoke, live labels —
#      includes the formula-tail differential suites and the live-
#      document maintenance suite: delta_test pins the sibling-clone
#      bitwise-exactness contract, maintenance_test the rebuild
#      retry/abandon ledger and self-healing policy)
#   2. quality slice: the accuracy-observability suite (shadow-sampling
#      correctness, drift detection, export schema + export fuzz;
#      ctest label `quality`)
#   3. ThreadSanitizer slice   (scripts/check_tsan.sh)
#   4. ASan/UBSan slice        (scripts/check_asan.sh)
#
# The fuzz, chaos, and simulator smokes run inside step 1 via their
# ctest entries (label `smoke`; simulate_smoke runs every scenario
# family — live_update_churn included — time-scaled and fails on any
# drain-invariant violation), and the fuzz/chaos smokes plus the live
# maintenance tests run again under ASan in step 4; the TSan slice
# also drives two simulator scenarios in concurrent mode, one of them
# the live-churn scenario with rebuilds racing traffic. Run from the
# repository root:
#
#   scripts/check_all.sh            # everything
#   scripts/check_all.sh --fast     # tier-1 only, skip the sanitizers
#
# Exits non-zero on the first failing stage.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then fast=1; fi

echo "== [1/4] tier-1 build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
(cd build && ctest -LE quality --output-on-failure)

echo "== [2/4] quality slice (accuracy observability) =="
(cd build && ctest -L quality --output-on-failure)

if [[ "$fast" == "1" ]]; then
  echo "check_all: tier-1 passed (sanitizers skipped with --fast)."
  exit 0
fi

echo "== [3/4] ThreadSanitizer slice =="
scripts/check_tsan.sh

echo "== [4/4] ASan/UBSan slice =="
scripts/check_asan.sh

echo "check_all: all stages passed."
