// Shared implementation for the Figure 12 / Figure 13 reproductions:
// order-axis estimation error sweeps over (p-variance, o-variance),
// split by target position (branch part vs trunk part).

#ifndef XEE_BENCH_ORDER_ERROR_COMMON_H_
#define XEE_BENCH_ORDER_ERROR_COMMON_H_

#include <cstdio>

#include "bench_util/metrics.h"
#include "bench_util/runner.h"
#include "common/strings.h"
#include "estimator/estimator.h"

namespace xee::benchx {

inline void RunOrderErrorDataset(const bench_util::DatasetRun& ds,
                                 const bench_util::BenchConfig& config,
                                 bool trunk_targets) {
  using bench_util::ErrorAccumulator;
  workload::Workload w = bench_util::MakeWorkload(ds.doc, config);
  const auto& queries =
      trunk_targets ? w.order_trunk_target : w.order_branch_target;
  std::printf("\n[%s] %zu order queries (target in %s part)\n",
              ds.name.c_str(), queries.size(),
              trunk_targets ? "trunk" : "branch");
  std::printf("%8s | %s\n", "",
              "o-var:   0        1        2        4        8");
  for (double pv : {0.0, 1.0, 5.0, 10.0}) {
    std::printf("p-var %4.0f |", pv);
    for (double ov : {0.0, 1.0, 2.0, 4.0, 8.0}) {
      estimator::SynopsisOptions opt;
      opt.p_variance = pv;
      opt.o_variance = ov;
      estimator::Synopsis syn = estimator::Synopsis::Build(ds.doc, opt);
      estimator::Estimator est(syn);
      ErrorAccumulator acc;
      for (const auto& wq : queries) {
        auto r = est.Estimate(wq.query);
        if (r.ok()) acc.Add(r.value(), wq.true_count);
      }
      std::printf(" %6.4f/%s", acc.Mean(),
                  HumanBytes(syn.OHistogramBytes()).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace xee::benchx

#endif  // XEE_BENCH_ORDER_ERROR_COMMON_H_
