// Reproduces paper Figure 12: estimation error of queries WITH order
// axes whose target node lies in a BRANCH part, as a function of
// o-histogram memory (o-variance sweep), at p-histogram variances
// {0, 1, 5, 10}.
//
// Paper shape: error < 10% at o-variance 2 when p-variance is 0, < 6% at
// o-variance 0; curves flatten at high p-variance (inaccurate path
// frequencies cap what better order data can add).

#include "order_error_common.h"

int main(int argc, char** argv) {
  using namespace xee;
  auto config = bench_util::BenchConfig::FromArgs(argc, argv);
  bench_util::PrintHeader(
      "Figure 12: estimation error of order queries (branch-part targets) "
      "vs o-histogram memory");
  std::printf("cells are: avg-relative-error / o-histogram size\n");
  for (const auto& ds : bench_util::MakeDatasets(config)) {
    benchx::RunOrderErrorDataset(ds, config, /*trunk_targets=*/false);
  }
  return 0;
}
