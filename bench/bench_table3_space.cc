// Reproduces paper Table 3: space requirement of the encoding table, the
// raw path-id table, and the path-id binary tree, plus the path/pid
// counts driving them.
//
// Paper values (full scale):
//   #DistPaths / PidSize / #DistPid:  SSPlays 40/5B/115, DBLP 87/11B/327,
//   XMark 344/43B/6811
//   EncTab/PidTab/BinTree KB: SSPlays 0.24/0.92/0.93, DBLP 0.39/3.60/2.97,
//   XMark 2.90/299.7/67.3 (the tree saves ~78% on XMark)

#include <cstdio>

#include "bench_util/runner.h"
#include "common/strings.h"
#include "encoding/labeling.h"
#include "pidtree/collapsed_pid_tree.h"
#include "pidtree/pid_binary_tree.h"

int main(int argc, char** argv) {
  using namespace xee;
  auto config = bench_util::BenchConfig::FromArgs(argc, argv);
  bench_util::PrintHeader(
      "Table 3: space requirement of encoding table and path id binary "
      "tree");
  std::printf("%-10s %11s %8s %9s | %9s %9s %11s %7s %11s %7s\n", "Dataset",
              "#DistPaths", "PidSize", "#DistPid", "EncTab", "PidTab",
              "PidBinTree", "Saving", "Collapsed", "Saving");
  for (const auto& ds : bench_util::MakeDatasets(config)) {
    encoding::Labeling lab = encoding::LabelDocument(ds.doc);
    pidtree::PathIdBinaryTree tree(lab);
    pidtree::CollapsedPidTree collapsed(lab);
    auto saving = [&](size_t bytes) {
      return 100.0 * (1.0 - static_cast<double>(bytes) /
                                static_cast<double>(lab.PidTableSizeBytes()));
    };
    std::printf(
        "%-10s %11zu %7zuB %9zu | %9s %9s %11s %6.1f%% %11s %6.1f%%\n",
        ds.name.c_str(), lab.table.PathCount(), lab.PidSizeBytes(),
        lab.distinct_pids.size(), HumanBytes(lab.table.SizeBytes()).c_str(),
        HumanBytes(lab.PidTableSizeBytes()).c_str(),
        HumanBytes(tree.SizeBytes()).c_str(), saving(tree.SizeBytes()),
        HumanBytes(collapsed.SizeBytes()).c_str(),
        saving(collapsed.SizeBytes()));
  }
  std::printf(
      "\npaper (full scale): SSPlays 40/5B/115 0.24/0.92/0.93KB, DBLP "
      "87/11B/327 0.39/3.60/2.97KB, XMark 344/43B/6811 2.90/299.7/67.3KB "
      "(~78%% saving). The per-bit tree of Section 6 only pays off for\n"
      "long sparse path ids; the path-compressed Collapsed variant (see "
      "DESIGN.md) reaches the savings the paper reports.\n");
  return 0;
}
