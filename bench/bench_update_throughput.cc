// Update throughput: what incremental synopsis maintenance buys over
// the rebuild-from-scratch alternatives, and what background rebuilds
// cost the estimate path. Four phases per dataset, one JSON row each:
//
//   {"bench":"update_throughput","dataset":"dblp","mode":"incremental",
//    "deltas":...,"seconds":...,"deltas_per_sec":...}
//
//   - incremental: clone-insert deltas through the full serving path
//     (service ApplyDelta: resolve + patch + epoch publish), the
//     workload the delta module exists for;
//   - rebuild_per_delta: the same delta stream where every batch pays a
//     full Synopsis::Build over the materialized document — the cost of
//     having no incremental maintenance at all;
//   - poshist_rebuild: the position-histogram baseline's only option:
//     any insert shifts every start/end label, so each delta is a full
//     PositionHistogramEstimator::Rebuild;
//   - a "speedup" row dividing incremental by rebuild_per_delta (the
//     acceptance floor is 10x).
//
// An "update_estimate_latency" row then holds the estimate path against
// maintenance: per-query latency quantiles in steady state vs. with
// background rebuilds continuously in flight (rebuild.slow armed so a
// rebuild is always overlapping traffic). The p99 ratio is the
// "estimates never block on maintenance" claim in one number.
//
// Flags: the shared bench flags (--scale, --queries, --seed, --dataset).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/runner.h"
#include "common/fault.h"
#include "common/rng.h"
#include "delta/document_delta.h"
#include "estimator/synopsis.h"
#include "poshist/position_histogram.h"
#include "service/maintenance.h"
#include "service/service.h"
#include "workload/workload.h"

namespace xee {
namespace {

// Clone-insert op against the live shape, mirroring
// MaintenanceManager::CloneOp for the direct (service-less) baselines:
// pick a node by preorder rank, append a copy of its subtree under its
// own parent — exactly patchable by construction. Rejects ranks whose
// subtree exceeds `max_nodes` so one root-adjacent draw cannot double
// the document; retries a few draws before accepting whatever came up.
delta::DeltaOp MakeCloneOp(const delta::LiveDocument& live, Rng& rng,
                           size_t max_nodes) {
  const std::vector<xml::NodeId> by_rank = live.PreorderNodes();
  for (int attempt = 0; attempt < 8; ++attempt) {
    const auto rank = static_cast<size_t>(
        rng.UniformInt(1, static_cast<uint64_t>(by_rank.size() - 1)));
    const xml::NodeId node = by_rank[rank];
    if (attempt < 7 && live.CollectSubtree(node).size() > max_nodes) continue;
    const xml::NodeId parent = live.doc().Parent(node);
    uint32_t parent_rank = 0;
    for (size_t i = 0; i < by_rank.size(); ++i) {
      if (by_rank[i] == parent) {
        parent_rank = static_cast<uint32_t>(i);
        break;
      }
    }
    delta::DeltaOp op;
    op.kind = delta::DeltaOp::Kind::kInsert;
    op.target = parent_rank;
    op.subtree = delta::SpecFromSubtree(live, node);
    return op;
  }
  return {};
}

// Applies one already-resolved clone op directly to a LiveDocument (the
// baselines maintain no synopsis state, so there is no Apply to call).
void ApplyDirect(delta::LiveDocument& live, const delta::DeltaOp& op) {
  delta::DocumentDelta d;
  d.ops.push_back(op);
  auto targets = live.ResolveTargets(d);
  if (targets.ok()) live.InsertSubtree(targets.value()[0], op.subtree);
}

void EmitThroughputRow(const std::string& dataset, const char* mode,
                       size_t deltas, double seconds, size_t end_nodes) {
  std::printf(
      "{\"bench\":\"update_throughput\",\"dataset\":\"%s\",\"mode\":\"%s\","
      "\"deltas\":%zu,\"seconds\":%.6f,\"deltas_per_sec\":%.1f,"
      "\"end_nodes\":%zu}\n",
      dataset.c_str(), mode, deltas, seconds,
      seconds > 0 ? static_cast<double>(deltas) / seconds : 0.0, end_nodes);
}

struct LatencyQuantiles {
  double p50_us = 0;
  double p99_us = 0;
};

LatencyQuantiles Quantiles(std::vector<uint64_t> ns) {
  LatencyQuantiles q;
  if (ns.empty()) return q;
  std::sort(ns.begin(), ns.end());
  q.p50_us = static_cast<double>(ns[ns.size() / 2]) / 1e3;
  q.p99_us = static_cast<double>(ns[ns.size() * 99 / 100]) / 1e3;
  return q;
}

std::vector<std::string> LatencyQueries(const workload::Workload& wl) {
  std::vector<std::string> out;
  for (const auto& wq : wl.simple) out.push_back(wq.query.ToString());
  for (const auto& wq : wl.branch) out.push_back(wq.query.ToString());
  if (out.size() > 64) out.resize(64);
  return out;
}

void RunDataset(bench_util::DatasetRun& run, const bench_util::BenchConfig& config) {
  // The generated document is minted into pristine copies via
  // Materialize() — xml::Document is move-only, and every phase needs
  // its own.
  delta::LiveDocument source(std::move(run.doc));
  const workload::Workload wl = bench_util::MakeWorkload(source.doc(), config);
  const estimator::SynopsisOptions build;

  constexpr size_t kIncrementalDeltas = 256;
  constexpr size_t kRebuildDeltas = 24;
  constexpr size_t kCloneCap = 48;

  // --- incremental: the serving path (patch + epoch publish). The
  // truth attachment is off to match the baselines — live_truth
  // materializes a full document copy per publish for shadow auditing,
  // which is the audit's cost, not the patch path's (the
  // "incremental_audited" row below prices it separately). ------------
  double incr_per_sec = 0;
  for (const bool audited : {false, true}) {
    service::ServiceOptions opt;
    opt.threads = 1;
    opt.accuracy_sample = 0;
    opt.live_truth = audited;
    opt.patch_error_budget = 1.0;  // pure patch throughput, no rebuilds
    service::EstimationService svc(opt);
    svc.RegisterLive(run.name, source.Materialize(), build);
    Rng rng(config.seed ^ 0x5eed01);
    size_t applied = 0;
    double secs = 0;
    // Only the maintenance call is timed: op synthesis (CloneOp's
    // preorder walks) is this bench's traffic generator, not work the
    // delta module does for real callers — they arrive with deltas.
    for (size_t i = 0; i < kIncrementalDeltas; ++i) {
      const size_t nodes = svc.maintenance().LiveNodeCount(run.name);
      auto op = svc.maintenance().CloneOp(
          run.name, static_cast<uint32_t>(rng.UniformInt(1, nodes - 1)));
      if (!op.ok()) continue;
      delta::DocumentDelta d;
      d.ops.push_back(std::move(op).value());
      secs += bench_util::TimeSeconds([&] {
        if (svc.ApplyDelta(run.name, d).ok()) ++applied;
      });
    }
    if (!audited) {
      incr_per_sec = secs > 0 ? static_cast<double>(applied) / secs : 0;
    }
    EmitThroughputRow(run.name, audited ? "incremental_audited" : "incremental",
                      applied, secs,
                      svc.maintenance().LiveNodeCount(run.name));
  }

  // --- rebuild_per_delta: no maintenance, full build per batch. ------
  double rebuild_per_sec = 0;
  {
    delta::LiveDocument live(source.Materialize());
    Rng rng(config.seed ^ 0x5eed02);
    double secs = 0;
    for (size_t i = 0; i < kRebuildDeltas; ++i) {
      ApplyDirect(live, MakeCloneOp(live, rng, kCloneCap));
      secs += bench_util::TimeSeconds([&] {
        const xml::Document mat = live.Materialize();
        (void)estimator::Synopsis::Build(mat, build);
      });
    }
    rebuild_per_sec =
        secs > 0 ? static_cast<double>(kRebuildDeltas) / secs : 0;
    EmitThroughputRow(run.name, "rebuild_per_delta", kRebuildDeltas, secs,
                      live.live_nodes());
  }

  // --- poshist_rebuild: the related-work baseline's full refresh. ----
  {
    delta::LiveDocument live(source.Materialize());
    poshist::PositionHistogramEstimator pos =
        poshist::PositionHistogramEstimator::Build(live.doc());
    Rng rng(config.seed ^ 0x5eed03);
    double secs = 0;
    for (size_t i = 0; i < kRebuildDeltas; ++i) {
      ApplyDirect(live, MakeCloneOp(live, rng, kCloneCap));
      secs += bench_util::TimeSeconds([&] {
        const xml::Document mat = live.Materialize();
        pos.Rebuild(mat);
      });
    }
    EmitThroughputRow(run.name, "poshist_rebuild", kRebuildDeltas, secs,
                      live.live_nodes());
  }

  std::printf(
      "{\"bench\":\"update_throughput\",\"dataset\":\"%s\",\"mode\":"
      "\"speedup\",\"incremental_per_sec\":%.1f,\"rebuild_per_sec\":%.1f,"
      "\"speedup\":%.1f}\n",
      run.name.c_str(), incr_per_sec, rebuild_per_sec,
      rebuild_per_sec > 0 ? incr_per_sec / rebuild_per_sec : 0.0);

  // --- estimate latency: steady state vs. rebuild continuously in
  // flight. rebuild.slow stretches each rebuild (worker sleeps, not
  // spins) so traffic genuinely overlaps the rebuild pipeline instead
  // of racing through between publishes. ------------------------------
  {
    service::ServiceOptions opt;
    opt.threads = 2;
    opt.accuracy_sample = 0;
    opt.trace_sample = 0;  // this bench times externally
    service::EstimationService svc(opt);
    svc.RegisterLive(run.name, source.Materialize(), build);
    const std::vector<std::string> queries = LatencyQueries(wl);
    if (queries.empty()) return;

    auto measure = [&](bool churn) {
      std::vector<uint64_t> ns;
      constexpr size_t kRounds = 30;
      ns.reserve(kRounds * queries.size());
      for (size_t r = 0; r < kRounds; ++r) {
        if (churn && r % 2 == 0) svc.ScheduleRebuild(run.name, "manual");
        for (const std::string& q : queries) {
          const auto t0 = std::chrono::steady_clock::now();
          (void)svc.Estimate(run.name, q);
          const auto t1 = std::chrono::steady_clock::now();
          ns.push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
        }
      }
      return Quantiles(std::move(ns));
    };

    for (const std::string& q : queries) (void)svc.Estimate(run.name, q);
    const LatencyQuantiles steady = measure(/*churn=*/false);

    FaultConfig slow;
    slow.probability = 1.0;
    slow.payload = 2;  // ms the rebuild worker sleeps per build
    slow.seed = config.seed;
    FaultInjector::Global().Arm(service::MaintenanceManager::kSlowFaultSite,
                                slow);
    const LatencyQuantiles during = measure(/*churn=*/true);
    FaultInjector::Global().Reset();
    svc.DrainMaintenance(30'000);

    uint64_t rebuilds = 0;
    for (const auto& row : svc.maintenance().Rows()) {
      rebuilds += row.rebuilds_completed;
    }
    std::printf(
        "{\"bench\":\"update_estimate_latency\",\"dataset\":\"%s\","
        "\"queries\":%zu,\"rebuilds\":%llu,"
        "\"steady_p50_us\":%.3f,\"steady_p99_us\":%.3f,"
        "\"rebuild_p50_us\":%.3f,\"rebuild_p99_us\":%.3f,"
        "\"p99_ratio\":%.2f}\n",
        run.name.c_str(), queries.size(),
        static_cast<unsigned long long>(rebuilds), steady.p50_us,
        steady.p99_us, during.p50_us, during.p99_us,
        steady.p99_us > 0 ? during.p99_us / steady.p99_us : 0.0);
  }
}

}  // namespace
}  // namespace xee

int main(int argc, char** argv) {
  xee::bench_util::BenchConfig config =
      xee::bench_util::BenchConfig::FromArgs(argc, argv);
  xee::bench_util::PrintHeader("Update throughput: incremental vs rebuild");
  std::vector<xee::bench_util::DatasetRun> runs =
      xee::bench_util::MakeDatasets(config);
  for (auto& run : runs) {
    xee::RunDataset(run, config);
  }
  return 0;
}
