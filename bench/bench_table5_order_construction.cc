// Reproduces paper Table 5: construction cost of the order summaries —
// path-order collection time, o-histogram size, o-histogram construction
// time.
//
// Paper shape: order collection dominates everything else (DBLP worst by
// far because of its enormous sibling fan-out); the o-histogram build
// itself is fast (single scan of non-empty cells).

#include <cstdio>

#include "bench_util/runner.h"
#include "common/strings.h"
#include "estimator/synopsis.h"

int main(int argc, char** argv) {
  using namespace xee;
  auto config = bench_util::BenchConfig::FromArgs(argc, argv);
  bench_util::PrintHeader("Table 5: construction for order data");
  std::printf("%-10s %14s %14s %14s %16s\n", "Dataset", "OrderCollect",
              "O-HistoSize", "O-HistoTime", "Collect/PathRatio");
  for (const auto& ds : bench_util::MakeDatasets(config)) {
    estimator::SynopsisOptions opt;  // exact, with order
    estimator::BuildProfile profile;
    estimator::Synopsis syn =
        estimator::Synopsis::Build(ds.doc, opt, &profile);
    const double ratio = profile.collect_path_s > 0
                             ? profile.collect_order_s / profile.collect_path_s
                             : 0;
    std::printf("%-10s %13.3fs %14s %13.4fs %15.1fx\n", ds.name.c_str(),
                profile.collect_order_s,
                HumanBytes(syn.OHistogramBytes()).c_str(),
                profile.o_histogram_s, ratio);
  }
  std::printf(
      "\npaper (full scale): collect 2.2s/4574.8s/2347.2s, o-histo "
      "1.2-1.8/7.4-12.7/11-21.3KB, build 0.003/0.03/2.1s — DBLP's order "
      "collection is by far the most expensive phase\n");
  return 0;
}
