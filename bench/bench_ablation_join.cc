// Ablation A2 (DESIGN.md): path-id join to fixpoint vs the classic
// two-pass (bottom-up + top-down) semi-join reducer. For tree queries
// the two produce identical candidate lists (acyclic full-reducer), so
// the interesting dimension is cost: containment tests and wall time.

#include <cmath>
#include <cstdio>

#include "bench_util/metrics.h"
#include "bench_util/runner.h"
#include "estimator/estimator.h"

int main(int argc, char** argv) {
  using namespace xee;
  auto config = bench_util::BenchConfig::FromArgs(argc, argv);
  bench_util::PrintHeader(
      "Ablation A2: path-id join fixpoint vs two-pass reduction");
  std::printf("%-10s %10s | %14s %10s | %14s %10s | %10s\n", "Dataset",
              "queries", "fixpoint-cmp", "time", "two-pass-cmp", "time",
              "max|diff|");
  for (const auto& ds : bench_util::MakeDatasets(config)) {
    workload::Workload w = bench_util::MakeWorkload(ds.doc, config);
    estimator::SynopsisOptions opt;
    opt.build_order = false;
    estimator::Synopsis syn = estimator::Synopsis::Build(ds.doc, opt);

    estimator::Estimator fix(syn), two(syn);
    two.set_join_to_fixpoint(false);

    std::vector<double> fix_out, two_out;
    double fix_s = bench_util::TimeSeconds([&] {
      for (const auto* list : {&w.simple, &w.branch}) {
        for (const auto& wq : *list) {
          auto r = fix.Estimate(wq.query);
          fix_out.push_back(r.ok() ? r.value() : -1);
        }
      }
    });
    double two_s = bench_util::TimeSeconds([&] {
      for (const auto* list : {&w.simple, &w.branch}) {
        for (const auto& wq : *list) {
          auto r = two.Estimate(wq.query);
          two_out.push_back(r.ok() ? r.value() : -1);
        }
      }
    });
    double max_diff = 0;
    for (size_t i = 0; i < fix_out.size(); ++i) {
      max_diff = std::max(max_diff, std::abs(fix_out[i] - two_out[i]));
    }
    std::printf("%-10s %10zu | %14zu %9.3fs | %14zu %9.3fs | %10.2e\n",
                ds.name.c_str(), fix_out.size(), fix.containment_tests(),
                fix_s, two.containment_tests(), two_s, max_diff);
  }
  std::printf(
      "\nexpected: identical estimates (max|diff| ~ 0) — the two-pass "
      "reducer is a full reducer for tree queries. Containment-test "
      "counts differ by dataset: the fixpoint loop exits early on "
      "already-clean lists, while the two-pass variant always sweeps "
      "every edge twice in both directions.\n");
  return 0;
}
