// Reproduces paper Figure 9: memory usage of the p-histogram and the
// o-histogram as the intra-bucket variance grows from 0 to 14, for each
// dataset.
//
// Paper shape: both curves decrease with variance; p- and o-histograms
// are comparable for SSPlays and XMark while DBLP's o-histogram is much
// larger than its p-histogram (shallow-and-wide data generates far more
// order information than path information).

#include <cstdio>

#include "bench_util/runner.h"
#include "common/strings.h"
#include "estimator/synopsis.h"

int main(int argc, char** argv) {
  using namespace xee;
  auto config = bench_util::BenchConfig::FromArgs(argc, argv);
  bench_util::PrintHeader(
      "Figure 9: p-histogram and o-histogram memory vs intra-bucket "
      "variance");
  for (const auto& ds : bench_util::MakeDatasets(config)) {
    std::printf("\n[%s]\n%10s %14s %14s\n", ds.name.c_str(), "variance",
                "p-histo", "o-histo");
    for (double v : {0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0}) {
      estimator::SynopsisOptions opt;
      opt.p_variance = v;
      opt.o_variance = v;
      estimator::Synopsis syn = estimator::Synopsis::Build(ds.doc, opt);
      std::printf("%10.0f %14s %14s\n", v,
                  HumanBytes(syn.PHistogramBytes()).c_str(),
                  HumanBytes(syn.OHistogramBytes()).c_str());
    }
  }
  std::printf(
      "\npaper shape: both shrink as variance grows; DBLP o-histogram >> "
      "p-histogram, SSPlays/XMark comparable\n");
  return 0;
}
