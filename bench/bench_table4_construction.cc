// Reproduces paper Table 4: construction cost for queries without order
// axes — the proposed path-based solution (path collection time,
// p-histogram size and construction time) versus XSketch (build time and
// size at a budget matched to the proposed summary's total size).
//
// Paper shape: p-histogram construction is near-instant (single scan);
// XSketch's greedy refinement is orders of magnitude slower and grows
// quickly with the statistics size (XMark at 90-95KB took > 1 week on
// the authors' machine).

#include <cstdio>

#include "bench_util/runner.h"
#include "common/strings.h"
#include "estimator/synopsis.h"
#include "xsketch/xsketch.h"

int main(int argc, char** argv) {
  using namespace xee;
  auto config = bench_util::BenchConfig::FromArgs(argc, argv);
  bench_util::PrintHeader(
      "Table 4: summary construction for queries without order axes");
  std::printf("%-10s | %12s %12s %12s | %12s %12s %8s\n", "Dataset",
              "PathCollect", "P-HistoSize", "P-HistoTime", "XSketchTime",
              "XSketchSize", "Steps");
  for (const auto& ds : bench_util::MakeDatasets(config)) {
    estimator::SynopsisOptions opt;
    opt.build_order = false;
    estimator::BuildProfile profile;
    estimator::Synopsis syn = estimator::Synopsis::Build(ds.doc, opt, &profile);

    xsketch::XSketchOptions xopt;
    xopt.budget_bytes = syn.PathSummaryBytes();
    xsketch::XSketch sk;  // NOLINT(clang-diagnostic-unused) built below
    double xsketch_s = bench_util::TimeSeconds(
        [&] { sk = xsketch::XSketch::Build(ds.doc, xopt); });

    std::printf("%-10s | %11.3fs %12s %11.4fs | %11.3fs %12s %8zu\n",
                ds.name.c_str(), profile.collect_path_s,
                HumanBytes(syn.PHistogramBytes()).c_str(),
                profile.p_histogram_s, xsketch_s,
                HumanBytes(sk.SizeBytes()).c_str(), sk.refinement_steps());
  }
  std::printf(
      "\npaper shape: p-histogram construction <0.001s on every dataset; "
      "XSketch 2-30s on the small datasets and >1 week on XMark at 90KB\n");
  return 0;
}
