// Reproduces paper Table 1: characteristics of the datasets (size,
// number of distinct element tags, number of elements).
//
// Paper values (full-size originals):
//   SSPlays 7.5 MB, 21 tags, 179,690 elements
//   DBLP   65.2 MB, 31 tags, 1,711,542 elements
//   XMark  20.4 MB, 74 tags, 319,815 elements
// The built-in generators default to scaled-down documents; pass
// --scale=4 (SSPlays), 16 (DBLP), 6 (XMark) to approach paper sizes.

#include <cstdio>

#include "bench_util/runner.h"
#include "common/strings.h"
#include "xml/doc_stats.h"

int main(int argc, char** argv) {
  using namespace xee;
  auto config = bench_util::BenchConfig::FromArgs(argc, argv);
  bench_util::PrintHeader("Table 1: characteristics of datasets");
  std::printf("%-10s %12s %18s %12s %10s %10s\n", "Dataset", "Size",
              "#(Distinct Eles)", "#(Eles)", "MaxDepth", "AvgFanout");
  for (const auto& ds : bench_util::MakeDatasets(config)) {
    xml::DocStats s = xml::ComputeDocStats(ds.doc);
    std::printf("%-10s %12s %18zu %12zu %10zu %10.2f\n", ds.name.c_str(),
                HumanBytes(s.serialized_bytes).c_str(), s.distinct_elements,
                s.element_count, s.max_depth, s.avg_fanout);
  }
  std::printf(
      "\npaper (full scale): SSPlays 7.5MB/21/179690, DBLP 65.2MB/31/"
      "1711542, XMark 20.4MB/74/319815\n");
  return 0;
}
