// Reproduces paper Figure 10: estimation error of queries WITHOUT order
// axes (simple / branch / all) as a function of p-histogram memory,
// obtained by sweeping the p-histogram intra-bucket variance.
//
// Paper shape: error decreases as memory grows (variance shrinks); at
// variance 0 simple queries are exact and branch error is < 7%.

#include <cstdio>

#include "bench_util/metrics.h"
#include "bench_util/runner.h"
#include "common/strings.h"
#include "estimator/estimator.h"

namespace {

using namespace xee;
using bench_util::ErrorAccumulator;

void RunDataset(const bench_util::DatasetRun& ds,
                const bench_util::BenchConfig& config) {
  workload::Workload w = bench_util::MakeWorkload(ds.doc, config);
  std::printf("\n[%s] workload: %zu simple, %zu branch\n", ds.name.c_str(),
              w.simple.size(), w.branch.size());
  std::printf("%10s %14s %10s %10s %10s\n", "p-var", "p-histo", "simple",
              "branch", "all");

  for (double v : {16.0, 12.0, 8.0, 4.0, 2.0, 1.0, 0.0}) {
    estimator::SynopsisOptions opt;
    opt.p_variance = v;
    opt.build_order = false;
    estimator::Synopsis syn = estimator::Synopsis::Build(ds.doc, opt);
    estimator::Estimator est(syn);

    ErrorAccumulator simple, branch, all;
    for (const auto* list : {&w.simple, &w.branch}) {
      for (const auto& wq : *list) {
        auto r = est.Estimate(wq.query);
        if (!r.ok()) continue;
        (list == &w.simple ? simple : branch).Add(r.value(), wq.true_count);
        all.Add(r.value(), wq.true_count);
      }
    }
    std::printf("%10.1f %14s %9.4f %10.4f %10.4f\n", v,
                HumanBytes(syn.PHistogramBytes()).c_str(), simple.Mean(),
                branch.Mean(), all.Mean());
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto config = bench_util::BenchConfig::FromArgs(argc, argv);
  bench_util::PrintHeader(
      "Figure 10: estimation error of queries without order axes vs "
      "p-histogram memory");
  for (const auto& ds : bench_util::MakeDatasets(config)) {
    RunDataset(ds, config);
  }
  return 0;
}
