// Serving-layer throughput: queries/sec through EstimationService as a
// function of worker-thread count (1/2/4/8) and plan-cache temperature
// (cold = every query compiles, warm = plans cached), plus the
// single-query latency win of a warm plan cache over the uncached
// parse+join path. Each measurement is emitted as one JSON line so
// future PRs can track the serving trajectory:
//
//   {"bench":"service_throughput","dataset":"xmark","mode":"warm",
//    "threads":4,"queries":...,"seconds":...,"qps":...}
//
// A "service_memo" phase measures the estimate-memo rung: a warm repeat
// whose plan was evicted (memo hit) against a repeat whose plan is still
// cached (exact hit), with the probe-stage costs of both paths.
//
// A final phase sweeps the shadow-sampling rate (off / 1-in-256 default
// / full) and emits "service_accuracy" rows with the qps cost and the
// shadow volume + aggregate q-error each rate buys.
//
// Flags: the shared bench flags (--scale, --queries, --seed, --dataset).

#include <algorithm>
#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util/runner.h"
#include "common/rng.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "service/service.h"
#include "sim/traffic.h"
#include "workload/workload.h"

namespace xee {
namespace {

// Thread counts above the machine's core count time scheduler
// contention, not the service; their rows are flagged so trend tooling
// can exclude them instead of chasing phantom p99 regressions (an 8-way
// sweep on a 1-core container once reported a 12.6ms parse p99).
bool Oversubscribed(size_t threads) {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 && threads > hw;
}

std::vector<service::QueryRequest> WorkloadRequests(
    const std::string& name, const workload::Workload& wl) {
  std::vector<service::QueryRequest> reqs;
  auto add = [&](const std::vector<workload::WorkloadQuery>& queries) {
    for (const workload::WorkloadQuery& wq : queries) {
      reqs.push_back(service::QueryRequest{name, wq.query.ToString()});
    }
  };
  add(wl.simple);
  add(wl.branch);
  add(wl.order_branch_target);
  add(wl.order_trunk_target);
  return reqs;
}

void EmitRow(const std::string& dataset, const char* mode, size_t threads,
             size_t queries, double seconds) {
  std::printf(
      "{\"bench\":\"service_throughput\",\"dataset\":\"%s\","
      "\"mode\":\"%s\",\"threads\":%zu,\"queries\":%zu,"
      "\"seconds\":%.6f,\"qps\":%.1f%s}\n",
      dataset.c_str(), mode, threads, queries,
      seconds, seconds > 0 ? static_cast<double>(queries) / seconds : 0.0,
      Oversubscribed(threads) ? ",\"oversubscribed\":true" : "");
}

// Delta cursors over one service's stage histograms, emitting one JSON
// row per pipeline stage with its latency quantiles — where a query's
// time actually goes (parse vs join vs formula), tracked across PRs
// like the qps rows above.
//
// The registry histograms are cumulative since service construction, so
// rows read via ServiceStatsSnapshot after a warm-up fold the warm-up's
// samples into the measured mode — that is where the per-mode count
// drift (56 vs 58) and the cold compile tail bleeding into "warm"
// formula quantiles came from. Sync() parks the cursors after warm-up;
// Emit() reports only what the measured run recorded. Stage-emitting
// services also run trace_sample=1, so `count` is the exact number of
// stage executions, stable across runs and modes, rather than a 1-in-16
// sample whose size depends on where the shared sampling cursor parked.
class StageScraper {
 public:
  explicit StageScraper(service::EstimationService& svc) {
    for (size_t i = 0; i < obs::kStageCount; ++i) {
      hists_[i] = &svc.obs().GetHistogram(
          "service.stage." +
          std::string(obs::StageName(static_cast<obs::Stage>(i))) + "_ns");
    }
    hists_[obs::kStageCount] = &svc.obs().GetHistogram("service.request_ns");
    Sync();
  }

  /// Discards everything recorded so far (call after a warm-up).
  void Sync() {
    for (size_t i = 0; i <= obs::kStageCount; ++i)
      (void)wins_[i].Advance(*hists_[i]);
  }

  void Emit(const std::string& dataset, const char* mode, size_t threads) {
    for (size_t i = 0; i <= obs::kStageCount; ++i) {
      const obs::HistogramSnapshot h = wins_[i].Advance(*hists_[i]);
      const std::string_view stage =
          i < obs::kStageCount ? obs::StageName(static_cast<obs::Stage>(i))
                               : std::string_view("request");
      std::printf(
          "{\"bench\":\"service_stage\",\"dataset\":\"%s\",\"mode\":\"%s\","
          "\"threads\":%zu,\"stage\":\"%.*s\",\"count\":%llu,"
          "\"mean_us\":%.3f,\"p50_us\":%.3f,\"p90_us\":%.3f,\"p99_us\":%.3f"
          "%s}\n",
          dataset.c_str(), mode, threads, static_cast<int>(stage.size()),
          stage.data(), static_cast<unsigned long long>(h.count), h.mean / 1e3,
          static_cast<double>(h.p50) / 1e3, static_cast<double>(h.p90) / 1e3,
          static_cast<double>(h.p99) / 1e3,
          Oversubscribed(threads) ? ",\"oversubscribed\":true" : "");
    }
  }

 private:
  obs::Histogram* hists_[obs::kStageCount + 1];
  obs::HistogramWindow wins_[obs::kStageCount + 1];
};

// The estimate-memo rung (DESIGN.md §13): what a warm repeat costs when
// its compiled plan is gone. The baseline service keeps its plan cache,
// so a repeat is one exact-key probe; the memo service has its plan
// cache starved (budget 0, one shard — at most one resident plan) with
// the memo on, so a repeat is parse + canonicalize + one memo probe
// instead of a full recompile. The acceptance bar watches the probe
// costs: the memo probe (timed under cache_lookup like every other
// probe) must stay within 2x of a plan-cache probe.
void RunMemoPhase(const bench_util::DatasetRun& run,
                  const std::shared_ptr<const estimator::Synopsis>& syn,
                  const std::vector<service::QueryRequest>& reqs) {
  struct PathResult {
    double repeat_us = 0;   ///< mean request latency of the repeat pass
    double probe_us = 0;    ///< mean cache_lookup stage latency
    uint64_t hits = 0;      ///< exact hits / memo hits over the pass
  };
  PathResult results[2];
  for (int memo_path = 0; memo_path < 2; ++memo_path) {
    service::ServiceOptions opt;
    opt.threads = 1;
    opt.trace_sample = 1;
    opt.accuracy_sample = 0;
    if (memo_path) {
      opt.plan_cache_bytes = 0;
      opt.cache_shards = 1;
    }
    service::EstimationService svc(opt);
    svc.registry().Register(run.name, syn);
    auto run_all = [&] {
      for (const service::QueryRequest& r : reqs) {
        (void)svc.Estimate(r.synopsis, r.xpath);
      }
    };
    run_all();  // cold pass: fills the plan cache / the memo
    obs::Histogram& probe_hist =
        svc.obs().GetHistogram("service.stage.cache_lookup_ns");
    obs::HistogramWindow probe_win;
    (void)probe_win.Advance(probe_hist);
    const service::ServiceStatsSnapshot before = svc.Stats();
    const double secs = bench_util::TimeSeconds(run_all);
    const service::ServiceStatsSnapshot after = svc.Stats();
    PathResult& r = results[memo_path];
    r.repeat_us = 1e6 * secs / static_cast<double>(reqs.size());
    r.probe_us = probe_win.Advance(probe_hist).mean / 1e3;
    r.hits = memo_path ? after.memo_hits - before.memo_hits
                       : after.exact_hits - before.exact_hits;
  }
  const PathResult& exact = results[0];
  const PathResult& memo = results[1];
  std::printf(
      "{\"bench\":\"service_memo\",\"dataset\":\"%s\",\"queries\":%zu,"
      "\"exact_repeat_us\":%.3f,\"exact_probe_us\":%.3f,"
      "\"exact_hits\":%llu,\"memo_repeat_us\":%.3f,\"memo_probe_us\":%.3f,"
      "\"memo_hits\":%llu,\"probe_ratio\":%.3f,\"repeat_ratio\":%.3f}\n",
      run.name.c_str(), reqs.size(), exact.repeat_us, exact.probe_us,
      static_cast<unsigned long long>(exact.hits), memo.repeat_us,
      memo.probe_us, static_cast<unsigned long long>(memo.hits),
      exact.probe_us > 0 ? memo.probe_us / exact.probe_us : 0.0,
      exact.repeat_us > 0 ? memo.repeat_us / exact.repeat_us : 0.0);
  std::printf(
      "memo rung: evicted-plan repeat %.1fus/query vs cached-plan "
      "%.1fus/query (%llu memo hits)\n\n",
      memo.repeat_us, exact.repeat_us,
      static_cast<unsigned long long>(memo.hits));
}

// The query-intelligence phase (DESIGN.md §15): a long-tail alias storm
// against a deliberately small plan cache and memo, with the analyzer
// on vs off. Every workload query is issued under up to three
// spellings — itself, an axis-expanded alias (same canonical key by
// construction), and the root-anchored semantic form (a *different*
// canonical key that only the analyzer's rewrites reunite with the
// family's plan). The off-arm compiles and caches the semantic
// spellings as separate plans, inflating the working set past the
// budget; the on-arm's hit rate and repeat qps measure what plan
// sharing buys under cache pressure.
void RunIntelPhase(const bench_util::DatasetRun& run,
                   const std::shared_ptr<const estimator::Synopsis>& syn,
                   const std::vector<service::QueryRequest>& reqs,
                   uint64_t seed) {
  // Families: "//"-headed workload queries that actually have a
  // root-anchored respelling, capped so the *shared* canonical set fits
  // the starved cache while the off-arm's doubled key space does not —
  // the regime where sharing decides between a plan hit and a recompile
  // rather than shaving a few percent off uniform churn.
  const std::string root_name =
      run.doc.TagNameOf(run.doc.Tag(run.doc.root()));
  constexpr size_t kMaxFamilies = 120;
  std::vector<service::QueryRequest> storm;
  storm.reserve(kMaxFamilies * 3);
  Rng rng(seed ^ 0x147e1u);
  size_t families = 0;
  for (const service::QueryRequest& r : reqs) {
    if (families >= kMaxFamilies) break;
    const std::string anchored =
        sim::TrafficSource::SemanticAliasSpelling(root_name, r.xpath);
    if (anchored == r.xpath) continue;
    ++families;
    storm.push_back(r);
    storm.push_back(service::QueryRequest{r.synopsis, anchored});
    const std::string alias = sim::TrafficSource::AliasSpelling(rng, r.xpath);
    if (alias != r.xpath) {
      storm.push_back(service::QueryRequest{r.synopsis, alias});
    }
  }
  if (storm.empty()) {
    std::printf("no '//'-headed families; skipping intel phase\n");
    return;
  }

  struct ArmResult {
    double qps = 0;
    double hit_rate = 0;
    uint64_t compiles = 0;
  };
  ArmResult arms[2];
  for (int analyzer = 0; analyzer < 2; ++analyzer) {
    service::ServiceOptions opt;
    opt.threads = 1;
    opt.accuracy_sample = 0;
    opt.enable_analyzer = analyzer == 1;
    opt.plan_cache_bytes = 256 << 10;
    // Memo off: its entries are a few dozen bytes, so any plausible
    // budget would absorb both arms' canonical key sets and hide the
    // plan-cache contrast this phase exists to measure (the memo rung
    // has its own phase above).
    opt.estimate_memo_bytes = 0;
    service::EstimationService svc(opt);
    svc.registry().Register(run.name, syn);
    auto run_all = [&] {
      for (const service::QueryRequest& r : storm) {
        (void)svc.Estimate(r.synopsis, r.xpath);
      }
    };
    run_all();  // warm pass: fill whatever fits in the starved caches
    const service::ServiceStatsSnapshot before = svc.Stats();
    const double secs = bench_util::TimeSeconds(run_all);
    const service::ServiceStatsSnapshot after = svc.Stats();
    const uint64_t requests = after.requests - before.requests;
    const uint64_t hits = (after.exact_hits - before.exact_hits) +
                          (after.canonical_hits - before.canonical_hits) +
                          (after.memo_hits - before.memo_hits);
    ArmResult& arm = arms[analyzer];
    arm.qps = secs > 0 ? static_cast<double>(storm.size()) / secs : 0.0;
    arm.hit_rate =
        requests > 0 ? static_cast<double>(hits) / requests : 0.0;
    arm.compiles = after.misses - before.misses;
    std::printf(
        "{\"bench\":\"service_intel\",\"dataset\":\"%s\","
        "\"analyzer\":%s,\"queries\":%zu,\"seconds\":%.6f,\"qps\":%.1f,"
        "\"hit_rate\":%.4f,\"exact_hits\":%llu,\"canonical_hits\":%llu,"
        "\"memo_hits\":%llu,\"compiles\":%llu,\"pruned\":%llu,"
        "\"rewritten\":%llu,\"cache_entries\":%llu,\"evictions\":%llu}\n",
        run.name.c_str(), analyzer ? "true" : "false", storm.size(), secs,
        arm.qps, arm.hit_rate,
        static_cast<unsigned long long>(after.exact_hits - before.exact_hits),
        static_cast<unsigned long long>(after.canonical_hits -
                                        before.canonical_hits),
        static_cast<unsigned long long>(after.memo_hits - before.memo_hits),
        static_cast<unsigned long long>(arm.compiles),
        static_cast<unsigned long long>(after.analyzer_pruned -
                                        before.analyzer_pruned),
        static_cast<unsigned long long>(after.analyzer_rewritten -
                                        before.analyzer_rewritten),
        static_cast<unsigned long long>(after.cache_entries),
        static_cast<unsigned long long>(after.cache_evictions -
                                        before.cache_evictions));
  }
  std::printf(
      "intel storm: analyzer on %.0f qps at %.1f%% hit rate "
      "(%llu recompiles) vs off %.0f qps at %.1f%% (%llu recompiles)\n\n",
      arms[1].qps, 100.0 * arms[1].hit_rate,
      static_cast<unsigned long long>(arms[1].compiles), arms[0].qps,
      100.0 * arms[0].hit_rate,
      static_cast<unsigned long long>(arms[0].compiles));
}

// Shadow-sampling cost and yield: warm single-thread throughput with
// accuracy observability off / at the 1-in-256 default / at full
// sampling, plus the shadow volume and aggregate q-error each setting
// recorded (DESIGN.md §11). The off-vs-256 pair is the number the
// acceptance bar watches: the default sampling rate must be hot-path
// noise. Full sampling shows the worst case — on few cores the shadow
// evaluations compete with the serving thread itself.
void RunAccuracyPhase(const bench_util::DatasetRun& run,
                      const std::shared_ptr<const estimator::Synopsis>& syn,
                      const std::vector<service::QueryRequest>& reqs) {
  for (const size_t sample : {size_t{0}, size_t{256}, size_t{1}}) {
    service::ServiceOptions opt;
    opt.threads = 1;
    opt.accuracy_sample = sample;
    opt.accuracy_max_pending = 1 << 16;
    service::EstimationService svc(opt);
    // Non-owning alias: the dataset outlives the service, and attaching
    // it arms the shadow pipeline's exact-count oracle.
    std::shared_ptr<const xml::Document> doc(
        std::shared_ptr<const xml::Document>(), &run.doc);
    svc.registry().Register(run.name, syn, doc);
    auto run_all = [&] {
      for (const service::QueryRequest& r : reqs) {
        (void)svc.Estimate(r.synopsis, r.xpath);
      }
    };
    run_all();  // warm the plan cache (and absorb first-touch sampling)
    (void)svc.DrainShadow();
    const double secs = bench_util::TimeSeconds(run_all);
    (void)svc.DrainShadow();

    uint64_t count = 0;
    double qerror_weighted = 0;
    for (const obs::ClassAccuracy& c : svc.accuracy().Classes()) {
      count += c.count;
      qerror_weighted += static_cast<double>(c.count) * c.mean_qerror;
    }
    std::printf(
        "{\"bench\":\"service_accuracy\",\"dataset\":\"%s\",\"sample\":%zu,"
        "\"queries\":%zu,\"seconds\":%.6f,\"qps\":%.1f,"
        "\"shadow_started\":%llu,\"shadow_recorded\":%llu,"
        "\"mean_qerror\":%.6f}\n",
        run.name.c_str(), sample, reqs.size(), secs,
        secs > 0 ? static_cast<double>(reqs.size()) / secs : 0.0,
        static_cast<unsigned long long>(
            svc.obs().CounterValue("accuracy.samples", "phase=started")),
        static_cast<unsigned long long>(
            svc.obs().CounterValue("accuracy.samples", "phase=recorded")),
        count > 0 ? qerror_weighted / static_cast<double>(count) : 0.0);
  }
}

// Flight-data observability cost (DESIGN.md Â§16): warm single-thread
// throughput with the whole PR-10 surface live â per-tenant rows, the
// time-series store (scraped once per rep), the SLO engine, the flight
// recorder, tail-based trace retention â against an arm with all of it
// switched off at runtime. The acceptance bar: the on-arm median qps
// stays within 2% of off.
//
// Methodology: both services are built and warmed up front, then the
// timed reps strictly alternate off/on so slow drift (thermal, cgroup
// throttling, a neighbour container waking up) hits both arms equally
// instead of whichever arm ran second. Each timed rep makes kObsPasses
// passes over the workload â a single pass is ~1ms, far too short to
// time against scheduler noise â and the reported number is the median
// rep, not the mean, so one hiccup cannot decide the comparison. The
// on-arm row also carries the tail-retention ledger per outcome class,
// fed by a small deterministic outcome mix (expired deadlines, parse
// errors) driven after the timed reps.
//
// Getting under the bar took three hot-path changes, found by bisecting
// with a min-of-reps microbench (this macro phase swings a few percent
// on a shared host even with the pairing): the flight recorder's
// per-event fetch_add pair became a single-writer-per-shard load/store
// (23ns -> 3ns per Record), the recorder prefetches the next ring slot
// so the following request's append does not stall on an evicted line,
// and the per-tenant counters moved from registry fetch_adds to
// single-writer lane cells read through derived registry rows. Together
// they roughly halved the obs layer's per-request cost (~26ns -> ~13ns
// on the microbench).
void RunObs2Phase(const bench_util::DatasetRun& run,
                  const std::shared_ptr<const estimator::Synopsis>& syn,
                  const std::vector<service::QueryRequest>& reqs) {
  constexpr size_t kObsReps = 11;
  constexpr size_t kObsPasses = 24;

  service::ServiceOptions off_opt;
  off_opt.threads = 1;
  off_opt.ts_interval_us = 0;   // no time-series store, no SLO engine
  off_opt.tenant_max = 0;       // no per-tenant dimension
  off_opt.flight_bytes = 0;     // no flight recorder
  off_opt.tail_retention = false;

  service::ServiceOptions on_opt;
  on_opt.threads = 1;
  on_opt.slos = service::DefaultSloSpecs(0.999, 5'000'000'000, 4.0);
  // ts_interval_us / tenant_max / flight_bytes / tail_retention ride on
  // their defaults: the on arm is the shipped configuration.

  service::EstimationService off_svc(off_opt);
  service::EstimationService on_svc(on_opt);
  off_svc.registry().Register(run.name, syn);
  on_svc.registry().Register(run.name, syn);
  auto run_all = [&](service::EstimationService& svc) {
    for (size_t p = 0; p < kObsPasses; ++p) {
      for (const service::QueryRequest& r : reqs) {
        (void)svc.Estimate(r.synopsis, r.xpath);
      }
    }
  };
  run_all(off_svc);  // warm both plan caches
  run_all(on_svc);

  const double queries = static_cast<double>(kObsPasses * reqs.size());
  std::vector<double> qps[2];
  uint64_t vnow = 0;
  for (size_t rep = 0; rep < kObsReps; ++rep) {
    for (const bool on : {false, true}) {
      service::EstimationService& svc = on ? on_svc : off_svc;
      const double secs = bench_util::TimeSeconds([&] { run_all(svc); });
      qps[on ? 1 : 0].push_back(secs > 0 ? queries / secs : 0.0);
    }
    // The scrape cadence a live server would see: one ObsTick per rep,
    // advancing the virtual clock past the sample interval so the store
    // and the SLO engine actually do their work.
    vnow += on_opt.ts_interval_us + 1;
    on_svc.ObsTick(vnow);
  }

  // Paired comparison: each rep's on/off runs are adjacent in time, so
  // their ratio cancels whatever the machine was doing that rep. The
  // reported delta is the median ratio; the per-arm medians are kept
  // for absolute trend tracking.
  std::vector<double> ratios;
  for (size_t rep = 0; rep < kObsReps; ++rep) {
    if (qps[0][rep] > 0) ratios.push_back(qps[1][rep] / qps[0][rep]);
  }
  std::sort(ratios.begin(), ratios.end());
  const double median_ratio =
      ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
  double median_qps[2];
  for (int arm = 0; arm < 2; ++arm) {
    std::sort(qps[arm].begin(), qps[arm].end());
    median_qps[arm] = qps[arm][kObsReps / 2];
  }

  // Deterministic outcome mix so the retention ledger shows real
  // per-class hits, not just the odd slow request.
  for (size_t i = 0; i < 4; ++i) {
    service::QueryRequest r = reqs[i % reqs.size()];
    r.deadline = Deadline::AlreadyExpired();
    (void)on_svc.Estimate(r);
    (void)on_svc.Estimate(run.name, "//malformed[@");
  }
  std::string tail_fields;
  uint64_t tail_total = 0;
  for (const char* cls :
       {"shed", "deadline", "error", "pruned", "degraded", "slow"}) {
    const uint64_t n = on_svc.obs().CounterValue(
        "service.trace.tail", std::string("class=") + cls);
    tail_total += n;
    tail_fields += ",\"tail_" + std::string(cls) + "\":" + std::to_string(n);
  }
  tail_fields += ",\"tail_total\":" + std::to_string(tail_total);

  for (const bool on : {false, true}) {
    std::printf(
        "{\"bench\":\"service_obs2\",\"dataset\":\"%s\",\"arm\":\"%s\","
        "\"queries\":%zu,\"reps\":%zu,\"median_qps\":%.1f%s}\n",
        run.name.c_str(), on ? "on" : "off", kObsPasses * reqs.size(),
        kObsReps, median_qps[on ? 1 : 0],
        on ? (",\"median_ratio\":" + std::to_string(median_ratio) +
              tail_fields)
                 .c_str()
           : "");
  }
  std::printf(
      "\nflight-data obs: on %.0f qps vs off %.0f qps "
      "(paired median %+.2f%%)\n\n",
      median_qps[1], median_qps[0], 100.0 * (median_ratio - 1.0));
}

void RunDataset(const bench_util::DatasetRun& run,
                const bench_util::BenchConfig& config) {
  bench_util::PrintHeader("Service throughput — " + run.name);

  auto synopsis = std::make_shared<const estimator::Synopsis>(
      estimator::Synopsis::Build(run.doc, {}));
  workload::Workload wl = bench_util::MakeWorkload(run.doc, config);
  std::vector<service::QueryRequest> reqs = WorkloadRequests(run.name, wl);
  if (reqs.empty()) {
    std::printf("no queries generated; skipping\n");
    return;
  }
  std::printf("%zu workload queries\n\n", reqs.size());

  // Latency: warm plan cache vs the uncached parse+join path, single
  // thread, mean microseconds per query. trace_sample=1 so the stage
  // rows count every stage execution (see StageScraper).
  {
    service::EstimationService svc({.threads = 1, .trace_sample = 1});
    svc.registry().Register(run.name, synopsis);
    StageScraper stages(svc);
    auto run_all = [&] {
      for (const service::QueryRequest& r : reqs) {
        (void)svc.Estimate(r.synopsis, r.xpath);
      }
    };
    const double cold_s = bench_util::TimeSeconds(run_all);
    EmitRow(run.name, "cold", 1, reqs.size(), cold_s);
    // Cold rows carry the compile path: parse, join, and the formula
    // stage (now a constant read when the plan precomputed its
    // estimate) — the formula-tail acceptance number lives here.
    stages.Emit(run.name, "cold", 1);
    const double warm_s = bench_util::TimeSeconds(run_all);
    EmitRow(run.name, "warm", 1, reqs.size(), warm_s);
    // Warm rows are probe-only by construction (exact hits skip parse);
    // earlier revisions emitted cumulative histograms here, so "warm"
    // quantiles silently included every cold sample.
    stages.Emit(run.name, "warm", 1);
    std::printf(
        "\nsingle-thread mean latency: cold %.1fus/query, warm %.1fus/query "
        "(%.1fx)\n\n",
        1e6 * cold_s / static_cast<double>(reqs.size()),
        1e6 * warm_s / static_cast<double>(reqs.size()),
        warm_s > 0 ? cold_s / warm_s : 0.0);
  }

  // Aggregate throughput vs worker-thread count, warm cache, batch API.
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    service::EstimationService svc(
        {.threads = threads, .trace_sample = 1});
    svc.registry().Register(run.name, synopsis);
    (void)svc.EstimateBatch(reqs);  // warm the plan cache
    StageScraper stages(svc);  // measured reps only, not the warm-up
    // Enough repetitions to measure meaningfully at any thread count.
    const size_t reps = 4;
    const double secs = bench_util::TimeSeconds([&] {
      for (size_t r = 0; r < reps; ++r) (void)svc.EstimateBatch(reqs);
    });
    EmitRow(run.name, "warm-batch", threads, reps * reqs.size(), secs);
    stages.Emit(run.name, "warm-batch", threads);
  }

  RunMemoPhase(run, synopsis, reqs);
  RunIntelPhase(run, synopsis, reqs, config.seed);
  RunAccuracyPhase(run, synopsis, reqs);
  RunObs2Phase(run, synopsis, reqs);

  std::printf("\n");
}

}  // namespace
}  // namespace xee

int main(int argc, char** argv) {
  xee::bench_util::BenchConfig config =
      xee::bench_util::BenchConfig::FromArgs(argc, argv);
  for (const xee::bench_util::DatasetRun& run :
       xee::bench_util::MakeDatasets(config)) {
    xee::RunDataset(run, config);
  }
  return 0;
}
