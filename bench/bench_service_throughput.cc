// Serving-layer throughput: queries/sec through EstimationService as a
// function of worker-thread count (1/2/4/8) and plan-cache temperature
// (cold = every query compiles, warm = plans cached), plus the
// single-query latency win of a warm plan cache over the uncached
// parse+join path. Each measurement is emitted as one JSON line so
// future PRs can track the serving trajectory:
//
//   {"bench":"service_throughput","dataset":"xmark","mode":"warm",
//    "threads":4,"queries":...,"seconds":...,"qps":...}
//
// A final phase sweeps the shadow-sampling rate (off / 1-in-256 default
// / full) and emits "service_accuracy" rows with the qps cost and the
// shadow volume + aggregate q-error each rate buys.
//
// Flags: the shared bench flags (--scale, --queries, --seed, --dataset).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/runner.h"
#include "service/service.h"
#include "workload/workload.h"

namespace xee {
namespace {

std::vector<service::QueryRequest> WorkloadRequests(
    const std::string& name, const workload::Workload& wl) {
  std::vector<service::QueryRequest> reqs;
  auto add = [&](const std::vector<workload::WorkloadQuery>& queries) {
    for (const workload::WorkloadQuery& wq : queries) {
      reqs.push_back(service::QueryRequest{name, wq.query.ToString()});
    }
  };
  add(wl.simple);
  add(wl.branch);
  add(wl.order_branch_target);
  add(wl.order_trunk_target);
  return reqs;
}

void EmitRow(const std::string& dataset, const char* mode, size_t threads,
             size_t queries, double seconds) {
  std::printf(
      "{\"bench\":\"service_throughput\",\"dataset\":\"%s\","
      "\"mode\":\"%s\",\"threads\":%zu,\"queries\":%zu,"
      "\"seconds\":%.6f,\"qps\":%.1f}\n",
      dataset.c_str(), mode, threads, queries,
      seconds, seconds > 0 ? static_cast<double>(queries) / seconds : 0.0);
}

// One JSON row per pipeline stage with its latency quantiles over the
// run — where a query's time actually goes (parse vs join vs formula),
// tracked across PRs like the qps rows above. The service times
// 1-in-trace_sample requests (default 16), so the rows are unbiased
// samples of the stage distributions and `count` is the timed subset —
// the qps rows measure the service in its production configuration.
void EmitStageRows(const std::string& dataset, const char* mode,
                   size_t threads, const service::EstimationService& svc) {
  const service::ServiceStatsSnapshot s = svc.Stats();
  struct Row {
    const char* stage;
    const obs::HistogramSnapshot& h;
  };
  const Row rows[] = {
      {"parse", s.parse},           {"canonicalize", s.canonicalize},
      {"cache_lookup", s.cache_lookup}, {"snapshot", s.snapshot_acquire},
      {"join", s.join},             {"formula", s.formula},
      {"request", s.request},
  };
  for (const Row& r : rows) {
    std::printf(
        "{\"bench\":\"service_stage\",\"dataset\":\"%s\",\"mode\":\"%s\","
        "\"threads\":%zu,\"stage\":\"%s\",\"count\":%llu,"
        "\"mean_us\":%.3f,\"p50_us\":%.3f,\"p90_us\":%.3f,\"p99_us\":%.3f}\n",
        dataset.c_str(), mode, threads, r.stage,
        static_cast<unsigned long long>(r.h.count), r.h.mean / 1e3,
        static_cast<double>(r.h.p50) / 1e3, static_cast<double>(r.h.p90) / 1e3,
        static_cast<double>(r.h.p99) / 1e3);
  }
}

// Shadow-sampling cost and yield: warm single-thread throughput with
// accuracy observability off / at the 1-in-256 default / at full
// sampling, plus the shadow volume and aggregate q-error each setting
// recorded (DESIGN.md §11). The off-vs-256 pair is the number the
// acceptance bar watches: the default sampling rate must be hot-path
// noise. Full sampling shows the worst case — on few cores the shadow
// evaluations compete with the serving thread itself.
void RunAccuracyPhase(const bench_util::DatasetRun& run,
                      const std::shared_ptr<const estimator::Synopsis>& syn,
                      const std::vector<service::QueryRequest>& reqs) {
  for (const size_t sample : {size_t{0}, size_t{256}, size_t{1}}) {
    service::ServiceOptions opt;
    opt.threads = 1;
    opt.accuracy_sample = sample;
    opt.accuracy_max_pending = 1 << 16;
    service::EstimationService svc(opt);
    // Non-owning alias: the dataset outlives the service, and attaching
    // it arms the shadow pipeline's exact-count oracle.
    std::shared_ptr<const xml::Document> doc(
        std::shared_ptr<const xml::Document>(), &run.doc);
    svc.registry().Register(run.name, syn, doc);
    auto run_all = [&] {
      for (const service::QueryRequest& r : reqs) {
        (void)svc.Estimate(r.synopsis, r.xpath);
      }
    };
    run_all();  // warm the plan cache (and absorb first-touch sampling)
    (void)svc.DrainShadow();
    const double secs = bench_util::TimeSeconds(run_all);
    (void)svc.DrainShadow();

    uint64_t count = 0;
    double qerror_weighted = 0;
    for (const obs::ClassAccuracy& c : svc.accuracy().Classes()) {
      count += c.count;
      qerror_weighted += static_cast<double>(c.count) * c.mean_qerror;
    }
    std::printf(
        "{\"bench\":\"service_accuracy\",\"dataset\":\"%s\",\"sample\":%zu,"
        "\"queries\":%zu,\"seconds\":%.6f,\"qps\":%.1f,"
        "\"shadow_started\":%llu,\"shadow_recorded\":%llu,"
        "\"mean_qerror\":%.6f}\n",
        run.name.c_str(), sample, reqs.size(), secs,
        secs > 0 ? static_cast<double>(reqs.size()) / secs : 0.0,
        static_cast<unsigned long long>(
            svc.obs().CounterValue("accuracy.samples", "phase=started")),
        static_cast<unsigned long long>(
            svc.obs().CounterValue("accuracy.samples", "phase=recorded")),
        count > 0 ? qerror_weighted / static_cast<double>(count) : 0.0);
  }
}

void RunDataset(const bench_util::DatasetRun& run,
                const bench_util::BenchConfig& config) {
  bench_util::PrintHeader("Service throughput — " + run.name);

  auto synopsis = std::make_shared<const estimator::Synopsis>(
      estimator::Synopsis::Build(run.doc, {}));
  workload::Workload wl = bench_util::MakeWorkload(run.doc, config);
  std::vector<service::QueryRequest> reqs = WorkloadRequests(run.name, wl);
  if (reqs.empty()) {
    std::printf("no queries generated; skipping\n");
    return;
  }
  std::printf("%zu workload queries\n\n", reqs.size());

  // Latency: warm plan cache vs the uncached parse+join path, single
  // thread, mean microseconds per query.
  {
    service::EstimationService svc({.threads = 1});
    svc.registry().Register(run.name, synopsis);
    auto run_all = [&] {
      for (const service::QueryRequest& r : reqs) {
        (void)svc.Estimate(r.synopsis, r.xpath);
      }
    };
    const double cold_s = bench_util::TimeSeconds(run_all);
    EmitRow(run.name, "cold", 1, reqs.size(), cold_s);
    const double warm_s = bench_util::TimeSeconds(run_all);
    EmitRow(run.name, "warm", 1, reqs.size(), warm_s);
    EmitStageRows(run.name, "warm", 1, svc);
    std::printf(
        "\nsingle-thread mean latency: cold %.1fus/query, warm %.1fus/query "
        "(%.1fx)\n\n",
        1e6 * cold_s / static_cast<double>(reqs.size()),
        1e6 * warm_s / static_cast<double>(reqs.size()),
        warm_s > 0 ? cold_s / warm_s : 0.0);
  }

  // Aggregate throughput vs worker-thread count, warm cache, batch API.
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    service::EstimationService svc({.threads = threads});
    svc.registry().Register(run.name, synopsis);
    (void)svc.EstimateBatch(reqs);  // warm the plan cache
    // Enough repetitions to measure meaningfully at any thread count.
    const size_t reps = 4;
    const double secs = bench_util::TimeSeconds([&] {
      for (size_t r = 0; r < reps; ++r) (void)svc.EstimateBatch(reqs);
    });
    EmitRow(run.name, "warm-batch", threads, reps * reqs.size(), secs);
    EmitStageRows(run.name, "warm-batch", threads, svc);
  }

  RunAccuracyPhase(run, synopsis, reqs);

  std::printf("\n");
}

}  // namespace
}  // namespace xee

int main(int argc, char** argv) {
  xee::bench_util::BenchConfig config =
      xee::bench_util::BenchConfig::FromArgs(argc, argv);
  for (const xee::bench_util::DatasetRun& run :
       xee::bench_util::MakeDatasets(config)) {
    xee::RunDataset(run, config);
  }
  return 0;
}
