// Production-traffic simulator driver (DESIGN.md §12): runs named
// scenarios — seeded open-loop arrival processes over the full serving
// stack with mid-run chaos schedules — and emits one BENCH-style JSON
// line per trajectory window plus a summary row per scenario carrying
// the determinism fingerprint and the drain-invariant verdicts.
//
//   simulate --scenario=all                       # the three families
//   simulate --scenario=bursty_overload_chaos
//   simulate --scenario=all --duration-ms=500     # time-scaled smoke
//   simulate --scenario=poisson_steady --workers=4  # concurrent (TSan)
//
// Exit status is nonzero when any scenario violates a drain invariant —
// the smoke test relies on this.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/scenario.h"
#include "sim/simulator.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: simulate [--scenario=NAME|all] [--seed=N]\n"
               "                [--duration-ms=N] [--workers=N] [--list]\n");
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string which = "all";
  uint64_t seed_override = 0;
  bool seed_set = false;
  uint64_t duration_ms = 0;  // 0 = the scenario's own duration
  size_t workers = 0;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--scenario", &v)) {
      which = v;
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      seed_override = std::strtoull(v, nullptr, 10);
      seed_set = true;
    } else if (ParseFlag(argv[i], "--duration-ms", &v)) {
      duration_ms = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--workers", &v)) {
      workers = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--list") == 0) {
      for (const std::string& name : xee::sim::ScenarioNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else {
      Usage();
      return 2;
    }
  }

  std::vector<std::string> names;
  if (which == "all") {
    names = xee::sim::ScenarioNames();
  } else {
    names.push_back(which);
  }

  bool all_ok = true;
  for (const std::string& name : names) {
    xee::sim::Scenario sc;
    if (!xee::sim::ScenarioByName(name, &sc)) {
      std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                   name.c_str());
      return 2;
    }
    if (seed_set) sc.seed = seed_override;
    if (duration_ms > 0) {
      const double factor = static_cast<double>(duration_ms) * 1000.0 /
                            static_cast<double>(sc.duration_us);
      sc = xee::sim::ScaledScenario(sc, factor);
    }
    sc.workers = workers;

    const xee::sim::SimResult result = xee::sim::RunScenario(sc);
    for (const xee::sim::WindowRow& row : result.trajectory) {
      std::printf("%s\n", row.ToJson(sc.name).c_str());
    }
    std::printf("%s\n", result.SummaryJson().c_str());
    if (!result.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", sc.name.c_str(),
                   result.invariants.Summary().c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
