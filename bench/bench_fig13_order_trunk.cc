// Reproduces paper Figure 13: estimation error of queries WITH order
// axes whose target node lies in a the TRUNK part, as a function of
// o-histogram memory (o-variance sweep), at p-histogram variances
// {0, 1, 5, 10}.
//
// Paper shape: accurate already at low p-variance even with coarse
// o-histograms, because Eq. 5 clamps by the (accurate) no-order
// estimate; lower error than Figure 12 at low p-variance.

#include "order_error_common.h"

int main(int argc, char** argv) {
  using namespace xee;
  auto config = bench_util::BenchConfig::FromArgs(argc, argv);
  bench_util::PrintHeader(
      "Figure 13: estimation error of order queries (trunk-part targets) "
      "vs o-histogram memory");
  std::printf("cells are: avg-relative-error / o-histogram size\n");
  for (const auto& ds : bench_util::MakeDatasets(config)) {
    benchx::RunOrderErrorDataset(ds, config, /*trunk_targets=*/true);
  }
  return 0;
}
