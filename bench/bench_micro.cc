// Ablation A3 (DESIGN.md): google-benchmark microbenchmarks of the hot
// query-time primitives — path-id containment, pid decode via the binary
// tree, p-histogram lookup, path-id join, and end-to-end estimation.

#include <benchmark/benchmark.h>

#include "datagen/datagen.h"
#include "encoding/containment.h"
#include "encoding/labeling.h"
#include "estimator/estimator.h"
#include "pidtree/pid_binary_tree.h"
#include "xpath/parser.h"

namespace {

using namespace xee;

struct XMarkFixture {
  XMarkFixture() {
    datagen::GenOptions opt;
    opt.scale = 0.1;
    doc = datagen::GenerateXMark(opt);
    labeling = encoding::LabelDocument(doc);
    tree = std::make_unique<pidtree::PathIdBinaryTree>(labeling);
    synopsis = std::make_unique<estimator::Synopsis>(
        estimator::Synopsis::Build(doc, estimator::SynopsisOptions{}));
    estimator = std::make_unique<estimator::Estimator>(*synopsis);
  }
  xml::Document doc;
  encoding::Labeling labeling;
  std::unique_ptr<pidtree::PathIdBinaryTree> tree;
  std::unique_ptr<estimator::Synopsis> synopsis;
  std::unique_ptr<estimator::Estimator> estimator;
};

XMarkFixture& Fixture() {
  static XMarkFixture* f = new XMarkFixture();
  return *f;
}

void BM_PidCovers(benchmark::State& state) {
  auto& f = Fixture();
  const auto& pids = f.labeling.distinct_pids;
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = pids[i % pids.size()];
    const auto& b = pids[(i * 7 + 3) % pids.size()];
    benchmark::DoNotOptimize(a.Covers(b));
    ++i;
  }
}
BENCHMARK(BM_PidCovers);

void BM_PidPairCompatible(benchmark::State& state) {
  auto& f = Fixture();
  const auto& pids = f.labeling.distinct_pids;
  const xml::TagId item = *f.doc.FindTag("item");
  const xml::TagId name = *f.doc.FindTag("name");
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = pids[i % pids.size()];
    const auto& b = pids[(i * 13 + 5) % pids.size()];
    benchmark::DoNotOptimize(encoding::PidPairCompatible(
        f.labeling.table, item, a, name, b,
        encoding::AxisKind::kDescendant));
    ++i;
  }
}
BENCHMARK(BM_PidPairCompatible);

void BM_PidTreeLookup(benchmark::State& state) {
  auto& f = Fixture();
  const size_t n = f.tree->LeafCount();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.tree->Lookup(static_cast<encoding::PidRef>(i % n + 1)));
    ++i;
  }
}
BENCHMARK(BM_PidTreeLookup);

void BM_PidTreeFind(benchmark::State& state) {
  auto& f = Fixture();
  const auto& pids = f.labeling.distinct_pids;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tree->Find(pids[i % pids.size()]));
    ++i;
  }
}
BENCHMARK(BM_PidTreeFind);

void BM_PHistogramLookup(benchmark::State& state) {
  auto& f = Fixture();
  const xml::TagId item = *f.doc.FindTag("item");
  const auto& h = f.synopsis->PHisto(item);
  const auto& pids = h.PidsInOrder();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Frequency(pids[i % pids.size()]));
    ++i;
  }
}
BENCHMARK(BM_PHistogramLookup);

void BM_EstimateSimple(benchmark::State& state) {
  auto& f = Fixture();
  auto q = xpath::ParseXPath("//item/description/parlist/listitem").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.estimator->Estimate(q));
  }
}
BENCHMARK(BM_EstimateSimple);

void BM_EstimateBranch(benchmark::State& state) {
  auto& f = Fixture();
  auto q =
      xpath::ParseXPath("//open_auction[/bidder/increase]/annotation/author")
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.estimator->Estimate(q));
  }
}
BENCHMARK(BM_EstimateBranch);

void BM_EstimateOrder(benchmark::State& state) {
  auto& f = Fixture();
  auto q = xpath::ParseXPath(
               "//person[/name/following-sibling::emailaddress]")
               .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.estimator->Estimate(q));
  }
}
BENCHMARK(BM_EstimateOrder);

void BM_SynopsisBuild(benchmark::State& state) {
  auto& f = Fixture();
  estimator::SynopsisOptions opt;
  opt.p_variance = static_cast<double>(state.range(0));
  opt.o_variance = opt.p_variance;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator::Synopsis::Build(f.doc, opt));
  }
}
BENCHMARK(BM_SynopsisBuild)->Arg(0)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
