// Reproduces paper Table 2: query workload sizes after removing
// duplicate and negative queries (the paper generates 4000 simple + 4000
// branch queries per dataset; pass --queries=4000 to match).
//
// Paper values: SSPlays 188/2328/2516 without order, 1168 with order;
// DBLP 202/1013/1215, 646; XMark 1358/2686/4044, 1654.

#include <cstdio>

#include "bench_util/runner.h"

int main(int argc, char** argv) {
  using namespace xee;
  auto config = bench_util::BenchConfig::FromArgs(argc, argv);
  bench_util::PrintHeader("Table 2: query workload");
  std::printf("%-10s %10s %10s %10s %12s\n", "Dataset", "Simple", "Branch",
              "Total", "WithOrder");
  for (const auto& ds : bench_util::MakeDatasets(config)) {
    workload::Workload w = bench_util::MakeWorkload(ds.doc, config);
    std::printf("%-10s %10zu %10zu %10zu %12zu\n", ds.name.c_str(),
                w.simple.size(), w.branch.size(), w.TotalWithoutOrder(),
                w.TotalWithOrder());
  }
  std::printf(
      "\npaper (4000+4000 generated): SSPlays 188/2328/2516 + 1168 order, "
      "DBLP 202/1013/1215 + 646, XMark 1358/2686/4044 + 1654\n");
  return 0;
}
