// Scaling study (not in the paper): how synopsis size, construction
// time, and per-query estimation latency grow with document size. The
// interesting property of the path-based design is that query-time cost
// depends on the number of *distinct paths/pids*, not on document size,
// so estimation latency should flatten while documents grow.

#include <cstdio>
#include <optional>

#include "bench_util/runner.h"
#include "common/strings.h"
#include "estimator/estimator.h"
#include "xpath/parser.h"

namespace {

using namespace xee;

const char* QueryFor(const std::string& dataset) {
  if (dataset == "ssplays") return "//ACT/SCENE[/TITLE]/SPEECH/LINE";
  if (dataset == "dblp") return "//article[/author]/title";
  return "//item[/mailbox/mail]/description";
}

}  // namespace

int main(int argc, char** argv) {
  auto config = bench_util::BenchConfig::FromArgs(argc, argv);
  bench_util::PrintHeader(
      "Scaling: synopsis size / build time / estimation latency vs "
      "document size");
  for (const std::string& name : config.datasets) {
    std::printf("\n[%s]\n%8s %10s %12s %12s %14s\n", name.c_str(), "scale",
                "elements", "synopsis", "build", "estimate/query");
    for (double scale : {0.25, 0.5, 1.0, 2.0}) {
      datagen::GenOptions gen;
      gen.scale = scale * config.scale;
      gen.seed = config.seed;
      xml::Document doc = datagen::GenerateByName(name, gen).value();

      std::optional<estimator::Synopsis> syn;
      double build_s = bench_util::TimeSeconds([&] {
        syn = estimator::Synopsis::Build(doc, estimator::SynopsisOptions{});
      });
      estimator::Estimator est(*syn);
      auto q = xpath::ParseXPath(QueryFor(name)).value();

      const int reps = 2000;
      double est_s = bench_util::TimeSeconds([&] {
        for (int i = 0; i < reps; ++i) {
          auto r = est.Estimate(q);
          XEE_CHECK(r.ok());
        }
      });
      std::printf("%8.2f %10zu %12s %11.3fs %12.1fus\n", scale,
                  doc.NodeCount(),
                  HumanBytes(syn->PathSummaryBytes() +
                             syn->OHistogramBytes())
                      .c_str(),
                  build_s, est_s / reps * 1e6);
    }
  }
  std::printf(
      "\nexpected: build time grows linearly with elements; synopsis size "
      "and estimation latency track distinct paths, which grow much more "
      "slowly\n");
  return 0;
}
