// Ablation A4 (companion to the paper's foundation [8], "A Path-Based
// Labeling Scheme for Efficient Structural Join"): how much does path-id
// pruning shrink the candidate lists entering a structural twig join,
// and what does it do to execution time? Runs the no-order workload
// through the interval structural-join executor with and without pid
// pruning; result sets are identical by construction (asserted).

#include <cmath>
#include <cstdio>

#include "bench_util/runner.h"
#include "join/structural_join.h"

int main(int argc, char** argv) {
  using namespace xee;
  auto config = bench_util::BenchConfig::FromArgs(argc, argv);
  bench_util::PrintHeader(
      "Join pruning: candidate-list reduction and execution time of the "
      "path-id-pruned structural join");
  std::printf("%-10s %8s | %12s %12s %8s | %10s %10s\n", "Dataset",
              "queries", "cand-raw", "cand-pruned", "kept", "t-pruned",
              "t-raw");
  for (const auto& ds : bench_util::MakeDatasets(config)) {
    workload::Workload w = bench_util::MakeWorkload(ds.doc, config);
    join::StructuralJoinExecutor exec(ds.doc);

    size_t raw_cands = 0, pruned_cands = 0, queries = 0;
    uint64_t checksum_pruned = 0, checksum_raw = 0;
    join::ExecOptions pruned_opt, raw_opt;
    raw_opt.use_pid_pruning = false;

    double t_pruned = bench_util::TimeSeconds([&] {
      for (const auto* list : {&w.simple, &w.branch}) {
        for (const auto& wq : *list) {
          join::ExecStats s;
          auto r = exec.Execute(wq.query, pruned_opt, &s);
          XEE_CHECK(r.ok());
          checksum_pruned += r.value().size();
          raw_cands += s.candidates_initial;
          pruned_cands += s.candidates_pruned;
          ++queries;
        }
      }
    });
    double t_raw = bench_util::TimeSeconds([&] {
      for (const auto* list : {&w.simple, &w.branch}) {
        for (const auto& wq : *list) {
          auto r = exec.Execute(wq.query, raw_opt);
          XEE_CHECK(r.ok());
          checksum_raw += r.value().size();
        }
      }
    });
    XEE_CHECK(checksum_pruned == checksum_raw);

    std::printf("%-10s %8zu | %12zu %12zu %7.1f%% | %9.3fs %9.3fs\n",
                ds.name.c_str(), queries, raw_cands, pruned_cands,
                100.0 * static_cast<double>(pruned_cands) /
                    static_cast<double>(raw_cands),
                t_pruned, t_raw);
  }
  std::printf(
      "\nexpected: pruning discards a large share of candidates before "
      "the interval join; identical result sets either way (checksummed). "
      "Wall-clock gains depend on how much of the join cost the pid test "
      "itself replaces.\n");
  return 0;
}
