// Ablation A1 (DESIGN.md): does the paper's variance-controlled
// bucketing beat equi-count bucketing at equal memory? Both variants use
// the same bucket count per tag (hence identical storage); only the
// split rule differs.

#include <cstdio>

#include "bench_util/metrics.h"
#include "bench_util/runner.h"
#include "common/strings.h"
#include "estimator/estimator.h"

namespace {

using namespace xee;
using bench_util::ErrorAccumulator;

double MeanError(const workload::Workload& w,
                 const estimator::Estimator& est) {
  ErrorAccumulator acc;
  for (const auto* list : {&w.simple, &w.branch}) {
    for (const auto& wq : *list) {
      auto r = est.Estimate(wq.query);
      if (r.ok()) acc.Add(r.value(), wq.true_count);
    }
  }
  return acc.Mean();
}

}  // namespace

int main(int argc, char** argv) {
  auto config = bench_util::BenchConfig::FromArgs(argc, argv);
  bench_util::PrintHeader(
      "Ablation A1: variance-controlled vs equi-count p-histogram buckets "
      "(equal memory)");
  for (const auto& ds : bench_util::MakeDatasets(config)) {
    workload::Workload w = bench_util::MakeWorkload(ds.doc, config);
    std::printf("\n[%s]\n%10s %14s %14s %14s\n", ds.name.c_str(), "p-var",
                "memory", "variance-ctl", "equi-count");
    for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
      estimator::SynopsisOptions opt;
      opt.p_variance = v;
      opt.build_order = false;
      estimator::Synopsis var_syn = estimator::Synopsis::Build(ds.doc, opt);
      opt.equi_count_p_buckets = true;
      estimator::Synopsis eq_syn = estimator::Synopsis::Build(ds.doc, opt);

      estimator::Estimator var_est(var_syn), eq_est(eq_syn);
      std::printf("%10.1f %14s %14.4f %14.4f\n", v,
                  HumanBytes(var_syn.PHistogramBytes()).c_str(),
                  MeanError(w, var_est), MeanError(w, eq_est));
    }
  }
  std::printf(
      "\nexpected: variance control wins dramatically on skewed frequency "
      "distributions (SSPlays: LINE dwarfs everything) and is comparable "
      "elsewhere; equi-count can edge it out when frequencies are nearly "
      "uniform\n");
  return 0;
}
