// Reproduces paper Figure 11: estimation error of the proposed
// p-histogram summary versus XSketch at matched total memory, on the
// workload without order axes. The proposed summary's total memory is
// encoding table + path-id binary tree + p-histograms; the XSketch
// budget is set to the same number of bytes at each sweep point.
//
// Paper shape: the proposed method's memory has a floor (encoding table
// + binary tree) but once past it, more memory drives the error down
// sharply and beats XSketch; XSketch is competitive at the low end.
//
// Floor baselines from the paper's related work are reported per
// dataset: the label-split graph (XSketch at budget 0), the literal
// Markov-2 path estimator of [11] (simple child chains only; its
// supported-query count is shown), and the position histogram of [16].

#include <cstdio>

#include "bench_util/metrics.h"
#include "bench_util/runner.h"
#include "common/strings.h"
#include "estimator/estimator.h"
#include "markov/markov_estimator.h"
#include "poshist/position_histogram.h"
#include "xsketch/xsketch.h"

namespace {

using namespace xee;
using bench_util::ErrorAccumulator;

template <typename EstimateFn>
double MeanError(const workload::Workload& w, EstimateFn&& fn) {
  ErrorAccumulator acc;
  for (const auto* list : {&w.simple, &w.branch}) {
    for (const auto& wq : *list) {
      auto r = fn(wq.query);
      if (r.ok()) acc.Add(r.value(), wq.true_count);
    }
  }
  return acc.Mean();
}

}  // namespace

int main(int argc, char** argv) {
  auto config = bench_util::BenchConfig::FromArgs(argc, argv);
  bench_util::PrintHeader(
      "Figure 11: p-histogram vs XSketch, error at matched total memory");
  for (const auto& ds : bench_util::MakeDatasets(config)) {
    workload::Workload w = bench_util::MakeWorkload(ds.doc, config);
    std::printf("\n[%s] %zu queries without order axes\n", ds.name.c_str(),
                w.TotalWithoutOrder());
    xsketch::XSketchOptions mopt;
    mopt.budget_bytes = 0;  // label-split graph, no refinement
    xsketch::XSketch labelsplit = xsketch::XSketch::Build(ds.doc, mopt);
    const double labelsplit_err = MeanError(
        w, [&](const xpath::Query& q) { return labelsplit.Estimate(q); });
    std::printf("label-split graph baseline: %s, error %.4f\n",
                HumanBytes(labelsplit.SizeBytes()).c_str(), labelsplit_err);

    markov::MarkovEstimator mk = markov::MarkovEstimator::Build(ds.doc, {});
    bench_util::ErrorAccumulator mk_acc;
    size_t mk_supported = 0, mk_total = 0;
    for (const auto* list : {&w.simple, &w.branch}) {
      for (const auto& wq : *list) {
        ++mk_total;
        auto r = mk.Estimate(wq.query);
        if (!r.ok()) continue;  // simple child chains only ([11])
        ++mk_supported;
        mk_acc.Add(r.value(), wq.true_count);
      }
    }
    std::printf(
        "markov-2 baseline [11]: %s, error %.4f on its %zu/%zu supported "
        "queries\n",
        HumanBytes(mk.SizeBytes()).c_str(), mk_acc.Mean(), mk_supported,
        mk_total);
    poshist::PositionHistogramOptions popt;
    popt.grid = 32;
    auto ph = poshist::PositionHistogramEstimator::Build(ds.doc, popt);
    const double ph_err = MeanError(
        w, [&](const xpath::Query& q) { return ph.Estimate(q); });
    std::printf("position-histogram baseline [16]: %s, error %.4f\n",
                HumanBytes(ph.SizeBytes()).c_str(), ph_err);
    std::printf("%10s %14s %12s %12s\n", "p-var", "total-mem", "p-histo",
                "xsketch");
    for (double v : {16.0, 8.0, 4.0, 2.0, 1.0, 0.0}) {
      estimator::SynopsisOptions opt;
      opt.p_variance = v;
      opt.build_order = false;
      estimator::Synopsis syn = estimator::Synopsis::Build(ds.doc, opt);
      estimator::Estimator est(syn);
      const double ours = MeanError(
          w, [&](const xpath::Query& q) { return est.Estimate(q); });

      xsketch::XSketchOptions xopt;
      xopt.budget_bytes = syn.PathSummaryBytes();
      xsketch::XSketch sk = xsketch::XSketch::Build(ds.doc, xopt);
      const double theirs = MeanError(
          w, [&](const xpath::Query& q) { return sk.Estimate(q); });

      std::printf("%10.1f %14s %12.4f %12.4f\n", v,
                  HumanBytes(syn.PathSummaryBytes()).c_str(), ours, theirs);
    }
  }
  std::printf(
      "\npaper shape: with enough memory the proposed method wins; "
      "XSketch is better in the most memory-constrained settings\n");
  return 0;
}
