file(REMOVE_RECURSE
  "CMakeFiles/persisted_synopsis.dir/persisted_synopsis.cpp.o"
  "CMakeFiles/persisted_synopsis.dir/persisted_synopsis.cpp.o.d"
  "persisted_synopsis"
  "persisted_synopsis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persisted_synopsis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
