# Empty dependencies file for persisted_synopsis.
# This may be replaced when dependencies are built.
